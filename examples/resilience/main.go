// Command resilience is a controlled experiment on the §6.6 resilience
// techniques. It builds four providers that are identical except for their
// deployment — single-/24 unicast, multi-/24 unicast, multi-AS unicast, and
// anycast — subjects each to the same attack, and prints the resulting
// Eq. 1 impact and failure rates side by side.
//
// Run with:
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/packet"
	"dnsddos/internal/resolver"
	"dnsddos/internal/simnet"
)

type deployment struct {
	name      string
	prefixes  int // distinct /24s for the 3 nameservers
	anycast   bool
	sites     int
	secondASN bool
}

func main() {
	deployments := []deployment{
		{name: "unicast, single /24", prefixes: 1},
		{name: "unicast, three /24s", prefixes: 3},
		{name: "unicast, three /24s, two ASNs", prefixes: 3, secondASN: true},
		{name: "anycast (24 sites)", prefixes: 3, anycast: true, sites: 24},
	}

	db := dnsdb.New()
	var groups [][]dnsdb.NameserverID
	next24 := uint32(0x51100000 >> 8)
	for di, d := range deployments {
		pid := db.AddProvider(dnsdb.Provider{Name: d.name, Country: "NL"})
		var ns []dnsdb.NameserverID
		var pool []netx.Prefix
		for i := 0; i < d.prefixes; i++ {
			pool = append(pool, netx.Prefix{Addr: netx.Addr(next24 << 8), Bits: 24})
			next24++
		}
		for i := 0; i < 3; i++ {
			sites := 1
			if d.anycast {
				sites = d.sites
			}
			id, err := db.AddNameserver(dnsdb.Nameserver{
				Host:        fmt.Sprintf("ns%d.dep%d.example", i+1, di),
				Addr:        pool[i%len(pool)].Nth(uint64(10 + i)),
				Provider:    pid,
				Anycast:     d.anycast,
				Sites:       sites,
				CapacityPPS: 5e4, // identical capacity across deployments
				BaseRTT:     8 * time.Millisecond,
			})
			if err != nil {
				panic(err)
			}
			ns = append(ns, id)
		}
		groups = append(groups, ns)
		for i := 0; i < 200; i++ {
			db.AddDomain(dnsdb.Domain{
				Name: fmt.Sprintf("d%02d-%03d.example", di, i),
				NS:   append([]dnsdb.NameserverID(nil), ns...),
			})
		}
	}
	db.Freeze()

	// one identical attack per deployment: 80 kpps TCP/53 on every
	// nameserver for one hour
	start := clock.StudyStart.AddDate(0, 1, 3).Add(12 * time.Hour)
	var specs []attacksim.Spec
	for _, ns := range groups {
		for _, id := range ns {
			specs = append(specs, attacksim.Spec{
				Target: db.Nameservers[id].Addr,
				Vector: attacksim.VectorRandomSpoofed,
				Proto:  packet.ProtoTCP,
				Ports:  []uint16{53},
				Start:  start,
				End:    start.Add(time.Hour),
				PPS:    8e4,
			})
		}
	}
	sched := attacksim.NewSchedule(specs)
	net := simnet.New(simnet.DefaultParams(), db, sched)
	res := resolver.New(resolver.DefaultConfig(), db, net)
	rng := rand.New(rand.NewPCG(3, 3))

	fmt.Println("identical 80 kpps TCP/53 flood against all three nameservers of each deployment:")
	fmt.Println()
	fmt.Printf("%-34s %12s %12s %10s\n", "deployment", "baseline RTT", "attack RTT", "failures")
	for di, ns := range groups {
		base, _ := measure(rng, res, db, ns, start.Add(-24*time.Hour))
		atk, fail := measure(rng, res, db, ns, start.Add(30*time.Minute))
		if atk == 0 {
			fmt.Printf("%-34s %9.1f ms %12s %9.1f%%   (complete resolution failure)\n",
				deployments[di].name, ms(base), "—", fail*100)
			continue
		}
		impact := float64(atk) / float64(base)
		fmt.Printf("%-34s %9.1f ms %9.1f ms %9.1f%%   impact %.1fx\n",
			deployments[di].name, ms(base), ms(atk), fail*100, impact)
	}
	fmt.Println()
	fmt.Println("anycast spreads the flood across sites; prefix and AS diversity alone")
	fmt.Println("do not reduce per-server load when the attacker targets every nameserver")
	fmt.Println("(§5.2.3: \"simple prefix diversity was not sufficient to withstand the attack\").")
}

// measure resolves 400 sample domains of the deployment at time t and
// returns the mean resolution RTT over successes plus the failure rate.
func measure(rng *rand.Rand, res *resolver.Resolver, db *dnsdb.DB, ns []dnsdb.NameserverID, t time.Time) (time.Duration, float64) {
	domains := db.DomainsOf(ns[0])
	var sum time.Duration
	var okCount, fails int
	for i := 0; i < 400; i++ {
		d := domains[i%len(domains)]
		o := res.Resolve(rng, d, t.Add(time.Duration(i)*time.Second))
		if o.Status == nsset.StatusOK {
			okCount++
			sum += o.RTT
		} else {
			fails++
		}
	}
	if okCount == 0 {
		return 0, 1
	}
	return sum / time.Duration(okCount), float64(fails) / 400
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }
