// Command quickstart is the smallest end-to-end tour of the library: build
// a synthetic DNS world, run the 17-month attack schedule through the
// telescope and the RSDoS inference, sweep the OpenINTEL measurements, join
// the two datasets, and print the headline results — which attacks hit DNS
// infrastructure and what they did to resolution performance.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"dnsddos/internal/core"
	"dnsddos/internal/report"
	"dnsddos/internal/study"
)

func main() {
	cfg := study.QuickConfig()
	fmt.Printf("running quick study: %d domains, %d attacks over 17 months...\n",
		cfg.World.Domains, cfg.Attacks.TotalAttacks)
	s := study.Run(cfg)

	fmt.Printf("\ntelescope inferred %d RSDoS attacks; %d joined events on DNS NSSets\n\n",
		len(s.Attacks), len(s.Events))

	report.Table1(os.Stdout, core.SummarizeDataset(s.Attacks, s.World.Topo))
	fmt.Println()
	report.Table4(os.Stdout, core.TopASNs(s.Classified, s.World.Topo, 5))
	fmt.Println()
	report.Table6(os.Stdout, core.MostAffected(s.Events, 5))
	fmt.Println()

	fb := core.BreakdownFailures(s.Events)
	fmt.Printf("of %d joined attack events: %d caused resolution failures (%d complete)\n",
		fb.Events, fb.WithFailures, fb.CompleteFails)
	var over10 int
	for _, e := range s.Events {
		if e.HasImpact && e.Impact >= 10 {
			over10++
		}
	}
	fmt.Printf("%d events showed a >=10x increase in resolution time (Eq. 1)\n", over10)
	fmt.Println()
	report.Groups(os.Stdout, "resilience: impact by anycast class (Fig. 11)", core.ImpactByAnycast(s.Events))
}
