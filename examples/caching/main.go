// Command caching demonstrates the end-user counterfactual the paper's
// empty-cache measurements deliberately exclude (§3.2 footnote 1): how much
// a recursive resolver's cache protects users while the authoritative
// infrastructure is under attack, and how CDN-style low TTLs erode that
// protection — the dynamic studied in the Moura et al. work the paper
// cites.
//
// Run with:
//
//	go run ./examples/caching
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/cache"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/packet"
	"dnsddos/internal/resolver"
	"dnsddos/internal/simnet"
)

func main() {
	// a provider whose two unicast nameservers will be saturated
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "SmallHost", Country: "NL"})
	var ns []dnsdb.NameserverID
	for i := 0; i < 2; i++ {
		id, err := db.AddNameserver(dnsdb.Nameserver{
			Host: fmt.Sprintf("ns%d.smallhost.example", i+1),
			Addr: netx.Addr(0x51400001 + uint32(i)<<8), Provider: pid,
			CapacityPPS: 2e4, BaseRTT: 9 * time.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		ns = append(ns, id)
	}
	const nDomains = 400
	for i := 0; i < nDomains; i++ {
		db.AddDomain(dnsdb.Domain{Name: fmt.Sprintf("site%03d.example", i), NS: ns})
	}
	db.Freeze()

	attackStart := clock.StudyStart.AddDate(0, 2, 0).Add(10 * time.Hour)
	var specs []attacksim.Spec
	for _, id := range ns {
		specs = append(specs, attacksim.Spec{
			Target: db.Nameservers[id].Addr, Vector: attacksim.VectorRandomSpoofed,
			Proto: packet.ProtoTCP, Ports: []uint16{53},
			Start: attackStart, End: attackStart.Add(2 * time.Hour), PPS: 3e5,
		})
	}
	net := simnet.New(simnet.DefaultParams(), db, attacksim.NewSchedule(specs))
	res := resolver.New(resolver.DefaultConfig(), db, net)

	fmt.Printf("attack: 300 kpps TCP/53 against both nameservers of %d domains (capacity 20 kpps each)\n\n", nDomains)
	fmt.Printf("%-42s %10s %10s\n", "end-user resolver configuration", "failures", "stale")

	type scenario struct {
		name  string
		ttl   time.Duration
		warm  bool
		stale bool
		neg   bool
	}
	for _, sc := range []scenario{
		{name: "no cache (OpenINTEL's empty-cache view)", ttl: time.Nanosecond},
		{name: "warm cache, 4h TTL", ttl: 4 * time.Hour, warm: true},
		{name: "warm cache, 60s TTL (CDN-style)", ttl: time.Minute, warm: true},
		{name: "warm cache, 60s TTL + serve-stale", ttl: time.Minute, warm: true, stale: true},
		{name: "no cache + negative caching", ttl: time.Nanosecond, neg: true},
	} {
		rng := rand.New(rand.NewPCG(42, 42))
		cr := cache.NewResolver(res, 0, sc.ttl)
		cr.ServeStale = sc.stale
		if sc.neg {
			cr.EnableNegativeCaching(5 * time.Minute)
		}
		if sc.warm {
			for d := 0; d < nDomains; d++ {
				cr.Resolve(rng, dnsdb.DomainID(d), attackStart.Add(-20*time.Minute))
			}
		}
		var fails, stale int
		during := attackStart.Add(45 * time.Minute)
		for d := 0; d < nDomains; d++ {
			o := cr.Resolve(rng, dnsdb.DomainID(d), during.Add(time.Duration(d)*time.Second))
			if o.Status != nsset.StatusOK {
				fails++
			} else if o.Stale {
				stale++
			}
		}
		fmt.Printf("%-42s %9.1f%% %9d\n", sc.name, 100*float64(fails)/nDomains, stale)
	}

	fmt.Println("\ncaching absorbs the attack for end users exactly as long as TTLs outlive it;")
	fmt.Println("the paper's platform measures with an empty cache to see the worst case (§4.3).")
}
