// Command russia reproduces the §5.2 case studies: the March 2022 attacks
// against Russian government infrastructure shortly after the invasion of
// Ukraine — mil.ru (Ministry of Defense) and the RDZ railways — measured
// with the reactive NS-exhaustive probing platform (§4.3.1).
//
// Run with:
//
//	go run ./examples/russia
package main

import (
	"fmt"
	"math/rand/v2"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/reactive"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/study"
)

func main() {
	cfg := study.QuickConfig()
	// only the RSDoS/telescope side and the reactive prober are needed;
	// restrict the daily sweep to March 2022 for speed
	cfg.FromDay = dayOf(2022, 3, 1)
	cfg.ToDay = dayOf(2022, 3, 25)
	fmt.Println("running Russian-infrastructure case studies (March 2022)...")
	s := study.Run(cfg)
	cs := s.Schedule.CaseStudies

	platform := reactive.NewPlatform(reactive.DefaultConfig(), s.World.DB, s.Resolver, rand.New(rand.NewPCG(11, 11)))

	fmt.Println("\n== mil.ru (Ministry of Defense) ==")
	fmt.Printf("three nameservers, all on %s (single /24, single ASN, unicast)\n", cs.MilRuNS[0].Slash24())
	if a, ok := findAttack(s.Attacks, cs.MilRuNS, cs.MilRuStart, cs.MilRuEnd); ok {
		fmt.Printf("RSDoS inference: under attack %s .. %s (%.1f days)\n",
			a.Start().Format("Jan 2 15:04"), a.End().Format("Jan 2 15:04"), a.Duration().Hours()/24)
		c := platform.React(a)
		fmt.Printf("reactive probing: %d probes across %d domains\n", len(c.Probes), len(c.Domains))
		fmt.Printf("domain unresolvable for the whole attack: %v\n", c.UnresolvableDuringAttack())
		fmt.Println("(the operator geofenced the network from March 12; our NL vantage sees a blackout)")
		printDaily(c)
	} else {
		fmt.Println("attack not found in feed")
	}

	fmt.Println("\n== RDZ railways ==")
	if a, ok := findAttack(s.Attacks, cs.RZDNS, cs.RZDStart, cs.RZDEnd); ok {
		fmt.Printf("RSDoS inference: under attack %s .. %s\n",
			a.Start().Format("Jan 2 15:04"), a.End().Format("Jan 2 15:04"))
		fmt.Printf("IT-ARMY Telegram channel posted the 3 NS IPs at %s — 12 minutes after the inferred start\n",
			cs.RZDTelegram.Format("Jan 2 15:04"))
		c := platform.React(a)
		if rec, ok := c.RecoveryTime(0.5); ok {
			fmt.Printf("reactive probing: domain recovered to >=50%% availability at %s (attack ended %s)\n",
				rec.Format("Jan 2 15:04"), a.End().Format("Jan 2 15:04"))
		} else {
			fmt.Println("reactive probing: no recovery within the 24h campaign")
		}
		printHourlyAvailability(c)

		// §9 future work: the same campaign from multiple vantage
		// points, exposing what a single vantage cannot see
		fmt.Println("\nmulti-vantage view (availability spread per hour):")
		vp := reactive.NewVantagePlatform(reactive.DefaultConfig(), s.World.DB, s.Net,
			s.Config.Resolver, reactive.StandardVantages(), rand.New(rand.NewPCG(12, 12)))
		campaigns := vp.React(a)
		printDisagreements(reactive.Disagreements(campaigns))
	} else {
		fmt.Println("attack not found in feed")
	}
}

// printDisagreements condenses per-window vantage spreads into hourly rows.
func printDisagreements(dis []reactive.VantageDisagreement) {
	type agg struct {
		min, max float64
		n        int
	}
	hours := map[string]*agg{}
	var order []string
	for _, d := range dis {
		h := d.Window.Start().Format("01-02 15:00")
		a := hours[h]
		if a == nil {
			a = &agg{min: 1}
			hours[h] = a
			order = append(order, h)
		}
		a.min = minF(a.min, d.Min)
		a.max = maxF(a.max, d.Max)
		a.n++
	}
	for i, h := range order {
		if i >= 8 {
			fmt.Printf("  ... (%d more hours)\n", len(order)-i)
			break
		}
		a := hours[h]
		fmt.Printf("  %s  worst vantage %5.1f%%  best vantage %5.1f%%\n", h, a.min*100, a.max*100)
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func dayOf(y int, m time.Month, d int) clock.Day {
	return clock.DayOf(time.Date(y, m, d, 0, 0, 0, 0, time.UTC))
}

func findAttack(attacks []rsdos.Attack, nss []netx.Addr, from, to time.Time) (rsdos.Attack, bool) {
	for _, a := range attacks {
		for _, n := range nss {
			if a.Victim == n && a.Overlaps(from, to) {
				return a, true
			}
		}
	}
	return rsdos.Attack{}, false
}

// printDaily prints one availability line per day of the campaign.
func printDaily(c *reactive.Campaign) {
	type agg struct{ ok, total int }
	days := map[string]*agg{}
	var order []string
	for _, wa := range c.Availability() {
		d := wa.Window.Start().Format("2006-01-02")
		a := days[d]
		if a == nil {
			a = &agg{}
			days[d] = a
			order = append(order, d)
		}
		a.ok += wa.OK
		a.total += wa.Total
	}
	for _, d := range order {
		a := days[d]
		fmt.Printf("  %s  availability %5.1f%%  (%d probes)\n", d, 100*float64(a.ok)/float64(a.total), a.total)
	}
}

// printHourlyAvailability prints one line per hour of the campaign.
func printHourlyAvailability(c *reactive.Campaign) {
	type agg struct{ ok, total int }
	hours := map[string]*agg{}
	var order []string
	for _, wa := range c.Availability() {
		h := wa.Window.Start().Format("01-02 15:00")
		a := hours[h]
		if a == nil {
			a = &agg{}
			hours[h] = a
			order = append(order, h)
		}
		a.ok += wa.OK
		a.total += wa.Total
	}
	for _, h := range order {
		a := hours[h]
		bar := ""
		n := int(20 * float64(a.ok) / float64(a.total))
		for i := 0; i < n; i++ {
			bar += "#"
		}
		fmt.Printf("  %s  %5.1f%% %s\n", h, 100*float64(a.ok)/float64(a.total), bar)
	}
}
