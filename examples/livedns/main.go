// Command livedns exercises the real-socket DNS path: it loads a small
// synthetic world into the authoritative server (internal/authserver),
// binds it on loopback UDP+TCP, and performs the same explicit NS queries
// OpenINTEL performs (§3.2) over actual sockets, printing answers and
// measured round-trip times. It finishes with a short internal/dnsload
// run against the live server, reporting the sustained answer rate,
// latency quantiles, and loss of the concurrent serving engine.
//
// Run with:
//
//	go run ./examples/livedns
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/dnsload"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/resolver"
	"dnsddos/internal/scenario"
)

func main() {
	cfg := scenario.DefaultWorldConfig()
	cfg.Domains = 200
	cfg.GenericProviders = 10
	world := scenario.GenerateWorld(cfg)

	zone := authserver.FromDB(world.DB)
	srv := authserver.NewServer(zone, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatalf("starting authoritative server: %v", err)
	}
	defer srv.Close()
	fmt.Printf("authoritative server for %d domains serving on %s (UDP+TCP)\n\n",
		len(world.DB.Domains), addr)

	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	ctx := context.Background()

	samples := []string{
		world.DB.Domains[0].Name,
		world.DB.Domains[len(world.DB.Domains)/2].Name,
		"mil.ru",
		"rzd.ru",
		"does-not-exist.example",
	}
	for _, name := range samples {
		msg, rtt, err := client.Query(ctx, addr, name, dnswire.TypeNS)
		if err != nil {
			fmt.Printf("NS %-28s error: %v\n", name, err)
			continue
		}
		fmt.Printf("NS %-28s rcode=%s rtt=%s\n", name, msg.Header.RCode, rtt.Round(time.Microsecond))
		for _, rr := range msg.Answers {
			fmt.Printf("   %s NS %s\n", rr.Name, rr.NS)
		}
		for _, rr := range msg.Additional {
			if rr.Type == dnswire.TypeA {
				fmt.Printf("   %s A %s (glue)\n", rr.Name, rr.A)
			}
		}
	}

	// the DNS-over-TCP path — the protocol most attacks in the study
	// target (§6.2)
	fmt.Println("\nDNS-over-TCP:")
	ctxT, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	msg, err := authserver.QueryTCP(ctxT, addr, "mil.ru", dnswire.TypeNS)
	if err != nil {
		log.Fatalf("tcp query: %v", err)
	}
	fmt.Printf("NS mil.ru over TCP: rcode=%s answers=%d\n", msg.Header.RCode, len(msg.Answers))

	// resolve a nameserver's own A record (glue host)
	host := world.DB.Nameservers[0].Host
	msgA, rttA, err := client.Query(ctx, addr, host, dnswire.TypeA)
	if err != nil {
		log.Fatalf("A query: %v", err)
	}
	fmt.Printf("\nA  %-28s rcode=%s rtt=%s\n", host, msgA.Header.RCode, rttA.Round(time.Microsecond))
	for _, rr := range msgA.Answers {
		fmt.Printf("   %s A %s\n", rr.Name, rr.A)
	}

	// finally, measure what the concurrent engine sustains: a one-second
	// load run over the same live socket (dnsperfbench-style)
	names := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		names = append(names, world.DB.Domains[i*len(world.DB.Domains)/16].Name)
	}
	fmt.Println("\nload test (UDP, 1s, 16 senders, unthrottled):")
	res, err := dnsload.Run(ctx, dnsload.Config{
		Addr:        addr,
		Names:       names,
		Concurrency: 16,
		Duration:    time.Second,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		log.Fatalf("load run: %v", err)
	}
	fmt.Print(res.Summary())
	st := srv.Stats()
	fmt.Printf("server counters: udp answered=%d dropped=%d malformed=%d\n",
		st.UDPAnswered, st.UDPDropped, st.UDPMalformed)
}
