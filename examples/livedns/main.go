// Command livedns exercises the real-socket DNS path: it loads a small
// synthetic world into the authoritative server (internal/authserver),
// binds it on loopback UDP+TCP, and performs the same explicit NS queries
// OpenINTEL performs (§3.2) over actual sockets, printing answers and
// measured round-trip times. It then runs a short internal/dnsload
// benchmark against the live server, and finishes with a scripted
// "attack window": netem-style faults (loss + latency jitter) engage on
// the server's own listener while load keeps flowing, and the RTT-impact
// ratio — attack-window latency over baseline, the paper's Eq. 1 — is
// printed alongside the failure breakdown (the Fig. 4 narrative: RTTs
// inflate and losses mount during the event, then recover).
//
// Run with:
//
//	go run ./examples/livedns
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/dnsload"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/faultinject"
	"dnsddos/internal/obs"
	"dnsddos/internal/resolver"
	"dnsddos/internal/scenario"
)

// histLine renders one obs histogram snapshot as a fixed-width line.
func histLine(h obs.HistogramSnapshot) string {
	return fmt.Sprintf("count=%5d  p50 %8s  p90 %8s  p99 %8s  max %8s",
		h.Count,
		time.Duration(h.P50NS).Round(time.Microsecond),
		time.Duration(h.P90NS).Round(time.Microsecond),
		time.Duration(h.P99NS).Round(time.Microsecond),
		time.Duration(h.MaxNS).Round(time.Microsecond))
}

func main() {
	cfg := scenario.DefaultWorldConfig()
	cfg.Domains = 200
	cfg.GenericProviders = 10
	world := scenario.GenerateWorld(cfg)

	zone := authserver.FromDB(world.DB)
	srv := authserver.NewServer(zone, nil)
	// interpose the fault injector on the listener now; it stays inert
	// (zero profile) until the attack window below engages it
	inj := faultinject.New(1)
	srv.WrapUDP = func(pc net.PacketConn) net.PacketConn {
		return faultinject.WrapPacketConn(pc, inj)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatalf("starting authoritative server: %v", err)
	}
	defer srv.Close()
	fmt.Printf("authoritative server for %d domains serving on %s (UDP+TCP)\n\n",
		len(world.DB.Domains), addr)

	// everything below speaks through the unified resolver.Client
	// interface — UDP, TCP and the retrying LiveResolver are
	// interchangeable transports
	var client resolver.Client = &resolver.UDPClient{Timeout: 2 * time.Second}
	ctx := context.Background()

	samples := []string{
		world.DB.Domains[0].Name,
		world.DB.Domains[len(world.DB.Domains)/2].Name,
		"mil.ru",
		"rzd.ru",
		"does-not-exist.example",
	}
	for _, name := range samples {
		msg, rtt, err := client.Query(ctx, addr, name, dnswire.TypeNS)
		if err != nil {
			fmt.Printf("NS %-28s error: %v\n", name, err)
			continue
		}
		fmt.Printf("NS %-28s rcode=%s rtt=%s\n", name, msg.Header.RCode, rtt.Round(time.Microsecond))
		for _, rr := range msg.Answers {
			fmt.Printf("   %s NS %s\n", rr.Name, rr.NS)
		}
		for _, rr := range msg.Additional {
			if rr.Type == dnswire.TypeA {
				fmt.Printf("   %s A %s (glue)\n", rr.Name, rr.A)
			}
		}
	}

	// the DNS-over-TCP path — the protocol most attacks in the study
	// target (§6.2) — through the same Client interface
	fmt.Println("\nDNS-over-TCP:")
	var tcpClient resolver.Client = &resolver.TCPClient{Timeout: 2 * time.Second}
	msg, rttT, err := tcpClient.Query(ctx, addr, "mil.ru", dnswire.TypeNS)
	if err != nil {
		log.Fatalf("tcp query: %v", err)
	}
	fmt.Printf("NS mil.ru over TCP: rcode=%s answers=%d rtt=%s\n",
		msg.Header.RCode, len(msg.Answers), rttT.Round(time.Microsecond))

	// resolve a nameserver's own A record (glue host)
	host := world.DB.Nameservers[0].Host
	msgA, rttA, err := client.Query(ctx, addr, host, dnswire.TypeA)
	if err != nil {
		log.Fatalf("A query: %v", err)
	}
	fmt.Printf("\nA  %-28s rcode=%s rtt=%s\n", host, msgA.Header.RCode, rttA.Round(time.Microsecond))
	for _, rr := range msgA.Answers {
		fmt.Printf("   %s A %s\n", rr.Name, rr.A)
	}

	// finally, measure what the concurrent engine sustains: a one-second
	// load run over the same live socket (dnsperfbench-style)
	names := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		names = append(names, world.DB.Domains[i*len(world.DB.Domains)/16].Name)
	}
	fmt.Println("\nload test (UDP, 1s, 16 senders, unthrottled):")
	res, err := dnsload.Run(ctx, dnsload.Config{
		Addr:        addr,
		Names:       names,
		Concurrency: 16,
		Duration:    time.Second,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		log.Fatalf("load run: %v", err)
	}
	fmt.Print(res.Summary())
	st := srv.Stats()
	fmt.Printf("server counters: udp answered=%d dropped=%d malformed=%d\n",
		st.UDPAnswered, st.UDPDropped, st.UDPMalformed)

	// ---- scripted attack window (Eq. 1 / Fig. 4 narrative) ----
	// Three phases against the same live server: a healthy baseline, an
	// attack window with 40% loss and 3ms±2ms added latency on the
	// listener, and recovery. The retrying LiveResolver keeps resolving
	// through the window — at inflated RTT — which is exactly the
	// paper's observation for victims that kept some capacity.
	fmt.Println("\nattack window (loss 40%, +3ms±2ms on the server listener):")
	// each phase observes into its own obs registry, so the three RTT
	// distributions stay separable — the per-phase histograms the paper's
	// Fig. 4 narrative needs
	phaseOrder := []string{"baseline", "attack", "recovered"}
	phaseRegs := make(map[string]*obs.Registry, len(phaseOrder))
	loadPhase := func(label string) *dnsload.Result {
		reg := obs.New()
		phaseRegs[label] = reg
		r, err := dnsload.Run(ctx, dnsload.Config{
			Addr:        addr,
			Names:       names,
			Concurrency: 8,
			TargetQPS:   400,
			Duration:    1500 * time.Millisecond,
			Timeout:     500 * time.Millisecond,
			Metrics:     reg,
		})
		if err != nil {
			log.Fatalf("%s load run: %v", label, err)
		}
		fmt.Printf("  %-9s answered %5d/%5d  loss %5.1f%%  p50 %8s  p99 %8s  failures: timeout=%d decode=%d\n",
			label, r.Received, r.Sent, 100*r.LossRate(),
			r.LatencyQuantile(0.5).Round(time.Microsecond),
			r.LatencyQuantile(0.99).Round(time.Microsecond),
			r.Timeouts, r.DecodeErrors)
		return r
	}

	baseline := loadPhase("baseline")
	inj.SetProfile(faultinject.Profile{
		Drop:    0.4,
		Latency: 3 * time.Millisecond,
		Jitter:  2 * time.Millisecond,
	})
	under := loadPhase("attack")
	inj.SetProfile(faultinject.Profile{})
	recovered := loadPhase("recovered")

	// Eq. 1: impact-on-RTT = in-window RTT over the pre-event average
	if b := baseline.MeanLatency(); b > 0 && under.Received > 0 {
		fmt.Printf("  RTT-impact ratio (attack mean / baseline mean, Eq. 1): %.1fx\n",
			float64(under.MeanLatency())/float64(b))
		fmt.Printf("  recovery ratio: %.1fx\n",
			float64(recovered.MeanLatency())/float64(b))
	}

	// per-phase client-side RTT distributions from the obs layer, next to
	// the server's own latency histogram over the whole run
	fmt.Println("\n  per-phase RTT histograms (dnsload.rtt):")
	for _, label := range phaseOrder {
		h := phaseRegs[label].Snapshot().Histograms["dnsload.rtt"]
		fmt.Printf("  %-9s %s\n", label, histLine(h))
	}
	if h, ok := srv.Metrics().Snapshot().Histograms["authserver.udp_latency"]; ok {
		fmt.Printf("  %-9s %s (authserver.udp_latency, all phases)\n", "server", histLine(h))
	}

	// a retrying stub through the same window: the LiveResolver absorbs
	// the loss with per-try timeouts and retries, trading RTT for success
	inj.SetProfile(faultinject.Profile{Drop: 0.4, Latency: 3 * time.Millisecond, Jitter: 2 * time.Millisecond})
	lreg := obs.New()
	lr := resolver.NewLiveResolver(resolver.LiveConfig{
		PerTryTimeout: 300 * time.Millisecond,
		MaxTries:      4,
		Backoff:       20 * time.Millisecond,
		Metrics:       lreg,
	}, nil)
	okCount, totalTries := 0, 0
	var totalRTT time.Duration
	const probes = 10
	for i := 0; i < probes; i++ {
		out := lr.Resolve(ctx, []string{addr}, samples[0], dnswire.TypeNS)
		if out.Status.String() == "OK" {
			okCount++
			totalTries += out.Tries
			totalRTT += out.RTT
		}
	}
	inj.SetProfile(faultinject.Profile{})
	if okCount > 0 {
		fmt.Printf("  live resolver through the window: %d/%d resolved, avg %.1f tries, avg RTT %s\n",
			okCount, probes, float64(totalTries)/float64(okCount),
			(totalRTT / time.Duration(okCount)).Round(time.Microsecond))
	} else {
		fmt.Printf("  live resolver through the window: 0/%d resolved\n", probes)
	}
	lsnap := lreg.Snapshot()
	if h, ok := lsnap.Histograms["resolver.live.try_rtt"]; ok {
		fmt.Printf("  per-try RTT through the window: %s (tries=%d timeouts=%d)\n",
			histLine(h),
			lsnap.Counters["resolver.live.tries"],
			lsnap.Counters["resolver.live.try_timeouts"])
	}
}
