// Command transip reproduces the §5.1 case study: the December 2020 and
// March 2021 DDoS attacks against TransIP, a large Dutch DNS and hosting
// provider with three unicast nameservers behind a single ASN.
//
// It prints the Table 2 telescope metrics, the Figure 2 RTT time series
// (including the December impairment overhang and the scrubbing-bounded
// March window), and the Figure 3 timeout plateau.
//
// Run with:
//
//	go run ./examples/transip
package main

import (
	"fmt"
	"os"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/nsset"
	"dnsddos/internal/report"
	"dnsddos/internal/study"
)

func main() {
	cfg := study.QuickConfig()
	// measure only the days around the two attacks: the join needs the
	// day before each attack for the Eq. 1 baseline and the NS snapshot
	cfg.FromDay = clock.DayOf(time.Date(2020, 11, 28, 0, 0, 0, 0, time.UTC))
	cfg.ToDay = clock.DayOf(time.Date(2021, 3, 5, 0, 0, 0, 0, time.UTC))
	fmt.Println("running TransIP case study (measuring Nov 28 2020 .. Mar 5 2021)...")
	s := study.Run(cfg)

	cs := s.Schedule.CaseStudies
	k := nsset.KeyOf(cs.TransIPNS[:])
	scale := s.Telescope.ScaleFactor()

	// §5.1: attack reach and hosting profile of the affected domains
	if cas := s.Pipeline.Classify(s.Attacks); len(cas) > 0 {
		for _, ca := range cas {
			if ca.Victim != cs.TransIPNS[0] || ca.Class != core.ClassDNSDirect {
				continue
			}
			fmt.Printf("\ndomains potentially affected: %d\n", s.Pipeline.DomainsUnderAttack(ca))
			fmt.Print("TLD breakdown:")
			for i, t := range s.Pipeline.AffectedTLDs(ca) {
				if i >= 3 {
					break
				}
				fmt.Printf(" .%s %.0f%%", t.TLD, t.Share*100)
			}
			n, share := s.Pipeline.ThirdPartyWebShare(ca)
			fmt.Printf("\nthird-party web hosting: %d domains (%.0f%%) — these only lose DNS, not their web server\n", n, share*100)
			break
		}
	}

	fmt.Println("\n== inferred attacks on the three TransIP nameservers ==")
	for _, a := range s.Attacks {
		for i, addr := range cs.TransIPNS {
			if a.Victim != addr {
				continue
			}
			fmt.Printf("NS %c: %s .. %s  peak %.1f Kppm at telescope (≈%.0f Kpps at victim), est. %.2fM attacker IPs\n",
				'A'+i, a.Start().Format("2006-01-02 15:04"), a.End().Format("2006-01-02 15:04"),
				a.PeakPPM/1000, a.InferredVictimPPS(scale)/1000,
				float64(a.InferredAttackerIPs(scale))/1e6)
		}
	}

	fmt.Println("\n== Figure 2: resolution time around the December attack ==")
	dec := s.Pipeline.SeriesFor(k, cs.TransIPDecStart.Add(-3*time.Hour), cs.TransIPDecEnd.Add(10*time.Hour))
	printHourly(dec, cs.TransIPDecStart, cs.TransIPDecEnd)

	fmt.Println("\n== Figure 2/3: resolution time and timeouts around the March attack ==")
	mar := s.Pipeline.SeriesFor(k, cs.TransIPMarStart.Add(-3*time.Hour), cs.TransIPMarEnd.Add(10*time.Hour))
	printHourly(mar, cs.TransIPMarStart, cs.TransIPMarEnd)

	fmt.Println("\n== full 5-minute series (CSV) ==")
	report.Figure2(os.Stdout, "TransIP March 2021", mar)
}

// printHourly condenses the 5-minute series into hourly rows with an
// in-attack marker, the way Figure 2 marks attack hours with a red cross.
func printHourly(samples []core.RTTSample, start, end time.Time) {
	type hourAgg struct {
		sum      time.Duration
		n        int
		domains  int
		timeouts int
	}
	hours := map[time.Time]*hourAgg{}
	var order []time.Time
	for _, s := range samples {
		h := s.Window.Start().Truncate(time.Hour)
		a := hours[h]
		if a == nil {
			a = &hourAgg{}
			hours[h] = a
			order = append(order, h)
		}
		if s.AvgRTT > 0 {
			a.sum += s.AvgRTT
			a.n++
		}
		a.domains += s.Domains
		a.timeouts += s.Timeouts
	}
	for _, h := range order {
		a := hours[h]
		marker := " "
		if !h.Before(start.Truncate(time.Hour)) && h.Before(end) {
			marker = "x" // attack hour
		}
		avg := time.Duration(0)
		if a.n > 0 {
			avg = a.sum / time.Duration(a.n)
		}
		toPct := 0.0
		if a.domains > 0 {
			toPct = float64(a.timeouts) / float64(a.domains) * 100
		}
		fmt.Printf("%s [%s] avg RTT %8.2f ms  timeouts %5.1f%%  (%d domains)\n",
			h.Format("2006-01-02 15:00"), marker, float64(avg)/1e6, toPct, a.domains)
	}
}
