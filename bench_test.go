// Package dnsddos_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (§5–§6). Each benchmark
// prints its table/series once per process (so `go test -bench` output
// doubles as the reproduction report) and measures the marginal cost of
// recomputing that analysis from the joined dataset.
//
// The expensive part — generating the world, the 17-month schedule, the
// telescope observations, and the daily measurement sweeps — runs once and
// is shared by all benchmarks. Set DNSDDOS_BENCH_SCALE=full for the
// full-size world (slower, closer counts), default is a mid-size world
// that preserves every shape.
package dnsddos_test

import (
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"testing"
	"time"

	"dnsddos/internal/core"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/reactive"
	"dnsddos/internal/report"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/stats"
	"dnsddos/internal/study"
)

var (
	studyOnce sync.Once
	theStudy  *study.Study
)

// benchStudy runs (once) the shared end-to-end study all benchmarks join
// against.
func benchStudy(b *testing.B) *study.Study {
	if b != nil {
		b.Helper()
	}
	studyOnce.Do(func() {
		cfg := study.DefaultConfig()
		if os.Getenv("DNSDDOS_BENCH_SCALE") != "full" {
			cfg.World.Domains = 15000
			cfg.World.GenericProviders = 100
			cfg.Attacks.TotalAttacks = 25000
		}
		start := time.Now()
		theStudy = study.Run(cfg)
		fmt.Printf("# shared study: domains=%d attacks=%d events=%d (%.1fs)\n",
			len(theStudy.World.DB.Domains), len(theStudy.Attacks), len(theStudy.Events),
			time.Since(start).Seconds())
	})
	return theStudy
}

var printOnce sync.Map

// printReport emits a table/series once per process.
func printReport(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// --- Table 1 -----------------------------------------------------------

func BenchmarkTable1_RSDoSDataset(b *testing.B) {
	s := benchStudy(b)
	printReport("t1", func() {
		report.Table1(os.Stdout, core.SummarizeDataset(s.Attacks, s.World.Topo))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.SummarizeDataset(s.Attacks, s.World.Topo)
	}
}

// --- Table 2 -----------------------------------------------------------

// transIPRows extracts the per-nameserver telescope metrics for the two
// scripted TransIP attacks from the inferred feed.
func transIPRows(s *study.Study) []report.Table2Row {
	cs := s.Schedule.CaseStudies
	labels := map[netx.Addr]string{}
	for i, a := range cs.TransIPNS {
		labels[a] = string(rune('A' + i))
	}
	scale := s.Telescope.ScaleFactor()
	var rows []report.Table2Row
	add := func(name string, from, to time.Time) {
		for _, a := range s.Attacks {
			l, ok := labels[a.Victim]
			if !ok || !a.Overlaps(from, to) {
				continue
			}
			rows = append(rows, report.Table2Row{
				Attack:      name,
				NS:          l,
				PeakPPM:     a.PeakPPM,
				InferredPPS: a.InferredVictimPPS(scale),
				Gbps:        a.InferredGbps(scale, 1400),
				AttackerIPs: a.InferredAttackerIPs(scale),
			})
		}
	}
	add("Dec 2020", cs.TransIPDecStart, cs.TransIPDecEnd)
	add("Mar 2021", cs.TransIPMarStart, cs.TransIPMarEnd)
	return rows
}

func BenchmarkTable2_TransIPAttackMetrics(b *testing.B) {
	s := benchStudy(b)
	printReport("t2", func() { report.Table2(os.Stdout, transIPRows(s)) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(transIPRows(s)) < 4 {
			b.Fatal("TransIP attacks not inferred from telescope data")
		}
	}
}

// --- Table 3 -----------------------------------------------------------

func BenchmarkTable3_MonthlyActivity(b *testing.B) {
	s := benchStudy(b)
	printReport("t3", func() { report.Table3(os.Stdout, core.MonthlySummary(s.Classified)) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.MonthlySummary(s.Classified)
	}
}

// --- Table 4 -----------------------------------------------------------

func BenchmarkTable4_TopASNs(b *testing.B) {
	s := benchStudy(b)
	printReport("t4", func() { report.Table4(os.Stdout, core.TopASNs(s.Classified, s.World.Topo, 10)) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.TopASNs(s.Classified, s.World.Topo, 10)
	}
}

// --- Table 5 -----------------------------------------------------------

func BenchmarkTable5_TopIPs(b *testing.B) {
	s := benchStudy(b)
	printReport("t5", func() { report.Table5(os.Stdout, s.Pipeline.TopIPs(s.Classified, 10)) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Pipeline.TopIPs(s.Classified, 10)
	}
}

// --- Table 6 -----------------------------------------------------------

func BenchmarkTable6_MostAffected(b *testing.B) {
	s := benchStudy(b)
	printReport("t6", func() { report.Table6(os.Stdout, core.MostAffected(s.Events, 10)) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.MostAffected(s.Events, 10)
	}
}

// --- Figure 2 / Figure 3: TransIP time series --------------------------

func transIPNSSet(s *study.Study) nsset.Key {
	return nsset.KeyOf(s.Schedule.CaseStudies.TransIPNS[:])
}

func BenchmarkFigure2_TransIPRTT(b *testing.B) {
	s := benchStudy(b)
	cs := s.Schedule.CaseStudies
	k := transIPNSSet(s)
	printReport("f2", func() {
		report.Figure2(os.Stdout, "TransIP December 2020 (RTT)",
			s.Pipeline.SeriesFor(k, cs.TransIPDecStart.Add(-2*time.Hour), cs.TransIPDecEnd.Add(12*time.Hour)))
		report.Figure2(os.Stdout, "TransIP March 2021 (RTT)",
			s.Pipeline.SeriesFor(k, cs.TransIPMarStart.Add(-2*time.Hour), cs.TransIPMarEnd.Add(12*time.Hour)))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Pipeline.SeriesFor(k, cs.TransIPDecStart, cs.TransIPDecEnd)
	}
}

func BenchmarkFigure3_TransIPTimeouts(b *testing.B) {
	s := benchStudy(b)
	cs := s.Schedule.CaseStudies
	k := transIPNSSet(s)
	printReport("f3", func() {
		report.Figure3(os.Stdout, "TransIP March 2021 (timeouts)",
			s.Pipeline.SeriesFor(k, cs.TransIPMarStart.Add(-2*time.Hour), cs.TransIPMarEnd.Add(6*time.Hour)))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Pipeline.SeriesFor(k, cs.TransIPMarStart, cs.TransIPMarEnd)
	}
}

// --- Figure 5 -----------------------------------------------------------

func BenchmarkFigure5_AffectedDomains(b *testing.B) {
	s := benchStudy(b)
	printReport("f5", func() { report.Figure5(os.Stdout, s.Pipeline.MonthlyAffectedDomains(s.Classified)) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Pipeline.MonthlyAffectedDomains(s.Classified)
	}
}

// --- Figure 6 -----------------------------------------------------------

func BenchmarkFigure6_PortDistribution(b *testing.B) {
	s := benchStudy(b)
	printReport("f6", func() {
		report.Figure6(os.Stdout, core.PortDistribution(s.Classified, nil))
		// the §6.3.1 twist: port mix of *successful* attacks skews to 53
		failing := make(map[int]bool)
		for _, e := range s.Events {
			if e.Timeouts+e.ServFails > 0 {
				failing[e.Attack.ID] = true
			}
		}
		fmt.Println("# successful (failure-causing) attacks only:")
		report.Figure6(os.Stdout, core.PortDistribution(s.Classified, func(ca core.ClassifiedAttack) bool {
			return failing[ca.ID]
		}))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.PortDistribution(s.Classified, nil)
	}
}

// --- Figure 7 / Figure 8 -------------------------------------------------

func BenchmarkFigure7_FailureRate(b *testing.B) {
	s := benchStudy(b)
	printReport("f7", func() {
		report.Scatter(os.Stdout, "Figure 7: failure rate vs hosted domains", "hosted_domains", "failure_pct", core.FailureScatter(s.Events))
		fb := core.BreakdownFailures(s.Events)
		fmt.Printf("events,%d\nwith_failures,%d\ncomplete_failures,%d\ntimeout_share,%.2f\nservfail_share,%.2f\nunicast_share_of_failing,%.2f\n",
			fb.Events, fb.WithFailures, fb.CompleteFails,
			stats.Ratio(float64(fb.Timeouts), float64(fb.Timeouts+fb.ServFails)),
			stats.Ratio(float64(fb.ServFails), float64(fb.Timeouts+fb.ServFails)),
			fb.UnicastFailShare)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.FailureScatter(s.Events)
	}
}

func BenchmarkFigure8_RTTImpact(b *testing.B) {
	s := benchStudy(b)
	printReport("f8", func() {
		pts := core.ImpactScatter(s.Events)
		report.Scatter(os.Stdout, "Figure 8: RTT impact vs hosted domains", "hosted_domains", "impact_x", pts)
		var over10, over100 int
		for _, p := range pts {
			if p.Y >= 10 {
				over10++
			}
			if p.Y >= 100 {
				over100++
			}
		}
		fmt.Printf("events_with_impact,%d\nshare>=10x,%.3f\nshare>=100x,%.3f\n",
			len(pts), stats.Ratio(float64(over10), float64(len(pts))), stats.Ratio(float64(over100), float64(len(pts))))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.ImpactScatter(s.Events)
	}
}

// --- Figure 9 / Figure 10 ------------------------------------------------

func BenchmarkFigure9_IntensityCorrelation(b *testing.B) {
	s := benchStudy(b)
	printReport("f9", func() {
		r := core.IntensityCorrelation(s.Events)
		report.Correlation(os.Stdout, "Figure 9: RTT impact vs telescope intensity", r)
		h := stats.NewHistogram(0, 5, 50) // log10(ppm) histogram
		for _, x := range r.X {
			if x > 0 {
				h.Add(log10(x))
			}
		}
		fmt.Printf("ppm_log10_modes,%v\n", h.Modes(3))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.IntensityCorrelation(s.Events)
	}
}

func log10(x float64) float64 {
	l := 0.0
	for x >= 10 {
		x /= 10
		l++
	}
	for x < 1 {
		x *= 10
		l--
	}
	// linear interpolation within the decade is enough for mode finding
	return l + (x-1)/9
}

func BenchmarkFigure10_DurationCorrelation(b *testing.B) {
	s := benchStudy(b)
	printReport("f10", func() {
		r := core.DurationCorrelation(s.Events)
		report.Correlation(os.Stdout, "Figure 10: RTT impact vs attack duration", r)
		report.DurationModes(os.Stdout, core.DurationHistogram(s.Classified, 180))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.DurationCorrelation(s.Events)
	}
}

// --- Figures 11–13: resilience techniques -------------------------------

func BenchmarkFigure11_AnycastEfficacy(b *testing.B) {
	s := benchStudy(b)
	printReport("f11", func() { report.Groups(os.Stdout, "Figure 11: impact by anycast class", core.ImpactByAnycast(s.Events)) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.ImpactByAnycast(s.Events)
	}
}

func BenchmarkFigure12_ASDiversity(b *testing.B) {
	s := benchStudy(b)
	printReport("f12", func() {
		report.Groups(os.Stdout, "Figure 12: impact by AS diversity", core.ImpactByASDiversity(s.Events))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.ImpactByASDiversity(s.Events)
	}
}

func BenchmarkFigure13_PrefixDiversity(b *testing.B) {
	s := benchStudy(b)
	printReport("f13", func() {
		report.Groups(os.Stdout, "Figure 13: impact by /24 prefix diversity", core.ImpactByPrefixDiversity(s.Events))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.ImpactByPrefixDiversity(s.Events)
	}
}

// --- §5.2 case studies and the reactive platform ------------------------

func BenchmarkCaseStudy_Russia(b *testing.B) {
	s := benchStudy(b)
	cs := s.Schedule.CaseStudies
	platform := reactive.NewPlatform(reactive.DefaultConfig(), s.World.DB, s.Resolver, rand.New(rand.NewPCG(5, 5)))
	milAttack, okMil := findAttack(s.Attacks, cs.MilRuNS, cs.MilRuStart, cs.MilRuEnd)
	rzdAttack, okRzd := findAttack(s.Attacks, cs.RZDNS, cs.RZDStart, cs.RZDEnd)
	if !okMil || !okRzd {
		b.Fatal("case-study attacks not inferred from telescope data")
	}
	printReport("russia", func() {
		mil := platform.React(milAttack)
		fmt.Printf("# mil.ru: attack %s..%s, probes=%d, unresolvable_during_attack=%v\n",
			milAttack.Start().Format(time.RFC3339), milAttack.End().Format(time.RFC3339),
			len(mil.Probes), mil.UnresolvableDuringAttack())
		rzd := platform.React(rzdAttack)
		rec, ok := rzd.RecoveryTime(0.5)
		fmt.Printf("# rzd.ru: attack %s..%s, telegram_post=%s (start+12m), recovered=%v at %s\n",
			rzdAttack.Start().Format(time.RFC3339), rzdAttack.End().Format(time.RFC3339),
			cs.RZDTelegram.Format(time.RFC3339), ok, rec.Format(time.RFC3339))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := platform.React(rzdAttack)
		if len(c.Probes) == 0 {
			b.Fatal("no probes")
		}
	}
}

// newBenchPlatform builds a reactive platform over the shared study.
func newBenchPlatform(s *study.Study) *reactive.Platform {
	return reactive.NewPlatform(reactive.DefaultConfig(), s.World.DB, s.Resolver, rand.New(rand.NewPCG(9, 9)))
}

func findAttack(attacks []rsdos.Attack, nss []netx.Addr, from, to time.Time) (rsdos.Attack, bool) {
	for _, a := range attacks {
		for _, n := range nss {
			if a.Victim == n && a.Overlaps(from, to) {
				return a, true
			}
		}
	}
	return rsdos.Attack{}, false
}

func BenchmarkReactive_Trigger(b *testing.B) {
	s := benchStudy(b)
	platform := reactive.NewPlatform(reactive.DefaultConfig(), s.World.DB, s.Resolver, rand.New(rand.NewPCG(6, 6)))
	// feed a sample of DNS-direct attacks through the bus-driven watcher
	var sample []rsdos.Attack
	for _, ca := range s.Classified {
		if ca.Class == core.ClassDNSDirect && len(sample) < 20 {
			sample = append(sample, ca.Attack)
		}
	}
	if len(sample) == 0 {
		b.Fatal("no DNS-direct attacks")
	}
	printReport("reactive", func() {
		results := reactive.NewBus[*reactive.Campaign]()
		out := results.Subscribe(64)
		feed := make(chan rsdos.Attack, len(sample))
		for _, a := range sample {
			feed <- a
		}
		close(feed)
		go reactive.NewWatcher(platform).Run(feed, results)
		var n, probes int
		var worstDelay time.Duration
		for c := range out {
			n++
			probes += len(c.Probes)
			if d := c.Triggered.Sub(c.Attack.Start()); d > worstDelay {
				worstDelay = d
			}
		}
		fmt.Printf("# reactive: campaigns=%d probes=%d worst_trigger_delay=%s (<=10m)\n", n, probes, worstDelay)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = platform.React(sample[i%len(sample)])
	}
}
