// join_bench_test.go benchmarks the two join engines head to head on the
// shared benchmark study (the default mid-size worldgen scale): the
// interval-indexed sharded engine versus the legacy per-event linear
// scan (core.WithLegacyJoin). Run via `make bench-join`, which archives
// the numbers in BENCH_join.json; `make test` runs a -benchtime=1x smoke
// so the harness itself cannot rot.
package dnsddos_test

import (
	"context"
	"testing"

	"dnsddos/internal/core"
	"dnsddos/internal/daystore"
)

// joinPipeline builds a pipeline over the shared study's world with the
// given engine options. Index construction happens here (once), matching
// production use where one pipeline serves many joins.
func joinPipeline(b *testing.B, opts ...core.Option) *core.Pipeline {
	b.Helper()
	s := benchStudy(b)
	base := []core.Option{
		core.WithConfig(s.Config.Pipeline),
		core.WithAggregator(s.Agg),
		core.WithCensus(s.World.Census),
		core.WithTopology(s.World.Topo),
		core.WithOpenResolvers(s.World.OpenRes),
		core.WithDomainNSSets(s.Engine.DomainNSSets()),
	}
	return core.NewPipeline(s.World.DB, append(base, opts...)...)
}

// BenchmarkJoin measures one full attack×snapshot join (§4.2) over the
// 17-month schedule. The acceptance bar for the indexed engine is ≥5x
// over legacy at this scale.
func BenchmarkJoin(b *testing.B) {
	s := benchStudy(b)
	ctx := context.Background()

	b.Run("indexed", func(b *testing.B) {
		p := joinPipeline(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			events, err := p.EventsContext(ctx, s.Attacks)
			if err != nil {
				b.Fatal(err)
			}
			if len(events) == 0 {
				b.Fatal("indexed join produced no events")
			}
		}
	})

	b.Run("legacy", func(b *testing.B) {
		p := joinPipeline(b, core.WithLegacyJoin())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			events, err := p.EventsContext(ctx, s.Attacks)
			if err != nil {
				b.Fatal(err)
			}
			if len(events) == 0 {
				b.Fatal("legacy join produced no events")
			}
		}
	})

	// the out-of-core day store: same indexed engine, but every day
	// snapshot read back through mmap-backed columnar views instead of the
	// in-memory aggregator (seal cost paid once, outside the timer)
	b.Run("columnar", func(b *testing.B) {
		dir := b.TempDir()
		if _, err := daystore.Build(dir, s.Agg.Snapshot()); err != nil {
			b.Fatal(err)
		}
		set, err := daystore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer set.Close()
		p := joinPipeline(b, core.WithDayStore(set))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			events, err := p.EventsContext(ctx, s.Attacks)
			if err != nil {
				b.Fatal(err)
			}
			if len(events) == 0 {
				b.Fatal("columnar join produced no events")
			}
		}
	})
}
