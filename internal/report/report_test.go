package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tbl := Table{
		Title:   "T",
		Headers: []string{"a", "long-header"},
		Rows:    [][]string{{"value-longer-than-header", "x"}},
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// all data lines have equal width
	for i := 2; i < len(lines); i++ {
		if len(lines[i]) != len(lines[1]) {
			t.Errorf("ragged table:\n%s", buf.String())
		}
	}
}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, core.DatasetSummary{Attacks: 100, IPs: 90, Slash24s: 80, ASes: 20})
	out := buf.String()
	for _, want := range []string{"100", "90", "80", "20", "#Attacks"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Formatting(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf, []Table2Row{
		{Attack: "Dec 2020", NS: "A", PeakPPM: 21800, InferredPPS: 124000, Gbps: 1.39, AttackerIPs: 5_790_000},
		{Attack: "Dec 2020", NS: "B", PeakPPM: 3800, InferredPPS: 21600, Gbps: 0.247, AttackerIPs: 1_570_000},
	})
	out := buf.String()
	for _, want := range []string{"21.8K", "124K", "1.4 Gbps", "5.79M", "247 Mbps"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Totals(t *testing.T) {
	var buf bytes.Buffer
	rows := []core.MonthRow{
		{Month: clock.Month{Year: 2020, Month: time.November}, DNSAttacks: 10, OtherAttack: 990, DNSIPs: 8, OtherIPs: 700},
		{Month: clock.Month{Year: 2020, Month: time.December}, DNSAttacks: 20, OtherAttack: 1980, DNSIPs: 15, OtherIPs: 1400},
	}
	Table3(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "Total") || !strings.Contains(out, "30 (1.00%)") {
		t.Errorf("Table3 totals wrong:\n%s", out)
	}
}

func TestTables456(t *testing.T) {
	var buf bytes.Buffer
	Table4(&buf, []core.RankedASN{{ASN: 15169, Org: "Google", Attacks: 7324}})
	Table5(&buf, []core.RankedIP{{IP: netx.MustParseAddr("8.8.4.4"), Attacks: 2803, Type: "open resolver"}})
	Table6(&buf, []core.AffectedOrg{{Org: "NForce B.V.", Impact: 348}})
	out := buf.String()
	for _, want := range []string{"15169", "Google", "8.8.4.4", "2803", "NForce B.V.", "348x"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFigures2And3(t *testing.T) {
	samples := []core.RTTSample{
		{Window: 100, AvgRTT: 5 * time.Millisecond, Domains: 10, Timeouts: 0},
		{Window: 101, AvgRTT: 50 * time.Millisecond, Domains: 10, Timeouts: 2},
	}
	var buf bytes.Buffer
	Figure2(&buf, "test", samples)
	Figure3(&buf, "test", samples)
	out := buf.String()
	if !strings.Contains(out, "5.00,10") || !strings.Contains(out, "50.00,10") {
		t.Errorf("Figure2 rows missing:\n%s", out)
	}
	if !strings.Contains(out, "20.0,10") {
		t.Errorf("Figure3 timeout pct missing:\n%s", out)
	}
}

func TestFigure5Sorted(t *testing.T) {
	var buf bytes.Buffer
	Figure5(&buf, map[clock.Month]int{
		{Year: 2021, Month: time.February}: 5,
		{Year: 2020, Month: time.December}: 9,
	})
	out := buf.String()
	if strings.Index(out, "2020-12") > strings.Index(out, "2021-02") {
		t.Errorf("months not sorted:\n%s", out)
	}
}

func TestFigure6(t *testing.T) {
	ps := core.PortStats{
		Total: 10, SinglePort: 8,
		ProtoCounts:       map[packet.Protocol]int{packet.ProtoTCP: 9, packet.ProtoUDP: 1},
		SinglePortByProto: map[packet.Protocol]int{packet.ProtoTCP: 7, packet.ProtoUDP: 1},
		PortCounts: map[packet.Protocol]map[uint16]int{
			packet.ProtoTCP: {80: 4, 53: 3},
			packet.ProtoUDP: {53: 1},
		},
	}
	var buf bytes.Buffer
	Figure6(&buf, ps)
	out := buf.String()
	if !strings.Contains(out, "single_port_share,0.800") {
		t.Errorf("single port share missing:\n%s", out)
	}
	if !strings.Contains(out, "port_share,TCP,80,0.571") {
		t.Errorf("TCP/80 share missing:\n%s", out)
	}
}

func TestScatterAndCorrelationAndGroups(t *testing.T) {
	var buf bytes.Buffer
	Scatter(&buf, "fig", "x", "y", []core.ScatterPoint{{X: 100, Y: 5, SizeBin: 2}})
	Correlation(&buf, "corr", core.CorrelationResult{Pearson: 0.12, Defined: true, X: []float64{1, 2}, Y: []float64{3, 4}})
	Correlation(&buf, "undef", core.CorrelationResult{})
	Groups(&buf, "groups", []core.GroupImpact{{Label: "unicast", N: 3, Mean: 5, Median: 2, P95: 12, Max: 20, Share10x: 0.3}})
	out := buf.String()
	for _, want := range []string{"100,5,100-1K", "pearson,0.120", "pearson,undefined", "unicast,3,5.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestDurationModes(t *testing.T) {
	h := stats.NewHistogram(0, 180, 36)
	for i := 0; i < 100; i++ {
		h.Add(15)
		h.Add(62)
	}
	var buf bytes.Buffer
	DurationModes(&buf, h)
	out := buf.String()
	if !strings.Contains(out, "mode_1,") || !strings.Contains(out, "n,200") {
		t.Errorf("modes output:\n%s", out)
	}
}

func TestFailureBreakdownRenderer(t *testing.T) {
	var buf bytes.Buffer
	FailureBreakdown(&buf, core.FailureBreakdown{
		Events: 100, WithFailures: 5, CompleteFails: 2,
		Timeouts: 92, ServFails: 8,
		UnicastFailShare: 0.99, SingleASNFailShare: 0.81, SinglePrefixFailShare: 0.6,
	})
	out := buf.String()
	for _, want := range []string{"events,100", "timeout_share,0.92", "servfail_share,0.08", "single_asn_share_of_complete,0.81"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestEventsCSV(t *testing.T) {
	events := []core.Event{
		{
			Attack:          core.ClassifiedAttack{},
			HostedDomains:   42,
			MeasuredDomains: 7,
			OK:              5, Timeouts: 2,
			Impact: 12.5, HasImpact: true,
			FailureRate: 0.285,
			Provider:    "TestDNS",
		},
	}
	var buf bytes.Buffer
	if err := EventsCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	for _, want := range []string{"TestDNS", "42", "12.500", "0.285"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("row missing %q: %s", want, lines[1])
		}
	}
}
