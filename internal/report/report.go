// Package report renders the analysis results as the tables and series the
// paper presents: ASCII tables for Tables 1–6 and CSV-ish series for the
// figures, printed to any io.Writer. The benchmark harness and cmd/report
// both use it, so "regenerating a table" is a one-call operation.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/packet"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/stats"
)

// Table is a generic ASCII table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(t.Headers)
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// Table1 renders the RSDoS dataset summary.
func Table1(w io.Writer, ds core.DatasetSummary) {
	t := Table{
		Title:   "Table 1: RSDoS dataset (study window)",
		Headers: []string{"#Attacks", "#IPs", "#/24 Prefixes", "#ASes"},
		Rows: [][]string{{
			fmt.Sprintf("%d", ds.Attacks),
			fmt.Sprintf("%d", ds.IPs),
			fmt.Sprintf("%d", ds.Slash24s),
			fmt.Sprintf("%d", ds.ASes),
		}},
	}
	t.Fprint(w)
}

// Table2Row is one attack × nameserver cell block of Table 2.
type Table2Row struct {
	Attack      string
	NS          string
	PeakPPM     float64
	InferredPPS float64
	Gbps        float64
	AttackerIPs int64
}

// Table2 renders the TransIP attack metrics.
func Table2(w io.Writer, rows []Table2Row) {
	t := Table{
		Title:   "Table 2: TransIP attack metrics (per targeted nameserver)",
		Headers: []string{"Attack", "NS", "Telescope PPM", "Inferred pps", "Inferred volume", "Attacker IPs"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Attack, r.NS,
			fmt.Sprintf("%.1fK", r.PeakPPM/1000),
			fmt.Sprintf("%.0fK", r.InferredPPS/1000),
			fmtVolume(r.Gbps),
			fmtCount(r.AttackerIPs),
		})
	}
	t.Fprint(w)
}

func fmtVolume(gbps float64) string {
	if gbps >= 1 {
		return fmt.Sprintf("%.1f Gbps", gbps)
	}
	return fmt.Sprintf("%.0f Mbps", gbps*1000)
}

func fmtCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Table3 renders the monthly attack activity summary.
func Table3(w io.Writer, rows []core.MonthRow) {
	t := Table{
		Title:   "Table 3: Monthly attack activity",
		Headers: []string{"Month", "#DNS Attacks", "#Other Attacks", "Total", "DNS IPs", "Other IPs", "Total IPs"},
	}
	var totDNS, totOther, totDNSIPs, totOtherIPs int
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Month.String(),
			fmt.Sprintf("%d (%.2f%%)", r.DNSAttacks, r.DNSShare()*100),
			fmt.Sprintf("%d", r.OtherAttack),
			fmt.Sprintf("%d", r.TotalAttacks()),
			fmt.Sprintf("%d", r.DNSIPs),
			fmt.Sprintf("%d", r.OtherIPs),
			fmt.Sprintf("%d", r.TotalIPs()),
		})
		totDNS += r.DNSAttacks
		totOther += r.OtherAttack
		totDNSIPs += r.DNSIPs
		totOtherIPs += r.OtherIPs
	}
	share := stats.Ratio(float64(totDNS), float64(totDNS+totOther))
	t.Rows = append(t.Rows, []string{
		"Total",
		fmt.Sprintf("%d (%.2f%%)", totDNS, share*100),
		fmt.Sprintf("%d", totOther),
		fmt.Sprintf("%d", totDNS+totOther),
		fmt.Sprintf("%d", totDNSIPs),
		fmt.Sprintf("%d", totOtherIPs),
		fmt.Sprintf("%d", totDNSIPs+totOtherIPs),
	})
	t.Fprint(w)
}

// Table4 renders the top attacked ASNs.
func Table4(w io.Writer, rows []core.RankedASN) {
	t := Table{
		Title:   "Table 4: Top ASNs attacked",
		Headers: []string{"ASN", "#Attacks", "Company"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", uint32(r.ASN)),
			fmt.Sprintf("%d", r.Attacks),
			r.Org,
		})
	}
	t.Fprint(w)
}

// Table5 renders the top attacked IPs.
func Table5(w io.Writer, rows []core.RankedIP) {
	t := Table{
		Title:   "Table 5: Top IPs attacked",
		Headers: []string{"IP", "#Attacks", "Type"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.IP.String(), fmt.Sprintf("%d", r.Attacks), r.Type})
	}
	t.Fprint(w)
}

// Table6 renders the most affected companies by RTT impact.
func Table6(w io.Writer, rows []core.AffectedOrg) {
	t := Table{
		Title:   "Table 6: Most affected companies (worst RTT impact)",
		Headers: []string{"Company", "Impact on RTT"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Org, fmt.Sprintf("%.0fx", r.Impact)})
	}
	t.Fprint(w)
}

// Series prints a two-column CSV series with a header, the figure-data
// format of the harness.
func Series(w io.Writer, title, xlabel, ylabel string, xs, ys []float64) {
	fmt.Fprintf(w, "# %s\n%s,%s\n", title, xlabel, ylabel)
	for i := range xs {
		fmt.Fprintf(w, "%g,%g\n", xs[i], ys[i])
	}
}

// Figure2 renders the TransIP RTT time-series (per attack phase).
func Figure2(w io.Writer, title string, samples []core.RTTSample) {
	fmt.Fprintf(w, "# Figure 2: %s\nwindow_start,avg_rtt_ms,domains\n", title)
	for _, s := range samples {
		fmt.Fprintf(w, "%s,%.2f,%d\n", s.Window.Start().Format(time.RFC3339), float64(s.AvgRTT)/1e6, s.Domains)
	}
}

// Figure3 renders the timeout-fraction series.
func Figure3(w io.Writer, title string, samples []core.RTTSample) {
	fmt.Fprintf(w, "# Figure 3: %s\nwindow_start,timeout_pct,domains\n", title)
	for _, s := range samples {
		pct := 0.0
		if s.Domains > 0 {
			pct = float64(s.Timeouts) / float64(s.Domains) * 100
		}
		fmt.Fprintf(w, "%s,%.1f,%d\n", s.Window.Start().Format(time.RFC3339), pct, s.Domains)
	}
}

// Figure5 renders monthly potentially-affected domain counts.
func Figure5(w io.Writer, counts map[clock.Month]int) {
	fmt.Fprintf(w, "# Figure 5: Registered domains potentially affected, by month\nmonth,domains\n")
	months := make([]clock.Month, 0, len(counts))
	for m := range counts {
		months = append(months, m)
	}
	sort.Slice(months, func(i, j int) bool { return months[i].Before(months[j]) })
	for _, m := range months {
		fmt.Fprintf(w, "%s,%d\n", m, counts[m])
	}
}

// Figure6 renders the protocol/port distribution.
func Figure6(w io.Writer, ps core.PortStats) {
	fmt.Fprintf(w, "# Figure 6: Protocol and port distribution of DNS-infrastructure attacks\n")
	fmt.Fprintf(w, "attacks,%d\nsingle_port_share,%.3f\n", ps.Total, ps.SinglePortShare())
	for _, proto := range []packet.Protocol{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP} {
		fmt.Fprintf(w, "proto_share,%s,%.3f\n", proto, ps.ProtoShare(proto))
	}
	for _, proto := range []packet.Protocol{packet.ProtoTCP, packet.ProtoUDP} {
		type pc struct {
			port  uint16
			count int
		}
		var list []pc
		for port, c := range ps.PortCounts[proto] {
			list = append(list, pc{port, c})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].count != list[j].count {
				return list[i].count > list[j].count
			}
			return list[i].port < list[j].port
		})
		for i, e := range list {
			if i >= 5 {
				break
			}
			fmt.Fprintf(w, "port_share,%s,%d,%.3f\n", proto, e.port, ps.PortShare(proto, e.port))
		}
	}
}

// Scatter renders a scatter dataset (Figures 7 and 8).
func Scatter(w io.Writer, title, xlabel, ylabel string, pts []core.ScatterPoint) {
	fmt.Fprintf(w, "# %s\n%s,%s,size_bin\n", title, xlabel, ylabel)
	for _, p := range pts {
		fmt.Fprintf(w, "%g,%g,%s\n", p.X, p.Y, stats.LogBinLabel(p.SizeBin))
	}
}

// Correlation renders a Figure 9/10 correlation result.
func Correlation(w io.Writer, title string, r core.CorrelationResult) {
	fmt.Fprintf(w, "# %s\n", title)
	if r.Defined {
		fmt.Fprintf(w, "pearson,%.3f\nn,%d\n", r.Pearson, len(r.X))
	} else {
		fmt.Fprintf(w, "pearson,undefined\nn,%d\n", len(r.X))
	}
}

// Groups renders Figure 11/12/13 group-impact summaries.
func Groups(w io.Writer, title string, groups []core.GroupImpact) {
	fmt.Fprintf(w, "# %s\ngroup,n,mean,median,p95,max,share>=10x,share>=100x\n", title)
	for _, g := range groups {
		fmt.Fprintf(w, "%s,%d,%.2f,%.2f,%.2f,%.2f,%.3f,%.3f\n",
			g.Label, g.N, g.Mean, g.Median, g.P95, g.Max, g.Share10x, g.Share100)
	}
}

// DurationModes renders the §6.5 duration histogram modes.
func DurationModes(w io.Writer, h *stats.Histogram) {
	fmt.Fprintf(w, "# Attack duration distribution (minutes)\n")
	modes := h.Modes(5)
	for i, m := range modes {
		if i >= 4 {
			break
		}
		fmt.Fprintf(w, "mode_%d,%.0f\n", i+1, m)
	}
	fmt.Fprintf(w, "n,%d\n", h.N)
}

// FeedSummary prints a one-line summary of an attack feed.
func FeedSummary(w io.Writer, attacks []rsdos.Attack) {
	var totalPk int64
	for _, a := range attacks {
		totalPk += a.TotalPackets
	}
	fmt.Fprintf(w, "attacks=%d backscatter_packets=%d\n", len(attacks), totalPk)
}

// FailureBreakdown renders the §6.3.1 complete-failure statistics.
func FailureBreakdown(w io.Writer, fb core.FailureBreakdown) {
	fmt.Fprintf(w, "# Resolution failures (§6.3.1)\n")
	fmt.Fprintf(w, "events,%d\nevents_with_failures,%d\ncomplete_failures,%d\n",
		fb.Events, fb.WithFailures, fb.CompleteFails)
	total := fb.Timeouts + fb.ServFails
	fmt.Fprintf(w, "timeout_share,%.2f\nservfail_share,%.2f\n",
		stats.Ratio(float64(fb.Timeouts), float64(total)),
		stats.Ratio(float64(fb.ServFails), float64(total)))
	fmt.Fprintf(w, "unicast_share_of_failing,%.2f\nsingle_asn_share_of_complete,%.2f\nsingle_prefix_share_of_failing,%.2f\n",
		fb.UnicastFailShare, fb.SingleASNFailShare, fb.SinglePrefixFailShare)
}

// SkippedDayRow is one quarantined day-shard of a supervised study run
// (study.RunReport.SkippedDays, minus the stack trace).
type SkippedDayRow struct {
	Day      clock.Day
	Reason   string
	Attempts int
}

// SkippedDays renders the quarantine report of a supervised run: which
// daily sweeps were lost to panics or watchdog timeouts, so a completed
// run is never mistaken for a complete one.
func SkippedDays(w io.Writer, rows []SkippedDayRow) {
	if len(rows) == 0 {
		fmt.Fprintf(w, "Skipped days: none\n")
		return
	}
	t := Table{
		Title:   fmt.Sprintf("Skipped days: %d day-shard(s) quarantined", len(rows)),
		Headers: []string{"Day", "Attempts", "Reason"},
	}
	for _, r := range rows {
		reason := r.Reason
		if i := strings.IndexByte(reason, '\n'); i >= 0 {
			reason = reason[:i]
		}
		t.Rows = append(t.Rows, []string{r.Day.String(), strconv.Itoa(r.Attempts), reason})
	}
	t.Fprint(w)
}

// eventsHeader is the schema of the joined-events CSV (cmd/joinpipe's
// output and the offline-analysis interchange format).
var eventsHeader = []string{
	"attack_id", "victim", "start", "end", "provider", "nsset_size",
	"hosted_domains", "measured_domains", "ok", "timeouts", "servfails",
	"impact", "failure_rate", "anycast_class", "num_asns", "num_prefixes",
}

// EventsCSV writes the joined attack events as CSV with a header row.
func EventsCSV(w io.Writer, events []core.Event) error {
	if err := EventsCSVHeader(w); err != nil {
		return err
	}
	return EventsCSVRows(w, events)
}

// EventsCSVHeader writes just the header row of the joined-events CSV —
// the once-per-file half of an incremental writer (cmd/streamjoin emits
// rows batch by batch as the stream closes windows).
func EventsCSVHeader(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(eventsHeader); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// EventsCSVRows appends event rows without a header, in feed order.
func EventsCSVRows(w io.Writer, events []core.Event) error {
	cw := csv.NewWriter(w)
	for _, e := range events {
		impact := ""
		if e.HasImpact {
			impact = strconv.FormatFloat(e.Impact, 'f', 3, 64)
		}
		row := []string{
			strconv.Itoa(e.Attack.ID),
			e.Attack.Victim.String(),
			e.Attack.Start().UTC().Format(time.RFC3339),
			e.Attack.End().UTC().Format(time.RFC3339),
			e.Provider,
			strconv.Itoa(e.NSSet.Size()),
			strconv.Itoa(e.HostedDomains),
			strconv.Itoa(e.MeasuredDomains),
			strconv.Itoa(e.OK),
			strconv.Itoa(e.Timeouts),
			strconv.Itoa(e.ServFails),
			impact,
			strconv.FormatFloat(e.FailureRate, 'f', 3, 64),
			e.AnycastClass.String(),
			strconv.Itoa(e.Diversity.NumASNs),
			strconv.Itoa(e.Diversity.NumPrefixes),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
