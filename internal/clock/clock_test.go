package clock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestWindowOfBoundaries(t *testing.T) {
	if w := WindowOf(StudyStart); w != 0 {
		t.Errorf("WindowOf(StudyStart) = %d", w)
	}
	if w := WindowOf(StudyStart.Add(WindowDur - time.Nanosecond)); w != 0 {
		t.Errorf("end of first window = %d", w)
	}
	if w := WindowOf(StudyStart.Add(WindowDur)); w != 1 {
		t.Errorf("start of second window = %d", w)
	}
	if w := WindowOf(StudyStart.Add(-time.Nanosecond)); w != -1 {
		t.Errorf("just before start = %d, want -1", w)
	}
}

func TestWindowStartEndInverse(t *testing.T) {
	f := func(mins uint32) bool {
		tm := StudyStart.Add(time.Duration(mins%900000) * time.Minute)
		w := WindowOf(tm)
		return !tm.Before(w.Start()) && tm.Before(w.End())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowDay(t *testing.T) {
	w := WindowOf(StudyStart.Add(26 * time.Hour))
	if d := w.Day(); d != 1 {
		t.Errorf("window at +26h in day %d, want 1", d)
	}
}

func TestDayOfAndPrev(t *testing.T) {
	d := DayOf(time.Date(2020, 12, 1, 15, 30, 0, 0, time.UTC))
	if d != 30 {
		t.Errorf("2020-12-01 = day %d, want 30", d)
	}
	if d.Prev() != 29 {
		t.Errorf("Prev = %d", d.Prev())
	}
	if got := d.String(); got != "2020-12-01" {
		t.Errorf("String = %q", got)
	}
}

func TestDayWindowAlignment(t *testing.T) {
	// first window of day N is window N*288
	for _, d := range []Day{0, 1, 100, 516} {
		if w := d.FirstWindow(); int64(w) != int64(d)*WindowsPerDay {
			t.Errorf("day %d first window = %d", d, w)
		}
	}
}

func TestStudyMonths(t *testing.T) {
	months := StudyMonths()
	if len(months) != 17 {
		t.Fatalf("study has %d months, want 17", len(months))
	}
	if months[0] != (Month{2020, time.November}) {
		t.Errorf("first month = %v", months[0])
	}
	if months[16] != (Month{2022, time.March}) {
		t.Errorf("last month = %v", months[16])
	}
	for i := 1; i < len(months); i++ {
		if !months[i-1].Before(months[i]) {
			t.Errorf("months not increasing at %d", i)
		}
	}
}

func TestMonthOfYearWrap(t *testing.T) {
	m := Month{2020, time.December}
	if m.Next() != (Month{2021, time.January}) {
		t.Errorf("December.Next = %v", m.Next())
	}
}

func TestStudyDaysAndWindows(t *testing.T) {
	days := StudyDays()
	// Nov 2020 (30) + Dec (31) + 2021 (365) + Jan+Feb+Mar 2022 (31+28+31)
	if days != 30+31+365+31+28+31 {
		t.Errorf("StudyDays = %d", days)
	}
	if StudyWindows() != int64(days)*WindowsPerDay {
		t.Errorf("StudyWindows = %d", StudyWindows())
	}
}

func TestMonthOf(t *testing.T) {
	m := MonthOf(time.Date(2021, 7, 14, 3, 0, 0, 0, time.UTC))
	if m != (Month{2021, time.July}) {
		t.Errorf("MonthOf = %v", m)
	}
	if m.String() != "2021-07" {
		t.Errorf("String = %q", m.String())
	}
}
