// Package clock defines the simulation time base: the paper's 17-month study
// window (2020-11-01 .. 2022-03-31 UTC) discretized into 5-minute tumbling
// windows (the granularity of both the RSDoS feed and the aggregated
// OpenINTEL metrics, §4.1) and UTC days (the OpenINTEL measurement cadence).
package clock

import (
	"fmt"
	"time"
)

// WindowDur is the tumbling-window width shared by the RSDoS feed and the
// NSSet metric aggregation.
const WindowDur = 5 * time.Minute

// StudyStart and StudyEnd bound the longitudinal analysis interval (§4):
// November 1, 2020 through March 31, 2022 (exclusive end at Apr 1).
var (
	StudyStart = time.Date(2020, time.November, 1, 0, 0, 0, 0, time.UTC)
	StudyEnd   = time.Date(2022, time.April, 1, 0, 0, 0, 0, time.UTC)
)

// Window identifies a 5-minute tumbling window as an index from StudyStart.
type Window int64

// WindowOf returns the window containing t. Times before StudyStart map to
// negative windows; callers inside the study window never see those.
func WindowOf(t time.Time) Window {
	d := t.Sub(StudyStart)
	if d < 0 {
		// floor division for negative offsets
		return Window((d - WindowDur + time.Nanosecond) / WindowDur)
	}
	return Window(d / WindowDur)
}

// Start returns the wall-clock start of the window.
func (w Window) Start() time.Time { return StudyStart.Add(time.Duration(w) * WindowDur) }

// End returns the exclusive end of the window.
func (w Window) End() time.Time { return w.Start().Add(WindowDur) }

// Day returns the day the window starts in.
func (w Window) Day() Day { return DayOf(w.Start()) }

// String renders the window start in RFC 3339.
func (w Window) String() string {
	return fmt.Sprintf("w%d[%s]", int64(w), w.Start().Format("2006-01-02T15:04"))
}

// WindowsPerDay is the number of 5-minute windows in a UTC day.
const WindowsPerDay = int64(24 * time.Hour / WindowDur)

// Day identifies a UTC day as an index from StudyStart.
type Day int32

// DayOf returns the day containing t.
func DayOf(t time.Time) Day {
	d := t.Sub(StudyStart)
	if d < 0 {
		return Day((d - 24*time.Hour + time.Nanosecond) / (24 * time.Hour))
	}
	return Day(d / (24 * time.Hour))
}

// Start returns midnight UTC of the day.
func (d Day) Start() time.Time { return StudyStart.AddDate(0, 0, int(d)) }

// End returns the exclusive end of the day.
func (d Day) End() time.Time { return d.Start().AddDate(0, 0, 1) }

// FirstWindow returns the first 5-minute window of the day.
func (d Day) FirstWindow() Window { return WindowOf(d.Start()) }

// Prev returns the previous day; the join's "day before the attack" snapshot
// (§4.2) and the Eq. 1 baseline both use it.
func (d Day) Prev() Day { return d - 1 }

// String renders the date.
func (d Day) String() string { return d.Start().Format("2006-01-02") }

// Month identifies a calendar month as (year, month); Table 3 and Figure 5
// aggregate per month.
type Month struct {
	Year  int
	Month time.Month
}

// MonthOf returns the calendar month containing t.
func MonthOf(t time.Time) Month {
	u := t.UTC()
	return Month{Year: u.Year(), Month: u.Month()}
}

// Start returns midnight UTC on the first of the month.
func (m Month) Start() time.Time {
	return time.Date(m.Year, m.Month, 1, 0, 0, 0, 0, time.UTC)
}

// Next returns the following calendar month.
func (m Month) Next() Month {
	t := m.Start().AddDate(0, 1, 0)
	return Month{Year: t.Year(), Month: t.Month()}
}

// Before reports whether m precedes o.
func (m Month) Before(o Month) bool {
	return m.Year < o.Year || (m.Year == o.Year && m.Month < o.Month)
}

// String renders "2020-11".
func (m Month) String() string { return fmt.Sprintf("%04d-%02d", m.Year, int(m.Month)) }

// StudyMonths returns the 17 months of the analysis interval in order.
func StudyMonths() []Month {
	var out []Month
	end := MonthOf(StudyEnd.Add(-time.Nanosecond))
	for m := MonthOf(StudyStart); !end.Before(m); m = m.Next() {
		out = append(out, m)
	}
	return out
}

// StudyDays returns the number of days in the analysis interval.
func StudyDays() int {
	return int(StudyEnd.Sub(StudyStart) / (24 * time.Hour))
}

// StudyWindows returns the number of 5-minute windows in the interval.
func StudyWindows() int64 {
	return int64(StudyEnd.Sub(StudyStart) / WindowDur)
}
