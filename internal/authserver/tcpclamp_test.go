package authserver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
)

// hugeGlueZone builds a delegation whose full response (answers + glue)
// exceeds the 64 KiB TCP frame, but whose answer section alone fits.
func hugeGlueZone(t *testing.T) *Zone {
	t.Helper()
	zone := NewZone()
	for i := 0; i < 800; i++ {
		host := fmt.Sprintf("nameserver-%04d-with-quite-a-long-padding-label.very-long-provider-name.example", i)
		zone.AddNS("huge.example", host)
		for a := 0; a < 4; a++ {
			zone.AddA(host, netx.Addr(uint32(0x0a000000+i*4+a)))
		}
	}
	return zone
}

// hugeAnswerZone builds a delegation whose answer section alone exceeds
// the 64 KiB TCP frame even with no glue at all.
func hugeAnswerZone(t *testing.T) *Zone {
	t.Helper()
	zone := NewZone()
	for i := 0; i < 1200; i++ {
		host := fmt.Sprintf("nameserver-%04d-with-quite-a-long-padding-label.very-long-provider-name.example", i)
		zone.AddNS("huge.example", host)
	}
	return zone
}

// TestTCPOversizedResponseShedsGlue: a response past the 16-bit length
// prefix must not be written with a wrapped length (the seed silently
// corrupted the frame); the server drops the additional section first.
func TestTCPOversizedResponseShedsGlue(t *testing.T) {
	zone := hugeGlueZone(t)
	// the full encoding really is oversized, and answers alone are not
	full, err := dnswire.Encode(zone.Answer(dnswire.Question{
		Name: "huge.example", Type: dnswire.TypeNS, Class: dnswire.ClassIN}))
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= maxTCPMessage {
		t.Fatalf("test zone too small: full response is %d bytes", len(full))
	}

	srv := NewServer(zone, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m, err := QueryTCP(ctx, addr, "huge.example", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeNoError {
		t.Fatalf("rcode = %v", m.Header.RCode)
	}
	if len(m.Answers) != 800 {
		t.Errorf("answers = %d, want all 800 NS records", len(m.Answers))
	}
	if len(m.Additional) != 0 {
		t.Errorf("additional = %d, want glue shed to fit the frame", len(m.Additional))
	}
	if m.Header.Truncated {
		t.Error("TC semantics do not apply to TCP")
	}
}

// TestTCPOversizedAnswerServfails: when even the glue-less message cannot
// fit a TCP frame the server answers SERVFAIL instead of corrupting the
// length prefix.
func TestTCPOversizedAnswerServfails(t *testing.T) {
	zone := hugeAnswerZone(t)
	noGlue := zone.Answer(dnswire.Question{
		Name: "huge.example", Type: dnswire.TypeNS, Class: dnswire.ClassIN})
	noGlue.Additional = nil
	wire, err := dnswire.Encode(noGlue)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) <= maxTCPMessage {
		t.Fatalf("test zone too small: glue-less response is %d bytes", len(wire))
	}

	srv := NewServer(zone, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m, err := QueryTCP(ctx, addr, "huge.example", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("rcode = %v, want SERVFAIL", m.Header.RCode)
	}
	if len(m.Answers) != 0 {
		t.Errorf("answers = %d, want none", len(m.Answers))
	}
}
