package authserver

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
	"dnsddos/internal/obs"
	"dnsddos/internal/resolver"
)

// TestMetricsEndpointMatchesStats is the observability acceptance
// check: the registry served over -metrics-addr and the Stats()
// accessor are two views of the same atomic counters, so after real
// traffic the endpoint's numbers must equal Stats() exactly — not
// approximately — and the latency histogram must hold one sample per
// answered UDP query.
func TestMetricsEndpointMatchesStats(t *testing.T) {
	netx.NoGoroutineLeaks(t)

	addr, srv := startTestServer(t)
	ms, err := obs.Serve("127.0.0.1:0", srv.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	ctx := context.Background()
	const queries = 25
	for i := 0; i < queries; i++ {
		if _, _, err := client.Query(ctx, addr, "example.nl", dnswire.TypeNS); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	tctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, err := QueryTCP(tctx, addr, "example.nl", dnswire.TypeNS); err != nil {
		t.Fatal(err)
	}

	httpc := &http.Client{
		Timeout:   5 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	resp, err := httpc.Get("http://" + ms.Addr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("endpoint served invalid JSON: %v\n%s", err, body)
	}

	st := srv.Stats()
	exact := map[string]int64{
		"authserver.udp_received":       st.UDPReceived,
		"authserver.udp_answered":       st.UDPAnswered,
		"authserver.udp_dropped":        st.UDPDropped,
		"authserver.udp_shed_servfail":  st.UDPShedServFail,
		"authserver.udp_shed_truncated": st.UDPShedTruncated,
		"authserver.rrl_dropped":        st.RRLDropped,
		"authserver.rrl_slipped":        st.RRLSlipped,
		"authserver.udp_malformed":      st.UDPMalformed,
		"authserver.tcp_queries":        st.TCPQueries,
		"authserver.tcp_rejected":       st.TCPRejected,
	}
	for name, want := range exact {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d on the endpoint, Stats() says %d", name, got, want)
		}
	}
	if st.UDPAnswered != queries {
		t.Errorf("UDPAnswered = %d, want %d", st.UDPAnswered, queries)
	}

	h, ok := snap.Histograms["authserver.udp_latency"]
	if !ok {
		t.Fatal("endpoint missing authserver.udp_latency histogram")
	}
	if h.Count != st.UDPAnswered {
		t.Errorf("latency histogram holds %d samples, want one per answered query (%d)", h.Count, st.UDPAnswered)
	}
	if h.P99NS <= 0 || h.MaxNS < h.P99NS {
		t.Errorf("implausible latency quantiles: p99=%d max=%d", h.P99NS, h.MaxNS)
	}
	if th, ok := snap.Histograms["authserver.tcp_latency"]; !ok || th.Count != st.TCPQueries {
		t.Errorf("tcp latency histogram = %+v, want %d samples", th, st.TCPQueries)
	}
}
