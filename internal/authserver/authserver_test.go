package authserver

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"dnsddos/internal/dnsdb"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
	"dnsddos/internal/resolver"
)

// startTestServer spins up a server for a small zone on loopback.
func startTestServer(t *testing.T) (string, *Server) {
	t.Helper()
	zone := NewZone()
	zone.AddNS("example.nl", "ns1.dns.example")
	zone.AddNS("example.nl", "ns2.dns.example")
	zone.AddA("ns1.dns.example", netx.MustParseAddr("192.0.2.1"))
	zone.AddA("ns2.dns.example", netx.MustParseAddr("192.0.2.2"))
	zone.AddA("www.example.nl", netx.MustParseAddr("203.0.113.80"))
	srv := NewServer(zone, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, srv
}

func TestUDPQueryNS(t *testing.T) {
	addr, _ := startTestServer(t)
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	msg, rtt, err := client.Query(context.Background(), addr, "Example.NL.", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.RCode != dnswire.RCodeNoError || !msg.Header.Authoritative {
		t.Errorf("header = %+v", msg.Header)
	}
	if len(msg.Answers) != 2 {
		t.Fatalf("answers = %d", len(msg.Answers))
	}
	hosts := map[string]bool{}
	for _, rr := range msg.Answers {
		if rr.Type != dnswire.TypeNS || rr.Name != "example.nl" {
			t.Errorf("answer = %+v", rr)
		}
		hosts[rr.NS] = true
	}
	if !hosts["ns1.dns.example"] || !hosts["ns2.dns.example"] {
		t.Errorf("hosts = %v", hosts)
	}
	if len(msg.Additional) != 2 {
		t.Errorf("glue records = %d", len(msg.Additional))
	}
	if rtt <= 0 {
		t.Error("rtt must be positive")
	}
}

func TestUDPQueryA(t *testing.T) {
	addr, _ := startTestServer(t)
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	msg, _, err := client.Query(context.Background(), addr, "www.example.nl", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Answers) != 1 || msg.Answers[0].A != netx.MustParseAddr("203.0.113.80") {
		t.Errorf("answers = %+v", msg.Answers)
	}
}

func TestNXDomainWithSOA(t *testing.T) {
	addr, _ := startTestServer(t)
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	msg, _, err := client.Query(context.Background(), addr, "missing.example.nl", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("rcode = %v", msg.Header.RCode)
	}
	if len(msg.Authority) != 1 || msg.Authority[0].Type != dnswire.TypeSOA {
		t.Errorf("authority = %+v", msg.Authority)
	}
	// the SOA owner is the queried name's zone apex, not the root
	if got := msg.Authority[0].Name; got != "example.nl" {
		t.Errorf("SOA owner = %q, want zone apex %q", got, "example.nl")
	}
}

func TestNoDataForKnownName(t *testing.T) {
	addr, _ := startTestServer(t)
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	// example.nl exists (has NS) but no A record: NOERROR + SOA
	msg, _, err := client.Query(context.Background(), addr, "example.nl", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Header.RCode != dnswire.RCodeNoError || len(msg.Answers) != 0 {
		t.Errorf("nodata response = rcode %v, %d answers", msg.Header.RCode, len(msg.Answers))
	}
	if len(msg.Authority) != 1 {
		t.Errorf("authority = %+v", msg.Authority)
	}
}

func TestTCPQuery(t *testing.T) {
	addr, _ := startTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	msg, err := QueryTCP(ctx, addr, "example.nl", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Answers) != 2 {
		t.Errorf("TCP answers = %d", len(msg.Answers))
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, _ := startTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &resolver.UDPClient{Timeout: 3 * time.Second}
			msg, _, err := client.Query(context.Background(), addr, "example.nl", dnswire.TypeNS)
			if err != nil {
				errs <- err
				return
			}
			if len(msg.Answers) != 2 {
				errs <- context.DeadlineExceeded
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent query: %v", err)
	}
}

func TestClientTimeoutAgainstSlowServer(t *testing.T) {
	zone := NewZone()
	zone.AddNS("slow.example", "ns1.slow.example")
	srv := NewServer(zone, nil)
	srv.SetDelay(300 * time.Millisecond)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &resolver.UDPClient{Timeout: 50 * time.Millisecond}
	if _, _, err := client.Query(context.Background(), addr, "slow.example", dnswire.TypeNS); err == nil {
		t.Error("query against slow server should time out")
	}
	// with a generous timeout the same query succeeds
	client.Timeout = 2 * time.Second
	if _, _, err := client.Query(context.Background(), addr, "slow.example", dnswire.TypeNS); err != nil {
		t.Errorf("generous timeout should succeed: %v", err)
	}
}

func TestRefusedForNonINClass(t *testing.T) {
	zone := NewZone()
	resp := zone.Answer(dnswire.Question{Name: "x.example", Type: dnswire.TypeA, Class: 3})
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %v", resp.Header.RCode)
	}
}

func TestFromDBServesWholeWorld(t *testing.T) {
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	ns1, _ := db.AddNameserver(dnsdb.Nameserver{Host: "ns1.p.example", Addr: netx.MustParseAddr("192.0.2.1"), Provider: pid})
	ns2, _ := db.AddNameserver(dnsdb.Nameserver{Host: "ns2.p.example", Addr: netx.MustParseAddr("192.0.2.2"), Provider: pid})
	db.AddDomain(dnsdb.Domain{Name: "zone-a.example", NS: []dnsdb.NameserverID{ns1, ns2}})
	db.AddDomain(dnsdb.Domain{Name: "zone-b.example", NS: []dnsdb.NameserverID{ns1}})
	db.Freeze()

	zone := FromDB(db)
	srv := NewServer(zone, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	msg, _, err := client.Query(context.Background(), addr, "zone-a.example", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Answers) != 2 || len(msg.Additional) != 2 {
		t.Errorf("zone-a: %d answers, %d glue", len(msg.Answers), len(msg.Additional))
	}
	msgB, _, err := client.Query(context.Background(), addr, "zone-b.example", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgB.Answers) != 1 {
		t.Errorf("zone-b: %d answers", len(msgB.Answers))
	}
}

func TestDoubleStartRejected(t *testing.T) {
	_, srv := startTestServer(t)
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start should fail")
	}
}

func TestServerSurvivesGarbage(t *testing.T) {
	addr, _ := startTestServer(t)
	// blast malformed datagrams at the UDP socket
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		junk := make([]byte, i%37)
		for j := range junk {
			junk[j] = byte(i * j)
		}
		if _, err := conn.Write(junk); err != nil {
			t.Fatal(err)
		}
	}
	conn.Close()
	// a malformed TCP stream (bogus length prefix) must not wedge it
	tc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	tc.Write([]byte{0xff, 0xff, 1, 2, 3})
	tc.Close()
	// the server still answers real queries afterwards
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	m, _, err := client.Query(context.Background(), addr, "example.nl", dnswire.TypeNS)
	if err != nil {
		t.Fatalf("server wedged after garbage: %v", err)
	}
	if len(m.Answers) != 2 {
		t.Errorf("answers = %d", len(m.Answers))
	}
}

func TestServerIgnoresResponsePackets(t *testing.T) {
	addr, _ := startTestServer(t)
	// a spoofed "response" datagram must not be processed as a query
	// (reflection hygiene)
	resp := &dnswire.Message{Header: dnswire.Header{ID: 9, Response: true},
		Questions: []dnswire.Question{{Name: "example.nl", Type: dnswire.TypeNS, Class: dnswire.ClassIN}}}
	wire, err := dnswire.Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(wire)
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 512)
	if n, _ := conn.Read(buf); n > 0 {
		t.Error("server answered a response packet")
	}
}
