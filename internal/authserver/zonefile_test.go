package authserver

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
	"dnsddos/internal/resolver"
)

func TestZoneFileRoundTrip(t *testing.T) {
	z := NewZone()
	z.AddNS("example.nl", "ns1.dns.example")
	z.AddNS("example.nl", "ns2.dns.example")
	z.AddA("ns1.dns.example", netx.MustParseAddr("192.0.2.1"))
	z.AddA("ns2.dns.example", netx.MustParseAddr("192.0.2.2"))
	var buf bytes.Buffer
	if err := WriteZoneFile(&buf, z); err != nil {
		t.Fatal(err)
	}
	back, err := ReadZoneFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resp := back.Answer(dnswire.Question{Name: "example.nl", Type: dnswire.TypeNS, Class: dnswire.ClassIN})
	if len(resp.Answers) != 2 || len(resp.Additional) != 2 {
		t.Errorf("after round trip: %d answers, %d glue", len(resp.Answers), len(resp.Additional))
	}
}

func TestReadZoneFileSyntax(t *testing.T) {
	in := `
$TTL 600
$ORIGIN example.nl.
@            IN NS ns1.dns.example.
@       3600 IN NS ns2.dns.example.   ; secondary
www          IN A  203.0.113.80
ns1.dns.example. 300 IN A 192.0.2.1
; a full-line comment
sub          NS ns1.dns.example.
`
	z, err := ReadZoneFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if z.TTL() != 600 {
		t.Errorf("TTL = %d", z.TTL())
	}
	resp := z.Answer(dnswire.Question{Name: "example.nl", Type: dnswire.TypeNS, Class: dnswire.ClassIN})
	if len(resp.Answers) != 2 {
		t.Errorf("apex NS answers = %d", len(resp.Answers))
	}
	respSub := z.Answer(dnswire.Question{Name: "sub.example.nl", Type: dnswire.TypeNS, Class: dnswire.ClassIN})
	if len(respSub.Answers) != 1 {
		t.Errorf("sub NS answers = %d", len(respSub.Answers))
	}
	respA := z.Answer(dnswire.Question{Name: "www.example.nl", Type: dnswire.TypeA, Class: dnswire.ClassIN})
	if len(respA.Answers) != 1 || respA.Answers[0].A != netx.MustParseAddr("203.0.113.80") {
		t.Errorf("A answer = %+v", respA.Answers)
	}
	if z.NumDelegations() != 2 {
		t.Errorf("delegations = %d", z.NumDelegations())
	}
}

func TestReadZoneFileErrors(t *testing.T) {
	cases := []string{
		"www IN A 203.0.113.80\n",       // relative name without $ORIGIN
		"@ IN NS ns1.example.\n",        // @ without $ORIGIN
		"$TTL\n",                        // missing argument
		"$ORIGIN a.example. extra\n",    // too many arguments
		"a.example. IN A not-an-ip\n",   // bad address
		"a.example. IN WKS something\n", // unsupported type
		"a.example. IN\n",               // missing rdata
	}
	for _, in := range cases {
		if _, err := ReadZoneFile(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadZoneFileToleratesUnservedTypes(t *testing.T) {
	in := "$ORIGIN example.\n@ IN SOA ns1\n@ IN TXT hello\n@ IN NS ns1.example.\n"
	z, err := ReadZoneFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if z.NumDelegations() != 1 {
		t.Errorf("delegations = %d", z.NumDelegations())
	}
}

func TestZoneFileServedOverSockets(t *testing.T) {
	in := `$TTL 120
$ORIGIN zone.test.
@   IN NS ns1.zone.test.
ns1 IN A 192.0.2.10
`
	z, err := ReadZoneFile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(z, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	m, _, err := client.Query(context.Background(), addr, "zone.test", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) != 1 || m.Answers[0].NS != "ns1.zone.test" {
		t.Errorf("answers = %+v", m.Answers)
	}
	if m.Answers[0].TTL != 120 {
		t.Errorf("TTL = %d", m.Answers[0].TTL)
	}
}
