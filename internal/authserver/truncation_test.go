package authserver

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
	"dnsddos/internal/resolver"
)

// bigZone builds a zone whose NS response exceeds the 512-byte UDP limit.
func bigZone(t *testing.T) *Zone {
	t.Helper()
	zone := NewZone()
	for i := 0; i < 24; i++ {
		host := fmt.Sprintf("nameserver-%02d.very-long-provider-name.example", i)
		zone.AddNS("big.example", host)
		zone.AddA(host, netx.Addr(0x0e000001+i))
	}
	return zone
}

func TestUDPTruncationSetsTCBit(t *testing.T) {
	srv := NewServer(bigZone(t), nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	m, _, err := client.Query(context.Background(), addr, "big.example", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Header.Truncated {
		t.Fatal("oversized UDP answer must carry the TC bit")
	}
	if len(m.Answers) != 0 {
		t.Errorf("truncated response carries %d answers", len(m.Answers))
	}
}

func TestTCPCarriesFullAnswer(t *testing.T) {
	srv := NewServer(bigZone(t), nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	m, err := QueryTCP(ctx, addr, "big.example", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Truncated {
		t.Error("TCP answers are never truncated")
	}
	if len(m.Answers) != 24 {
		t.Errorf("TCP answers = %d, want 24", len(m.Answers))
	}
}

func TestQueryWithTCPFallback(t *testing.T) {
	srv := NewServer(bigZone(t), nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	m, rtt, err := client.QueryWithTCPFallback(ctx, addr, "big.example", dnswire.TypeNS,
		&resolver.TCPClient{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Truncated || len(m.Answers) != 24 {
		t.Errorf("fallback answer: truncated=%v answers=%d", m.Header.Truncated, len(m.Answers))
	}
	if rtt <= 0 {
		t.Error("fallback RTT must cover both exchanges")
	}
}

func TestSmallAnswerNotTruncated(t *testing.T) {
	zone := NewZone()
	zone.AddNS("small.example", "ns1.p.example")
	zone.AddA("ns1.p.example", netx.MustParseAddr("192.0.2.1"))
	srv := NewServer(zone, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	fallbackUsed := false
	m, _, err := client.QueryWithTCPFallback(context.Background(), addr, "small.example", dnswire.TypeNS,
		resolver.ClientFunc(func(ctx context.Context, a, n string, q dnswire.Type) (*dnswire.Message, time.Duration, error) {
			fallbackUsed = true
			msg, err := QueryTCP(ctx, a, n, q)
			return msg, 0, err
		}))
	if err != nil {
		t.Fatal(err)
	}
	if fallbackUsed {
		t.Error("small answer must not trigger the TCP fallback")
	}
	if len(m.Answers) != 1 {
		t.Errorf("answers = %d", len(m.Answers))
	}
}

func TestEDNSAvoidsTruncation(t *testing.T) {
	srv := NewServer(bigZone(t), nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// the same big response that truncates at 512 bytes fits in a
	// 4096-byte EDNS budget
	client := &resolver.UDPClient{Timeout: 2 * time.Second, EDNSPayload: 4096}
	m, _, err := client.Query(context.Background(), addr, "big.example", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.Truncated {
		t.Fatal("EDNS-advertised budget should avoid truncation")
	}
	if len(m.Answers) != 24 {
		t.Errorf("answers = %d, want 24", len(m.Answers))
	}
}

func TestEDNSTooSmallStillTruncates(t *testing.T) {
	srv := NewServer(bigZone(t), nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &resolver.UDPClient{Timeout: 2 * time.Second, EDNSPayload: 600}
	m, _, err := client.Query(context.Background(), addr, "big.example", dnswire.TypeNS)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Header.Truncated {
		t.Fatal("600-byte budget cannot hold the big response; want TC")
	}
	// the truncated response echoes an OPT record
	if _, ok := m.EDNS(); !ok {
		t.Error("truncated response should echo EDNS")
	}
}
