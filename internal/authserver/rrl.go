// rrl.go implements response rate limiting (RRL), the standard
// authoritative-server defense against the spoofed floods and
// amplification abuse the paper's victims face: responses to any one
// source /24 are token-bucket limited, and a configurable fraction of
// limited responses "slip" out as minimal truncated answers instead of
// silence, so a legitimate client behind a spoofed prefix can still
// reach the server by retrying over TCP (BIND/NSD's SLIP behaviour).
package authserver

import (
	"net"
	"sync"
	"time"
)

// RRLConfig enables per-source response rate limiting.
type RRLConfig struct {
	// ResponsesPerSecond is the sustained response budget per source
	// /24 (IPv4) or /56 (IPv6). Zero disables RRL.
	ResponsesPerSecond float64
	// Burst is the bucket depth — how many back-to-back responses a
	// quiet source may draw before the rate applies. Zero means
	// ResponsesPerSecond (a one-second burst).
	Burst float64
	// Slip sends every Slip-th rate-limited response as a minimal
	// truncated (TC) answer instead of dropping it, inviting the real
	// owner of the address to retry over TCP. Zero never slips;
	// BIND's default is 2.
	Slip int
}

// rrlAction is the limiter's verdict for one response.
type rrlAction int

const (
	rrlSend rrlAction = iota
	rrlDrop
	rrlSlip
)

// rrlBucketCap bounds the tracked-prefix table; when exceeded, buckets
// idle longer than rrlIdleEvict are swept. A flood from spoofed /24s
// cannot grow the table without bound.
const (
	rrlBucketCap  = 1 << 16
	rrlIdleEvict  = 10 * time.Second
	rrlSweepEvery = 4096
)

// rrlBucket is one source prefix's token bucket.
type rrlBucket struct {
	tokens  float64
	last    time.Time
	slipSeq int
}

// rrlLimiter applies RRLConfig across source prefixes.
type rrlLimiter struct {
	cfg RRLConfig

	mu      sync.Mutex
	buckets map[string]*rrlBucket
	sinceGC int
}

func newRRLLimiter(cfg RRLConfig) *rrlLimiter {
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.ResponsesPerSecond
	}
	return &rrlLimiter{cfg: cfg, buckets: make(map[string]*rrlBucket)}
}

// prefixKey maps a peer address to its rate-limit bucket key: the /24
// for IPv4 sources, /56 for IPv6, following RRL practice of limiting
// the prefix a spoofing attacker actually controls responses toward.
func prefixKey(addr net.Addr) string {
	var ip net.IP
	switch a := addr.(type) {
	case *net.UDPAddr:
		ip = a.IP
	case *net.TCPAddr:
		ip = a.IP
	default:
		return addr.String()
	}
	if v4 := ip.To4(); v4 != nil {
		return string(v4.Mask(net.CIDRMask(24, 32)))
	}
	return string(ip.Mask(net.CIDRMask(56, 128)))
}

// account charges one response to the peer's prefix and returns the
// verdict: send, drop, or slip (send a minimal truncated answer).
func (l *rrlLimiter) account(peer net.Addr, now time.Time) rrlAction {
	key := prefixKey(peer)
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		l.maybeSweep(now)
		b = &rrlBucket{tokens: l.cfg.Burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.cfg.ResponsesPerSecond
		if b.tokens > l.cfg.Burst {
			b.tokens = l.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return rrlSend
	}
	if l.cfg.Slip > 0 {
		b.slipSeq++
		if b.slipSeq%l.cfg.Slip == 0 {
			return rrlSlip
		}
	}
	return rrlDrop
}

// maybeSweep evicts idle buckets when the table is over capacity. Called
// with the lock held, amortized over insertions.
func (l *rrlLimiter) maybeSweep(now time.Time) {
	l.sinceGC++
	if len(l.buckets) < rrlBucketCap || l.sinceGC < rrlSweepEvery {
		return
	}
	l.sinceGC = 0
	for k, b := range l.buckets {
		if now.Sub(b.last) > rrlIdleEvict {
			delete(l.buckets, k)
		}
	}
}
