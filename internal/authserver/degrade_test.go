package authserver

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/faultinject"
	"dnsddos/internal/netx"
)

// degradeZone is a tiny zone for the graceful-degradation tests.
func degradeZone() *Zone {
	z := NewZone()
	z.AddNS("victim.example", "ns1.victim.example")
	z.AddA("ns1.victim.example", netx.MustParseAddr("192.0.2.1"))
	return z
}

// dialFrom opens a UDP socket to addr bound to the given local source
// IP; Linux routes all of 127/8 to loopback, so tests can speak from
// distinct /24s.
func dialFrom(t *testing.T, src, addr string) net.Conn {
	t.Helper()
	d := net.Dialer{LocalAddr: &net.UDPAddr{IP: net.ParseIP(src)}}
	conn, err := d.Dial("udp", addr)
	if err != nil {
		t.Fatalf("dial from %s: %v", src, err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// queryOn sends one query on an open conn and waits for the matching
// response, returning nil on timeout.
func queryOn(t *testing.T, conn net.Conn, id uint16, name string, timeout time.Duration) *dnswire.Message {
	t.Helper()
	q := dnswire.NewQuery(id, name, dnswire.TypeNS)
	wire, err := dnswire.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 4096)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil
		}
		m, err := dnswire.Decode(buf[:n])
		if err != nil || !m.Header.Response || m.Header.ID != id {
			continue
		}
		return m
	}
}

func TestReflexResponse(t *testing.T) {
	q := dnswire.NewQuery(0x1234, "victim.example", dnswire.TypeNS)
	q.AttachEDNS(dnswire.EDNS{UDPPayload: 1232})
	wire, err := dnswire.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	out := reflexResponse(append([]byte(nil), wire...), dnswire.RCodeServFail, false)
	if out == nil {
		t.Fatal("reflexResponse rejected a well-formed query")
	}
	m, err := dnswire.Decode(out)
	if err != nil {
		t.Fatalf("reflex response does not decode: %v", err)
	}
	if !m.Header.Response || m.Header.RCode != dnswire.RCodeServFail || m.Header.Truncated {
		t.Errorf("servfail reflex header = %+v", m.Header)
	}
	if m.Header.ID != 0x1234 || len(m.Questions) != 1 || m.Questions[0].Name != "victim.example" {
		t.Errorf("reflex must echo ID and question: %+v", m)
	}
	if _, ok := m.EDNS(); !ok {
		t.Error("reflex must echo the query's OPT record")
	}

	tcOut := reflexResponse(append([]byte(nil), wire...), dnswire.RCodeNoError, true)
	tm, err := dnswire.Decode(tcOut)
	if err != nil {
		t.Fatalf("tc reflex does not decode: %v", err)
	}
	if !tm.Header.Truncated || tm.Header.RCode != dnswire.RCodeNoError {
		t.Errorf("tc reflex header = %+v", tm.Header)
	}

	if reflexResponse([]byte{1, 2, 3}, dnswire.RCodeServFail, false) != nil {
		t.Error("short datagrams must be rejected")
	}
	resp := append([]byte(nil), out...)
	if reflexResponse(resp, dnswire.RCodeServFail, false) != nil {
		t.Error("datagrams already carrying QR must be rejected (no reflection loops)")
	}
}

// TestOverloadPolicies floods a deliberately tiny serving pipeline and
// checks each policy's degraded answer: silence, SERVFAIL, or TC.
func TestOverloadPolicies(t *testing.T) {
	cases := []struct {
		name   string
		policy OverloadPolicy
	}{
		{"servfail", OverloadServFail},
		{"truncate", OverloadTruncate},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := NewServer(degradeZone(), nil)
			srv.Workers = 1
			srv.Readers = 1
			srv.QueueDepth = 1
			srv.Overload = tc.policy
			srv.SetDelay(20 * time.Millisecond) // wedge the single worker
			addr, err := srv.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			conn, err := net.Dial("udp", addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			// burst 50 queries without reading: the 1-deep queue must shed
			for i := 0; i < 50; i++ {
				q := dnswire.NewQuery(uint16(i+1), "victim.example", dnswire.TypeNS)
				wire, _ := dnswire.Encode(q)
				conn.Write(wire)
			}
			// collect responses until quiet
			var shedSeen int
			buf := make([]byte, 4096)
			for {
				conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
				n, err := conn.Read(buf)
				if err != nil {
					break
				}
				m, err := dnswire.Decode(buf[:n])
				if err != nil {
					continue
				}
				switch tc.policy {
				case OverloadServFail:
					if m.Header.RCode == dnswire.RCodeServFail {
						shedSeen++
					}
				case OverloadTruncate:
					if m.Header.Truncated {
						shedSeen++
					}
				}
			}
			st := srv.Stats()
			if st.UDPDropped == 0 {
				t.Fatalf("flood did not overflow the queue: %+v", st)
			}
			if shedSeen == 0 {
				t.Errorf("policy %v sent no degraded answers (stats %+v)", tc.policy, st)
			}
			switch tc.policy {
			case OverloadServFail:
				if st.UDPShedServFail == 0 || st.UDPShedTruncated != 0 {
					t.Errorf("shed breakdown = %+v, want servfail-only", st)
				}
			case OverloadTruncate:
				if st.UDPShedTruncated == 0 || st.UDPShedServFail != 0 {
					t.Errorf("shed breakdown = %+v, want tc-only", st)
				}
			}
		})
	}
}

// TestOverloadDropStaysSilent checks the default policy sheds without
// answering — the client's view is a timeout, the paper's dominant
// failure class (92%, §6.3.1).
func TestOverloadDropStaysSilent(t *testing.T) {
	srv := NewServer(degradeZone(), nil)
	srv.Workers = 1
	srv.Readers = 1
	srv.QueueDepth = 1
	srv.SetDelay(50 * time.Millisecond)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 30; i++ {
		q := dnswire.NewQuery(uint16(i+1), "victim.example", dnswire.TypeNS)
		wire, _ := dnswire.Encode(q)
		conn.Write(wire)
	}
	answered := 0
	buf := make([]byte, 4096)
	for {
		conn.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		if _, err := conn.Read(buf); err != nil {
			break
		}
		answered++
	}
	st := srv.Stats()
	if st.UDPDropped == 0 {
		t.Fatalf("flood did not overflow the queue: %+v", st)
	}
	if st.UDPShedServFail != 0 || st.UDPShedTruncated != 0 {
		t.Errorf("drop policy must not send shed answers: %+v", st)
	}
	if int64(answered) != st.UDPAnswered {
		t.Errorf("client saw %d answers, server counted %d", answered, st.UDPAnswered)
	}
}

// TestRRLIsolatesFloodingPrefix floods from one /24 while a well-behaved
// client in another /24 keeps querying: RRL must shed the flooder
// without touching the legitimate client (the acceptance criterion).
func TestRRLIsolatesFloodingPrefix(t *testing.T) {
	srv := NewServer(degradeZone(), nil)
	srv.RRL = &RRLConfig{ResponsesPerSecond: 10, Burst: 5, Slip: 2}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// flooder: 127.0.0.2 (/24 = 127.0.0.0) — fire a burst without
	// waiting, then drain whatever came back
	flood := dialFrom(t, "127.0.0.2", addr)
	for i := 0; i < 120; i++ {
		q := dnswire.NewQuery(uint16(i+1), "victim.example", dnswire.TypeNS)
		wire, _ := dnswire.Encode(q)
		flood.Write(wire)
	}
	floodAnswered, floodSlipped := 0, 0
	buf := make([]byte, 4096)
	for {
		flood.SetReadDeadline(time.Now().Add(400 * time.Millisecond))
		n, err := flood.Read(buf)
		if err != nil {
			break
		}
		m, err := dnswire.Decode(buf[:n])
		if err != nil || !m.Header.Response {
			continue
		}
		if m.Header.Truncated {
			floodSlipped++
		} else {
			floodAnswered++
		}
	}

	// well-behaved client: 127.0.1.2 (/24 = 127.0.1.0), within budget
	legit := dialFrom(t, "127.0.1.2", addr)
	legitAnswered := 0
	for i := 0; i < 5; i++ {
		id := uint16(1000 + i)
		if m := queryOn(t, legit, id, "victim.example", time.Second); m != nil && !m.Header.Truncated {
			if m.Header.RCode == dnswire.RCodeNoError && len(m.Answers) > 0 {
				legitAnswered++
			}
		}
	}

	st := srv.Stats()
	if legitAnswered != 5 {
		t.Errorf("well-behaved /24 got %d/5 full answers; RRL must not touch it (stats %+v)",
			legitAnswered, st)
	}
	if floodAnswered > 40 {
		t.Errorf("flooding /24 got %d/120 full answers; RRL should shed most (stats %+v)",
			floodAnswered, st)
	}
	if st.RRLDropped == 0 {
		t.Errorf("RRL dropped nothing under flood: %+v", st)
	}
	if st.RRLSlipped == 0 || floodSlipped == 0 {
		t.Errorf("slip=2 must leak truncated answers: slipped=%d stats=%+v", floodSlipped, st)
	}
	// SLIP invariant: roughly every 2nd limited response slips
	if st.RRLSlipped > st.RRLDropped+2 {
		t.Errorf("slip=%d vs drop=%d: slip=2 should alternate", st.RRLSlipped, st.RRLDropped)
	}
}

// TestRRLSlipInvitesTCPRetry checks the SLIP escape hatch end to end: a
// rate-limited client that receives the truncated slip can still get the
// full answer over TCP, which RRL does not limit (TCP cannot be spoofed).
func TestRRLSlipInvitesTCPRetry(t *testing.T) {
	srv := NewServer(degradeZone(), nil)
	srv.RRL = &RRLConfig{ResponsesPerSecond: 1, Burst: 1, Slip: 1}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// exhaust the burst, then the next UDP answer must be a slip (TC)
	queryOn(t, conn, 1, "victim.example", time.Second)
	m := queryOn(t, conn, 2, "victim.example", time.Second)
	if m == nil {
		t.Fatal("slip=1 must answer every limited query with TC")
	}
	if !m.Header.Truncated {
		t.Fatalf("expected truncated slip, got %+v", m.Header)
	}
	// the TC answer tells the client to retry over TCP — which works
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	full, err := QueryTCP(ctx, addr, "victim.example", dnswire.TypeNS)
	if err != nil {
		t.Fatalf("tcp retry after slip: %v", err)
	}
	if len(full.Answers) == 0 {
		t.Error("tcp retry must return the full answer")
	}
}

// TestWrappedListenerUnderFaultSchedule serves through a fault-injected
// listener and drives the scripted attack window: healthy before,
// dropping during, healthy after.
func TestWrappedListenerUnderFaultSchedule(t *testing.T) {
	inj := faultinject.New(7)
	srv := NewServer(degradeZone(), nil)
	srv.WrapUDP = func(pc net.PacketConn) net.PacketConn {
		return faultinject.WrapPacketConn(pc, inj)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if m := queryOn(t, conn, 1, "victim.example", time.Second); m == nil {
		t.Fatal("healthy phase: query must resolve")
	}
	inj.SetProfile(faultinject.Profile{Drop: 1})
	if m := queryOn(t, conn, 2, "victim.example", 200*time.Millisecond); m != nil {
		t.Fatal("attack phase: 100% drop must starve the client")
	}
	inj.Disengage()
	inj.SetProfile(faultinject.Profile{})
	if m := queryOn(t, conn, 3, "victim.example", time.Second); m == nil {
		t.Fatal("recovery phase: query must resolve again")
	}
}

// TestReflexKeepsRawQueryBytes guards the no-decode property: a reflex
// answer is byte-identical to the query outside the flag/count fields.
func TestReflexKeepsRawQueryBytes(t *testing.T) {
	q := dnswire.NewQuery(42, "victim.example", dnswire.TypeNS)
	wire, _ := dnswire.Encode(q)
	out := reflexResponse(append([]byte(nil), wire...), dnswire.RCodeServFail, false)
	if !bytes.Equal(out[12:], wire[12:]) {
		t.Error("reflex must leave the question section untouched")
	}
	if out[0] != wire[0] || out[1] != wire[1] {
		t.Error("reflex must preserve the query ID")
	}
}
