package authserver

import (
	"context"
	"testing"
	"time"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
	"dnsddos/internal/resolver"
)

// leak_test.go asserts the server's whole goroutine fleet — UDP readers,
// the worker pool, the TCP accept loop, and per-connection handlers —
// drains on Close. A reader or worker that outlives Close would pile up
// across the repeated start/stop cycles the study pipeline and the
// chaos suite perform.

func TestStartCloseNoGoroutineLeaks(t *testing.T) {
	netx.NoGoroutineLeaks(t)

	for i := 0; i < 3; i++ {
		addr, srv := startTestServer(t)

		// exercise both transports so per-query and per-connection
		// goroutines actually spawn before the teardown
		client := &resolver.UDPClient{Timeout: 2 * time.Second}
		if _, _, err := client.Query(context.Background(), addr, "example.nl", dnswire.TypeNS); err != nil {
			t.Fatalf("cycle %d: udp query: %v", i, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if _, err := QueryTCP(ctx, addr, "example.nl", dnswire.TypeNS); err != nil {
			t.Fatalf("cycle %d: tcp query: %v", i, err)
		}
		cancel()

		srv.Close() // idempotent with the t.Cleanup registered by startTestServer
	}
}

// TestCloseIdempotentNoLeaks: double-Close must neither panic nor
// strand the serve goroutines.
func TestCloseIdempotentNoLeaks(t *testing.T) {
	netx.NoGoroutineLeaks(t)
	_, srv := startTestServer(t)
	srv.Close()
	srv.Close()
}
