// Package authserver is a real authoritative DNS server speaking the wire
// format of internal/dnswire over UDP and TCP sockets. It serves the NS and
// A records of a dnsdb world, giving the reproduction a genuine network
// data path for integration tests and the livedns example: the same
// explicit NS queries OpenINTEL sends (§3.2) travel over actual sockets.
package authserver

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"dnsddos/internal/dnsdb"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
)

// Zone is the record store the server answers from.
type Zone struct {
	// ns maps canonical domain name → NS host names.
	ns map[string][]string
	// a maps canonical host name → IPv4 addresses.
	a map[string][]netx.Addr
	// soaMName/soaRName name the zone authority for negative answers.
	soaMName string
	soaRName string
	ttl      uint32
}

// NewZone builds an empty zone.
func NewZone() *Zone {
	return &Zone{
		ns:       make(map[string][]string),
		a:        make(map[string][]netx.Addr),
		soaMName: "ns.invalid",
		soaRName: "hostmaster.invalid",
		ttl:      300,
	}
}

// AddNS registers an NS record.
func (z *Zone) AddNS(domain, nsHost string) {
	d := dnswire.CanonicalName(domain)
	z.ns[d] = append(z.ns[d], dnswire.CanonicalName(nsHost))
}

// AddA registers an A record.
func (z *Zone) AddA(host string, addr netx.Addr) {
	h := dnswire.CanonicalName(host)
	z.a[h] = append(z.a[h], addr)
}

// FromDB loads every domain's NS records (and nameserver glue A records)
// from a world database.
func FromDB(db *dnsdb.DB) *Zone {
	z := NewZone()
	for i := range db.Nameservers {
		ns := &db.Nameservers[i]
		z.AddA(ns.Host, ns.Addr)
	}
	for i := range db.Domains {
		d := &db.Domains[i]
		for _, id := range d.NS {
			z.AddNS(d.Name, db.Nameservers[id].Host)
		}
	}
	return z
}

// Answer builds the response message for one question.
func (z *Zone) Answer(q dnswire.Question) *dnswire.Message {
	resp := &dnswire.Message{
		Header: dnswire.Header{
			Response:      true,
			Authoritative: true,
		},
		Questions: []dnswire.Question{q},
	}
	name := dnswire.CanonicalName(q.Name)
	if q.Class != dnswire.ClassIN {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	}
	_, known := z.ns[name]
	if !known {
		_, known = z.a[name]
	}
	switch q.Type {
	case dnswire.TypeNS:
		hosts := z.ns[name]
		for _, h := range hosts {
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: name, Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: z.ttl, NS: h,
			})
			for _, addr := range z.a[h] {
				resp.Additional = append(resp.Additional, dnswire.RR{
					Name: h, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: z.ttl, A: addr,
				})
			}
		}
	case dnswire.TypeA:
		for _, addr := range z.a[name] {
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: z.ttl, A: addr,
			})
		}
	}
	if len(resp.Answers) == 0 {
		if !known {
			resp.Header.RCode = dnswire.RCodeNXDomain
		}
		resp.Authority = append(resp.Authority, dnswire.RR{
			Name: "", Type: dnswire.TypeSOA, Class: dnswire.ClassIN, TTL: z.ttl,
			SOA: &dnswire.SOAData{MName: z.soaMName, RName: z.soaRName, Serial: 1, Refresh: 3600, Retry: 600, Expire: 86400, Minimum: z.ttl},
		})
	}
	return resp
}

// Server serves a Zone over UDP and TCP.
type Server struct {
	zone *Zone
	log  *slog.Logger

	mu      sync.Mutex
	udp     *net.UDPConn
	tcp     net.Listener
	wg      sync.WaitGroup
	started bool
	// Delay artificially delays every answer; tests use it to exercise
	// resolver timeout handling over real sockets.
	Delay time.Duration
}

// NewServer builds a server for the zone. logger may be nil.
func NewServer(zone *Zone, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Server{zone: zone, log: logger}
}

// Start binds UDP and TCP on addr ("127.0.0.1:0" for tests) and serves
// until Close. It returns the bound UDP address.
func (s *Server) Start(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return "", errors.New("authserver: already started")
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return "", err
	}
	uc, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return "", err
	}
	// bind TCP on the same port the UDP socket got
	tl, err := net.Listen("tcp", uc.LocalAddr().String())
	if err != nil {
		uc.Close()
		return "", err
	}
	s.udp, s.tcp, s.started = uc, tl, true
	s.wg.Add(2)
	go s.serveUDP(uc)
	go s.serveTCP(tl)
	return uc.LocalAddr().String(), nil
}

func (s *Server) serveUDP(conn *net.UDPConn) {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, peer, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		resp, err := s.handleUDP(buf[:n])
		if err != nil {
			s.log.Debug("authserver: bad query", "peer", peer, "err", err)
			continue
		}
		if s.Delay > 0 {
			time.Sleep(s.Delay)
		}
		if _, err := conn.WriteToUDP(resp, peer); err != nil {
			s.log.Debug("authserver: udp write", "peer", peer, "err", err)
		}
	}
}

// handleUDP answers one UDP query, truncating responses that exceed the
// client's UDP payload budget: the classic 512 bytes, or the size an EDNS
// OPT record advertises (RFC 6891).
func (s *Server) handleUDP(wire []byte) ([]byte, error) {
	resp, err := s.handle(wire)
	if err != nil {
		return nil, err
	}
	q, err := dnswire.Decode(wire)
	if err != nil {
		return nil, err
	}
	if len(resp) <= q.MaxUDPPayload() {
		return resp, nil
	}
	// re-encode header-and-question only, with TC set
	trunc := &dnswire.Message{
		Header: dnswire.Header{
			ID:               q.Header.ID,
			Response:         true,
			Authoritative:    true,
			Truncated:        true,
			RecursionDesired: q.Header.RecursionDesired,
		},
		Questions: q.Questions,
	}
	if e, ok := q.EDNS(); ok {
		trunc.AttachEDNS(dnswire.EDNS{UDPPayload: e.UDPPayload})
	}
	return dnswire.Encode(trunc)
}

func (s *Server) serveTCP(l net.Listener) {
	defer s.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return // closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer c.Close()
			s.serveTCPConn(c)
		}()
	}
}

// serveTCPConn handles length-prefixed DNS over one TCP connection
// (RFC 1035 §4.2.2).
func (s *Server) serveTCPConn(c net.Conn) {
	for {
		if err := c.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
			return
		}
		var lenb [2]byte
		if _, err := io.ReadFull(c, lenb[:]); err != nil {
			return
		}
		msgLen := binary.BigEndian.Uint16(lenb[:])
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(c, msg); err != nil {
			return
		}
		resp, err := s.handle(msg)
		if err != nil {
			return
		}
		if s.Delay > 0 {
			time.Sleep(s.Delay)
		}
		out := make([]byte, 2+len(resp))
		binary.BigEndian.PutUint16(out, uint16(len(resp)))
		copy(out[2:], resp)
		if _, err := c.Write(out); err != nil {
			return
		}
	}
}

func (s *Server) handle(wire []byte) ([]byte, error) {
	q, err := dnswire.Decode(wire)
	if err != nil {
		return nil, err
	}
	if q.Header.Response || len(q.Questions) != 1 {
		return nil, fmt.Errorf("authserver: not a single-question query")
	}
	resp := s.zone.Answer(q.Questions[0])
	resp.Header.ID = q.Header.ID
	resp.Header.RecursionDesired = q.Header.RecursionDesired
	return dnswire.Encode(resp)
}

// Close stops the listeners and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil
	}
	s.udp.Close()
	s.tcp.Close()
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// QueryTCP issues one length-prefixed DNS query over TCP, for tests of the
// TCP path (DNS-over-TCP is the dominant attack protocol in §6.2, and a
// real service on authoritative servers).
func QueryTCP(ctx context.Context, addr, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			return nil, err
		}
	}
	q := dnswire.NewQuery(0x5544, name, qtype)
	wire, err := dnswire.Encode(q)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(out, uint16(len(wire)))
	copy(out[2:], wire)
	if _, err := conn.Write(out); err != nil {
		return nil, err
	}
	var lenb [2]byte
	if _, err := io.ReadFull(conn, lenb[:]); err != nil {
		return nil, err
	}
	buf := make([]byte, binary.BigEndian.Uint16(lenb[:]))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	return dnswire.Decode(buf)
}
