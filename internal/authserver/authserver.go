// Package authserver is a real authoritative DNS server speaking the wire
// format of internal/dnswire over UDP and TCP sockets. It serves the NS and
// A records of a dnsdb world, giving the reproduction a genuine network
// data path for integration tests and the livedns example: the same
// explicit NS queries OpenINTEL sends (§3.2) travel over actual sockets.
//
// The serving path is a concurrent engine: several reader goroutines share
// the UDP socket (each with a private read buffer) and hand decoded work to
// a bounded worker pool, so a slow answer — the Delay knob, or a large
// NSSet encode — never stalls the read loop. TCP connections get one
// goroutine each under a connection cap, and Close drains in-flight
// exchanges gracefully. Overload sheds queries (counted in Stats) instead
// of wedging the socket: under flood the server degrades the way the
// paper's targets degrade, by dropping, not by freezing.
package authserver

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnsddos/internal/dnsdb"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
	"dnsddos/internal/obs"
)

// Zone is the record store the server answers from.
type Zone struct {
	// ns maps canonical domain name → NS host names.
	ns map[string][]string
	// a maps canonical host name → IPv4 addresses.
	a map[string][]netx.Addr
	// soaMName/soaRName name the zone authority for negative answers.
	soaMName string
	soaRName string
	ttl      uint32
}

// NewZone builds an empty zone.
func NewZone() *Zone {
	return &Zone{
		ns:       make(map[string][]string),
		a:        make(map[string][]netx.Addr),
		soaMName: "ns.invalid",
		soaRName: "hostmaster.invalid",
		ttl:      300,
	}
}

// AddNS registers an NS record.
func (z *Zone) AddNS(domain, nsHost string) {
	d := dnswire.CanonicalName(domain)
	z.ns[d] = append(z.ns[d], dnswire.CanonicalName(nsHost))
}

// AddA registers an A record.
func (z *Zone) AddA(host string, addr netx.Addr) {
	h := dnswire.CanonicalName(host)
	z.a[h] = append(z.a[h], addr)
}

// FromDB loads every domain's NS records (and nameserver glue A records)
// from a world database.
func FromDB(db *dnsdb.DB) *Zone {
	z := NewZone()
	for i := range db.Nameservers {
		ns := &db.Nameservers[i]
		z.AddA(ns.Host, ns.Addr)
	}
	for i := range db.Domains {
		d := &db.Domains[i]
		for _, id := range d.NS {
			z.AddNS(d.Name, db.Nameservers[id].Host)
		}
	}
	return z
}

// apexOf returns the closest enclosing name that has a delegation (NS
// records) — the zone apex a negative answer's SOA record belongs to.
// Unknown names fall back to the queried name itself, which still yields a
// well-formed authority section.
func (z *Zone) apexOf(name string) string {
	for n := name; n != ""; {
		if _, ok := z.ns[n]; ok {
			return n
		}
		i := strings.IndexByte(n, '.')
		if i < 0 {
			break
		}
		n = n[i+1:]
	}
	return name
}

// Answer builds the response message for one question.
func (z *Zone) Answer(q dnswire.Question) *dnswire.Message {
	resp := &dnswire.Message{
		Header: dnswire.Header{
			Response:      true,
			Authoritative: true,
		},
		Questions: []dnswire.Question{q},
	}
	name := dnswire.CanonicalName(q.Name)
	if q.Class != dnswire.ClassIN {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	}
	_, known := z.ns[name]
	if !known {
		_, known = z.a[name]
	}
	switch q.Type {
	case dnswire.TypeNS:
		hosts := z.ns[name]
		for _, h := range hosts {
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: name, Type: dnswire.TypeNS, Class: dnswire.ClassIN, TTL: z.ttl, NS: h,
			})
			for _, addr := range z.a[h] {
				resp.Additional = append(resp.Additional, dnswire.RR{
					Name: h, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: z.ttl, A: addr,
				})
			}
		}
	case dnswire.TypeA:
		for _, addr := range z.a[name] {
			resp.Answers = append(resp.Answers, dnswire.RR{
				Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: z.ttl, A: addr,
			})
		}
	}
	if len(resp.Answers) == 0 {
		if !known {
			resp.Header.RCode = dnswire.RCodeNXDomain
		}
		resp.Authority = append(resp.Authority, dnswire.RR{
			Name: z.apexOf(name), Type: dnswire.TypeSOA, Class: dnswire.ClassIN, TTL: z.ttl,
			SOA: &dnswire.SOAData{MName: z.soaMName, RName: z.soaRName, Serial: 1, Refresh: 3600, Retry: 600, Expire: 86400, Minimum: z.ttl},
		})
	}
	return resp
}

// maxTCPMessage is the largest DNS message a 16-bit TCP length prefix can
// frame (RFC 1035 §4.2.2).
const maxTCPMessage = 0xffff

// OverloadPolicy selects what a query shed at the full worker queue gets
// back — the degradation mode of an overloaded authoritative. The
// paper's failing events split 92% timeout / 8% SERVFAIL (§6.3.1):
// silent drops produce the timeouts, answering servers the SERVFAILs.
type OverloadPolicy int

// Overload policies.
const (
	// OverloadDrop sheds silently; the client sees a timeout.
	OverloadDrop OverloadPolicy = iota
	// OverloadServFail answers shed queries with a minimal SERVFAIL
	// built by bit-twiddling the query in the reader (no decode).
	OverloadServFail
	// OverloadTruncate answers shed queries with a minimal truncated
	// response, pushing clients to retry over TCP.
	OverloadTruncate
)

// String renders the policy (the cmd/serve flag values).
func (p OverloadPolicy) String() string {
	switch p {
	case OverloadDrop:
		return "drop"
	case OverloadServFail:
		return "servfail"
	case OverloadTruncate:
		return "tc"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseOverloadPolicy maps a flag value ("drop", "servfail", "tc") back
// to its policy.
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "drop":
		return OverloadDrop, nil
	case "servfail":
		return OverloadServFail, nil
	case "tc":
		return OverloadTruncate, nil
	}
	return OverloadDrop, fmt.Errorf("unknown overload policy %q (want drop, servfail, or tc)", s)
}

// serverMetrics is the server's registry-backed instrumentation: the
// traffic counters behind the public Stats snapshot plus the per-query
// latency histograms, all living in one obs.Registry so cmd/serve can
// export them over HTTP while the server runs.
type serverMetrics struct {
	udpReceived   *obs.Counter
	udpAnswered   *obs.Counter
	udpDropped    *obs.Counter
	shedServFail  *obs.Counter
	shedTruncated *obs.Counter
	rrlDropped    *obs.Counter
	rrlSlipped    *obs.Counter
	udpMalformed  *obs.Counter
	tcpAccepted   *obs.Counter
	tcpRejected   *obs.Counter
	tcpQueries    *obs.Counter
	// udpLatency spans read-off-the-socket to response written (queue
	// wait + decode + answer + encode + artificial delay); tcpLatency
	// spans one framed exchange.
	udpLatency *obs.Histogram
	tcpLatency *obs.Histogram
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		udpReceived:   reg.Counter("authserver.udp_received"),
		udpAnswered:   reg.Counter("authserver.udp_answered"),
		udpDropped:    reg.Counter("authserver.udp_dropped"),
		shedServFail:  reg.Counter("authserver.udp_shed_servfail"),
		shedTruncated: reg.Counter("authserver.udp_shed_truncated"),
		rrlDropped:    reg.Counter("authserver.rrl_dropped"),
		rrlSlipped:    reg.Counter("authserver.rrl_slipped"),
		udpMalformed:  reg.Counter("authserver.udp_malformed"),
		tcpAccepted:   reg.Counter("authserver.tcp_accepted"),
		tcpRejected:   reg.Counter("authserver.tcp_rejected"),
		tcpQueries:    reg.Counter("authserver.tcp_queries"),
		udpLatency:    reg.Histogram("authserver.udp_latency"),
		tcpLatency:    reg.Histogram("authserver.tcp_latency"),
	}
}

// Stats is a snapshot of the server's traffic counters.
type Stats struct {
	// UDPReceived counts datagrams read off the UDP socket.
	UDPReceived int64
	// UDPAnswered counts UDP responses written on the normal path
	// (excluding shed-policy and RRL-slip reflexes).
	UDPAnswered int64
	// UDPDropped counts queries shed because the worker queue was full —
	// the overload signal — whatever the Overload policy answered.
	UDPDropped int64
	// UDPShedServFail and UDPShedTruncated break the sheds down by what
	// the Overload policy sent back; sheds under OverloadDrop send
	// nothing and appear only in UDPDropped.
	UDPShedServFail  int64
	UDPShedTruncated int64
	// RRLDropped counts responses suppressed by response rate limiting;
	// RRLSlipped counts limited responses sent as minimal truncated
	// answers instead (the SLIP escape hatch).
	RRLDropped int64
	RRLSlipped int64
	// UDPMalformed counts datagrams that failed to decode or were not
	// single-question queries.
	UDPMalformed int64
	// TCPAccepted and TCPRejected count connections admitted and refused
	// at the MaxConns cap. TCPQueries counts exchanges served.
	TCPAccepted int64
	TCPRejected int64
	TCPQueries  int64
}

// Server serves a Zone over UDP and TCP.
type Server struct {
	zone *Zone
	log  *slog.Logger

	// Workers sizes the UDP worker pool running decode→answer→encode;
	// zero means 2×GOMAXPROCS (at least 8). Set before Start.
	Workers int
	// Readers is the number of goroutines sharing the UDP socket, each
	// with a private read buffer; zero means 2. Set before Start.
	Readers int
	// QueueDepth bounds the pending-query queue between readers and
	// workers; a full queue sheds new queries (see Stats.UDPDropped).
	// Zero means 1024. Set before Start.
	QueueDepth int
	// MaxConns caps concurrent TCP connections; excess connections are
	// closed on accept. Zero means 256. Set before Start.
	MaxConns int
	// Overload selects what shed queries get back when the worker queue
	// is full: silence (drop), SERVFAIL, or TC. Set before Start.
	Overload OverloadPolicy
	// RRL, when non-nil, enables per-source-prefix response rate
	// limiting with SLIP (see RRLConfig). Set before Start.
	RRL *RRLConfig
	// WrapUDP, when set, wraps the bound UDP listener before serving —
	// the listener-side fault-injection hook (e.g. a closure over
	// faultinject.WrapPacketConn). Set before Start; the injector
	// behind the wrapper may be reshaped while the server runs.
	WrapUDP func(net.PacketConn) net.PacketConn
	// WrapTCP wraps each accepted TCP connection. Set before Start.
	WrapTCP func(net.Conn) net.Conn

	// delay (nanoseconds) artificially delays every answer; tests use it
	// to exercise resolver timeout handling over real sockets. Atomic, so
	// it can be flipped while the server runs.
	delay atomic.Int64

	mu      sync.Mutex
	pc      net.PacketConn // the (possibly fault-wrapped) serving socket
	tcp     net.Listener
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	started bool
	closing atomic.Bool
	rrl     *rrlLimiter

	reg *obs.Registry
	m   serverMetrics
}

// NewServer builds a server for the zone. logger may be nil. The server
// owns a private obs.Registry (see Metrics) backing both the Stats
// snapshot and the latency histograms.
func NewServer(zone *Zone, logger *slog.Logger) *Server {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := obs.New()
	return &Server{
		zone:  zone,
		log:   logger,
		conns: make(map[net.Conn]struct{}),
		reg:   reg,
		m:     newServerMetrics(reg),
	}
}

// Metrics returns the server's metric registry — the authserver.*
// counters behind Stats plus the udp/tcp latency histograms — for
// export over HTTP (obs.Serve) or embedding in a larger registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// SetDelay sets the artificial per-answer delay. Safe to call while the
// server is running; in-flight answers use the value read at dispatch.
func (s *Server) SetDelay(d time.Duration) { s.delay.Store(int64(d)) }

// Delay returns the current artificial per-answer delay.
func (s *Server) Delay() time.Duration { return time.Duration(s.delay.Load()) }

// Stats returns a snapshot of the traffic counters. The values are read
// from the same registry-backed counters /metrics.json exports, so the
// two views always agree.
func (s *Server) Stats() Stats {
	return Stats{
		UDPReceived:      s.m.udpReceived.Load(),
		UDPAnswered:      s.m.udpAnswered.Load(),
		UDPDropped:       s.m.udpDropped.Load(),
		UDPShedServFail:  s.m.shedServFail.Load(),
		UDPShedTruncated: s.m.shedTruncated.Load(),
		RRLDropped:       s.m.rrlDropped.Load(),
		RRLSlipped:       s.m.rrlSlipped.Load(),
		UDPMalformed:     s.m.udpMalformed.Load(),
		TCPAccepted:      s.m.tcpAccepted.Load(),
		TCPRejected:      s.m.tcpRejected.Load(),
		TCPQueries:       s.m.tcpQueries.Load(),
	}
}

// udpJob is one datagram handed from a reader to the worker pool. start
// is the read timestamp, anchoring the per-query latency observation.
type udpJob struct {
	wire  *[]byte
	peer  net.Addr
	start time.Time
}

// bufPool recycles per-datagram copies between readers and workers.
var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// Start binds UDP and TCP on addr ("127.0.0.1:0" for tests) and serves
// until Close. It returns the bound UDP address.
func (s *Server) Start(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return "", errors.New("authserver: already started")
	}
	workers := s.Workers
	if workers <= 0 {
		workers = 2 * runtime.GOMAXPROCS(0)
		if workers < 8 {
			workers = 8
		}
	}
	readers := s.Readers
	if readers <= 0 {
		readers = 2
	}
	depth := s.QueueDepth
	if depth <= 0 {
		depth = 1024
	}
	maxConns := s.MaxConns
	if maxConns <= 0 {
		maxConns = 256
	}

	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return "", err
	}
	uc, tl, err := bindPair(uaddr)
	if err != nil {
		return "", err
	}
	pc := net.PacketConn(uc)
	if s.WrapUDP != nil {
		pc = s.WrapUDP(pc)
	}
	if s.RRL != nil && s.RRL.ResponsesPerSecond > 0 {
		s.rrl = newRRLLimiter(*s.RRL)
	}
	s.pc, s.tcp, s.started = pc, tl, true

	jobs := make(chan udpJob, depth)
	var readerWG sync.WaitGroup
	for i := 0; i < readers; i++ {
		s.wg.Add(1)
		readerWG.Add(1)
		go s.readUDP(pc, jobs, &readerWG)
	}
	// once every reader has exited (socket closed), release the workers
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		readerWG.Wait()
		close(jobs)
	}()
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.udpWorker(pc, jobs)
	}
	s.wg.Add(1)
	go s.serveTCP(tl, maxConns)
	return uc.LocalAddr().String(), nil
}

// bindPair binds UDP and TCP on the same port, DNS-style. With an
// ephemeral request (port 0) the UDP draw can land on a port whose TCP
// side another process already holds, so the draw is retried on a
// fresh port instead of failing the caller; a pinned port fails
// immediately — the conflict is real there.
func bindPair(uaddr *net.UDPAddr) (*net.UDPConn, net.Listener, error) {
	const redraws = 16
	for attempt := 0; ; attempt++ {
		uc, err := net.ListenUDP("udp", uaddr)
		if err != nil {
			return nil, nil, err
		}
		tl, err := net.Listen("tcp", uc.LocalAddr().String())
		if err == nil {
			return uc, tl, nil
		}
		uc.Close()
		if uaddr.Port != 0 || attempt >= redraws {
			return nil, nil, err
		}
	}
}

// readUDP pulls datagrams off the shared socket into the worker queue. It
// does no parsing and never sleeps: when the queue is full the query is
// shed, so handler latency cannot stall the socket. What a shed query
// gets back is the Overload policy's call — nothing, or a reflex
// SERVFAIL/TC built without decoding.
func (s *Server) readUDP(conn net.PacketConn, jobs chan<- udpJob, readerWG *sync.WaitGroup) {
	defer s.wg.Done()
	defer readerWG.Done()
	buf := make([]byte, 65536) // private read buffer; max UDP payload
	for {
		n, peer, err := conn.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		s.m.udpReceived.Inc()
		wire := bufPool.Get().(*[]byte)
		*wire = append((*wire)[:0], buf[:n]...)
		select {
		case jobs <- udpJob{wire: wire, peer: peer, start: time.Now()}:
		default:
			s.m.udpDropped.Inc()
			s.shedReflex(conn, *wire, peer)
			bufPool.Put(wire)
		}
	}
}

// shedReflex answers one shed query per the Overload policy. It mutates
// the query bytes in place (the caller owns the copy) — no decode, no
// allocation — so the degraded path stays cheap under exactly the load
// that triggers it.
func (s *Server) shedReflex(conn net.PacketConn, wire []byte, peer net.Addr) {
	switch s.Overload {
	case OverloadServFail:
		if out := reflexResponse(wire, dnswire.RCodeServFail, false); out != nil {
			conn.WriteTo(out, peer)
			s.m.shedServFail.Inc()
		}
	case OverloadTruncate:
		if out := reflexResponse(wire, dnswire.RCodeNoError, true); out != nil {
			conn.WriteTo(out, peer)
			s.m.shedTruncated.Inc()
		}
	}
}

// reflexResponse turns a raw query datagram into a minimal response in
// place: QR set, the given rcode, optionally TC, answer/authority counts
// zeroed. The question section (and any EDNS OPT record) is echoed
// as-is. Returns nil for datagrams that are not plausible queries.
func reflexResponse(wire []byte, rcode dnswire.RCode, tc bool) []byte {
	if len(wire) < 12 || wire[2]&0x80 != 0 {
		return nil // too short, or already a response
	}
	wire[2] |= 0x80  // QR
	wire[2] &^= 0x06 // clear AA and TC
	if tc {
		wire[2] |= 0x02
	}
	wire[3] = byte(rcode) & 0x0f // clears RA/Z, sets rcode
	wire[6], wire[7] = 0, 0      // ANCOUNT
	wire[8], wire[9] = 0, 0      // NSCOUNT
	return wire
}

// udpWorker runs decode→answer→encode for queued datagrams and writes the
// responses, applying response rate limiting first. WriteTo is safe for
// concurrent use.
func (s *Server) udpWorker(conn net.PacketConn, jobs <-chan udpJob) {
	defer s.wg.Done()
	for job := range jobs {
		if s.closing.Load() {
			bufPool.Put(job.wire)
			continue // drain fast on Close; queued queries are shed
		}
		peer := job.peer
		if s.rrl != nil {
			// RRL accounts responses per source prefix before the
			// answer is built: a limited query costs no encode work.
			switch s.rrl.account(peer, time.Now()) {
			case rrlDrop:
				s.m.rrlDropped.Inc()
				bufPool.Put(job.wire)
				continue
			case rrlSlip:
				if out := reflexResponse(*job.wire, dnswire.RCodeNoError, true); out != nil {
					conn.WriteTo(out, peer)
				}
				s.m.rrlSlipped.Inc()
				bufPool.Put(job.wire)
				continue
			}
		}
		resp, err := s.handleUDP(*job.wire)
		bufPool.Put(job.wire)
		if err != nil {
			s.m.udpMalformed.Inc()
			s.log.Debug("authserver: bad query", "peer", peer, "err", err)
			continue
		}
		if d := s.Delay(); d > 0 {
			time.Sleep(d)
		}
		if _, err := conn.WriteTo(resp, peer); err != nil {
			s.log.Debug("authserver: udp write", "peer", peer, "err", err)
			continue
		}
		s.m.udpAnswered.Inc()
		s.m.udpLatency.Observe(time.Since(job.start))
	}
}

// handleUDP answers one UDP query, truncating responses that exceed the
// client's UDP payload budget: the classic 512 bytes, or the size an EDNS
// OPT record advertises (RFC 6891). The wire is decoded exactly once and
// the parsed message threaded through answering and truncation.
func (s *Server) handleUDP(wire []byte) ([]byte, error) {
	q, err := dnswire.Decode(wire)
	if err != nil {
		return nil, err
	}
	resp, err := s.answer(q)
	if err != nil {
		return nil, err
	}
	out, err := dnswire.Encode(resp)
	if err != nil {
		return nil, err
	}
	if len(out) <= q.MaxUDPPayload() {
		return out, nil
	}
	// re-encode header-and-question only, with TC set
	trunc := &dnswire.Message{
		Header: dnswire.Header{
			ID:               q.Header.ID,
			Response:         true,
			Authoritative:    true,
			Truncated:        true,
			RecursionDesired: q.Header.RecursionDesired,
		},
		Questions: q.Questions,
	}
	if e, ok := q.EDNS(); ok {
		trunc.AttachEDNS(dnswire.EDNS{UDPPayload: e.UDPPayload})
	}
	return dnswire.Encode(trunc)
}

// answer validates the already-decoded query and builds its response.
func (s *Server) answer(q *dnswire.Message) (*dnswire.Message, error) {
	if q.Header.Response || len(q.Questions) != 1 {
		return nil, fmt.Errorf("authserver: not a single-question query")
	}
	resp := s.zone.Answer(q.Questions[0])
	resp.Header.ID = q.Header.ID
	resp.Header.RecursionDesired = q.Header.RecursionDesired
	return resp, nil
}

// serveTCP accepts connections under the maxConns cap; excess connections
// are closed immediately rather than queued, so a connection flood cannot
// exhaust goroutines.
func (s *Server) serveTCP(l net.Listener, maxConns int) {
	defer s.wg.Done()
	sem := make(chan struct{}, maxConns)
	for {
		c, err := l.Accept()
		if err != nil {
			return // closed
		}
		select {
		case sem <- struct{}{}:
		default:
			s.m.tcpRejected.Inc()
			c.Close()
			continue
		}
		s.m.tcpAccepted.Inc()
		if s.WrapTCP != nil {
			c = s.WrapTCP(c)
		}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				c.Close()
				<-sem
			}()
			s.serveTCPConn(c)
		}()
	}
}

// serveTCPConn handles length-prefixed DNS over one TCP connection
// (RFC 1035 §4.2.2). Close drains it gracefully: an in-flight exchange
// finishes its write, then the poked read deadline ends the loop.
func (s *Server) serveTCPConn(c net.Conn) {
	for {
		if err := c.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
			return
		}
		var lenb [2]byte
		if _, err := io.ReadFull(c, lenb[:]); err != nil {
			return
		}
		msgLen := binary.BigEndian.Uint16(lenb[:])
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(c, msg); err != nil {
			return
		}
		start := time.Now()
		resp, err := s.handleTCP(msg)
		if err != nil {
			return
		}
		if d := s.Delay(); d > 0 {
			time.Sleep(d)
		}
		out := make([]byte, 2+len(resp))
		binary.BigEndian.PutUint16(out, uint16(len(resp)))
		copy(out[2:], resp)
		if _, err := c.Write(out); err != nil {
			return
		}
		s.m.tcpQueries.Inc()
		s.m.tcpLatency.Observe(time.Since(start))
	}
}

// handleTCP answers one TCP query, clamping the response to what a 16-bit
// length prefix can frame. TC semantics do not apply over TCP, so an
// oversized answer first sheds its additional section (glue); if the
// message still cannot fit, the server answers SERVFAIL rather than
// corrupt the frame.
func (s *Server) handleTCP(wire []byte) ([]byte, error) {
	q, err := dnswire.Decode(wire)
	if err != nil {
		return nil, err
	}
	resp, err := s.answer(q)
	if err != nil {
		return nil, err
	}
	out, err := dnswire.Encode(resp)
	if err != nil {
		return nil, err
	}
	if len(out) <= maxTCPMessage {
		return out, nil
	}
	resp.Additional = nil
	out, err = dnswire.Encode(resp)
	if err != nil {
		return nil, err
	}
	if len(out) <= maxTCPMessage {
		return out, nil
	}
	servfail := &dnswire.Message{
		Header: dnswire.Header{
			ID:               q.Header.ID,
			Response:         true,
			Authoritative:    true,
			RCode:            dnswire.RCodeServFail,
			RecursionDesired: q.Header.RecursionDesired,
		},
		Questions: q.Questions,
	}
	return dnswire.Encode(servfail)
}

// Close stops the listeners, sheds queued work, and drains in-flight
// handlers: active TCP exchanges finish their response write before their
// read loop is interrupted. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return nil
	}
	if s.closing.Swap(true) {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.pc.Close()
	s.tcp.Close()
	// poke blocked TCP reads; handlers mid-exchange complete their write
	// first because each connection is served sequentially
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// QueryTCP issues one length-prefixed DNS query over TCP, for tests of the
// TCP path (DNS-over-TCP is the dominant attack protocol in §6.2, and a
// real service on authoritative servers). The response's ID must match the
// query's ID, mirroring the UDP client's anti-spoofing check.
func QueryTCP(ctx context.Context, addr, name string, qtype dnswire.Type) (*dnswire.Message, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			return nil, err
		}
	}
	var idb [2]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return nil, err
	}
	id := binary.BigEndian.Uint16(idb[:])
	q := dnswire.NewQuery(id, name, qtype)
	wire, err := dnswire.Encode(q)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 2+len(wire))
	binary.BigEndian.PutUint16(out, uint16(len(wire)))
	copy(out[2:], wire)
	if _, err := conn.Write(out); err != nil {
		return nil, err
	}
	var lenb [2]byte
	if _, err := io.ReadFull(conn, lenb[:]); err != nil {
		return nil, err
	}
	buf := make([]byte, binary.BigEndian.Uint16(lenb[:]))
	if _, err := io.ReadFull(conn, buf); err != nil {
		return nil, err
	}
	m, err := dnswire.Decode(buf)
	if err != nil {
		return nil, err
	}
	if m.Header.ID != id {
		return nil, fmt.Errorf("authserver: response ID %#04x does not match query ID %#04x", m.Header.ID, id)
	}
	return m, nil
}
