package authserver

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
)

// zonefile.go reads and writes a practical subset of the RFC 1035 master
// file format — enough to export a generated world's delegations and load
// hand-written zones into the server: $TTL and $ORIGIN directives, NS and
// A records, comments, and relative names.

// WriteZoneFile serializes the zone's records as a master file.
func WriteZoneFile(w io.Writer, z *Zone) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "$TTL %d\n", z.ttl); err != nil {
		return err
	}
	names := make([]string, 0, len(z.ns))
	for n := range z.ns {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, host := range z.ns[n] {
			if _, err := fmt.Fprintf(bw, "%s.\tIN\tNS\t%s.\n", n, host); err != nil {
				return err
			}
		}
	}
	hosts := make([]string, 0, len(z.a))
	for h := range z.a {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		for _, addr := range z.a[h] {
			if _, err := fmt.Fprintf(bw, "%s.\tIN\tA\t%s\n", h, addr); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadZoneFile parses a master file into a Zone. Supported: $TTL, $ORIGIN,
// blank lines, ';' comments, optional per-record TTL and class fields, NS
// and A records; names without a trailing dot are relative to $ORIGIN.
func ReadZoneFile(r io.Reader) (*Zone, error) {
	z := NewZone()
	origin := ""
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "$TTL":
			if len(fields) != 2 {
				return nil, fmt.Errorf("zonefile: line %d: $TTL wants one argument", ln)
			}
			ttl, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("zonefile: line %d: %w", ln, err)
			}
			z.ttl = uint32(ttl)
			continue
		case "$ORIGIN":
			if len(fields) != 2 {
				return nil, fmt.Errorf("zonefile: line %d: $ORIGIN wants one argument", ln)
			}
			origin = dnswire.CanonicalName(fields[1])
			continue
		}
		if err := parseRecord(z, origin, fields, ln); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return z, nil
}

// parseRecord handles "<name> [ttl] [class] <type> <rdata>".
func parseRecord(z *Zone, origin string, fields []string, ln int) error {
	if len(fields) < 3 {
		return fmt.Errorf("zonefile: line %d: too few fields", ln)
	}
	name, err := absName(fields[0], origin, ln)
	if err != nil {
		return err
	}
	rest := fields[1:]
	// optional TTL
	if _, errTTL := strconv.ParseUint(rest[0], 10, 32); errTTL == nil {
		rest = rest[1:]
	}
	// optional class
	if len(rest) > 0 && strings.EqualFold(rest[0], "IN") {
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return fmt.Errorf("zonefile: line %d: missing type or rdata", ln)
	}
	typ, rdata := strings.ToUpper(rest[0]), rest[1]
	switch typ {
	case "NS":
		host, err := absName(rdata, origin, ln)
		if err != nil {
			return err
		}
		z.AddNS(name, host)
	case "A":
		addr, err := netx.ParseAddr(rdata)
		if err != nil {
			return fmt.Errorf("zonefile: line %d: %w", ln, err)
		}
		z.AddA(name, addr)
	case "SOA", "TXT", "AAAA", "MX", "CNAME":
		// tolerated but not served
	default:
		return fmt.Errorf("zonefile: line %d: unsupported record type %q", ln, typ)
	}
	return nil
}

// absName resolves a possibly relative owner name against $ORIGIN.
func absName(name, origin string, ln int) (string, error) {
	if name == "@" {
		if origin == "" {
			return "", fmt.Errorf("zonefile: line %d: @ without $ORIGIN", ln)
		}
		return origin, nil
	}
	if strings.HasSuffix(name, ".") {
		return dnswire.CanonicalName(name), nil
	}
	if origin == "" {
		return "", fmt.Errorf("zonefile: line %d: relative name %q without $ORIGIN", ln, name)
	}
	return dnswire.CanonicalName(name) + "." + origin, nil
}

// TTL returns the zone's answer TTL (exposed for tests and tooling).
func (z *Zone) TTL() uint32 { return z.ttl }

// NumDelegations returns the number of delegated names in the zone.
func (z *Zone) NumDelegations() int { return len(z.ns) }
