package authserver

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
	"dnsddos/internal/resolver"
)

// TestConcurrentLoadUDPAndTCP hammers the server from many goroutines over
// both transports simultaneously; run under -race it exercises the reader
// fan-in, the worker pool, and the per-connection TCP handlers.
func TestConcurrentLoadUDPAndTCP(t *testing.T) {
	zone := NewZone()
	zone.AddNS("example.nl", "ns1.dns.example")
	zone.AddNS("example.nl", "ns2.dns.example")
	zone.AddA("ns1.dns.example", netx.MustParseAddr("192.0.2.1"))
	zone.AddA("ns2.dns.example", netx.MustParseAddr("192.0.2.2"))
	srv := NewServer(zone, nil)
	srv.Workers = 4
	srv.Readers = 2
	srv.MaxConns = 64
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const goroutines = 16
	const perGoroutine = 10
	errs := make(chan error, goroutines*perGoroutine)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &resolver.UDPClient{Timeout: 5 * time.Second}
			for i := 0; i < perGoroutine; i++ {
				if (g+i)%2 == 0 {
					m, _, err := client.Query(context.Background(), addr, "example.nl", dnswire.TypeNS)
					if err != nil {
						errs <- fmt.Errorf("udp: %w", err)
					} else if len(m.Answers) != 2 {
						errs <- fmt.Errorf("udp answers = %d", len(m.Answers))
					}
				} else {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					m, err := QueryTCP(ctx, addr, "example.nl", dnswire.TypeNS)
					cancel()
					if err != nil {
						errs <- fmt.Errorf("tcp: %w", err)
					} else if len(m.Answers) != 2 {
						errs <- fmt.Errorf("tcp answers = %d", len(m.Answers))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.Stats()
	if st.UDPAnswered == 0 || st.TCPQueries == 0 {
		t.Errorf("stats show no traffic: %+v", st)
	}
}

// TestDelayedAnswerDoesNotBlockOthers is the regression test for the
// single-goroutine UDP loop: a slow in-flight answer must not stall other
// queries, and the Delay knob is atomic so it can be flipped mid-run.
func TestDelayedAnswerDoesNotBlockOthers(t *testing.T) {
	zone := NewZone()
	zone.AddNS("slow.example", "ns1.slow.example")
	srv := NewServer(zone, nil)
	srv.Workers = 4
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	srv.SetDelay(500 * time.Millisecond)
	slowDone := make(chan error, 1)
	go func() {
		client := &resolver.UDPClient{Timeout: 3 * time.Second}
		_, _, err := client.Query(context.Background(), addr, "slow.example", dnswire.TypeNS)
		slowDone <- err
	}()
	// give the slow query time to enter its worker's Delay sleep
	time.Sleep(50 * time.Millisecond)
	srv.SetDelay(0)

	client := &resolver.UDPClient{Timeout: 3 * time.Second}
	start := time.Now()
	if _, _, err := client.Query(context.Background(), addr, "slow.example", dnswire.TypeNS); err != nil {
		t.Fatalf("fast query failed: %v", err)
	}
	if fast := time.Since(start); fast > 300*time.Millisecond {
		t.Errorf("query behind a delayed answer took %v; the delayed answer blocked the pool", fast)
	}
	if err := <-slowDone; err != nil {
		t.Errorf("delayed query must still be answered: %v", err)
	}
}

// TestTCPConnCap verifies that connections beyond MaxConns are refused
// while admitted connections keep working.
func TestTCPConnCap(t *testing.T) {
	zone := NewZone()
	zone.AddNS("example.nl", "ns1.dns.example")
	srv := NewServer(zone, nil)
	srv.MaxConns = 1
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// occupy the single slot with an idle admitted connection
	held, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer held.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().TCPAccepted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("held connection never accepted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// the next connection is shed at accept: its query cannot complete
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := QueryTCP(ctx, addr, "example.nl", dnswire.TypeNS); err == nil {
		t.Error("query over the cap should fail")
	}
	if srv.Stats().TCPRejected == 0 {
		t.Errorf("stats = %+v, want a rejected connection", srv.Stats())
	}

	// the admitted connection still serves queries
	q := dnswire.NewQuery(7, "example.nl", dnswire.TypeNS)
	wire, err := dnswire.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	framed := append([]byte{byte(len(wire) >> 8), byte(len(wire))}, wire...)
	held.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := held.Write(framed); err != nil {
		t.Fatal(err)
	}
	lenb := make([]byte, 2)
	if _, err := held.Read(lenb); err != nil {
		t.Fatalf("admitted connection stopped answering: %v", err)
	}
}

// TestIPv6Listen binds the server on the IPv6 loopback and queries it over
// both transports, skipping on kernels without IPv6.
func TestIPv6Listen(t *testing.T) {
	zone := NewZone()
	zone.AddNS("example.nl", "ns1.dns.example")
	zone.AddA("ns1.dns.example", netx.MustParseAddr("192.0.2.1"))
	srv := NewServer(zone, nil)
	addr, err := srv.Start("[::1]:0")
	if err != nil {
		t.Skipf("IPv6 loopback unavailable: %v", err)
	}
	defer srv.Close()
	if host, _, err := net.SplitHostPort(addr); err != nil || host != "::1" {
		t.Fatalf("bound addr = %q (host %q, err %v), want ::1", addr, host, err)
	}
	client := &resolver.UDPClient{Timeout: 2 * time.Second}
	m, _, err := client.Query(context.Background(), addr, "example.nl", dnswire.TypeNS)
	if err != nil {
		t.Fatalf("UDP over IPv6: %v", err)
	}
	if len(m.Answers) != 1 {
		t.Errorf("answers = %d", len(m.Answers))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := QueryTCP(ctx, addr, "example.nl", dnswire.TypeNS); err != nil {
		t.Fatalf("TCP over IPv6: %v", err)
	}
}

// TestCloseIsIdempotentUnderTraffic closes the server while queries are in
// flight; Close must drain and a second Close must be a no-op.
func TestCloseIsIdempotentUnderTraffic(t *testing.T) {
	zone := NewZone()
	zone.AddNS("example.nl", "ns1.dns.example")
	srv := NewServer(zone, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &resolver.UDPClient{Timeout: 200 * time.Millisecond}
			// errors are expected once the socket closes
			client.Query(context.Background(), addr, "example.nl", dnswire.TypeNS)
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
