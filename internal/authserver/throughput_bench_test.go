// Throughput benchmarks for the concurrent serving engine, driven by the
// internal/dnsload generator over real loopback sockets. Each answer
// carries a small artificial service delay (the Delay knob) modelling
// handler latency — the exact condition under which the seed's
// single-goroutine UDP loop collapsed: with workers=1 throughput is capped
// near 1/delay, while the worker pool overlaps the latency and multiplies
// queries/sec. Compare sub-benchmark "queries/s" metrics:
//
//	go test -bench Throughput -benchtime 2s ./internal/authserver/
package authserver_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/dnsload"
	"dnsddos/internal/netx"
)

// benchServiceDelay models per-answer handler latency (backend lookups,
// large NSSet encodes) that a correct server must overlap, not serialize.
const benchServiceDelay = 200 * time.Microsecond

func benchZone() (*authserver.Zone, []string) {
	zone := authserver.NewZone()
	names := make([]string, 32)
	for i := range names {
		d := fmt.Sprintf("domain-%02d.example", i)
		names[i] = d
		for n := 0; n < 2; n++ {
			host := fmt.Sprintf("ns%d.provider-%02d.example", n, i)
			zone.AddNS(d, host)
			zone.AddA(host, netx.Addr(uint32(0x0b000000+i*2+n)))
		}
	}
	return zone, names
}

func benchUDPThroughput(b *testing.B, workers int) {
	zone, names := benchZone()
	srv := authserver.NewServer(zone, nil)
	srv.Workers = workers
	srv.Readers = 2
	srv.QueueDepth = 8192
	srv.SetDelay(benchServiceDelay)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	b.ResetTimer()
	res, err := dnsload.Run(context.Background(), dnsload.Config{
		Addr:        addr,
		Names:       names,
		Concurrency: 4 * workers,
		Queries:     b.N,
		Timeout:     10 * time.Second,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Received == 0 {
		b.Fatal("no answers received")
	}
	b.ReportMetric(res.QPS(), "queries/s")
	b.ReportMetric(100*res.LossRate(), "%loss")
	b.ReportMetric(float64(res.LatencyQuantile(0.99))/1e6, "p99-ms")
}

// BenchmarkServer_UDPThroughput measures sustained UDP answer rate as the
// worker pool grows; the workers=1 row is the seed's effective
// architecture (one goroutine serializing every answer).
func BenchmarkServer_UDPThroughput(b *testing.B) {
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchUDPThroughput(b, w)
		})
	}
}

func benchTCPThroughput(b *testing.B, conns int) {
	zone, names := benchZone()
	srv := authserver.NewServer(zone, nil)
	srv.MaxConns = 2 * conns
	srv.SetDelay(benchServiceDelay)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	b.ResetTimer()
	res, err := dnsload.Run(context.Background(), dnsload.Config{
		Addr:        addr,
		Names:       names,
		Proto:       dnsload.ProtoTCP,
		Concurrency: conns,
		Queries:     b.N,
		Timeout:     10 * time.Second,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Received == 0 {
		b.Fatal("no answers received")
	}
	b.ReportMetric(res.QPS(), "queries/s")
	b.ReportMetric(100*res.LossRate(), "%loss")
}

// BenchmarkServer_TCPThroughput measures DNS-over-TCP exchange rate as
// client connections fan out across per-connection handler goroutines.
func BenchmarkServer_TCPThroughput(b *testing.B) {
	for _, c := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("conns=%d", c), func(b *testing.B) {
			benchTCPThroughput(b, c)
		})
	}
}
