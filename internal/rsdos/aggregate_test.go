package rsdos

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/backscatter"
	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/telescope"
)

func bsPacket(victim, dst string, srcPort uint16) packet.Packet {
	return packet.Packet{
		IP: packet.IPv4Header{Protocol: packet.ProtoTCP,
			Src: netx.MustParseAddr(victim), Dst: netx.MustParseAddr(dst)},
		TCP: &packet.TCPHeader{SrcPort: srcPort, DstPort: 4000, Flags: packet.FlagSYN | packet.FlagACK},
	}
}

func TestPacketAggregatorBasics(t *testing.T) {
	tel := telescope.NewUCSD()
	pa := NewPacketAggregator(tel)
	base := clock.StudyStart
	// two victims in one window, one victim spanning two windows
	pa.Add(base.Add(10*time.Second), bsPacket("192.0.2.1", "44.0.0.1", 53))
	pa.Add(base.Add(20*time.Second), bsPacket("192.0.2.1", "44.1.0.1", 53))
	pa.Add(base.Add(30*time.Second), bsPacket("198.51.100.1", "44.2.0.1", 80))
	pa.Add(base.Add(6*time.Minute), bsPacket("192.0.2.1", "44.3.0.1", 53))
	obs := pa.Finish()
	if len(obs) != 3 {
		t.Fatalf("observations = %d, want 3", len(obs))
	}
	// window order, victim order within window
	if obs[0].Window != 0 || obs[1].Window != 0 || obs[2].Window != 1 {
		t.Errorf("window order: %v %v %v", obs[0].Window, obs[1].Window, obs[2].Window)
	}
	first := obs[0]
	if first.Victim != netx.MustParseAddr("192.0.2.1") || first.Packets != 2 {
		t.Errorf("first obs = %+v", first)
	}
	if first.Slash16 != 2 || first.UniqueDsts != 2 {
		t.Errorf("spread = %d, dsts = %d", first.Slash16, first.UniqueDsts)
	}
	if first.Proto != packet.ProtoTCP || first.Ports[53] != 2 {
		t.Errorf("attribution = %v %v", first.Proto, first.Ports)
	}
}

func TestPacketAggregatorPeakPPM(t *testing.T) {
	tel := telescope.NewUCSD()
	pa := NewPacketAggregator(tel)
	base := clock.StudyStart
	// 10 packets in minute 0, 30 in minute 3
	for i := 0; i < 10; i++ {
		pa.Add(base.Add(time.Duration(i)*time.Second), bsPacket("192.0.2.1", "44.0.0.1", 53))
	}
	for i := 0; i < 30; i++ {
		pa.Add(base.Add(3*time.Minute+time.Duration(i)*time.Second), bsPacket("192.0.2.1", "44.0.0.1", 53))
	}
	obs := pa.Finish()
	if len(obs) != 1 || obs[0].PeakPPM != 30 {
		t.Errorf("peak ppm = %+v", obs)
	}
}

func TestClassifyBackscatter(t *testing.T) {
	cases := []struct {
		p     packet.Packet
		proto packet.Protocol
		port  uint16
		has   bool
	}{
		{packet.Packet{TCP: &packet.TCPHeader{SrcPort: 53}}, packet.ProtoTCP, 53, true},
		{packet.Packet{UDP: &packet.UDPHeader{SrcPort: 123}}, packet.ProtoUDP, 123, true},
		{packet.Packet{ICMP: &packet.ICMPHeader{Type: packet.ICMPDestUnreachable, Rest: 9999}}, packet.ProtoUDP, 9999, true},
		{packet.Packet{ICMP: &packet.ICMPHeader{Type: packet.ICMPEchoReply}}, packet.ProtoICMP, 0, false},
	}
	for i, c := range cases {
		proto, port, has := classifyBackscatter(c.p)
		if proto != c.proto || port != c.port || has != c.has {
			t.Errorf("case %d: got %v/%d/%v", i, proto, port, has)
		}
	}
}

// TestPacketPathMatchesFlowPath is the cross-validation between the two
// fidelity levels: a packet-level replay (flood → backscatter → telescope →
// aggregator) must produce per-window statistics consistent with the
// analytic thinning used by the longitudinal synthesizer.
func TestPacketPathMatchesFlowPath(t *testing.T) {
	tel := telescope.NewUCSD()
	rng := rand.New(rand.NewPCG(42, 42))
	victimAddr := netx.MustParseAddr("192.0.2.53")
	spec := attacksim.Spec{
		Target: victimAddr,
		Vector: attacksim.VectorRandomSpoofed,
		Proto:  packet.ProtoTCP,
		Ports:  []uint16{53},
		Start:  clock.StudyStart,
		End:    clock.StudyStart.Add(5 * time.Minute),
		PPS:    2000,
	}
	victim := backscatter.DefaultNameserverVictim(false)
	pa := NewPacketAggregator(tel)
	spec.Flood(rng, 0, 1.0, func(ts time.Time, p packet.Packet) bool {
		if rt, resp, ok := victim.Respond(rng, ts, p); ok {
			if tel.Contains(resp.IP.Dst) {
				pa.Add(rt, resp)
			}
		}
		return true
	})
	obs := pa.Finish()
	if len(obs) == 0 {
		t.Fatal("no observations from packet path")
	}
	total := int64(0)
	for _, o := range obs {
		total += o.Packets
		if o.Victim != victimAddr {
			t.Errorf("victim attribution = %v", o.Victim)
		}
		if o.Proto != packet.ProtoTCP || o.Ports[53] != o.Packets {
			t.Errorf("port attribution: %+v", o)
		}
	}
	// expected telescope packets = pps × 300 s × fraction ≈ 1758
	want := spec.PPS * 300 * tel.Fraction()
	if math.Abs(float64(total)-want) > 6*math.Sqrt(want) {
		t.Errorf("telescope packets = %d, want ≈%.0f", total, want)
	}
	// the spread should be near the coupon-collector expectation
	spread := obs[0].Slash16
	wantSpread := tel.ExpectedSlash16Spread(total)
	if math.Abs(float64(spread)-float64(wantSpread)) > 8 {
		t.Errorf("spread = %d, formula %d", spread, wantSpread)
	}
	// the inference should call this one attack
	attacks := Infer(DefaultConfig(), obs)
	if len(attacks) != 1 {
		t.Fatalf("inferred %d attacks", len(attacks))
	}
	if attacks[0].Victim != victimAddr || attacks[0].FirstPort != 53 {
		t.Errorf("attack = %+v", attacks[0])
	}
}
