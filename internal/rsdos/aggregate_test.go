package rsdos

import (
	"math"
	"math/rand/v2"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/backscatter"
	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/telescope"
)

func bsPacket(victim, dst string, srcPort uint16) packet.Packet {
	return packet.Packet{
		IP: packet.IPv4Header{Protocol: packet.ProtoTCP,
			Src: netx.MustParseAddr(victim), Dst: netx.MustParseAddr(dst)},
		TCP: &packet.TCPHeader{SrcPort: srcPort, DstPort: 4000, Flags: packet.FlagSYN | packet.FlagACK},
	}
}

func TestPacketAggregatorBasics(t *testing.T) {
	tel := telescope.NewUCSD()
	pa := NewPacketAggregator(tel)
	base := clock.StudyStart
	// two victims in one window, one victim spanning two windows
	pa.Add(base.Add(10*time.Second), bsPacket("192.0.2.1", "44.0.0.1", 53))
	pa.Add(base.Add(20*time.Second), bsPacket("192.0.2.1", "44.1.0.1", 53))
	pa.Add(base.Add(30*time.Second), bsPacket("198.51.100.1", "44.2.0.1", 80))
	pa.Add(base.Add(6*time.Minute), bsPacket("192.0.2.1", "44.3.0.1", 53))
	obs := pa.Finish()
	if len(obs) != 3 {
		t.Fatalf("observations = %d, want 3", len(obs))
	}
	// window order, victim order within window
	if obs[0].Window != 0 || obs[1].Window != 0 || obs[2].Window != 1 {
		t.Errorf("window order: %v %v %v", obs[0].Window, obs[1].Window, obs[2].Window)
	}
	first := obs[0]
	if first.Victim != netx.MustParseAddr("192.0.2.1") || first.Packets != 2 {
		t.Errorf("first obs = %+v", first)
	}
	if first.Slash16 != 2 || first.UniqueDsts != 2 {
		t.Errorf("spread = %d, dsts = %d", first.Slash16, first.UniqueDsts)
	}
	if first.Proto != packet.ProtoTCP || first.Ports[53] != 2 {
		t.Errorf("attribution = %v %v", first.Proto, first.Ports)
	}
}

func TestPacketAggregatorPeakPPM(t *testing.T) {
	tel := telescope.NewUCSD()
	pa := NewPacketAggregator(tel)
	base := clock.StudyStart
	// 10 packets in minute 0, 30 in minute 3
	for i := 0; i < 10; i++ {
		pa.Add(base.Add(time.Duration(i)*time.Second), bsPacket("192.0.2.1", "44.0.0.1", 53))
	}
	for i := 0; i < 30; i++ {
		pa.Add(base.Add(3*time.Minute+time.Duration(i)*time.Second), bsPacket("192.0.2.1", "44.0.0.1", 53))
	}
	obs := pa.Finish()
	if len(obs) != 1 || obs[0].PeakPPM != 30 {
		t.Errorf("peak ppm = %+v", obs)
	}
}

func TestClassifyBackscatter(t *testing.T) {
	cases := []struct {
		p     packet.Packet
		proto packet.Protocol
		port  uint16
		has   bool
	}{
		{packet.Packet{TCP: &packet.TCPHeader{SrcPort: 53}}, packet.ProtoTCP, 53, true},
		{packet.Packet{UDP: &packet.UDPHeader{SrcPort: 123}}, packet.ProtoUDP, 123, true},
		{packet.Packet{ICMP: &packet.ICMPHeader{Type: packet.ICMPDestUnreachable, Rest: 9999}}, packet.ProtoUDP, 9999, true},
		{packet.Packet{ICMP: &packet.ICMPHeader{Type: packet.ICMPEchoReply}}, packet.ProtoICMP, 0, false},
	}
	for i, c := range cases {
		proto, port, has := classifyBackscatter(c.p)
		if proto != c.proto || port != c.port || has != c.has {
			t.Errorf("case %d: got %v/%d/%v", i, proto, port, has)
		}
	}
}

// TestPacketPathMatchesFlowPath is the cross-validation between the two
// fidelity levels: a packet-level replay (flood → backscatter → telescope →
// aggregator) must produce per-window statistics consistent with the
// analytic thinning used by the longitudinal synthesizer.
func TestPacketPathMatchesFlowPath(t *testing.T) {
	tel := telescope.NewUCSD()
	rng := rand.New(rand.NewPCG(42, 42))
	victimAddr := netx.MustParseAddr("192.0.2.53")
	spec := attacksim.Spec{
		Target: victimAddr,
		Vector: attacksim.VectorRandomSpoofed,
		Proto:  packet.ProtoTCP,
		Ports:  []uint16{53},
		Start:  clock.StudyStart,
		End:    clock.StudyStart.Add(5 * time.Minute),
		PPS:    2000,
	}
	victim := backscatter.DefaultNameserverVictim(false)
	pa := NewPacketAggregator(tel)
	spec.Flood(rng, 0, 1.0, func(ts time.Time, p packet.Packet) bool {
		if rt, resp, ok := victim.Respond(rng, ts, p); ok {
			if tel.Contains(resp.IP.Dst) {
				pa.Add(rt, resp)
			}
		}
		return true
	})
	obs := pa.Finish()
	if len(obs) == 0 {
		t.Fatal("no observations from packet path")
	}
	total := int64(0)
	for _, o := range obs {
		total += o.Packets
		if o.Victim != victimAddr {
			t.Errorf("victim attribution = %v", o.Victim)
		}
		if o.Proto != packet.ProtoTCP || o.Ports[53] != o.Packets {
			t.Errorf("port attribution: %+v", o)
		}
	}
	// expected telescope packets = pps × 300 s × fraction ≈ 1758
	want := spec.PPS * 300 * tel.Fraction()
	if math.Abs(float64(total)-want) > 6*math.Sqrt(want) {
		t.Errorf("telescope packets = %d, want ≈%.0f", total, want)
	}
	// the spread should be near the coupon-collector expectation
	spread := obs[0].Slash16
	wantSpread := tel.ExpectedSlash16Spread(total)
	if math.Abs(float64(spread)-float64(wantSpread)) > 8 {
		t.Errorf("spread = %d, formula %d", spread, wantSpread)
	}
	// the inference should call this one attack
	attacks := Infer(DefaultConfig(), obs)
	if len(attacks) != 1 {
		t.Fatalf("inferred %d attacks", len(attacks))
	}
	if attacks[0].Victim != victimAddr || attacks[0].FirstPort != 53 {
		t.Errorf("attack = %+v", attacks[0])
	}
}

// TestPacketAggregatorLateDrop is the regression test for the aggregator
// window-regression bug: a packet older than the newest window seen used
// to be treated as forward progress, regressing the live window and
// re-emitting a duplicate, out-of-order observation for the already
// flushed window. Now it must be dropped and counted, and Finish must
// stay strictly window-ordered with no duplicates.
func TestPacketAggregatorLateDrop(t *testing.T) {
	tel := telescope.NewUCSD()
	pa := NewPacketAggregator(tel)
	base := clock.StudyStart
	if !pa.Add(base.Add(10*time.Second), bsPacket("192.0.2.1", "44.0.0.1", 53)) {
		t.Fatal("in-order packet rejected")
	}
	// window 1 closes window 0
	if !pa.Add(base.Add(5*time.Minute+10*time.Second), bsPacket("192.0.2.1", "44.1.0.1", 53)) {
		t.Fatal("in-order packet rejected")
	}
	// late packet for the closed window 0: must be dropped, not regress
	if pa.Add(base.Add(20*time.Second), bsPacket("192.0.2.1", "44.2.0.1", 53)) {
		t.Error("late packet for a closed window was accepted")
	}
	if d := pa.LateDrops(); d != 1 {
		t.Errorf("LateDrops = %d, want 1", d)
	}
	obs := pa.Finish()
	if len(obs) != 2 {
		t.Fatalf("observations = %d, want 2 (duplicate emission for the closed window?)", len(obs))
	}
	for i := 1; i < len(obs); i++ {
		if obs[i].Window < obs[i-1].Window {
			t.Fatalf("Finish not window-ordered: %d after %d", obs[i].Window, obs[i-1].Window)
		}
	}
	if obs[0].Window != 0 || obs[0].Packets != 1 {
		t.Errorf("closed window mutated by the late packet: %+v", obs[0])
	}
	if obs[1].Window != 1 || obs[1].Packets != 1 {
		t.Errorf("live window corrupted: %+v", obs[1])
	}
}

// timedPacket pairs a backscatter packet with its capture time for the
// arrival-order property tests.
type timedPacket struct {
	ts time.Time
	p  packet.Packet
}

// randomTrace draws backscatter packets spread over a few windows with a
// handful of victims, in random (not time-sorted) generation order.
func randomTrace(rng *rand.Rand, n, windows int) []timedPacket {
	out := make([]timedPacket, 0, n)
	for i := 0; i < n; i++ {
		w := rng.IntN(windows)
		off := time.Duration(rng.IntN(300)) * time.Second
		v := netx.Addr(0xC0000200 + uint32(rng.IntN(3)))
		dst := netx.Addr(0x2C000000 + uint32(rng.IntN(1<<16)))
		out = append(out, timedPacket{
			ts: clock.StudyStart.Add(time.Duration(w)*clock.WindowDur + off),
			p:  bsPacket(v.String(), dst.String(), uint16(53+rng.IntN(3))),
		})
	}
	return out
}

func sortTrace(tr []timedPacket) {
	sort.SliceStable(tr, func(i, j int) bool { return tr[i].ts.Before(tr[j].ts) })
}

func runAggregator(tel *telescope.Telescope, tr []timedPacket) (obs []WindowObs, accepted []timedPacket, drops int64) {
	pa := NewPacketAggregator(tel)
	for _, tp := range tr {
		if pa.Add(tp.ts, tp.p) {
			accepted = append(accepted, tp)
		}
	}
	return pa.Finish(), accepted, pa.LateDrops()
}

// TestAggregatorIntraWindowShuffleProperty: arrival order *within* a
// window is free — shuffling packets inside their windows (window order
// preserved) never changes Finish output and never drops a packet.
func TestAggregatorIntraWindowShuffleProperty(t *testing.T) {
	tel := telescope.NewUCSD()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x51))
		tr := randomTrace(rng, 40+rng.IntN(120), 4)
		sortTrace(tr)
		want, _, wantDrops := runAggregator(tel, tr)
		if wantDrops != 0 {
			return false // sorted arrival must never drop
		}
		// shuffle within each window, keep window order
		shuf := make([]timedPacket, len(tr))
		copy(shuf, tr)
		for lo := 0; lo < len(shuf); {
			w := clock.WindowOf(shuf[lo].ts)
			hi := lo
			for hi < len(shuf) && clock.WindowOf(shuf[hi].ts) == w {
				hi++
			}
			rng.Shuffle(hi-lo, func(i, j int) { shuf[lo+i], shuf[lo+j] = shuf[lo+j], shuf[lo+i] })
			lo = hi
		}
		got, _, drops := runAggregator(tel, shuf)
		return drops == 0 && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAggregatorLateArrivalProperty: under arbitrary (fully shuffled)
// arrival, the aggregator's output equals a sorted replay of exactly the
// packets it accepted, and everything it did not accept is counted in
// LateDrops — late arrival can shrink the input but never reorder,
// duplicate, or corrupt the output.
func TestAggregatorLateArrivalProperty(t *testing.T) {
	tel := telescope.NewUCSD()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x62))
		tr := randomTrace(rng, 40+rng.IntN(120), 5)
		rng.Shuffle(len(tr), func(i, j int) { tr[i], tr[j] = tr[j], tr[i] })
		got, accepted, drops := runAggregator(tel, tr)
		if int(drops) != len(tr)-len(accepted) {
			return false
		}
		sortTrace(accepted)
		want, _, redrops := runAggregator(tel, accepted)
		if redrops != 0 {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Window < got[i-1].Window {
				return false // out-of-order emission
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestWindowerLatenessAbsorbsJitter: with a lateness allowance at least
// the arrival jitter, the streaming Windower accepts every packet of a
// jittered stream and produces byte-identical observations to a sorted
// zero-lateness replay.
func TestWindowerLatenessAbsorbsJitter(t *testing.T) {
	tel := telescope.NewUCSD()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x73))
		tr := randomTrace(rng, 40+rng.IntN(120), 6)
		sortTrace(tr)
		want, _, _ := runAggregator(tel, tr)
		// jittered arrival: order by ts + jitter with jitter < 2 windows.
		// Any packet arriving before packet p then has actual ts below
		// p.ts + 2 windows, so p is never more than 2 windows behind the
		// running max — exactly what a lateness allowance of 2 absorbs.
		type arrival struct {
			tp timedPacket
			at time.Time
		}
		arr := make([]arrival, len(tr))
		for i, tp := range tr {
			arr[i] = arrival{tp, tp.ts.Add(time.Duration(rng.Int64N(int64(2 * clock.WindowDur))))}
		}
		sort.SliceStable(arr, func(i, j int) bool { return arr[i].at.Before(arr[j].at) })
		jit := make([]timedPacket, len(arr))
		for i, a := range arr {
			jit[i] = a.tp
		}
		wd := NewWindower(tel, 2)
		var got []WindowObs
		for _, tp := range jit {
			if !wd.Add(tp.ts, tp.p) {
				return false // lateness 2 must absorb <2-window jitter
			}
			got = append(got, wd.CloseReady()...)
		}
		got = append(got, wd.CloseAll()...)
		return wd.LateDrops() == 0 && reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
