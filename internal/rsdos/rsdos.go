// Package rsdos infers Randomly and Uniformly Spoofed Denial-of-Service
// attacks from telescope backscatter, reproducing the semantics of CAIDA's
// RSDoS attack feed (§3.1): 5-minute tumbling windows of aggregated victim
// response statistics, curated with Moore-et-al.-style thresholds into
// attack records carrying victim IP, protocol, first/unique ports, the
// number of telescope /16s reached, and peak packet rate.
//
// Late-packet semantics: window aggregation is watermark-driven
// (Windower). A window closes once a packet arrives more than the
// lateness allowance past it — immediately for the batch
// PacketAggregator, whose allowance is zero — and packets for closed
// windows are *dropped and counted* (LateDrops), never folded in or
// re-emitted. Closed-window observations are therefore final and strictly
// window-ordered, which is what both the incremental Tracker and the
// streaming pipeline's exactly-once emission depend on.
package rsdos

import (
	"sort"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
)

// WindowObs aggregates the backscatter one victim generated into the
// telescope during one 5-minute window. Observations are produced either by
// a PacketAggregator (packet-level fidelity) or synthesized analytically by
// the longitudinal scenario generator; the inference below treats both
// identically.
type WindowObs struct {
	Window clock.Window
	Victim netx.Addr
	// Packets is the number of backscatter packets captured.
	Packets int64
	// PeakPPM is the peak per-minute packet rate inside the window
	// (packets per minute at the telescope, the Table 2 unit).
	PeakPPM float64
	// Slash16 is the number of distinct telescope /16 blocks reached —
	// the spread signal separating uniform spoofing from noise.
	Slash16 int
	// UniqueDsts is the number of distinct darknet destinations, i.e.
	// distinct spoofed sources that landed in the telescope.
	UniqueDsts int64
	// Proto is the inferred attacked protocol (from backscatter type).
	Proto packet.Protocol
	// Ports maps inferred attacked destination ports to packet counts.
	// Empty for ICMP attacks.
	Ports map[uint16]int64
}

// Config are the curation thresholds. Defaults approximate the Moore et
// al. backscatter methodology as applied by the CAIDA feed.
type Config struct {
	// MinPackets is the minimum backscatter packets per window for the
	// window to count as attack evidence.
	MinPackets int64
	// MinSlash16 is the minimum /16 spread per qualifying window;
	// uniform spoofing reaches many blocks quickly, scanners and
	// misconfigurations do not.
	MinSlash16 int
	// MaxGapWindows is how many consecutive non-qualifying windows may
	// separate two qualifying ones within a single attack.
	MaxGapWindows int
	// MinTotalPackets is the minimum packets over the whole attack.
	MinTotalPackets int64
}

// DefaultConfig returns the thresholds used throughout the reproduction.
func DefaultConfig() Config {
	return Config{
		MinPackets:      25,
		MinSlash16:      8,
		MaxGapWindows:   2,
		MinTotalPackets: 25,
	}
}

// Attack is one inferred RSDoS attack — the record schema of the feed.
type Attack struct {
	ID     int
	Victim netx.Addr
	// StartWindow..EndWindow are the inclusive qualifying windows.
	StartWindow clock.Window
	EndWindow   clock.Window
	// Proto is the dominant attacked protocol.
	Proto packet.Protocol
	// FirstPort is the first attacked port observed (0 for ICMP).
	FirstPort uint16
	// UniquePorts is the number of distinct attacked ports.
	UniquePorts int
	// TotalPackets is the backscatter packet total at the telescope.
	TotalPackets int64
	// PeakPPM is the maximum per-minute telescope packet rate.
	PeakPPM float64
	// MaxSlash16 is the maximum /16 spread over the attack's windows.
	MaxSlash16 int
	// UniqueDsts is the maximum per-window distinct darknet
	// destinations (a lower bound on distinct spoofed sources).
	UniqueDsts int64
}

// Start returns the attack start time.
func (a *Attack) Start() time.Time { return a.StartWindow.Start() }

// End returns the (exclusive) attack end time.
func (a *Attack) End() time.Time { return a.EndWindow.End() }

// Duration returns the inferred attack duration.
func (a *Attack) Duration() time.Duration { return a.End().Sub(a.Start()) }

// InferredVictimPPS extrapolates the telescope peak rate to the victim-side
// packet rate: PPM × scale / 60 (Table 2: 21.8 kppm × 341 / 60 ≈ 124 kpps).
func (a *Attack) InferredVictimPPS(scale float64) float64 {
	return a.PeakPPM * scale / 60
}

// InferredAttackerIPs extrapolates the distinct darknet destinations to the
// full IPv4 space, the Table 2 "Attacker IP Count" metric.
func (a *Attack) InferredAttackerIPs(scale float64) int64 {
	return int64(float64(a.UniqueDsts) * scale)
}

// InferredGbps estimates attack bandwidth from the inferred victim pps and
// a mean packet size.
func (a *Attack) InferredGbps(scale float64, packetBytes int) float64 {
	return a.InferredVictimPPS(scale) * float64(packetBytes) * 8 / 1e9
}

// Overlaps reports whether the attack interval overlaps [from, to).
func (a *Attack) Overlaps(from, to time.Time) bool {
	return a.Start().Before(to) && a.End().After(from)
}

// Infer curates window observations into attack records. Observations may
// arrive in any order; they are grouped per victim and merged across window
// gaps of at most MaxGapWindows.
//
// It is the batch face of the incremental Tracker: qualifying
// observations are sorted into window order, folded through one Tracker,
// and the finalized feed is numbered by (StartWindow, Victim) rank. The
// streaming pipeline drives the identical Tracker watermark-by-watermark,
// so batch and streaming curation cannot diverge.
func Infer(cfg Config, obs []WindowObs) []Attack {
	tr := NewTracker(cfg)
	qual := make([]WindowObs, 0, len(obs))
	for i := range obs {
		if tr.Qualifies(&obs[i]) {
			qual = append(qual, obs[i])
		}
	}
	sort.Slice(qual, func(i, j int) bool {
		if qual[i].Window != qual[j].Window {
			return qual[i].Window < qual[j].Window
		}
		return qual[i].Victim < qual[j].Victim
	})
	for _, o := range qual {
		tr.Observe(o)
	}
	attacks := tr.Finish()
	for i := range attacks {
		attacks[i].ID = i + 1
	}
	return attacks
}

func firstPort(o *WindowObs) uint16 {
	if len(o.Ports) == 0 {
		return 0
	}
	// deterministic: the lowest port with the highest count
	var best uint16
	var bestN int64 = -1
	for p, n := range o.Ports {
		if n > bestN || (n == bestN && p < best) {
			best, bestN = p, n
		}
	}
	return best
}

func finishAttack(a *Attack, ports map[uint16]int64, protoCount map[packet.Protocol]int64) {
	a.UniquePorts = len(ports)
	var bestProto packet.Protocol
	var bestN int64 = -1
	for p, n := range protoCount {
		if n > bestN || (n == bestN && p < bestProto) {
			bestProto, bestN = p, n
		}
	}
	a.Proto = bestProto
	if a.FirstPort == 0 && len(ports) > 0 {
		var best uint16
		var bn int64 = -1
		for p, n := range ports {
			if n > bn || (n == bn && p < best) {
				best, bn = p, n
			}
		}
		a.FirstPort = best
	}
}
