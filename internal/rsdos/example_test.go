package rsdos_test

import (
	"fmt"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/rsdos"
)

// ExampleInfer curates raw telescope window observations into an attack
// record with the feed's schema: victim, interval, protocol, ports, and the
// telescope-side intensity signals.
func ExampleInfer() {
	victim := netx.MustParseAddr("192.0.2.53")
	var obs []rsdos.WindowObs
	for w := clock.Window(100); w < 104; w++ {
		obs = append(obs, rsdos.WindowObs{
			Window:     w,
			Victim:     victim,
			Packets:    600,
			PeakPPM:    130,
			Slash16:    150,
			UniqueDsts: 590,
			Proto:      packet.ProtoTCP,
			Ports:      map[uint16]int64{53: 600},
		})
	}
	attacks := rsdos.Infer(rsdos.DefaultConfig(), obs)
	a := attacks[0]
	fmt.Printf("victim %s, %s, port %d, %d packets, %v\n",
		a.Victim, a.Proto, a.FirstPort, a.TotalPackets, a.Duration())
	// extrapolate to the victim side with the UCSD scale factor ≈341
	fmt.Printf("inferred victim-side peak ≈ %.0f pps\n", a.InferredVictimPPS(341.3))
	// Output:
	// victim 192.0.2.53, TCP, port 53, 2400 packets, 20m0s
	// inferred victim-side peak ≈ 739 pps
}
