package rsdos

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
)

// feed I/O: the attack feed serializes as CSV so the join pipeline, the
// reactive platform, and external tooling can consume it offline, mirroring
// how the CAIDA RSDoS feed is distributed as curated flat files.

var feedHeader = []string{
	"id", "victim", "start", "end", "proto",
	"first_port", "unique_ports", "total_packets", "peak_ppm", "max_slash16", "unique_dsts",
}

// WriteFeed serializes attacks as CSV with a header row.
func WriteFeed(w io.Writer, attacks []Attack) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(feedHeader); err != nil {
		return err
	}
	for _, a := range attacks {
		rec := []string{
			strconv.Itoa(a.ID),
			a.Victim.String(),
			a.Start().UTC().Format("2006-01-02T15:04:05Z"),
			a.End().UTC().Format("2006-01-02T15:04:05Z"),
			strconv.Itoa(int(a.Proto)),
			strconv.Itoa(int(a.FirstPort)),
			strconv.Itoa(a.UniquePorts),
			strconv.FormatInt(a.TotalPackets, 10),
			strconv.FormatFloat(a.PeakPPM, 'f', -1, 64),
			strconv.Itoa(a.MaxSlash16),
			strconv.FormatInt(a.UniqueDsts, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFeed parses the CSV produced by WriteFeed.
func ReadFeed(r io.Reader) ([]Attack, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(feedHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("rsdos: empty feed")
	}
	var attacks []Attack
	for i, row := range rows[1:] {
		a, err := parseFeedRow(row)
		if err != nil {
			return nil, fmt.Errorf("rsdos: feed row %d: %w", i+2, err)
		}
		attacks = append(attacks, a)
	}
	return attacks, nil
}

func parseFeedRow(row []string) (Attack, error) {
	var a Attack
	var err error
	if a.ID, err = strconv.Atoi(row[0]); err != nil {
		return a, err
	}
	if a.Victim, err = netx.ParseAddr(row[1]); err != nil {
		return a, err
	}
	start, err := parseUTC(row[2])
	if err != nil {
		return a, err
	}
	end, err := parseUTC(row[3])
	if err != nil {
		return a, err
	}
	a.StartWindow = clock.WindowOf(start)
	a.EndWindow = clock.WindowOf(end) - 1 // End() is exclusive
	proto, err := strconv.Atoi(row[4])
	if err != nil {
		return a, err
	}
	a.Proto = packet.Protocol(proto)
	fp, err := strconv.Atoi(row[5])
	if err != nil {
		return a, err
	}
	a.FirstPort = uint16(fp)
	if a.UniquePorts, err = strconv.Atoi(row[6]); err != nil {
		return a, err
	}
	if a.TotalPackets, err = strconv.ParseInt(row[7], 10, 64); err != nil {
		return a, err
	}
	if a.PeakPPM, err = strconv.ParseFloat(row[8], 64); err != nil {
		return a, err
	}
	if a.MaxSlash16, err = strconv.Atoi(row[9]); err != nil {
		return a, err
	}
	if a.UniqueDsts, err = strconv.ParseInt(row[10], 10, 64); err != nil {
		return a, err
	}
	return a, nil
}

func parseUTC(s string) (time.Time, error) {
	return time.Parse("2006-01-02T15:04:05Z", s)
}
