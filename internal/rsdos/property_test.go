package rsdos

import (
	"io"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
)

// randomObs draws a random observation batch over a handful of victims.
func randomObs(rng *rand.Rand) []WindowObs {
	n := rng.IntN(60)
	out := make([]WindowObs, 0, n)
	for i := 0; i < n; i++ {
		o := WindowObs{
			Window:  clock.Window(rng.IntN(50)),
			Victim:  netx.Addr(0x78000000 + uint32(rng.IntN(4))),
			Packets: int64(rng.IntN(200)),
			Slash16: rng.IntN(192) + 1,
			Proto:   packet.ProtoTCP,
		}
		o.PeakPPM = float64(o.Packets) / 5
		o.UniqueDsts = o.Packets
		if rng.IntN(4) > 0 {
			o.Ports = map[uint16]int64{uint16(1 + rng.IntN(1000)): o.Packets}
		}
		out = append(out, o)
	}
	return out
}

// TestInferInvariants checks structural invariants of the inference over
// random inputs:
//   - attack windows ordered, IDs sequential;
//   - per victim, attacks are disjoint and separated by more than the gap;
//   - every attack meets the curation thresholds;
//   - total packets are conserved (sum of qualifying observations).
func TestInferInvariants(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x1f))
		obs := randomObs(rng)
		attacks := Infer(cfg, obs)

		// qualifying-observation packet total per victim
		qualTotal := map[netx.Addr]int64{}
		for _, o := range obs {
			if o.Packets >= cfg.MinPackets && o.Slash16 >= cfg.MinSlash16 {
				qualTotal[o.Victim] += o.Packets
			}
		}
		attackTotal := map[netx.Addr]int64{}
		lastEnd := map[netx.Addr]clock.Window{}
		for i, a := range attacks {
			if a.ID != i+1 {
				return false
			}
			if a.EndWindow < a.StartWindow {
				return false
			}
			if a.TotalPackets < cfg.MinTotalPackets {
				return false
			}
			if prev, ok := lastEnd[a.Victim]; ok {
				if int64(a.StartWindow-prev) <= int64(cfg.MaxGapWindows)+1 {
					return false // should have merged
				}
			}
			lastEnd[a.Victim] = a.EndWindow
			attackTotal[a.Victim] += a.TotalPackets
		}
		// conservation: attacks partition qualifying packets except for
		// groups dropped by MinTotalPackets (only possible when a group
		// is a single small window; with MinPackets == MinTotalPackets
		// nothing is dropped)
		for v, want := range qualTotal {
			if attackTotal[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestInferOrderInvariance: shuffling the observation order never changes
// the result.
func TestInferOrderInvariance(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x2e))
		obs := randomObs(rng)
		a := Infer(cfg, obs)
		shuffled := make([]WindowObs, len(obs))
		copy(shuffled, obs)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := Infer(cfg, shuffled)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			x, y := a[i], b[i]
			if x.Victim != y.Victim || x.StartWindow != y.StartWindow || x.EndWindow != y.EndWindow ||
				x.TotalPackets != y.TotalPackets || x.PeakPPM != y.PeakPPM || x.UniquePorts != y.UniquePorts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFeedRoundTripProperty: serialization is lossless over random feeds.
func TestFeedRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x3d))
		attacks := Infer(DefaultConfig(), randomObs(rng))
		var buf feedBuffer
		if err := WriteFeed(&buf, attacks); err != nil {
			return false
		}
		got, err := ReadFeed(&buf)
		if err != nil {
			return len(attacks) == 0 // the reader rejects empty feeds
		}
		if len(got) != len(attacks) {
			return false
		}
		for i := range got {
			if got[i] != attacks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// feedBuffer is a minimal io.ReadWriter for the property test.
type feedBuffer struct {
	data []byte
	off  int
}

func (b *feedBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *feedBuffer) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}
