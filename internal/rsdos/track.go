package rsdos

import (
	"sort"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
)

// track.go is the incremental core of the RSDoS curation: a Tracker
// consumes qualifying window observations in window order and finalizes
// attack records as soon as the window watermark guarantees they can no
// longer be extended. Infer is a thin batch wrapper (sort, feed, finish);
// the streaming pipeline (internal/stream) drives the same Tracker
// window-by-window, so the two paths cannot diverge semantically.

// candidate is one open (still extendable) attack.
type candidate struct {
	atk        Attack
	ports      map[uint16]int64
	protoCount map[packet.Protocol]int64
}

// Tracker incrementally curates WindowObs into attack records.
//
// Observations must arrive in non-decreasing window order per victim
// (global window order satisfies this); the PacketAggregator/Windower
// output and Infer's sort both do. Finalized attacks carry ID 0 — feed
// positions are a whole-feed property the caller assigns (Infer numbers
// its sorted feed; the streaming pipeline numbers in emission order).
type Tracker struct {
	cfg  Config
	open map[netx.Addr]*candidate
	// pending holds attacks finalized by a same-victim successor window
	// (gap exceeded) between Advance calls.
	pending []Attack
}

// NewTracker returns an empty tracker with the given curation thresholds.
func NewTracker(cfg Config) *Tracker {
	return &Tracker{cfg: cfg, open: make(map[netx.Addr]*candidate)}
}

// Qualifies reports whether a window observation counts as attack
// evidence under the thresholds.
func (tr *Tracker) Qualifies(o *WindowObs) bool {
	return o.Packets >= tr.cfg.MinPackets && o.Slash16 >= tr.cfg.MinSlash16
}

// Observe folds one closed window's observation. Non-qualifying
// observations are ignored (gaps are judged by window distance, not by
// the presence of sub-threshold windows, exactly as in the batch path).
func (tr *Tracker) Observe(o WindowObs) {
	if !tr.Qualifies(&o) {
		return
	}
	cur := tr.open[o.Victim]
	if cur != nil && int64(o.Window-cur.atk.EndWindow) > int64(tr.cfg.MaxGapWindows)+1 {
		tr.finalize(cur)
		delete(tr.open, o.Victim)
		cur = nil
	}
	if cur == nil {
		cur = &candidate{
			atk: Attack{
				Victim:      o.Victim,
				StartWindow: o.Window,
				EndWindow:   o.Window,
				FirstPort:   firstPort(&o),
			},
			ports:      make(map[uint16]int64),
			protoCount: make(map[packet.Protocol]int64),
		}
		tr.open[o.Victim] = cur
	}
	cur.atk.EndWindow = o.Window
	cur.atk.TotalPackets += o.Packets
	if o.PeakPPM > cur.atk.PeakPPM {
		cur.atk.PeakPPM = o.PeakPPM
	}
	if o.Slash16 > cur.atk.MaxSlash16 {
		cur.atk.MaxSlash16 = o.Slash16
	}
	if o.UniqueDsts > cur.atk.UniqueDsts {
		cur.atk.UniqueDsts = o.UniqueDsts
	}
	cur.protoCount[o.Proto] += o.Packets
	for p, c := range o.Ports {
		cur.ports[p] += c
	}
}

// finalize curates one candidate into pending (dropped when it never
// reached the whole-attack packet floor).
func (tr *Tracker) finalize(c *candidate) {
	if c.atk.TotalPackets < tr.cfg.MinTotalPackets {
		return
	}
	finishAttack(&c.atk, c.ports, c.protoCount)
	tr.pending = append(tr.pending, c.atk)
}

// Advance finalizes every candidate that no window after `closed` can
// extend — all windows up to and including `closed` must be final (the
// caller's watermark guarantees this). It returns the attacks finalized
// since the previous Advance, sorted by (StartWindow, Victim) within the
// batch, IDs unassigned.
func (tr *Tracker) Advance(closed clock.Window) []Attack {
	for v, c := range tr.open {
		// the nearest window that could still merge is
		// EndWindow + MaxGapWindows + 1; once that is closed, no future
		// window can extend the candidate
		if closed >= c.atk.EndWindow+clock.Window(tr.cfg.MaxGapWindows)+1 {
			tr.finalize(c)
			delete(tr.open, v)
		}
	}
	return tr.drain()
}

// Finish finalizes every remaining candidate (end of stream) and returns
// them like Advance does.
func (tr *Tracker) Finish() []Attack {
	for v, c := range tr.open {
		tr.finalize(c)
		delete(tr.open, v)
	}
	return tr.drain()
}

// Open returns the number of open attack candidates.
func (tr *Tracker) Open() int { return len(tr.open) }

// drain returns the pending batch sorted by (StartWindow, Victim) —
// the same ordering Infer's global sort applies, so each batch is a
// contiguous, correctly ordered run of the eventual feed.
func (tr *Tracker) drain() []Attack {
	out := tr.pending
	tr.pending = nil
	sortAttacks(out)
	return out
}

// sortAttacks orders a feed by (StartWindow, Victim) — the feed order.
// Per victim, attack spans are disjoint, so the key is unique.
func sortAttacks(attacks []Attack) {
	sort.Slice(attacks, func(i, j int) bool {
		if attacks[i].StartWindow != attacks[j].StartWindow {
			return attacks[i].StartWindow < attacks[j].StartWindow
		}
		return attacks[i].Victim < attacks[j].Victim
	})
}
