package rsdos

import (
	"sort"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/telescope"
)

// PacketAggregator builds WindowObs from individual backscatter packets
// captured by the telescope — the packet-level front-end of the inference,
// used for case studies and tests. The flow-level longitudinal generator
// (internal/scenario) synthesizes WindowObs directly.
//
// Packet-to-attack attribution follows the backscatter method: the *source*
// of a captured packet is the inferred victim; the backscatter type implies
// the attacked protocol; the backscatter source port (or the quoted port in
// an ICMP error) implies the attacked port.
type PacketAggregator struct {
	t   *telescope.Telescope
	cur map[netx.Addr]*windowState
	// curWindow is the window being accumulated; packets are expected in
	// roughly time order and a new window flushes the previous one.
	curWindow clock.Window
	started   bool
	done      []WindowObs
}

type windowState struct {
	packets      int64
	minuteCounts [5]int64
	slash16      map[int]struct{}
	dsts         map[netx.Addr]struct{}
	protoPkts    map[packet.Protocol]int64
	ports        map[uint16]int64
}

// NewPacketAggregator returns an aggregator for the given telescope.
func NewPacketAggregator(t *telescope.Telescope) *PacketAggregator {
	return &PacketAggregator{t: t, cur: make(map[netx.Addr]*windowState)}
}

// Add folds one captured packet. Packets must arrive in non-decreasing
// window order (packet order within a window is free); the telescope replay
// and simulators satisfy this.
func (pa *PacketAggregator) Add(ts time.Time, p packet.Packet) {
	w := clock.WindowOf(ts)
	if !pa.started {
		pa.curWindow, pa.started = w, true
	}
	if w != pa.curWindow {
		pa.flush()
		pa.curWindow = w
	}
	victim := p.IP.Src
	st := pa.cur[victim]
	if st == nil {
		st = &windowState{
			slash16:   make(map[int]struct{}),
			dsts:      make(map[netx.Addr]struct{}),
			protoPkts: make(map[packet.Protocol]int64),
			ports:     make(map[uint16]int64),
		}
		pa.cur[victim] = st
	}
	st.packets++
	minute := int(ts.Sub(w.Start()) / time.Minute)
	if minute < 0 {
		minute = 0
	}
	if minute > 4 {
		minute = 4
	}
	st.minuteCounts[minute]++
	if idx := pa.t.Slash16Index(p.IP.Dst); idx >= 0 {
		st.slash16[idx] = struct{}{}
	}
	st.dsts[p.IP.Dst] = struct{}{}

	proto, port, hasPort := classifyBackscatter(p)
	st.protoPkts[proto]++
	if hasPort {
		st.ports[port]++
	}
}

// classifyBackscatter maps a backscatter packet to the protocol and port of
// the attack that elicited it.
func classifyBackscatter(p packet.Packet) (packet.Protocol, uint16, bool) {
	switch {
	case p.TCP != nil:
		// SYN-ACK or RST from the victim: TCP attack on the packet's
		// source port.
		return packet.ProtoTCP, p.TCP.SrcPort, true
	case p.ICMP != nil:
		switch p.ICMP.Type {
		case packet.ICMPDestUnreachable:
			// quoted original datagram: UDP attack
			return packet.ProtoUDP, uint16(p.ICMP.Rest), p.ICMP.Rest != 0
		case packet.ICMPEchoReply:
			return packet.ProtoICMP, 0, false
		default:
			return packet.ProtoICMP, 0, false
		}
	case p.UDP != nil:
		// service reply: UDP attack on the reply's source port
		return packet.ProtoUDP, p.UDP.SrcPort, true
	default:
		return p.IP.Protocol, 0, false
	}
}

func (pa *PacketAggregator) flush() {
	victims := make([]netx.Addr, 0, len(pa.cur))
	for v := range pa.cur {
		victims = append(victims, v)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, v := range victims {
		st := pa.cur[v]
		obs := WindowObs{
			Window:     pa.curWindow,
			Victim:     v,
			Packets:    st.packets,
			Slash16:    len(st.slash16),
			UniqueDsts: int64(len(st.dsts)),
			Ports:      st.ports,
		}
		for _, c := range st.minuteCounts {
			if float64(c) > obs.PeakPPM {
				obs.PeakPPM = float64(c)
			}
		}
		var bestN int64 = -1
		for proto, n := range st.protoPkts {
			if n > bestN || (n == bestN && proto < obs.Proto) {
				obs.Proto, bestN = proto, n
			}
		}
		pa.done = append(pa.done, obs)
	}
	pa.cur = make(map[netx.Addr]*windowState)
}

// Finish flushes the trailing window and returns all observations in
// window order.
func (pa *PacketAggregator) Finish() []WindowObs {
	if pa.started {
		pa.flush()
		pa.started = false
	}
	out := pa.done
	pa.done = nil
	return out
}
