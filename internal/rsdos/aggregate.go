package rsdos

import (
	"sort"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/telescope"
)

// windowState accumulates one victim's backscatter inside one window.
type windowState struct {
	packets      int64
	minuteCounts [5]int64
	slash16      map[int]struct{}
	dsts         map[netx.Addr]struct{}
	protoPkts    map[packet.Protocol]int64
	ports        map[uint16]int64
}

func newWindowState() *windowState {
	return &windowState{
		slash16:   make(map[int]struct{}),
		dsts:      make(map[netx.Addr]struct{}),
		protoPkts: make(map[packet.Protocol]int64),
		ports:     make(map[uint16]int64),
	}
}

// fold adds one captured packet to the state. w must be the window
// containing ts.
func (st *windowState) fold(t *telescope.Telescope, ts time.Time, p packet.Packet, w clock.Window) {
	st.packets++
	minute := int(ts.Sub(w.Start()) / time.Minute)
	if minute < 0 {
		minute = 0
	}
	if minute > 4 {
		minute = 4
	}
	st.minuteCounts[minute]++
	if idx := t.Slash16Index(p.IP.Dst); idx >= 0 {
		st.slash16[idx] = struct{}{}
	}
	st.dsts[p.IP.Dst] = struct{}{}

	proto, port, hasPort := classifyBackscatter(p)
	st.protoPkts[proto]++
	if hasPort {
		st.ports[port]++
	}
}

// obs freezes the state into the window's observation record.
func (st *windowState) obs(w clock.Window, v netx.Addr) WindowObs {
	o := WindowObs{
		Window:     w,
		Victim:     v,
		Packets:    st.packets,
		Slash16:    len(st.slash16),
		UniqueDsts: int64(len(st.dsts)),
		Ports:      st.ports,
	}
	for _, c := range st.minuteCounts {
		if float64(c) > o.PeakPPM {
			o.PeakPPM = float64(c)
		}
	}
	var bestN int64 = -1
	for proto, n := range st.protoPkts {
		if n > bestN || (n == bestN && proto < o.Proto) {
			o.Proto, bestN = proto, n
		}
	}
	return o
}

// classifyBackscatter maps a backscatter packet to the protocol and port of
// the attack that elicited it.
func classifyBackscatter(p packet.Packet) (packet.Protocol, uint16, bool) {
	switch {
	case p.TCP != nil:
		// SYN-ACK or RST from the victim: TCP attack on the packet's
		// source port.
		return packet.ProtoTCP, p.TCP.SrcPort, true
	case p.ICMP != nil:
		switch p.ICMP.Type {
		case packet.ICMPDestUnreachable:
			// quoted original datagram: UDP attack
			return packet.ProtoUDP, uint16(p.ICMP.Rest), p.ICMP.Rest != 0
		case packet.ICMPEchoReply:
			return packet.ProtoICMP, 0, false
		default:
			return packet.ProtoICMP, 0, false
		}
	case p.UDP != nil:
		// service reply: UDP attack on the reply's source port
		return packet.ProtoUDP, p.UDP.SrcPort, true
	default:
		return p.IP.Protocol, 0, false
	}
}

// Windower is the watermark-driven window builder shared by the batch
// PacketAggregator (lateness 0) and the streaming pipeline
// (internal/stream): it aggregates packets into per-victim window states,
// keeps every window at or above the watermark open, and closes windows
// as the watermark passes them.
//
// The watermark is the maximum window seen so far minus the lateness
// allowance: a window closes — its observations become final — once a
// packet arrives `lateness+1` or more windows after it. Packets for
// already-closed windows are dropped and counted (LateDrops) instead of
// reopening the window; reprocessing a closed window would emit duplicate
// out-of-order observations downstream, which is exactly the aggregator
// bug this design replaces.
type Windower struct {
	t        *telescope.Telescope
	lateness clock.Window
	// open holds the accumulating per-victim states of every window in
	// [watermark, maxSeen]. Windows with no packets are never
	// materialized.
	open      map[clock.Window]map[netx.Addr]*windowState
	maxSeen   clock.Window
	started   bool
	lateDrops int64
}

// NewWindower builds a windower over the telescope with the given
// lateness allowance (in windows; 0 = a window closes as soon as a later
// window is seen, the historical PacketAggregator behaviour).
func NewWindower(t *telescope.Telescope, lateness int) *Windower {
	if lateness < 0 {
		lateness = 0
	}
	return &Windower{
		t:        t,
		lateness: clock.Window(lateness),
		open:     make(map[clock.Window]map[netx.Addr]*windowState),
	}
}

// Add folds one captured packet and reports whether it was accepted. A
// packet whose window is already below the watermark is dropped (counted
// in LateDrops) and leaves all state unchanged.
func (wd *Windower) Add(ts time.Time, p packet.Packet) bool {
	w := clock.WindowOf(ts)
	if !wd.started {
		wd.maxSeen, wd.started = w, true
	}
	if wm, ok := wd.Watermark(); ok && w < wm {
		wd.lateDrops++
		return false
	}
	if w > wd.maxSeen {
		wd.maxSeen = w
	}
	victims := wd.open[w]
	if victims == nil {
		victims = make(map[netx.Addr]*windowState)
		wd.open[w] = victims
	}
	st := victims[p.IP.Src]
	if st == nil {
		st = newWindowState()
		victims[p.IP.Src] = st
	}
	st.fold(wd.t, ts, p, w)
	return true
}

// Watermark returns the completeness frontier: every window strictly
// below it is closed (or closable), and a packet for such a window is
// late. False until the first packet arrives.
func (wd *Windower) Watermark() (clock.Window, bool) {
	return wd.maxSeen - wd.lateness, wd.started
}

// MaxSeen returns the highest window observed so far (false before the
// first packet).
func (wd *Windower) MaxSeen() (clock.Window, bool) { return wd.maxSeen, wd.started }

// Backlog returns the number of open (non-empty, not yet closed) windows.
func (wd *Windower) Backlog() int { return len(wd.open) }

// LateDrops returns how many packets were dropped for arriving after
// their window closed.
func (wd *Windower) LateDrops() int64 { return wd.lateDrops }

// CloseReady closes every open window strictly below the watermark and
// returns their observations, ordered by (window, victim). Call after
// every Add (or batch of Adds) to drain finished windows.
func (wd *Windower) CloseReady() []WindowObs {
	wm, ok := wd.Watermark()
	if !ok {
		return nil
	}
	return wd.closeBelow(wm)
}

// CloseAll closes every remaining window (end of stream), returning their
// observations ordered by (window, victim). The windower is reset for a
// fresh stream afterwards (the cumulative LateDrops count is kept).
func (wd *Windower) CloseAll() []WindowObs {
	if !wd.started {
		return nil
	}
	out := wd.closeBelow(wd.maxSeen + 1)
	wd.started = false
	return out
}

// closeBelow closes all open windows < limit in window order.
func (wd *Windower) closeBelow(limit clock.Window) []WindowObs {
	if len(wd.open) == 0 {
		return nil
	}
	wins := make([]clock.Window, 0, len(wd.open))
	for w := range wd.open {
		if w < limit {
			wins = append(wins, w)
		}
	}
	if len(wins) == 0 {
		return nil
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	var out []WindowObs
	for _, w := range wins {
		victims := wd.open[w]
		vs := make([]netx.Addr, 0, len(victims))
		for v := range victims {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		for _, v := range vs {
			out = append(out, victims[v].obs(w, v))
		}
		delete(wd.open, w)
	}
	return out
}

// PacketAggregator builds WindowObs from individual backscatter packets
// captured by the telescope — the packet-level front-end of the inference,
// used for case studies and tests. The flow-level longitudinal generator
// (internal/scenario) synthesizes WindowObs directly.
//
// Packet-to-attack attribution follows the backscatter method: the *source*
// of a captured packet is the inferred victim; the backscatter type implies
// the attacked protocol; the backscatter source port (or the quoted port in
// an ICMP error) implies the attacked port.
//
// It is the zero-lateness batch face of Windower: a window closes as soon
// as a later window is seen, and a late packet (one for an already-closed
// window) is dropped and counted in LateDrops rather than regressing the
// live window — the historical behaviour of flushing on *any* window
// change emitted duplicate out-of-order observations for the flushed
// window, which double-counted attacks downstream.
type PacketAggregator struct {
	win  *Windower
	done []WindowObs
}

// NewPacketAggregator returns an aggregator for the given telescope.
func NewPacketAggregator(t *telescope.Telescope) *PacketAggregator {
	return &PacketAggregator{win: NewWindower(t, 0)}
}

// Add folds one captured packet and reports whether it was accepted.
// Packets are expected in non-decreasing window order (packet order within
// a window is free); a packet for a window older than the newest one seen
// is dropped and counted in LateDrops.
func (pa *PacketAggregator) Add(ts time.Time, p packet.Packet) bool {
	ok := pa.win.Add(ts, p)
	if obs := pa.win.CloseReady(); len(obs) > 0 {
		pa.done = append(pa.done, obs...)
	}
	return ok
}

// LateDrops returns how many packets were dropped for arriving after
// their window was flushed.
func (pa *PacketAggregator) LateDrops() int64 { return pa.win.LateDrops() }

// Finish flushes the trailing window and returns all observations in
// strictly non-decreasing window order (victims sorted within a window).
func (pa *PacketAggregator) Finish() []WindowObs {
	out := append(pa.done, pa.win.CloseAll()...)
	pa.done = nil
	return out
}
