package rsdos

import (
	"bytes"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
)

func obs(victim string, w clock.Window, packets int64, slash16 int, port uint16) WindowObs {
	o := WindowObs{
		Window:  w,
		Victim:  netx.MustParseAddr(victim),
		Packets: packets,
		PeakPPM: float64(packets) / 5,
		Slash16: slash16,
		Proto:   packet.ProtoTCP,
	}
	if port != 0 {
		o.Ports = map[uint16]int64{port: packets}
	}
	o.UniqueDsts = packets
	return o
}

func TestInferSingleAttack(t *testing.T) {
	cfg := DefaultConfig()
	attacks := Infer(cfg, []WindowObs{
		obs("192.0.2.1", 10, 100, 50, 53),
		obs("192.0.2.1", 11, 150, 60, 53),
		obs("192.0.2.1", 12, 120, 55, 53),
	})
	if len(attacks) != 1 {
		t.Fatalf("inferred %d attacks, want 1", len(attacks))
	}
	a := attacks[0]
	if a.StartWindow != 10 || a.EndWindow != 12 {
		t.Errorf("windows = %d..%d", a.StartWindow, a.EndWindow)
	}
	if a.TotalPackets != 370 {
		t.Errorf("total packets = %d", a.TotalPackets)
	}
	if a.PeakPPM != 30 {
		t.Errorf("peak ppm = %v", a.PeakPPM)
	}
	if a.MaxSlash16 != 60 {
		t.Errorf("max /16 = %d", a.MaxSlash16)
	}
	if a.FirstPort != 53 || a.UniquePorts != 1 {
		t.Errorf("ports = %d (%d unique)", a.FirstPort, a.UniquePorts)
	}
	if a.Duration() != 15*time.Minute {
		t.Errorf("duration = %v", a.Duration())
	}
	if a.Proto != packet.ProtoTCP {
		t.Errorf("proto = %v", a.Proto)
	}
}

func TestInferThresholds(t *testing.T) {
	cfg := DefaultConfig()
	// too few packets
	if got := Infer(cfg, []WindowObs{obs("192.0.2.1", 0, cfg.MinPackets-1, 50, 53)}); len(got) != 0 {
		t.Errorf("below MinPackets inferred %d attacks", len(got))
	}
	// too little spread: scanners, not spoofed floods
	if got := Infer(cfg, []WindowObs{obs("192.0.2.1", 0, 100, cfg.MinSlash16-1, 53)}); len(got) != 0 {
		t.Errorf("below MinSlash16 inferred %d attacks", len(got))
	}
	// exactly at thresholds qualifies
	if got := Infer(cfg, []WindowObs{obs("192.0.2.1", 0, cfg.MinPackets, cfg.MinSlash16, 53)}); len(got) != 1 {
		t.Errorf("at thresholds inferred %d attacks", len(got))
	}
}

func TestInferGapMerging(t *testing.T) {
	cfg := DefaultConfig() // MaxGapWindows = 2
	// windows 0 and 3: gap of 2 empty windows → one attack
	one := Infer(cfg, []WindowObs{
		obs("192.0.2.1", 0, 100, 50, 53),
		obs("192.0.2.1", 3, 100, 50, 53),
	})
	if len(one) != 1 || one[0].EndWindow != 3 {
		t.Errorf("gap of 2 should merge: %+v", one)
	}
	// windows 0 and 4: gap of 3 → two attacks
	two := Infer(cfg, []WindowObs{
		obs("192.0.2.1", 0, 100, 50, 53),
		obs("192.0.2.1", 4, 100, 50, 53),
	})
	if len(two) != 2 {
		t.Errorf("gap of 3 should split: %d attacks", len(two))
	}
}

func TestInferSeparatesVictims(t *testing.T) {
	attacks := Infer(DefaultConfig(), []WindowObs{
		obs("192.0.2.1", 0, 100, 50, 53),
		obs("192.0.2.2", 0, 100, 50, 80),
	})
	if len(attacks) != 2 {
		t.Fatalf("attacks = %d", len(attacks))
	}
	// sorted by window then victim; IDs assigned sequentially
	if attacks[0].ID != 1 || attacks[1].ID != 2 {
		t.Errorf("IDs = %d,%d", attacks[0].ID, attacks[1].ID)
	}
	if attacks[0].Victim >= attacks[1].Victim {
		t.Error("not sorted by victim")
	}
}

func TestInferMultiPort(t *testing.T) {
	o1 := obs("192.0.2.1", 0, 100, 50, 0)
	o1.Ports = map[uint16]int64{80: 60, 443: 40}
	o2 := obs("192.0.2.1", 1, 100, 50, 0)
	o2.Ports = map[uint16]int64{53: 100}
	attacks := Infer(DefaultConfig(), []WindowObs{o1, o2})
	if len(attacks) != 1 {
		t.Fatalf("attacks = %d", len(attacks))
	}
	if attacks[0].UniquePorts != 3 {
		t.Errorf("unique ports = %d, want 3", attacks[0].UniquePorts)
	}
	// first port: dominant port of the first window
	if attacks[0].FirstPort != 80 {
		t.Errorf("first port = %d, want 80", attacks[0].FirstPort)
	}
}

func TestInferDominantProto(t *testing.T) {
	o1 := obs("192.0.2.1", 0, 30, 50, 53)
	o1.Proto = packet.ProtoUDP
	o2 := obs("192.0.2.1", 1, 300, 50, 53)
	o2.Proto = packet.ProtoTCP
	attacks := Infer(DefaultConfig(), []WindowObs{o1, o2})
	if len(attacks) != 1 || attacks[0].Proto != packet.ProtoTCP {
		t.Errorf("dominant proto = %v", attacks[0].Proto)
	}
}

func TestInferUnorderedInput(t *testing.T) {
	attacks := Infer(DefaultConfig(), []WindowObs{
		obs("192.0.2.1", 12, 100, 50, 53),
		obs("192.0.2.1", 10, 100, 50, 53),
		obs("192.0.2.1", 11, 100, 50, 53),
	})
	if len(attacks) != 1 || attacks[0].StartWindow != 10 || attacks[0].EndWindow != 12 {
		t.Errorf("unordered input mishandled: %+v", attacks)
	}
}

func TestInferredExtrapolations(t *testing.T) {
	a := Attack{PeakPPM: 21800, UniqueDsts: 17000}
	// Table 2 footnote: 21.8 kppm × 341 / 60 ≈ 124 kpps
	pps := a.InferredVictimPPS(341)
	if pps < 123000 || pps > 125000 {
		t.Errorf("inferred pps = %v", pps)
	}
	ips := a.InferredAttackerIPs(341)
	if ips != 17000*341 {
		t.Errorf("inferred attacker IPs = %d", ips)
	}
	gbps := a.InferredGbps(341, 1400)
	if gbps < 1.35 || gbps > 1.45 {
		t.Errorf("inferred Gbps = %v", gbps)
	}
}

func TestAttackOverlaps(t *testing.T) {
	a := Attack{StartWindow: 10, EndWindow: 12}
	if !a.Overlaps(a.Start(), a.End()) {
		t.Error("attack overlaps its own interval")
	}
	if a.Overlaps(a.End(), a.End().Add(time.Hour)) {
		t.Error("exclusive end should not overlap")
	}
	if !a.Overlaps(a.Start().Add(-time.Hour), a.Start().Add(time.Nanosecond)) {
		t.Error("touching the start should overlap")
	}
}

func TestFeedRoundTrip(t *testing.T) {
	attacks := Infer(DefaultConfig(), []WindowObs{
		obs("192.0.2.1", 10, 100, 50, 53),
		obs("198.51.100.7", 20, 400, 80, 80),
	})
	var buf bytes.Buffer
	if err := WriteFeed(&buf, attacks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFeed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(attacks) {
		t.Fatalf("round trip %d != %d", len(got), len(attacks))
	}
	for i := range got {
		g, w := got[i], attacks[i]
		if g.ID != w.ID || g.Victim != w.Victim || g.StartWindow != w.StartWindow ||
			g.EndWindow != w.EndWindow || g.Proto != w.Proto || g.FirstPort != w.FirstPort ||
			g.UniquePorts != w.UniquePorts || g.TotalPackets != w.TotalPackets ||
			g.PeakPPM != w.PeakPPM || g.MaxSlash16 != w.MaxSlash16 || g.UniqueDsts != w.UniqueDsts {
			t.Errorf("attack %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func TestReadFeedRejectsGarbage(t *testing.T) {
	if _, err := ReadFeed(bytes.NewReader(nil)); err == nil {
		t.Error("empty feed should error")
	}
	bad := "id,victim,start,end,proto,first_port,unique_ports,total_packets,peak_ppm,max_slash16,unique_dsts\nx,y,z,w,v,u,t,s,r,q,p\n"
	if _, err := ReadFeed(bytes.NewReader([]byte(bad))); err == nil {
		t.Error("garbage row should error")
	}
}
