package openres

import (
	"testing"

	"dnsddos/internal/netx"
)

func TestWellKnownContainsPublicResolvers(t *testing.T) {
	l := WellKnown()
	for _, ip := range []string{"8.8.8.8", "8.8.4.4", "1.1.1.1", "9.9.9.9"} {
		if !l.Contains(netx.MustParseAddr(ip)) {
			t.Errorf("WellKnown should contain %s", ip)
		}
	}
	if l.Contains(netx.MustParseAddr("192.0.2.1")) {
		t.Error("arbitrary address should not be listed")
	}
}

func TestAdd(t *testing.T) {
	l := New()
	a := netx.MustParseAddr("203.0.113.53")
	if l.Contains(a) {
		t.Error("new list should be empty")
	}
	l.Add(a)
	if !l.Contains(a) {
		t.Error("added address should be contained")
	}
	if l.Len() != 1 {
		t.Errorf("Len = %d", l.Len())
	}
}
