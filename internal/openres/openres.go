// Package openres carries the open-resolver address list (the stand-in for
// the Yazdani et al. scans, §3.3). The paper uses it to filter attacks on
// public-resolver IPs (8.8.8.8, 8.8.4.4, 1.1.1.1, …) that appear in the
// authoritative join only because misconfigured domains point NS records at
// them (§6.1, Table 5).
package openres

import "dnsddos/internal/netx"

// List is a set of known open-resolver IPv4 addresses.
type List struct {
	addrs map[netx.Addr]struct{}
}

// New builds a list from addresses.
func New(addrs ...netx.Addr) *List {
	l := &List{addrs: make(map[netx.Addr]struct{}, len(addrs))}
	for _, a := range addrs {
		l.addrs[a] = struct{}{}
	}
	return l
}

// WellKnown returns the public-resolver addresses named in the paper's
// Table 5 analysis.
func WellKnown() *List {
	return New(
		netx.MustParseAddr("8.8.8.8"),
		netx.MustParseAddr("8.8.4.4"),
		netx.MustParseAddr("1.1.1.1"),
		netx.MustParseAddr("1.0.0.1"),
		netx.MustParseAddr("9.9.9.9"),
		netx.MustParseAddr("208.67.222.222"),
	)
}

// Add inserts an address.
func (l *List) Add(a netx.Addr) { l.addrs[a] = struct{}{} }

// Contains reports whether a is a known open resolver.
func (l *List) Contains(a netx.Addr) bool {
	_, ok := l.addrs[a]
	return ok
}

// Len returns the number of listed resolvers.
func (l *List) Len() int { return len(l.addrs) }
