package telescope

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
)

func TestUCSDFootprint(t *testing.T) {
	tel := NewUCSD()
	if scale := tel.ScaleFactor(); scale < 341 || scale > 342 {
		t.Errorf("scale factor = %.2f, want ≈341.3 (Table 2)", scale)
	}
	// /9 holds 128 /16s, /10 holds 64 → 192
	if got := tel.NumSlash16(); got != 192 {
		t.Errorf("NumSlash16 = %d, want 192", got)
	}
	if !tel.Contains(netx.MustParseAddr("44.0.0.1")) || !tel.Contains(netx.MustParseAddr("44.191.255.255")) {
		t.Error("darknet membership")
	}
	if tel.Contains(netx.MustParseAddr("44.192.0.0")) {
		t.Error("outside the /9+/10")
	}
}

func TestRandomAddrInDarknet(t *testing.T) {
	tel := NewUCSD()
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 5000; i++ {
		if a := tel.RandomAddr(rng); !tel.Contains(a) {
			t.Fatalf("RandomAddr %v outside darknet", a)
		}
	}
}

func TestSlash16Index(t *testing.T) {
	tel := NewUCSD()
	a := netx.MustParseAddr("44.5.1.2")
	b := netx.MustParseAddr("44.5.200.9") // same /16
	c := netx.MustParseAddr("44.6.0.1")   // different /16
	ia, ib, ic := tel.Slash16Index(a), tel.Slash16Index(b), tel.Slash16Index(c)
	if ia < 0 || ia != ib {
		t.Errorf("same-/16 addresses index %d vs %d", ia, ib)
	}
	if ic == ia || ic < 0 {
		t.Errorf("different /16 index %d vs %d", ic, ia)
	}
	if tel.Slash16Index(netx.MustParseAddr("8.8.8.8")) != -1 {
		t.Error("outside darknet should be -1")
	}
}

func TestCaptureFilters(t *testing.T) {
	tel := NewUCSD()
	var seen int
	cap := NewCapture(tel, nil, func(time.Time, packet.Packet) { seen++ })
	in := packet.Packet{IP: packet.IPv4Header{Protocol: packet.ProtoTCP, Src: 1, Dst: netx.MustParseAddr("44.1.1.1")},
		TCP: &packet.TCPHeader{Flags: packet.FlagRST}}
	out := packet.Packet{IP: packet.IPv4Header{Protocol: packet.ProtoTCP, Src: 1, Dst: netx.MustParseAddr("9.9.9.9")},
		TCP: &packet.TCPHeader{Flags: packet.FlagRST}}
	if ok, _ := cap.Offer(time.Now(), in); !ok {
		t.Error("darknet-destined packet should be captured")
	}
	if ok, _ := cap.Offer(time.Now(), out); ok {
		t.Error("outside packet should be ignored")
	}
	if cap.Captured() != 1 || seen != 1 {
		t.Errorf("captured=%d seen=%d", cap.Captured(), seen)
	}
}

func TestThinSampleMatchesFraction(t *testing.T) {
	tel := NewUCSD()
	rng := rand.New(rand.NewPCG(2, 2))
	const n = int64(1_000_000)
	var total int64
	const trials = 50
	for i := 0; i < trials; i++ {
		total += tel.ThinSample(rng, n)
	}
	mean := float64(total) / trials
	want := float64(n) * tel.Fraction()
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("thin sample mean = %.0f, want ≈%.0f", mean, want)
	}
}

func TestExpectedSlash16Spread(t *testing.T) {
	tel := NewUCSD()
	if got := tel.ExpectedSlash16Spread(0); got != 0 {
		t.Errorf("spread(0) = %d", got)
	}
	if got := tel.ExpectedSlash16Spread(1); got != 1 {
		t.Errorf("spread(1) = %d", got)
	}
	// large packet counts cover all 192 /16s
	if got := tel.ExpectedSlash16Spread(100000); got != 192 {
		t.Errorf("spread(100k) = %d, want 192", got)
	}
	// monotone non-decreasing
	prev := 0
	for _, k := range []int64{1, 5, 20, 50, 100, 500, 5000} {
		got := tel.ExpectedSlash16Spread(k)
		if got < prev {
			t.Errorf("spread not monotone at %d: %d < %d", k, got, prev)
		}
		prev = got
	}
}

// TestExpectedSpreadMatchesSimulation cross-checks the coupon-collector
// formula against empirical uniform placement.
func TestExpectedSpreadMatchesSimulation(t *testing.T) {
	tel := NewUCSD()
	rng := rand.New(rand.NewPCG(3, 3))
	for _, k := range []int64{10, 60, 250} {
		const trials = 200
		var total int
		for tr := 0; tr < trials; tr++ {
			seen := map[int]struct{}{}
			for i := int64(0); i < k; i++ {
				seen[tel.Slash16Index(tel.RandomAddr(rng))] = struct{}{}
			}
			total += len(seen)
		}
		empirical := float64(total) / trials
		formula := float64(tel.ExpectedSlash16Spread(k))
		if math.Abs(empirical-formula) > 0.08*empirical+1.5 {
			t.Errorf("k=%d: formula %.1f vs empirical %.1f", k, formula, empirical)
		}
	}
}

func TestNewFromLargeBlocksCoversSlash16s(t *testing.T) {
	// a /14 spans 4 /16s
	tel := New(netx.MustNewPrefixSet(netx.MustParsePrefix("100.64.0.0/14")))
	if got := tel.NumSlash16(); got != 4 {
		t.Errorf("NumSlash16 = %d, want 4", got)
	}
	// /24-granularity space maps into one /16
	tel2 := New(netx.MustNewPrefixSet(netx.MustParsePrefix("100.64.0.0/24")))
	if got := tel2.NumSlash16(); got != 1 {
		t.Errorf("small block NumSlash16 = %d, want 1", got)
	}
}
