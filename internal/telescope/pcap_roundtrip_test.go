package telescope

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/backscatter"
	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/pcap"
)

// TestCapturePcapRoundTrip drives the full packet path — spoofed flood →
// victim backscatter → telescope capture → pcap file — then reads the file
// back and checks the records decode to the same packets.
func TestCapturePcapRoundTrip(t *testing.T) {
	tel := NewUCSD()
	var buf bytes.Buffer
	pw, err := pcap.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var captured []packet.Packet
	var times []time.Time
	cap := NewCapture(tel, pw, func(ts time.Time, p packet.Packet) {
		captured = append(captured, p)
		times = append(times, ts)
	})

	spec := attacksim.Spec{
		Target: netx.MustParseAddr("192.0.2.53"),
		Vector: attacksim.VectorRandomSpoofed,
		Proto:  packet.ProtoTCP,
		Ports:  []uint16{53},
		Start:  clock.StudyStart,
		End:    clock.StudyStart.Add(5 * time.Minute),
		PPS:    300,
	}
	victim := backscatter.DefaultNameserverVictim(false)
	rng := rand.New(rand.NewPCG(4, 4))
	spec.Flood(rng, 0, 1.0, func(ts time.Time, p packet.Packet) bool {
		if rt, resp, ok := victim.Respond(rng, ts, p); ok {
			if _, err := cap.Offer(rt, resp); err != nil {
				t.Fatal(err)
			}
		}
		return true
	})
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	if cap.Captured() == 0 {
		t.Fatal("nothing captured — expected ≈ pps×300×(1/341) ≈ 260 packets")
	}
	if int64(len(captured)) != cap.Captured() {
		t.Fatalf("observer saw %d, counter says %d", len(captured), cap.Captured())
	}

	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for {
		rec, err := r.ReadRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err := packet.Decode(rec.Data)
		if err != nil {
			t.Fatalf("record %d undecodable: %v", i, err)
		}
		want := captured[i]
		if got.IP.Src != want.IP.Src || got.IP.Dst != want.IP.Dst {
			t.Fatalf("record %d addressing mismatch", i)
		}
		if got.TCP == nil || !got.TCP.Flags.Has(packet.FlagSYN|packet.FlagACK) {
			t.Fatalf("record %d not a SYN-ACK: %+v", i, got.TCP)
		}
		if got.TCP.SrcPort != 53 {
			t.Fatalf("record %d backscatter source port = %d", i, got.TCP.SrcPort)
		}
		if !tel.Contains(got.IP.Dst) {
			t.Fatalf("record %d destination outside the darknet", i)
		}
		// microsecond pcap resolution
		if d := rec.Time.Sub(times[i].Truncate(time.Microsecond)); d < 0 || d > time.Microsecond {
			t.Fatalf("record %d timestamp drift %v", i, d)
		}
		i++
	}
	if int64(i) != cap.Captured() {
		t.Fatalf("pcap holds %d records, captured %d", i, cap.Captured())
	}
}
