// Package telescope implements the network-telescope (darknet) substrate:
// an unused, globally announced address block that passively captures
// Internet Background Radiation, including the backscatter of randomly
// spoofed DoS attacks (§3.1).
//
// The default instance mirrors the UCSD-NT footprint — a /9 plus a /10,
// together ≈1/341 of the IPv4 space, the interpolation constant the paper
// uses to extrapolate telescope packet rates to victim-side rates
// (Table 2 footnote: 21.8 kppm × 341 / 60 s ≈ 124 kpps).
package telescope

import (
	"math"
	"math/rand/v2"
	"time"

	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/pcap"
	"dnsddos/internal/stats"
)

// Telescope is a darknet address space.
type Telescope struct {
	space *netx.PrefixSet
	// slash16s caches the /16 blocks covered by the space, for the
	// /16-spread attack signal; slash16Idx inverts it for the per-packet
	// index lookup on the aggregation hot path.
	slash16s   []netx.Prefix
	slash16Idx map[netx.Prefix]int
}

// New builds a telescope over the given disjoint prefixes.
func New(space *netx.PrefixSet) *Telescope {
	t := &Telescope{space: space}
	seen := make(map[netx.Prefix]struct{})
	for _, p := range space.Prefixes() {
		if p.Bits >= 16 {
			k := p.Addr.Slash16()
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				t.slash16s = append(t.slash16s, k)
			}
			continue
		}
		for a := p.First(); ; a += 1 << 16 {
			t.slash16s = append(t.slash16s, a.Slash16())
			if a.Slash16().Last() >= p.Last() {
				break
			}
		}
	}
	t.slash16Idx = make(map[netx.Prefix]int, len(t.slash16s))
	for i, p := range t.slash16s {
		t.slash16Idx[p] = i
	}
	return t
}

// NewUCSD returns a telescope with the UCSD-NT-shaped footprint: a /9 and
// a /10 (we place them in 44.0.0.0/9 and 44.128.0.0/10).
func NewUCSD() *Telescope {
	return New(netx.MustNewPrefixSet(
		netx.MustParsePrefix("44.0.0.0/9"),
		netx.MustParsePrefix("44.128.0.0/10"),
	))
}

// Contains reports whether dst falls inside the darknet.
func (t *Telescope) Contains(dst netx.Addr) bool { return t.space.Contains(dst) }

// Fraction returns the share of IPv4 the telescope covers (≈1/341 for the
// UCSD footprint).
func (t *Telescope) Fraction() float64 { return t.space.Fraction() }

// ScaleFactor returns 1/Fraction(), the multiplier used to extrapolate
// telescope-observed counts to the full IPv4 space (≈341).
func (t *Telescope) ScaleFactor() float64 { return 1 / t.space.Fraction() }

// NumSlash16 returns the number of /16 blocks the telescope covers (192 for
// the UCSD footprint). The RSDoS inference uses the number of distinct /16s
// receiving backscatter as its noise filter.
func (t *Telescope) NumSlash16() int { return len(t.slash16s) }

// RandomAddr returns a uniformly random darknet address: the conditional
// distribution of a uniformly spoofed source given that it lands in the
// telescope. The thinned backscatter sampler uses it.
func (t *Telescope) RandomAddr(rng *rand.Rand) netx.Addr {
	n := rng.Uint64N(t.space.Size())
	for _, p := range t.space.Prefixes() {
		if n < p.Size() {
			return p.Nth(n)
		}
		n -= p.Size()
	}
	panic("telescope: unreachable")
}

// Slash16Index returns the index of the telescope /16 containing dst, or
// -1 when dst is outside the darknet. The observation builder uses it to
// count the /16 spread cheaply.
func (t *Telescope) Slash16Index(dst netx.Addr) int {
	if !t.space.Contains(dst) {
		return -1
	}
	if i, ok := t.slash16Idx[dst.Slash16()]; ok {
		return i
	}
	return -1
}

// Capture is a telescope packet sink: packets destined inside the darknet
// are recorded (optionally to a pcap writer) and handed to the observer.
type Capture struct {
	t        *Telescope
	pcap     *pcap.Writer
	observer func(ts time.Time, p packet.Packet)
	captured int64
	dropped  int64
}

// NewCapture builds a capture. pcapW and observer may each be nil.
func NewCapture(t *Telescope, pcapW *pcap.Writer, observer func(ts time.Time, p packet.Packet)) *Capture {
	return &Capture{t: t, pcap: pcapW, observer: observer}
}

// Offer presents a packet to the telescope; packets outside the darknet are
// ignored (they would have been routed elsewhere). It returns whether the
// packet was captured.
func (c *Capture) Offer(ts time.Time, p packet.Packet) (bool, error) {
	if !c.t.Contains(p.IP.Dst) {
		c.dropped++
		return false, nil
	}
	c.captured++
	if c.pcap != nil {
		if err := c.pcap.WriteRecord(pcap.Record{Time: ts, Data: p.Build()}); err != nil {
			return true, err
		}
	}
	if c.observer != nil {
		c.observer(ts, p)
	}
	return true, nil
}

// Captured returns the number of captured packets.
func (c *Capture) Captured() int64 { return c.captured }

// ThinSample draws how many of n victim responses land in the telescope
// (Binomial(n, fraction)) — the exact thinning of a uniformly spoofed
// process, used by the flow-level longitudinal generator instead of
// materializing every packet.
func (t *Telescope) ThinSample(rng *rand.Rand, n int64) int64 {
	return stats.Binomial(rng, n, t.Fraction())
}

// ExpectedSlash16Spread returns the expected number of distinct telescope
// /16s hit by k uniformly placed darknet packets (coupon-collector
// expectation), used by the flow-level generator to synthesize the spread
// signal without materializing addresses.
func (t *Telescope) ExpectedSlash16Spread(k int64) int {
	m := float64(t.NumSlash16())
	if k <= 0 {
		return 0
	}
	// E[distinct] = m(1 - (1 - 1/m)^k)
	e := m * (1 - pow1m(1/m, k))
	return int(e + 0.5)
}

// pow1m computes (1-x)^k stably for small x and large k.
func pow1m(x float64, k int64) float64 {
	if x <= 0 {
		return 1
	}
	if x >= 1 {
		return 0
	}
	return math.Exp(float64(k) * math.Log1p(-x))
}
