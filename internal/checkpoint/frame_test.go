package checkpoint

import (
	"strings"
	"testing"
)

type framePayload struct {
	Name  string
	Vals  []int64
	Notes map[string]string
}

func TestFrameRoundTrip(t *testing.T) {
	in := framePayload{
		Name:  "window-batch",
		Vals:  []int64{1, 2, 3, 1 << 40},
		Notes: map[string]string{"k": "v"},
	}
	b, err := EncodeFrame(&in)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	var out framePayload
	if err := DecodeFrame(b, &out); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if out.Name != in.Name || len(out.Vals) != len(in.Vals) || out.Notes["k"] != "v" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	b, err := EncodeFrame(&framePayload{Name: "x"})
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }, "truncated"},
		{"bitflip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(magic)+12] ^= 0x40
			return c
		}, "crc mismatch"},
		{"badmagic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		}, "not a checkpoint frame"},
		{"version", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(magic)+3]++
			return c
		}, "format version"},
		{"empty", func([]byte) []byte { return nil }, "truncated"},
	}
	for _, tc := range cases {
		var out framePayload
		err := DecodeFrame(tc.mut(b), &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestFramesConcatenate(t *testing.T) {
	// the spill file is frames laid end to end; each must decode from its
	// own recorded extent
	var file []byte
	type extent struct{ off, n int }
	var extents []extent
	for i := 0; i < 5; i++ {
		b, err := EncodeFrame(&framePayload{Name: "f", Vals: []int64{int64(i)}})
		if err != nil {
			t.Fatalf("EncodeFrame %d: %v", i, err)
		}
		extents = append(extents, extent{len(file), len(b)})
		file = append(file, b...)
	}
	for i, e := range extents {
		var out framePayload
		if err := DecodeFrame(file[e.off:e.off+e.n], &out); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(out.Vals) != 1 || out.Vals[0] != int64(i) {
			t.Fatalf("frame %d decoded %+v", i, out)
		}
	}
}
