// Package checkpoint persists completed day-shard measurement snapshots
// of a study run so a killed run can resume from the last durable day
// instead of day 0 (DESIGN §3.2). A checkpoint directory holds
//
//   - header.json — the run identity: format version, a hash of the full
//     study configuration, and the measurement seed. Resume refuses a
//     directory whose header does not match the current run, so stale
//     checkpoints can never be silently joined into a different study.
//   - day_NNNNNN.ckpt — one file per completed day: an 8-byte magic, the
//     format version, a length-prefixed gob payload (nsset.Snapshot) and
//     a CRC-32 trailer. Truncation, bit rot and version skew are all
//     detected and reported as errors, never decoded as garbage.
//
// Every file is written to a temporary name in the same directory,
// synced, and atomically renamed into place, so a crash mid-write leaves
// either the previous state or a complete new file — never a torn one.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"dnsddos/internal/clock"
	"dnsddos/internal/nsset"
)

// Version is the on-disk format version; bump on incompatible change.
const Version = 1

const headerName = "header.json"

var magic = []byte("DNSCKPT1")

// Header identifies the run a checkpoint directory belongs to.
type Header struct {
	Version    int    `json:"version"`
	ConfigHash string `json:"config_hash"`
	Seed       uint64 `json:"seed"`
}

// Dir is an open checkpoint directory.
type Dir struct {
	path string
	hdr  Header
}

// Create initializes path for a fresh run: leftovers from previous runs
// (day files and header) are removed and a new header is written
// atomically. The directory is created if needed.
func Create(path string, hdr Header) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", path, err)
	}
	// every record type shares the .ckpt suffix — day snapshots, stream
	// cursors, and named auxiliary records (distributed join ranges) are
	// all stale state of the previous run and must go
	old, err := filepath.Glob(filepath.Join(path, "*.ckpt"))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: scanning %s: %w", path, err)
	}
	old = append(old, filepath.Join(path, headerName))
	for _, f := range old {
		if err := os.Remove(f); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("checkpoint: clearing %s: %w", f, err)
		}
	}
	hdr.Version = Version
	b, err := json.MarshalIndent(hdr, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding header: %w", err)
	}
	if err := atomicWrite(path, headerName, b); err != nil {
		return nil, err
	}
	return &Dir{path: path, hdr: hdr}, nil
}

// Resume opens an existing checkpoint directory for the run identified
// by hdr (whose Version field is ignored; the library version applies).
// It refuses — with an error, not a fresh start — when the directory has
// no header or the header names a different configuration, version or
// seed: resuming against a mismatched configuration would join two
// different worlds' measurements.
func Resume(path string, hdr Header) (*Dir, error) {
	b, err := os.ReadFile(filepath.Join(path, headerName))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: no resumable run in %s: %w", path, err)
	}
	var got Header
	if err := json.Unmarshal(b, &got); err != nil {
		return nil, fmt.Errorf("checkpoint: corrupt header in %s: %w", path, err)
	}
	if got.Version != Version {
		return nil, fmt.Errorf("checkpoint: %s has format version %d, this build writes %d", path, got.Version, Version)
	}
	if got.ConfigHash != hdr.ConfigHash || got.Seed != hdr.Seed {
		return nil, fmt.Errorf("checkpoint: refusing to resume %s: checkpointed run has config hash %s seed %d, current run has %s seed %d",
			path, got.ConfigHash, got.Seed, hdr.ConfigHash, hdr.Seed)
	}
	hdr.Version = Version
	return &Dir{path: path, hdr: hdr}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

func dayFile(day clock.Day) string { return fmt.Sprintf("day_%06d.ckpt", int32(day)) }

// EncodeFrame gob-encodes v into the standard checkpoint envelope:
// magic, version, length-prefixed payload, CRC-32 trailer. The frame is
// self-delimiting, so callers may concatenate frames into one file (the
// stream backlog spill does) and decode them back with DecodeFrame.
func EncodeFrame(v any) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("checkpoint: encoding frame: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(magic)
	var fixed [12]byte
	binary.BigEndian.PutUint32(fixed[0:4], Version)
	binary.BigEndian.PutUint64(fixed[4:12], uint64(payload.Len()))
	buf.Write(fixed[:])
	buf.Write(payload.Bytes())
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload.Bytes()))
	buf.Write(crc[:])
	return buf.Bytes(), nil
}

// DecodeFrame integrity-checks one frame produced by EncodeFrame and
// decodes its gob payload into v. Every failure — bad magic, version
// skew, truncation, CRC mismatch, decode error — is an error; a frame is
// either fully trusted or refused.
func DecodeFrame(b []byte, v any) error {
	if len(b) < len(magic)+12+4 || !bytes.Equal(b[:len(magic)], magic) {
		return errors.New("checkpoint: truncated or not a checkpoint frame")
	}
	rest := b[len(magic):]
	ver := binary.BigEndian.Uint32(rest[0:4])
	if ver != Version {
		return fmt.Errorf("checkpoint: frame format version %d, this build reads %d", ver, Version)
	}
	plen := binary.BigEndian.Uint64(rest[4:12])
	rest = rest[12:]
	if uint64(len(rest)) != plen+4 {
		return fmt.Errorf("checkpoint: truncated frame payload (%d of %d bytes)", len(rest), plen+4)
	}
	payload, trailer := rest[:plen], rest[plen:]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(trailer); got != want {
		return fmt.Errorf("checkpoint: frame crc mismatch (%08x != %08x)", got, want)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("checkpoint: decoding frame payload: %w", err)
	}
	return nil
}

// writeRecord frames v with EncodeFrame and atomically publishes it as
// dir/name. All checkpoint record files — day snapshots, stream cursors —
// share this envelope.
func (d *Dir) writeRecord(name string, v any) error {
	b, err := EncodeFrame(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding %s: %w", name, err)
	}
	return atomicWrite(d.path, name, b)
}

// loadRecord reads and integrity-checks dir/name, decoding its gob
// payload into v. The boolean is false when the file does not exist; a
// file that exists but fails any check (magic, version, length, CRC,
// decode) is an error, never silently skipped.
func (d *Dir) loadRecord(name string, v any) (bool, error) {
	full := filepath.Join(d.path, name)
	b, err := os.ReadFile(full)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("checkpoint: reading %s: %w", full, err)
	}
	if len(b) < len(magic)+12+4 || !bytes.Equal(b[:len(magic)], magic) {
		return false, fmt.Errorf("checkpoint: %s: truncated or not a checkpoint file", full)
	}
	rest := b[len(magic):]
	ver := binary.BigEndian.Uint32(rest[0:4])
	if ver != Version {
		return false, fmt.Errorf("checkpoint: %s: format version %d, this build reads %d", full, ver, Version)
	}
	plen := binary.BigEndian.Uint64(rest[4:12])
	rest = rest[12:]
	if uint64(len(rest)) != plen+4 {
		return false, fmt.Errorf("checkpoint: %s: truncated payload (%d of %d bytes)", full, len(rest), plen+4)
	}
	payload, trailer := rest[:plen], rest[plen:]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(trailer); got != want {
		return false, fmt.Errorf("checkpoint: %s: crc mismatch (%08x != %08x)", full, got, want)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return false, fmt.Errorf("checkpoint: %s: decoding payload: %w", full, err)
	}
	return true, nil
}

// Store is the single journal-record surface: every checkpoint record —
// day snapshots, sealed-day references, stream cursors, distributed-join
// plans and ranges — is one named, CRC-framed, atomically published gob
// value. Dir implements it; the typed helpers (WriteDay, WriteDayRef,
// Cursor) are conveniences layered on the same two entry points, so a
// consumer that accepts a Store composes with any journal backend.
type Store interface {
	// Write durably records v under name (a bare *.ckpt filename) in the
	// standard envelope: magic, version, length-prefixed gob, CRC-32
	// trailer, atomic rename + directory fsync.
	Write(name string, v any) error
	// Load reads and integrity-checks the record. The boolean is false
	// when no such record exists; a record that exists but fails any
	// check (magic, version, length, CRC, decode) is an error, never
	// silently skipped.
	Load(name string, v any) (bool, error)
}

// Dir implements Store.
var _ Store = (*Dir)(nil)

// Write implements Store: it durably records v under the given name. The
// distributed-join coordinator journals its join-shard results and plan
// fingerprint this way so a killed coordinator resumes without re-joining
// completed shard ranges.
func (d *Dir) Write(name string, v any) error {
	if err := validRecordName(name); err != nil {
		return err
	}
	return d.writeRecord(name, v)
}

// Load implements Store: it reads a record written by Write.
func (d *Dir) Load(name string, v any) (bool, error) {
	if err := validRecordName(name); err != nil {
		return false, err
	}
	return d.loadRecord(name, v)
}

// WriteNamed records an auxiliary run-state record.
//
// Deprecated: WriteNamed is Store.Write under its historical name.
func (d *Dir) WriteNamed(name string, v any) error { return d.Write(name, v) }

// LoadNamed reads an auxiliary record written by WriteNamed.
//
// Deprecated: LoadNamed is Store.Load under its historical name.
func (d *Dir) LoadNamed(name string, v any) (bool, error) { return d.Load(name, v) }

// validRecordName rejects names that would escape the directory or dodge
// the Create-time cleanup glob.
func validRecordName(name string) error {
	if name == "" || name != filepath.Base(name) || filepath.Ext(name) != ".ckpt" {
		return fmt.Errorf("checkpoint: invalid record name %q (want a bare *.ckpt filename)", name)
	}
	return nil
}

// WriteDay durably records one completed day's snapshot as an embedded
// gob blob — the in-memory day path. Runs with a columnar day store
// record a DayRef instead.
func (d *Dir) WriteDay(day clock.Day, snap nsset.Snapshot) error {
	return d.Write(dayFile(day), &snap)
}

// LoadDay reads one day's snapshot. The boolean is false when the day
// has no checkpoint; a file that exists but fails any integrity check
// (magic, version, length, CRC, decode) is an error.
func (d *Dir) LoadDay(day clock.Day) (nsset.Snapshot, bool, error) {
	var snap nsset.Snapshot
	ok, err := d.Load(dayFile(day), &snap)
	if err != nil {
		return nsset.Snapshot{}, false, err
	}
	return snap, ok, nil
}

// DayRef points a day record at a sealed columnar day file
// (internal/daystore) instead of embedding the snapshot as gob: the
// journal stays O(refs) while the bulk data lives in the mmap-friendly
// column files. The content hash pins the exact sealed bytes, so a
// resume can refuse a swapped or rotted file with the same severity a
// CRC-mismatched embedded blob gets.
type DayRef struct {
	// File is the sealed file's bare name inside the day-store directory.
	File string
	// SHA256 is the hex content hash of the sealed file.
	SHA256 string
}

func dayRefFile(day clock.Day) string { return fmt.Sprintf("dayref_%06d.ckpt", int32(day)) }

// WriteDayRef durably records that day's snapshot was sealed into the
// referenced column file. Ref records are disjoint from embedded day
// records (dayref_ vs day_ names): a run resumed under the other day
// backend simply finds no records and re-sweeps, rather than
// misinterpreting one representation as the other.
func (d *Dir) WriteDayRef(day clock.Day, ref DayRef) error {
	return d.Write(dayRefFile(day), &ref)
}

// LoadDayRef reads one day's sealed-file reference; the boolean is false
// when the day has none.
func (d *Dir) LoadDayRef(day clock.Day) (DayRef, bool, error) {
	var ref DayRef
	ok, err := d.Load(dayRefFile(day), &ref)
	if err != nil {
		return DayRef{}, false, err
	}
	return ref, ok, nil
}

// LoadDayRefs reads every recorded day reference in [from, to]. Any
// corrupt record fails the whole load, like LoadDays.
func (d *Dir) LoadDayRefs(from, to clock.Day) (map[clock.Day]DayRef, error) {
	out := make(map[clock.Day]DayRef)
	for day := from; day <= to; day++ {
		ref, ok, err := d.LoadDayRef(day)
		if err != nil {
			return nil, err
		}
		if ok {
			out[day] = ref
		}
	}
	return out, nil
}

// LoadDays reads every checkpointed day in [from, to]. Any corrupt day
// file fails the whole load: a resume must either trust its checkpoints
// or refuse them.
func (d *Dir) LoadDays(from, to clock.Day) (map[clock.Day]nsset.Snapshot, error) {
	out := make(map[clock.Day]nsset.Snapshot)
	for day := from; day <= to; day++ {
		snap, ok, err := d.LoadDay(day)
		if err != nil {
			return nil, err
		}
		if ok {
			out[day] = snap
		}
	}
	return out, nil
}

// atomicWrite writes data to dir/name via a synced temporary file, an
// atomic rename, and a directory fsync. The directory sync matters for
// the exactly-once cursor contract: rename alone makes the new name
// visible but not durable, so a power loss after the sink accepted a
// batch could resurface the *previous* cursor on resume and double-emit.
// Syncing the parent directory pins the rename before the caller
// acknowledges the record as written.
func atomicWrite(dir, name string, data []byte) (err error) {
	f, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp for %s: %w", name, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("checkpoint: writing %s: %w", name, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing %s: %w", name, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", name, err)
	}
	if err = os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("checkpoint: publishing %s: %w", name, err)
	}
	df, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: opening %s for sync: %w", dir, err)
	}
	defer df.Close()
	if err = df.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing %s: %w", dir, err)
	}
	return nil
}
