package checkpoint

import (
	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
)

// cursor.go adds the streaming pipeline's emission journal to a
// checkpoint directory. The batch path checkpoints whole measurement
// days; the stream checkpoints the *emission frontier* instead: the last
// window whose impact events were durably handed to the sink. On resume
// the stream replays its deterministic input and suppresses every
// emission at or below the cursor, so each window's events reach the sink
// exactly once across any number of kill/resume cycles.

const cursorName = "stream_cursor.ckpt"

// Cursor is the durable emission frontier of a streaming run. It is
// written after the sink has accepted a closed window's output, so its
// invariant is: everything up to and including ClosedThrough is already
// in the sink; nothing after it is.
type Cursor struct {
	// ClosedThrough is the highest window whose output the sink holds.
	ClosedThrough clock.Window
	// Attacks is the attack-ID counter after that window: finalized
	// attacks are numbered in emission order, and a resumed run must
	// continue the sequence, not restart it.
	Attacks int
	// Events is the cumulative impact-event count handed to the sink.
	Events int64
	// SinkBytes is the sink's byte offset after the last accepted batch.
	// A file-backed sink truncates to this offset on resume, discarding
	// any partial write from the crash.
	SinkBytes int64
	// LastAttackWindow/LastAttackVictim identify the last attack
	// finalized at the frontier — the (window, victim) pair the attack
	// numbering is anchored to. A resume replay that diverges can then
	// report both sides of the mismatch (what the journal recorded vs
	// what the replay produced) instead of a bare record index, which is
	// what an operator needs to locate the offending input. HaveLast
	// distinguishes "no attacks yet" from a pre-extension cursor whose
	// gob payload simply lacks the fields.
	LastAttackWindow clock.Window
	LastAttackVictim netx.Addr
	HaveLast         bool
}

// WriteCursor durably records the stream emission frontier. It shares
// the day-file envelope (magic, version, CRC, atomic rename), so a torn
// or stale cursor is detected, never decoded as garbage.
func (d *Dir) WriteCursor(c Cursor) error {
	return d.writeRecord(cursorName, &c)
}

// LoadCursor reads the stream emission frontier. The boolean is false
// when the run has never written one (fresh start); an existing but
// corrupt cursor is an error — resuming past it could emit duplicates.
func (d *Dir) LoadCursor() (Cursor, bool, error) {
	var c Cursor
	ok, err := d.loadRecord(cursorName, &c)
	if err != nil {
		return Cursor{}, false, err
	}
	return c, ok, nil
}
