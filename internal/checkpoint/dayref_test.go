package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnsddos/internal/clock"
)

// dayref_test.go covers the sealed-file reference records (the daystore
// run mode's checkpoint shape) and the generic Store surface they ride
// on: refs round-trip, gaps read as absent, and the ref journal enjoys
// the same framing integrity as day snapshots.

func TestDayRefRoundTrip(t *testing.T) {
	d, err := Create(t.TempDir(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	want := DayRef{File: "day_000017.dcol", SHA256: "deadbeef"}
	if err := d.WriteDayRef(17, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := d.LoadDayRef(17)
	if err != nil || !ok {
		t.Fatalf("LoadDayRef = ok %v, err %v", ok, err)
	}
	if got != want {
		t.Fatalf("LoadDayRef = %+v, want %+v", got, want)
	}
	if _, ok, err := d.LoadDayRef(18); ok || err != nil {
		t.Fatalf("missing ref: ok %v err %v, want false nil", ok, err)
	}
}

func TestLoadDayRefsSkipsGaps(t *testing.T) {
	d, err := Create(t.TempDir(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, day := range []clock.Day{3, 5} {
		if err := d.WriteDayRef(day, DayRef{File: dayRefFile(day), SHA256: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	refs, err := d.LoadDayRefs(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 {
		t.Fatalf("LoadDayRefs returned %d refs, want 2: %v", len(refs), refs)
	}
	for _, day := range []clock.Day{3, 5} {
		if _, ok := refs[day]; !ok {
			t.Fatalf("day %d missing from %v", day, refs)
		}
	}
}

// TestDayRefsAndDaysAreDisjoint: a ref record for day N never shadows a
// legacy day-snapshot record for the same N and vice versa.
func TestDayRefsAndDaysAreDisjoint(t *testing.T) {
	d, err := Create(t.TempDir(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteDay(4, testSnapshot(4)); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteDayRef(4, DayRef{File: "day_000004.dcol", SHA256: "y"}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.LoadDay(4); !ok || err != nil {
		t.Fatalf("LoadDay after ref write: ok %v err %v", ok, err)
	}
	if _, ok, err := d.LoadDayRef(4); !ok || err != nil {
		t.Fatalf("LoadDayRef after day write: ok %v err %v", ok, err)
	}
}

// TestStoreInterfaceRoundTrip exercises Dir through the Store interface
// alone, the surface the coordinator and resume paths now depend on.
func TestStoreInterfaceRoundTrip(t *testing.T) {
	d, err := Create(t.TempDir(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	var st Store = d
	type cursor struct{ Day clock.Day }
	if err := st.Write("cursor.ckpt", &cursor{Day: 9}); err != nil {
		t.Fatal(err)
	}
	var got cursor
	ok, err := st.Load("cursor.ckpt", &got)
	if err != nil || !ok || got.Day != 9 {
		t.Fatalf("Store.Load = %+v ok %v err %v", got, ok, err)
	}
	if ok, err := st.Load("absent.ckpt", &got); ok || err != nil {
		t.Fatalf("absent record: ok %v err %v", ok, err)
	}
	if err := st.Write("../escape.ckpt", &got); err == nil {
		t.Fatal("Store.Write accepted a path-traversal name")
	}
}

// TestDayRefRejectsBitFlip: ref records ride the same checked frame as
// every other record.
func TestDayRefRejectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteDayRef(6, DayRef{File: "day_000006.dcol", SHA256: "z"}); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, dayRefFile(6))
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-7] ^= 0x40
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.LoadDayRef(6); err == nil || !strings.Contains(err.Error(), "crc") {
		t.Fatalf("bit-flip error = %v, want crc mismatch", err)
	}
}
