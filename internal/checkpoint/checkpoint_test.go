package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
)

func testSnapshot(day clock.Day) nsset.Snapshot {
	agg := nsset.NewAggregator()
	k := nsset.KeyOf([]netx.Addr{netx.MustParseAddr("192.0.2.1"), netx.MustParseAddr("192.0.2.2")})
	base := day.Start()
	agg.Add(k, base.Add(time.Hour), nsset.StatusOK, 12*time.Millisecond)
	agg.Add(k, base.Add(time.Hour+time.Minute), nsset.StatusTimeout, 0)
	agg.Add(k, base.Add(5*time.Hour), nsset.StatusServFail, 0)
	return agg.Snapshot()
}

func testHeader() Header {
	return Header{ConfigHash: "abc123", Seed: 42}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	d, err := Create(t.TempDir(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	day := clock.Day(17)
	want := testSnapshot(day)
	if err := d.WriteDay(day, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := d.LoadDay(day)
	if err != nil || !ok {
		t.Fatalf("LoadDay = ok %v, err %v", ok, err)
	}
	if len(got.Windows) != len(want.Windows) || len(got.Baselines) != len(want.Baselines) {
		t.Fatalf("shape mismatch: %d/%d windows, %d/%d baselines",
			len(got.Windows), len(want.Windows), len(got.Baselines), len(want.Baselines))
	}
	for i := range want.Windows {
		if got.Windows[i] != want.Windows[i] {
			t.Errorf("window %d: %+v != %+v", i, got.Windows[i], want.Windows[i])
		}
	}
	for i := range want.Baselines {
		if got.Baselines[i] != want.Baselines[i] {
			t.Errorf("baseline %d: %+v != %+v", i, got.Baselines[i], want.Baselines[i])
		}
	}
}

func TestLoadDayMissingIsNotAnError(t *testing.T) {
	d, err := Create(t.TempDir(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.LoadDay(5); ok || err != nil {
		t.Fatalf("missing day: ok %v err %v, want false nil", ok, err)
	}
}

func TestLoadDaysSkipsGaps(t *testing.T) {
	d, err := Create(t.TempDir(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	for _, day := range []clock.Day{3, 5, 6} {
		if err := d.WriteDay(day, testSnapshot(day)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.LoadDays(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d days, want 3", len(got))
	}
	for _, day := range []clock.Day{3, 5, 6} {
		if _, ok := got[day]; !ok {
			t.Errorf("day %v missing", day)
		}
	}
}

func corruptedDir(t *testing.T, corrupt func(path string)) *Dir {
	t.Helper()
	d, err := Create(t.TempDir(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	day := clock.Day(9)
	if err := d.WriteDay(day, testSnapshot(day)); err != nil {
		t.Fatal(err)
	}
	corrupt(filepath.Join(d.Path(), dayFile(day)))
	return d
}

func TestLoadDayRejectsTruncation(t *testing.T) {
	d := corruptedDir(t, func(p string) {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, b[:len(b)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if _, _, err := d.LoadDay(9); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated file error = %v, want truncation report", err)
	}
	if _, err := d.LoadDays(0, 10); err == nil {
		t.Fatal("LoadDays must fail on a corrupt member")
	}
}

func TestLoadDayRejectsBitFlip(t *testing.T) {
	d := corruptedDir(t, func(p string) {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(magic)+12+3] ^= 0x40 // flip one payload bit
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if _, _, err := d.LoadDay(9); err == nil || !strings.Contains(err.Error(), "crc") {
		t.Fatalf("bit-flip error = %v, want crc mismatch", err)
	}
}

func TestLoadDayRejectsWrongMagic(t *testing.T) {
	d := corruptedDir(t, func(p string) {
		if err := os.WriteFile(p, []byte("not a checkpoint at all........."), 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if _, _, err := d.LoadDay(9); err == nil {
		t.Fatal("garbage file accepted")
	}
}

func TestLoadDayRejectsVersionSkew(t *testing.T) {
	d := corruptedDir(t, func(p string) {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(magic)+3] = 99 // version field
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	})
	if _, _, err := d.LoadDay(9); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-skew error = %v", err)
	}
}

func TestResumeChecksHeader(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, testHeader()); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(dir, testHeader()); err != nil {
		t.Fatalf("matching resume failed: %v", err)
	}
	if _, err := Resume(dir, Header{ConfigHash: "other", Seed: 42}); err == nil {
		t.Fatal("config-hash mismatch accepted")
	}
	if _, err := Resume(dir, Header{ConfigHash: "abc123", Seed: 7}); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	if _, err := Resume(t.TempDir(), testHeader()); err == nil {
		t.Fatal("resume without header accepted")
	}
}

func TestCreateWipesPreviousRun(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteDay(4, testSnapshot(4)); err != nil {
		t.Fatal(err)
	}
	// a fresh (non-resume) run over the same dir must not inherit days
	d2, err := Create(dir, Header{ConfigHash: "new", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d2.LoadDay(4); ok || err != nil {
		t.Fatalf("stale day survived Create: ok %v err %v", ok, err)
	}
}

func TestWriteIsAtomic(t *testing.T) {
	// After WriteDay returns, no temp files linger and the payload is
	// complete; the atomic rename is what a mid-write crash relies on.
	dir := t.TempDir()
	d, err := Create(dir, testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteDay(1, testSnapshot(1)); err != nil {
		t.Fatal(err)
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Errorf("temp files left behind: %v", tmps)
	}
}
