package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"dnsddos/internal/clock"
)

func TestCursorRoundTrip(t *testing.T) {
	d, err := Create(t.TempDir(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.LoadCursor(); ok || err != nil {
		t.Fatalf("fresh dir: cursor ok=%v err=%v, want absent", ok, err)
	}
	want := Cursor{ClosedThrough: clock.Window(417), Attacks: 12, Events: 345, SinkBytes: 98765}
	if err := d.WriteCursor(want); err != nil {
		t.Fatal(err)
	}
	// overwrite advances the frontier — the latest write wins
	want.ClosedThrough, want.Attacks, want.Events, want.SinkBytes = 420, 13, 360, 101010
	if err := d.WriteCursor(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := d.LoadCursor()
	if err != nil || !ok {
		t.Fatalf("LoadCursor = ok %v, err %v", ok, err)
	}
	if got != want {
		t.Fatalf("cursor = %+v, want %+v", got, want)
	}
	// the cursor survives a Resume of the same run...
	rd, err := Resume(d.Path(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := rd.LoadCursor(); !ok || got != want {
		t.Fatalf("cursor after Resume = %+v ok=%v", got, ok)
	}
	// ...and a fresh Create wipes it with the rest of the run
	fd, err := Create(d.Path(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := fd.LoadCursor(); ok {
		t.Fatal("Create kept the previous run's cursor")
	}
}

func TestCursorRejectsCorruption(t *testing.T) {
	d, err := Create(t.TempDir(), testHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCursor(Cursor{ClosedThrough: 9, Attacks: 1}); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(d.Path(), cursorName)
	b, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	// flip one payload bit: the CRC must catch it, because acting on a
	// wrong frontier emits duplicate or missing windows downstream
	b[len(b)-7] ^= 0x20
	if err := os.WriteFile(name, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.LoadCursor(); err == nil {
		t.Fatalf("corrupt cursor loaded (ok=%v), want error", ok)
	}
	// truncation likewise
	if err := os.WriteFile(name, b[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.LoadCursor(); err == nil {
		t.Fatal("truncated cursor loaded, want error")
	}
}
