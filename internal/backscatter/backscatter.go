// Package backscatter models how a victim of a randomly spoofed attack
// answers the spoofed packets, producing the Internet Background Radiation
// component the telescope captures (§3.1).
//
// A SYN to an open TCP port elicits a SYN-ACK; to a closed port, an RST. A
// UDP datagram to a closed port elicits an ICMP port-unreachable. Victims
// under overload answer only a fraction of attack packets — the mechanism
// behind §6.5's observation that a *successful* attack can suppress its own
// backscatter signal.
package backscatter

import (
	"math/rand/v2"
	"time"

	"dnsddos/internal/packet"
)

// Victim describes the response behaviour of one attacked host.
type Victim struct {
	// OpenTCPPorts are ports answered with SYN-ACK; other TCP ports get
	// RST. Both are backscatter.
	OpenTCPPorts map[uint16]bool
	// UDPServicePorts are ports with a listening service (no ICMP error,
	// and the service reply goes to the spoofed source — still
	// backscatter, modeled as a UDP reply). Other UDP ports produce
	// ICMP port-unreachable.
	UDPServicePorts map[uint16]bool
	// ResponseRate is the fraction of attack packets answered (0..1),
	// capturing rate limiting and overload-induced loss.
	ResponseRate float64
}

// DefaultNameserverVictim returns the response profile of a typical
// authoritative DNS host: TCP 53 open (DNS-over-TCP, §6.2), often 80/443
// (shared web service), UDP 53 served.
func DefaultNameserverVictim(withWeb bool) *Victim {
	v := &Victim{
		OpenTCPPorts:    map[uint16]bool{53: true},
		UDPServicePorts: map[uint16]bool{53: true},
		ResponseRate:    1.0,
	}
	if withWeb {
		v.OpenTCPPorts[80] = true
		v.OpenTCPPorts[443] = true
	}
	return v
}

// Respond returns the victim's response to one attack packet, or false when
// the packet goes unanswered (overload drop, or a UDP service that swallows
// the datagram is modeled as a reply — see below). The response source is
// the victim address; the destination is the spoofed source, which is what
// lands in the darknet.
func (v *Victim) Respond(rng *rand.Rand, t time.Time, atk packet.Packet) (time.Time, packet.Packet, bool) {
	if v.ResponseRate < 1 && rng.Float64() >= v.ResponseRate {
		return time.Time{}, packet.Packet{}, false
	}
	// small service delay so response timestamps don't collide exactly
	rt := t.Add(time.Duration(rng.IntN(1000)) * time.Microsecond)
	resp := packet.Packet{
		IP: packet.IPv4Header{
			TTL:      64,
			Protocol: atk.IP.Protocol,
			Src:      atk.IP.Dst,
			Dst:      atk.IP.Src,
		},
	}
	switch {
	case atk.TCP != nil:
		h := packet.TCPHeader{
			SrcPort: atk.TCP.DstPort,
			DstPort: atk.TCP.SrcPort,
			Ack:     atk.TCP.Seq + 1,
			Window:  65535,
		}
		if v.OpenTCPPorts[atk.TCP.DstPort] {
			h.Flags = packet.FlagSYN | packet.FlagACK
			h.Seq = rng.Uint32()
		} else {
			h.Flags = packet.FlagRST | packet.FlagACK
		}
		resp.TCP = &h
	case atk.UDP != nil:
		if v.UDPServicePorts[atk.UDP.DstPort] {
			// service reply (e.g. DNS answer/FORMERR) back to the
			// spoofed source
			resp.UDP = &packet.UDPHeader{
				SrcPort: atk.UDP.DstPort,
				DstPort: atk.UDP.SrcPort,
			}
		} else {
			resp.IP.Protocol = packet.ProtoICMP
			// A real ICMP error quotes the offending datagram's
			// header; we carry the attacked port in Rest so the
			// RSDoS port attribution can read it back, standing in
			// for parsing the quoted header.
			resp.ICMP = &packet.ICMPHeader{
				Type: packet.ICMPDestUnreachable,
				Code: packet.ICMPCodePortUnreach,
				Rest: uint32(atk.UDP.DstPort),
			}
		}
	case atk.ICMP != nil && atk.ICMP.Type == 8:
		resp.ICMP = &packet.ICMPHeader{Type: packet.ICMPEchoReply}
	default:
		return time.Time{}, packet.Packet{}, false
	}
	return rt, resp, true
}
