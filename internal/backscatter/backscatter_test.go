package backscatter

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
)

func atkPacket(proto packet.Protocol, dstPort uint16) packet.Packet {
	p := packet.Packet{
		IP: packet.IPv4Header{
			Protocol: proto,
			Src:      netx.MustParseAddr("44.1.2.3"), // spoofed source
			Dst:      netx.MustParseAddr("192.0.2.53"),
		},
	}
	switch proto {
	case packet.ProtoTCP:
		p.TCP = &packet.TCPHeader{SrcPort: 40000, DstPort: dstPort, Seq: 1000, Flags: packet.FlagSYN}
	case packet.ProtoUDP:
		p.UDP = &packet.UDPHeader{SrcPort: 40000, DstPort: dstPort}
	case packet.ProtoICMP:
		p.ICMP = &packet.ICMPHeader{Type: 8}
	}
	return p
}

func TestSYNToOpenPortElicitsSYNACK(t *testing.T) {
	v := DefaultNameserverVictim(false)
	rng := rand.New(rand.NewPCG(1, 1))
	_, resp, ok := v.Respond(rng, time.Now(), atkPacket(packet.ProtoTCP, 53))
	if !ok || resp.TCP == nil {
		t.Fatalf("no TCP response: ok=%v", ok)
	}
	if !resp.TCP.Flags.Has(packet.FlagSYN | packet.FlagACK) {
		t.Errorf("flags = %v, want SYN|ACK", resp.TCP.Flags)
	}
	if resp.IP.Src != netx.MustParseAddr("192.0.2.53") || resp.IP.Dst != netx.MustParseAddr("44.1.2.3") {
		t.Errorf("response addressing wrong: %v → %v", resp.IP.Src, resp.IP.Dst)
	}
	if resp.TCP.SrcPort != 53 || resp.TCP.DstPort != 40000 {
		t.Errorf("response ports: %d→%d", resp.TCP.SrcPort, resp.TCP.DstPort)
	}
	if resp.TCP.Ack != 1001 {
		t.Errorf("ack = %d, want seq+1", resp.TCP.Ack)
	}
}

func TestSYNToClosedPortElicitsRST(t *testing.T) {
	v := DefaultNameserverVictim(false)
	rng := rand.New(rand.NewPCG(2, 2))
	_, resp, ok := v.Respond(rng, time.Now(), atkPacket(packet.ProtoTCP, 8080))
	if !ok || resp.TCP == nil || !resp.TCP.Flags.Has(packet.FlagRST) {
		t.Errorf("closed port should RST: ok=%v flags=%v", ok, resp.TCP)
	}
}

func TestWebPortsOpenWithWeb(t *testing.T) {
	v := DefaultNameserverVictim(true)
	rng := rand.New(rand.NewPCG(3, 3))
	_, resp, _ := v.Respond(rng, time.Now(), atkPacket(packet.ProtoTCP, 80))
	if !resp.TCP.Flags.Has(packet.FlagSYN | packet.FlagACK) {
		t.Error("port 80 open when victim hosts web")
	}
	vNoWeb := DefaultNameserverVictim(false)
	_, resp, _ = vNoWeb.Respond(rng, time.Now(), atkPacket(packet.ProtoTCP, 80))
	if !resp.TCP.Flags.Has(packet.FlagRST) {
		t.Error("port 80 closed without web")
	}
}

func TestUDPToClosedPortElicitsICMPWithQuotedPort(t *testing.T) {
	v := DefaultNameserverVictim(false)
	rng := rand.New(rand.NewPCG(4, 4))
	_, resp, ok := v.Respond(rng, time.Now(), atkPacket(packet.ProtoUDP, 9999))
	if !ok || resp.ICMP == nil {
		t.Fatalf("no ICMP response")
	}
	if resp.ICMP.Type != packet.ICMPDestUnreachable || resp.ICMP.Code != packet.ICMPCodePortUnreach {
		t.Errorf("ICMP type/code = %d/%d", resp.ICMP.Type, resp.ICMP.Code)
	}
	if resp.ICMP.Rest != 9999 {
		t.Errorf("quoted port = %d", resp.ICMP.Rest)
	}
	if resp.IP.Protocol != packet.ProtoICMP {
		t.Errorf("IP protocol = %v", resp.IP.Protocol)
	}
}

func TestUDPToServicePortElicitsUDPReply(t *testing.T) {
	v := DefaultNameserverVictim(false)
	rng := rand.New(rand.NewPCG(5, 5))
	_, resp, ok := v.Respond(rng, time.Now(), atkPacket(packet.ProtoUDP, 53))
	if !ok || resp.UDP == nil {
		t.Fatal("served UDP port should reply with UDP")
	}
	if resp.UDP.SrcPort != 53 || resp.UDP.DstPort != 40000 {
		t.Errorf("reply ports = %d→%d", resp.UDP.SrcPort, resp.UDP.DstPort)
	}
}

func TestEchoRequestElicitsEchoReply(t *testing.T) {
	v := DefaultNameserverVictim(false)
	rng := rand.New(rand.NewPCG(6, 6))
	_, resp, ok := v.Respond(rng, time.Now(), atkPacket(packet.ProtoICMP, 0))
	if !ok || resp.ICMP == nil || resp.ICMP.Type != packet.ICMPEchoReply {
		t.Errorf("echo reply missing: %+v", resp.ICMP)
	}
}

func TestResponseRateThinning(t *testing.T) {
	v := DefaultNameserverVictim(false)
	v.ResponseRate = 0.25
	rng := rand.New(rand.NewPCG(7, 7))
	var answered int
	const n = 20000
	for i := 0; i < n; i++ {
		if _, _, ok := v.Respond(rng, time.Now(), atkPacket(packet.ProtoTCP, 53)); ok {
			answered++
		}
	}
	frac := float64(answered) / n
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("response rate = %.3f, want ≈0.25", frac)
	}
}

func TestResponseTimestampNonDecreasing(t *testing.T) {
	v := DefaultNameserverVictim(false)
	rng := rand.New(rand.NewPCG(8, 8))
	now := time.Now()
	rt, _, ok := v.Respond(rng, now, atkPacket(packet.ProtoTCP, 53))
	if !ok || rt.Before(now) {
		t.Errorf("response time %v before attack time %v", rt, now)
	}
}

func TestUnrespondablePacket(t *testing.T) {
	v := DefaultNameserverVictim(false)
	rng := rand.New(rand.NewPCG(9, 9))
	p := packet.Packet{IP: packet.IPv4Header{Protocol: 99}}
	if _, _, ok := v.Respond(rng, time.Now(), p); ok {
		t.Error("unknown transport should not be answered")
	}
	icmpReply := packet.Packet{
		IP:   packet.IPv4Header{Protocol: packet.ProtoICMP},
		ICMP: &packet.ICMPHeader{Type: packet.ICMPEchoReply},
	}
	if _, _, ok := v.Respond(rng, time.Now(), icmpReply); ok {
		t.Error("echo reply should not be answered (no loops)")
	}
}
