package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/rsdos"
)

// TestJoinMetricsOnEndpoint pins the join engine's observability
// acceptance: after a join, the live /metrics.json view (obs.Serve, the
// -metrics-addr surface of joinpipe/report) carries the engine's
// counters, the day-cache hit/miss gauges and derived hit ratio, and the
// per-shard latency histogram — and none of them leak into the
// deterministic StableSnapshot that seeded-run reports embed.
func TestJoinMetricsOnEndpoint(t *testing.T) {
	db, addrs, keys := buildWideWorld(t, 8)
	agg := nsset.NewAggregator()
	attacks := make([]rsdos.Attack, 0, len(addrs))
	for i, a := range addrs {
		aw := clock.Day(40).FirstWindow() + clock.Window(10*i)
		seedMeasurements(agg, keys[i/2], aw.Day(), 10*time.Millisecond, aw, 100*time.Millisecond, 8, 2)
		attacks = append(attacks, mkAttack(i+1, a, aw, aw+2, 53))
	}

	reg := obs.New()
	p := NewPipeline(db, WithAggregator(agg), WithMetrics(reg))
	// twice: the second join must hit the memoized plan and the warm day
	// cache, so the published hit ratio is nonzero
	for i := 0; i < 2; i++ {
		if ev, err := p.EventsContext(context.Background(), attacks); err != nil || len(ev) == 0 {
			t.Fatalf("join %d: %d events, err %v", i, len(ev), err)
		}
	}

	ms, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	httpc := &http.Client{
		Timeout:   5 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	resp, err := httpc.Get("http://" + ms.Addr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}

	if got := snap.Counters["core.join.events"]; got <= 0 {
		t.Errorf("core.join.events = %d, want > 0", got)
	}
	for _, g := range []string{"core.join.day_cache_hits", "core.join.day_cache_misses", "core.join.day_cache_shared_waits", "core.join.victims", "core.join.shards"} {
		if _, ok := snap.Gauges[g]; !ok {
			t.Errorf("gauge %q missing from /metrics.json", g)
		}
	}
	ratio, ok := snap.Gauges["core.join.day_cache_hit_ratio_permille"]
	if !ok || ratio <= 0 || ratio > 1000 {
		t.Errorf("day_cache_hit_ratio_permille = %d (present=%v), want in (0, 1000]", ratio, ok)
	}
	// the ratio must account for shared waits: hits/(hits+misses+shared)
	hits := snap.Gauges["core.join.day_cache_hits"]
	misses := snap.Gauges["core.join.day_cache_misses"]
	shared := snap.Gauges["core.join.day_cache_shared_waits"]
	if total := hits + misses + shared; total > 0 && ratio != hits*1000/total {
		t.Errorf("ratio %d does not fold shared waits: hits=%d misses=%d shared=%d", ratio, hits, misses, shared)
	}
	if h, ok := snap.Histograms["core.join.shard_latency_ns"]; !ok || h.Count <= 0 {
		t.Errorf("shard_latency_ns histogram missing or empty (present=%v)", ok)
	}

	// run-dependent numbers must stay out of the deterministic snapshot
	stable := reg.StableSnapshot()
	for name := range stable.Counters {
		if len(name) >= 9 && name[:9] == "core.join" {
			t.Errorf("volatile counter %q leaked into StableSnapshot", name)
		}
	}
	for name := range stable.Gauges {
		if len(name) >= 9 && name[:9] == "core.join" {
			t.Errorf("volatile gauge %q leaked into StableSnapshot", name)
		}
	}
}
