// join.go is the interval-indexed sharded join engine (DESIGN §3.4), the
// default implementation behind Pipeline.EventsContext.
//
// Engine shape: the attack feed is indexed by victim (AttackIndex), each
// distinct victim is classified exactly once, and DNS-direct victims are
// grouped into shards by a victim-address prefix (default /16). A bounded
// worker pool joins the shards against the shared read-only NSIndex and
// the per-day baseline snapshots memoized in the pipeline's LRU day
// cache, streaming events into per-shard buffers. The buffers are merged
// and sorted by (feed position, NSSet rank), which reproduces the legacy
// linear scan's emission order exactly — attacks in feed order, and per
// victim the containing NSSets in sorted order — so the two engines are
// byte-identical on completed joins (enforced by TestJoinEngineParity).
//
// Beyond sharding, the engine removes three per-event costs the linear
// scan pays:
//
//   - classification runs once per distinct victim, not once per attack
//     (amplification-era feeds re-hit the same victims for months);
//   - each (attack, NSSet) pair fetches one nsset.Series view, so the
//     inner window loop pays an int-keyed probe per window instead of
//     re-hashing the string NSSet key twice per window;
//   - Eq. 1 baselines come from per-day snapshots built once per distinct
//     day (Aggregator.DayBaselines) and cached across events, attacks,
//     and EventsContext calls.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/rsdos"
)

// snapshotFor returns the baseline view of a resolved measurable day
// (quarantine walk already applied), obtaining it from the day store at
// most once per day across all shards (single-flight LRU). For the
// in-memory store that builds a map index; for a columnar store it opens
// (and caches) the day's file-backed view.
func (p *Pipeline) snapshotFor(d clock.Day) BaselineView {
	s, _ := p.dayCache.GetOrCompute(d, func() BaselineView {
		return p.days.Baselines(d)
	})
	return s
}

// joinMetrics is the engine's observability surface. All metrics are
// registered Volatile: build times, shard latencies, and cache hit
// interleavings are run-dependent, and keeping them out of StableSnapshot
// keeps seeded-run outputs (study.Report, golden files) byte-identical.
// The zero value (no registry) is valid and free: every field is a
// nil-safe no-op metric.
type joinMetrics struct {
	indexBuildNS  *obs.Gauge     // core.join.index_build_ns: last AttackIndex build
	victims       *obs.Gauge     // core.join.victims: distinct DNS-direct victims in the last feed
	shards        *obs.Gauge     // core.join.shards: shards in the last join
	events        *obs.Counter   // core.join.events: events emitted (cumulative)
	attacksJoined *obs.Counter   // core.join.attacks: DNS-direct attacks joined (cumulative)
	cacheHits     *obs.Gauge     // core.join.day_cache_hits: LRU lifetime hits
	cacheMisses   *obs.Gauge     // core.join.day_cache_misses: LRU lifetime misses
	cacheShared   *obs.Gauge     // core.join.day_cache_shared_waits: joins of another caller's in-flight build
	cacheRatio    *obs.Gauge     // core.join.day_cache_hit_ratio_permille: hits/(hits+misses+shared)
	shardLatency  *obs.Histogram // core.join.shard_latency_ns: per-shard wall time
}

// newJoinMetrics registers the engine metrics on reg (nil disables all).
func newJoinMetrics(reg *obs.Registry) joinMetrics {
	return joinMetrics{
		indexBuildNS:  reg.Gauge("core.join.index_build_ns", obs.Volatile()),
		victims:       reg.Gauge("core.join.victims", obs.Volatile()),
		shards:        reg.Gauge("core.join.shards", obs.Volatile()),
		events:        reg.Counter("core.join.events", obs.Volatile()),
		attacksJoined: reg.Counter("core.join.attacks", obs.Volatile()),
		cacheHits:     reg.Gauge("core.join.day_cache_hits", obs.Volatile()),
		cacheMisses:   reg.Gauge("core.join.day_cache_misses", obs.Volatile()),
		cacheShared:   reg.Gauge("core.join.day_cache_shared_waits", obs.Volatile()),
		cacheRatio:    reg.Gauge("core.join.day_cache_hit_ratio_permille", obs.Volatile()),
		shardLatency:  reg.Histogram("core.join.shard_latency_ns", obs.Volatile()),
	}
}

// publishCacheStats exports the day cache's lifetime hit/miss/shared
// counts and derived hit ratio (permille, so the integer gauge keeps 0.1%
// steps). A shard that joined another shard's in-flight build (shared)
// did not find the snapshot cached — it stalled on a build like a miss
// does — so shared lookups belong in the ratio's denominator. Counting
// them neither way dropped those lookups entirely and overstated the hit
// ratio under concurrent shards.
func (m *joinMetrics) publishCacheStats(c interface{ LRUStats() (int64, int64, int64) }) {
	hits, misses, shared := c.LRUStats()
	m.cacheHits.Set(hits)
	m.cacheMisses.Set(misses)
	m.cacheShared.Set(shared)
	if total := hits + misses + shared; total > 0 {
		m.cacheRatio.Set(hits * 1000 / total)
	}
}

// dnsVictim is one classified DNS-direct victim with its attack feed
// positions — the unit of shard work.
type dnsVictim struct {
	v       netx.Addr
	ns      dnsdb.NameserverID
	attacks []int32 // feed positions, sorted by (start, position)
}

// TaggedEvent carries an event with the two sort keys that reproduce the
// legacy emission order: the attack's feed position and the containing
// NSSet's rank among the victim's sorted sets. Exported (with gob-friendly
// value fields) so a distributed worker can ship a shard range's events to
// the coordinator, which restores the global order with MergeTaggedEvents.
type TaggedEvent struct {
	AttackIdx int32
	NSSetIdx  int32
	Event     Event
}

// lessTagged is the legacy emission order over tagged events.
func lessTagged(a, b TaggedEvent) bool {
	if a.AttackIdx != b.AttackIdx {
		return a.AttackIdx < b.AttackIdx
	}
	return a.NSSetIdx < b.NSSetIdx
}

// MergeTaggedEvents merges per-shard-range event buffers (in any order,
// from any number of workers) into the exact event sequence the
// single-process join emits: one global sort by (feed position, NSSet
// rank) and the tags are stripped. Ranges cover disjoint shard sets, so
// no deduplication is needed — exactly-once delivery is the caller's
// (coordinator journal's) contract.
func MergeTaggedEvents(parts [][]TaggedEvent) []Event {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	merged := make([]TaggedEvent, 0, n)
	for _, p := range parts {
		merged = append(merged, p...)
	}
	sort.Slice(merged, func(i, j int) bool { return lessTagged(merged[i], merged[j]) })
	out := make([]Event, len(merged))
	for i, te := range merged {
		out[i] = te.Event
	}
	return out
}

// joinIndex is one feed's immutable join plan: the attack interval index
// plus the classified DNS-direct victims grouped into shards. It is a
// pure function of the feed slice (and the pipeline's frozen world), so
// the pipeline memoizes the last plan: repeat joins over the same feed —
// resumed runs, ablation sweeps, the report tools — skip the feed scan
// entirely. Like AttackIndex, it references the feed and is stale if the
// slice is mutated in place.
type joinIndex struct {
	feedPtr *rsdos.Attack
	feedLen int
	aix     *AttackIndex
	direct  []dnsVictim
	shards  [][]dnsVictim
}

// joinIndexFor returns the feed's join plan, building it at most once per
// distinct feed (concurrent first calls may race to build; either result
// is correct and one wins the store).
func (p *Pipeline) joinIndexFor(attacks []rsdos.Attack) *joinIndex {
	var feedPtr *rsdos.Attack
	if len(attacks) > 0 {
		feedPtr = &attacks[0]
	}
	if ji := p.joinIdx.Load(); ji != nil && ji.feedPtr == feedPtr && ji.feedLen == len(attacks) {
		return ji
	}

	t0 := time.Now()
	// Index only DNS-direct victims: the feed is dominated by victims
	// that are not DNS infrastructure, so each entry first passes the
	// NSIndex bit filter (one shift + bit test) and survivors get one
	// memoized classification per distinct victim. The interval
	// structures are then built for the relevant subset only.
	type vinfo struct {
		direct bool
		ns     dnsdb.NameserverID
	}
	memo := make(map[netx.Addr]vinfo)
	aix := BuildAttackIndexFunc(attacks, func(v netx.Addr) bool {
		if !p.ix.mayBeNS(v) {
			return false
		}
		inf, ok := memo[v]
		if !ok {
			class, _, ns := p.classifyVictim(v)
			inf = vinfo{direct: class == ClassDNSDirect, ns: ns}
			memo[v] = inf
		}
		return inf.direct
	})

	// Victims() is sorted ascending, so consecutive victims share shard
	// prefixes and the shard list below comes out in ascending order.
	direct := make([]dnsVictim, 0, len(aix.Victims()))
	for _, v := range aix.Victims() {
		direct = append(direct, dnsVictim{v: v, ns: memo[v].ns, attacks: aix.AttacksOn(v)})
	}

	// Group contiguous runs of victims by address prefix into shards.
	shift := uint(32 - p.shardBits)
	var shards [][]dnsVictim
	for i := 0; i < len(direct); {
		j := i + 1
		for j < len(direct) && uint32(direct[j].v)>>shift == uint32(direct[i].v)>>shift {
			j++
		}
		shards = append(shards, direct[i:j])
		i = j
	}
	p.metrics.indexBuildNS.Set(time.Since(t0).Nanoseconds())

	ji := &joinIndex{feedPtr: feedPtr, feedLen: len(attacks), aix: aix, direct: direct, shards: shards}
	p.joinIdx.Store(ji)
	return ji
}

// eventsIndexed is the sharded interval-indexed join.
func (p *Pipeline) eventsIndexed(ctx context.Context, attacks []rsdos.Attack) ([]Event, error) {
	ji := p.joinIndexFor(attacks)
	p.metrics.victims.Set(int64(len(ji.direct)))
	p.metrics.shards.Set(int64(len(ji.shards)))

	if len(ji.shards) == 0 {
		p.metrics.publishCacheStats(p.dayCache)
		return nil, ctx.Err()
	}

	// Prewarm the day-snapshot cache with every day this feed joins
	// against, so worker shards only read (deterministic hit/miss
	// accounting, and no thundering rebuild under concurrent misses —
	// GetOrCompute single-flights the stragglers anyway).
	p.prewarmDays(ji.aix, ji.direct)

	out, err := p.runShards(ctx, ji.aix, ji.shards)
	p.metrics.publishCacheStats(p.dayCache)
	return out, err
}

// prewarmDays builds the baseline snapshot of every resolved day the feed
// can touch: each attack's snapshot day (§4.2 join rule) and the Eq. 1
// baseline day of each calendar day the attack spans.
func (p *Pipeline) prewarmDays(aix *AttackIndex, direct []dnsVictim) {
	back := clock.Day(p.cfg.BaselineDaysBack)
	if back <= 0 {
		back = 1
	}
	seen := make(map[clock.Day]bool)
	warm := func(d clock.Day) {
		d = p.measurableDay(d)
		if !seen[d] {
			seen[d] = true
			p.snapshotFor(d)
		}
	}
	for _, dv := range direct {
		for _, ai := range dv.attacks {
			a := &aix.attacks[ai]
			snapDay := a.StartWindow.Day()
			if p.cfg.UsePrevDaySnapshot {
				snapDay = snapDay.Prev()
			}
			warm(snapDay)
			for d := a.StartWindow.Day(); d <= a.EndWindow.Day(); d++ {
				warm(d - back)
			}
		}
	}
}

// runShards drives the bounded worker pool over the shard list, each
// worker writing its own slot of the per-shard buffer matrix, then merges
// deterministically.
func (p *Pipeline) runShards(ctx context.Context, aix *AttackIndex, shards [][]dnsVictim) ([]Event, error) {
	merged, err := p.runShardRange(ctx, aix, shards)
	out := MergeTaggedEvents([][]TaggedEvent{merged})
	p.metrics.events.Add(int64(len(out)))
	return out, err
}

// runShardRange joins a contiguous shard slice through the bounded worker
// pool and returns the tagged events sorted in legacy emission order —
// the shared engine under both the single-process join (runShards) and
// the distributed shard-range API (JoinShardRange).
func (p *Pipeline) runShardRange(ctx context.Context, aix *AttackIndex, shards [][]dnsVictim) ([]TaggedEvent, error) {
	workers := p.joinWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(shards) {
		workers = len(shards)
	}

	buffers := make([][]TaggedEvent, len(shards))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range work {
				st := time.Now()
				buffers[si] = p.joinShard(ctx, aix, shards[si])
				p.metrics.shardLatency.Observe(time.Since(st))
			}
		}()
	}
dispatch:
	for si := range shards {
		select {
		case work <- si:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	n := 0
	for _, b := range buffers {
		n += len(b)
	}
	merged := make([]TaggedEvent, 0, n)
	for _, b := range buffers {
		merged = append(merged, b...)
	}
	// Shards cover disjoint ascending victim ranges but attacks interleave
	// across victims; restore the feed order the legacy scan emits in.
	sort.Slice(merged, func(i, j int) bool { return lessTagged(merged[i], merged[j]) })
	return merged, ctx.Err()
}

// JoinShardCount returns how many victim-prefix shards the feed's join
// plan contains — the unit of distribution: a coordinator partitions
// [0, JoinShardCount) into contiguous ranges and hands each range to a
// worker's JoinShardRange. The count is a pure function of the feed and
// the pipeline's frozen world, so every process that rebuilt the same
// world from the same config computes the same value.
func (p *Pipeline) JoinShardCount(attacks []rsdos.Attack) int {
	return len(p.joinIndexFor(attacks).shards)
}

// JoinShardRange joins the shard range [from, to) of the feed's join plan
// and returns its tagged events in legacy emission order. Disjoint ranges
// joined in different processes and merged with MergeTaggedEvents are
// byte-identical to one EventsContext call over the whole feed.
func (p *Pipeline) JoinShardRange(ctx context.Context, attacks []rsdos.Attack, from, to int) ([]TaggedEvent, error) {
	ji := p.joinIndexFor(attacks)
	if from < 0 || to < from || to > len(ji.shards) {
		return nil, fmt.Errorf("core: shard range [%d, %d) out of bounds (plan has %d shards)", from, to, len(ji.shards))
	}
	shards := ji.shards[from:to]
	if len(shards) == 0 {
		return nil, ctx.Err()
	}
	// Prewarm only the days this range's victims can touch.
	var vs []dnsVictim
	for _, s := range shards {
		vs = append(vs, s...)
	}
	p.prewarmDays(ji.aix, vs)
	merged, err := p.runShardRange(ctx, ji.aix, shards)
	p.metrics.events.Add(int64(len(merged)))
	p.metrics.publishCacheStats(p.dayCache)
	return merged, err
}

// joinShard joins one shard's victims. Cancellation is checked between
// attacks; a cancelled shard returns the events built so far (the overall
// join then reports ctx.Err() and callers treat the result as partial).
func (p *Pipeline) joinShard(ctx context.Context, aix *AttackIndex, victims []dnsVictim) []TaggedEvent {
	var out []TaggedEvent
	checked := 0
	for _, dv := range victims {
		sets := p.ix.NSSetsContaining(dv.v)
		if len(sets) == 0 {
			continue
		}
		for _, ai := range dv.attacks {
			if checked&63 == 0 {
				select {
				case <-ctx.Done():
					return out
				default:
				}
			}
			checked++
			p.metrics.attacksJoined.Inc()
			ca := ClassifiedAttack{
				Attack:     aix.attacks[ai],
				Class:      ClassDNSDirect,
				NSRecorded: true,
				NS:         dv.ns,
			}
			// the §4.2 snapshot day depends only on the attack; fetch its
			// baseline snapshot once for all containing NSSets
			snapDay := ca.StartWindow.Day()
			if p.cfg.UsePrevDaySnapshot {
				snapDay = snapDay.Prev()
			}
			snap := p.snapshotFor(p.measurableDay(snapDay))
			for ki, k := range sets {
				if e, ok := p.buildEventIndexed(ca, snap, k); ok {
					out = append(out, TaggedEvent{AttackIdx: ai, NSSetIdx: int32(ki), Event: e})
				}
			}
		}
	}
	return out
}

// buildEventIndexed is buildEvent on the indexed fast path: snap is the
// attack's resolved §4.2 snapshot-day baseline view, Eq. 1 baselines
// come from cached day views, and window metrics from a span-clamped
// day-store series — with identical guards and float arithmetic so
// results are byte-for-byte the legacy scan's.
func (p *Pipeline) buildEventIndexed(ca ClassifiedAttack, snap BaselineView, k nsset.Key) (Event, bool) {
	if b := snap.Baseline(k); b == nil || b.OKCount == 0 {
		return Event{}, false
	}
	e := Event{
		Attack:        ca,
		NSSet:         k,
		HostedDomains: p.ix.DomainCount(k),
	}
	series := p.days.Series(k)
	back := clock.Day(p.cfg.BaselineDaysBack)
	if back <= 0 {
		back = 1
	}
	impact := 0.0
	hasImpact := false
	worstFail := 0.0
	// Measurements are sparse within an attack span (each domain is swept
	// once a day), so instead of probing every 5-minute window we walk the
	// span day by day and visit only the windows the series actually holds
	// (KeySeries.DayWindows). Every accumulator below is order-independent
	// — integer sums and maxima over the same set of windows — so the
	// day buckets reproduce the legacy scan's bytes. The span clamp is a
	// pure pruning step (the pruned windows hold no metrics); backends
	// without span tracking report ok false and the raw attack span walks.
	from, to := ca.StartWindow, ca.EndWindow
	if mn, mx, ok := series.Span(); ok {
		if from < mn {
			from = mn
		}
		if to > mx {
			to = mx
		}
	}
	for d := from.Day(); d <= to.Day(); d++ {
		// Hoist the Eq. 1 denominator out of the window loop: it is a
		// per-day quantity, computed lazily on the day's first OK window.
		var baseRTT time.Duration
		baseOK, baseDone := false, false
		wins := series.DayWindows(d)
		lo := sort.Search(len(wins), func(i int) bool { return wins[i].Window >= from })
		for _, m := range wins[lo:] {
			if m.Window > to {
				break
			}
			e.MeasuredDomains += m.Domains
			e.OK += m.OKCount
			e.Timeouts += m.Timeouts
			e.ServFails += m.ServFails
			if fr := m.FailureRate(); fr > worstFail {
				worstFail = fr
			}
			if m.OKCount == 0 {
				continue
			}
			if !baseDone {
				baseDone = true
				if b := p.snapshotFor(p.measurableDay(d - back)).Baseline(k); b != nil && b.OKCount > 0 {
					if rtt := b.AvgRTT(); rtt > 0 {
						baseRTT = rtt
						baseOK = true
					}
				}
			}
			if baseOK {
				hasImpact = true
				if imp := float64(m.AvgRTT()) / float64(baseRTT); imp > impact {
					impact = imp
				}
			}
		}
	}
	if e.MeasuredDomains < p.cfg.MinMeasuredDomains {
		return Event{}, false
	}
	e.Impact, e.HasImpact, e.FailureRate = impact, hasImpact, worstFail
	p.enrich(&e, ca.Start())
	return e, true
}
