package core

import (
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/nsset"
	"dnsddos/internal/rsdos"
)

// TestQuarantineFallbackJoinsPreviousDay exercises the §3.2-style join
// fallback: when the snapshot day's sweep was quarantined, the previous
// day's NS data stands in, so the event is not silently lost.
func TestQuarantineFallbackJoinsPreviousDay(t *testing.T) {
	w := buildWorld(t)
	agg := nsset.NewAggregator()
	attackW := clock.Day(40).FirstWindow() + 100
	// baseline exists only two days before the attack (day 38); day 39 —
	// the usual prev-day snapshot — has no measurements at all
	base := clock.Day(38).Start()
	for i := 0; i < 10; i++ {
		agg.Add(w.vulnKey, base.Add(time.Duration(i)*time.Hour), nsset.StatusOK, 10*time.Millisecond)
	}
	mid := attackW.Start().Add(time.Minute)
	for i := 0; i < 8; i++ {
		agg.Add(w.vulnKey, mid, nsset.StatusOK, 100*time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		agg.Add(w.vulnKey, mid, nsset.StatusTimeout, 0)
	}
	atk := mkAttack(1, w.vulnNS[0], attackW, attackW+2, 53)

	// without quarantine info, day 39 has no baseline: the event is lost
	p := NewPipeline(w.db, WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	if got := len(p.Events([]rsdos.Attack{atk})); got != 0 {
		t.Fatalf("events without quarantine info = %d, want 0", got)
	}

	// marking day 39 quarantined lets the join fall back to day 38
	p2 := NewPipeline(w.db, WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	p2.SetQuarantinedDays([]clock.Day{39})
	events := p2.Events([]rsdos.Attack{atk})
	if len(events) != 1 {
		t.Fatalf("events with quarantined day = %d, want 1", len(events))
	}
	e := events[0]
	if e.NSSet != w.vulnKey || e.MeasuredDomains != 10 {
		t.Errorf("event identity: %+v", e)
	}
	// the Eq. 1 baseline falls back too: 100ms vs 10ms ≈ 10x
	if !e.HasImpact || e.Impact < 9.5 || e.Impact > 10.5 {
		t.Errorf("impact vs fallback baseline = %v (has %v), want ≈10", e.Impact, e.HasImpact)
	}
}

// TestQuarantineFallbackBounded checks the walk stops after
// maxQuarantineFallback days: a week of lost sweeps means no comparable
// baseline, and the event drops rather than joining stale data.
func TestQuarantineFallbackBounded(t *testing.T) {
	w := buildWorld(t)
	agg := nsset.NewAggregator()
	attackW := clock.Day(40).FirstWindow()
	base := clock.Day(31).Start() // nine days back: beyond the bounded walk
	for i := 0; i < 10; i++ {
		agg.Add(w.vulnKey, base.Add(time.Duration(i)*time.Hour), nsset.StatusOK, 10*time.Millisecond)
	}
	mid := attackW.Start().Add(time.Minute)
	for i := 0; i < 10; i++ {
		agg.Add(w.vulnKey, mid, nsset.StatusOK, 50*time.Millisecond)
	}
	p := NewPipeline(w.db, WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	var q []clock.Day
	for d := clock.Day(32); d <= 39; d++ {
		q = append(q, d)
	}
	p.SetQuarantinedDays(q)
	if got := len(p.Events([]rsdos.Attack{mkAttack(1, w.vulnNS[0], attackW, attackW+2, 53)})); got != 0 {
		t.Errorf("join walked past %d quarantined days: %d events, want 0", len(q), got)
	}
}
