package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/rsdos"
)

// buildWideWorld spreads providers across many /16s so the /16-sharded
// join actually fans out: provider i gets two nameservers in 10.i.0.0/16
// and four domains.
func buildWideWorld(t *testing.T, providers int) (*dnsdb.DB, []netx.Addr, []nsset.Key) {
	t.Helper()
	db := dnsdb.New()
	addrs := make([]netx.Addr, 0, 2*providers)
	keys := make([]nsset.Key, 0, providers)
	for i := 0; i < providers; i++ {
		p := db.AddProvider(dnsdb.Provider{Name: fmt.Sprintf("P%03d", i)})
		a1 := netx.MustParseAddr(fmt.Sprintf("10.%d.0.10", i))
		a2 := netx.MustParseAddr(fmt.Sprintf("10.%d.0.20", i))
		var ids []dnsdb.NameserverID
		for _, a := range []netx.Addr{a1, a2} {
			id, err := db.AddNameserver(dnsdb.Nameserver{
				Addr: a, Provider: p, Sites: 1,
				CapacityPPS: 1e5, BaseRTT: 10 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		for j := 0; j < 4; j++ {
			db.AddDomain(dnsdb.Domain{Name: fmt.Sprintf("d%03d.example", i), NS: ids})
		}
		addrs = append(addrs, a1, a2)
		keys = append(keys, nsset.KeyOf([]netx.Addr{a1, a2}))
	}
	db.Freeze()
	return db, addrs, keys
}

// TestShardedJoinMatchesLegacyConcurrent is the race-detector workout
// for the sharded engine: many shards (one per victim at shardBits=32),
// a worker pool wider than GOMAXPROCS, and four goroutines running
// EventsContext on the same pipeline at once — sharing the NS index, the
// aggregator and the day-snapshot LRU. Every result must equal the
// legacy linear scan's.
func TestShardedJoinMatchesLegacyConcurrent(t *testing.T) {
	const providers = 32
	db, addrs, keys := buildWideWorld(t, providers)
	agg := nsset.NewAggregator()

	attacks := make([]rsdos.Attack, 0, len(addrs))
	for i, a := range addrs {
		aw := clock.Day(40+i%3).FirstWindow() + clock.Window(10*(i%7))
		seedMeasurements(agg, keys[i/2], aw.Day(), 10*time.Millisecond, aw, 100*time.Millisecond, 8, 2)
		attacks = append(attacks, mkAttack(i+1, a, aw, aw+2, 53))
	}

	legacy := NewPipeline(db, WithAggregator(agg), WithLegacyJoin())
	want := legacy.Events(attacks)
	if len(want) < providers {
		t.Fatalf("legacy join produced %d events; the comparison would be thin", len(want))
	}

	indexed := NewPipeline(db, WithAggregator(agg), WithJoinWorkers(8), WithShardBits(32))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := indexed.EventsContext(context.Background(), attacks)
			if err != nil {
				t.Errorf("indexed join: %v", err)
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("indexed join diverged from legacy: %d vs %d events", len(got), len(want))
			}
		}()
	}
	wg.Wait()
}

// TestShardedJoinCancellation: cancelling mid-join returns ctx.Err()
// without deadlocking the worker pool (the race detector guards the
// shutdown path).
func TestShardedJoinCancellation(t *testing.T) {
	db, addrs, keys := buildWideWorld(t, 16)
	agg := nsset.NewAggregator()
	attacks := make([]rsdos.Attack, 0, len(addrs))
	for i, a := range addrs {
		aw := clock.Day(40).FirstWindow() + clock.Window(i)
		seedMeasurements(agg, keys[i/2], aw.Day(), 10*time.Millisecond, aw, 50*time.Millisecond, 8, 2)
		attacks = append(attacks, mkAttack(i+1, a, aw, aw+2, 53))
	}
	p := NewPipeline(db, WithAggregator(agg), WithJoinWorkers(4), WithShardBits(32))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.EventsContext(ctx, attacks); err != context.Canceled {
		t.Fatalf("cancelled join error = %v, want context.Canceled", err)
	}
}
