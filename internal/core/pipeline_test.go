package core

import (
	"testing"
	"time"

	"dnsddos/internal/anycast"
	"dnsddos/internal/astopo"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/openres"
	"dnsddos/internal/packet"
	"dnsddos/internal/rsdos"
)

// world builds a fixed miniature ecosystem:
//   - provider "Vuln" with 2 unicast NSs in one /24 hosting 10 domains
//   - provider "Big" with 2 anycast NSs in two /24s hosting 20 domains
//   - 8.8.8.8 as an open resolver with 2 misconfigured domains
type world struct {
	db      *dnsdb.DB
	topo    *astopo.Table
	census  *anycast.Census
	open    *openres.List
	vulnNS  []netx.Addr
	bigNS   []netx.Addr
	vulnKey nsset.Key
	bigKey  nsset.Key
}

func buildWorld(t *testing.T) *world {
	t.Helper()
	w := &world{db: dnsdb.New(), open: openres.WellKnown()}
	tb := astopo.NewBuilder()

	vuln := w.db.AddProvider(dnsdb.Provider{Name: "Vuln"})
	big := w.db.AddProvider(dnsdb.Provider{Name: "Big"})
	google := w.db.AddProvider(dnsdb.Provider{Name: "Google"})

	addNS := func(p dnsdb.ProviderID, addr string, anycast bool) dnsdb.NameserverID {
		a := netx.MustParseAddr(addr)
		sites := 1
		if anycast {
			sites = 20
		}
		id, err := w.db.AddNameserver(dnsdb.Nameserver{
			Addr: a, Provider: p, Anycast: anycast, Sites: sites,
			CapacityPPS: 1e5, BaseRTT: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	v1 := addNS(vuln, "192.0.2.10", false)
	v2 := addNS(vuln, "192.0.2.20", false)
	b1 := addNS(big, "198.51.100.1", true)
	b2 := addNS(big, "198.51.101.1", true)
	g := addNS(google, "8.8.8.8", true)

	w.vulnNS = []netx.Addr{netx.MustParseAddr("192.0.2.10"), netx.MustParseAddr("192.0.2.20")}
	w.bigNS = []netx.Addr{netx.MustParseAddr("198.51.100.1"), netx.MustParseAddr("198.51.101.1")}
	w.vulnKey = nsset.KeyOf(w.vulnNS)
	w.bigKey = nsset.KeyOf(w.bigNS)

	for i := 0; i < 10; i++ {
		w.db.AddDomain(dnsdb.Domain{Name: "v.example", NS: []dnsdb.NameserverID{v1, v2}})
	}
	for i := 0; i < 20; i++ {
		w.db.AddDomain(dnsdb.Domain{Name: "b.example", NS: []dnsdb.NameserverID{b1, b2}})
	}
	for i := 0; i < 2; i++ {
		w.db.AddDomain(dnsdb.Domain{Name: "m.example", NS: []dnsdb.NameserverID{g}})
	}
	w.db.Freeze()

	tb.Announce(netx.MustParsePrefix("192.0.2.0/24"), 64500)
	tb.SetOrg(64500, astopo.Org{Name: "Vuln"})
	tb.Announce(netx.MustParsePrefix("198.51.100.0/24"), 64501)
	tb.Announce(netx.MustParsePrefix("198.51.101.0/24"), 64502)
	tb.SetOrg(64501, astopo.Org{Name: "Big"})
	tb.Announce(netx.MustParsePrefix("8.8.8.0/24"), 15169)
	tb.SetOrg(15169, astopo.Org{Name: "Google"})
	w.topo = tb.Build()

	w.census = anycast.NewCensus(anycast.NewSnapshot(clock.StudyStart, []netx.Prefix{
		netx.MustParsePrefix("198.51.100.0/24"),
		netx.MustParsePrefix("198.51.101.0/24"),
		netx.MustParsePrefix("8.8.8.0/24"),
	}))
	return w
}

func mkAttack(id int, victim netx.Addr, startW, endW clock.Window, port uint16) rsdos.Attack {
	return rsdos.Attack{
		ID: id, Victim: victim, StartWindow: startW, EndWindow: endW,
		Proto: packet.ProtoTCP, FirstPort: port, UniquePorts: 1,
		TotalPackets: 1000, PeakPPM: 500, MaxSlash16: 100, UniqueDsts: 900,
	}
}

// seedMeasurements populates baselines for day d-1 and window metrics in
// the attack windows.
func seedMeasurements(agg *nsset.Aggregator, k nsset.Key, day clock.Day, baseRTT time.Duration, attackW clock.Window, attackRTT time.Duration, okN, toN int) {
	prev := day.Prev().Start()
	for i := 0; i < 10; i++ {
		agg.Add(k, prev.Add(time.Duration(i)*time.Hour), nsset.StatusOK, baseRTT)
	}
	mid := attackW.Start().Add(time.Minute)
	for i := 0; i < okN; i++ {
		agg.Add(k, mid, nsset.StatusOK, attackRTT)
	}
	for i := 0; i < toN; i++ {
		agg.Add(k, mid, nsset.StatusTimeout, 0)
	}
}

func TestClassify(t *testing.T) {
	w := buildWorld(t)
	p := NewPipeline(w.db, WithAggregator(nsset.NewAggregator()), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	attacks := []rsdos.Attack{
		mkAttack(1, w.vulnNS[0], 100, 105, 53),                         // direct NS
		mkAttack(2, netx.MustParseAddr("192.0.2.99"), 100, 105, 80),    // same /24 as NS
		mkAttack(3, netx.MustParseAddr("8.8.8.8"), 100, 105, 53),       // open resolver
		mkAttack(4, netx.MustParseAddr("120.55.44.33"), 100, 105, 443), // other
	}
	got := p.Classify(attacks)
	want := []Class{ClassDNSDirect, ClassDNSSlash24, ClassOpenResolver, ClassOther}
	for i, ca := range got {
		if ca.Class != want[i] {
			t.Errorf("attack %d class = %v, want %v", i+1, ca.Class, want[i])
		}
	}
	if !got[0].DNSInfra() || got[1].DNSInfra() || !got[2].DNSInfra() || got[3].DNSInfra() {
		t.Error("DNSInfra flags wrong")
	}
	// with the filter off, 8.8.8.8 classifies as a direct NS target
	cfg := DefaultConfig()
	cfg.FilterOpenResolvers = false
	p2 := NewPipeline(w.db, WithConfig(cfg), WithAggregator(nsset.NewAggregator()), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	if got := p2.Classify(attacks[2:3]); got[0].Class != ClassDNSDirect {
		t.Errorf("unfiltered open resolver class = %v", got[0].Class)
	}
}

func TestEventsJoinAndImpact(t *testing.T) {
	w := buildWorld(t)
	agg := nsset.NewAggregator()
	attackW := clock.Day(40).FirstWindow() + 100
	// vuln NSSet: baseline 10ms, attack windows at 100ms with 2 timeouts
	seedMeasurements(agg, w.vulnKey, attackW.Day(), 10*time.Millisecond, attackW, 100*time.Millisecond, 8, 2)
	p := NewPipeline(w.db, WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	events := p.Events([]rsdos.Attack{mkAttack(1, w.vulnNS[0], attackW, attackW+2, 53)})
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e.NSSet != w.vulnKey || e.HostedDomains != 10 {
		t.Errorf("event identity: %+v", e)
	}
	if e.MeasuredDomains != 10 || e.OK != 8 || e.Timeouts != 2 {
		t.Errorf("counts: %+v", e)
	}
	if !e.HasImpact || e.Impact < 9.5 || e.Impact > 10.5 {
		t.Errorf("impact = %v, want ≈10", e.Impact)
	}
	if e.FailureRate != 0.2 {
		t.Errorf("failure rate = %v", e.FailureRate)
	}
	if e.Provider != "Vuln" {
		t.Errorf("provider = %q", e.Provider)
	}
	if e.AnycastClass != nsset.Unicast || e.Diversity.NumPrefixes != 1 || e.Diversity.NumASNs != 1 {
		t.Errorf("diversity: %+v class %v", e.Diversity, e.AnycastClass)
	}
}

func TestEventsMinMeasuredFilter(t *testing.T) {
	w := buildWorld(t)
	agg := nsset.NewAggregator()
	attackW := clock.Day(40).FirstWindow()
	seedMeasurements(agg, w.vulnKey, attackW.Day(), 10*time.Millisecond, attackW, 20*time.Millisecond, 3, 0) // only 3 measured
	p := NewPipeline(w.db, WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	if events := p.Events([]rsdos.Attack{mkAttack(1, w.vulnNS[0], attackW, attackW+2, 53)}); len(events) != 0 {
		t.Errorf("events below MinMeasuredDomains = %d, want 0", len(events))
	}
	cfg := DefaultConfig()
	cfg.MinMeasuredDomains = 1
	p2 := NewPipeline(w.db, WithConfig(cfg), WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	if events := p2.Events([]rsdos.Attack{mkAttack(1, w.vulnNS[0], attackW, attackW+2, 53)}); len(events) != 1 {
		t.Errorf("relaxed filter events = %d, want 1", len(events))
	}
}

func TestEventsRequireSnapshotBaseline(t *testing.T) {
	w := buildWorld(t)
	agg := nsset.NewAggregator()
	attackW := clock.Day(40).FirstWindow()
	// measurements during the attack but NO previous-day baseline
	mid := attackW.Start().Add(time.Minute)
	for i := 0; i < 10; i++ {
		agg.Add(w.vulnKey, mid, nsset.StatusOK, 50*time.Millisecond)
	}
	p := NewPipeline(w.db, WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	if events := p.Events([]rsdos.Attack{mkAttack(1, w.vulnNS[0], attackW, attackW+2, 53)}); len(events) != 0 {
		t.Errorf("without prev-day snapshot the NSSet should not join: %d events", len(events))
	}
}

func TestEventsSameDaySnapshotAblation(t *testing.T) {
	w := buildWorld(t)
	agg := nsset.NewAggregator()
	attackW := clock.Day(40).FirstWindow() + 10
	// prev-day baseline exists; on the attack day everything fails
	prev := attackW.Day().Prev().Start()
	for i := 0; i < 10; i++ {
		agg.Add(w.vulnKey, prev.Add(time.Duration(i)*time.Hour), nsset.StatusOK, 10*time.Millisecond)
	}
	mid := attackW.Start().Add(time.Minute)
	for i := 0; i < 10; i++ {
		agg.Add(w.vulnKey, mid, nsset.StatusTimeout, 0)
	}
	atk := mkAttack(1, w.vulnNS[0], attackW, attackW+2, 53)

	prevCfg := DefaultConfig()
	p1 := NewPipeline(w.db, WithConfig(prevCfg), WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	if got := len(p1.Events([]rsdos.Attack{atk})); got != 1 {
		t.Errorf("prev-day snapshot events = %d, want 1", got)
	}
	sameCfg := DefaultConfig()
	sameCfg.UsePrevDaySnapshot = false
	p2 := NewPipeline(w.db, WithConfig(sameCfg), WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	if got := len(p2.Events([]rsdos.Attack{atk})); got != 0 {
		t.Errorf("same-day snapshot should miss the fully-failed NSSet: %d events", got)
	}
}

func TestDomainsUnderAttack(t *testing.T) {
	w := buildWorld(t)
	p := NewPipeline(w.db, WithAggregator(nsset.NewAggregator()), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	cas := p.Classify([]rsdos.Attack{mkAttack(1, w.vulnNS[0], 0, 1, 53)})
	if got := p.DomainsUnderAttack(cas[0]); got != 10 {
		t.Errorf("DomainsUnderAttack = %d, want 10", got)
	}
	other := p.Classify([]rsdos.Attack{mkAttack(2, netx.MustParseAddr("120.0.0.1"), 0, 1, 53)})
	if got := p.DomainsUnderAttack(other[0]); got != 0 {
		t.Errorf("non-DNS attack affects %d domains", got)
	}
}

func TestAnycastEnrichment(t *testing.T) {
	w := buildWorld(t)
	agg := nsset.NewAggregator()
	attackW := clock.Day(40).FirstWindow()
	seedMeasurements(agg, w.bigKey, attackW.Day(), 10*time.Millisecond, attackW, 12*time.Millisecond, 20, 0)
	p := NewPipeline(w.db, WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	events := p.Events([]rsdos.Attack{mkAttack(1, w.bigNS[0], attackW, attackW+1, 53)})
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	if e.AnycastClass != nsset.FullAnycast {
		t.Errorf("anycast class = %v", e.AnycastClass)
	}
	if e.Diversity.NumPrefixes != 2 || e.Diversity.NumASNs != 2 {
		t.Errorf("diversity = %+v", e.Diversity)
	}
}
