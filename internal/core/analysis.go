package core

import (
	"sort"
	"strings"
	"time"

	"dnsddos/internal/astopo"
	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/packet"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/stats"
)

// analysis.go computes the quantities behind every table and figure of the
// evaluation (§6). Rendering lives in internal/report.

// DatasetSummary is Table 1: the RSDoS dataset totals.
type DatasetSummary struct {
	Attacks  int
	IPs      int
	Slash24s int
	ASes     int
}

// SummarizeDataset computes Table 1 over the full feed. The AS count uses
// the prefix-to-AS table when available.
func SummarizeDataset(attacks []rsdos.Attack, topo *astopo.Table) DatasetSummary {
	ips := make(map[netx.Addr]struct{})
	p24 := make(map[netx.Prefix]struct{})
	asns := make(map[astopo.ASN]struct{})
	for _, a := range attacks {
		ips[a.Victim] = struct{}{}
		p24[a.Victim.Slash24()] = struct{}{}
		if topo != nil {
			if asn, ok := topo.Lookup(a.Victim); ok {
				asns[asn] = struct{}{}
			}
		}
	}
	return DatasetSummary{Attacks: len(attacks), IPs: len(ips), Slash24s: len(p24), ASes: len(asns)}
}

// MonthRow is one row of Table 3.
type MonthRow struct {
	Month       clock.Month
	DNSAttacks  int
	OtherAttack int
	DNSIPs      int
	OtherIPs    int
}

// TotalAttacks returns the month's attack total.
func (r MonthRow) TotalAttacks() int { return r.DNSAttacks + r.OtherAttack }

// TotalIPs returns the month's unique-victim total.
func (r MonthRow) TotalIPs() int { return r.DNSIPs + r.OtherIPs }

// DNSShare returns the DNS fraction of attacks.
func (r MonthRow) DNSShare() float64 {
	return stats.Ratio(float64(r.DNSAttacks), float64(r.TotalAttacks()))
}

// MonthlySummary computes Table 3: per calendar month, attacks and unique
// victim IPs split into DNS infrastructure vs other.
func MonthlySummary(classified []ClassifiedAttack) []MonthRow {
	type agg struct {
		dns, other int
		dnsIPs     map[netx.Addr]struct{}
		otherIPs   map[netx.Addr]struct{}
	}
	byMonth := make(map[clock.Month]*agg)
	for _, ca := range classified {
		m := clock.MonthOf(ca.Start())
		a := byMonth[m]
		if a == nil {
			a = &agg{dnsIPs: make(map[netx.Addr]struct{}), otherIPs: make(map[netx.Addr]struct{})}
			byMonth[m] = a
		}
		if ca.DNSInfra() {
			a.dns++
			a.dnsIPs[ca.Victim] = struct{}{}
		} else {
			a.other++
			a.otherIPs[ca.Victim] = struct{}{}
		}
	}
	months := make([]clock.Month, 0, len(byMonth))
	for m := range byMonth {
		months = append(months, m)
	}
	sort.Slice(months, func(i, j int) bool { return months[i].Before(months[j]) })
	rows := make([]MonthRow, 0, len(months))
	for _, m := range months {
		a := byMonth[m]
		rows = append(rows, MonthRow{
			Month: m, DNSAttacks: a.dns, OtherAttack: a.other,
			DNSIPs: len(a.dnsIPs), OtherIPs: len(a.otherIPs),
		})
	}
	return rows
}

// RankedASN is one row of Table 4.
type RankedASN struct {
	ASN     astopo.ASN
	Org     string
	Attacks int
}

// TopASNs computes Table 4: ASNs ranked by attacks toward NS-recorded IPs.
func TopASNs(classified []ClassifiedAttack, topo *astopo.Table, n int) []RankedASN {
	counts := make(map[astopo.ASN]int)
	for _, ca := range classified {
		if !ca.DNSInfra() || topo == nil {
			continue
		}
		if asn, ok := topo.Lookup(ca.Victim); ok {
			counts[asn]++
		}
	}
	rows := make([]RankedASN, 0, len(counts))
	for asn, c := range counts {
		org := asn.String()
		if topo != nil {
			org = topo.OrgName(asn)
		}
		rows = append(rows, RankedASN{ASN: asn, Org: org, Attacks: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Attacks != rows[j].Attacks {
			return rows[i].Attacks > rows[j].Attacks
		}
		return rows[i].ASN < rows[j].ASN
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// RankedIP is one row of Table 5.
type RankedIP struct {
	IP      netx.Addr
	Attacks int
	// Type labels the target: provider name, or "open resolver".
	Type string
}

// TopIPs computes Table 5: NS-recorded victim IPs ranked by attack count.
func (p *Pipeline) TopIPs(classified []ClassifiedAttack, n int) []RankedIP {
	counts := make(map[netx.Addr]int)
	kind := make(map[netx.Addr]string)
	for _, ca := range classified {
		if !ca.DNSInfra() {
			continue
		}
		counts[ca.Victim]++
		if _, ok := kind[ca.Victim]; !ok {
			switch {
			case ca.Class == ClassOpenResolver:
				kind[ca.Victim] = "open resolver (" + p.db.ProviderOf(ca.NS).Name + ")"
			default:
				kind[ca.Victim] = p.db.ProviderOf(ca.NS).Name
			}
		}
	}
	rows := make([]RankedIP, 0, len(counts))
	for ip, c := range counts {
		rows = append(rows, RankedIP{IP: ip, Attacks: c, Type: kind[ip]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Attacks != rows[j].Attacks {
			return rows[i].Attacks > rows[j].Attacks
		}
		return rows[i].IP < rows[j].IP
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// AffectedOrg is one row of Table 6.
type AffectedOrg struct {
	Org    string
	Impact float64 // worst Eq. 1 impact observed
}

// MostAffected computes Table 6: providers ranked by their worst observed
// RTT impact across events.
func MostAffected(events []Event, n int) []AffectedOrg {
	worst := make(map[string]float64)
	for _, e := range events {
		if !e.HasImpact || e.Provider == "" {
			continue
		}
		if e.Impact > worst[e.Provider] {
			worst[e.Provider] = e.Impact
		}
	}
	rows := make([]AffectedOrg, 0, len(worst))
	for org, imp := range worst {
		rows = append(rows, AffectedOrg{Org: org, Impact: imp})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Impact != rows[j].Impact {
			return rows[i].Impact > rows[j].Impact
		}
		return rows[i].Org < rows[j].Org
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// MonthlyAffectedDomains computes Figure 5: per month, the number of
// distinct registered domains with at least one nameserver under attack.
func (p *Pipeline) MonthlyAffectedDomains(classified []ClassifiedAttack) map[clock.Month]int {
	byMonth := make(map[clock.Month]map[int32]struct{})
	for _, ca := range classified {
		if ca.Class != ClassDNSDirect {
			continue
		}
		m := clock.MonthOf(ca.Start())
		set := byMonth[m]
		if set == nil {
			set = make(map[int32]struct{})
			byMonth[m] = set
		}
		for _, d := range p.db.DomainsOf(ca.NS) {
			set[int32(d)] = struct{}{}
		}
	}
	out := make(map[clock.Month]int, len(byMonth))
	for m, set := range byMonth {
		out[m] = len(set)
	}
	return out
}

// PortStats is the Figure 6 dataset.
type PortStats struct {
	Total             int
	SinglePort        int
	ProtoCounts       map[packet.Protocol]int
	PortCounts        map[packet.Protocol]map[uint16]int // single-port attacks only
	SinglePortByProto map[packet.Protocol]int
}

// PortDistribution computes Figure 6 over attacks toward DNS authoritative
// infrastructure. When onlyEvents is non-nil, the distribution covers only
// attacks present in that set (the §6.3.1 successful-attack variant).
func PortDistribution(classified []ClassifiedAttack, include func(ClassifiedAttack) bool) PortStats {
	ps := PortStats{
		ProtoCounts:       make(map[packet.Protocol]int),
		PortCounts:        make(map[packet.Protocol]map[uint16]int),
		SinglePortByProto: make(map[packet.Protocol]int),
	}
	for _, ca := range classified {
		if ca.Class != ClassDNSDirect {
			continue
		}
		if include != nil && !include(ca) {
			continue
		}
		ps.Total++
		ps.ProtoCounts[ca.Proto]++
		if ca.UniquePorts <= 1 {
			ps.SinglePort++
			ps.SinglePortByProto[ca.Proto]++
			pm := ps.PortCounts[ca.Proto]
			if pm == nil {
				pm = make(map[uint16]int)
				ps.PortCounts[ca.Proto] = pm
			}
			pm[ca.FirstPort]++
		}
	}
	return ps
}

// SinglePortShare returns the fraction of attacks targeting one port.
func (ps PortStats) SinglePortShare() float64 {
	return stats.Ratio(float64(ps.SinglePort), float64(ps.Total))
}

// PortShare returns the share of single-port attacks on proto targeting port.
func (ps PortStats) PortShare(proto packet.Protocol, port uint16) float64 {
	return stats.Ratio(float64(ps.PortCounts[proto][port]), float64(ps.SinglePortByProto[proto]))
}

// ProtoShare returns the protocol's share of DNS-infrastructure attacks.
func (ps PortStats) ProtoShare(proto packet.Protocol) float64 {
	return stats.Ratio(float64(ps.ProtoCounts[proto]), float64(ps.Total))
}

// FailureBreakdown summarizes §6.3.1 over events: how many attacks left
// resolution working, and how failures split between timeout and SERVFAIL.
type FailureBreakdown struct {
	Events        int
	WithFailures  int
	CompleteFails int
	Timeouts      int
	ServFails     int
	// UnicastFailShare is the fraction of failing events on unicast-only
	// NSSets (99% in the paper).
	UnicastFailShare float64
	// SingleASNFailShare is the fraction of complete failures on
	// single-ASN NSSets (81%).
	SingleASNFailShare float64
	// SinglePrefixFailShare is the fraction of failing NSSets on a
	// single /24 (60%).
	SinglePrefixFailShare float64
}

// BreakdownFailures computes the §6.3.1 statistics.
func BreakdownFailures(events []Event) FailureBreakdown {
	var fb FailureBreakdown
	fb.Events = len(events)
	var unicastFails, asnSingles, prefixSingles, completes int
	for _, e := range events {
		fails := e.Timeouts + e.ServFails
		if fails == 0 {
			continue
		}
		fb.WithFailures++
		fb.Timeouts += e.Timeouts
		fb.ServFails += e.ServFails
		if e.AnycastClass == nsset.Unicast {
			unicastFails++
		}
		if e.Diversity.NumPrefixes <= 1 {
			prefixSingles++
		}
		if e.FailedCompletely() {
			completes++
			if e.Diversity.NumASNs <= 1 {
				asnSingles++
			}
		}
	}
	fb.CompleteFails = completes
	fb.UnicastFailShare = stats.Ratio(float64(unicastFails), float64(fb.WithFailures))
	fb.SingleASNFailShare = stats.Ratio(float64(asnSingles), float64(completes))
	fb.SinglePrefixFailShare = stats.Ratio(float64(prefixSingles), float64(fb.WithFailures))
	return fb
}

// ScatterPoint is one dot of Figures 7–10.
type ScatterPoint struct {
	X, Y float64
	// SizeBin is the order of magnitude of hosted domains (dot color in
	// the paper's scatters).
	SizeBin int
}

// FailureScatter computes Figure 7: x = hosted domains, y = failure rate,
// over events with at least one failure.
func FailureScatter(events []Event) []ScatterPoint {
	var out []ScatterPoint
	for _, e := range events {
		if e.Timeouts+e.ServFails == 0 {
			continue
		}
		out = append(out, ScatterPoint{
			X:       float64(e.HostedDomains),
			Y:       e.FailureRate * 100,
			SizeBin: stats.LogBin(float64(e.HostedDomains)),
		})
	}
	return out
}

// ImpactScatter computes Figure 8: x = hosted domains, y = Eq. 1 impact.
func ImpactScatter(events []Event) []ScatterPoint {
	var out []ScatterPoint
	for _, e := range events {
		if !e.HasImpact {
			continue
		}
		out = append(out, ScatterPoint{
			X:       float64(e.HostedDomains),
			Y:       e.Impact,
			SizeBin: stats.LogBin(float64(e.HostedDomains)),
		})
	}
	return out
}

// CorrelationResult is the Figure 9/10 dataset: paired series and their
// Pearson coefficient.
type CorrelationResult struct {
	X, Y    []float64
	Pearson float64
	Defined bool
}

// IntensityCorrelation computes Figure 9: telescope-inferred intensity
// (peak PPM) vs Eq. 1 impact.
func IntensityCorrelation(events []Event) CorrelationResult {
	var r CorrelationResult
	for _, e := range events {
		if !e.HasImpact {
			continue
		}
		r.X = append(r.X, e.Attack.PeakPPM)
		r.Y = append(r.Y, e.Impact)
	}
	r.Pearson, r.Defined = stats.Pearson(r.X, r.Y)
	return r
}

// DurationCorrelation computes Figure 10: attack duration (minutes) vs
// Eq. 1 impact.
func DurationCorrelation(events []Event) CorrelationResult {
	var r CorrelationResult
	for _, e := range events {
		if !e.HasImpact {
			continue
		}
		r.X = append(r.X, e.Attack.Duration().Minutes())
		r.Y = append(r.Y, e.Impact)
	}
	r.Pearson, r.Defined = stats.Pearson(r.X, r.Y)
	return r
}

// GroupImpact describes the impact distribution of one resilience group
// (one box of Figures 11–13).
type GroupImpact struct {
	Label    string
	N        int
	Mean     float64
	Median   float64
	P95      float64
	Max      float64
	Share10x float64 // fraction of events with impact ≥ 10
	Share100 float64 // fraction with impact ≥ 100
}

func groupImpact(label string, impacts []float64) GroupImpact {
	g := GroupImpact{Label: label, N: len(impacts)}
	if len(impacts) == 0 {
		return g
	}
	g.Mean = stats.Mean(impacts)
	g.Median = stats.Median(impacts)
	g.P95 = stats.Quantile(impacts, 0.95)
	var over10, over100 int
	for _, v := range impacts {
		if v > g.Max {
			g.Max = v
		}
		if v >= 10 {
			over10++
		}
		if v >= 100 {
			over100++
		}
	}
	g.Share10x = float64(over10) / float64(len(impacts))
	g.Share100 = float64(over100) / float64(len(impacts))
	return g
}

// ImpactByAnycast computes Figure 11: impact grouped by anycast class.
func ImpactByAnycast(events []Event) []GroupImpact {
	groups := map[nsset.AnycastClass][]float64{}
	for _, e := range events {
		if e.HasImpact {
			groups[e.AnycastClass] = append(groups[e.AnycastClass], e.Impact)
		}
	}
	out := make([]GroupImpact, 0, 3)
	for _, c := range []nsset.AnycastClass{nsset.Unicast, nsset.PartialAnycast, nsset.FullAnycast} {
		out = append(out, groupImpact(c.String(), groups[c]))
	}
	return out
}

// ImpactByASDiversity computes Figure 12: impact grouped by ASN count
// (1, 2, 3+).
func ImpactByASDiversity(events []Event) []GroupImpact {
	return impactByCount(events, func(e Event) int { return e.Diversity.NumASNs }, "ASN")
}

// ImpactByPrefixDiversity computes Figure 13: impact grouped by /24 count.
func ImpactByPrefixDiversity(events []Event) []GroupImpact {
	return impactByCount(events, func(e Event) int { return e.Diversity.NumPrefixes }, "/24")
}

func impactByCount(events []Event, count func(Event) int, unit string) []GroupImpact {
	groups := map[string][]float64{}
	labels := []string{"1 " + unit, "2 " + unit + "s", "3+ " + unit + "s"}
	for _, e := range events {
		if !e.HasImpact {
			continue
		}
		c := count(e)
		var l string
		switch {
		case c <= 1:
			l = labels[0]
		case c == 2:
			l = labels[1]
		default:
			l = labels[2]
		}
		groups[l] = append(groups[l], e.Impact)
	}
	out := make([]GroupImpact, 0, 3)
	for _, l := range labels {
		out = append(out, groupImpact(l, groups[l]))
	}
	return out
}

// DurationHistogram builds the §6.5 attack-duration histogram (minutes,
// 5-minute bins up to maxMinutes) over DNS-direct attacks.
func DurationHistogram(classified []ClassifiedAttack, maxMinutes float64) *stats.Histogram {
	h := stats.NewHistogram(0, maxMinutes, int(maxMinutes/5))
	for _, ca := range classified {
		if ca.Class == ClassDNSDirect {
			h.Add(ca.Duration().Minutes())
		}
	}
	return h
}

// RTTSeries extracts the 5-minute resolution-time series of an NSSet over
// [from, to) — the Figure 2/3 time series.
type RTTSample struct {
	Window   clock.Window
	AvgRTT   time.Duration
	Domains  int
	Timeouts int
	Failures float64
}

// SeriesFor returns the window series of NSSet k over [from, to).
func (p *Pipeline) SeriesFor(k nsset.Key, from, to time.Time) []RTTSample {
	var out []RTTSample
	for w := clock.WindowOf(from); w < clock.WindowOf(to); w++ {
		m := p.days.Window(k, w)
		if m == nil {
			continue
		}
		out = append(out, RTTSample{
			Window:   w,
			AvgRTT:   m.AvgRTT(),
			Domains:  m.Domains,
			Timeouts: m.Timeouts,
			Failures: m.FailureRate(),
		})
	}
	return out
}

// TLDShare is one row of the affected-domain TLD breakdown. The paper uses
// this view in §5.1: of the ≈776K domains affected by the TransIP attacks,
// two-thirds were .nl.
type TLDShare struct {
	TLD   string
	Count int
	Share float64
}

// AffectedTLDs breaks the domains hosted on an attacked nameserver down by
// top-level domain, largest share first.
func (p *Pipeline) AffectedTLDs(ca ClassifiedAttack) []TLDShare {
	if ca.Class != ClassDNSDirect {
		return nil
	}
	counts := map[string]int{}
	total := 0
	for _, d := range p.db.DomainsOf(ca.NS) {
		name := p.db.Domains[d].Name
		tld := name
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			tld = name[i+1:]
		}
		counts[tld]++
		total++
	}
	out := make([]TLDShare, 0, len(counts))
	for tld, c := range counts {
		out = append(out, TLDShare{TLD: tld, Count: c, Share: stats.Ratio(float64(c), float64(total))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].TLD < out[j].TLD
	})
	return out
}

// ThirdPartyWebShare returns how many of an attacked nameserver's domains
// host their web content elsewhere — the §5.1.1 observation that ≈27% of
// TransIP-hosted domains used third-party web hosting and so felt the
// attacks only through DNS resolution.
func (p *Pipeline) ThirdPartyWebShare(ca ClassifiedAttack) (count int, share float64) {
	if ca.Class != ClassDNSDirect {
		return 0, 0
	}
	total := 0
	for _, d := range p.db.DomainsOf(ca.NS) {
		total++
		if p.db.Domains[d].ThirdPartyWeb {
			count++
		}
	}
	return count, stats.Ratio(float64(count), float64(total))
}
