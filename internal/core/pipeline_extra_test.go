package core

import (
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/rsdos"
)

func TestTopIPsLabels(t *testing.T) {
	w := buildWorld(t)
	p := NewPipeline(w.db, WithAggregator(nsset.NewAggregator()), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	attacks := []rsdos.Attack{
		mkAttack(1, netx.MustParseAddr("8.8.8.8"), 10, 12, 53),
		mkAttack(2, netx.MustParseAddr("8.8.8.8"), 30, 31, 53),
		mkAttack(3, w.vulnNS[0], 50, 51, 53),
		mkAttack(4, netx.MustParseAddr("120.0.0.1"), 60, 61, 80), // non-DNS: excluded
	}
	rows := p.TopIPs(p.Classify(attacks), 10)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].IP != netx.MustParseAddr("8.8.8.8") || rows[0].Attacks != 2 {
		t.Errorf("top row = %+v", rows[0])
	}
	if rows[0].Type != "open resolver (Google)" {
		t.Errorf("open resolver label = %q", rows[0].Type)
	}
	if rows[1].Type != "Vuln" {
		t.Errorf("provider label = %q", rows[1].Type)
	}
	// truncation
	if got := p.TopIPs(p.Classify(attacks), 1); len(got) != 1 {
		t.Errorf("truncated rows = %d", len(got))
	}
}

func TestMonthlyAffectedDomainsUnique(t *testing.T) {
	w := buildWorld(t)
	p := NewPipeline(w.db, WithAggregator(nsset.NewAggregator()), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	// two attacks on the same NSSet in one month: domains counted once
	novW := clock.WindowOf(time.Date(2020, 11, 10, 0, 0, 0, 0, time.UTC))
	attacks := []rsdos.Attack{
		mkAttack(1, w.vulnNS[0], novW, novW+2, 53),
		mkAttack(2, w.vulnNS[1], novW+100, novW+102, 53),
	}
	counts := p.MonthlyAffectedDomains(p.Classify(attacks))
	nov := clock.Month{Year: 2020, Month: time.November}
	if counts[nov] != 10 {
		t.Errorf("unique affected domains = %d, want 10 (both NSs host the same 10)", counts[nov])
	}
}

func TestSeriesFor(t *testing.T) {
	w := buildWorld(t)
	agg := nsset.NewAggregator()
	base := clock.Day(40).Start()
	agg.Add(w.vulnKey, base.Add(10*time.Minute), nsset.StatusOK, 10*time.Millisecond)
	agg.Add(w.vulnKey, base.Add(12*time.Minute), nsset.StatusTimeout, 0)
	agg.Add(w.vulnKey, base.Add(40*time.Minute), nsset.StatusOK, 30*time.Millisecond)
	p := NewPipeline(w.db, WithAggregator(agg), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	series := p.SeriesFor(w.vulnKey, base, base.Add(time.Hour))
	if len(series) != 2 {
		t.Fatalf("series = %+v", series)
	}
	first := series[0]
	if first.Domains != 2 || first.Timeouts != 1 || first.AvgRTT != 10*time.Millisecond || first.Failures != 0.5 {
		t.Errorf("first sample = %+v", first)
	}
	if series[1].AvgRTT != 30*time.Millisecond {
		t.Errorf("second sample = %+v", series[1])
	}
	// outside the range: empty
	if got := p.SeriesFor(w.vulnKey, base.Add(2*time.Hour), base.Add(3*time.Hour)); len(got) != 0 {
		t.Errorf("out-of-range series = %d samples", len(got))
	}
}

func TestNSSetsContainingAndCounts(t *testing.T) {
	w := buildWorld(t)
	p := NewPipeline(w.db, WithAggregator(nsset.NewAggregator()), WithCensus(w.census), WithTopology(w.topo), WithOpenResolvers(w.open))
	sets := p.NSSetsContaining(w.vulnNS[0])
	if len(sets) != 1 || sets[0] != w.vulnKey {
		t.Errorf("NSSetsContaining = %v", sets)
	}
	if got := p.NSSetDomainCount(w.vulnKey); got != 10 {
		t.Errorf("NSSetDomainCount = %d", got)
	}
	if got := p.NSSetDomainCount(nsset.KeyOf([]netx.Addr{99})); got != 0 {
		t.Errorf("unknown NSSet count = %d", got)
	}
}

func TestEventMultipleNSSetsPerNameserver(t *testing.T) {
	// a nameserver shared by two different NSSets joins into two events
	db := dnsdbTwoSets(t)
	shared := netx.MustParseAddr("10.0.0.1")
	agg := nsset.NewAggregator()
	attackW := clock.Day(40).FirstWindow()
	k1 := nsset.KeyOf([]netx.Addr{shared, netx.MustParseAddr("10.0.1.1")})
	k2 := nsset.KeyOf([]netx.Addr{shared, netx.MustParseAddr("10.0.2.1")})
	seedMeasurements(agg, k1, attackW.Day(), 10*time.Millisecond, attackW, 20*time.Millisecond, 6, 0)
	seedMeasurements(agg, k2, attackW.Day(), 10*time.Millisecond, attackW, 40*time.Millisecond, 6, 0)
	p := NewPipeline(db, WithAggregator(agg))
	events := p.Events([]rsdos.Attack{mkAttack(1, shared, attackW, attackW+2, 53)})
	if len(events) != 2 {
		t.Fatalf("events = %d, want one per NSSet containing the victim", len(events))
	}
	if events[0].NSSet == events[1].NSSet {
		t.Error("events should cover distinct NSSets")
	}
}

func dnsdbTwoSets(t *testing.T) *dnsdb.DB {
	t.Helper()
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	add := func(addr string) dnsdb.NameserverID {
		id, err := db.AddNameserver(dnsdb.Nameserver{
			Addr: netx.MustParseAddr(addr), Provider: pid, BaseRTT: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	shared := add("10.0.0.1")
	a := add("10.0.1.1")
	b := add("10.0.2.1")
	for i := 0; i < 3; i++ {
		db.AddDomain(dnsdb.Domain{Name: "x.example", NS: []dnsdb.NameserverID{shared, a}})
		db.AddDomain(dnsdb.Domain{Name: "y.example", NS: []dnsdb.NameserverID{shared, b}})
	}
	db.Freeze()
	return db
}
