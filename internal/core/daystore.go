// daystore.go defines the DayStore interface: the pipeline's only
// day-access surface. The join engines (join.go's indexed shards and the
// WithLegacyJoin linear scan), the analysis accessors, and every stream/
// distjoin consumer read per-day NSSet aggregates exclusively through it,
// so the backing representation is swappable:
//
//   - the in-memory path (NewAggregatorDayStore, the default) serves the
//     live nsset.Aggregator maps — the historical behaviour;
//   - the columnar path (internal/daystore.Set, attached WithDayStore)
//     serves mmap-backed views of sealed per-day column files, which is
//     what lets ≥1M-domain sweeps join with flat RSS.
//
// The contract both backends pin (enforced by the observation-equivalence
// property test in internal/daystore and TestJoinParityColumnar):
//
//   - Keys() is deterministically sorted ascending;
//   - Window/Baseline return nil exactly when nothing was measured;
//   - Series(k).DayWindows(d) is sorted ascending by window, and the
//     *WindowMetrics / *DayBaseline values are read-only aggregates whose
//     integer fields round-trip exactly — Eq. 1 float math stays
//     byte-identical across backends.
package core

import (
	"dnsddos/internal/clock"
	"dnsddos/internal/nsset"
)

// BaselineView is one day's baseline index: the day-d aggregate of every
// NSSet measured on day d. Views are keyed by *resolved* measurable day
// (quarantine walk already applied), shared read-only across worker
// shards, and memoized in the pipeline's LRU day cache.
type BaselineView interface {
	// Baseline returns the NSSet's day aggregate, or nil if it was not
	// measured that day. The result is read-only.
	Baseline(k nsset.Key) *nsset.DayBaseline
}

// KeySeries is one NSSet's window-metrics view, fetched once per
// (attack, NSSet) pair so the join's inner loop never re-hashes the
// string key.
type KeySeries interface {
	// DayWindows returns the measured windows of calendar day d, sorted
	// ascending by window; the slice and its values are read-only.
	DayWindows(d clock.Day) []*nsset.WindowMetrics
	// Span returns the series' inclusive retained-window range when the
	// backend tracks one (ok true; min > max means no windows). Backends
	// without span tracking return ok false and callers skip the clamp —
	// a pure pruning step, so skipping it never changes results.
	Span() (min, max clock.Window, ok bool)
}

// DayStore is the read-only day-snapshot surface the join consumes.
// Implementations must be safe for concurrent readers.
type DayStore interface {
	// Baselines returns day d's baseline view (empty view, never nil,
	// when nothing was measured that day).
	Baselines(d clock.Day) BaselineView
	// Baseline is the point probe: the day aggregate for (k, d), or nil.
	Baseline(k nsset.Key, d clock.Day) *nsset.DayBaseline
	// Series returns k's window-metrics view; the zero series (NSSet
	// never measured) is valid and empty.
	Series(k nsset.Key) KeySeries
	// Window is the point probe: metrics for (k, w), or nil.
	Window(k nsset.Key, w clock.Window) *nsset.WindowMetrics
	// Keys returns every NSSet with measurements, sorted ascending.
	Keys() []nsset.Key
	// Days returns every day with measurements, sorted ascending.
	Days() []clock.Day
}

// aggDayStore adapts the live in-memory nsset.Aggregator to DayStore —
// the default backend, and the reference the columnar path must be
// observation-equivalent to. Reads alias the aggregator's live maps; like
// nsset.Series, the store must not be used while the aggregator is being
// mutated.
type aggDayStore struct {
	agg *nsset.Aggregator
}

// NewAggregatorDayStore wraps a live aggregator as a DayStore.
func NewAggregatorDayStore(agg *nsset.Aggregator) DayStore {
	return aggDayStore{agg: agg}
}

// mapBaselineView is a plain map baseline index (Aggregator.DayBaselines).
type mapBaselineView map[nsset.Key]*nsset.DayBaseline

func (m mapBaselineView) Baseline(k nsset.Key) *nsset.DayBaseline { return m[k] }

func (s aggDayStore) Baselines(d clock.Day) BaselineView {
	return mapBaselineView(s.agg.DayBaselines(d))
}

func (s aggDayStore) Baseline(k nsset.Key, d clock.Day) *nsset.DayBaseline {
	return s.agg.Baseline(k, d)
}

// aggKeySeries lifts nsset.Series into KeySeries; the aggregator tracks
// spans, so Span always reports ok.
type aggKeySeries struct {
	nsset.Series
}

func (s aggKeySeries) Span() (min, max clock.Window, ok bool) {
	min, max = s.Series.Span()
	return min, max, true
}

func (s aggDayStore) Series(k nsset.Key) KeySeries {
	return aggKeySeries{Series: s.agg.Series(k)}
}

func (s aggDayStore) Window(k nsset.Key, w clock.Window) *nsset.WindowMetrics {
	return s.agg.Window(k, w)
}

func (s aggDayStore) Keys() []nsset.Key { return s.agg.Keys() }

func (s aggDayStore) Days() []clock.Day { return s.agg.Days() }
