// index.go holds the two immutable indexes the sharded join engine is
// built on (DESIGN §3.4):
//
//   - NSIndex: the nameserver-side join index derived from the world DB
//     (and, when available, the openintel engine's per-domain NSSet
//     cache): nameserver address → the NSSets containing it, NSSet →
//     hosted-domain count, and the /24s that contain at least one
//     nameserver. Built once per world and shared read-only by every
//     worker shard; per-day measurement overlays (baseline snapshots)
//     ride on top of it through the pipeline's LRU day cache (join.go).
//
//   - AttackIndex: an interval index over an RSDoS attack feed, keyed by
//     victim IP, each victim's attacks held as 5-minute-window intervals
//     sorted by start. It answers "which attacks hit this victim" and
//     "which attacks are active in this window" without rescanning the
//     feed — the amplification-era feeds the related work describes
//     (Nawrocki et al., Kopp et al.) are high-volume and bursty, so the
//     engine indexes them once instead of scanning per event.
package core

import (
	"math/bits"
	"sort"

	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/rsdos"
)

// NSIndex is the immutable nameserver-side join index. Build it once per
// world with BuildNSIndex and share it across pipelines and worker
// shards; nothing mutates it after construction.
type NSIndex struct {
	// nssetDomains maps each NSSet to the number of domains hosted on it.
	nssetDomains map[nsset.Key]int
	// nssetsByAddr maps a nameserver address to the sorted NSSets
	// containing it.
	nssetsByAddr map[netx.Addr][]nsset.Key
	// slash24HasNS marks /24s containing at least one nameserver.
	slash24HasNS map[netx.Prefix]bool
	// nsFilter is a one-bit-per-bucket filter over nameserver addresses.
	// Attack feeds are dominated by victims that are not DNS
	// infrastructure, so the join prefilters every victim with one shift
	// and one bit test before touching any map; only the few survivors
	// (true nameservers plus ~6% hash collisions) pay a real lookup.
	nsFilter      []uint64
	nsFilterShift uint
}

// mayBeNS is the prefilter probe: false means a is definitely not a
// nameserver address; true means "check properly".
func (ix *NSIndex) mayBeNS(a netx.Addr) bool {
	h := uint32(a) * 2654435761 // Knuth multiplicative hash
	idx := h >> ix.nsFilterShift
	return ix.nsFilter[idx>>6]&(1<<(idx&63)) != 0
}

// BuildNSIndex derives the nameserver-side index from the world DB.
// domainNSSets, when non-nil, is the precomputed per-domain NSSet key
// slice (openintel.Engine.DomainNSSets), indexed by DomainID, which
// skips the O(domains × set size) key recomputation; nil recomputes the
// keys from the DB.
func BuildNSIndex(db *dnsdb.DB, domainNSSets []nsset.Key) *NSIndex {
	ix := &NSIndex{
		nssetDomains: make(map[nsset.Key]int),
		nssetsByAddr: make(map[netx.Addr][]nsset.Key),
		slash24HasNS: make(map[netx.Prefix]bool),
	}
	for i := range db.Domains {
		var k nsset.Key
		if domainNSSets != nil {
			k = domainNSSets[i]
		} else {
			k = nsset.KeyOf(db.NSAddrs(dnsdb.DomainID(i)))
		}
		ix.nssetDomains[k]++
	}
	for k := range ix.nssetDomains {
		for _, a := range k.Addrs() {
			ix.nssetsByAddr[a] = append(ix.nssetsByAddr[a], k)
		}
	}
	// size the prefilter at ≥16 bits per nameserver address (~6% false
	// positives), minimum 1024 bits
	nbits := 1024
	for nbits < 16*len(ix.nssetsByAddr) {
		nbits <<= 1
	}
	ix.nsFilter = make([]uint64, nbits/64)
	ix.nsFilterShift = 32 - uint(bits.TrailingZeros(uint(nbits)))
	for a, sets := range ix.nssetsByAddr {
		sort.Slice(sets, func(i, j int) bool { return sets[i] < sets[j] })
		ix.slash24HasNS[a.Slash24()] = true
		h := uint32(a) * 2654435761
		idx := h >> ix.nsFilterShift
		ix.nsFilter[idx>>6] |= 1 << (idx & 63)
	}
	return ix
}

// NSSetsContaining returns the NSSets containing a nameserver address,
// sorted. The slice is shared; treat it as read-only.
func (ix *NSIndex) NSSetsContaining(a netx.Addr) []nsset.Key {
	return ix.nssetsByAddr[a]
}

// DomainCount returns how many registered domains delegate to NSSet k.
func (ix *NSIndex) DomainCount(k nsset.Key) int { return ix.nssetDomains[k] }

// HasNSInSlash24 reports whether the /24 containing a holds at least one
// nameserver.
func (ix *NSIndex) HasNSInSlash24(a netx.Addr) bool {
	return ix.slash24HasNS[a.Slash24()]
}

// attackRef is one indexed attack: its position in the source feed plus
// its window interval, denormalized so interval queries never touch the
// feed slice.
type attackRef struct {
	idx        int32
	start, end clock.Window
}

// victimIntervals is one victim's attack list, sorted by (start window,
// feed position), with a running maximum of end windows for O(log n + k)
// interval stabbing.
type victimIntervals struct {
	refs []attackRef
	// maxEnd[i] is the maximum end window over refs[0..i], the classic
	// augmentation that lets ActiveAt stop scanning as soon as no earlier
	// interval can still cover the probe window.
	maxEnd []clock.Window
}

// AttackIndex is an immutable interval index over an RSDoS attack feed,
// keyed by victim IP. Build it once with BuildAttackIndex; it references
// the feed slice (no copy) and must not outlive mutations to it.
type AttackIndex struct {
	attacks []rsdos.Attack
	byVic   map[netx.Addr]*victimIntervals
	victims []netx.Addr // sorted ascending
}

// BuildAttackIndex indexes the feed by victim. The feed slice is
// referenced, not copied.
func BuildAttackIndex(attacks []rsdos.Attack) *AttackIndex {
	return BuildAttackIndexFunc(attacks, nil)
}

// BuildAttackIndexFunc indexes the feed by victim, keeping only victims
// keep returns true for (nil keeps everything). keep is called once per
// feed entry and must be pure; the join engine passes a memoized
// DNS-infrastructure test here so the per-victim interval structures are
// only ever built for the tiny relevant subset of a bursty feed.
func BuildAttackIndexFunc(attacks []rsdos.Attack, keep func(netx.Addr) bool) *AttackIndex {
	ix := &AttackIndex{
		attacks: attacks,
		byVic:   make(map[netx.Addr]*victimIntervals),
	}
	for i := range attacks {
		// index, don't copy: feed entries are large and most are skipped
		a := &attacks[i]
		if keep != nil && !keep(a.Victim) {
			continue
		}
		vi := ix.byVic[a.Victim]
		if vi == nil {
			vi = &victimIntervals{}
			ix.byVic[a.Victim] = vi
		}
		vi.refs = append(vi.refs, attackRef{idx: int32(i), start: a.StartWindow, end: a.EndWindow})
	}
	ix.victims = make([]netx.Addr, 0, len(ix.byVic))
	for v, vi := range ix.byVic {
		ix.victims = append(ix.victims, v)
		sort.Slice(vi.refs, func(i, j int) bool {
			if vi.refs[i].start != vi.refs[j].start {
				return vi.refs[i].start < vi.refs[j].start
			}
			return vi.refs[i].idx < vi.refs[j].idx
		})
		vi.maxEnd = make([]clock.Window, len(vi.refs))
		running := clock.Window(-1 << 62)
		for i, r := range vi.refs {
			if r.end > running {
				running = r.end
			}
			vi.maxEnd[i] = running
		}
	}
	sort.Slice(ix.victims, func(i, j int) bool { return ix.victims[i] < ix.victims[j] })
	return ix
}

// Len returns the length of the underlying feed (including entries a
// filtered build skipped).
func (ix *AttackIndex) Len() int { return len(ix.attacks) }

// Victims returns all attacked IPs, ascending. The slice is shared;
// treat it as read-only.
func (ix *AttackIndex) Victims() []netx.Addr { return ix.victims }

// AttacksOn returns the feed positions of every attack on victim v,
// sorted by (start window, feed position).
func (ix *AttackIndex) AttacksOn(v netx.Addr) []int32 {
	vi := ix.byVic[v]
	if vi == nil {
		return nil
	}
	out := make([]int32, len(vi.refs))
	for i, r := range vi.refs {
		out[i] = r.idx
	}
	return out
}

// ActiveAt returns the feed positions of every attack on victim v whose
// inclusive window interval covers w, in feed order. It binary-searches
// the victim's start-sorted intervals and walks back only while the
// running end maximum says an earlier interval could still cover w.
func (ix *AttackIndex) ActiveAt(v netx.Addr, w clock.Window) []int32 {
	vi := ix.byVic[v]
	if vi == nil {
		return nil
	}
	// first interval starting after w can't cover it; scan backward from
	// there
	hi := sort.Search(len(vi.refs), func(i int) bool { return vi.refs[i].start > w })
	var out []int32
	for i := hi - 1; i >= 0; i-- {
		if vi.maxEnd[i] < w {
			break
		}
		if vi.refs[i].end >= w {
			out = append(out, vi.refs[i].idx)
		}
	}
	// collected backwards; restore feed order (ascending idx within equal
	// starts is how refs are sorted, so simply reverse)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
