package core

import (
	"reflect"
	"testing"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/rsdos"
)

// TestAttackIndexActiveAt exercises the interval-stabbing query against a
// brute-force scan over a victim with overlapping, nested, and disjoint
// attack intervals — the shapes the maxEnd augmentation exists for.
func TestAttackIndexActiveAt(t *testing.T) {
	v := netx.MustParseAddr("192.0.2.53")
	other := netx.MustParseAddr("192.0.2.54")
	w := func(n int) clock.Window { return clock.Window(1000 + n) }
	mk := func(id int, vic netx.Addr, s, e clock.Window) rsdos.Attack {
		return rsdos.Attack{ID: id, Victim: vic, StartWindow: s, EndWindow: e}
	}
	attacks := []rsdos.Attack{
		mk(1, v, w(0), w(100)), // long interval covering everything below
		mk(2, other, w(0), w(5)),
		mk(3, v, w(10), w(20)),
		mk(4, v, w(10), w(12)), // same start as 3, nested end
		mk(5, v, w(30), w(30)), // point interval
		mk(6, v, w(50), w(60)),
	}
	ix := BuildAttackIndex(attacks)

	if got := ix.Len(); got != len(attacks) {
		t.Fatalf("Len() = %d, want %d", got, len(attacks))
	}
	if got, want := ix.Victims(), []netx.Addr{v, other}; len(got) != 2 || got[0] > got[1] {
		t.Fatalf("Victims() = %v, want the two victims ascending (%v)", got, want)
	}
	if got := ix.AttacksOn(v); !reflect.DeepEqual(got, []int32{0, 2, 3, 4, 5}) {
		t.Fatalf("AttacksOn(v) = %v, want feed positions sorted by start", got)
	}

	brute := func(vic netx.Addr, probe clock.Window) []int32 {
		var out []int32
		for i := range attacks {
			a := &attacks[i]
			if a.Victim == vic && a.StartWindow <= probe && probe <= a.EndWindow {
				out = append(out, int32(i))
			}
		}
		return out
	}
	for probe := -2; probe <= 105; probe++ {
		pw := w(probe)
		for _, vic := range []netx.Addr{v, other, netx.MustParseAddr("203.0.113.1")} {
			got := ix.ActiveAt(vic, pw)
			want := brute(vic, pw)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ActiveAt(%v, %d) = %v, want %v", vic, probe, got, want)
			}
		}
	}
}
