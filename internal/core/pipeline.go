// Package core implements the paper's primary contribution: the data-join
// pipeline of Figure 1 and §4. It joins RSDoS attack inferences with the
// active DNS measurement data to answer, per attack: which nameservers and
// domains were under attack, and what happened to resolution performance
// (Eq. 1 impact) and availability (timeout/SERVFAIL rates) while it lasted.
//
// Pipeline steps (§4):
//  1. aggregate OpenINTEL measurements per NSSet in 5-minute windows
//     (internal/nsset, fed by internal/openintel);
//  2. map attacked IPs to nameservers under attack using the previous
//     day's nameserver list;
//  3. extract the domains those nameservers host;
//  4. use the per-NSSet RTT data to infer performance impairment.
//
// Two join engines share the EventsContext signature: the default
// interval-indexed sharded engine (join.go) and the historical linear
// scan (the WithLegacyJoin escape hatch), which is retained as the
// reference implementation the parity tests compare against.
package core

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"dnsddos/internal/anycast"
	"dnsddos/internal/astopo"
	"dnsddos/internal/cache"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/openres"
	"dnsddos/internal/rsdos"
)

// Class is the target classification of an attack.
type Class int

// Attack target classes.
const (
	// ClassOther: the victim IP is not DNS infrastructure.
	ClassOther Class = iota
	// ClassDNSDirect: the victim IP is an authoritative nameserver.
	ClassDNSDirect
	// ClassDNSSlash24: the victim shares a /24 with a nameserver but is
	// not one itself.
	ClassDNSSlash24
	// ClassOpenResolver: the victim is a public open resolver that
	// appears in NS records only through misconfiguration; filtered
	// from the authoritative analysis (§6.1).
	ClassOpenResolver
)

// String renders the class label.
func (c Class) String() string {
	switch c {
	case ClassOther:
		return "other"
	case ClassDNSDirect:
		return "dns-direct"
	case ClassDNSSlash24:
		return "dns-slash24"
	case ClassOpenResolver:
		return "open-resolver"
	default:
		return "unknown"
	}
}

// ClassifiedAttack pairs an RSDoS attack with its target classification.
type ClassifiedAttack struct {
	rsdos.Attack
	Class Class
	// NSRecorded reports whether the victim IP appears in NS records of
	// registered domains (true for authoritative servers and for open
	// resolvers that misconfigured domains delegate to).
	NSRecorded bool
	// NS is the attacked nameserver for NS-recorded victims.
	NS dnsdb.NameserverID
}

// DNSInfra reports whether the attack counts as "toward an IP used as a DNS
// nameserver" (the Table 3/4/5 population, which includes NS-recorded open
// resolvers before the §6.1 filtering).
func (ca *ClassifiedAttack) DNSInfra() bool {
	return ca.NSRecorded
}

// Config tunes the pipeline.
type Config struct {
	// MinMeasuredDomains is the noise filter of §6.3: NSSets with fewer
	// measured domains during the attack are dropped from the
	// performance analysis.
	MinMeasuredDomains int
	// FilterOpenResolvers removes open-resolver victims from the
	// DNS-infrastructure analysis (on in the paper; the ablation bench
	// turns it off).
	FilterOpenResolvers bool
	// UsePrevDaySnapshot selects the §4.2 join rule (nameserver list of
	// the day before the attack). The ablation uses same-day instead.
	UsePrevDaySnapshot bool
	// BaselineDaysBack selects the Eq. 1 denominator: 1 = day before
	// (paper default); 7 = week before (ablation).
	BaselineDaysBack int
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		MinMeasuredDomains:  5,
		FilterOpenResolvers: true,
		UsePrevDaySnapshot:  true,
		BaselineDaysBack:    1,
	}
}

// defaultDayCacheSize bounds the LRU day-snapshot cache: large enough to
// hold every join-relevant day of the 17-month study window (~515 days
// plus baselines), small enough that a pathological feed cannot pin one
// snapshot per day of a decade-long range.
const defaultDayCacheSize = 1024

// Pipeline is the frozen join context: world, measurements, and metadata.
// Construct it with NewPipeline; all fields are internal and set through
// functional options, so new engine knobs never widen a constructor
// signature again.
type Pipeline struct {
	cfg     Config
	db      *dnsdb.DB
	agg     *nsset.Aggregator
	census  *anycast.Census
	topo    *astopo.Table
	openRes *openres.List

	// days is the day-snapshot surface both join engines read
	// (daystore.go): the aggregator-backed in-memory store by default, or
	// a columnar file-backed store attached via WithDayStore.
	days DayStore
	// inMemoryDays forces the aggregator-backed store even when a
	// WithDayStore backend was supplied — the parity-testing escape hatch.
	inMemoryDays bool

	// ix is the immutable nameserver-side join index (index.go), built at
	// construction unless an existing one is shared in via WithNSIndex.
	ix *NSIndex
	// domainNSSets, when set, is the openintel engine's per-domain key
	// cache, reused instead of recomputing keys from the DB.
	domainNSSets []nsset.Key

	// legacyJoin switches EventsContext to the historical linear scan.
	legacyJoin bool
	// joinWorkers bounds the sharded engine's worker pool (0 = GOMAXPROCS).
	joinWorkers int
	// shardBits is the victim-prefix width shards are keyed by (default
	// 16, i.e. one shard per victim /16).
	shardBits int
	// dayCache memoizes per-day baseline views across events and across
	// EventsContext calls (resumed/checkpointed runs revisit the same
	// days). For file-backed stores it holds lazily opened views, not
	// rebuilt structs.
	dayCache *cache.LRU[clock.Day, BaselineView]
	// joinIdx memoizes the last feed's attack index and shard plan
	// (join.go): repeat joins over the same feed slice skip the feed scan
	// entirely and go straight to the shard workers.
	joinIdx atomic.Pointer[joinIndex]
	// metrics receives join instrumentation (joinMetrics, join.go); nil
	// disables it.
	metrics joinMetrics

	// quarantined marks days whose measurement sweep was skipped
	// (panicked or timed out under the supervised study run); snapshot
	// and baseline lookups walk back past them.
	quarantined map[clock.Day]bool
}

// Option configures a Pipeline at construction.
type Option func(*Pipeline)

// WithConfig sets the pipeline configuration (default DefaultConfig).
func WithConfig(cfg Config) Option {
	return func(p *Pipeline) { p.cfg = cfg }
}

// WithAggregator attaches the measurement aggregator the join reads
// (default: an empty aggregator, joining zero measurements).
func WithAggregator(agg *nsset.Aggregator) Option {
	return func(p *Pipeline) { p.agg = agg }
}

// WithCensus attaches the anycast census for §6.6 enrichment; nil
// degrades gracefully.
func WithCensus(c *anycast.Census) Option {
	return func(p *Pipeline) { p.census = c }
}

// WithTopology attaches the AS topology table for origin-AS enrichment;
// nil degrades gracefully.
func WithTopology(t *astopo.Table) Option {
	return func(p *Pipeline) { p.topo = t }
}

// WithOpenResolvers attaches the open-resolver list the §6.1 filter
// consults; nil disables the filter.
func WithOpenResolvers(l *openres.List) Option {
	return func(p *Pipeline) { p.openRes = l }
}

// WithDayStore attaches the day-snapshot backend the join engines read —
// typically a columnar file-backed store (internal/daystore.Set) whose
// sealed per-day files were written by the sweep, so the join maps views
// instead of holding every day's structs in RAM. The default (nil) serves
// days from the live aggregator. Both backends are observation-equivalent
// and produce byte-identical events (TestJoinParityColumnar).
func WithDayStore(ds DayStore) Option {
	return func(p *Pipeline) { p.days = ds }
}

// WithInMemoryDays forces the aggregator-backed in-memory day store even
// when a WithDayStore backend is also configured — the parity-testing
// escape hatch, mirroring WithLegacyJoin.
func WithInMemoryDays() Option {
	return func(p *Pipeline) { p.inMemoryDays = true }
}

// WithLegacyJoin selects the historical linear-scan join engine instead
// of the interval-indexed sharded engine — the escape hatch (and the
// reference implementation parity tests compare against).
func WithLegacyJoin() Option {
	return func(p *Pipeline) { p.legacyJoin = true }
}

// WithJoinWorkers bounds the sharded engine's worker pool; 0 (default)
// uses GOMAXPROCS.
func WithJoinWorkers(n int) Option {
	return func(p *Pipeline) { p.joinWorkers = n }
}

// WithShardBits sets the victim-prefix width the sharded engine groups
// work by (default 16: one shard per victim /16). Valid range 0..32;
// out-of-range values are clamped.
func WithShardBits(bits int) Option {
	return func(p *Pipeline) { p.shardBits = bits }
}

// WithDayCacheSize bounds the LRU day-snapshot cache (default 1024
// days); 0 keeps the default, negative makes it unbounded.
func WithDayCacheSize(n int) Option {
	return func(p *Pipeline) {
		if n != 0 {
			p.dayCache = cache.NewLRU[clock.Day, BaselineView](max(n, 0))
		}
	}
}

// WithMetrics threads an observability registry through the join engine:
// index build time, day-cache hit ratio, per-shard join latency, event
// counts — all registered volatile (run-dependent timings and cache
// interleavings stay out of deterministic stable snapshots).
func WithMetrics(reg *obs.Registry) Option {
	return func(p *Pipeline) { p.metrics = newJoinMetrics(reg) }
}

// WithNSIndex shares a prebuilt nameserver-side index instead of
// building one — ablation sweeps constructing many pipelines over the
// same world pay the index build once.
func WithNSIndex(ix *NSIndex) Option {
	return func(p *Pipeline) { p.ix = ix }
}

// WithDomainNSSets reuses a precomputed per-domain NSSet key slice
// (openintel.Engine.DomainNSSets) for the index build, skipping the
// O(domains × set size) key recomputation. Ignored when WithNSIndex
// supplies a finished index.
func WithDomainNSSets(keys []nsset.Key) Option {
	return func(p *Pipeline) { p.domainNSSets = keys }
}

// WithQuarantinedDays marks days without usable measurements at
// construction (equivalent to calling SetQuarantinedDays afterwards).
func WithQuarantinedDays(days []clock.Day) Option {
	return func(p *Pipeline) {
		for _, d := range days {
			if p.quarantined == nil {
				p.quarantined = make(map[clock.Day]bool, len(days))
			}
			p.quarantined[d] = true
		}
	}
}

// NewPipeline builds the join context over the world DB. All tuning —
// configuration, measurement aggregator, metadata sources, engine
// selection — arrives through options; the zero-option pipeline joins
// with the paper's DefaultConfig against an empty aggregator and no
// metadata (enrichment degrades gracefully).
func NewPipeline(db *dnsdb.DB, opts ...Option) *Pipeline {
	p := &Pipeline{
		cfg: DefaultConfig(),
		db:  db,
	}
	for _, o := range opts {
		o(p)
	}
	if p.agg == nil {
		p.agg = nsset.NewAggregator()
	}
	if p.days == nil || p.inMemoryDays {
		p.days = NewAggregatorDayStore(p.agg)
	}
	if p.ix == nil {
		p.ix = BuildNSIndex(db, p.domainNSSets)
	}
	if p.dayCache == nil {
		p.dayCache = cache.NewLRU[clock.Day, BaselineView](defaultDayCacheSize)
	}
	if p.shardBits <= 0 {
		p.shardBits = 16
	}
	if p.shardBits > 32 {
		p.shardBits = 32
	}
	return p
}

// SetQuarantinedDays marks days without usable measurements (quarantined
// day-shards of a supervised run). Snapshot-day and baseline-day lookups
// step back past them — the same move OpenINTEL makes when a devastated
// zone could not be measured and the previous day's NS list stands in
// (§3.2) — so a single lost day does not silently drop every event whose
// join day it was. Call before Events.
func (p *Pipeline) SetQuarantinedDays(days []clock.Day) {
	if p.quarantined == nil {
		p.quarantined = make(map[clock.Day]bool, len(days))
	}
	for _, d := range days {
		p.quarantined[d] = true
	}
}

// maxQuarantineFallback bounds how many consecutive quarantined days a
// lookup walks past before giving up (a week of lost sweeps means the
// baseline is no longer comparable anyway).
const maxQuarantineFallback = 7

// measurableDay returns d, or the nearest earlier non-quarantined day.
func (p *Pipeline) measurableDay(d clock.Day) clock.Day {
	for i := 0; i < maxQuarantineFallback && p.quarantined[d]; i++ {
		d = d.Prev()
	}
	return d
}

// classifyVictim classifies a single victim address — the per-victim
// core of Classify, shared with the indexed join engine (which
// classifies each distinct victim once instead of once per attack).
func (p *Pipeline) classifyVictim(v netx.Addr) (class Class, nsRecorded bool, ns dnsdb.NameserverID) {
	if n, ok := p.db.NameserverByAddr(v); ok {
		nsRecorded = true
		ns = n.ID
	}
	switch {
	case p.cfg.FilterOpenResolvers && p.openRes != nil && p.openRes.Contains(v):
		class = ClassOpenResolver
	case nsRecorded:
		class = ClassDNSDirect
	case p.ix.HasNSInSlash24(v):
		class = ClassDNSSlash24
	default:
		class = ClassOther
	}
	return class, nsRecorded, ns
}

// Classify assigns each attack its target class (step 2 of the join).
func (p *Pipeline) Classify(attacks []rsdos.Attack) []ClassifiedAttack {
	out := make([]ClassifiedAttack, 0, len(attacks))
	for _, a := range attacks {
		ca := ClassifiedAttack{Attack: a}
		ca.Class, ca.NSRecorded, ca.NS = p.classifyVictim(a.Victim)
		out = append(out, ca)
	}
	return out
}

// Event is one joined (attack, NSSet) observation — the unit of the §6.3
// performance analysis (the paper's "12,691 distinct events of attacks to
// distinct NSSets").
type Event struct {
	Attack ClassifiedAttack
	NSSet  nsset.Key
	// HostedDomains is how many registered domains delegate to this
	// NSSet (the x-axis of Figs. 7–8).
	HostedDomains int
	// MeasuredDomains is how many domain measurements fell inside the
	// attack windows.
	MeasuredDomains int
	// OK/Timeouts/ServFails total the outcomes inside attack windows.
	OK        int
	Timeouts  int
	ServFails int
	// Impact is the Eq. 1 maximum over attack windows; HasImpact is
	// false when no window had both measurements and a baseline.
	Impact    float64
	HasImpact bool
	// FailureRate is the worst per-window failure fraction.
	FailureRate float64
	// Diversity and AnycastClass summarize the §6.6 resilience
	// dimensions at attack time.
	Diversity    nsset.Diversity
	AnycastClass nsset.AnycastClass
	// ASNs are the origin ASes of the NSSet members.
	ASNs []astopo.ASN
	// Provider is the operator of the attacked nameserver.
	Provider string
}

// FailedCompletely reports whether every measured domain failed (the
// "complete failure in resolution" cases of §6.3.1).
func (e *Event) FailedCompletely() bool {
	return e.MeasuredDomains > 0 && e.OK == 0
}

// Events runs steps 2–4 of the join for the given attacks, producing one
// event per (attack, NSSet) with at least MinMeasuredDomains measurements
// during the attack.
func (p *Pipeline) Events(attacks []rsdos.Attack) []Event {
	out, _ := p.EventsContext(context.Background(), attacks)
	return out
}

// EventsContext is Events with cooperative cancellation. Both engines
// share this signature and produce byte-identical results: the default
// interval-indexed sharded engine (join.go), or the historical linear
// scan when the pipeline was built WithLegacyJoin. A cancelled join
// returns the events built so far together with ctx.Err(); callers must
// treat such a slice as partial (and the two engines' partial prefixes
// may differ — only completed joins are identical).
func (p *Pipeline) EventsContext(ctx context.Context, attacks []rsdos.Attack) ([]Event, error) {
	if p.legacyJoin {
		return p.eventsLegacy(ctx, attacks)
	}
	return p.eventsIndexed(ctx, attacks)
}

// eventsLegacy is the reference join: a linear scan classifying every
// attack, probing the aggregator window by window.
func (p *Pipeline) eventsLegacy(ctx context.Context, attacks []rsdos.Attack) ([]Event, error) {
	var out []Event
	for i, ca := range p.Classify(attacks) {
		if i&255 == 0 {
			select {
			case <-ctx.Done():
				return out, ctx.Err()
			default:
			}
		}
		if ca.Class != ClassDNSDirect {
			continue
		}
		for _, k := range p.ix.NSSetsContaining(ca.Victim) {
			if e, ok := p.buildEvent(ca, k); ok {
				out = append(out, e)
			}
		}
	}
	return out, nil
}

func (p *Pipeline) buildEvent(ca ClassifiedAttack, k nsset.Key) (Event, bool) {
	// The NSSet must appear in the nameserver list of the snapshot day:
	// the paper uses the day *before* the attack, so that servers
	// unreachable during the attack are not missed (§4.2). The same-day
	// ablation requires a successful observation on the attack day
	// itself — which a devastating attack can prevent.
	snapDay := ca.StartWindow.Day()
	if p.cfg.UsePrevDaySnapshot {
		snapDay = snapDay.Prev()
	}
	snapDay = p.measurableDay(snapDay)
	if b := p.days.Baseline(k, snapDay); b == nil || b.OKCount == 0 {
		return Event{}, false
	}
	e := Event{
		Attack:        ca,
		NSSet:         k,
		HostedDomains: p.ix.DomainCount(k),
	}
	impact := 0.0
	hasImpact := false
	worstFail := 0.0
	for w := ca.StartWindow; w <= ca.EndWindow; w++ {
		m := p.days.Window(k, w)
		if m == nil {
			continue
		}
		e.MeasuredDomains += m.Domains
		e.OK += m.OKCount
		e.Timeouts += m.Timeouts
		e.ServFails += m.ServFails
		if fr := m.FailureRate(); fr > worstFail {
			worstFail = fr
		}
		if imp, ok := p.impactAt(k, w); ok {
			hasImpact = true
			if imp > impact {
				impact = imp
			}
		}
	}
	if e.MeasuredDomains < p.cfg.MinMeasuredDomains {
		return Event{}, false
	}
	e.Impact, e.HasImpact, e.FailureRate = impact, hasImpact, worstFail
	p.enrich(&e, ca.Start())
	return e, true
}

// impactAt applies the configured Eq. 1 baseline rule — the same guards
// and float arithmetic as nsset.ImpactVsDay, read through the day store.
func (p *Pipeline) impactAt(k nsset.Key, w clock.Window) (float64, bool) {
	back := p.cfg.BaselineDaysBack
	if back <= 0 {
		back = 1
	}
	m := p.days.Window(k, w)
	if m == nil || m.OKCount == 0 {
		return 0, false
	}
	b := p.days.Baseline(k, p.measurableDay(w.Day()-clock.Day(back)))
	if b == nil || b.OKCount == 0 {
		return 0, false
	}
	base := b.AvgRTT()
	if base <= 0 {
		return 0, false
	}
	return float64(m.AvgRTT()) / float64(base), true
}

// enrich fills diversity, anycast, AS and provider metadata.
func (p *Pipeline) enrich(e *Event, at time.Time) {
	addrs := e.NSSet.Addrs()
	d := nsset.Diversity{NumNS: len(addrs)}
	asns := make(map[astopo.ASN]struct{})
	prefixes := make(map[netx.Prefix]struct{})
	for _, a := range addrs {
		prefixes[a.Slash24()] = struct{}{}
		if p.topo != nil {
			if asn, ok := p.topo.Lookup(a); ok {
				asns[asn] = struct{}{}
			}
		}
		if p.census != nil && p.census.IsAnycastAt(a, at) {
			d.NumAnycast++
		}
	}
	d.NumASNs = len(asns)
	d.NumPrefixes = len(prefixes)
	e.Diversity = d
	e.AnycastClass = d.Class()
	e.ASNs = make([]astopo.ASN, 0, len(asns))
	for a := range asns {
		e.ASNs = append(e.ASNs, a)
	}
	sort.Slice(e.ASNs, func(i, j int) bool { return e.ASNs[i] < e.ASNs[j] })
	if e.Attack.Class == ClassDNSDirect {
		e.Provider = p.db.ProviderOf(e.Attack.NS).Name
	}
}

// DomainsUnderAttack returns, for a DNS-direct attack, the number of
// registered domains whose NSSet includes the victim (step 3 of the join;
// the Fig. 5 quantity "domains potentially affected").
func (p *Pipeline) DomainsUnderAttack(ca ClassifiedAttack) int {
	if ca.Class != ClassDNSDirect {
		return 0
	}
	return len(p.db.DomainsOf(ca.NS))
}

// Config returns the pipeline configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// DB returns the world database.
func (p *Pipeline) DB() *dnsdb.DB { return p.db }

// Aggregator returns the measurement aggregator.
//
// Deprecated: day-level reads belong on DayStore — the aggregator is not
// the day surface the join consumes (a columnar-backed pipeline may hold
// an empty aggregator), and reaching past the store breaks backend parity.
func (p *Pipeline) Aggregator() *nsset.Aggregator { return p.agg }

// DayStore returns the day-snapshot surface the join engines read: the
// aggregator-backed in-memory store by default, or the WithDayStore
// backend.
func (p *Pipeline) DayStore() DayStore { return p.days }

// NSIndex returns the pipeline's immutable nameserver-side join index,
// shareable across pipelines via WithNSIndex.
func (p *Pipeline) NSIndex() *NSIndex { return p.ix }

// NSSetsContaining returns the NSSets containing a nameserver address.
func (p *Pipeline) NSSetsContaining(a netx.Addr) []nsset.Key {
	return p.ix.NSSetsContaining(a)
}

// NSSetDomainCount returns how many domains an NSSet hosts.
func (p *Pipeline) NSSetDomainCount(k nsset.Key) int { return p.ix.DomainCount(k) }
