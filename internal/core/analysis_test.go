package core

import (
	"testing"
	"time"

	"dnsddos/internal/astopo"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/packet"
	"dnsddos/internal/rsdos"
)

func classified(victimIsDNS bool, month time.Month, year int, proto packet.Protocol, port uint16, uniquePorts int, dur time.Duration) ClassifiedAttack {
	start := time.Date(year, month, 10, 12, 0, 0, 0, time.UTC)
	ca := ClassifiedAttack{
		Attack: rsdos.Attack{
			Victim:      netx.MustParseAddr("192.0.2.1"),
			StartWindow: clock.WindowOf(start),
			EndWindow:   clock.WindowOf(start.Add(dur)) - 1,
			Proto:       proto,
			FirstPort:   port,
			UniquePorts: uniquePorts,
		},
	}
	if victimIsDNS {
		ca.Class = ClassDNSDirect
		ca.NSRecorded = true
	}
	return ca
}

func TestSummarizeDataset(t *testing.T) {
	tb := astopo.NewBuilder()
	tb.Announce(netx.MustParsePrefix("192.0.0.0/8"), 64500)
	tb.Announce(netx.MustParsePrefix("198.51.0.0/16"), 64501)
	topo := tb.Build()
	attacks := []rsdos.Attack{
		{Victim: netx.MustParseAddr("192.0.2.1")},
		{Victim: netx.MustParseAddr("192.0.2.1")}, // repeat IP
		{Victim: netx.MustParseAddr("192.0.2.9")}, // same /24
		{Victim: netx.MustParseAddr("198.51.100.1")},
	}
	ds := SummarizeDataset(attacks, topo)
	if ds.Attacks != 4 || ds.IPs != 3 || ds.Slash24s != 2 || ds.ASes != 2 {
		t.Errorf("summary = %+v", ds)
	}
}

func TestMonthlySummary(t *testing.T) {
	cas := []ClassifiedAttack{
		classified(true, time.November, 2020, packet.ProtoTCP, 53, 1, time.Hour),
		classified(false, time.November, 2020, packet.ProtoTCP, 80, 1, time.Hour),
		classified(false, time.November, 2020, packet.ProtoTCP, 80, 1, time.Hour),
		classified(true, time.December, 2020, packet.ProtoTCP, 53, 1, time.Hour),
	}
	rows := MonthlySummary(cas)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	nov := rows[0]
	if nov.Month != (clock.Month{Year: 2020, Month: time.November}) {
		t.Errorf("first row month = %v", nov.Month)
	}
	if nov.DNSAttacks != 1 || nov.OtherAttack != 2 || nov.TotalAttacks() != 3 {
		t.Errorf("nov = %+v", nov)
	}
	if s := nov.DNSShare(); s < 0.33 || s > 0.34 {
		t.Errorf("share = %v", s)
	}
}

func TestPortDistribution(t *testing.T) {
	cas := []ClassifiedAttack{
		classified(true, time.January, 2021, packet.ProtoTCP, 80, 1, time.Hour),
		classified(true, time.January, 2021, packet.ProtoTCP, 53, 1, time.Hour),
		classified(true, time.January, 2021, packet.ProtoTCP, 80, 1, time.Hour),
		classified(true, time.January, 2021, packet.ProtoUDP, 53, 1, time.Hour),
		classified(true, time.January, 2021, packet.ProtoTCP, 0, 4, time.Hour),   // multi-port
		classified(false, time.January, 2021, packet.ProtoTCP, 80, 1, time.Hour), // not DNS: excluded
	}
	ps := PortDistribution(cas, nil)
	if ps.Total != 5 {
		t.Errorf("total = %d", ps.Total)
	}
	if ps.SinglePort != 4 || ps.SinglePortShare() != 0.8 {
		t.Errorf("single port = %d (%.2f)", ps.SinglePort, ps.SinglePortShare())
	}
	if got := ps.PortShare(packet.ProtoTCP, 80); got != 2.0/3 {
		t.Errorf("TCP/80 share = %v", got)
	}
	if got := ps.ProtoShare(packet.ProtoUDP); got != 0.2 {
		t.Errorf("UDP share = %v", got)
	}
	// include filter
	only53 := PortDistribution(cas, func(ca ClassifiedAttack) bool { return ca.FirstPort == 53 })
	if only53.Total != 2 {
		t.Errorf("filtered total = %d", only53.Total)
	}
}

func mkEvent(hosted, measured, okN, to, sf int, impact float64, class nsset.AnycastClass, asns, prefixes int, provider string) Event {
	return Event{
		HostedDomains:   hosted,
		MeasuredDomains: measured,
		OK:              okN, Timeouts: to, ServFails: sf,
		Impact: impact, HasImpact: impact > 0,
		FailureRate:  float64(to+sf) / float64(measured),
		AnycastClass: class,
		Diversity:    nsset.Diversity{NumNS: 2, NumASNs: asns, NumPrefixes: prefixes, NumAnycast: map[bool]int{true: 2, false: 0}[class == nsset.FullAnycast]},
		Provider:     provider,
	}
}

func TestBreakdownFailures(t *testing.T) {
	events := []Event{
		mkEvent(100, 10, 10, 0, 0, 1.1, nsset.FullAnycast, 2, 2, "Big"),
		mkEvent(50, 10, 0, 9, 1, 0, nsset.Unicast, 1, 1, "Vuln"),  // complete failure
		mkEvent(60, 10, 5, 5, 0, 3, nsset.Unicast, 1, 2, "SemiV"), // partial failure
	}
	fb := BreakdownFailures(events)
	if fb.Events != 3 || fb.WithFailures != 2 || fb.CompleteFails != 1 {
		t.Errorf("breakdown = %+v", fb)
	}
	if fb.Timeouts != 14 || fb.ServFails != 1 {
		t.Errorf("failure counts = %d/%d", fb.Timeouts, fb.ServFails)
	}
	if fb.UnicastFailShare != 1 {
		t.Errorf("unicast share = %v", fb.UnicastFailShare)
	}
	if fb.SingleASNFailShare != 1 {
		t.Errorf("single-ASN share of complete fails = %v", fb.SingleASNFailShare)
	}
	if fb.SinglePrefixFailShare != 0.5 {
		t.Errorf("single-prefix share = %v", fb.SinglePrefixFailShare)
	}
}

func TestMostAffected(t *testing.T) {
	events := []Event{
		mkEvent(10, 10, 10, 0, 0, 5, nsset.Unicast, 1, 1, "A"),
		mkEvent(10, 10, 10, 0, 0, 300, nsset.Unicast, 1, 1, "B"),
		mkEvent(10, 10, 10, 0, 0, 100, nsset.Unicast, 1, 1, "B"), // B's lower event
		mkEvent(10, 10, 10, 0, 0, 20, nsset.Unicast, 1, 1, "C"),
	}
	rows := MostAffected(events, 2)
	if len(rows) != 2 || rows[0].Org != "B" || rows[0].Impact != 300 || rows[1].Org != "C" {
		t.Errorf("rows = %+v", rows)
	}
}

func TestScatters(t *testing.T) {
	events := []Event{
		mkEvent(1000, 10, 10, 0, 0, 1.1, nsset.FullAnycast, 2, 2, "Big"),
		mkEvent(500, 10, 2, 8, 0, 50, nsset.Unicast, 1, 1, "Vuln"),
	}
	fs := FailureScatter(events)
	if len(fs) != 1 || fs[0].X != 500 || fs[0].Y != 80 || fs[0].SizeBin != 2 {
		t.Errorf("failure scatter = %+v", fs)
	}
	is := ImpactScatter(events)
	if len(is) != 2 || is[0].Y != 1.1 || is[1].Y != 50 {
		t.Errorf("impact scatter = %+v", is)
	}
}

func TestCorrelations(t *testing.T) {
	var events []Event
	for i := 1; i <= 10; i++ {
		e := mkEvent(100, 10, 10, 0, 0, float64(i), nsset.Unicast, 1, 1, "P")
		e.Attack.PeakPPM = float64(i * 100) // perfectly correlated
		e.Attack.StartWindow = 0
		e.Attack.EndWindow = clock.Window(i) - 1 // duration i windows
		events = append(events, e)
	}
	r := IntensityCorrelation(events)
	if !r.Defined || r.Pearson < 0.999 {
		t.Errorf("intensity pearson = %v", r.Pearson)
	}
	d := DurationCorrelation(events)
	if !d.Defined || d.Pearson < 0.999 {
		t.Errorf("duration pearson = %v", d.Pearson)
	}
}

func TestImpactGroups(t *testing.T) {
	events := []Event{
		mkEvent(10, 10, 10, 0, 0, 150, nsset.Unicast, 1, 1, "A"),
		mkEvent(10, 10, 10, 0, 0, 15, nsset.Unicast, 1, 1, "A"),
		mkEvent(10, 10, 10, 0, 0, 1.2, nsset.FullAnycast, 2, 3, "B"),
		mkEvent(10, 10, 10, 0, 0, 1.4, nsset.PartialAnycast, 2, 2, "C"),
	}
	groups := ImpactByAnycast(events)
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	uni := groups[0]
	if uni.Label != "unicast" || uni.N != 2 || uni.Max != 150 || uni.Share10x != 1 || uni.Share100 != 0.5 {
		t.Errorf("unicast group = %+v", uni)
	}
	if groups[2].Label != "anycast" || groups[2].Max != 1.2 {
		t.Errorf("anycast group = %+v", groups[2])
	}

	asGroups := ImpactByASDiversity(events)
	if asGroups[0].N != 2 || asGroups[1].N != 2 || asGroups[2].N != 0 {
		t.Errorf("AS groups = %+v", asGroups)
	}
	pfx := ImpactByPrefixDiversity(events)
	if pfx[0].N != 2 || pfx[1].N != 1 || pfx[2].N != 1 {
		t.Errorf("prefix groups = %+v", pfx)
	}
}

func TestDurationHistogram(t *testing.T) {
	cas := []ClassifiedAttack{
		classified(true, time.January, 2021, packet.ProtoTCP, 53, 1, 15*time.Minute),
		classified(true, time.January, 2021, packet.ProtoTCP, 53, 1, 15*time.Minute),
		classified(true, time.January, 2021, packet.ProtoTCP, 53, 1, time.Hour),
		classified(false, time.January, 2021, packet.ProtoTCP, 80, 1, time.Hour), // excluded
	}
	h := DurationHistogram(cas, 180)
	if h.N != 3 {
		t.Errorf("histogram N = %d, want 3 (DNS-direct only)", h.N)
	}
}

func TestAffectedTLDsAndThirdPartyWeb(t *testing.T) {
	db := dnsdbNewForTLD(t)
	p := NewPipeline(db, WithAggregator(nsset.NewAggregator()))
	ca := p.Classify([]rsdos.Attack{{Victim: netx.MustParseAddr("192.0.2.1")}})[0]
	tlds := p.AffectedTLDs(ca)
	if len(tlds) != 2 || tlds[0].TLD != "nl" || tlds[0].Count != 4 || tlds[1].TLD != "com" {
		t.Fatalf("tlds = %+v", tlds)
	}
	if tlds[0].Share != 4.0/6 {
		t.Errorf("nl share = %v, want 2/3", tlds[0].Share)
	}
	n, share := p.ThirdPartyWebShare(ca)
	if n != 2 || share != 2.0/6 {
		t.Errorf("third-party web = %d (%.2f)", n, share)
	}
	// non-DNS attacks have no TLD breakdown
	other := p.Classify([]rsdos.Attack{{Victim: netx.MustParseAddr("120.0.0.9")}})[0]
	if p.AffectedTLDs(other) != nil {
		t.Error("non-DNS attack should have no breakdown")
	}
}

// dnsdbNewForTLD builds one nameserver hosting 4 .nl and 2 .com domains,
// two of them with third-party web hosting.
func dnsdbNewForTLD(t *testing.T) *dnsdb.DB {
	t.Helper()
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	id, err := db.AddNameserver(dnsdb.Nameserver{Addr: netx.MustParseAddr("192.0.2.1"), Provider: pid})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		db.AddDomain(dnsdb.Domain{Name: "a.nl", NS: []dnsdb.NameserverID{id}, ThirdPartyWeb: i < 2})
	}
	for i := 0; i < 2; i++ {
		db.AddDomain(dnsdb.Domain{Name: "b.com", NS: []dnsdb.NameserverID{id}})
	}
	db.Freeze()
	return db
}
