package openintel

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/resolver"
	"dnsddos/internal/simnet"
)

func testWorld(t *testing.T, domains int) (*dnsdb.DB, *resolver.Resolver) {
	t.Helper()
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	var ids []dnsdb.NameserverID
	for i := 0; i < 3; i++ {
		id, err := db.AddNameserver(dnsdb.Nameserver{
			Addr: netx.Addr(0x0a000001 + i*256), Provider: pid,
			CapacityPPS: 1e5, BaseRTT: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < domains; i++ {
		db.AddDomain(dnsdb.Domain{Name: "d" + string(rune('a'+i%26)) + ".example", NS: ids})
	}
	db.Freeze()
	net := simnet.New(simnet.DefaultParams(), db, attacksim.NewSchedule(nil))
	return db, resolver.New(resolver.DefaultConfig(), db, net)
}

func TestRunDayMeasuresEveryDomainOnce(t *testing.T) {
	db, res := testWorld(t, 40)
	e := NewEngine(db, res, 1)
	counts := map[dnsdb.DomainID]int{}
	e.RunDay(5, nil, func(r Record) { counts[r.Domain]++ })
	if len(counts) != 40 {
		t.Fatalf("measured %d domains, want 40", len(counts))
	}
	for d, n := range counts {
		if n != 1 {
			t.Errorf("domain %d measured %d times", d, n)
		}
	}
}

func TestRunDayTimesInsideDayAndOrdered(t *testing.T) {
	db, res := testWorld(t, 60)
	e := NewEngine(db, res, 2)
	day := clock.Day(10)
	var prev time.Time
	e.RunDay(day, nil, func(r Record) {
		if r.Time.Before(day.Start()) || !r.Time.Before(day.End()) {
			t.Fatalf("measurement at %v outside day %v", r.Time, day)
		}
		if r.Time.Before(prev) {
			t.Fatal("records not in time order")
		}
		prev = r.Time
	})
}

func TestSlotsStableAcrossDays(t *testing.T) {
	db, res := testWorld(t, 10)
	e := NewEngine(db, res, 3)
	times := map[dnsdb.DomainID][2]time.Duration{}
	e.RunDay(0, nil, func(r Record) {
		v := times[r.Domain]
		v[0] = r.Time.Sub(clock.Day(0).Start())
		times[r.Domain] = v
	})
	e.RunDay(1, nil, func(r Record) {
		v := times[r.Domain]
		v[1] = r.Time.Sub(clock.Day(1).Start())
		times[r.Domain] = v
	})
	for d, v := range times {
		if v[0] != v[1] {
			t.Errorf("domain %d slot moved: %v vs %v", d, v[0], v[1])
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	db, res := testWorld(t, 30)
	run := func() []Record {
		e := NewEngine(db, res, 7)
		var out []Record
		e.RunDay(3, nil, func(r Record) { out = append(out, r) })
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAggregatorIntegration(t *testing.T) {
	db, res := testWorld(t, 50)
	e := NewEngine(db, res, 4)
	agg := nsset.NewAggregator()
	e.RunRange(0, 1, agg, nil)
	k := e.NSSetOf(0)
	b := agg.Baseline(k, 0)
	if b == nil || b.Domains != 50 {
		t.Fatalf("baseline = %+v, want 50 domains", b)
	}
	if b.AvgRTT() < 5*time.Millisecond || b.AvgRTT() > 30*time.Millisecond {
		t.Errorf("baseline RTT = %v", b.AvgRTT())
	}
}

func TestRunDayContextCancelled(t *testing.T) {
	db, res := testWorld(t, 50)
	e := NewEngine(db, res, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n := 0
	err := e.RunDayContext(ctx, 0, nil, func(Record) { n++ })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 {
		t.Errorf("measured %d domains after cancellation", n)
	}
}

func TestRunDayContextMidSweepCancel(t *testing.T) {
	// cancel after the first ctx-check stride: the sweep must stop well
	// short of the full domain list
	db, res := testWorld(t, 3000)
	e := NewEngine(db, res, 9)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := e.RunDayContext(ctx, 0, nil, func(Record) {
		n++
		if n == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= 3000 {
		t.Errorf("sweep ran to completion despite cancellation")
	}
}

func TestRunRangeContextStopsAtCancelledDay(t *testing.T) {
	db, res := testWorld(t, 20)
	e := NewEngine(db, res, 10)
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := e.RunRangeContext(ctx, 0, 5, nil, func(Record) {
		n++
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n >= 20*6 {
		t.Errorf("range sweep ran all %d measurements despite cancellation", n)
	}
}

func TestNSSetOfConsistent(t *testing.T) {
	db, res := testWorld(t, 5)
	e := NewEngine(db, res, 5)
	want := nsset.KeyOf(db.NSAddrs(0))
	for d := 0; d < 5; d++ {
		if e.NSSetOf(dnsdb.DomainID(d)) != want {
			t.Errorf("domain %d NSSet differs", d)
		}
	}
}

func TestMeasureAtRecordsOutcome(t *testing.T) {
	db, res := testWorld(t, 5)
	e := NewEngine(db, res, 6)
	rng := rand.New(rand.NewPCG(1, 1))
	rec := e.MeasureAt(rng, 2, clock.StudyStart.Add(time.Hour))
	if rec.Domain != 2 || rec.Status != nsset.StatusOK || rec.RTT <= 0 || rec.Tries != 1 {
		t.Errorf("record = %+v", rec)
	}
}

func TestRecordWriterReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewRecordWriter(&buf)
	recs := []Record{
		{Domain: 1, Time: clock.StudyStart.Add(time.Hour), NSSet: nsset.KeyOf([]netx.Addr{1}), Status: nsset.StatusOK, RTT: 12 * time.Millisecond, Tries: 1},
		{Domain: 2, Time: clock.StudyStart.Add(2 * time.Hour), NSSet: nsset.KeyOf([]netx.Addr{1}), Status: nsset.StatusTimeout, Tries: 3},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	var got []RecordJSON
	if err := ReadRecords(&buf, func(r RecordJSON) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	if got[0].Domain != 1 || got[0].Status != "OK" || got[0].RTTus != 12000 {
		t.Errorf("record 0 = %+v", got[0])
	}
	if got[1].Status != "TIMEOUT" || got[1].Tries != 3 {
		t.Errorf("record 1 = %+v", got[1])
	}
}
