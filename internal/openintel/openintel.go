// Package openintel reproduces the active-measurement platform of §3.2: a
// daily sweep that issues an explicit NS query for every registered domain
// through the agnostic resolver, recording resolution time and response
// status, and aggregating per-NSSet 5-minute metrics (§4.1).
//
// Like the real platform, the sweep spreads each day's queries over the
// whole day (each domain has a stable slot, so a 5-minute attack window
// catches a pseudo-random subset of a large NSSet's domains — the reason
// the paper requires at least five measured domains per attack window).
package openintel

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/nsset"
	"dnsddos/internal/resolver"
)

// Record is one measurement observation, the platform's unit of storage.
type Record struct {
	Domain dnsdb.DomainID
	Time   time.Time
	NSSet  nsset.Key
	Status nsset.QueryStatus
	RTT    time.Duration
	Tries  int
}

// Engine drives daily sweeps over a world.
type Engine struct {
	db   *dnsdb.DB
	res  *resolver.Resolver
	seed uint64
	// nssets caches the NSSet key of each domain.
	nssets []nsset.Key
	// slot caches each domain's second-of-day measurement slot.
	slot []int32
}

// NewEngine builds an engine. seed determines the per-domain daily slots
// and all query randomness, making sweeps reproducible.
func NewEngine(db *dnsdb.DB, res *resolver.Resolver, seed uint64) *Engine {
	e := &Engine{db: db, res: res, seed: seed}
	e.nssets = make([]nsset.Key, len(db.Domains))
	e.slot = make([]int32, len(db.Domains))
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	for i := range db.Domains {
		e.nssets[i] = nsset.KeyOf(db.NSAddrs(dnsdb.DomainID(i)))
		e.slot[i] = int32(rng.IntN(86400))
	}
	return e
}

// NSSetOf returns the cached NSSet key of a domain.
func (e *Engine) NSSetOf(d dnsdb.DomainID) nsset.Key { return e.nssets[d] }

// DomainNSSets returns the engine's per-domain NSSet key cache, indexed
// by DomainID. Building these keys is O(domains × set size); the join
// pipeline reuses this cache (core.WithDomainNSSets) instead of
// recomputing it from the DB. The returned slice is shared and must be
// treated as read-only.
func (e *Engine) DomainNSSets() []nsset.Key { return e.nssets }

// MeasureAt measures one domain at time t and returns the record.
func (e *Engine) MeasureAt(rng *rand.Rand, d dnsdb.DomainID, t time.Time) Record {
	o := e.res.Resolve(rng, d, t)
	return Record{
		Domain: d,
		Time:   t,
		NSSet:  e.nssets[d],
		Status: o.Status,
		RTT:    o.RTT,
		Tries:  o.Tries,
	}
}

// RunDay sweeps every domain once on the given day. Results are folded
// into agg (if non-nil) and passed to each (if non-nil). Within a day,
// domains are visited in slot order, mirroring a platform that works
// through its measurement list over the day.
func (e *Engine) RunDay(day clock.Day, agg *nsset.Aggregator, each func(Record)) {
	e.RunDayContext(context.Background(), day, agg, each)
}

// ctxCheckStride bounds how many domains a sweep measures between
// cancellation checks; a power of two so the check is a mask.
const ctxCheckStride = 1024

// RunDayContext is RunDay with cooperative cancellation: the sweep
// checks ctx every ctxCheckStride domains and returns ctx.Err() when the
// run is cancelled, leaving agg partially filled — callers that care
// about exactness (the checkpointed study pipeline) discard the partial
// aggregator and re-run the day on resume.
func (e *Engine) RunDayContext(ctx context.Context, day clock.Day, agg *nsset.Aggregator, each func(Record)) error {
	rng := rand.New(rand.NewPCG(e.seed, uint64(day)+1))
	// bucket domains by slot so emission is in time order without a
	// full sort every day
	order := e.slotOrder()
	base := day.Start()
	for i, d := range order {
		if i&(ctxCheckStride-1) == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		t := base.Add(time.Duration(e.slot[d]) * time.Second)
		rec := e.MeasureAt(rng, d, t)
		if agg != nil {
			agg.Add(rec.NSSet, rec.Time, rec.Status, rec.RTT)
		}
		if each != nil {
			each(rec)
		}
	}
	return nil
}

// slotOrder returns domain IDs sorted by daily slot (cached lazily would
// churn; the counting sort below is O(n) and allocation-light).
func (e *Engine) slotOrder() []dnsdb.DomainID {
	counts := make([]int32, 86400+1)
	for _, s := range e.slot {
		counts[s+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	out := make([]dnsdb.DomainID, len(e.slot))
	next := counts
	for d, s := range e.slot {
		out[next[s]] = dnsdb.DomainID(d)
		next[s]++
	}
	return out
}

// RunRange sweeps days [from, to] inclusive.
func (e *Engine) RunRange(from, to clock.Day, agg *nsset.Aggregator, each func(Record)) {
	e.RunRangeContext(context.Background(), from, to, agg, each)
}

// RunRangeContext sweeps days [from, to] inclusive, stopping at the
// first cancelled day.
func (e *Engine) RunRangeContext(ctx context.Context, from, to clock.Day, agg *nsset.Aggregator, each func(Record)) error {
	for d := from; d <= to; d++ {
		if err := e.RunDayContext(ctx, d, agg, each); err != nil {
			return err
		}
	}
	return nil
}

// RecordWriter streams records as JSON lines.
type RecordWriter struct {
	enc *json.Encoder
}

// NewRecordWriter wraps w.
func NewRecordWriter(w io.Writer) *RecordWriter {
	return &RecordWriter{enc: json.NewEncoder(w)}
}

// Write emits one record.
func (rw *RecordWriter) Write(r Record) error { return rw.enc.Encode(jsonRecord(r)) }

// RecordJSON is the on-disk JSON form of a Record.
type RecordJSON struct {
	Domain int32  `json:"domain"`
	Time   string `json:"time"`
	NSSet  string `json:"nsset"`
	Status string `json:"status"`
	RTTus  int64  `json:"rtt_us"`
	Tries  int    `json:"tries"`
}

func jsonRecord(r Record) RecordJSON {
	return RecordJSON{
		Domain: int32(r.Domain),
		Time:   r.Time.UTC().Format(time.RFC3339),
		NSSet:  r.NSSet.String(),
		Status: r.Status.String(),
		RTTus:  r.RTT.Microseconds(),
		Tries:  r.Tries,
	}
}

// ReadRecords decodes a JSON-lines stream produced by RecordWriter; only
// fields needed by offline analysis round-trip (NSSet keys render as the
// human-readable set form and are not re-parsed).
func ReadRecords(r io.Reader, each func(RecordJSON) error) error {
	dec := json.NewDecoder(r)
	for {
		var rec RecordJSON
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("openintel: decoding records: %w", err)
		}
		if err := each(rec); err != nil {
			return err
		}
	}
}
