package netx

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.1", AddrFrom4(192, 0, 2, 1), true},
		{"8.8.8.8", 0x08080808, true},
		{"::1", 0, false},
		{"256.0.0.1", 0, false},
		{"1.2.3", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseAddr should panic on bad input")
		}
	}()
	MustParseAddr("not-an-ip")
}

func TestSlash24Slash16(t *testing.T) {
	a := MustParseAddr("198.51.100.77")
	if got := a.Slash24(); got != MustParsePrefix("198.51.100.0/24") {
		t.Errorf("Slash24 = %v", got)
	}
	if got := a.Slash16(); got != MustParsePrefix("198.51.0.0/16") {
		t.Errorf("Slash16 = %v", got)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.20.0.0/16")
	for _, in := range []string{"10.20.0.0", "10.20.255.255", "10.20.128.1"} {
		if !p.Contains(MustParseAddr(in)) {
			t.Errorf("%v should contain %s", p, in)
		}
	}
	for _, out := range []string{"10.21.0.0", "10.19.255.255", "11.20.0.0"} {
		if p.Contains(MustParseAddr(out)) {
			t.Errorf("%v should not contain %s", p, out)
		}
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	// every prefix contains exactly the addresses sharing its masked bits
	f := func(v uint32, bits uint8) bool {
		b := int(bits % 33)
		p := Prefix{Addr: Addr(v) & Prefix{Bits: b}.Mask(), Bits: b}
		return p.Contains(p.First()) && p.Contains(p.Last()) &&
			(b == 0 || !p.Contains(p.Last()+1) || p.Last() == 0xffffffff)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixParseMasksHostBits(t *testing.T) {
	p, err := ParsePrefix("192.0.2.99/24")
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr != MustParseAddr("192.0.2.0") {
		t.Errorf("host bits not masked: %v", p.Addr)
	}
}

func TestPrefixSize(t *testing.T) {
	cases := []struct {
		cidr string
		size uint64
	}{
		{"0.0.0.0/0", 1 << 32},
		{"44.0.0.0/9", 1 << 23},
		{"44.128.0.0/10", 1 << 22},
		{"192.0.2.0/24", 256},
		{"192.0.2.1/32", 1},
	}
	for _, c := range cases {
		if got := MustParsePrefix(c.cidr).Size(); got != c.size {
			t.Errorf("%s size = %d, want %d", c.cidr, got, c.size)
		}
	}
}

func TestPrefixNth(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	if p.Nth(0) != p.First() {
		t.Error("Nth(0) != First")
	}
	if p.Nth(255) != p.Last() {
		t.Error("Nth(255) != Last")
	}
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range should panic")
		}
	}()
	p.Nth(256)
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap both ways")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes should not overlap")
	}
}

func TestPrefixRandomAddrInRange(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	p := MustParsePrefix("172.16.4.0/22")
	for i := 0; i < 1000; i++ {
		if a := p.RandomAddr(rng); !p.Contains(a) {
			t.Fatalf("RandomAddr produced %v outside %v", a, p)
		}
	}
}

func TestPrefixSetRejectsOverlap(t *testing.T) {
	_, err := NewPrefixSet(MustParsePrefix("10.0.0.0/8"), MustParsePrefix("10.128.0.0/9"))
	if err == nil {
		t.Error("overlapping prefixes should be rejected")
	}
}

func TestPrefixSetContains(t *testing.T) {
	s := MustNewPrefixSet(
		MustParsePrefix("44.0.0.0/9"),
		MustParsePrefix("44.128.0.0/10"),
	)
	in := []string{"44.0.0.1", "44.127.255.255", "44.128.0.0", "44.191.255.255"}
	out := []string{"43.255.255.255", "44.192.0.0", "45.0.0.0", "8.8.8.8"}
	for _, a := range in {
		if !s.Contains(MustParseAddr(a)) {
			t.Errorf("set should contain %s", a)
		}
	}
	for _, a := range out {
		if s.Contains(MustParseAddr(a)) {
			t.Errorf("set should not contain %s", a)
		}
	}
	if s.Size() != (1<<23)+(1<<22) {
		t.Errorf("Size = %d", s.Size())
	}
}

func TestPrefixSetFractionUCSD(t *testing.T) {
	s := MustNewPrefixSet(MustParsePrefix("44.0.0.0/9"), MustParsePrefix("44.128.0.0/10"))
	// the paper's interpolation constant: ≈1/341 of IPv4 (Table 2 note)
	scale := 1 / s.Fraction()
	if scale < 341 || scale > 342 {
		t.Errorf("scale factor = %.2f, want ≈341.3", scale)
	}
}

func TestPrefixSetContainsMatchesLinear(t *testing.T) {
	prefixes := []Prefix{
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("44.0.0.0/9"),
		MustParsePrefix("192.0.2.0/24"),
		MustParsePrefix("198.51.100.0/24"),
	}
	s := MustNewPrefixSet(prefixes...)
	f := func(v uint32) bool {
		a := Addr(v)
		linear := false
		for _, p := range prefixes {
			if p.Contains(a) {
				linear = true
			}
		}
		return s.Contains(a) == linear
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRandomGlobalAddrCoversSpace(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	var lowHalf int
	const n = 10000
	for i := 0; i < n; i++ {
		if RandomGlobalAddr(rng) < 1<<31 {
			lowHalf++
		}
	}
	// uniformity sanity: within 5σ of half
	if lowHalf < n/2-5*50 || lowHalf > n/2+5*50 {
		t.Errorf("low-half count %d of %d not uniform", lowHalf, n)
	}
}
