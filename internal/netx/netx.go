// Package netx provides IPv4 address and prefix utilities used across the
// telescope, attack-simulation, and DNS-measurement subsystems.
//
// The whole reproduction operates on IPv4 only, mirroring the paper: the
// RSDoS feed is IPv4-only (§4.3, limitation 2). Addresses are represented as
// uint32 in host byte order for arithmetic (uniform sampling, subnet keys)
// and converted to netip.Addr at the edges.
package netx

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sort"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	ip, err := netip.ParseAddr(s)
	if err != nil {
		return 0, err
	}
	if !ip.Is4() {
		return 0, fmt.Errorf("netx: %q is not IPv4", s)
	}
	b := ip.As4()
	return AddrFrom4(b[0], b[1], b[2], b[3]), nil
}

// MustParseAddr is ParseAddr that panics on error; for constants in tests
// and scenario scripts.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Netip converts to a netip.Addr.
func (a Addr) Netip() netip.Addr {
	return netip.AddrFrom4([4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)})
}

// String renders the dotted-quad form.
func (a Addr) String() string { return a.Netip().String() }

// Slash24 returns the /24 prefix key containing a.
func (a Addr) Slash24() Prefix { return Prefix{Addr: a &^ 0xff, Bits: 24} }

// Slash16 returns the /16 prefix key containing a.
func (a Addr) Slash16() Prefix { return Prefix{Addr: a &^ 0xffff, Bits: 16} }

// Prefix is an IPv4 CIDR prefix. Addr is the (masked) network address.
type Prefix struct {
	Addr Addr
	Bits int
}

// ParsePrefix parses CIDR notation, e.g. "192.0.2.0/24".
func ParsePrefix(s string) (Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return Prefix{}, err
	}
	if !p.Addr().Is4() {
		return Prefix{}, fmt.Errorf("netx: %q is not IPv4", s)
	}
	b := p.Masked().Addr().As4()
	return Prefix{Addr: AddrFrom4(b[0], b[1], b[2], b[3]), Bits: p.Bits()}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Mask returns the network mask of the prefix as an Addr-typed bit pattern.
func (p Prefix) Mask() Addr {
	if p.Bits <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(p.Bits)))
}

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a&p.Mask() == p.Addr
}

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() uint64 { return 1 << (32 - uint(p.Bits)) }

// First returns the lowest address in the prefix.
func (p Prefix) First() Addr { return p.Addr }

// Last returns the highest address in the prefix.
func (p Prefix) Last() Addr { return p.Addr | ^p.Mask() }

// Nth returns the i-th address of the prefix (0 = network address).
// It panics if i is out of range.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.Size() {
		panic("netx: Nth out of prefix range")
	}
	return p.Addr + Addr(i)
}

// String renders CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Bits) }

// Overlaps reports whether two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.Bits <= q.Bits {
		return p.Contains(q.Addr)
	}
	return q.Contains(p.Addr)
}

// RandomAddr returns a uniformly random address inside the prefix.
func (p Prefix) RandomAddr(rng *rand.Rand) Addr {
	return p.Addr + Addr(rng.Uint64N(p.Size()))
}

// RandomGlobalAddr returns a uniformly random address over the whole IPv4
// space, the spoofed-source model of an RSDoS attack (§2.1: "randomly (and
// often uniformly) spoofing the source IP address").
func RandomGlobalAddr(rng *rand.Rand) Addr {
	return Addr(rng.Uint32())
}

// PrefixSet is an immutable set of disjoint prefixes with O(log n) membership
// tests. It backs the telescope's darknet address space.
type PrefixSet struct {
	prefixes []Prefix // sorted by Addr, disjoint
	total    uint64
}

// NewPrefixSet builds a set from the given prefixes. Overlapping prefixes are
// rejected because telescope coverage arithmetic assumes disjointness.
func NewPrefixSet(prefixes ...Prefix) (*PrefixSet, error) {
	ps := make([]Prefix, len(prefixes))
	copy(ps, prefixes)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Addr < ps[j].Addr })
	var total uint64
	for i, p := range ps {
		if i > 0 && ps[i-1].Overlaps(p) {
			return nil, fmt.Errorf("netx: prefixes %s and %s overlap", ps[i-1], p)
		}
		total += p.Size()
	}
	return &PrefixSet{prefixes: ps, total: total}, nil
}

// MustNewPrefixSet is NewPrefixSet that panics on error.
func MustNewPrefixSet(prefixes ...Prefix) *PrefixSet {
	s, err := NewPrefixSet(prefixes...)
	if err != nil {
		panic(err)
	}
	return s
}

// Contains reports whether a falls inside any member prefix.
func (s *PrefixSet) Contains(a Addr) bool {
	i := sort.Search(len(s.prefixes), func(i int) bool { return s.prefixes[i].Addr > a })
	return i > 0 && s.prefixes[i-1].Contains(a)
}

// Size returns the number of addresses covered by the set.
func (s *PrefixSet) Size() uint64 { return s.total }

// Prefixes returns the member prefixes in address order.
func (s *PrefixSet) Prefixes() []Prefix {
	out := make([]Prefix, len(s.prefixes))
	copy(out, s.prefixes)
	return out
}

// Fraction returns the share of the IPv4 space the set covers. For the UCSD
// telescope (/9 + /10) this is ≈ 1/341, the interpolation constant used in
// Table 2 ("21.8kppm × 341 / 60s = 124Kpps").
func (s *PrefixSet) Fraction() float64 {
	return float64(s.total) / float64(uint64(1)<<32)
}
