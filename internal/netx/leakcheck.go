package netx

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// leakcheck.go is the goroutine-leak test helper: NoGoroutineLeaks
// snapshots the goroutine population when armed and verifies at test
// cleanup that everything started since has exited. Servers in this
// repository promise drained shutdown (authserver.Close, the obs
// metrics endpoint, the live resolver's bounded retries); this helper
// turns that promise into a mechanical check.

// leakSettleTimeout bounds how long the cleanup waits for goroutines to
// wind down before declaring a leak; exiting goroutines need a few
// scheduler turns after Close returns.
const leakSettleTimeout = 2 * time.Second

// NoGoroutineLeaks arms a goroutine-leak check for the test: it records
// the current goroutine count and stacks, and at cleanup waits up to
// two seconds for the count to return to the baseline. On failure it
// reports the diff — the stacks present after the test that were not
// running before — rather than two full dumps.
func NoGoroutineLeaks(tb testing.TB) {
	tb.Helper()
	before := runtime.NumGoroutine()
	beforeStacks := goroutineSignatures()
	tb.Cleanup(func() {
		if tb.Failed() {
			return // don't pile a leak report onto a real failure
		}
		deadline := time.Now().Add(leakSettleTimeout)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				leaked := diffSignatures(beforeStacks, goroutineSignatures())
				if len(leaked) == 0 {
					return // population churned but nothing net-new survived
				}
				tb.Errorf("goroutine leak: %d goroutines before, %d after; new survivors:\n%s",
					before, runtime.NumGoroutine(), strings.Join(leaked, "\n---\n"))
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// goroutineSignatures returns a multiset of normalized goroutine stacks:
// the header's goroutine ID and state are stripped so the same code path
// parked twice counts twice under one key.
func goroutineSignatures() map[string]int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	sigs := make(map[string]int)
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if g == "" {
			continue
		}
		if i := strings.IndexByte(g, '\n'); i >= 0 {
			g = g[i+1:] // drop "goroutine N [state]:"
		}
		sigs[g]++
	}
	return sigs
}

// diffSignatures lists stacks whose population grew from before to
// after, annotated with the growth count, sorted for stable output.
func diffSignatures(before, after map[string]int) []string {
	var out []string
	for sig, n := range after {
		if grew := n - before[sig]; grew > 0 && !benignStack(sig) {
			out = append(out, fmt.Sprintf("%d new instance(s) of:\n%s", grew, sig))
		}
	}
	sort.Strings(out)
	return out
}

// benignStack filters runtime- and testing-internal goroutines that come
// and go on their own schedule.
func benignStack(sig string) bool {
	for _, frame := range []string{
		"testing.(*T).Run(",
		"testing.runTests(",
		"runtime.gc",
		"runtime/trace",
		"signal.signal_recv",
	} {
		if strings.Contains(sig, frame) {
			return true
		}
	}
	return false
}
