package packet

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dnsddos/internal/netx"
)

func TestProtocolString(t *testing.T) {
	cases := map[Protocol]string{ProtoICMP: "ICMP", ProtoTCP: "TCP", ProtoUDP: "UDP", 99: "proto(99)"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestTCPFlagsString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SYN|ACK" {
		t.Errorf("flags = %q", got)
	}
	if got := TCPFlags(0).String(); got != "0" {
		t.Errorf("zero flags = %q", got)
	}
	if !(FlagSYN | FlagACK).Has(FlagSYN) {
		t.Error("Has(SYN)")
	}
	if (FlagSYN).Has(FlagSYN | FlagACK) {
		t.Error("Has should require all bits")
	}
}

func TestTCPPacketRoundTrip(t *testing.T) {
	p := Packet{
		IP: IPv4Header{
			TOS: 0, TTL: 64, Protocol: ProtoTCP,
			Src: netx.MustParseAddr("192.0.2.1"),
			Dst: netx.MustParseAddr("198.51.100.2"),
			ID:  0x1234,
		},
		TCP: &TCPHeader{
			SrcPort: 53, DstPort: 40000, Seq: 7, Ack: 8,
			Flags: FlagSYN | FlagACK, Window: 65535,
		},
	}
	wire := p.Build()
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.IP.Src != p.IP.Src || got.IP.Dst != p.IP.Dst || got.IP.Protocol != ProtoTCP {
		t.Errorf("IP round trip: %+v", got.IP)
	}
	if got.TCP == nil || *got.TCP != *p.TCP {
		t.Errorf("TCP round trip: %+v", got.TCP)
	}
	if got.SrcPort() != 53 || got.DstPort() != 40000 {
		t.Errorf("ports = %d,%d", got.SrcPort(), got.DstPort())
	}
}

func TestUDPPacketRoundTripWithPayload(t *testing.T) {
	p := Packet{
		IP: IPv4Header{TTL: 63, Protocol: ProtoUDP,
			Src: netx.MustParseAddr("10.0.0.1"), Dst: netx.MustParseAddr("10.0.0.2")},
		UDP:     &UDPHeader{SrcPort: 53, DstPort: 1234},
		Payload: []byte("dns-reply"),
	}
	wire := p.Build()
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.UDP == nil || got.UDP.SrcPort != 53 || got.UDP.DstPort != 1234 {
		t.Fatalf("UDP header: %+v", got.UDP)
	}
	if got.UDP.Length != uint16(UDPHeaderLen+len(p.Payload)) {
		t.Errorf("UDP length = %d", got.UDP.Length)
	}
	if string(got.Payload) != "dns-reply" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestICMPPacketRoundTrip(t *testing.T) {
	p := Packet{
		IP: IPv4Header{TTL: 64, Protocol: ProtoICMP,
			Src: netx.MustParseAddr("10.0.0.1"), Dst: netx.MustParseAddr("44.1.2.3")},
		ICMP: &ICMPHeader{Type: ICMPDestUnreachable, Code: ICMPCodePortUnreach, Rest: 53},
	}
	got, err := Decode(p.Build())
	if err != nil {
		t.Fatal(err)
	}
	if got.ICMP == nil || got.ICMP.Type != ICMPDestUnreachable || got.ICMP.Rest != 53 {
		t.Fatalf("ICMP: %+v", got.ICMP)
	}
	if got.SrcPort() != 0 || got.DstPort() != 0 {
		t.Error("ICMP has no ports")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := Decode(make([]byte, 10)); err == nil {
		t.Error("short input should fail")
	}
	bad := make([]byte, 20)
	bad[0] = 0x65 // version 6
	if _, err := Decode(bad); err == nil {
		t.Error("wrong version should fail")
	}
	badIHL := make([]byte, 20)
	badIHL[0] = 0x42 // version 4, IHL 2 words
	if _, err := Decode(badIHL); err == nil {
		t.Error("bad IHL should fail")
	}
	// valid IP header claiming TCP but truncated transport
	p := Packet{IP: IPv4Header{Protocol: ProtoTCP, TTL: 1}}
	wire := p.IP.Marshal(nil)
	wire[9] = byte(ProtoTCP)
	if _, err := Decode(wire); err == nil {
		t.Error("truncated TCP should fail")
	}
}

func TestDecodeRespectsTotalLen(t *testing.T) {
	p := Packet{
		IP:      IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: 1, Dst: 2},
		UDP:     &UDPHeader{SrcPort: 1, DstPort: 2},
		Payload: []byte("abc"),
	}
	wire := p.Build()
	// padded capture (e.g. minimum frame size)
	padded := append(wire, make([]byte, 8)...)
	got, err := Decode(padded)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "abc" {
		t.Errorf("payload with padding = %q", got.Payload)
	}
}

func TestChecksumValid(t *testing.T) {
	h := IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: 0x01020304, Dst: 0x05060708, TotalLen: 40}
	wire := h.Marshal(nil)
	// RFC 1071: summing the header including its checksum gives 0xffff
	var sum uint32
	for i := 0; i+1 < len(wire); i += 2 {
		sum += uint32(wire[i])<<8 | uint32(wire[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if uint16(sum) != 0xffff {
		t.Errorf("header checksum invalid: sum = %#x", sum)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		p := Packet{
			IP: IPv4Header{
				TOS: uint8(rng.Uint32()), TTL: uint8(rng.Uint32()),
				ID:  uint16(rng.Uint32()),
				Src: netx.Addr(rng.Uint32()), Dst: netx.Addr(rng.Uint32()),
			},
		}
		switch rng.IntN(3) {
		case 0:
			p.IP.Protocol = ProtoTCP
			p.TCP = &TCPHeader{
				SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
				Seq: rng.Uint32(), Ack: rng.Uint32(),
				Flags: TCPFlags(rng.Uint32() & 0x3f), Window: uint16(rng.Uint32()),
			}
		case 1:
			p.IP.Protocol = ProtoUDP
			p.UDP = &UDPHeader{SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32())}
			n := rng.IntN(64)
			p.Payload = make([]byte, n)
			for i := range p.Payload {
				p.Payload[i] = byte(rng.Uint32())
			}
		default:
			p.IP.Protocol = ProtoICMP
			p.ICMP = &ICMPHeader{Type: uint8(rng.Uint32()), Code: uint8(rng.Uint32()), Rest: rng.Uint32()}
		}
		got, err := Decode(p.Build())
		if err != nil {
			return false
		}
		if got.IP.Src != p.IP.Src || got.IP.Dst != p.IP.Dst || got.IP.TTL != p.IP.TTL {
			return false
		}
		switch {
		case p.TCP != nil:
			return got.TCP != nil && *got.TCP == *p.TCP
		case p.UDP != nil:
			return got.UDP != nil && got.UDP.SrcPort == p.UDP.SrcPort &&
				got.UDP.DstPort == p.UDP.DstPort && string(got.Payload) == string(p.Payload)
		default:
			return got.ICMP != nil && *got.ICMP == *p.ICMP
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
