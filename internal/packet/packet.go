// Package packet implements encoding and decoding of the IPv4, TCP, UDP and
// ICMP headers the telescope pipeline works with.
//
// The design follows gopacket's layer model in miniature: each header type
// can Marshal itself to wire bytes and be decoded from them, and Decode
// parses a raw IPv4 packet into a Packet with typed layers. Only the fields
// the RSDoS inference consumes are modeled; payloads are carried opaquely.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dnsddos/internal/netx"
)

// Protocol is the IPv4 protocol number.
type Protocol uint8

// Protocol numbers used by the attack and backscatter models.
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

// String renders the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TCPFlags is the TCP flag byte (we only use the low 6 bits).
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << 0
	FlagSYN TCPFlags = 1 << 1
	FlagRST TCPFlags = 1 << 2
	FlagPSH TCPFlags = 1 << 3
	FlagACK TCPFlags = 1 << 4
	FlagURG TCPFlags = 1 << 5
)

// Has reports whether all bits of f are set.
func (t TCPFlags) Has(f TCPFlags) bool { return t&f == f }

// String renders set flags, e.g. "SYN|ACK".
func (t TCPFlags) String() string {
	names := []struct {
		f TCPFlags
		n string
	}{{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"}, {FlagACK, "ACK"}, {FlagURG, "URG"}}
	out := ""
	for _, fn := range names {
		if t.Has(fn.f) {
			if out != "" {
				out += "|"
			}
			out += fn.n
		}
	}
	if out == "" {
		return "0"
	}
	return out
}

// IPv4Header is the fixed 20-byte IPv4 header (no options).
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol Protocol
	Src      netx.Addr
	Dst      netx.Addr
}

// IPv4HeaderLen is the length of the option-less IPv4 header.
const IPv4HeaderLen = 20

// Marshal appends the wire form to b. TotalLen must already cover payload.
func (h *IPv4Header) Marshal(b []byte) []byte {
	var w [IPv4HeaderLen]byte
	w[0] = 0x45 // version 4, IHL 5
	w[1] = h.TOS
	binary.BigEndian.PutUint16(w[2:], h.TotalLen)
	binary.BigEndian.PutUint16(w[4:], h.ID)
	// flags+fragment offset zero
	w[8] = h.TTL
	w[9] = uint8(h.Protocol)
	binary.BigEndian.PutUint32(w[12:], uint32(h.Src))
	binary.BigEndian.PutUint32(w[16:], uint32(h.Dst))
	binary.BigEndian.PutUint16(w[10:], checksum(w[:]))
	return append(b, w[:]...)
}

// UnmarshalIPv4 parses an IPv4 header, returning it and the header length.
func UnmarshalIPv4(b []byte) (IPv4Header, int, error) {
	if len(b) < IPv4HeaderLen {
		return IPv4Header{}, 0, errors.New("packet: short IPv4 header")
	}
	if b[0]>>4 != 4 {
		return IPv4Header{}, 0, fmt.Errorf("packet: IP version %d", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return IPv4Header{}, 0, errors.New("packet: bad IHL")
	}
	return IPv4Header{
		TOS:      b[1],
		TotalLen: binary.BigEndian.Uint16(b[2:]),
		ID:       binary.BigEndian.Uint16(b[4:]),
		TTL:      b[8],
		Protocol: Protocol(b[9]),
		Src:      netx.Addr(binary.BigEndian.Uint32(b[12:])),
		Dst:      netx.Addr(binary.BigEndian.Uint32(b[16:])),
	}, ihl, nil
}

// TCPHeader is the fixed 20-byte TCP header (no options).
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   TCPFlags
	Window  uint16
}

// TCPHeaderLen is the length of the option-less TCP header.
const TCPHeaderLen = 20

// Marshal appends the wire form to b.
func (h *TCPHeader) Marshal(b []byte) []byte {
	var w [TCPHeaderLen]byte
	binary.BigEndian.PutUint16(w[0:], h.SrcPort)
	binary.BigEndian.PutUint16(w[2:], h.DstPort)
	binary.BigEndian.PutUint32(w[4:], h.Seq)
	binary.BigEndian.PutUint32(w[8:], h.Ack)
	w[12] = 5 << 4 // data offset 5 words
	w[13] = uint8(h.Flags)
	binary.BigEndian.PutUint16(w[14:], h.Window)
	// checksum left zero: the simulated wire does not verify it
	return append(b, w[:]...)
}

// UnmarshalTCP parses a TCP header.
func UnmarshalTCP(b []byte) (TCPHeader, error) {
	if len(b) < TCPHeaderLen {
		return TCPHeader{}, errors.New("packet: short TCP header")
	}
	return TCPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Seq:     binary.BigEndian.Uint32(b[4:]),
		Ack:     binary.BigEndian.Uint32(b[8:]),
		Flags:   TCPFlags(b[13] & 0x3f),
		Window:  binary.BigEndian.Uint16(b[14:]),
	}, nil
}

// UDPHeader is the 8-byte UDP header.
type UDPHeader struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16
}

// UDPHeaderLen is the UDP header length.
const UDPHeaderLen = 8

// Marshal appends the wire form to b.
func (h *UDPHeader) Marshal(b []byte) []byte {
	var w [UDPHeaderLen]byte
	binary.BigEndian.PutUint16(w[0:], h.SrcPort)
	binary.BigEndian.PutUint16(w[2:], h.DstPort)
	binary.BigEndian.PutUint16(w[4:], h.Length)
	return append(b, w[:]...)
}

// UnmarshalUDP parses a UDP header.
func UnmarshalUDP(b []byte) (UDPHeader, error) {
	if len(b) < UDPHeaderLen {
		return UDPHeader{}, errors.New("packet: short UDP header")
	}
	return UDPHeader{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Length:  binary.BigEndian.Uint16(b[4:]),
	}, nil
}

// ICMP types the backscatter model emits.
const (
	ICMPEchoReply          = 0
	ICMPDestUnreachable    = 3
	ICMPTimeExceeded       = 11
	ICMPCodePortUnreach    = 3
	ICMPCodeHostUnreach    = 1
	ICMPCodeNetUnreachable = 0
)

// ICMPHeader is the 8-byte ICMP header.
type ICMPHeader struct {
	Type uint8
	Code uint8
	// Rest carries the 4 type-specific bytes (unused by the inference).
	Rest uint32
}

// ICMPHeaderLen is the ICMP header length.
const ICMPHeaderLen = 8

// Marshal appends the wire form to b.
func (h *ICMPHeader) Marshal(b []byte) []byte {
	var w [ICMPHeaderLen]byte
	w[0] = h.Type
	w[1] = h.Code
	binary.BigEndian.PutUint32(w[4:], h.Rest)
	binary.BigEndian.PutUint16(w[2:], checksum(w[:]))
	return append(b, w[:]...)
}

// UnmarshalICMP parses an ICMP header.
func UnmarshalICMP(b []byte) (ICMPHeader, error) {
	if len(b) < ICMPHeaderLen {
		return ICMPHeader{}, errors.New("packet: short ICMP header")
	}
	return ICMPHeader{Type: b[0], Code: b[1], Rest: binary.BigEndian.Uint32(b[4:])}, nil
}

// Packet is a decoded IPv4 packet with at most one transport layer.
type Packet struct {
	IP      IPv4Header
	TCP     *TCPHeader
	UDP     *UDPHeader
	ICMP    *ICMPHeader
	Payload []byte
}

// Build assembles the wire bytes of the packet, fixing up length fields.
func (p *Packet) Build() []byte {
	var transport []byte
	switch {
	case p.TCP != nil:
		transport = p.TCP.Marshal(nil)
	case p.UDP != nil:
		u := *p.UDP
		u.Length = uint16(UDPHeaderLen + len(p.Payload))
		transport = u.Marshal(nil)
	case p.ICMP != nil:
		transport = p.ICMP.Marshal(nil)
	}
	ip := p.IP
	ip.TotalLen = uint16(IPv4HeaderLen + len(transport) + len(p.Payload))
	out := ip.Marshal(nil)
	out = append(out, transport...)
	return append(out, p.Payload...)
}

// Decode parses raw IPv4 packet bytes into a Packet. Unknown transport
// protocols leave the payload attached raw with no transport layer set.
func Decode(b []byte) (Packet, error) {
	ip, ihl, err := UnmarshalIPv4(b)
	if err != nil {
		return Packet{}, err
	}
	p := Packet{IP: ip}
	rest := b[ihl:]
	if int(ip.TotalLen) >= ihl && int(ip.TotalLen) <= len(b) {
		rest = b[ihl:ip.TotalLen]
	}
	switch ip.Protocol {
	case ProtoTCP:
		h, err := UnmarshalTCP(rest)
		if err != nil {
			return Packet{}, err
		}
		p.TCP = &h
		p.Payload = rest[TCPHeaderLen:]
	case ProtoUDP:
		h, err := UnmarshalUDP(rest)
		if err != nil {
			return Packet{}, err
		}
		p.UDP = &h
		p.Payload = rest[UDPHeaderLen:]
	case ProtoICMP:
		h, err := UnmarshalICMP(rest)
		if err != nil {
			return Packet{}, err
		}
		p.ICMP = &h
		p.Payload = rest[ICMPHeaderLen:]
	default:
		p.Payload = rest
	}
	return p, nil
}

// SrcPort returns the transport source port, or 0 for ICMP/unknown.
func (p *Packet) SrcPort() uint16 {
	switch {
	case p.TCP != nil:
		return p.TCP.SrcPort
	case p.UDP != nil:
		return p.UDP.SrcPort
	}
	return 0
}

// DstPort returns the transport destination port, or 0 for ICMP/unknown.
func (p *Packet) DstPort() uint16 {
	switch {
	case p.TCP != nil:
		return p.TCP.DstPort
	case p.UDP != nil:
		return p.UDP.DstPort
	}
	return 0
}

// checksum is the RFC 1071 internet checksum with the checksum field zeroed.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}
