package packet

import (
	"testing"

	"dnsddos/internal/netx"
)

func BenchmarkBuildTCP(b *testing.B) {
	p := Packet{
		IP: IPv4Header{TTL: 64, Protocol: ProtoTCP,
			Src: netx.MustParseAddr("192.0.2.1"), Dst: netx.MustParseAddr("44.1.2.3")},
		TCP: &TCPHeader{SrcPort: 53, DstPort: 40000, Flags: FlagSYN | FlagACK, Window: 65535},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Build()
	}
}

func BenchmarkDecodeTCP(b *testing.B) {
	p := Packet{
		IP: IPv4Header{TTL: 64, Protocol: ProtoTCP,
			Src: netx.MustParseAddr("192.0.2.1"), Dst: netx.MustParseAddr("44.1.2.3")},
		TCP: &TCPHeader{SrcPort: 53, DstPort: 40000, Flags: FlagSYN | FlagACK},
	}
	wire := p.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}
