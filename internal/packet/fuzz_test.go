package packet

import "testing"

// FuzzDecode ensures the IPv4/transport decoder never panics and that
// whatever it accepts rebuilds into bytes it accepts again.
func FuzzDecode(f *testing.F) {
	syn := Packet{
		IP:  IPv4Header{TTL: 64, Protocol: ProtoTCP, Src: 0x01020304, Dst: 0x2c000001},
		TCP: &TCPHeader{SrcPort: 40000, DstPort: 53, Flags: FlagSYN},
	}
	f.Add(syn.Build())
	icmp := Packet{
		IP:   IPv4Header{TTL: 64, Protocol: ProtoICMP, Src: 1, Dst: 2},
		ICMP: &ICMPHeader{Type: ICMPDestUnreachable, Code: ICMPCodePortUnreach, Rest: 53},
	}
	f.Add(icmp.Build())
	f.Add([]byte{})
	f.Add([]byte{0x45})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		rebuilt := p.Build()
		q, err := Decode(rebuilt)
		if err != nil {
			t.Fatalf("rebuild not decodable: %v", err)
		}
		if q.IP.Src != p.IP.Src || q.IP.Dst != p.IP.Dst || q.IP.Protocol != p.IP.Protocol {
			t.Fatal("round trip changed addressing")
		}
	})
}
