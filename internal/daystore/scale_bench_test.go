package daystore

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
)

// scale_bench_test.go is the out-of-core acceptance benchmark (`make
// bench-daystore`, archived in BENCH_daystore.json): a >1M-domain-per-day
// measurement volume is sealed day by day — each day's aggregator dropped
// as soon as its file publishes, exactly like the daystore-mode study
// loop — and then scanned join-style through the mmap views. The timed
// section reports heap growth alongside the on-disk volume and FAILS if
// the resident heap grows by more than a quarter of the data it scanned:
// the whole point of the columnar store is that the OS pages day columns
// in and out on demand, so working-set residency must not track world
// size.

func BenchmarkDayStoreScale(b *testing.B) {
	const (
		nsSets        = 120_000
		domainsPerSet = 9 // 1.08M measured domains per day
		days          = 6
	)
	dir := b.TempDir()

	keys := make([]nsset.Key, nsSets)
	for i := range keys {
		keys[i] = nsset.KeyOf([]netx.Addr{netx.Addr(i + 1), netx.Addr(0x0A000000 + uint32(i))})
	}

	var sealedBytes int64
	for d := 0; d < days; d++ {
		day := clock.Day(d)
		agg := nsset.NewAggregator()
		for i, k := range keys {
			w := day.FirstWindow() + clock.Window(int64(i)%clock.WindowsPerDay)
			t0 := w.Start()
			for j := 0; j < domainsPerSet; j++ {
				rtt := time.Duration(5+(i+j)%40) * time.Millisecond
				status := nsset.StatusOK
				if (i+j)%17 == 0 {
					status = nsset.StatusTimeout
				}
				agg.Add(k, t0.Add(time.Duration(j)*time.Second), status, rtt)
			}
		}
		ref, err := SealDay(dir, day, agg.Snapshot())
		if err != nil {
			b.Fatal(err)
		}
		st, err := os.Stat(filepath.Join(dir, ref.Name))
		if err != nil {
			b.Fatal(err)
		}
		sealedBytes += st.Size()
		// agg goes out of scope here: the sealed file is the only copy,
		// the same flat-RSS discipline study.WithDayStoreDir runs under
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	set, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer set.Close()

	var touched int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// join-style scan: every NSSet, baseline point probe plus the full
		// window list, across every sealed day
		for _, k := range keys {
			series := set.Series(k)
			for d := 0; d < days; d++ {
				day := clock.Day(d)
				if bl := set.Baseline(k, day); bl != nil {
					touched += int64(bl.Domains)
				}
				for _, m := range series.DayWindows(day) {
					touched += int64(m.Domains)
				}
			}
		}
	}
	b.StopTimer()
	if touched == 0 {
		b.Fatal("scan touched nothing")
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	var heapGrowth int64
	if after.HeapInuse > before.HeapInuse {
		heapGrowth = int64(after.HeapInuse - before.HeapInuse)
	}

	b.ReportMetric(float64(nsSets*domainsPerSet), "domains/day")
	b.ReportMetric(float64(sealedBytes)/1e6, "disk_MB")
	b.ReportMetric(float64(heapGrowth)/1e6, "heap_growth_MB")

	if limit := sealedBytes / 4; heapGrowth > limit {
		b.Fatalf("flat-RSS violated: opening and scanning %d MB of sealed days grew the heap by %d MB (limit %d MB)",
			sealedBytes/1e6, heapGrowth/1e6, limit/1e6)
	}
}
