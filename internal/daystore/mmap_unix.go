//go:build unix

package daystore

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only. The returned release closure unmaps;
// the file descriptor itself can be closed immediately after mapping.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
