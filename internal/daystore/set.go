package daystore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"dnsddos/internal/cache"
	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/nsset"
)

// set.go fronts a directory of sealed day files as one core.DayStore.
// Open only scans filenames; each day's file is opened, CRC-validated and
// mapped lazily on first access through a single-flight cache.LRU (the
// same primitive the join's day cache uses), so concurrent shards racing
// on a cold day map it exactly once and every later reader shares the
// view. Views are cached unbounded for the Set's lifetime: a mapping is
// address space, not resident memory — the OS pages day files in and out
// on demand, which is precisely the flat-RSS property the store exists
// for — and never evicting means no reader can hold a pointer into an
// unmapped file.
//
// Integrity contract: Open and Verify return typed ErrCorrupt errors.
// The core.DayStore methods have no error channel, so a day file that
// fails validation at first lazy access panics with the *CorruptError
// instead — inside a supervised study or distjoin run that panic is
// quarantined like any poisoned day-shard. Callers that want an error,
// not a panic, run Verify first (the study resume path additionally
// hash-verifies each file against its checkpoint reference before
// trusting the directory).

// Set is a read-only day store over a directory of sealed column files.
// Safe for concurrent use.
type Set struct {
	dir   string
	files map[clock.Day]string
	days  []clock.Day
	views *cache.LRU[clock.Day, viewResult]

	keysOnce sync.Once
	keys     []nsset.Key
}

// Set implements core.DayStore.
var _ core.DayStore = (*Set)(nil)

// viewResult is a memoized open attempt; err is sticky so a corrupt file
// is refused (not re-tried) on every access.
type viewResult struct {
	v   *View
	err error
}

// Open scans dir for sealed day files (day_NNNNNN.dcol; seal leftovers
// and foreign files are ignored) and returns the lazy store over them. An
// empty or missing directory is a valid empty store.
func Open(dir string) (*Set, error) {
	entries, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("daystore: scanning %s: %w", dir, err)
	}
	s := &Set{
		dir:   dir,
		files: make(map[clock.Day]string),
		views: cache.NewLRU[clock.Day, viewResult](0), // unbounded; see package comment
	}
	for _, e := range entries {
		if day, ok := parseFileName(e.Name()); ok {
			s.files[day] = e.Name()
			s.days = append(s.days, day)
		}
	}
	sort.Slice(s.days, func(i, j int) bool { return s.days[i] < s.days[j] })
	return s, nil
}

// Dir returns the directory the store serves.
func (s *Set) Dir() string { return s.dir }

// view opens (once) and returns day d's view; (nil, nil) when the day has
// no sealed file.
func (s *Set) view(d clock.Day) (*View, error) {
	name, ok := s.files[d]
	if !ok {
		return nil, nil
	}
	r, _ := s.views.GetOrCompute(d, func() viewResult {
		v, err := OpenDay(filepath.Join(s.dir, name), d)
		return viewResult{v: v, err: err}
	})
	return r.v, r.err
}

// mustView is view for the error-free DayStore accessors: an unreadable
// or corrupt day file panics with its typed error (see package comment).
func (s *Set) mustView(d clock.Day) *View {
	v, err := s.view(d)
	if err != nil {
		panic(err)
	}
	return v
}

// Verify eagerly opens and validates every sealed day file, returning the
// first integrity failure as a typed error. Valid views stay cached for
// subsequent reads.
func (s *Set) Verify() error {
	for _, d := range s.days {
		if _, err := s.view(d); err != nil {
			return err
		}
	}
	return nil
}

// Days returns every sealed day, ascending.
func (s *Set) Days() []clock.Day {
	out := make([]clock.Day, len(s.days))
	copy(out, s.days)
	return out
}

// viewBaselines adapts one day view (possibly absent) to
// core.BaselineView.
type viewBaselines struct {
	v *View
}

func (b viewBaselines) Baseline(k nsset.Key) *nsset.DayBaseline {
	if b.v == nil {
		return nil
	}
	return b.v.Baseline(k)
}

// Baselines returns day d's baseline view (empty when the day has no
// sealed file).
func (s *Set) Baselines(d clock.Day) core.BaselineView {
	return viewBaselines{v: s.mustView(d)}
}

// Baseline returns the day aggregate for (k, d), or nil.
func (s *Set) Baseline(k nsset.Key, d clock.Day) *nsset.DayBaseline {
	v := s.mustView(d)
	if v == nil {
		return nil
	}
	return v.Baseline(k)
}

// setSeries is one NSSet's lazy cross-day series: each DayWindows call
// indexes into that day's view only. No span is tracked (that would
// require touching every file), so Span reports ok false and the join
// walks the attack's own span — pure pruning either way.
type setSeries struct {
	s *Set
	k nsset.Key
}

func (ss setSeries) DayWindows(d clock.Day) []*nsset.WindowMetrics {
	v := ss.s.mustView(d)
	if v == nil {
		return nil
	}
	return v.Windows(ss.k)
}

func (ss setSeries) Span() (min, max clock.Window, ok bool) { return 0, 0, false }

// Series returns k's window view across the sealed days.
func (s *Set) Series(k nsset.Key) core.KeySeries {
	return setSeries{s: s, k: k}
}

// Window returns the metrics for (k, w), or nil.
func (s *Set) Window(k nsset.Key, w clock.Window) *nsset.WindowMetrics {
	v := s.mustView(w.Day())
	if v == nil {
		return nil
	}
	return v.Window(k, w)
}

// Keys returns the union of every sealed day's NSSets, ascending. It
// opens every view, so it is an audit/reporting accessor, not a join
// hot-path one; the result is memoized.
func (s *Set) Keys() []nsset.Key {
	s.keysOnce.Do(func() {
		seen := make(map[nsset.Key]struct{})
		for _, d := range s.days {
			v := s.mustView(d)
			if v == nil {
				continue
			}
			for i := 0; i < v.NumKeys(); i++ {
				seen[v.Key(i)] = struct{}{}
			}
		}
		s.keys = make([]nsset.Key, 0, len(seen))
		for k := range seen {
			s.keys = append(s.keys, k)
		}
		sort.Slice(s.keys, func(i, j int) bool { return s.keys[i] < s.keys[j] })
	})
	out := make([]nsset.Key, len(s.keys))
	copy(out, s.keys)
	return out
}

// Close unmaps every opened view. The Set is unusable afterwards.
func (s *Set) Close() error {
	var first error
	for _, d := range s.days {
		if r, ok := s.views.Get(d); ok && r.v != nil {
			if err := r.v.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
