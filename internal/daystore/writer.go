package daystore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dnsddos/internal/clock"
	"dnsddos/internal/nsset"
)

// writer.go seals nsset snapshots into immutable per-day column files.
// SealDay is the unit the supervised study loop calls per completed
// day-shard; Build splits an arbitrary multi-day snapshot (the distjoin
// worker's spool path). Both publish files with the checkpoint journal's
// atomic-write discipline — temp file, fsync, rename, parent-directory
// fsync — so a visible day file is always complete, and both return the
// content hash that checkpoint.DayRef records pin.

// SealedFile identifies one published day file by name and content hash.
// The hash is over the exact file bytes; checkpoint day references store
// it so resume can refuse a swapped or rotted file.
type SealedFile struct {
	Day    clock.Day
	Name   string
	SHA256 string
}

// keyRows is one NSSet's contribution to a day file.
type keyRows struct {
	key  nsset.Key
	base *nsset.DayBaseline
	wins []nsset.WindowMetrics
}

// SealDay encodes the snapshot as day's column file and atomically
// publishes it in dir (creating dir if needed), replacing any previous
// seal of the same day. Every snapshot row must belong to day — a window
// of another day or a foreign-day baseline is an error, as is a duplicate
// (key, window) or (key, day) row: the seal input is one completed
// day-shard, and silently merging or dropping rows here could diverge
// from the in-memory path. An empty snapshot seals a valid empty file.
func SealDay(dir string, day clock.Day, snap nsset.Snapshot) (SealedFile, error) {
	rows, err := collectDay(day, snap)
	if err != nil {
		return SealedFile{}, err
	}
	return sealRows(dir, day, rows)
}

// Build splits a snapshot by calendar day and seals one file per day,
// returning the refs in ascending day order. Days already sealed in dir
// are replaced.
func Build(dir string, snap nsset.Snapshot) ([]SealedFile, error) {
	byDay := make(map[clock.Day]*nsset.Snapshot)
	sub := func(d clock.Day) *nsset.Snapshot {
		s := byDay[d]
		if s == nil {
			s = &nsset.Snapshot{}
			byDay[d] = s
		}
		return s
	}
	for _, ws := range snap.Windows {
		s := sub(ws.M.Window.Day())
		s.Windows = append(s.Windows, ws)
	}
	for _, bs := range snap.Baselines {
		s := sub(bs.B.Day)
		s.Baselines = append(s.Baselines, bs)
	}
	days := make([]clock.Day, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	out := make([]SealedFile, 0, len(days))
	for _, d := range days {
		ref, err := SealDay(dir, d, *byDay[d])
		if err != nil {
			return nil, err
		}
		out = append(out, ref)
	}
	return out, nil
}

// collectDay groups the snapshot's rows per key, validating that every
// row belongs to day and that no (key, window) or baseline repeats.
func collectDay(day clock.Day, snap nsset.Snapshot) ([]keyRows, error) {
	byKey := make(map[nsset.Key]*keyRows)
	order := make([]nsset.Key, 0)
	get := func(k nsset.Key) *keyRows {
		r := byKey[k]
		if r == nil {
			r = &keyRows{key: k}
			byKey[k] = r
			order = append(order, k)
		}
		return r
	}
	for i := range snap.Windows {
		ws := &snap.Windows[i]
		if d := ws.M.Window.Day(); d != day {
			return nil, fmt.Errorf("daystore: sealing day %d: window %d belongs to day %d", int32(day), int64(ws.M.Window), int32(d))
		}
		get(ws.Key).wins = append(byKey[ws.Key].wins, ws.M)
	}
	for i := range snap.Baselines {
		bs := &snap.Baselines[i]
		if bs.B.Day != day {
			return nil, fmt.Errorf("daystore: sealing day %d: baseline belongs to day %d", int32(day), int32(bs.B.Day))
		}
		r := get(bs.Key)
		if r.base != nil {
			return nil, fmt.Errorf("daystore: sealing day %d: duplicate baseline for key %s", int32(day), bs.Key)
		}
		b := bs.B
		r.base = &b
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	rows := make([]keyRows, 0, len(order))
	for _, k := range order {
		r := byKey[k]
		sort.Slice(r.wins, func(i, j int) bool { return r.wins[i].Window < r.wins[j].Window })
		for i := 1; i < len(r.wins); i++ {
			if r.wins[i].Window == r.wins[i-1].Window {
				return nil, fmt.Errorf("daystore: sealing day %d: duplicate window %d for key %s", int32(day), int64(r.wins[i].Window), k)
			}
		}
		rows = append(rows, *r)
	}
	return rows, nil
}

// sealRows encodes and atomically publishes one day file.
func sealRows(dir string, day clock.Day, rows []keyRows) (SealedFile, error) {
	data := encodeDay(day, rows)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return SealedFile{}, fmt.Errorf("daystore: creating %s: %w", dir, err)
	}
	name := FileName(day)
	if err := atomicWrite(dir, name, data); err != nil {
		return SealedFile{}, err
	}
	sum := sha256.Sum256(data)
	return SealedFile{Day: day, Name: name, SHA256: hex.EncodeToString(sum[:])}, nil
}

// encodeDay lays the rows out in the package's column format.
func encodeDay(day clock.Day, rows []keyRows) []byte {
	nKeys, nBase, nWin, strLen := len(rows), 0, 0, 0
	for i := range rows {
		if rows[i].base != nil {
			nBase++
		}
		nWin += len(rows[i].wins)
		strLen += len(rows[i].key)
	}
	size := headerLen + nKeys*keyRowLen + strLen + nBase*baseRowLen + nWin*winRowLen + trailerLen
	buf := make([]byte, size)

	// header
	copy(buf[0:8], magic)
	binary.BigEndian.PutUint32(buf[8:12], Version)
	binary.BigEndian.PutUint32(buf[12:16], uint32(int32(day)))
	binary.BigEndian.PutUint32(buf[16:20], uint32(nKeys))
	binary.BigEndian.PutUint32(buf[20:24], uint32(nBase))
	binary.BigEndian.PutUint32(buf[24:28], uint32(nWin))
	binary.BigEndian.PutUint64(buf[28:36], uint64(strLen))
	binary.BigEndian.PutUint32(buf[36:40], crc32.ChecksumIEEE(buf[0:36]))

	keyTab := buf[headerLen:]
	strTab := keyTab[nKeys*keyRowLen:][:strLen]
	baseCol := keyTab[nKeys*keyRowLen+strLen:]
	winCol := baseCol[nBase*baseRowLen:]

	strOff, baseRow, winRow := 0, 0, 0
	for i := range rows {
		r := &rows[i]
		kt := keyTab[i*keyRowLen:]
		binary.BigEndian.PutUint64(kt[0:8], uint64(strOff))
		binary.BigEndian.PutUint32(kt[8:12], uint32(len(r.key)))
		copy(strTab[strOff:], r.key)
		strOff += len(r.key)
		if r.base != nil {
			binary.BigEndian.PutUint32(kt[12:16], uint32(baseRow))
			bc := baseCol[baseRow*baseRowLen:]
			binary.BigEndian.PutUint64(bc[0:8], uint64(int64(r.base.OKCount)))
			binary.BigEndian.PutUint64(bc[8:16], uint64(int64(r.base.SumRTT)))
			binary.BigEndian.PutUint64(bc[16:24], uint64(int64(r.base.Domains)))
			baseRow++
		} else {
			binary.BigEndian.PutUint32(kt[12:16], noBaseline)
		}
		binary.BigEndian.PutUint32(kt[16:20], uint32(winRow))
		binary.BigEndian.PutUint32(kt[20:24], uint32(len(r.wins)))
		for wi := range r.wins {
			m := &r.wins[wi]
			wc := winCol[(winRow+wi)*winRowLen:]
			binary.BigEndian.PutUint64(wc[0:8], uint64(int64(m.Window)))
			binary.BigEndian.PutUint64(wc[8:16], uint64(int64(m.Domains)))
			binary.BigEndian.PutUint64(wc[16:24], uint64(int64(m.OKCount)))
			binary.BigEndian.PutUint64(wc[24:32], uint64(int64(m.Timeouts)))
			binary.BigEndian.PutUint64(wc[32:40], uint64(int64(m.ServFails)))
			binary.BigEndian.PutUint64(wc[40:48], uint64(int64(m.SumRTT)))
			binary.BigEndian.PutUint64(wc[48:56], uint64(int64(m.MinRTT)))
			binary.BigEndian.PutUint64(wc[56:64], uint64(int64(m.MaxRTT)))
		}
		winRow += len(r.wins)
	}
	binary.BigEndian.PutUint32(buf[size-trailerLen:], crc32.ChecksumIEEE(buf[headerLen:size-trailerLen]))
	return buf
}

// Clear removes every sealed day file and seal leftover (*.tmp-*) from
// dir, preparing it for a fresh run. A missing directory is not an error.
func Clear(dir string) error {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("daystore: scanning %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		_, sealed := parseFileName(name)
		if !sealed && !isTempLeftover(name) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("daystore: clearing %s: %w", name, err)
		}
	}
	return nil
}

// isTempLeftover recognizes an unpublished atomicWrite temp file
// (day_NNNNNN.dcol.tmp-XXXX).
func isTempLeftover(name string) bool {
	return strings.HasPrefix(name, filePrefix) && strings.Contains(name, fileSuffix+".tmp-")
}

// VerifyFile re-reads dir/name and checks its content hash against
// wantSHA256 (a checkpoint.DayRef). A mismatch — the file was swapped,
// rotted, or half-replaced — is a typed ErrCorrupt refusal; a missing
// file is an os.ErrNotExist-wrapping error.
func VerifyFile(dir, name, wantSHA256 string) error {
	full := filepath.Join(dir, name)
	b, err := os.ReadFile(full)
	if err != nil {
		return fmt.Errorf("daystore: reading %s: %w", full, err)
	}
	sum := sha256.Sum256(b)
	if got := hex.EncodeToString(sum[:]); got != wantSHA256 {
		return corruptf(full, "content hash %s does not match recorded %s", got, wantSHA256)
	}
	return nil
}

// atomicWrite publishes data as dir/name with the checkpoint journal's
// durability discipline: synced temp file, atomic rename, parent-
// directory fsync. The directory sync pins the rename before the caller
// records the file as sealed (a checkpoint day reference must never name
// a file a power loss can un-publish).
func atomicWrite(dir, name string, data []byte) (err error) {
	f, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("daystore: creating temp for %s: %w", name, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(data); err != nil {
		return fmt.Errorf("daystore: writing %s: %w", name, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("daystore: syncing %s: %w", name, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("daystore: closing %s: %w", name, err)
	}
	if err = os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("daystore: publishing %s: %w", name, err)
	}
	df, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("daystore: opening %s for sync: %w", dir, err)
	}
	defer df.Close()
	if err = df.Sync(); err != nil {
		return fmt.Errorf("daystore: syncing %s: %w", dir, err)
	}
	return nil
}
