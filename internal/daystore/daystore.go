// Package daystore is the out-of-core columnar day-snapshot store
// (DESIGN §3.9): one sealed, immutable file per study day holding that
// day's NSSet aggregates as sorted fixed-width big-endian columns plus a
// string table, CRC-guarded and loaded as mmap-backed lazy views. It is
// the columnar backend of core.DayStore — observation-equivalent to the
// in-memory nsset.Aggregator path, byte-identical in join output, and the
// representation that lets ≥1M-domain sweeps join with flat RSS: the join
// maps day files on demand instead of holding every day's structs.
//
// File layout (day_NNNNNN.dcol, all integers big-endian):
//
//	header (40 B): magic "DNSCOL1\n" · u32 version · i32 day ·
//	               u32 nKeys · u32 nBase · u32 nWin · u64 strLen ·
//	               u32 headerCRC (CRC-32/IEEE over bytes [0,36))
//	keyTab  (nKeys × 24 B): u64 strOff · u32 strLen · u32 baseRow
//	               (0xFFFFFFFF = no baseline) · u32 winRow · u32 winCnt
//	strTab  (strLen B): concatenated NSSet key bytes, rows sorted
//	               ascending by key bytes
//	baseCol (nBase × 24 B): i64 okCount · i64 sumRTT(ns) · i64 domains
//	winCol  (nWin × 64 B): i64 window · i64 domains · i64 okCount ·
//	               i64 timeouts · i64 servFails · i64 sumRTT(ns) ·
//	               i64 minRTT(ns) · i64 maxRTT(ns); rows grouped by key
//	               (keyTab order), windows ascending within a key
//	trailer (4 B): u32 bodyCRC (CRC-32/IEEE over [40, size-4))
//
// Every aggregate field is an integer, so a round-trip through the store
// is exact — Eq. 1 float math downstream sees identical operands either
// way. Files are written via the atomic seal discipline (temp file +
// fsync + rename + parent-directory fsync), so a crash mid-seal leaves
// only an ignorable *.tmp-* leftover, never a torn visible file; loads
// refuse truncation, bit rot, version skew and header/name disagreement
// with a typed error (errors.Is(err, ErrCorrupt)), mirroring the
// checkpoint journal's refusal contract.
package daystore

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"dnsddos/internal/clock"
)

// Version is the on-disk column format version; bump on incompatible
// change.
const Version = 1

var magic = []byte("DNSCOL1\n")

const (
	headerLen  = 40
	keyRowLen  = 24
	baseRowLen = 24
	winRowLen  = 64
	trailerLen = 4
	// noBaseline marks a keyTab row without a baseline column entry.
	noBaseline = ^uint32(0)
)

// ErrCorrupt is the sentinel every load-time integrity failure matches:
// errors.Is(err, ErrCorrupt) is true for truncated files, CRC mismatches,
// version skew, malformed column bounds, and content-hash mismatches
// against a checkpoint reference. I/O errors (missing file, permissions)
// are not corruption and do not match.
var ErrCorrupt = errors.New("daystore: corrupt column file")

// CorruptError describes one refused column file.
type CorruptError struct {
	// Path is the refused file.
	Path string
	// Detail says which integrity check failed.
	Detail string
}

// Error renders the refusal.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("daystore: %s: %s", e.Path, e.Detail)
}

// Is makes errors.Is(err, ErrCorrupt) match.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// corruptf builds a CorruptError.
func corruptf(path, format string, args ...any) error {
	return &CorruptError{Path: path, Detail: fmt.Sprintf(format, args...)}
}

// fileSuffix is the sealed-day filename extension.
const fileSuffix = ".dcol"

const filePrefix = "day_"

// FileName returns the canonical sealed filename for a day.
func FileName(day clock.Day) string {
	return fmt.Sprintf("%s%06d%s", filePrefix, int32(day), fileSuffix)
}

// parseFileName extracts the day from a canonical sealed filename; ok is
// false for anything else (including *.tmp-* seal leftovers).
func parseFileName(name string) (clock.Day, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	mid := name[len(filePrefix) : len(name)-len(fileSuffix)]
	n, err := strconv.ParseInt(mid, 10, 32)
	if err != nil {
		return 0, false
	}
	return clock.Day(n), true
}
