//go:build !unix

package daystore

import (
	"io"
	"os"
)

// mapFile falls back to reading the whole file on platforms without
// mmap support; views still behave identically, just without the
// demand-paged residency.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return nil }, nil
}
