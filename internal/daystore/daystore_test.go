package daystore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
)

// randomAggregator fills an aggregator with a seeded random world: nKeys
// NSSets measured across days [0, nDays) with sparse windows, mixed
// statuses, and some keys deliberately missing some days.
func randomAggregator(rng *rand.Rand, nKeys, nDays int) *nsset.Aggregator {
	agg := nsset.NewAggregator()
	for ki := 0; ki < nKeys; ki++ {
		k := nsset.KeyOf([]netx.Addr{netx.Addr(0xC0000200 + uint32(ki)), netx.Addr(0xC6336400 + uint32(rng.Intn(64)))})
		for d := 0; d < nDays; d++ {
			if rng.Intn(4) == 0 { // key absent this day
				continue
			}
			day := clock.Day(d)
			samples := 1 + rng.Intn(8)
			for s := 0; s < samples; s++ {
				w := day.FirstWindow() + clock.Window(rng.Int63n(clock.WindowsPerDay))
				status := nsset.StatusOK
				switch rng.Intn(5) {
				case 0:
					status = nsset.StatusTimeout
				case 1:
					status = nsset.StatusServFail
				}
				rtt := time.Duration(1+rng.Intn(250)) * time.Millisecond
				agg.Add(k, w.Start().Add(time.Duration(rng.Intn(300))*time.Second), status, rtt)
			}
		}
	}
	return agg
}

// TestObservationEquivalence is the property test pinning the DayStore
// contract: a snapshot sealed through the columnar writer and read back
// through mmap views must be observationally identical to the live
// aggregator store — same keys, days, baselines, window lists, and point
// probes (hits and misses alike).
func TestObservationEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		agg := randomAggregator(rng, 10+rng.Intn(20), 4+rng.Intn(4))
		ref := core.NewAggregatorDayStore(agg)

		dir := t.TempDir()
		if _, err := Build(dir, agg.Snapshot()); err != nil {
			t.Fatalf("seed %d: Build: %v", seed, err)
		}
		set, err := Open(dir)
		if err != nil {
			t.Fatalf("seed %d: Open: %v", seed, err)
		}
		defer set.Close()
		if err := set.Verify(); err != nil {
			t.Fatalf("seed %d: Verify: %v", seed, err)
		}

		if got, want := set.Days(), ref.Days(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: Days = %v, want %v", seed, got, want)
		}
		if got, want := set.Keys(), ref.Keys(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: Keys = %d keys, want %d", seed, len(got), len(want))
		}

		days := ref.Days()
		probeDays := append(append([]clock.Day{}, days...), clock.Day(-1), days[len(days)-1]+1)
		for _, k := range ref.Keys() {
			for _, d := range probeDays {
				gb, wb := set.Baseline(k, d), ref.Baseline(k, d)
				if (gb == nil) != (wb == nil) {
					t.Fatalf("seed %d: Baseline(%s, %d) presence mismatch", seed, k, d)
				}
				if gb != nil && *gb != *wb {
					t.Fatalf("seed %d: Baseline(%s, %d) = %+v, want %+v", seed, k, d, *gb, *wb)
				}
				if bv := set.Baselines(d).Baseline(k); (bv == nil) != (wb == nil) || (bv != nil && *bv != *wb) {
					t.Fatalf("seed %d: Baselines(%d).Baseline(%s) mismatch", seed, d, k)
				}

				gw, ww := set.Series(k).DayWindows(d), ref.Series(k).DayWindows(d)
				if len(gw) != len(ww) {
					t.Fatalf("seed %d: DayWindows(%s, %d) has %d windows, want %d", seed, k, d, len(gw), len(ww))
				}
				for i := range gw {
					if *gw[i] != *ww[i] {
						t.Fatalf("seed %d: DayWindows(%s, %d)[%d] = %+v, want %+v", seed, k, d, i, *gw[i], *ww[i])
					}
					// point probe on a hit, and on the adjacent miss
					if m := set.Window(k, gw[i].Window); m == nil || *m != *ww[i] {
						t.Fatalf("seed %d: Window(%s, %d) mismatch", seed, k, gw[i].Window)
					}
				}
				pw := d.FirstWindow() - 1 // last window of the previous day: hit or miss, must agree
				gm, wm := set.Window(k, pw), ref.Window(k, pw)
				if (gm == nil) != (wm == nil) || (gm != nil && *gm != *wm) {
					t.Fatalf("seed %d: Window(%s, %d) = %v, want %v", seed, k, pw, gm, wm)
				}
			}
		}
		// unknown key: valid empty series everywhere
		ghost := nsset.KeyOf([]netx.Addr{netx.Addr(1)})
		if set.Baseline(ghost, days[0]) != nil || len(set.Series(ghost).DayWindows(days[0])) != 0 {
			t.Fatalf("seed %d: ghost key not empty", seed)
		}
	}
}

// TestSealDayRejectsForeignRows pins the seal input contract: a window or
// baseline of another day, or a duplicate row, refuses to seal.
func TestSealDayRejectsForeignRows(t *testing.T) {
	w5 := clock.Day(5).FirstWindow()
	base := nsset.Snapshot{
		Windows:   []nsset.WindowSnap{{Key: "k", M: nsset.WindowMetrics{Window: w5, Domains: 1}}},
		Baselines: []nsset.BaselineSnap{{Key: "k", B: nsset.DayBaseline{Day: 5, Domains: 1}}},
	}
	if _, err := SealDay(t.TempDir(), 6, base); err == nil {
		t.Fatal("sealing day 6 with day-5 rows succeeded")
	}
	dup := base
	dup.Baselines = append(dup.Baselines, dup.Baselines[0])
	if _, err := SealDay(t.TempDir(), 5, dup); err == nil {
		t.Fatal("duplicate baseline sealed")
	}
	dupW := base
	dupW.Windows = append(dupW.Windows, dupW.Windows[0])
	if _, err := SealDay(t.TempDir(), 5, dupW); err == nil {
		t.Fatal("duplicate window sealed")
	}
}

// TestSealEmptyDay: an empty snapshot seals a valid, openable empty file.
func TestSealEmptyDay(t *testing.T) {
	dir := t.TempDir()
	ref, err := SealDay(dir, 3, nsset.Snapshot{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenDay(filepath.Join(dir, ref.Name), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	if v.NumKeys() != 0 {
		t.Fatalf("empty day has %d keys", v.NumKeys())
	}
	if v.Baseline("k") != nil {
		t.Fatal("empty day returned a baseline")
	}
}

// sealOneDay seals a small two-key day and returns the directory, file
// name and content hash.
func sealOneDay(t *testing.T) (dir string, ref SealedFile) {
	t.Helper()
	dir = t.TempDir()
	agg := randomAggregator(rand.New(rand.NewSource(42)), 8, 1)
	ref, err := SealDay(dir, 0, agg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return dir, ref
}

// TestCorruptionRefusal is the typed-refusal table: every way a sealed
// file can be damaged — truncation at each section boundary, bit rot in
// header or body, magic or version skew, a renamed (wrong-day) file —
// must surface as errors.Is(err, ErrCorrupt), never as garbage data.
func TestCorruptionRefusal(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"truncated_below_header", func(b []byte) []byte { return b[:headerLen-1] }},
		{"truncated_mid_body", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated_last_byte", func(b []byte) []byte { return b[:len(b)-1] }},
		{"header_bit_flip", func(b []byte) []byte { b[16] ^= 0x01; return b }},
		{"body_bit_flip", func(b []byte) []byte { b[headerLen+3] ^= 0x80; return b }},
		{"trailer_bit_flip", func(b []byte) []byte { b[len(b)-1] ^= 0x10; return b }},
		{"bad_magic", func(b []byte) []byte { copy(b, "NOTACOLF"); return b }},
		{"padded", func(b []byte) []byte { return append(b, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, ref := sealOneDay(t)
			path := filepath.Join(dir, ref.Name)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(b), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenDay(path, 0); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("OpenDay error = %v, want ErrCorrupt", err)
			}
			set, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer set.Close()
			if err := set.Verify(); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Verify error = %v, want ErrCorrupt", err)
			}
			// The error-free DayStore accessors panic with the same typed
			// error; supervised runs quarantine it like a poisoned shard.
			func() {
				defer func() {
					r := recover()
					if err, ok := r.(error); !ok || !errors.Is(err, ErrCorrupt) {
						t.Fatalf("accessor panicked with %v, want ErrCorrupt", r)
					}
				}()
				set.Baselines(0)
				t.Fatal("accessor on corrupt day did not panic")
			}()
		})
	}
}

// TestWrongDayRefused: a day file renamed over another day's slot fails
// the header-day check.
func TestWrongDayRefused(t *testing.T) {
	dir, ref := sealOneDay(t)
	moved := filepath.Join(dir, FileName(7))
	if err := os.Rename(filepath.Join(dir, ref.Name), moved); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDay(moved, 7); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenDay error = %v, want ErrCorrupt", err)
	}
}

// TestVersionSkewRefused: a future format version (with a valid header
// CRC) is a typed refusal, not a misparse.
func TestVersionSkewRefused(t *testing.T) {
	dir, ref := sealOneDay(t)
	path := filepath.Join(dir, ref.Name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[11] = byte(Version + 1)
	// re-stamp the header CRC so only the version check can fire
	binary.BigEndian.PutUint32(b[36:40], crc32.ChecksumIEEE(b[0:36]))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDay(path, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenDay error = %v, want ErrCorrupt", err)
	}
}

// TestVerifyFile: the checkpoint-ref hash check refuses swapped bytes
// with ErrCorrupt and reports a missing file as the os error.
func TestVerifyFile(t *testing.T) {
	dir, ref := sealOneDay(t)
	if err := VerifyFile(dir, ref.Name, ref.SHA256); err != nil {
		t.Fatalf("pristine file failed verification: %v", err)
	}
	path := filepath.Join(dir, ref.Name)
	b, _ := os.ReadFile(path)
	b[headerLen] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(dir, ref.Name, ref.SHA256); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("swapped file error = %v, want ErrCorrupt", err)
	}
	if err := VerifyFile(dir, "day_000099.dcol", ref.SHA256); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file error = %v, want os.ErrNotExist", err)
	}
}

// TestOpenIgnoresLeftoversAndClear: seal leftovers and foreign files are
// invisible to Open; Clear removes sealed files and leftovers but leaves
// foreign files alone.
func TestOpenIgnoresLeftoversAndClear(t *testing.T) {
	dir, ref := sealOneDay(t)
	leftover := filepath.Join(dir, ref.Name+".tmp-123456")
	foreign := filepath.Join(dir, "notes.txt")
	for _, p := range []string{leftover, foreign} {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	set, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Days(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Days = %v, want [0]", got)
	}
	set.Close()
	if err := Clear(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ref.Name)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Clear left the sealed file")
	}
	if _, err := os.Stat(leftover); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("Clear left the temp leftover")
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("Clear removed a foreign file")
	}
}

// TestReseal: sealing the same day again atomically replaces the file and
// the new hash verifies.
func TestReseal(t *testing.T) {
	dir := t.TempDir()
	agg1 := randomAggregator(rand.New(rand.NewSource(1)), 4, 1)
	ref1, err := SealDay(dir, 0, agg1.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	agg2 := randomAggregator(rand.New(rand.NewSource(2)), 6, 1)
	ref2, err := SealDay(dir, 0, agg2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if ref1.SHA256 == ref2.SHA256 {
		t.Fatal("different worlds sealed to the same hash")
	}
	if err := VerifyFile(dir, ref2.Name, ref2.SHA256); err != nil {
		t.Fatal(err)
	}
}
