package daystore

import (
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// seal_kill_test.go makes the crash in "crash-safe seal" real: a child
// process seals days in a tight loop and is SIGKILLed at an arbitrary
// moment — no deferred cleanup, no flush, the kernel just drops the
// process. The atomic-write discipline (synced temp, rename, parent-dir
// fsync) must leave the directory in a state where every *visible* day
// file opens and validates; the only permissible debris is unpublished
// *.tmp-* leftovers, which Open ignores and Clear removes.

// TestSealKillHelper is the child entry point (standard re-exec helper
// pattern), not a test: it seals the same rotating set of days forever
// until killed.
func TestSealKillHelper(t *testing.T) {
	dir := os.Getenv("DAYSTORE_SEAL_HELPER_DIR")
	if dir == "" {
		t.Skip("helper process entry point, not a test")
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; ; i++ {
		// vary world size and day count so the kill can land on a fresh
		// seal or a replacement seal of any day alike
		agg := randomAggregator(rng, 3+i%5, 1+i%4)
		if _, err := Build(dir, agg.Snapshot()); err != nil {
			os.Exit(1)
		}
	}
}

func TestSealSurvivesSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestSealKillHelper$")
	cmd.Env = append(os.Environ(), "DAYSTORE_SEAL_HELPER_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// long enough for many seal iterations, arbitrary enough that the
	// kill lands anywhere in the write/sync/rename/dirsync sequence
	time.Sleep(300 * time.Millisecond)
	cmd.Process.Kill()
	cmd.Wait()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sealed, leftovers int
	for _, e := range entries {
		name := e.Name()
		if day, ok := parseFileName(name); ok {
			sealed++
			v, err := OpenDay(filepath.Join(dir, name), day)
			if err != nil {
				t.Fatalf("visible day file %s does not validate after SIGKILL: %v", name, err)
			}
			v.Close()
			continue
		}
		if isTempLeftover(name) {
			leftovers++
			continue
		}
		t.Fatalf("unexpected debris %q after SIGKILL", name)
	}
	if sealed == 0 {
		t.Fatal("child was killed before sealing anything; lengthen the grace period")
	}
	t.Logf("after SIGKILL: %d valid sealed files, %d temp leftovers", sealed, leftovers)

	// The whole-directory read path agrees, and Clear erases the debris.
	set, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Verify(); err != nil {
		t.Fatalf("Verify after SIGKILL: %v", err)
	}
	set.Close()
	if err := Clear(dir); err != nil {
		t.Fatal(err)
	}
	rest, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rest {
		if strings.Contains(e.Name(), fileSuffix) {
			t.Fatalf("Clear left %q", e.Name())
		}
	}
}
