package daystore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/nsset"
)

// view.go is the read side: a View is one sealed day file mapped (or, on
// platforms without mmap, read) into memory and validated once — header
// magic/version/CRC, exact size arithmetic, body CRC, and column bounds.
// After OpenDay succeeds every accessor is a pure decode over the mapped
// bytes: lookups binary-search the sorted key table, and the returned
// nsset structs are materialized on demand (transient, GC-able) instead
// of living resident for the whole run. A file that fails any check is
// refused with a typed *CorruptError at open; it is never partially
// readable.

// View is a read-only handle on one sealed day file. Safe for concurrent
// readers; Close unmaps (callers that share a View through daystore.Set
// never close it themselves).
type View struct {
	path  string
	day   clock.Day
	data  []byte
	unmap func() error

	nKeys, nBase, nWin int
	keyTab             []byte
	strTab             []byte
	baseCol            []byte
	winCol             []byte
}

// OpenDay opens and fully validates the sealed file for day at path. Any
// integrity failure — truncation, CRC mismatch, version skew, a header
// day disagreeing with the expected day, out-of-bounds column references
// — is a typed ErrCorrupt refusal. A missing file surfaces as the os
// error, not corruption.
func OpenDay(path string, day clock.Day) (*View, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("daystore: stat %s: %w", path, err)
	}
	size := st.Size()
	if size < int64(headerLen+trailerLen) {
		return nil, corruptf(path, "file is %d bytes, smaller than the minimal %d-byte frame", size, headerLen+trailerLen)
	}
	data, unmap, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("daystore: mapping %s: %w", path, err)
	}
	v, err := newView(path, day, data, unmap)
	if err != nil {
		unmap()
		return nil, err
	}
	return v, nil
}

// newView validates the mapped bytes and slices the column sections.
func newView(path string, day clock.Day, data []byte, unmap func() error) (*View, error) {
	if !bytes.Equal(data[0:8], magic) {
		return nil, corruptf(path, "bad magic (not a daystore column file)")
	}
	if got, want := binary.BigEndian.Uint32(data[36:40]), crc32.ChecksumIEEE(data[0:36]); got != want {
		return nil, corruptf(path, "header crc mismatch (%08x != %08x)", got, want)
	}
	if ver := binary.BigEndian.Uint32(data[8:12]); ver != Version {
		return nil, corruptf(path, "format version %d, this build reads %d", ver, Version)
	}
	if hd := clock.Day(int32(binary.BigEndian.Uint32(data[12:16]))); hd != day {
		return nil, corruptf(path, "header says day %d, expected day %d", int32(hd), int32(day))
	}
	nKeys := int(binary.BigEndian.Uint32(data[16:20]))
	nBase := int(binary.BigEndian.Uint32(data[20:24]))
	nWin := int(binary.BigEndian.Uint32(data[24:28]))
	strLen := binary.BigEndian.Uint64(data[28:36])

	want := int64(headerLen) + int64(nKeys)*keyRowLen + int64(strLen) +
		int64(nBase)*baseRowLen + int64(nWin)*winRowLen + trailerLen
	if int64(len(data)) != want {
		return nil, corruptf(path, "file is %d bytes, header implies %d (truncated or padded)", len(data), want)
	}
	body := data[headerLen : len(data)-trailerLen]
	if got, wantCRC := binary.BigEndian.Uint32(data[len(data)-trailerLen:]), crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, corruptf(path, "body crc mismatch (%08x != %08x)", got, wantCRC)
	}

	v := &View{
		path:  path,
		day:   day,
		data:  data,
		unmap: unmap,
		nKeys: nKeys,
		nBase: nBase,
		nWin:  nWin,
	}
	v.keyTab = data[headerLen : headerLen+nKeys*keyRowLen]
	off := headerLen + nKeys*keyRowLen
	v.strTab = data[off : off+int(strLen)]
	off += int(strLen)
	v.baseCol = data[off : off+nBase*baseRowLen]
	off += nBase * baseRowLen
	v.winCol = data[off : off+nWin*winRowLen]

	// Column-bound validation: the CRC guards against rot, but only the
	// bound checks make a CRC-consistent-yet-malformed file safe to index.
	for i := 0; i < nKeys; i++ {
		strOff, sl, baseRow, winRow, winCnt := v.keyRow(i)
		if strOff+uint64(sl) > strLen {
			return nil, corruptf(path, "key %d string [%d,+%d) exceeds string table (%d bytes)", i, strOff, sl, strLen)
		}
		if baseRow != noBaseline && int(baseRow) >= nBase {
			return nil, corruptf(path, "key %d baseline row %d out of range (%d rows)", i, baseRow, nBase)
		}
		if int(winRow)+int(winCnt) > nWin {
			return nil, corruptf(path, "key %d window rows [%d,+%d) out of range (%d rows)", i, winRow, winCnt, nWin)
		}
	}
	return v, nil
}

// Close unmaps the file. The View is unusable afterwards.
func (v *View) Close() error {
	if v.unmap == nil {
		return nil
	}
	u := v.unmap
	v.unmap = nil
	v.data, v.keyTab, v.strTab, v.baseCol, v.winCol = nil, nil, nil, nil, nil
	return u()
}

// Day returns the day the view serves.
func (v *View) Day() clock.Day { return v.day }

// NumKeys returns how many NSSets the day file holds.
func (v *View) NumKeys() int { return v.nKeys }

// keyRow decodes keyTab row i.
func (v *View) keyRow(i int) (strOff uint64, strLen, baseRow, winRow, winCnt uint32) {
	kt := v.keyTab[i*keyRowLen:]
	return binary.BigEndian.Uint64(kt[0:8]),
		binary.BigEndian.Uint32(kt[8:12]),
		binary.BigEndian.Uint32(kt[12:16]),
		binary.BigEndian.Uint32(kt[16:20]),
		binary.BigEndian.Uint32(kt[20:24])
}

// keyBytes returns row i's key bytes, aliasing the mapped file.
func (v *View) keyBytes(i int) []byte {
	strOff, strLen, _, _, _ := v.keyRow(i)
	return v.strTab[strOff : strOff+uint64(strLen)]
}

// Key returns row i's NSSet key (copied out of the mapping).
func (v *View) Key(i int) nsset.Key { return nsset.Key(v.keyBytes(i)) }

// find binary-searches the sorted key table.
func (v *View) find(k nsset.Key) (int, bool) {
	kb := []byte(k)
	lo, hi := 0, v.nKeys
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch c := bytes.Compare(v.keyBytes(mid), kb); {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mid, true
		}
	}
	return lo, false
}

// baselineAt materializes baseline column row.
func (v *View) baselineAt(row uint32) *nsset.DayBaseline {
	bc := v.baseCol[int(row)*baseRowLen:]
	return &nsset.DayBaseline{
		Day:     v.day,
		OKCount: int(int64(binary.BigEndian.Uint64(bc[0:8]))),
		SumRTT:  time.Duration(int64(binary.BigEndian.Uint64(bc[8:16]))),
		Domains: int(int64(binary.BigEndian.Uint64(bc[16:24]))),
	}
}

// windowAt decodes window column row into m.
func (v *View) windowAt(row int, m *nsset.WindowMetrics) {
	wc := v.winCol[row*winRowLen:]
	m.Window = clock.Window(int64(binary.BigEndian.Uint64(wc[0:8])))
	m.Domains = int(int64(binary.BigEndian.Uint64(wc[8:16])))
	m.OKCount = int(int64(binary.BigEndian.Uint64(wc[16:24])))
	m.Timeouts = int(int64(binary.BigEndian.Uint64(wc[24:32])))
	m.ServFails = int(int64(binary.BigEndian.Uint64(wc[32:40])))
	m.SumRTT = time.Duration(int64(binary.BigEndian.Uint64(wc[40:48])))
	m.MinRTT = time.Duration(int64(binary.BigEndian.Uint64(wc[48:56])))
	m.MaxRTT = time.Duration(int64(binary.BigEndian.Uint64(wc[56:64])))
}

// Baseline returns k's day aggregate, or nil if k was not measured.
func (v *View) Baseline(k nsset.Key) *nsset.DayBaseline {
	i, ok := v.find(k)
	if !ok {
		return nil
	}
	_, _, baseRow, _, _ := v.keyRow(i)
	if baseRow == noBaseline {
		return nil
	}
	return v.baselineAt(baseRow)
}

// Windows materializes k's measured windows of this day, ascending by
// window (the writer's invariant). Nil when k has none.
func (v *View) Windows(k nsset.Key) []*nsset.WindowMetrics {
	i, ok := v.find(k)
	if !ok {
		return nil
	}
	_, _, _, winRow, winCnt := v.keyRow(i)
	if winCnt == 0 {
		return nil
	}
	ms := make([]nsset.WindowMetrics, winCnt)
	out := make([]*nsset.WindowMetrics, winCnt)
	for wi := 0; wi < int(winCnt); wi++ {
		v.windowAt(int(winRow)+wi, &ms[wi])
		out[wi] = &ms[wi]
	}
	return out
}

// Window returns the metrics of (k, w), or nil. The probe binary-searches
// k's window rows without materializing the rest of the day.
func (v *View) Window(k nsset.Key, w clock.Window) *nsset.WindowMetrics {
	i, ok := v.find(k)
	if !ok {
		return nil
	}
	_, _, _, winRow, winCnt := v.keyRow(i)
	lo, hi := int(winRow), int(winRow)+int(winCnt)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		got := clock.Window(int64(binary.BigEndian.Uint64(v.winCol[mid*winRowLen:][0:8])))
		switch {
		case got < w:
			lo = mid + 1
		case got > w:
			hi = mid
		default:
			m := &nsset.WindowMetrics{}
			v.windowAt(mid, m)
			return m
		}
	}
	return nil
}

// appendKeys appends every key of the day in ascending order.
func (v *View) appendKeys(dst []nsset.Key) []nsset.Key {
	for i := 0; i < v.nKeys; i++ {
		dst = append(dst, v.Key(i))
	}
	return dst
}
