package nsset

import (
	"sort"

	"dnsddos/internal/clock"
)

// snapshot.go flattens an Aggregator into an exported, value-typed form
// that serializes cleanly (gob/JSON), so completed day-shards can be
// checkpointed to disk (internal/checkpoint) and folded back in on
// resume (study.RunContext). The flattened form is deterministically
// ordered: the same aggregator contents always produce the same
// Snapshot, and therefore the same encoded bytes.

// WindowSnap pairs one NSSet with the metrics of one 5-minute window.
type WindowSnap struct {
	Key Key
	M   WindowMetrics
}

// BaselineSnap pairs one NSSet with one day baseline.
type BaselineSnap struct {
	Key Key
	B   DayBaseline
}

// Snapshot is a value-typed dump of an Aggregator's contents, ordered by
// (Key, Window) and (Key, Day).
type Snapshot struct {
	Windows   []WindowSnap
	Baselines []BaselineSnap
}

// Snapshot dumps the aggregator's retained windows and baselines.
func (a *Aggregator) Snapshot() Snapshot {
	var s Snapshot
	wkeys := make([]Key, 0, len(a.windows))
	for k := range a.windows {
		wkeys = append(wkeys, k)
	}
	sort.Slice(wkeys, func(i, j int) bool { return wkeys[i] < wkeys[j] })
	for _, k := range wkeys {
		wm := a.windows[k]
		ws := make([]clock.Window, 0, len(wm))
		for w := range wm {
			ws = append(ws, wm[w].Window)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		for _, w := range ws {
			s.Windows = append(s.Windows, WindowSnap{Key: k, M: *wm[w]})
		}
	}
	bkeys := make([]Key, 0, len(a.baselines))
	for k := range a.baselines {
		bkeys = append(bkeys, k)
	}
	sort.Slice(bkeys, func(i, j int) bool { return bkeys[i] < bkeys[j] })
	for _, k := range bkeys {
		bm := a.baselines[k]
		ds := make([]clock.Day, 0, len(bm))
		for d := range bm {
			ds = append(ds, d)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		for _, d := range ds {
			s.Baselines = append(s.Baselines, BaselineSnap{Key: k, B: *bm[d]})
		}
	}
	return s
}

// AddSnapshot merges a snapshot's contents into the aggregator, the
// restore counterpart of Snapshot. The window filter applies as it does
// for live samples; a resumed run rebuilds the same filter from the same
// configuration, so checkpointed windows are re-admitted verbatim.
func (a *Aggregator) AddSnapshot(s Snapshot) {
	for i := range s.Windows {
		ws := &s.Windows[i]
		if a.filter != nil && !a.filter(ws.M.Window) {
			continue
		}
		wm := a.windows[ws.Key]
		if wm == nil {
			wm = make(map[clock.Window]*WindowMetrics)
			a.windows[ws.Key] = wm
		}
		if m := wm[ws.M.Window]; m != nil {
			m.merge(&ws.M)
		} else {
			cp := ws.M
			wm[ws.M.Window] = &cp
			a.noteWindow(ws.Key, &cp)
		}
	}
	for i := range s.Baselines {
		bs := &s.Baselines[i]
		bm := a.baselines[bs.Key]
		if bm == nil {
			bm = make(map[clock.Day]*DayBaseline)
			a.baselines[bs.Key] = bm
		}
		if b := bm[bs.B.Day]; b != nil {
			b.merge(&bs.B)
		} else {
			cp := bs.B
			bm[bs.B.Day] = &cp
		}
	}
}
