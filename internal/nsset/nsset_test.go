package nsset

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
)

func addrs(ss ...string) []netx.Addr {
	out := make([]netx.Addr, len(ss))
	for i, s := range ss {
		out[i] = netx.MustParseAddr(s)
	}
	return out
}

func TestKeyOfOrderIndependent(t *testing.T) {
	a := KeyOf(addrs("192.0.2.1", "192.0.2.2", "198.51.100.1"))
	b := KeyOf(addrs("198.51.100.1", "192.0.2.2", "192.0.2.1"))
	if a != b {
		t.Error("key should not depend on input order")
	}
}

func TestKeyOfDedup(t *testing.T) {
	a := KeyOf(addrs("192.0.2.1", "192.0.2.1", "192.0.2.2"))
	if a.Size() != 2 {
		t.Errorf("size = %d, want 2", a.Size())
	}
}

func TestKeyAddrsRoundTrip(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		in := make([]netx.Addr, len(vals))
		for i, v := range vals {
			in[i] = netx.Addr(v)
		}
		k := KeyOf(in)
		out := k.Addrs()
		// output sorted, unique, subset check both ways
		seen := map[netx.Addr]bool{}
		for _, a := range in {
			seen[a] = true
		}
		if len(out) != len(seen) {
			return false
		}
		for i, a := range out {
			if !seen[a] {
				return false
			}
			if i > 0 && out[i-1] >= a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyContains(t *testing.T) {
	k := KeyOf(addrs("192.0.2.1", "192.0.2.2"))
	if !k.Contains(netx.MustParseAddr("192.0.2.1")) {
		t.Error("should contain member")
	}
	if k.Contains(netx.MustParseAddr("192.0.2.3")) {
		t.Error("should not contain non-member")
	}
}

func TestKeyString(t *testing.T) {
	k := KeyOf(addrs("192.0.2.2", "192.0.2.1"))
	if got := k.String(); got != "{192.0.2.1, 192.0.2.2}" {
		t.Errorf("String = %q", got)
	}
}

func TestDiversityClass(t *testing.T) {
	cases := []struct {
		d    Diversity
		want AnycastClass
	}{
		{Diversity{NumNS: 3, NumAnycast: 0}, Unicast},
		{Diversity{NumNS: 3, NumAnycast: 1}, PartialAnycast},
		{Diversity{NumNS: 3, NumAnycast: 3}, FullAnycast},
	}
	for _, c := range cases {
		if got := c.d.Class(); got != c.want {
			t.Errorf("%+v class = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestWindowMetrics(t *testing.T) {
	var m WindowMetrics
	m.addSample(StatusOK, 10*time.Millisecond)
	m.addSample(StatusOK, 30*time.Millisecond)
	m.addSample(StatusTimeout, 0)
	m.addSample(StatusServFail, 0)
	if m.Domains != 4 || m.OKCount != 2 || m.Timeouts != 1 || m.ServFails != 1 {
		t.Errorf("counts: %+v", m)
	}
	if m.AvgRTT() != 20*time.Millisecond {
		t.Errorf("AvgRTT = %v", m.AvgRTT())
	}
	if m.MinRTT != 10*time.Millisecond || m.MaxRTT != 30*time.Millisecond {
		t.Errorf("min/max = %v/%v", m.MinRTT, m.MaxRTT)
	}
	if m.FailureRate() != 0.5 {
		t.Errorf("FailureRate = %v", m.FailureRate())
	}
}

func TestAggregatorWindowsAndBaselines(t *testing.T) {
	agg := NewAggregator()
	k := KeyOf(addrs("192.0.2.1"))
	day0 := clock.StudyStart
	// day 0: baseline at 10ms
	for i := 0; i < 10; i++ {
		agg.Add(k, day0.Add(time.Duration(i)*time.Hour), StatusOK, 10*time.Millisecond)
	}
	// day 1: one window at 100ms
	attackTime := day0.AddDate(0, 0, 1).Add(12 * time.Hour)
	agg.Add(k, attackTime, StatusOK, 100*time.Millisecond)
	agg.Add(k, attackTime.Add(time.Minute), StatusOK, 100*time.Millisecond)

	w := clock.WindowOf(attackTime)
	imp, ok := agg.ImpactOnRTT(k, w)
	if !ok {
		t.Fatal("impact should be defined")
	}
	if imp < 9.9 || imp > 10.1 {
		t.Errorf("impact = %v, want ≈10", imp)
	}

	if b := agg.Baseline(k, 0); b == nil || b.OKCount != 10 || b.AvgRTT() != 10*time.Millisecond {
		t.Errorf("baseline = %+v", b)
	}
	if m := agg.Window(k, w); m == nil || m.Domains != 2 {
		t.Errorf("window = %+v", m)
	}
}

func TestImpactUndefinedWithoutBaseline(t *testing.T) {
	agg := NewAggregator()
	k := KeyOf(addrs("192.0.2.1"))
	tm := clock.StudyStart.Add(50 * 24 * time.Hour)
	agg.Add(k, tm, StatusOK, 5*time.Millisecond)
	if _, ok := agg.ImpactOnRTT(k, clock.WindowOf(tm)); ok {
		t.Error("impact without previous-day baseline should be undefined")
	}
	// all-timeout window: no RTT either
	agg.Add(k, tm.AddDate(0, 0, -1), StatusOK, 5*time.Millisecond)
	tm2 := tm.Add(time.Hour)
	agg.Add(k, tm2, StatusTimeout, 0)
	if _, ok := agg.ImpactOnRTT(k, clock.WindowOf(tm2)); ok {
		t.Error("impact of an all-failure window should be undefined")
	}
}

func TestImpactVsDayMatchesDefault(t *testing.T) {
	agg := NewAggregator()
	k := KeyOf(addrs("10.0.0.1"))
	tm := clock.StudyStart.AddDate(0, 0, 9).Add(2 * time.Hour)
	agg.Add(k, tm.AddDate(0, 0, -1), StatusOK, 8*time.Millisecond)
	agg.Add(k, tm, StatusOK, 24*time.Millisecond)
	w := clock.WindowOf(tm)
	a, okA := agg.ImpactOnRTT(k, w)
	b, okB := agg.ImpactVsDay(k, w, w.Day().Prev())
	if !okA || !okB || a != b {
		t.Errorf("ImpactOnRTT=%v,%v ImpactVsDay=%v,%v", a, okA, b, okB)
	}
}

func TestWindowFilterKeepsBaselines(t *testing.T) {
	agg := NewAggregator()
	agg.SetWindowFilter(func(clock.Window) bool { return false })
	k := KeyOf(addrs("10.0.0.1"))
	tm := clock.StudyStart.Add(3 * time.Hour)
	agg.Add(k, tm, StatusOK, 5*time.Millisecond)
	if agg.Window(k, clock.WindowOf(tm)) != nil {
		t.Error("filtered window should not be retained")
	}
	if b := agg.Baseline(k, clock.DayOf(tm)); b == nil || b.OKCount != 1 {
		t.Error("baseline must be retained regardless of filter")
	}
}

func TestMergeEquivalentToSequential(t *testing.T) {
	k := KeyOf(addrs("10.0.0.1", "10.0.0.2"))
	rng := rand.New(rand.NewPCG(1, 1))
	type sample struct {
		t   time.Time
		st  QueryStatus
		rtt time.Duration
	}
	var samples []sample
	for i := 0; i < 500; i++ {
		samples = append(samples, sample{
			t:   clock.StudyStart.Add(time.Duration(rng.IntN(3*86400)) * time.Second),
			st:  QueryStatus(rng.IntN(3)),
			rtt: time.Duration(rng.IntN(50)) * time.Millisecond,
		})
	}
	seq := NewAggregator()
	for _, s := range samples {
		seq.Add(k, s.t, s.st, s.rtt)
	}
	a1, a2 := NewAggregator(), NewAggregator()
	for i, s := range samples {
		if i%2 == 0 {
			a1.Add(k, s.t, s.st, s.rtt)
		} else {
			a2.Add(k, s.t, s.st, s.rtt)
		}
	}
	a1.Merge(a2)
	for _, wm := range seq.Windows(k) {
		got := a1.Window(k, wm.Window)
		if got == nil || *got != *wm {
			t.Fatalf("window %v: merged %+v != sequential %+v", wm.Window, got, wm)
		}
	}
	for d := clock.Day(0); d < 3; d++ {
		sb, mb := seq.Baseline(k, d), a1.Baseline(k, d)
		if (sb == nil) != (mb == nil) {
			t.Fatalf("day %d baseline presence mismatch", d)
		}
		if sb != nil && *sb != *mb {
			t.Fatalf("day %d baseline %+v != %+v", d, mb, sb)
		}
	}
}

func TestKeysDeterministic(t *testing.T) {
	agg := NewAggregator()
	k1 := KeyOf(addrs("10.0.0.2"))
	k2 := KeyOf(addrs("10.0.0.1"))
	agg.Add(k1, clock.StudyStart, StatusOK, time.Millisecond)
	agg.Add(k2, clock.StudyStart, StatusOK, time.Millisecond)
	keys := agg.Keys()
	if len(keys) != 2 || keys[0] != k2 || keys[1] != k1 {
		t.Errorf("Keys = %v", keys)
	}
}

func TestStatusString(t *testing.T) {
	if StatusOK.String() != "OK" || StatusTimeout.String() != "TIMEOUT" || StatusServFail.String() != "SERVFAIL" {
		t.Error("status strings")
	}
}

// TestMergeCommutesAndAssociates: sharded aggregation must not depend on
// merge order (testing/quick over random sample partitions).
func TestMergeCommutesAndAssociates(t *testing.T) {
	k := KeyOf(addrs("10.1.0.1"))
	build := func(seed uint64) (*Aggregator, *Aggregator, *Aggregator) {
		rng := rand.New(rand.NewPCG(seed, 0x77))
		parts := []*Aggregator{NewAggregator(), NewAggregator(), NewAggregator()}
		for i := 0; i < 300; i++ {
			tm := clock.StudyStart.Add(time.Duration(rng.IntN(2*86400)) * time.Second)
			parts[rng.IntN(3)].Add(k, tm, QueryStatus(rng.IntN(3)), time.Duration(rng.IntN(40))*time.Millisecond)
		}
		return parts[0], parts[1], parts[2]
	}
	equal := func(x, y *Aggregator) bool {
		for _, wm := range x.Windows(k) {
			o := y.Window(k, wm.Window)
			if o == nil || *o != *wm {
				return false
			}
		}
		return len(x.Windows(k)) == len(y.Windows(k))
	}
	f := func(seed uint64) bool {
		a1, b1, c1 := build(seed)
		a2, b2, c2 := build(seed)
		// (a ⊕ b) ⊕ c
		a1.Merge(b1)
		a1.Merge(c1)
		// c ⊕ (b ⊕ a)
		b2.Merge(a2)
		c2.Merge(b2)
		return equal(a1, c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
