package nsset

import (
	"reflect"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
)

func sampleAggregator() *Aggregator {
	a := NewAggregator()
	k1 := KeyOf([]netx.Addr{netx.MustParseAddr("192.0.2.1")})
	k2 := KeyOf([]netx.Addr{netx.MustParseAddr("192.0.2.2"), netx.MustParseAddr("192.0.2.3")})
	t0 := clock.Day(3).Start()
	a.Add(k1, t0.Add(time.Hour), StatusOK, 10*time.Millisecond)
	a.Add(k1, t0.Add(time.Hour+time.Minute), StatusOK, 30*time.Millisecond)
	a.Add(k1, t0.Add(7*time.Hour), StatusTimeout, 0)
	a.Add(k2, t0.Add(2*time.Hour), StatusServFail, 0)
	a.Add(k2, t0.Add(26*time.Hour), StatusOK, 5*time.Millisecond) // next day
	return a
}

func aggEqual(a, b *Aggregator) bool {
	return reflect.DeepEqual(a.Snapshot(), b.Snapshot())
}

func TestSnapshotRoundTrip(t *testing.T) {
	a := sampleAggregator()
	restored := NewAggregator()
	restored.AddSnapshot(a.Snapshot())
	if !aggEqual(a, restored) {
		t.Fatalf("round trip changed contents:\n%+v\nvs\n%+v", a.Snapshot(), restored.Snapshot())
	}
	// spot-check a derived statistic survives
	k1 := KeyOf([]netx.Addr{netx.MustParseAddr("192.0.2.1")})
	ob, rb := a.Baseline(k1, 3), restored.Baseline(k1, 3)
	if rb == nil || *ob != *rb {
		t.Errorf("baseline differs: %+v vs %+v", ob, rb)
	}
	ow := a.Window(k1, clock.WindowOf(clock.Day(3).Start().Add(time.Hour)))
	rw := restored.Window(k1, clock.WindowOf(clock.Day(3).Start().Add(time.Hour)))
	if rw == nil || *ow != *rw {
		t.Errorf("window differs: %+v vs %+v", ow, rw)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	a, b := sampleAggregator(), sampleAggregator()
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("identical aggregators produced different snapshots")
	}
}

func TestAddSnapshotMergesIntoExisting(t *testing.T) {
	// restoring a snapshot into a non-empty aggregator must behave like
	// Merge, not overwrite
	viaMerge := NewAggregator()
	viaMerge.Merge(sampleAggregator())
	viaMerge.Merge(sampleAggregator())

	viaSnap := NewAggregator()
	viaSnap.AddSnapshot(sampleAggregator().Snapshot())
	viaSnap.AddSnapshot(sampleAggregator().Snapshot())

	if !aggEqual(viaMerge, viaSnap) {
		t.Fatal("AddSnapshot and Merge disagree")
	}
}

func TestAddSnapshotRespectsFilter(t *testing.T) {
	src := sampleAggregator()
	keepW := clock.WindowOf(clock.Day(3).Start().Add(time.Hour))
	dst := NewAggregator()
	dst.SetWindowFilter(func(w clock.Window) bool { return w == keepW })
	dst.AddSnapshot(src.Snapshot())
	k1 := KeyOf([]netx.Addr{netx.MustParseAddr("192.0.2.1")})
	if dst.Window(k1, keepW) == nil {
		t.Error("admitted window missing")
	}
	if dst.Window(k1, clock.WindowOf(clock.Day(3).Start().Add(7*time.Hour))) != nil {
		t.Error("filtered window restored anyway")
	}
	// baselines always survive the filter
	if dst.Baseline(k1, 3) == nil {
		t.Error("baseline lost")
	}
}
