// Package nsset implements the paper's NSSet abstraction (§4.1): the set of
// authoritative nameserver IPv4 addresses shared by one or more domains.
// Because OpenINTEL's agnostic resolver does not reveal which nameserver
// answered, performance metrics are aggregated per NSSet in 5-minute
// windows, and the attack-impact metric (Eq. 1) compares a window's average
// RTT against the previous day's average.
package nsset

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
)

// Key uniquely identifies an NSSet: the big-endian concatenation of its
// sorted member addresses. It is a compact, comparable map key.
type Key string

// KeyOf builds a Key from addresses (sorted and deduplicated internally).
func KeyOf(addrs []netx.Addr) Key {
	s := make([]netx.Addr, len(addrs))
	copy(s, addrs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	buf := make([]byte, 0, 4*len(s))
	var prev netx.Addr
	for i, a := range s {
		if i > 0 && a == prev {
			continue
		}
		prev = a
		buf = binary.BigEndian.AppendUint32(buf, uint32(a))
	}
	return Key(buf)
}

// Addrs decodes the member addresses.
func (k Key) Addrs() []netx.Addr {
	out := make([]netx.Addr, 0, len(k)/4)
	for i := 0; i+4 <= len(k); i += 4 {
		out = append(out, netx.Addr(binary.BigEndian.Uint32([]byte(k[i:i+4]))))
	}
	return out
}

// Size returns the number of member nameserver addresses.
func (k Key) Size() int { return len(k) / 4 }

// Contains reports whether the set includes addr.
func (k Key) Contains(addr netx.Addr) bool {
	for _, a := range k.Addrs() {
		if a == addr {
			return true
		}
	}
	return false
}

// String renders the member addresses, e.g. "{192.0.2.1, 192.0.2.2}".
func (k Key) String() string {
	addrs := k.Addrs()
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Diversity summarizes the §6.6 resilience dimensions of an NSSet.
type Diversity struct {
	NumNS       int
	NumASNs     int
	NumPrefixes int // distinct /24s
	NumAnycast  int // members whose /24 matches the anycast census
}

// AnycastClass classifies the anycast adoption of the set (Fig. 11 legend:
// unicast / partial anycast / anycast).
type AnycastClass int

// Anycast classes.
const (
	Unicast AnycastClass = iota
	PartialAnycast
	FullAnycast
)

// String renders the class label used in Figure 11.
func (c AnycastClass) String() string {
	switch c {
	case Unicast:
		return "unicast"
	case PartialAnycast:
		return "partial-anycast"
	case FullAnycast:
		return "anycast"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Class derives the AnycastClass from the diversity counters.
func (d Diversity) Class() AnycastClass {
	switch {
	case d.NumAnycast == 0:
		return Unicast
	case d.NumAnycast < d.NumNS:
		return PartialAnycast
	default:
		return FullAnycast
	}
}

// QueryStatus is the outcome of one measurement query, matching the
// OpenINTEL response status codes the paper uses (OK, SERVFAIL, TIMEOUT).
type QueryStatus int

// Statuses.
const (
	StatusOK QueryStatus = iota
	StatusTimeout
	StatusServFail
	StatusOtherError
)

// String renders the status.
func (s QueryStatus) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusTimeout:
		return "TIMEOUT"
	case StatusServFail:
		return "SERVFAIL"
	default:
		return "ERROR"
	}
}

// WindowMetrics aggregates the measurements of one NSSet in one 5-minute
// window (§4.1: domain count, average/min/max RTT, error counts).
type WindowMetrics struct {
	Window    clock.Window
	Domains   int // domains measured (resolved or failed) in the window
	OKCount   int
	Timeouts  int
	ServFails int
	SumRTT    time.Duration // over OK responses
	MinRTT    time.Duration
	MaxRTT    time.Duration
}

// AvgRTT returns the mean RTT over successful queries in the window.
func (m *WindowMetrics) AvgRTT() time.Duration {
	if m.OKCount == 0 {
		return 0
	}
	return m.SumRTT / time.Duration(m.OKCount)
}

// FailureRate returns the fraction of measured domains that failed to
// resolve (timeout or SERVFAIL), the y-axis of Figure 7.
func (m *WindowMetrics) FailureRate() float64 {
	if m.Domains == 0 {
		return 0
	}
	return float64(m.Timeouts+m.ServFails) / float64(m.Domains)
}

// addSample folds one query result into the window.
func (m *WindowMetrics) addSample(status QueryStatus, rtt time.Duration) {
	m.Domains++
	switch status {
	case StatusOK:
		m.OKCount++
		m.SumRTT += rtt
		if m.MinRTT == 0 || rtt < m.MinRTT {
			m.MinRTT = rtt
		}
		if rtt > m.MaxRTT {
			m.MaxRTT = rtt
		}
	case StatusTimeout:
		m.Timeouts++
	case StatusServFail:
		m.ServFails++
	default:
		m.ServFails++
	}
}

// merge folds another window's totals into m; commutative and
// associative, so shard merge order never changes the result.
func (m *WindowMetrics) merge(o *WindowMetrics) {
	m.Domains += o.Domains
	m.OKCount += o.OKCount
	m.Timeouts += o.Timeouts
	m.ServFails += o.ServFails
	m.SumRTT += o.SumRTT
	if m.MinRTT == 0 || (o.MinRTT != 0 && o.MinRTT < m.MinRTT) {
		m.MinRTT = o.MinRTT
	}
	if o.MaxRTT > m.MaxRTT {
		m.MaxRTT = o.MaxRTT
	}
}

// DayBaseline is the per-day aggregate used as the Eq. 1 denominator.
type DayBaseline struct {
	Day     clock.Day
	OKCount int
	SumRTT  time.Duration
	Domains int
}

// AvgRTT returns the day's mean successful-query RTT.
func (b *DayBaseline) AvgRTT() time.Duration {
	if b.OKCount == 0 {
		return 0
	}
	return b.SumRTT / time.Duration(b.OKCount)
}

// merge folds another baseline's totals into b.
func (b *DayBaseline) merge(o *DayBaseline) {
	b.OKCount += o.OKCount
	b.SumRTT += o.SumRTT
	b.Domains += o.Domains
}

// Aggregator folds per-query measurement samples into per-NSSet window
// metrics and day baselines. It is not safe for concurrent use; the
// measurement engine owns one per run (shard across days and Merge for
// parallel sweeps).
type Aggregator struct {
	windows   map[Key]map[clock.Window]*WindowMetrics
	baselines map[Key]map[clock.Day]*DayBaseline
	// span tracks, per NSSet, the [min, max] retained-window range, so a
	// Series consumer can clamp a probe loop to windows that can exist
	// instead of probing an attack's whole span (the join engine's fast
	// path).
	span map[Key]windowSpan
	// daywin buckets each NSSet's retained windows by calendar day.
	// Measurements are sparse within an attack span (each domain is swept
	// once a day), so iterating a day's actual windows beats probing
	// every 5-minute window of the span — the join engine's inner loop.
	daywin map[Key]map[clock.Day][]*WindowMetrics
	// filter, when set, limits per-window metric retention; day
	// baselines are always kept. Long longitudinal runs set it to the
	// attack windows (plus margins) to bound memory, matching how the
	// paper's Hadoop pipeline only materializes joined windows.
	filter func(clock.Window) bool
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		windows:   make(map[Key]map[clock.Window]*WindowMetrics),
		baselines: make(map[Key]map[clock.Day]*DayBaseline),
		span:      make(map[Key]windowSpan),
		daywin:    make(map[Key]map[clock.Day][]*WindowMetrics),
	}
}

// SetWindowFilter restricts which windows retain per-window metrics. Nil
// (the default) keeps everything.
func (a *Aggregator) SetWindowFilter(f func(clock.Window) bool) { a.filter = f }

// Add folds one query observation for the NSSet k at time t.
func (a *Aggregator) Add(k Key, t time.Time, status QueryStatus, rtt time.Duration) {
	w := clock.WindowOf(t)
	if a.filter == nil || a.filter(w) {
		wm := a.windows[k]
		if wm == nil {
			wm = make(map[clock.Window]*WindowMetrics)
			a.windows[k] = wm
		}
		m := wm[w]
		if m == nil {
			m = &WindowMetrics{Window: w}
			wm[w] = m
			a.noteWindow(k, m)
		}
		m.addSample(status, rtt)
	}

	d := clock.DayOf(t)
	bm := a.baselines[k]
	if bm == nil {
		bm = make(map[clock.Day]*DayBaseline)
		a.baselines[k] = bm
	}
	b := bm[d]
	if b == nil {
		b = &DayBaseline{Day: d}
		bm[d] = b
	}
	b.Domains++
	if status == StatusOK {
		b.OKCount++
		b.SumRTT += rtt
	}
}

// Merge folds another aggregator's contents into a. Use after sharded
// parallel sweeps; sample order within a window does not matter for any
// retained statistic.
func (a *Aggregator) Merge(o *Aggregator) {
	for k, wm := range o.windows {
		dst := a.windows[k]
		if dst == nil {
			dst = make(map[clock.Window]*WindowMetrics, len(wm))
			a.windows[k] = dst
		}
		for w, m := range wm {
			t := dst[w]
			if t == nil {
				cp := *m
				dst[w] = &cp
				a.noteWindow(k, &cp)
				continue
			}
			t.merge(m)
		}
	}
	for k, bm := range o.baselines {
		dst := a.baselines[k]
		if dst == nil {
			dst = make(map[clock.Day]*DayBaseline, len(bm))
			a.baselines[k] = dst
		}
		for d, b := range bm {
			t := dst[d]
			if t == nil {
				cp := *b
				dst[d] = &cp
				continue
			}
			t.merge(b)
		}
	}
}

// Window returns the metrics for (k, w), or nil if nothing was measured.
func (a *Aggregator) Window(k Key, w clock.Window) *WindowMetrics {
	return a.windows[k][w]
}

// Series is a read-only view of one NSSet's per-window metrics. The join
// engine fetches it once per (attack, NSSet) pair so the inner window
// loop pays one cheap int-keyed lookup per window instead of re-hashing
// the (string-keyed) NSSet on every probe. The view aliases the
// aggregator's live maps; it must not be used while the aggregator is
// being mutated.
type Series struct {
	m      map[clock.Window]*WindowMetrics
	daywin map[clock.Day][]*WindowMetrics
	span   windowSpan
}

// windowSpan is an inclusive [min, max] window range; min > max means
// empty.
type windowSpan struct{ min, max clock.Window }

// noteWindow records a fresh window insertion: it widens k's
// retained-window span and buckets the metrics pointer under its
// calendar day. Called wherever a new *WindowMetrics enters the
// aggregator (Add, Merge, AddSnapshot).
func (a *Aggregator) noteWindow(k Key, m *WindowMetrics) {
	w := m.Window
	if s, ok := a.span[k]; !ok {
		a.span[k] = windowSpan{min: w, max: w}
	} else {
		if w < s.min {
			s.min = w
		}
		if w > s.max {
			s.max = w
		}
		a.span[k] = s
	}
	dm := a.daywin[k]
	if dm == nil {
		dm = make(map[clock.Day][]*WindowMetrics)
		a.daywin[k] = dm
	}
	// Keep each day bucket sorted by window so consumers can binary-search
	// a span. Measurements arrive in sweep (time) order, so this insertion
	// sort is almost always a plain append.
	d := w.Day()
	lst := append(dm[d], m)
	for i := len(lst) - 1; i > 0 && lst[i-1].Window > w; i-- {
		lst[i-1], lst[i] = lst[i], lst[i-1]
	}
	dm[d] = lst
}

// Series returns the window-metrics view for k. The zero view (NSSet
// never measured) is valid: At returns nil for every window.
func (a *Aggregator) Series(k Key) Series {
	sp, ok := a.span[k]
	if !ok {
		sp = windowSpan{min: 1, max: 0} // empty
	}
	return Series{m: a.windows[k], daywin: a.daywin[k], span: sp}
}

// At returns the metrics for window w, or nil if nothing was measured.
func (s Series) At(w clock.Window) *WindowMetrics { return s.m[w] }

// Len returns the number of measured windows in the series.
func (s Series) Len() int { return len(s.m) }

// Span returns the series' inclusive retained-window range. An NSSet
// with no retained windows returns min > max (the empty span), matching
// Clamp's empty-intersection convention.
func (s Series) Span() (min, max clock.Window) { return s.span.min, s.span.max }

// Clamp intersects [from, to] with the series' retained-window span. A
// probe loop over the clamped range visits every window that can have
// metrics; an empty intersection returns from > to.
func (s Series) Clamp(from, to clock.Window) (clock.Window, clock.Window) {
	if from < s.span.min {
		from = s.span.min
	}
	if to > s.span.max {
		to = s.span.max
	}
	return from, to
}

// DayWindows returns the measured windows of calendar day d, sorted
// ascending by window. The slice is shared; treat it as read-only.
// Iterating (or binary-searching) it beats probing At window by window
// when measurements are sparse within the probed span.
func (s Series) DayWindows(d clock.Day) []*WindowMetrics { return s.daywin[d] }

// DayBaselines collects the day-d baseline of every NSSet measured on
// that day. It is the build step of the join engine's per-day snapshot
// index (O(#NSSets), amortized by the LRU day cache); the returned map is
// freshly allocated, but the *DayBaseline values alias the aggregator's
// live aggregates and must be treated as read-only.
func (a *Aggregator) DayBaselines(d clock.Day) map[Key]*DayBaseline {
	out := make(map[Key]*DayBaseline)
	for k, bm := range a.baselines {
		if b, ok := bm[d]; ok {
			out[k] = b
		}
	}
	return out
}

// Baseline returns the day aggregate for (k, d), or nil.
func (a *Aggregator) Baseline(k Key, d clock.Day) *DayBaseline {
	return a.baselines[k][d]
}

// Keys returns all NSSets with any measurements, in deterministic order.
func (a *Aggregator) Keys() []Key {
	out := make([]Key, 0, len(a.windows))
	for k := range a.windows {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Days returns every day with any baseline measurements, in ascending
// order.
func (a *Aggregator) Days() []clock.Day {
	seen := make(map[clock.Day]struct{})
	for _, bm := range a.baselines {
		for d := range bm {
			seen[d] = struct{}{}
		}
	}
	out := make([]clock.Day, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Windows returns the measured windows for an NSSet in ascending order.
func (a *Aggregator) Windows(k Key) []*WindowMetrics {
	wm := a.windows[k]
	out := make([]*WindowMetrics, 0, len(wm))
	for _, m := range wm {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Window < out[j].Window })
	return out
}

// ImpactOnRTT computes Eq. 1 for NSSet k in window w:
//
//	Impact_on_RTT = AvgRTT(5 min window) / AvgRTT(day before)
//
// The boolean is false when either term is missing (no measurements in the
// window, or no baseline the previous day).
func (a *Aggregator) ImpactOnRTT(k Key, w clock.Window) (float64, bool) {
	m := a.Window(k, w)
	if m == nil || m.OKCount == 0 {
		return 0, false
	}
	b := a.Baseline(k, w.Day().Prev())
	if b == nil || b.OKCount == 0 {
		return 0, false
	}
	base := b.AvgRTT()
	if base <= 0 {
		return 0, false
	}
	return float64(m.AvgRTT()) / float64(base), true
}

// ImpactVsDay computes the Eq. 1 variant with an arbitrary baseline day
// (used by the baseline-window ablation, DESIGN §6.2).
func (a *Aggregator) ImpactVsDay(k Key, w clock.Window, baseline clock.Day) (float64, bool) {
	m := a.Window(k, w)
	if m == nil || m.OKCount == 0 {
		return 0, false
	}
	b := a.Baseline(k, baseline)
	if b == nil || b.OKCount == 0 {
		return 0, false
	}
	base := b.AvgRTT()
	if base <= 0 {
		return 0, false
	}
	return float64(m.AvgRTT()) / float64(base), true
}
