package nsset

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
)

func BenchmarkKeyOf(b *testing.B) {
	addrs := []netx.Addr{0x51000001, 0x51000101, 0x51000201, 0x51000301}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = KeyOf(addrs)
	}
}

func BenchmarkAggregatorAdd(b *testing.B) {
	agg := NewAggregator()
	keys := make([]Key, 64)
	for i := range keys {
		keys[i] = KeyOf([]netx.Addr{netx.Addr(0x51000001 + i), netx.Addr(0x51000101 + i)})
	}
	rng := rand.New(rand.NewPCG(1, 1))
	times := make([]time.Time, 1024)
	for i := range times {
		times[i] = clock.StudyStart.Add(time.Duration(rng.IntN(86400*30)) * time.Second)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Add(keys[i%len(keys)], times[i%len(times)], StatusOK, 10*time.Millisecond)
	}
}

func BenchmarkImpactOnRTT(b *testing.B) {
	agg := NewAggregator()
	k := KeyOf([]netx.Addr{1, 2, 3})
	day := clock.Day(40)
	for i := 0; i < 100; i++ {
		agg.Add(k, day.Prev().Start().Add(time.Duration(i)*time.Minute), StatusOK, 10*time.Millisecond)
		agg.Add(k, day.Start().Add(time.Duration(i)*time.Minute), StatusOK, 25*time.Millisecond)
	}
	w := clock.WindowOf(day.Start())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := agg.ImpactOnRTT(k, w); !ok {
			b.Fatal("impact undefined")
		}
	}
}
