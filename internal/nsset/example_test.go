package nsset_test

import (
	"fmt"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
)

// ExampleAggregator_ImpactOnRTT shows the paper's Eq. 1 in action: a day of
// ~10 ms baseline measurements followed by a 5-minute window at ~100 ms
// yields a 10× impact.
func ExampleAggregator_ImpactOnRTT() {
	key := nsset.KeyOf([]netx.Addr{
		netx.MustParseAddr("192.0.2.1"),
		netx.MustParseAddr("192.0.2.2"),
	})
	agg := nsset.NewAggregator()

	baselineDay := clock.Day(10)
	for hour := 0; hour < 24; hour++ {
		agg.Add(key, baselineDay.Start().Add(time.Duration(hour)*time.Hour),
			nsset.StatusOK, 10*time.Millisecond)
	}
	attack := baselineDay.End().Add(14 * time.Hour)
	agg.Add(key, attack, nsset.StatusOK, 100*time.Millisecond)
	agg.Add(key, attack.Add(time.Minute), nsset.StatusOK, 100*time.Millisecond)

	impact, ok := agg.ImpactOnRTT(key, clock.WindowOf(attack))
	fmt.Printf("impact defined: %v, Impact_on_RTT = %.0fx\n", ok, impact)
	// Output:
	// impact defined: true, Impact_on_RTT = 10x
}

// ExampleKeyOf shows that NSSet identity ignores order and duplicates.
func ExampleKeyOf() {
	a := nsset.KeyOf([]netx.Addr{
		netx.MustParseAddr("192.0.2.2"),
		netx.MustParseAddr("192.0.2.1"),
		netx.MustParseAddr("192.0.2.1"),
	})
	b := nsset.KeyOf([]netx.Addr{
		netx.MustParseAddr("192.0.2.1"),
		netx.MustParseAddr("192.0.2.2"),
	})
	fmt.Println(a == b, a)
	// Output:
	// true {192.0.2.1, 192.0.2.2}
}
