package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// stream_test.go pins the stream-coherent fault subset on real TCP
// sockets: a byte stream cannot lose, duplicate, reorder, or shorten
// bytes and stay decodable, so StreamConn must translate the datagram
// fault model rather than apply it literally. The distributed-join
// control plane (internal/distjoin) relies on exactly these semantics
// when the chaos suite wraps its connections.

// tcpPair returns both ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

// TestStreamDuplicateReorderTruncateNoOp: the datagram-only faults must
// be inert on streams — every written byte arrives exactly once, in
// order, at full length, even with all three probabilities pinned to 1.
func TestStreamDuplicateReorderTruncateNoOp(t *testing.T) {
	client, server := tcpPair(t)
	inj := New(7)
	inj.SetProfile(Profile{Duplicate: 1, Reorder: 1, Truncate: 1})
	sc := WrapStream(client, inj)

	writes := [][]byte{
		[]byte("frame-one"),
		[]byte("frame-two"),
		[]byte("frame-three"),
	}
	var want bytes.Buffer
	go func() {
		for _, w := range writes {
			if _, err := sc.Write(w); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		sc.Close()
	}()
	for _, w := range writes {
		want.Write(w)
	}
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("stream mangled: got %q, want %q", got, want.Bytes())
	}
}

// TestStreamCorruptFlipsOneByteInCopy: corruption on a stream damages
// exactly one byte of what goes on the wire — length preserved, order
// preserved — and never the caller's buffer, which the control plane
// may retain for retry.
func TestStreamCorruptFlipsOneByteInCopy(t *testing.T) {
	client, server := tcpPair(t)
	inj := New(11)
	inj.SetProfile(Profile{Corrupt: 1})
	sc := WrapStream(client, inj)

	orig := []byte("payload-under-test")
	sent := append([]byte(nil), orig...)
	go func() {
		if _, err := sc.Write(sent); err != nil {
			t.Errorf("write: %v", err)
		}
		sc.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sent, orig) {
		t.Errorf("caller's buffer mutated: %q", sent)
	}
	if len(got) != len(orig) {
		t.Fatalf("corrupt changed length: got %d bytes, want %d", len(got), len(orig))
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corrupt flipped %d bytes, want exactly 1 (got %q)", diff, got)
	}
}

// TestStreamDropIsConnReset: Drop on a stream aborts the connection with
// ECONNRESET — the caller-visible signature of a killed peer, which is
// what lets chaos tests stand in for SIGKILL.
func TestStreamDropIsConnReset(t *testing.T) {
	client, _ := tcpPair(t)
	inj := New(3)
	inj.SetProfile(Profile{Drop: 1})
	sc := WrapStream(client, inj)
	_, err := sc.Write([]byte("doomed"))
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("stream drop returned %v, want ECONNRESET", err)
	}
	// the underlying connection must be dead too, not just the one write
	if _, err := client.Write([]byte("after")); err == nil {
		t.Error("underlying connection still writable after stream drop")
	}
}

// TestStreamReadLatency: latency applies to reads, delaying delivery
// without changing bytes.
func TestStreamReadLatency(t *testing.T) {
	client, server := tcpPair(t)
	inj := New(5)
	inj.SetProfile(Profile{Latency: 30 * time.Millisecond})
	sc := WrapStream(client, inj)

	go server.Write([]byte("pong"))
	buf := make([]byte, 16)
	start := time.Now()
	n, err := sc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("read returned after %v, want >= 30ms of injected latency", elapsed)
	}
	if string(buf[:n]) != "pong" {
		t.Errorf("latency changed bytes: %q", buf[:n])
	}
}
