package faultinject

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// fakePacketConn is an in-memory net.PacketConn: reads pop from inbox,
// writes append to outbox.
type fakePacketConn struct {
	inbox  [][]byte
	outbox [][]byte
	addrs  []net.Addr
}

type fakeAddr string

func (a fakeAddr) Network() string { return "fake" }
func (a fakeAddr) String() string  { return string(a) }

func (c *fakePacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	if len(c.inbox) == 0 {
		return 0, nil, net.ErrClosed
	}
	p := c.inbox[0]
	c.inbox = c.inbox[1:]
	n := copy(b, p)
	return n, fakeAddr("peer"), nil
}

func (c *fakePacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.outbox = append(c.outbox, append([]byte(nil), b...))
	c.addrs = append(c.addrs, addr)
	return len(b), nil
}

func (c *fakePacketConn) Close() error                       { return nil }
func (c *fakePacketConn) LocalAddr() net.Addr                { return fakeAddr("local") }
func (c *fakePacketConn) SetDeadline(t time.Time) error      { return nil }
func (c *fakePacketConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fakePacketConn) SetWriteDeadline(t time.Time) error { return nil }

func TestScheduleAt(t *testing.T) {
	attack := Profile{Drop: 0.6, Jitter: 200 * time.Millisecond}
	s := AttackWindow(2*time.Second, 5*time.Second, attack)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0},
		{time.Second, 0},
		{2 * time.Second, 0.6}, // window start is inclusive
		{4 * time.Second, 0.6},
		{5 * time.Second, 0}, // window end ramps back down
		{time.Hour, 0},
	}
	for _, c := range cases {
		if got := s.At(c.at).Drop; got != c.want {
			t.Errorf("At(%v).Drop = %v, want %v", c.at, got, c.want)
		}
	}
	// before any phase: healthy
	if p := (Schedule{Phases: []Phase{{Start: time.Second, Profile: attack}}}).At(0); p.Active() {
		t.Errorf("profile before first phase should be healthy, got %+v", p)
	}
	// phases given out of order are normalized on Engage
	inj := New(1)
	inj.Engage(Schedule{Phases: []Phase{
		{Start: time.Hour, Profile: Profile{}},
		{Start: 0, Profile: attack},
	}})
	if got := inj.Profile().Drop; got != 0.6 {
		t.Errorf("engaged profile Drop = %v, want 0.6", got)
	}
	inj.Disengage()
	if inj.Profile().Active() {
		t.Error("disengaged injector must fall back to the healthy static profile")
	}
}

func TestWriteDrop(t *testing.T) {
	fc := &fakePacketConn{}
	inj := New(1)
	inj.SetProfile(Profile{Drop: 1})
	pc := WrapPacketConn(fc, inj)
	n, err := pc.WriteTo([]byte("abc"), fakeAddr("x"))
	if n != 3 || err != nil {
		t.Fatalf("dropped write must report success, got n=%d err=%v", n, err)
	}
	if len(fc.outbox) != 0 {
		t.Errorf("drop=1 leaked %d datagrams", len(fc.outbox))
	}
}

func TestReadDropConsumes(t *testing.T) {
	fc := &fakePacketConn{inbox: [][]byte{[]byte("one"), []byte("two")}}
	inj := New(1)
	inj.SetProfile(Profile{Drop: 1})
	pc := WrapPacketConn(fc, inj)
	buf := make([]byte, 16)
	if _, _, err := pc.ReadFrom(buf); err == nil {
		t.Fatal("with drop=1 every datagram is consumed; read must surface the closed error")
	}
}

func TestDuplicate(t *testing.T) {
	fc := &fakePacketConn{}
	inj := New(1)
	inj.SetProfile(Profile{Duplicate: 1})
	pc := WrapPacketConn(fc, inj)
	pc.WriteTo([]byte("abc"), fakeAddr("x"))
	if len(fc.outbox) != 2 {
		t.Fatalf("duplicate=1 wrote %d datagrams, want 2", len(fc.outbox))
	}
	if !bytes.Equal(fc.outbox[0], fc.outbox[1]) {
		t.Error("duplicate datagrams must be identical")
	}
}

func TestCorrupt(t *testing.T) {
	fc := &fakePacketConn{}
	inj := New(1)
	inj.SetProfile(Profile{Corrupt: 1})
	pc := WrapPacketConn(fc, inj)
	orig := []byte{0x10, 0x20, 0x30, 0x40}
	pc.WriteTo(orig, fakeAddr("x"))
	if len(fc.outbox) != 1 {
		t.Fatalf("wrote %d datagrams, want 1", len(fc.outbox))
	}
	if bytes.Equal(fc.outbox[0], orig) {
		t.Error("corrupt=1 delivered the datagram unmodified")
	}
	if orig[0] != 0x10 || orig[1] != 0x20 || orig[2] != 0x30 || orig[3] != 0x40 {
		t.Error("corruption must not mutate the caller's buffer")
	}
	// exactly one bit differs
	diff := 0
	for i := range orig {
		for b := fc.outbox[0][i] ^ orig[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1", diff)
	}
}

func TestReorderSwapsAdjacentWrites(t *testing.T) {
	fc := &fakePacketConn{}
	inj := New(1)
	inj.SetProfile(Profile{Reorder: 1})
	pc := WrapPacketConn(fc, inj)
	pc.WriteTo([]byte("first"), fakeAddr("a"))
	pc.WriteTo([]byte("second"), fakeAddr("b"))
	// both writes rolled reorder: first held, then released when second
	// is held; closing flushes the last held one
	pc.Close()
	if len(fc.outbox) != 2 {
		t.Fatalf("wrote %d datagrams, want 2", len(fc.outbox))
	}
	if string(fc.outbox[0]) != "first" || string(fc.outbox[1]) != "second" {
		// with reorder=1 every write is held one slot, so delivery
		// order is preserved pairwise here; the important invariant is
		// no datagram is lost
		t.Logf("order: %q, %q", fc.outbox[0], fc.outbox[1])
	}
	if string(fc.addrs[0].(fakeAddr)) != "a" && string(fc.addrs[0].(fakeAddr)) != "b" {
		t.Errorf("held datagram lost its address: %v", fc.addrs)
	}
}

func TestReorderReleasesOnPlainWrite(t *testing.T) {
	fc := &fakePacketConn{}
	inj := New(1)
	inj.SetProfile(Profile{Reorder: 1})
	pc := WrapPacketConn(fc, inj)
	pc.WriteTo([]byte("held"), fakeAddr("a"))
	inj.SetProfile(Profile{}) // healthy again
	pc.WriteTo([]byte("later"), fakeAddr("b"))
	if len(fc.outbox) != 2 {
		t.Fatalf("wrote %d datagrams, want 2", len(fc.outbox))
	}
	if string(fc.outbox[0]) != "later" || string(fc.outbox[1]) != "held" {
		t.Errorf("reorder must deliver the later datagram first: %q, %q",
			fc.outbox[0], fc.outbox[1])
	}
}

func TestLatencyDelays(t *testing.T) {
	fc := &fakePacketConn{}
	inj := New(1)
	inj.SetProfile(Profile{Latency: 30 * time.Millisecond})
	pc := WrapPacketConn(fc, inj)
	start := time.Now()
	pc.WriteTo([]byte("x"), fakeAddr("a"))
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("write returned after %v, want ≥30ms of injected latency", d)
	}
}

func TestZeroProfilePassesThrough(t *testing.T) {
	fc := &fakePacketConn{inbox: [][]byte{[]byte("hello")}}
	pc := WrapPacketConn(fc, New(1))
	buf := make([]byte, 16)
	n, addr, err := pc.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "hello" || addr == nil {
		t.Fatalf("healthy read: n=%d addr=%v err=%v", n, addr, err)
	}
	pc.WriteTo([]byte("world"), fakeAddr("a"))
	if len(fc.outbox) != 1 || string(fc.outbox[0]) != "world" {
		t.Fatalf("healthy write mangled: %q", fc.outbox)
	}
}

func TestStreamDropAborts(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	inj := New(1)
	inj.SetProfile(Profile{Drop: 1})
	sc := WrapStream(client, inj)
	if _, err := sc.Write([]byte("x")); err == nil {
		t.Error("stream drop must abort the connection with an error")
	}
}

func TestDatagramConnFaults(t *testing.T) {
	// loopback UDP echo: server echoes every datagram back
	srv, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		buf := make([]byte, 1024)
		for {
			n, addr, err := srv.ReadFrom(buf)
			if err != nil {
				return
			}
			srv.WriteTo(buf[:n], addr)
		}
	}()
	conn, err := net.Dial("udp", srv.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	inj := New(1)
	dc := WrapDatagram(conn, inj)

	// healthy round trip
	dc.Write([]byte("ping"))
	dc.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	n, err := dc.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("healthy echo: %q err=%v", buf[:n], err)
	}

	// outbound drop: nothing echoes, read times out
	inj.SetProfile(Profile{Drop: 1})
	dc.Write([]byte("lost"))
	dc.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := dc.Read(buf); err == nil {
		t.Fatal("with drop=1 the echo must never arrive")
	}
}

// TestTruncateReadsOnly: Truncate cuts inbound datagrams below the DNS
// header so they can never decode, and leaves outbound datagrams whole —
// truncating a query on the way out would turn a decode fault into
// silent loss at the far end.
func TestTruncateReadsOnly(t *testing.T) {
	payload := []byte("0123456789abcdef") // 16 bytes, > truncateLen
	fc := &fakePacketConn{inbox: [][]byte{append([]byte(nil), payload...)}}
	inj := New(1)
	inj.SetProfile(Profile{Truncate: 1})
	pc := WrapPacketConn(fc, inj)

	buf := make([]byte, 64)
	n, _, err := pc.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != truncateLen {
		t.Errorf("truncated read delivered %d bytes, want %d", n, truncateLen)
	}
	if n >= 12 {
		t.Error("a truncated datagram must be shorter than a DNS header")
	}
	if !bytes.Equal(buf[:n], payload[:n]) {
		t.Error("truncation must cut, not rewrite, the prefix")
	}

	if _, err := pc.WriteTo(payload, fakeAddr("x")); err != nil {
		t.Fatal(err)
	}
	if len(fc.outbox) != 1 || !bytes.Equal(fc.outbox[0], payload) {
		t.Errorf("outbound datagram altered under Truncate: %q", fc.outbox)
	}

	// short datagrams pass through whole — there is nothing left to cut
	fc.inbox = [][]byte{[]byte("abc")}
	n, _, err = pc.ReadFrom(buf)
	if err != nil || n != 3 {
		t.Errorf("short datagram: n=%d err=%v, want 3 bytes intact", n, err)
	}
}
