// Package faultinject degrades real sockets the way a DDoS degrades a
// network path: composable netem-style wrappers around net.PacketConn and
// net.Conn inject packet drop, added latency with jitter, duplication,
// reordering, and byte corruption, under a profile that can be reshaped
// while traffic flows. A time-scripted Schedule ramps an "attack window"
// up and back down, so the live authserver/resolver/dnsload path can
// reproduce the degradation the paper measures on the simulated data
// plane (§6.3): the same query stream, the same nsset.QueryStatus
// classification, but over genuine sockets.
//
// The wrappers sit on either end of the path: authserver plugs a wrapped
// listener in via Server.WrapUDP/WrapTCP (faults on the server's edge,
// like an attacked authoritative), and resolver.UDPClient/dnsload wrap
// their client sockets (faults on the resolver's path, like congested
// transit). All randomness comes from a seeded generator so tests are
// reproducible.
package faultinject

import (
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// Profile describes the fault mix applied to traffic through a wrapper.
// The zero Profile is a healthy network: every field off.
type Profile struct {
	// Drop is the probability ∈ [0,1] that a datagram is silently
	// discarded. On stream (TCP) wrappers a drop aborts the connection
	// instead — a stream cannot lose bytes and stay coherent.
	Drop float64
	// Latency is added to every faulted traversal, before Jitter.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// Duplicate is the probability a datagram is delivered twice.
	Duplicate float64
	// Reorder is the probability a datagram is held back and released
	// after the next one (a one-slot swap, netem's reorder model).
	Reorder float64
	// Corrupt is the probability one random byte of the payload is
	// bit-flipped.
	Corrupt float64
	// Truncate is the probability an inbound datagram is delivered cut
	// short below the 12-byte DNS header (to truncateLen bytes), so the
	// wrapped endpoint receives a payload that cannot decode — a
	// deterministic decode failure where Corrupt's single bit-flip may
	// land in a don't-care byte. It applies only to reads (datagrams
	// arriving at the wrapped endpoint): a client wrapper truncates
	// answers, a server listener truncates queries. Stream wrappers
	// ignore it — cutting bytes out of a TCP stream would desync the
	// length-prefixed framing, not model datagram truncation.
	Truncate float64
}

// truncateLen is what remains of a truncated datagram: shorter than the
// 12-byte DNS header, so decoding always fails, but non-empty, so the
// read still delivers.
const truncateLen = 7

// Active reports whether the profile injects any fault at all.
func (p Profile) Active() bool {
	return p.Drop > 0 || p.Latency > 0 || p.Jitter > 0 ||
		p.Duplicate > 0 || p.Reorder > 0 || p.Corrupt > 0 || p.Truncate > 0
}

// Phase is one step of a Schedule: from Start (an offset from engagement)
// onward, Profile applies.
type Phase struct {
	Start   time.Duration
	Profile Profile
}

// Schedule scripts a fault timeline: at any elapsed time the profile of
// the latest phase whose Start has passed applies. Before the first
// phase, the network is healthy (zero Profile).
type Schedule struct {
	Phases []Phase
}

// At returns the profile in force at the given elapsed time.
func (s Schedule) At(elapsed time.Duration) Profile {
	var p Profile
	for _, ph := range s.Phases {
		if ph.Start > elapsed {
			break
		}
		p = ph.Profile
	}
	return p
}

// normalize sorts phases by start time.
func (s Schedule) normalize() Schedule {
	phases := make([]Phase, len(s.Phases))
	copy(phases, s.Phases)
	sort.SliceStable(phases, func(i, j int) bool { return phases[i].Start < phases[j].Start })
	return Schedule{Phases: phases}
}

// AttackWindow builds the canonical three-phase script the paper's
// attacks follow: healthy until start, the attack profile during
// [start, end), healthy again after.
func AttackWindow(start, end time.Duration, attack Profile) Schedule {
	return Schedule{Phases: []Phase{
		{Start: 0},
		{Start: start, Profile: attack},
		{Start: end},
	}}
}

// Injector is the concurrency-safe fault source the wrappers consult per
// datagram. It serves either a static profile (SetProfile) or a
// time-scripted schedule (Engage); both can be swapped while wrapped
// connections carry traffic.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	static Profile
	sched  *Schedule
	epoch  time.Time
	now    func() time.Time // test hook
}

// New builds an injector with a healthy static profile and a seeded
// generator (all faults are reproducible for a given seed and traffic
// order).
func New(seed uint64) *Injector {
	return &Injector{
		rng: rand.New(rand.NewPCG(seed, 0xfa017)),
		now: time.Now,
	}
}

// SetProfile installs a static fault profile and disengages any
// schedule. Safe while traffic flows.
func (inj *Injector) SetProfile(p Profile) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.static = p
	inj.sched = nil
}

// Engage starts the schedule's clock now: phase offsets are measured
// from this call. Safe while traffic flows.
func (inj *Injector) Engage(s Schedule) {
	n := s.normalize()
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.sched = &n
	inj.epoch = inj.now()
}

// Disengage drops any schedule, returning to the static profile.
func (inj *Injector) Disengage() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.sched = nil
}

// Profile returns the profile currently in force.
func (inj *Injector) Profile() Profile {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.profileLocked()
}

func (inj *Injector) profileLocked() Profile {
	if inj.sched != nil {
		return inj.sched.At(inj.now().Sub(inj.epoch))
	}
	return inj.static
}

// verdict is the dice roll for one datagram traversal.
type verdict struct {
	drop      bool
	duplicate bool
	reorder   bool
	corrupt   bool
	truncate  bool
	delay     time.Duration
}

// roll draws one verdict from the profile currently in force.
func (inj *Injector) roll() verdict {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	p := inj.profileLocked()
	var v verdict
	if !p.Active() {
		return v
	}
	if p.Drop > 0 && inj.rng.Float64() < p.Drop {
		v.drop = true
		return v // a dropped datagram needs no further faults
	}
	if p.Duplicate > 0 && inj.rng.Float64() < p.Duplicate {
		v.duplicate = true
	}
	if p.Reorder > 0 && inj.rng.Float64() < p.Reorder {
		v.reorder = true
	}
	if p.Corrupt > 0 && inj.rng.Float64() < p.Corrupt {
		v.corrupt = true
	}
	if p.Truncate > 0 && inj.rng.Float64() < p.Truncate {
		v.truncate = true
	}
	v.delay = p.Latency
	if p.Jitter > 0 {
		v.delay += time.Duration(inj.rng.Int64N(int64(p.Jitter)))
	}
	return v
}

// corruptByte flips one random bit of one random byte in place.
func (inj *Injector) corruptByte(b []byte) {
	if len(b) == 0 {
		return
	}
	inj.mu.Lock()
	i := inj.rng.IntN(len(b))
	bit := byte(1) << inj.rng.IntN(8)
	inj.mu.Unlock()
	b[i] ^= bit
}
