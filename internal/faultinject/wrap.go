// wrap.go implements the socket wrappers that apply an Injector's
// verdicts to real traffic. Three shapes cover the live DNS path:
//
//   - WrapPacketConn: an unconnected UDP listener (authserver's socket).
//   - WrapDatagram: a connected UDP client socket (resolver.UDPClient,
//     dnsload senders).
//   - WrapStream: a TCP connection; streams cannot lose or reorder bytes
//     and stay coherent, so Drop aborts the connection and only latency,
//     jitter, and corruption apply per write.
//
// Faults are applied on both directions of whichever endpoint is
// wrapped, so wrapping one side of a healthy peer is enough to degrade
// the full round trip; each traversal charges Latency+Jitter once.
// Delays are synchronous (the calling goroutine sleeps), which keeps
// fault ordering deterministic under a seeded Injector and models
// head-of-line blocking on a congested path.
package faultinject

import (
	"net"
	"sync"
	"syscall"
	"time"
)

// PacketConn wraps a net.PacketConn with fault injection.
type PacketConn struct {
	net.PacketConn
	inj *Injector

	mu       sync.Mutex
	held     []byte // one-slot reorder buffer for writes
	heldAddr net.Addr
}

// WrapPacketConn wraps an unconnected packet socket (a UDP listener).
func WrapPacketConn(c net.PacketConn, inj *Injector) *PacketConn {
	return &PacketConn{PacketConn: c, inj: inj}
}

// ReadFrom applies inbound faults: dropped datagrams are consumed and
// never surface, corrupted ones are flipped, and delay is served before
// the datagram is delivered.
func (c *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.PacketConn.ReadFrom(b)
		if err != nil {
			return n, addr, err
		}
		v := c.inj.roll()
		if v.drop {
			continue
		}
		if v.truncate && n > truncateLen {
			n = truncateLen
		}
		if v.corrupt {
			c.inj.corruptByte(b[:n])
		}
		if v.delay > 0 {
			time.Sleep(v.delay)
		}
		return n, addr, nil
	}
}

// WriteTo applies outbound faults. Dropped datagrams report success, as
// a real network would. A reordered datagram is held in a one-slot
// buffer and released after the next write (or on Close).
func (c *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	v := c.inj.roll()
	if v.drop {
		return len(b), nil
	}
	out := b
	if v.corrupt {
		out = append([]byte(nil), b...)
		c.inj.corruptByte(out)
	}
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.reorder {
		c.mu.Lock()
		prev, prevAddr := c.held, c.heldAddr
		c.held = append([]byte(nil), out...)
		c.heldAddr = addr
		c.mu.Unlock()
		if prev != nil {
			c.PacketConn.WriteTo(prev, prevAddr)
		}
		return len(b), nil
	}
	if _, err := c.PacketConn.WriteTo(out, addr); err != nil {
		return 0, err
	}
	if v.duplicate {
		c.PacketConn.WriteTo(out, addr)
	}
	c.flushHeld()
	return len(b), nil
}

// flushHeld releases a reorder-held datagram after a later one was sent.
func (c *PacketConn) flushHeld() {
	c.mu.Lock()
	prev, prevAddr := c.held, c.heldAddr
	c.held, c.heldAddr = nil, nil
	c.mu.Unlock()
	if prev != nil {
		c.PacketConn.WriteTo(prev, prevAddr)
	}
}

// Close releases any reorder-held datagram, then closes the socket.
func (c *PacketConn) Close() error {
	c.flushHeld()
	return c.PacketConn.Close()
}

// DatagramConn wraps a connected UDP socket with fault injection.
type DatagramConn struct {
	net.Conn
	inj *Injector

	mu   sync.Mutex
	held []byte
}

// WrapDatagram wraps a connected datagram socket (net.Dial "udp").
func WrapDatagram(c net.Conn, inj *Injector) *DatagramConn {
	return &DatagramConn{Conn: c, inj: inj}
}

// Read applies inbound faults; dropped datagrams are consumed silently,
// so a drop surfaces to the caller as its read deadline expiring —
// exactly how packet loss looks to a stub resolver.
func (c *DatagramConn) Read(b []byte) (int, error) {
	for {
		n, err := c.Conn.Read(b)
		if err != nil {
			return n, err
		}
		v := c.inj.roll()
		if v.drop {
			continue
		}
		if v.truncate && n > truncateLen {
			n = truncateLen
		}
		if v.corrupt {
			c.inj.corruptByte(b[:n])
		}
		if v.delay > 0 {
			time.Sleep(v.delay)
		}
		return n, nil
	}
}

// Write applies outbound faults; dropped datagrams report success.
func (c *DatagramConn) Write(b []byte) (int, error) {
	v := c.inj.roll()
	if v.drop {
		return len(b), nil
	}
	out := b
	if v.corrupt {
		out = append([]byte(nil), b...)
		c.inj.corruptByte(out)
	}
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.reorder {
		c.mu.Lock()
		prev := c.held
		c.held = append([]byte(nil), out...)
		c.mu.Unlock()
		if prev != nil {
			c.Conn.Write(prev)
		}
		return len(b), nil
	}
	if _, err := c.Conn.Write(out); err != nil {
		return 0, err
	}
	if v.duplicate {
		c.Conn.Write(out)
	}
	c.mu.Lock()
	prev := c.held
	c.held = nil
	c.mu.Unlock()
	if prev != nil {
		c.Conn.Write(prev)
	}
	return len(b), nil
}

// StreamConn wraps a TCP connection with the stream-coherent subset of
// faults: latency+jitter per write and read, byte corruption per write,
// and Drop as connection abort (ECONNRESET to the caller).
type StreamConn struct {
	net.Conn
	inj *Injector
}

// WrapStream wraps a stream connection.
func WrapStream(c net.Conn, inj *Injector) *StreamConn {
	return &StreamConn{Conn: c, inj: inj}
}

// Read delays inbound bytes by the profile's latency.
func (c *StreamConn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if err != nil {
		return n, err
	}
	if v := c.inj.roll(); v.delay > 0 {
		time.Sleep(v.delay)
	}
	return n, nil
}

// Write applies latency, corruption, and — for Drop — connection abort.
func (c *StreamConn) Write(b []byte) (int, error) {
	v := c.inj.roll()
	if v.drop {
		c.Conn.Close()
		return 0, syscall.ECONNRESET
	}
	out := b
	if v.corrupt {
		out = append([]byte(nil), b...)
		c.inj.corruptByte(out)
	}
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	return c.Conn.Write(out)
}
