package cache

import (
	"time"

	"dnsddos/internal/dnsdb"
	"dnsddos/internal/nsset"
	"dnsddos/internal/resolver"
)

// negative.go adds RFC 2308 negative caching: failed resolutions are
// remembered briefly so a resolver under attack does not hammer dead
// authoritative servers — and, from the measurement angle, so end users
// behind a shared resolver experience one fast SERVFAIL instead of a
// per-query timeout storm during an attack.

// NegativeEntry records a recent resolution failure.
type NegativeEntry struct {
	Domain  dnsdb.DomainID
	Status  nsset.QueryStatus
	Expires time.Time
}

// NegativeCache is a TTL-bound map of recent failures. Unlike the positive
// cache it needs no LRU: entries are short-lived and the domain space is
// bounded.
type NegativeCache struct {
	entries map[dnsdb.DomainID]NegativeEntry
	ttl     time.Duration
	hits    int64
}

// NewNegativeCache creates a negative cache with the given TTL (RFC 2308
// caps negative TTLs; resolvers commonly use tens of seconds to minutes).
func NewNegativeCache(ttl time.Duration) *NegativeCache {
	return &NegativeCache{entries: make(map[dnsdb.DomainID]NegativeEntry), ttl: ttl}
}

// Get returns a fresh negative entry for d, if any.
func (nc *NegativeCache) Get(d dnsdb.DomainID, t time.Time) (NegativeEntry, bool) {
	e, ok := nc.entries[d]
	if !ok || !t.Before(e.Expires) {
		return NegativeEntry{}, false
	}
	nc.hits++
	return e, true
}

// Put records a failure at time t.
func (nc *NegativeCache) Put(d dnsdb.DomainID, status nsset.QueryStatus, t time.Time) {
	nc.entries[d] = NegativeEntry{Domain: d, Status: status, Expires: t.Add(nc.ttl)}
}

// Hits returns how many queries were answered negatively from cache.
func (nc *NegativeCache) Hits() int64 { return nc.hits }

// Len returns the number of stored entries (fresh or expired).
func (nc *NegativeCache) Len() int { return len(nc.entries) }

// EnableNegativeCaching attaches a negative cache to the caching resolver.
func (r *Resolver) EnableNegativeCaching(ttl time.Duration) {
	r.negative = NewNegativeCache(ttl)
}

// NegativeCache exposes the attached negative cache (nil if disabled).
func (r *Resolver) NegativeCache() *NegativeCache { return r.negative }

// negativeAnswer is consulted by Resolve before going to the origin.
func (r *Resolver) negativeAnswer(d dnsdb.DomainID, t time.Time) (Outcome, bool) {
	if r.negative == nil {
		return Outcome{}, false
	}
	e, ok := r.negative.Get(d, t)
	if !ok {
		return Outcome{}, false
	}
	return Outcome{
		Outcome:  resolver.Outcome{Status: e.Status},
		CacheHit: true,
	}, true
}

// recordFailure stores a failed origin resolution.
func (r *Resolver) recordFailure(d dnsdb.DomainID, status nsset.QueryStatus, t time.Time) {
	if r.negative != nil {
		r.negative.Put(d, status, t)
	}
}
