// Package cache implements a TTL-bound DNS record cache and a caching stub
// resolver on top of the agnostic resolver.
//
// The paper's measurements deliberately bypass caching (footnote 1: cached
// NS records would mask the real impact of attacks; §4.3 frames OpenINTEL
// results as the empty-cache worst case for end users). The complementary
// question — how much does caching protect *real* end users during an
// attack? — is the Moura et al. "When the Dike Breaks" result the paper
// cites: with caches populated, users tolerate severe packet loss on the
// authoritative infrastructure. This package lets the reproduction quantify
// exactly that: the cache experiment in the benchmark suite compares
// empty-cache and warm-cache resolution failure rates under the same
// attack.
package cache

import (
	"container/list"
	"math/rand/v2"
	"time"

	"dnsddos/internal/dnsdb"
	"dnsddos/internal/nsset"
	"dnsddos/internal/resolver"
)

// Entry is one cached resolution result.
type Entry struct {
	Domain  dnsdb.DomainID
	Expires time.Time
	// RTT is the origin resolution time, kept for accounting (a cache
	// hit costs ~0 network time).
	RTT time.Duration
}

// Cache is a TTL- and capacity-bound positive cache with LRU eviction.
// Expired entries linger until evicted by capacity so a serve-stale
// resolver can still find them. Not safe for concurrent use; each simulated
// recursive resolver owns one.
type Cache struct {
	max     int
	entries map[dnsdb.DomainID]*list.Element
	lru     *list.List // front = most recent

	hits, misses, staleHits int64
}

// New creates a cache bounded to max entries (0 means unbounded).
func New(max int) *Cache {
	return &Cache{
		max:     max,
		entries: make(map[dnsdb.DomainID]*list.Element),
		lru:     list.New(),
	}
}

// Lookup returns the entry for d, whether one is present, and whether it is
// still fresh at time t. Fresh hits refresh LRU position.
func (c *Cache) Lookup(d dnsdb.DomainID, t time.Time) (e Entry, present, fresh bool) {
	el, ok := c.entries[d]
	if !ok {
		c.misses++
		return Entry{}, false, false
	}
	e = el.Value.(Entry)
	if t.Before(e.Expires) {
		c.hits++
		c.lru.MoveToFront(el)
		return e, true, true
	}
	return e, true, false
}

// Get is the plain TTL-respecting lookup: present and fresh.
func (c *Cache) Get(d dnsdb.DomainID, t time.Time) (Entry, bool) {
	e, present, fresh := c.Lookup(d, t)
	return e, present && fresh
}

// Put stores an entry, evicting the least recently used entry if full.
func (c *Cache) Put(e Entry) {
	if el, ok := c.entries[e.Domain]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	if c.max > 0 && c.lru.Len() >= c.max {
		oldest := c.lru.Back()
		if oldest != nil {
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(Entry).Domain)
		}
	}
	c.entries[e.Domain] = c.lru.PushFront(e)
}

// Len returns the number of entries (including expired, not yet evicted).
func (c *Cache) Len() int { return c.lru.Len() }

// Stats returns cumulative fresh-hit, miss and stale-hit counters.
func (c *Cache) Stats() (hits, misses, staleHits int64) {
	return c.hits, c.misses, c.staleHits
}

// Resolver is a caching recursive-resolver front end: a cache backed by the
// agnostic resolver. It models the resolver an ISP runs for its users, in
// contrast to OpenINTEL's deliberately cache-free measurement.
type Resolver struct {
	cache *Cache
	inner *resolver.Resolver
	// TTL is the positive-answer cache lifetime. CDN-era zones use low
	// TTLs for load balancing (§2.2), which is exactly what erodes
	// caching's protection during attacks.
	TTL time.Duration
	// ServeStale, when set, serves an expired entry if the origin fails
	// (RFC 8767), bounded by StaleWindow — an additional resilience
	// mechanism worth ablating.
	ServeStale  bool
	StaleWindow time.Duration
	// TTLJitter spreads per-entry lifetimes by ±TTLJitter (fraction of
	// TTL). Real zones carry varied TTLs and resolvers cap them, so
	// cache expiries are not phase-locked across domains; leaving this
	// at zero makes every warmup-filled entry expire in lockstep.
	TTLJitter float64
	// negative, when attached via EnableNegativeCaching, short-circuits
	// repeat failures (RFC 2308).
	negative *NegativeCache
}

// NewResolver wraps inner with a cache of maxEntries and the given TTL.
func NewResolver(inner *resolver.Resolver, maxEntries int, ttl time.Duration) *Resolver {
	return &Resolver{
		cache:       New(maxEntries),
		inner:       inner,
		TTL:         ttl,
		StaleWindow: 24 * time.Hour,
	}
}

// Outcome extends the resolver outcome with cache accounting.
type Outcome struct {
	resolver.Outcome
	CacheHit bool
	Stale    bool
}

// Resolve answers from cache when fresh, otherwise resolves through the
// agnostic resolver, caching successes and optionally serving stale
// entries on origin failure.
func (r *Resolver) Resolve(rng *rand.Rand, d dnsdb.DomainID, t time.Time) Outcome {
	e, present, fresh := r.cache.Lookup(d, t)
	if present && fresh {
		return Outcome{
			Outcome:  resolver.Outcome{Status: nsset.StatusOK, RTT: 0, Tries: 0},
			CacheHit: true,
		}
	}
	if neg, ok := r.negativeAnswer(d, t); ok {
		return neg
	}
	o := r.inner.Resolve(rng, d, t)
	if o.Status == nsset.StatusOK {
		ttl := r.TTL
		if r.TTLJitter > 0 {
			ttl = time.Duration(float64(ttl) * (1 + r.TTLJitter*(2*rng.Float64()-1)))
		}
		r.cache.Put(Entry{Domain: d, Expires: t.Add(ttl), RTT: o.RTT})
		return Outcome{Outcome: o}
	}
	r.recordFailure(d, o.Status, t)
	if r.ServeStale && present && t.Before(e.Expires.Add(r.StaleWindow)) {
		r.cache.staleHits++
		return Outcome{
			Outcome:  resolver.Outcome{Status: nsset.StatusOK, RTT: 0, Tries: o.Tries},
			CacheHit: true,
			Stale:    true,
		}
	}
	return Outcome{Outcome: o}
}

// Cache exposes the underlying cache for inspection.
func (r *Resolver) Cache() *Cache { return r.cache }
