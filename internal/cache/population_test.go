package cache

import (
	"testing"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
	"dnsddos/internal/resolver"
	"dnsddos/internal/simnet"
)

// populationWorld builds a 2000-domain provider whose nameservers are
// saturated for two hours — large enough that a Zipf query stream leaves
// the popularity tail cold in cache.
func populationWorld(t *testing.T) (*dnsdb.DB, *resolver.Resolver, time.Time) {
	t.Helper()
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	var ids []dnsdb.NameserverID
	for i := 0; i < 2; i++ {
		id, err := db.AddNameserver(dnsdb.Nameserver{
			Addr: netx.Addr(0x0b100001 + i*256), Provider: pid,
			CapacityPPS: 1e4, BaseRTT: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 6000; i++ {
		db.AddDomain(dnsdb.Domain{Name: "d.example", NS: ids})
	}
	db.Freeze()
	attackStart := clock.StudyStart.Add(60 * 24 * time.Hour)
	var specs []attacksim.Spec
	for _, id := range ids {
		specs = append(specs, attacksim.Spec{
			Target: db.Nameservers[id].Addr, Vector: attacksim.VectorRandomSpoofed,
			Proto: packet.ProtoTCP, Ports: []uint16{53},
			Start: attackStart, End: attackStart.Add(2 * time.Hour), PPS: 3e5,
		})
	}
	net := simnet.New(simnet.DefaultParams(), db, attacksim.NewSchedule(specs))
	return db, resolver.New(resolver.DefaultConfig(), db, net), attackStart
}

func TestPopularityProtectsDuringOutage(t *testing.T) {
	db, res, attackStart := populationWorld(t)
	cr := NewResolver(res, 0, time.Hour)
	var domains []dnsdb.DomainID
	for i := range db.Domains {
		domains = append(domains, dnsdb.DomainID(i))
	}
	cfg := DefaultPopulationConfig()
	cfg.QueryRate = 3
	// the cache shields a domain for its entry's residual TTL; for the
	// popularity gradient the TTL must outlive the observation window
	// at the head while the tail's query interval exceeds the TTL
	cfg.TTL = 2 * time.Hour
	outcomes := SimulatePopulation(cfg, cr,
		domains,
		attackStart.Add(-5*time.Hour), // warmup
		attackStart,                   // observe from attack start
		attackStart.Add(45*time.Minute))
	if len(outcomes) < 4 {
		t.Fatalf("outcomes = %+v", outcomes)
	}
	top := outcomes[0]
	bottomHalf := outcomes[len(outcomes)/2:]
	var bq, bf int
	for _, o := range bottomHalf {
		bq += o.Queries
		bf += o.Failures
	}
	if bq == 0 {
		t.Fatal("no unpopular-domain queries observed")
	}
	bottomRate := float64(bf) / float64(bq)
	// §6.3.1: warm cache entries shield the popular decile; the
	// unpopular tail feels the outage almost fully
	if top.FailureRate() >= bottomRate-0.15 {
		t.Errorf("top decile failure %.2f should be clearly below unpopular tail %.2f",
			top.FailureRate(), bottomRate)
	}
	if top.CacheHitRate < 0.3 {
		t.Errorf("top decile cache hit rate = %.2f, want substantial", top.CacheHitRate)
	}
	if bottomRate < 0.5 {
		t.Errorf("unpopular tail failure rate = %.2f, want substantial during a saturating attack", bottomRate)
	}
}

func TestSimulatePopulationEdgeCases(t *testing.T) {
	_, res, _ := populationWorld(t)
	cr := NewResolver(res, 0, time.Hour)
	if out := SimulatePopulation(DefaultPopulationConfig(), cr, nil, t0, t0, t0.Add(time.Hour)); out != nil {
		t.Error("no domains should give no outcomes")
	}
	if out := SimulatePopulation(DefaultPopulationConfig(), cr, []dnsdb.DomainID{0}, t0, t0, t0); out != nil {
		t.Error("empty interval should give no outcomes")
	}
}
