package cache

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/dnsdb"
	"dnsddos/internal/netx"
	"dnsddos/internal/nsset"
	"dnsddos/internal/packet"
	"dnsddos/internal/resolver"
	"dnsddos/internal/simnet"
)

var t0 = time.Date(2021, 5, 1, 12, 0, 0, 0, time.UTC)

func TestCacheGetPutTTL(t *testing.T) {
	c := New(10)
	c.Put(Entry{Domain: 1, Expires: t0.Add(time.Minute)})
	if _, ok := c.Get(1, t0); !ok {
		t.Error("fresh entry should hit")
	}
	if _, ok := c.Get(1, t0.Add(time.Minute)); ok {
		t.Error("expiry is exclusive: entry at its Expires time is stale")
	}
	if _, ok := c.Get(2, t0); ok {
		t.Error("absent entry should miss")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(Entry{Domain: 1, Expires: t0.Add(time.Hour)})
	c.Put(Entry{Domain: 2, Expires: t0.Add(time.Hour)})
	// touch 1 so 2 is the LRU
	if _, ok := c.Get(1, t0); !ok {
		t.Fatal("warm entry missing")
	}
	c.Put(Entry{Domain: 3, Expires: t0.Add(time.Hour)})
	if _, ok := c.Get(2, t0); ok {
		t.Error("LRU entry should have been evicted")
	}
	if _, ok := c.Get(1, t0); !ok {
		t.Error("recently used entry should survive")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCachePutUpdatesInPlace(t *testing.T) {
	c := New(2)
	c.Put(Entry{Domain: 1, Expires: t0.Add(time.Minute)})
	c.Put(Entry{Domain: 1, Expires: t0.Add(time.Hour)})
	if c.Len() != 1 {
		t.Errorf("Len = %d after update", c.Len())
	}
	if e, ok := c.Get(1, t0.Add(30*time.Minute)); !ok || e.Expires != t0.Add(time.Hour) {
		t.Error("update should extend TTL")
	}
}

// cacheWorld builds a small world with one vulnerable NSSet and an attack
// that makes it unresolvable for an hour.
func cacheWorld(t *testing.T) (*dnsdb.DB, *resolver.Resolver, time.Time) {
	t.Helper()
	db := dnsdb.New()
	pid := db.AddProvider(dnsdb.Provider{Name: "P"})
	var ids []dnsdb.NameserverID
	for i := 0; i < 2; i++ {
		id, err := db.AddNameserver(dnsdb.Nameserver{
			Addr: netx.Addr(0x0b000001 + i*256), Provider: pid,
			CapacityPPS: 1e4, BaseRTT: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 50; i++ {
		db.AddDomain(dnsdb.Domain{Name: "d.example", NS: ids})
	}
	db.Freeze()
	attackStart := clock.StudyStart.Add(30 * 24 * time.Hour)
	var specs []attacksim.Spec
	for _, id := range ids {
		specs = append(specs, attacksim.Spec{
			Target: db.Nameservers[id].Addr, Vector: attacksim.VectorRandomSpoofed,
			Proto: packet.ProtoTCP, Ports: []uint16{53},
			Start: attackStart, End: attackStart.Add(time.Hour), PPS: 2e5,
		})
	}
	net := simnet.New(simnet.DefaultParams(), db, attacksim.NewSchedule(specs))
	return db, resolver.New(resolver.DefaultConfig(), db, net), attackStart
}

func TestWarmCacheSurvivesAttack(t *testing.T) {
	db, res, attackStart := cacheWorld(t)
	rng := rand.New(rand.NewPCG(1, 1))
	warm := NewResolver(res, 0, 2*time.Hour)
	// populate the cache before the attack
	for d := range db.Domains {
		o := warm.Resolve(rng, dnsdb.DomainID(d), attackStart.Add(-30*time.Minute))
		if o.Status != nsset.StatusOK {
			t.Fatalf("pre-attack resolution failed: %+v", o)
		}
	}
	// during the attack: warm cache answers everything, cold cache fails
	cold := NewResolver(res, 0, 2*time.Hour)
	var warmFails, coldFails, warmHits int
	during := attackStart.Add(30 * time.Minute)
	for d := range db.Domains {
		if o := warm.Resolve(rng, dnsdb.DomainID(d), during); o.Status != nsset.StatusOK {
			warmFails++
		} else if o.CacheHit {
			warmHits++
		}
		if o := cold.Resolve(rng, dnsdb.DomainID(d), during); o.Status != nsset.StatusOK {
			coldFails++
		}
	}
	if warmFails != 0 || warmHits != len(db.Domains) {
		t.Errorf("warm cache: %d fails, %d hits", warmFails, warmHits)
	}
	if coldFails < len(db.Domains)/2 {
		t.Errorf("cold cache failed only %d/%d during a saturating attack", coldFails, len(db.Domains))
	}
}

func TestLowTTLErodesProtection(t *testing.T) {
	db, res, attackStart := cacheWorld(t)
	rng := rand.New(rand.NewPCG(2, 2))
	// CDN-style 60s TTL: cache is cold again by the time the attack
	// window is probed (§2.2)
	shortTTL := NewResolver(res, 0, time.Minute)
	for d := range db.Domains {
		shortTTL.Resolve(rng, dnsdb.DomainID(d), attackStart.Add(-30*time.Minute))
	}
	var fails int
	for d := range db.Domains {
		if o := shortTTL.Resolve(rng, dnsdb.DomainID(d), attackStart.Add(30*time.Minute)); o.Status != nsset.StatusOK {
			fails++
		}
	}
	if fails < len(db.Domains)/2 {
		t.Errorf("60s TTL still protected %d/%d resolutions", len(db.Domains)-fails, len(db.Domains))
	}
}

func TestServeStale(t *testing.T) {
	db, res, attackStart := cacheWorld(t)
	rng := rand.New(rand.NewPCG(3, 3))
	r := NewResolver(res, 0, time.Minute)
	r.ServeStale = true
	for d := range db.Domains {
		r.Resolve(rng, dnsdb.DomainID(d), attackStart.Add(-30*time.Minute))
	}
	var stale, fails int
	for d := range db.Domains {
		o := r.Resolve(rng, dnsdb.DomainID(d), attackStart.Add(30*time.Minute))
		if o.Status != nsset.StatusOK {
			fails++
		} else if o.Stale {
			stale++
		}
	}
	if fails != 0 {
		t.Errorf("serve-stale resolver failed %d resolutions", fails)
	}
	if stale == 0 {
		t.Error("no stale answers served during origin outage")
	}
	_, _, staleHits := r.Cache().Stats()
	if staleHits == 0 {
		t.Error("stale hits not counted")
	}
	// beyond the stale window, failures come back
	r2 := NewResolver(res, 0, time.Minute)
	r2.ServeStale = true
	r2.StaleWindow = time.Minute
	for d := range db.Domains {
		r2.Resolve(rng, dnsdb.DomainID(d), attackStart.Add(-30*time.Minute))
	}
	var fails2 int
	for d := range db.Domains {
		if o := r2.Resolve(rng, dnsdb.DomainID(d), attackStart.Add(30*time.Minute)); o.Status != nsset.StatusOK {
			fails2++
		}
	}
	if fails2 == 0 {
		t.Error("stale window expired; failures should reappear")
	}
}

func TestNegativeCaching(t *testing.T) {
	db, res, attackStart := cacheWorld(t)
	rng := rand.New(rand.NewPCG(9, 9))
	r := NewResolver(res, 0, time.Hour)
	r.EnableNegativeCaching(5 * time.Minute)
	during := attackStart.Add(30 * time.Minute)
	d := dnsdb.DomainID(0)
	// find a domain that fails at the origin during the attack
	var failed bool
	for i := range db.Domains {
		o := r.Resolve(rng, dnsdb.DomainID(i), during)
		if o.Status != nsset.StatusOK {
			d, failed = dnsdb.DomainID(i), true
			break
		}
	}
	if !failed {
		t.Skip("no origin failure; saturate harder")
	}
	// the repeat query is served from the negative cache with zero tries
	o := r.Resolve(rng, d, during.Add(time.Minute))
	if !o.CacheHit || o.Status == nsset.StatusOK || o.Tries != 0 {
		t.Errorf("repeat failure should come from negative cache: %+v", o)
	}
	if r.NegativeCache().Hits() == 0 {
		t.Error("negative hits not counted")
	}
	// after the negative TTL the origin is consulted again
	o2 := r.Resolve(rng, d, during.Add(10*time.Minute))
	if o2.CacheHit && o2.Status != nsset.StatusOK {
		t.Error("expired negative entry must not answer")
	}
}

func TestNegativeCacheTTL(t *testing.T) {
	nc := NewNegativeCache(time.Minute)
	nc.Put(3, nsset.StatusTimeout, t0)
	if _, ok := nc.Get(3, t0.Add(30*time.Second)); !ok {
		t.Error("fresh negative entry should hit")
	}
	if _, ok := nc.Get(3, t0.Add(time.Minute)); ok {
		t.Error("expired negative entry should miss")
	}
	if nc.Len() != 1 {
		t.Errorf("Len = %d", nc.Len())
	}
}
