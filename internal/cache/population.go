package cache

import (
	"math/rand/v2"
	"sort"
	"time"

	"dnsddos/internal/dnsdb"
	"dnsddos/internal/nsset"
	"dnsddos/internal/stats"
)

// population.go simulates a resolver's user population during an attack.
// §6.3.1 observes that the end-user impact of a complete resolution failure
// "depends on several factors, mainly related to caching policy: a popular
// domain (i.e., queried frequently, available in most caches) with a high
// TTL value may be less affected than a less popular one." This simulator
// quantifies that: a Zipf query stream keeps popular domains' records warm,
// so during an authoritative outage the failure probability a user sees
// falls with the domain's popularity rank.

// PopulationConfig tunes the simulated user population.
type PopulationConfig struct {
	// QueryRate is the resolver's aggregate user query rate (queries per
	// second) across all domains.
	QueryRate float64
	// ZipfExponent shapes domain popularity (≈1 for web traffic).
	ZipfExponent float64
	// TTL is the positive cache TTL.
	TTL time.Duration
	// Seed drives the query stream.
	Seed uint64
}

// DefaultPopulationConfig returns a modest ISP-resolver workload.
func DefaultPopulationConfig() PopulationConfig {
	return PopulationConfig{QueryRate: 50, ZipfExponent: 1.0, TTL: time.Hour, Seed: 17}
}

// PopularityOutcome reports, for one popularity decile (0 = most popular),
// how user queries fared during the observation window.
type PopularityOutcome struct {
	Decile   int
	Queries  int
	Failures int
	// CacheHitRate is the fraction of the decile's queries answered
	// from cache.
	CacheHitRate float64
}

// FailureRate returns the user-visible failure fraction.
func (p PopularityOutcome) FailureRate() float64 {
	return stats.Ratio(float64(p.Failures), float64(p.Queries))
}

// SimulatePopulation replays a Zipf query stream over the given domains
// through a caching resolver from warmupStart to end, and reports outcomes
// per popularity decile for queries issued at or after observeFrom
// (typically the attack start; the earlier stream warms the cache).
func SimulatePopulation(cfg PopulationConfig, r *Resolver, domains []dnsdb.DomainID, warmupStart, observeFrom, end time.Time) []PopularityOutcome {
	if len(domains) == 0 || !end.After(warmupStart) {
		return nil
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x90b))
	z := stats.NewZipf(len(domains), cfg.ZipfExponent)
	r.TTL = cfg.TTL
	if r.TTLJitter == 0 {
		r.TTLJitter = 0.3 // decorrelate expiry phases across domains
	}

	// popularity rank = position in the domains slice; decile by rank
	decileOf := func(rank int) int {
		d := rank * 10 / len(domains)
		if d > 9 {
			d = 9
		}
		return d
	}
	outcomes := make([]PopularityOutcome, 10)
	for i := range outcomes {
		outcomes[i].Decile = i
	}
	var hits [10]int

	step := time.Duration(float64(time.Second) / cfg.QueryRate)
	for t := warmupStart; t.Before(end); t = t.Add(step) {
		rank := z.Draw(rng)
		o := r.Resolve(rng, domains[rank], t)
		if t.Before(observeFrom) {
			continue
		}
		d := decileOf(rank)
		outcomes[d].Queries++
		if o.Status != nsset.StatusOK {
			outcomes[d].Failures++
		}
		if o.CacheHit {
			hits[d]++
		}
	}
	for i := range outcomes {
		if outcomes[i].Queries > 0 {
			outcomes[i].CacheHitRate = float64(hits[i]) / float64(outcomes[i].Queries)
		}
	}
	// drop empty deciles (tiny domain lists)
	out := outcomes[:0]
	for _, o := range outcomes {
		if o.Queries > 0 {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Decile < out[j].Decile })
	return out
}
