package cache_test

import (
	"fmt"
	"time"

	"dnsddos/internal/cache"
)

// ExampleCache shows TTL and LRU behaviour of the positive cache.
func ExampleCache() {
	t0 := time.Date(2021, 5, 1, 12, 0, 0, 0, time.UTC)
	c := cache.New(2)
	c.Put(cache.Entry{Domain: 1, Expires: t0.Add(time.Minute)})
	c.Put(cache.Entry{Domain: 2, Expires: t0.Add(time.Hour)})

	_, freshHit := c.Get(1, t0.Add(30*time.Second))
	_, expiredHit := c.Get(1, t0.Add(2*time.Minute))
	fmt.Println("fresh:", freshHit, "after TTL:", expiredHit)

	// inserting a third entry evicts the least recently used
	c.Put(cache.Entry{Domain: 3, Expires: t0.Add(time.Hour)})
	_, evicted := c.Get(2, t0)
	fmt.Println("LRU entry survived:", evicted)
	// Output:
	// fresh: true after TTL: false
	// LRU entry survived: false
}
