// lru.go is a small generic LRU used as the join engine's day-snapshot
// cache (internal/core): per-day NSSet baseline indexes are expensive to
// build but shared by every attack whose windows touch that day, and a
// resumed or checkpointed run revisits the same days again. The cache is
// safe for concurrent use and deduplicates concurrent builds of the same
// key, so worker shards racing on a cold day build it exactly once.
package cache

import (
	"sync"

	"dnsddos/internal/resilience"
)

// LRU is a bounded map with least-recently-used eviction and
// single-flight population. The zero value is not usable; call NewLRU.
type LRU[K comparable, V any] struct {
	mu      sync.Mutex
	max     int
	entries map[K]*lruEntry[K, V]
	head    *lruEntry[K, V] // most recently used
	tail    *lruEntry[K, V] // least recently used
	// inflight holds the latch of every key currently being computed by
	// GetOrCompute, so concurrent misses on the same key share one build.
	inflight map[K]*lruCall[V]
	// retry paces waiters that rejoin after a panicked build, so a build
	// that panics repeatedly cannot turn its waiters into a spin storm.
	retry *resilience.RetryBudget

	hits, misses, shared int64
}

type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

// lruCall is one in-flight computation; done closes when the build
// finished — successfully (completed true, val set) or by panicking
// (completed false). Both fields are written before close(done) and read
// only after <-done, so the channel provides the happens-before edge.
type lruCall[V any] struct {
	done      chan struct{}
	val       V
	completed bool
}

// NewLRU builds an LRU bounded to max entries; max <= 0 means unbounded.
func NewLRU[K comparable, V any](max int) *LRU[K, V] {
	return &LRU[K, V]{
		max:      max,
		entries:  make(map[K]*lruEntry[K, V]),
		inflight: make(map[K]*lruCall[V]),
		retry:    resilience.NewRetryBudget(0, resilience.DefaultBase, resilience.DefaultCap, nil),
	}
}

// unlink removes e from the recency list.
func (l *LRU[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (l *LRU[K, V]) pushFront(e *lruEntry[K, V]) {
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

// Get returns the cached value for k, refreshing its recency on a hit.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[k]
	if !ok {
		l.misses++
		var zero V
		return zero, false
	}
	l.hits++
	if l.head != e {
		l.unlink(e)
		l.pushFront(e)
	}
	return e.val, true
}

// Put stores (k, v), evicting the least recently used entry when full.
func (l *LRU[K, V]) Put(k K, v V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.put(k, v)
}

func (l *LRU[K, V]) put(k K, v V) {
	if e, ok := l.entries[k]; ok {
		e.val = v
		if l.head != e {
			l.unlink(e)
			l.pushFront(e)
		}
		return
	}
	if l.max > 0 && len(l.entries) >= l.max {
		oldest := l.tail
		if oldest != nil {
			l.unlink(oldest)
			delete(l.entries, oldest.key)
		}
	}
	e := &lruEntry[K, V]{key: k, val: v}
	l.entries[k] = e
	l.pushFront(e)
}

// GetOrCompute returns the cached value for k, computing and caching it
// with build on a miss. Concurrent misses on the same key run build once
// and share the result; build runs without the cache lock held, so it may
// be arbitrarily expensive (and may itself use the cache for other keys).
// The boolean reports whether the value was already cached (a hit).
//
// A panicking build never wedges the key: the in-flight latch is removed
// and released under a deferred cleanup, the panic propagates to the
// builder's caller (where the supervised study loop quarantines it), and
// waiters that had joined the doomed build retry — the first to re-enter
// becomes the new builder. Repeated retries after panicked builds are
// paced by the cache's retry budget (first retry immediate, then
// decorrelated jitter), so a persistently panicking builder cannot spin
// its waiters.
func (l *LRU[K, V]) GetOrCompute(k K, build func() V) (V, bool) {
	sess := l.retry.Session()
	for {
		l.mu.Lock()
		if e, ok := l.entries[k]; ok {
			l.hits++
			if l.head != e {
				l.unlink(e)
				l.pushFront(e)
			}
			v := e.val
			l.mu.Unlock()
			return v, true
		}
		if c, ok := l.inflight[k]; ok {
			// someone else is building it; wait and share their result.
			// Counted separately from hits and misses: the value was not
			// cached yet, but this caller did not build either.
			l.shared++
			l.mu.Unlock()
			<-c.done
			if c.completed {
				return c.val, false
			}
			sess.Wait(nil)
			continue // the builder panicked; retry
		}
		l.misses++
		c := &lruCall[V]{done: make(chan struct{})}
		l.inflight[k] = c
		l.mu.Unlock()
		return l.runBuild(k, c, build), false
	}
}

// runBuild executes one single-flight build holding the key's latch. The
// deferred cleanup makes the latch panic-safe: whether build returns or
// panics, the in-flight entry is deleted and done is closed, so waiters
// and future callers never block on a dead build. It never recovers, so
// a panic propagates unchanged to the caller.
func (l *LRU[K, V]) runBuild(k K, c *lruCall[V], build func() V) V {
	defer func() {
		l.mu.Lock()
		delete(l.inflight, k)
		if c.completed {
			l.put(k, c.val)
		}
		l.mu.Unlock()
		close(c.done)
	}()
	c.val = build()
	c.completed = true
	return c.val
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// LRUStats returns cumulative hit, miss and shared-wait counts. A
// GetOrCompute that joins another caller's in-flight build counts as
// shared: the value was not cached yet (not a hit), but the caller did
// not pay for a build either (not a miss). Effectiveness ratios should
// fold shared into the numerator alongside hits.
func (l *LRU[K, V]) LRUStats() (hits, misses, shared int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses, l.shared
}
