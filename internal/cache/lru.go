// lru.go is a small generic LRU used as the join engine's day-snapshot
// cache (internal/core): per-day NSSet baseline indexes are expensive to
// build but shared by every attack whose windows touch that day, and a
// resumed or checkpointed run revisits the same days again. The cache is
// safe for concurrent use and deduplicates concurrent builds of the same
// key, so worker shards racing on a cold day build it exactly once.
package cache

import "sync"

// LRU is a bounded map with least-recently-used eviction and
// single-flight population. The zero value is not usable; call NewLRU.
type LRU[K comparable, V any] struct {
	mu      sync.Mutex
	max     int
	entries map[K]*lruEntry[K, V]
	head    *lruEntry[K, V] // most recently used
	tail    *lruEntry[K, V] // least recently used
	// inflight holds the latch of every key currently being computed by
	// GetOrCompute, so concurrent misses on the same key share one build.
	inflight map[K]*lruCall[V]

	hits, misses int64
}

type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

// lruCall is one in-flight computation; done closes when val is ready.
type lruCall[V any] struct {
	done chan struct{}
	val  V
}

// NewLRU builds an LRU bounded to max entries; max <= 0 means unbounded.
func NewLRU[K comparable, V any](max int) *LRU[K, V] {
	return &LRU[K, V]{
		max:      max,
		entries:  make(map[K]*lruEntry[K, V]),
		inflight: make(map[K]*lruCall[V]),
	}
}

// unlink removes e from the recency list.
func (l *LRU[K, V]) unlink(e *lruEntry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used entry.
func (l *LRU[K, V]) pushFront(e *lruEntry[K, V]) {
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
}

// Get returns the cached value for k, refreshing its recency on a hit.
func (l *LRU[K, V]) Get(k K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[k]
	if !ok {
		l.misses++
		var zero V
		return zero, false
	}
	l.hits++
	if l.head != e {
		l.unlink(e)
		l.pushFront(e)
	}
	return e.val, true
}

// Put stores (k, v), evicting the least recently used entry when full.
func (l *LRU[K, V]) Put(k K, v V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.put(k, v)
}

func (l *LRU[K, V]) put(k K, v V) {
	if e, ok := l.entries[k]; ok {
		e.val = v
		if l.head != e {
			l.unlink(e)
			l.pushFront(e)
		}
		return
	}
	if l.max > 0 && len(l.entries) >= l.max {
		oldest := l.tail
		if oldest != nil {
			l.unlink(oldest)
			delete(l.entries, oldest.key)
		}
	}
	e := &lruEntry[K, V]{key: k, val: v}
	l.entries[k] = e
	l.pushFront(e)
}

// GetOrCompute returns the cached value for k, computing and caching it
// with build on a miss. Concurrent misses on the same key run build once
// and share the result; build runs without the cache lock held, so it may
// be arbitrarily expensive (and may itself use the cache for other keys).
// The boolean reports whether the value was already cached (a hit).
func (l *LRU[K, V]) GetOrCompute(k K, build func() V) (V, bool) {
	l.mu.Lock()
	if e, ok := l.entries[k]; ok {
		l.hits++
		if l.head != e {
			l.unlink(e)
			l.pushFront(e)
		}
		v := e.val
		l.mu.Unlock()
		return v, true
	}
	if c, ok := l.inflight[k]; ok {
		// someone else is building it; their build counts as the miss
		l.mu.Unlock()
		<-c.done
		return c.val, false
	}
	l.misses++
	c := &lruCall[V]{done: make(chan struct{})}
	l.inflight[k] = c
	l.mu.Unlock()

	c.val = build()
	close(c.done)

	l.mu.Lock()
	delete(l.inflight, k)
	l.put(k, c.val)
	l.mu.Unlock()
	return c.val, false
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// LRUStats returns cumulative hit and miss counts. A GetOrCompute that
// joins another caller's in-flight build counts neither way.
func (l *LRU[K, V]) LRUStats() (hits, misses int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses
}
