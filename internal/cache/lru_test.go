package cache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU[int, string](2)
	if _, ok := l.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	l.Put(1, "a")
	l.Put(2, "b")
	if v, ok := l.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	// 1 is now most recent; inserting 3 must evict 2
	l.Put(3, "c")
	if _, ok := l.Get(2); ok {
		t.Fatal("LRU kept the least recently used entry past capacity")
	}
	if v, ok := l.Get(1); !ok || v != "a" {
		t.Fatalf("recently used entry evicted: Get(1) = %q, %v", v, ok)
	}
	if v, ok := l.Get(3); !ok || v != "c" {
		t.Fatalf("Get(3) = %q, %v", v, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestLRUPutOverwrites(t *testing.T) {
	l := NewLRU[string, int](0) // unbounded
	l.Put("k", 1)
	l.Put("k", 2)
	if v, _ := l.Get("k"); v != 2 {
		t.Fatalf("overwrite lost: got %d", v)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", l.Len())
	}
}

func TestLRUGetOrComputeSingleFlight(t *testing.T) {
	l := NewLRU[int, int](8)
	var builds atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _ := l.GetOrCompute(7, func() int {
				builds.Add(1)
				return 42
			})
			if v != 42 {
				t.Errorf("GetOrCompute = %d, want 42", v)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times for one key, want 1", n)
	}
	if v, hit := l.GetOrCompute(7, func() int { t.Error("rebuilt a cached key"); return 0 }); !hit || v != 42 {
		t.Fatalf("cached GetOrCompute = %d, hit=%v", v, hit)
	}
}

func TestLRUStats(t *testing.T) {
	l := NewLRU[int, int](4)
	l.GetOrCompute(1, func() int { return 1 }) // miss
	l.GetOrCompute(1, func() int { return 1 }) // hit
	l.Get(2)                                   // miss
	hits, misses, shared := l.LRUStats()
	if hits != 1 || misses != 2 || shared != 0 {
		t.Fatalf("stats = %d hits, %d misses, %d shared; want 1, 2, 0", hits, misses, shared)
	}
}

// TestLRUSharedWaitCounted pins the shared-wait accounting: a caller that
// joins another caller's in-flight build must count as shared — not
// vanish from the stats (which overstated the published hit ratio).
func TestLRUSharedWaitCounted(t *testing.T) {
	l := NewLRU[int, int](4)
	inBuild := make(chan struct{})
	release := make(chan struct{})
	go l.GetOrCompute(1, func() int {
		close(inBuild)
		<-release
		return 7
	})
	<-inBuild
	var wg sync.WaitGroup
	const waiters = 3
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, hit := l.GetOrCompute(1, func() int { t.Error("waiter ran build"); return 0 }); hit || v != 7 {
				t.Errorf("shared wait = %d, hit=%v; want 7, false", v, hit)
			}
		}()
	}
	// wait until every waiter has parked on the latch
	for {
		if _, _, shared := l.LRUStats(); shared == waiters {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	hits, misses, shared := l.LRUStats()
	if hits != 0 || misses != 1 || shared != waiters {
		t.Fatalf("stats = %d hits, %d misses, %d shared; want 0, 1, %d", hits, misses, shared, waiters)
	}
}

// TestLRUPanickingBuildReleasesLatch is the regression test for the
// single-flight latch leak: a build that panics must re-propagate the
// panic AND clear its in-flight latch, so later callers for the same key
// compute fresh instead of blocking forever on a dead build.
func TestLRUPanickingBuildReleasesLatch(t *testing.T) {
	l := NewLRU[int, int](4)
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want the build's own panic value", r)
			}
		}()
		l.GetOrCompute(1, func() int { panic("boom") })
	}()
	// Before the fix this call deadlocked on the leaked latch (the test
	// would time out); now it must run the build anew.
	done := make(chan int, 1)
	go func() {
		v, _ := l.GetOrCompute(1, func() int { return 99 })
		done <- v
	}()
	select {
	case v := <-done:
		if v != 99 {
			t.Fatalf("recomputed value = %d, want 99", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GetOrCompute still blocked after a panicking build: latch leaked")
	}
	if _, hit := l.GetOrCompute(1, func() int { t.Error("rebuilt cached key"); return 0 }); !hit {
		t.Fatal("value from the recovery build was not cached")
	}
}

// TestLRUPanickingBuildWakesWaiters: callers that joined the doomed
// build's latch must not hang — they retry, and one becomes the new
// builder. Run under -race this also exercises the latch's memory
// ordering (satellite: race-detector test of concurrent GetOrCompute
// with a panicking build).
func TestLRUPanickingBuildWakesWaiters(t *testing.T) {
	l := NewLRU[int, int](4)
	inBuild := make(chan struct{})
	release := make(chan struct{})
	var panicked sync.WaitGroup
	panicked.Add(1)
	go func() {
		defer panicked.Done()
		defer func() { recover() }()
		l.GetOrCompute(1, func() int {
			close(inBuild)
			<-release
			panic("first build dies")
		})
	}()
	<-inBuild
	const waiters = 8
	var rebuilds atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _ := l.GetOrCompute(1, func() int {
				rebuilds.Add(1)
				return 42
			})
			if v != 42 {
				t.Errorf("waiter got %d, want 42", v)
			}
		}()
	}
	// every waiter parked on the latch, then kill the build
	for {
		if _, _, shared := l.LRUStats(); shared >= waiters {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	panicked.Wait()
	wg.Wait()
	if n := rebuilds.Load(); n < 1 {
		t.Fatalf("no waiter retried the build after the panic (rebuilds = %d)", n)
	}
	if v, hit := l.Get(1); !hit || v != 42 {
		t.Fatalf("retried value not cached: %d, %v", v, hit)
	}
}

func TestLRUEvictThenRecompute(t *testing.T) {
	l := NewLRU[int, int](1)
	calls := 0
	build := func(k int) func() int { return func() int { calls++; return k * 10 } }
	l.GetOrCompute(1, build(1))
	l.GetOrCompute(2, build(2)) // evicts 1
	if v, hit := l.GetOrCompute(1, build(1)); hit || v != 10 {
		t.Fatalf("evicted key: v=%d hit=%v", v, hit)
	}
	if calls != 3 {
		t.Fatalf("build calls = %d, want 3", calls)
	}
}
