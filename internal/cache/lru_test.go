package cache

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU[int, string](2)
	if _, ok := l.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	l.Put(1, "a")
	l.Put(2, "b")
	if v, ok := l.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	// 1 is now most recent; inserting 3 must evict 2
	l.Put(3, "c")
	if _, ok := l.Get(2); ok {
		t.Fatal("LRU kept the least recently used entry past capacity")
	}
	if v, ok := l.Get(1); !ok || v != "a" {
		t.Fatalf("recently used entry evicted: Get(1) = %q, %v", v, ok)
	}
	if v, ok := l.Get(3); !ok || v != "c" {
		t.Fatalf("Get(3) = %q, %v", v, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestLRUPutOverwrites(t *testing.T) {
	l := NewLRU[string, int](0) // unbounded
	l.Put("k", 1)
	l.Put("k", 2)
	if v, _ := l.Get("k"); v != 2 {
		t.Fatalf("overwrite lost: got %d", v)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", l.Len())
	}
}

func TestLRUGetOrComputeSingleFlight(t *testing.T) {
	l := NewLRU[int, int](8)
	var builds atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _ := l.GetOrCompute(7, func() int {
				builds.Add(1)
				return 42
			})
			if v != 42 {
				t.Errorf("GetOrCompute = %d, want 42", v)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times for one key, want 1", n)
	}
	if v, hit := l.GetOrCompute(7, func() int { t.Error("rebuilt a cached key"); return 0 }); !hit || v != 42 {
		t.Fatalf("cached GetOrCompute = %d, hit=%v", v, hit)
	}
}

func TestLRUStats(t *testing.T) {
	l := NewLRU[int, int](4)
	l.GetOrCompute(1, func() int { return 1 }) // miss
	l.GetOrCompute(1, func() int { return 1 }) // hit
	l.Get(2)                                   // miss
	hits, misses := l.LRUStats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 2", hits, misses)
	}
}

func TestLRUEvictThenRecompute(t *testing.T) {
	l := NewLRU[int, int](1)
	calls := 0
	build := func(k int) func() int { return func() int { calls++; return k * 10 } }
	l.GetOrCompute(1, build(1))
	l.GetOrCompute(2, build(2)) // evicts 1
	if v, hit := l.GetOrCompute(1, build(1)); hit || v != 10 {
		t.Fatalf("evicted key: v=%d hit=%v", v, hit)
	}
	if calls != 3 {
		t.Fatalf("build calls = %d, want 3", calls)
	}
}
