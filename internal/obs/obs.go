// Package obs is the unified observability layer of the reproduction: a
// zero-dependency metrics registry of atomic counters, gauges, and
// lock-free log-bucketed latency histograms, with a deterministic JSON
// snapshot encoding and an optional HTTP export surface (http.go).
//
// The paper's core deliverable is a latency/error measurement — Eq. 1's
// Impact_on_RTT and the SERVFAIL/timeout split of §6.3.1 — and the
// anycast-DDoS measurement line it builds on (Moura et al., Jonker et
// al.) works on percentile distributions, not means. This package gives
// the serving and join stack the same visibility: the authserver's
// per-query latency and shed/RRL verdicts, the live resolver's per-try
// RTTs, dnsload's client-side RTT distribution, and the study pipeline's
// per-stage timings all land in one named registry that can be snapshot
// mid-run (over HTTP) or embedded in the end-of-run study.Report.
//
// Determinism: a Snapshot marshals with sorted metric names and a fixed
// field order, so two runs that observe the same values encode to the
// same bytes. Metrics whose values are inherently run-dependent (wall-
// clock stage timings) are registered with the Volatile option and
// excluded from StableSnapshot, which is what deterministic outputs
// (study.Report, golden tests) embed.
//
// All mutators are safe for concurrent use and allocation-free; every
// metric method is also nil-receiver-safe, so a disabled registry (nil)
// costs call sites a single branch and no conditionals.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (zero on a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Load returns the current value (zero on a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricMeta carries per-metric registration options.
type metricMeta struct {
	volatile bool
}

// Option configures a metric at registration.
type Option func(*metricMeta)

// Volatile marks a metric as run-dependent (wall-clock timings, PIDs):
// it appears in Snapshot (and over HTTP) but not in StableSnapshot, so
// deterministic outputs stay byte-identical across seeded runs.
func Volatile() Option {
	return func(m *metricMeta) { m.volatile = true }
}

// Registry is a process-wide named metric registry. The zero value is
// not usable; call New. A nil *Registry is a valid disabled registry:
// every lookup returns a nil metric whose mutators are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	meta     map[string]metricMeta
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		meta:     make(map[string]metricMeta),
	}
}

// register validates that name is unused or already bound to the same
// kind, and records options. Callers hold r.mu.
func (r *Registry) register(name, kind string, opts []Option) {
	var m metricMeta
	for _, o := range opts {
		o(&m)
	}
	if existing, ok := r.kindOf(name); ok && existing != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as a %s, requested as a %s", name, existing, kind))
	}
	if _, ok := r.meta[name]; !ok {
		r.meta[name] = m
	}
}

// kindOf reports the kind a name is bound to. Callers hold r.mu.
func (r *Registry) kindOf(name string) (string, bool) {
	if _, ok := r.counters[name]; ok {
		return "counter", true
	}
	if _, ok := r.gauges[name]; ok {
		return "gauge", true
	}
	if _, ok := r.hists[name]; ok {
		return "histogram", true
	}
	return "", false
}

// Counter returns the named counter, creating it on first use. Nil
// registries return a nil (no-op) counter. Registering a name that is
// already bound to a different metric kind panics.
func (r *Registry) Counter(name string, opts ...Option) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, "counter", opts)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string, opts ...Option) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, "gauge", opts)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use.
func (r *Registry) Histogram(name string, opts ...Option) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, "histogram", opts)
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Merge folds src's metrics into r: counters and histogram buckets add,
// gauges take src's value. Metric kinds must agree between the two
// registries (same names bound to same kinds), as they do when both
// sides created their metrics through the same instrumented code path —
// the study pipeline merges per-day-shard registries this way, keeping
// quarantined shards (whose partial observations are discarded with
// their private registry) out of the totals.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	// snapshot src under its own lock, then fold in under ours, so the
	// two locks never nest.
	src.mu.Lock()
	counters := make(map[string]int64, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c.Load()
	}
	gauges := make(map[string]int64, len(src.gauges))
	for name, g := range src.gauges {
		gauges[name] = g.Load()
	}
	hists := make(map[string]histState, len(src.hists))
	for name, h := range src.hists {
		hists[name] = h.state()
	}
	meta := make(map[string]metricMeta, len(src.meta))
	for name, m := range src.meta {
		meta[name] = m
	}
	src.mu.Unlock()

	opts := func(name string) []Option {
		if meta[name].volatile {
			return []Option{Volatile()}
		}
		return nil
	}
	for name, v := range counters {
		r.Counter(name, opts(name)...).Add(v)
	}
	for name, v := range gauges {
		r.Gauge(name, opts(name)...).Set(v)
	}
	for name, st := range hists {
		r.Histogram(name, opts(name)...).merge(st)
	}
}

// ImportSnapshot folds a serialized Snapshot into r the way Merge folds
// a live registry: counters and histogram buckets add, gauges take the
// snapshot's value. It is the cross-process half of the study pipeline's
// exactly-once metric merge — a distributed worker ships each completed
// day-shard's registry to the coordinator as a Snapshot (gob/JSON travels
// where a *Registry cannot), and the coordinator folds it in once when it
// accepts the shard. Metrics created by the import are registered with
// the given options (typically none: shipped sweep metrics are stable).
func (r *Registry) ImportSnapshot(s Snapshot, opts ...Option) {
	if r == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(name, opts...).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name, opts...).Set(v)
	}
	for name, hs := range s.Histograms {
		r.Histogram(name, opts...).importSnapshot(hs)
	}
}

// Snapshot is a point-in-time copy of a registry, shaped for
// deterministic JSON encoding: maps marshal with sorted keys
// (encoding/json's behavior) and every struct field is ordered. Counter
// and gauge values are raw int64s; histograms carry their bucket layout
// and derived quantiles.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric. It is consistent per metric (each value
// is an atomic load) but not across metrics; quiesce writers first when
// exact cross-metric invariants matter.
func (r *Registry) Snapshot() Snapshot { return r.snapshot(true) }

// StableSnapshot copies every metric not registered as Volatile — the
// deterministic subset embedded in seeded-run outputs.
func (r *Registry) StableSnapshot() Snapshot { return r.snapshot(false) }

func (r *Registry) snapshot(includeVolatile bool) Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		if includeVolatile || !r.meta[name].volatile {
			s.Counters[name] = c.Load()
		}
	}
	for name, g := range r.gauges {
		if includeVolatile || !r.meta[name].volatile {
			s.Gauges[name] = g.Load()
		}
	}
	for name, h := range r.hists {
		if includeVolatile || !r.meta[name].volatile {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. The encoding is
// deterministic: identical snapshots produce identical bytes.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.meta))
	for name := range r.meta {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
