package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// golden_test.go pins the deterministic JSON snapshot encoding: a fixed
// sequence of observations must marshal to byte-identical output on
// every run and platform. Regenerate with:
//
//	go test ./internal/obs/ -run TestSnapshotGolden -update

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with a fixed observation set covering
// every metric kind, several buckets, and the overflow bucket.
func goldenRegistry() *Registry {
	r := New()
	r.Counter("authserver.udp_received").Add(1234)
	r.Counter("authserver.udp_dropped").Add(56)
	r.Gauge("dnsload.concurrency").Set(16)
	h := r.Histogram("authserver.udp_latency")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i*i) * time.Microsecond)
	}
	h.Observe(2 * time.Minute) // overflow bucket
	r.Histogram("resolver.live.rtt").Observe(850 * time.Millisecond)
	// volatile metrics must not appear in the stable snapshot
	r.Gauge("study.stage.join_wall_ns", Volatile()).Set(987654321)
	return r
}

func TestSnapshotGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().StableSnapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "registry.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("snapshot drifted from golden file (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestSnapshotEncodingDeterministic encodes the same observation
// sequence twice — including a full marshal of two independently built
// registries — and requires byte equality.
func TestSnapshotEncodingDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenRegistry().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical registries encoded to different bytes")
	}
}
