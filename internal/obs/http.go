package obs

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// http.go is the export surface: an http.Handler (and a managed server
// around it) serving the registry as /metrics.json, bridging it into
// the expvar format at /debug/vars alongside the runtime's own expvar
// globals (cmdline, memstats), and mounting net/http/pprof under
// /debug/pprof/ — the profiling workflow the ROADMAP's "fast as the
// hardware allows" target needs before the next perf PR can be trusted.

// Handler returns the observability mux for a registry:
//
//	/metrics.json   deterministic registry snapshot (indented JSON)
//	/debug/vars     expvar-format bridge: runtime globals + the registry
//	/debug/pprof/   the standard pprof index, profiles, and traces
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		serveVars(w, reg)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveVars renders the expvar JSON object: every published expvar
// (memstats, cmdline, anything else the process registered) plus the
// registry's metrics flattened under their own names. Writing the
// bridge by hand — instead of expvar.Publish — keeps registries
// independent: two servers over two registries never fight over the
// process-global expvar namespace.
func serveVars(w http.ResponseWriter, reg *Registry) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	emit := func(key, val string) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", key, val)
	}
	expvar.Do(func(kv expvar.KeyValue) {
		emit(kv.Key, kv.Value.String())
	})
	snap := reg.Snapshot()
	for _, name := range reg.Names() {
		if v, ok := snap.Counters[name]; ok {
			emit(name, fmt.Sprintf("%d", v))
		} else if v, ok := snap.Gauges[name]; ok {
			emit(name, fmt.Sprintf("%d", v))
		} else if h, ok := snap.Histograms[name]; ok {
			emit(name, fmt.Sprintf(`{"count": %d, "p50_ns": %d, "p90_ns": %d, "p99_ns": %d, "max_ns": %d}`,
				h.Count, h.P50NS, h.P90NS, h.P99NS, h.MaxNS))
		}
	}
	fmt.Fprintf(w, "\n}\n")
}

// MetricsServer is a running observability endpoint. Close shuts it
// down gracefully and waits for the serve loop to exit, so tests can
// assert no goroutine leaks.
type MetricsServer struct {
	srv  *http.Server
	lis  net.Listener
	done chan struct{}
}

// Serve binds addr (e.g. ":9090", or "127.0.0.1:0" for tests) and
// serves Handler(reg) until Close.
func Serve(addr string, reg *Registry) (*MetricsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	ms := &MetricsServer{
		srv:  &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 10 * time.Second},
		lis:  lis,
		done: make(chan struct{}),
	}
	go func() {
		defer close(ms.done)
		ms.srv.Serve(lis) // returns ErrServerClosed on Shutdown
	}()
	return ms, nil
}

// Addr returns the bound listen address.
func (ms *MetricsServer) Addr() string { return ms.lis.Addr().String() }

// Close gracefully shuts the server down (bounded at two seconds, then
// hard-closes) and waits for the serve goroutine to exit. Idempotent.
func (ms *MetricsServer) Close() error {
	if ms == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := ms.srv.Shutdown(ctx)
	if err != nil {
		ms.srv.Close()
	}
	<-ms.done
	return err
}
