package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dnsddos/internal/netx"
)

// get fetches a URL and returns the body. Keep-alives are disabled so
// client transport goroutines cannot outlive the request and trip the
// goroutine-leak checks.
func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{
		Timeout:   5 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints covers the three export surfaces over a real
// listener and — via the netx leak helper — that Close fully drains the
// HTTP serve loop.
func TestServeEndpoints(t *testing.T) {
	netx.NoGoroutineLeaks(t)

	reg := New()
	reg.Counter("authserver.udp_answered").Add(99)
	reg.Histogram("authserver.udp_latency").Observe(4 * time.Millisecond)

	ms, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := "http://" + ms.Addr()

	// /metrics.json: valid JSON with the metrics visible
	code, body := get(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v\n%s", err, body)
	}
	if snap.Counters["authserver.udp_answered"] != 99 {
		t.Errorf("counter missing from /metrics.json: %s", body)
	}
	if snap.Histograms["authserver.udp_latency"].Count != 1 {
		t.Errorf("histogram missing from /metrics.json: %s", body)
	}

	// /debug/vars: expvar format — an object carrying both the runtime
	// globals and our bridged metrics
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing expvar's memstats")
	}
	if got, ok := vars["authserver.udp_answered"]; !ok || got != float64(99) {
		t.Errorf("/debug/vars missing bridged counter, got %v", got)
	}
	if _, ok := vars["authserver.udp_latency"]; !ok {
		t.Error("/debug/vars missing bridged histogram")
	}

	// /debug/pprof/: the index page lists profiles
	code, body = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing the goroutine profile")
	}
	code, _ = get(t, base+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK {
		t.Errorf("goroutine profile status %d", code)
	}

	if err := ms.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	// idempotent
	ms.Close()
}

// TestServeLiveUpdates: the endpoint reflects metrics observed after it
// started — the mid-run visibility the layer exists for.
func TestServeLiveUpdates(t *testing.T) {
	netx.NoGoroutineLeaks(t)
	reg := New()
	ms, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	c := reg.Counter("live.hits")
	for i := 1; i <= 3; i++ {
		c.Inc()
		_, body := get(t, fmt.Sprintf("http://%s/metrics.json", ms.Addr()))
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Counters["live.hits"] != int64(i) {
			t.Fatalf("after %d increments endpoint shows %d", i, snap.Counters["live.hits"])
		}
	}
}

// TestServeBadAddr: a bind failure reports an error instead of a panic.
func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bad", New()); err == nil {
		t.Error("bad address must fail to serve")
	}
}
