package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeBasics covers the scalar metrics including nil-safety.
func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if r.Counter("c") != c {
		t.Error("second lookup must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}

	// nil registry and nil metrics are inert, not crashes
	var nilReg *Registry
	nilReg.Counter("x").Inc()
	nilReg.Gauge("x").Set(1)
	nilReg.Histogram("x").Observe(time.Second)
	if n := nilReg.Counter("x").Load(); n != 0 {
		t.Errorf("nil counter loaded %d", n)
	}
	snap := nilReg.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

// TestKindMismatchPanics: one name, two kinds is a programming error.
func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a histogram must panic")
		}
	}()
	r.Histogram("m")
}

// TestConcurrentCountersExact hammers one counter from N goroutines and
// asserts the total is exact — the -race leg of the concurrency sweep.
func TestConcurrentCountersExact(t *testing.T) {
	const goroutines, perG = 16, 5000
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits") // concurrent get-or-create on purpose
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Load(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestConcurrentHistogramExact hammers a histogram from N goroutines:
// the observation count must be exact and the bucket sums must equal it.
func TestConcurrentHistogramExact(t *testing.T) {
	const goroutines, perG = 16, 5000
	r := New()
	h := r.Histogram("lat")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				// spread observations across many buckets
				h.Observe(time.Duration(seed*perG+j) * 37 * time.Microsecond)
			}
		}(i)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", snap.Count, goroutines*perG)
	}
	var binned int64
	for _, b := range snap.Buckets {
		binned += b.Count
	}
	if binned != snap.Count {
		t.Errorf("bucket sums %d != observation count %d", binned, snap.Count)
	}
	wantMax := time.Duration(goroutines*perG-1) * 37 * time.Microsecond
	if got := h.Max(); got != wantMax {
		t.Errorf("max = %v, want %v", got, wantMax)
	}
}

// TestHistogramQuantiles checks the bucket-walk estimator against a
// known distribution.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	// p50 lands in the bucket covering 500ms: (256ms, 512ms] → upper
	// bound 2^19µs ≈ 524ms
	if p50 := h.Quantile(0.5); p50 < 500*time.Millisecond || p50 > 550*time.Millisecond {
		t.Errorf("p50 = %v, want ≈512ms (bucket upper bound)", p50)
	}
	// the max quantile is exact
	if p100 := h.Quantile(1); p100 != time.Second {
		t.Errorf("p100 = %v, want 1s", p100)
	}
	if h.Quantile(0.99) > h.Quantile(1) {
		t.Error("quantiles must be monotone")
	}
	// zero observations
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}

// TestBucketIndexBounds pins the bucket layout: sub-µs in bucket 0,
// doubling thereafter, overflow clamped to the last bucket.
func TestBucketIndexBounds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{999 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Hour, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	for i := 0; i < NumBuckets-1; i++ {
		ub := BucketUpperBound(i)
		if bucketIndex(ub-time.Nanosecond) > i {
			t.Errorf("upper bound of bucket %d (%v) maps above it", i, ub)
		}
		if bucketIndex(ub) != i+1 {
			t.Errorf("bound %v must open bucket %d", ub, i+1)
		}
	}
	if BucketUpperBound(NumBuckets-1) >= 0 {
		t.Error("overflow bucket must be unbounded")
	}
}

// TestObserveAllocationFree asserts the hot-path promise: Observe does
// not allocate.
func TestObserveAllocationFree(t *testing.T) {
	h := New().Histogram("lat")
	d := 3 * time.Millisecond
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(d)
		d += time.Microsecond
	}); allocs != 0 {
		t.Errorf("Observe allocates %.1f objects per call, want 0", allocs)
	}
	c := New().Counter("n")
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Errorf("Counter.Inc allocates %.1f objects per call, want 0", allocs)
	}
}

// TestMerge: counters add, histograms add bucket-wise, max is max.
func TestMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("n").Add(3)
	b.Counter("n").Add(4)
	b.Counter("only_b").Add(9)
	b.Gauge("g").Set(5)
	a.Histogram("h").Observe(time.Millisecond)
	b.Histogram("h").Observe(2 * time.Millisecond)
	b.Histogram("h", Volatile()) // volatility rides along, harmless repeat

	a.Merge(b)
	if got := a.Counter("n").Load(); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("only_b").Load(); got != 9 {
		t.Errorf("merged new counter = %d, want 9", got)
	}
	if got := a.Gauge("g").Load(); got != 5 {
		t.Errorf("merged gauge = %d, want 5", got)
	}
	h := a.Histogram("h").Snapshot()
	if h.Count != 2 || h.MaxNS != int64(2*time.Millisecond) {
		t.Errorf("merged histogram count=%d max=%d", h.Count, h.MaxNS)
	}
}

// TestVolatileExcludedFromStableSnapshot: wall-clock metrics stay out of
// the deterministic snapshot but remain visible in the full one.
func TestVolatileExcludedFromStableSnapshot(t *testing.T) {
	r := New()
	r.Counter("stable").Inc()
	r.Gauge("wall_ns", Volatile()).Set(12345)
	r.Histogram("wall_hist", Volatile()).Observe(time.Second)

	full := r.Snapshot()
	if _, ok := full.Gauges["wall_ns"]; !ok {
		t.Error("full snapshot must include volatile metrics")
	}
	stable := r.StableSnapshot()
	if _, ok := stable.Gauges["wall_ns"]; ok {
		t.Error("stable snapshot must exclude volatile gauges")
	}
	if _, ok := stable.Histograms["wall_hist"]; ok {
		t.Error("stable snapshot must exclude volatile histograms")
	}
	if stable.Counters["stable"] != 1 {
		t.Error("stable snapshot must keep non-volatile metrics")
	}
}

// BenchmarkObserve is the hot-path benchmark; run with -benchmem to see
// the zero-allocation property.
func BenchmarkObserve(b *testing.B) {
	h := New().Histogram("lat")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Microsecond
		for pb.Next() {
			h.Observe(d)
			d += 127 * time.Nanosecond
		}
	})
	if h.Count() == 0 {
		b.Fatal("no observations")
	}
}

// BenchmarkCounterInc measures the counter hot path.
func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("n")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// ExampleRegistry shows the snapshot shape.
func ExampleRegistry() {
	r := New()
	r.Counter("queries").Add(2)
	r.Histogram("latency").Observe(3 * time.Millisecond)
	snap := r.StableSnapshot()
	fmt.Println(snap.Counters["queries"], snap.Histograms["latency"].Count)
	// Output: 2 1
}
