package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histogram.go implements the lock-free fixed-bucket latency histogram.
//
// Buckets are log-spaced in powers of two of microseconds: bucket 0
// holds sub-microsecond observations, bucket i (1 ≤ i < NumBuckets-1)
// holds durations in [2^(i-1), 2^i) µs, and the last bucket is the
// overflow (≥ ~67 s). The bucket index is a single bits.Len64 — no
// floating point, no locks, no allocation — so Observe is cheap enough
// for the authserver's per-datagram hot path, and bucket counts are
// plain atomic adds, which makes concurrent observation commutative:
// the same multiset of observations yields the same bucket state
// regardless of interleaving. That commutativity is what lets the study
// pipeline merge per-shard histograms in completion order and still
// produce byte-identical snapshots across seeded runs.

// NumBuckets is the fixed bucket count: sub-µs, 26 doubling buckets up
// to 2^26 µs (≈ 67 s), and overflow.
const NumBuckets = 28

// Histogram is a lock-free latency histogram. The zero value is ready
// to use; all methods are nil-receiver-safe.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// bucketIndex maps a duration to its bucket. Negative durations clamp
// to bucket 0.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// BucketUpperBound returns the exclusive upper bound of bucket i; the
// overflow bucket returns a negative duration (unbounded).
func BucketUpperBound(i int) time.Duration {
	if i >= NumBuckets-1 {
		return -1
	}
	return time.Microsecond << i
}

// Observe records one duration. It is allocation-free and safe for
// concurrent use.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur {
			return
		}
		if h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket counts:
// the upper bound of the bucket containing the ⌈q·count⌉-th observation,
// clamped to the exact observed max. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	return h.state().quantile(q)
}

// histState is a consistent-enough copy of the histogram internals used
// for snapshots and merges. Loads are per-field atomic; a histogram
// observed concurrently may show count transiently ahead of bucket sums.
type histState struct {
	buckets [NumBuckets]int64
	count   int64
	sum     int64
	max     int64
}

func (h *Histogram) state() histState {
	var st histState
	if h == nil {
		return st
	}
	for i := range st.buckets {
		st.buckets[i] = h.buckets[i].Load()
	}
	st.count = h.count.Load()
	st.sum = h.sum.Load()
	st.max = h.max.Load()
	return st
}

// merge folds a copied state into h.
func (h *Histogram) merge(st histState) {
	if h == nil {
		return
	}
	for i, n := range st.buckets {
		if n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(st.count)
	h.sum.Add(st.sum)
	for {
		cur := h.max.Load()
		if st.max <= cur {
			return
		}
		if h.max.CompareAndSwap(cur, st.max) {
			return
		}
	}
}

func (st histState) quantile(q float64) time.Duration {
	if st.count == 0 || q <= 0 {
		return 0
	}
	rank := int64(q*float64(st.count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > st.count {
		rank = st.count
	}
	var cum int64
	for i, n := range st.buckets {
		cum += n
		if cum >= rank {
			ub := BucketUpperBound(i)
			if ub < 0 || ub > time.Duration(st.max) {
				return time.Duration(st.max)
			}
			return ub
		}
	}
	return time.Duration(st.max)
}

// importSnapshot folds a HistogramSnapshot back into the histogram —
// the inverse of Snapshot for the non-empty buckets. Buckets are matched
// by their upper bound; a bound no bucket layout of this build produces
// lands in the overflow bucket rather than being dropped, so totals stay
// exact even across layout skew.
func (h *Histogram) importSnapshot(s HistogramSnapshot) {
	if h == nil {
		return
	}
	var st histState
	st.count = s.Count
	st.sum = s.SumNS
	st.max = s.MaxNS
	for _, b := range s.Buckets {
		st.buckets[bucketForBound(b.LeUS)] += b.Count
	}
	h.merge(st)
}

// bucketForBound maps a snapshot bucket bound (µs, -1 = overflow) back to
// its bucket index.
func bucketForBound(leUS int64) int {
	for i := 0; i < NumBuckets-1; i++ {
		if int64(BucketUpperBound(i)/time.Microsecond) == leUS {
			return i
		}
	}
	return NumBuckets - 1
}

// HistogramBucket is one non-empty bucket in a snapshot. LeUS is the
// exclusive upper bound in microseconds; -1 marks the overflow bucket.
type HistogramBucket struct {
	LeUS  int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the deterministic JSON form of a histogram:
// totals, derived quantiles, and the non-empty buckets in bound order.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumNS   int64             `json:"sum_ns"`
	MaxNS   int64             `json:"max_ns"`
	P50NS   int64             `json:"p50_ns"`
	P90NS   int64             `json:"p90_ns"`
	P99NS   int64             `json:"p99_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. Concurrent observers may leave the
// totals transiently ahead of the bucket sums; quiesce writers first
// when exactness matters (tests do).
func (h *Histogram) Snapshot() HistogramSnapshot {
	st := h.state()
	s := HistogramSnapshot{
		Count: st.count,
		SumNS: st.sum,
		MaxNS: st.max,
		P50NS: int64(st.quantile(0.50)),
		P90NS: int64(st.quantile(0.90)),
		P99NS: int64(st.quantile(0.99)),
	}
	for i, n := range st.buckets {
		if n == 0 {
			continue
		}
		le := int64(-1)
		if ub := BucketUpperBound(i); ub >= 0 {
			le = int64(ub / time.Microsecond)
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LeUS: le, Count: n})
	}
	return s
}
