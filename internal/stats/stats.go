// Package stats provides the small statistical toolkit the analysis uses:
// Pearson correlation (§6.4), quantiles, histograms, and logarithmic binning
// for the scatter figures (Figs. 7–13).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient of the paired samples,
// and false when it is undefined (mismatched lengths, fewer than two pairs,
// or zero variance in either series).
func Pearson(xs, ys []float64) (float64, bool) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, false
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, false
	}
	return sxy / math.Sqrt(sxx*syy), true
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= len(s) {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Histogram is a fixed-bin histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int64
	Under    int64 // samples below Min
	Over     int64 // samples at or above Max
	N        int64
}

// NewHistogram creates a histogram with bins equal-width bins over [min,max).
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 || max <= min {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, bins)}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.N++
	switch {
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // guard float rounding at the upper edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Modes returns the centers of local maxima with at least minCount samples,
// in descending count order. Used to verify the bimodal duration (§6.5) and
// intensity (§6.4) distributions.
func (h *Histogram) Modes(minCount int64) []float64 {
	type peak struct {
		center float64
		count  int64
	}
	var peaks []peak
	for i, c := range h.Counts {
		if c < minCount {
			continue
		}
		left := int64(0)
		if i > 0 {
			left = h.Counts[i-1]
		}
		right := int64(0)
		if i < len(h.Counts)-1 {
			right = h.Counts[i+1]
		}
		if c >= left && c >= right && (c > left || c > right) {
			peaks = append(peaks, peak{h.BinCenter(i), c})
		}
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].count > peaks[j].count })
	out := make([]float64, len(peaks))
	for i, p := range peaks {
		out[i] = p.center
	}
	return out
}

// LogBin maps a positive value to a decade bucket index: 0 for [1,10),
// 1 for [10,100), etc. Values below 1 map to -1. The scatter figures bucket
// NSSet hosted-domain counts by order of magnitude this way.
func LogBin(x float64) int {
	if x < 1 {
		return -1
	}
	return int(math.Floor(math.Log10(x)))
}

// LogBinLabel renders a decade bucket as "10^k–10^(k+1)".
func LogBinLabel(bin int) string {
	if bin < 0 {
		return "<1"
	}
	lo := int64(math.Pow(10, float64(bin)))
	hi := int64(math.Pow(10, float64(bin+1)))
	return itoa(lo) + "-" + itoa(hi)
}

func itoa(v int64) string {
	// small helper to render 10^k values with K/M suffixes for readability
	switch {
	case v >= 1_000_000 && v%1_000_000 == 0:
		return fmtInt(v/1_000_000) + "M"
	case v >= 1_000 && v%1_000 == 0:
		return fmtInt(v/1_000) + "K"
	default:
		return fmtInt(v)
	}
}

func fmtInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Ratio returns num/den, or 0 when den is 0; percentage columns in the
// tables use it.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
