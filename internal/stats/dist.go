package stats

import (
	"math"
	"math/rand/v2"
)

// Poisson draws a Poisson(lambda) sample. For small lambda it uses Knuth's
// multiplication method; for large lambda a normal approximation, which is
// accurate to well under a percent for the packet-count magnitudes the
// telescope thinning uses.
func Poisson(rng *rand.Rand, lambda float64) int64 {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		var k int64
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := lambda + math.Sqrt(lambda)*rng.NormFloat64()
	if n < 0 {
		return 0
	}
	return int64(math.Round(n))
}

// Binomial draws a Binomial(n, p) sample. Small n uses exact Bernoulli
// trials; large n uses the Poisson or normal approximation depending on
// mean.
func Binomial(rng *rand.Rand, n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		var k int64
		for i := int64(0); i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	if mean < 30 {
		k := Poisson(rng, mean)
		if k > n {
			return n
		}
		return k
	}
	sd := math.Sqrt(mean * (1 - p))
	k := int64(math.Round(mean + sd*rng.NormFloat64()))
	if k < 0 {
		return 0
	}
	if k > n {
		return n
	}
	return k
}

// Zipf draws ranks 1..n with probability proportional to rank^-s. The
// provider-size distribution of the synthetic DNS world uses it: a few
// providers host millions of domains, a long tail hosts a handful —
// matching the paper's spread from 10M-domain deployments (Fig. 5) down to
// 100-domain NSSets (Fig. 7).
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the CDF for n ranks with exponent s.
func NewZipf(n int, s float64) *Zipf {
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Draw samples a rank in [0, n).
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weight returns the probability mass of rank i.
func (z *Zipf) Weight(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// LogNormal draws exp(mu + sigma*N(0,1)); base RTT jitter uses it.
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}
