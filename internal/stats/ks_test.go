package stats

import (
	"math/rand/v2"
	"testing"
)

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("F(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	if NewECDF(nil).At(5) != 0 {
		t.Error("empty ECDF should be 0")
	}
}

func TestKSSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	const n = 3000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	d := KolmogorovSmirnov(a, b)
	if crit := KSCritical(0.01, n, n); d > crit {
		t.Errorf("same-distribution KS = %v exceeds critical %v", d, crit)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	const n = 2000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1 // shifted
	}
	d := KolmogorovSmirnov(a, b)
	if crit := KSCritical(0.05, n, n); d <= crit {
		t.Errorf("shifted distributions KS = %v below critical %v", d, crit)
	}
}

func TestKSEdgeCases(t *testing.T) {
	if KolmogorovSmirnov(nil, []float64{1}) != 1 {
		t.Error("empty sample should give maximal distance")
	}
	if d := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1, 2, 3}); d != 0 {
		t.Errorf("identical samples KS = %v", d)
	}
}

// TestPoissonMatchesBinomialThinning cross-validates the two samplers the
// telescope thinning relies on: Binomial(n, p) with tiny p must be
// KS-indistinguishable from Poisson(np).
func TestPoissonMatchesBinomialThinning(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	const trials = 4000
	const n, p = 1_000_000, 1.0 / 341.0 / 100 // small λ ≈ 29.3
	lambda := float64(n) * p
	a := make([]float64, trials)
	b := make([]float64, trials)
	for i := 0; i < trials; i++ {
		a[i] = float64(Binomial(rng, n, p))
		b[i] = float64(Poisson(rng, lambda))
	}
	d := KolmogorovSmirnov(a, b)
	// discrete distributions inflate KS slightly; allow 2× the critical
	if crit := KSCritical(0.01, trials, trials); d > 2*crit {
		t.Errorf("thinning samplers diverge: KS = %v, critical %v", d, crit)
	}
}
