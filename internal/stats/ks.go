package stats

import (
	"math"
	"sort"
)

// ks.go provides empirical-distribution tooling: ECDFs and the two-sample
// Kolmogorov–Smirnov statistic. The test suite uses them to check that
// synthesized distributions (attack durations, intensities, thinned
// backscatter counts) actually follow their designed shapes rather than
// merely passing point assertions.

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (copied and sorted).
func NewECDF(samples []float64) *ECDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns F(x) = P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// move past ties so the CDF is right-continuous
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// N returns the sample count.
func (e *ECDF) N() int { return len(e.sorted) }

// KolmogorovSmirnov returns the two-sample KS statistic
// D = sup_x |F1(x) − F2(x)| over the pooled sample points.
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	fa, fb := NewECDF(a), NewECDF(b)
	var d float64
	for _, x := range fa.sorted {
		if diff := math.Abs(fa.At(x) - fb.At(x)); diff > d {
			d = diff
		}
	}
	for _, x := range fb.sorted {
		if diff := math.Abs(fa.At(x) - fb.At(x)); diff > d {
			d = diff
		}
	}
	return d
}

// KSCritical returns the approximate critical value of the two-sample KS
// statistic at significance alpha (0.05 or 0.01) for sample sizes n and m:
// c(α)·sqrt((n+m)/(n·m)).
func KSCritical(alpha float64, n, m int) float64 {
	c := 1.358 // alpha = 0.05
	if alpha <= 0.01 {
		c = 1.628
	}
	if n == 0 || m == 0 {
		return 1
	}
	return c * math.Sqrt(float64(n+m)/float64(n)/float64(m))
}
