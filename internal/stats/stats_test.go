package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Errorf("StdDev = %v", sd)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, ok := Pearson(xs, ys)
	if !ok || !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect correlation r = %v ok=%v", r, ok)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation r = %v", r)
	}
}

func TestPearsonUndefined(t *testing.T) {
	if _, ok := Pearson([]float64{1, 2}, []float64{1}); ok {
		t.Error("length mismatch should be undefined")
	}
	if _, ok := Pearson([]float64{1}, []float64{1}); ok {
		t.Error("single pair should be undefined")
	}
	if _, ok := Pearson([]float64{3, 3, 3}, []float64{1, 2, 3}); ok {
		t.Error("zero variance should be undefined")
	}
}

func TestPearsonBounded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 3 + rng.IntN(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r, ok := Pearson(xs, ys)
		return !ok || (r >= -1.0000001 && r <= 1.0000001)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Error("Median should sort input")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		n := 1 + rng.IntN(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 11} {
		h.Add(x)
	}
	if h.N != 7 {
		t.Errorf("N = %d", h.N)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 {
		t.Errorf("bin0 = %d, want 2 (0 and 0.5)", h.Counts[0])
	}
	if h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Errorf("bins = %v", h.Counts)
	}
}

func TestHistogramCountConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		h := NewHistogram(0, 1, 7)
		n := rng.IntN(200)
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64())
		}
		var sum int64
		for _, c := range h.Counts {
			sum += c
		}
		return sum+h.Under+h.Over == h.N && h.N == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramModesBimodal(t *testing.T) {
	h := NewHistogram(0, 100, 20)
	// two clear modes at ~15 and ~60
	for i := 0; i < 100; i++ {
		h.Add(15)
		h.Add(62)
	}
	for i := 0; i < 10; i++ {
		h.Add(40)
	}
	modes := h.Modes(50)
	if len(modes) != 2 {
		t.Fatalf("modes = %v", modes)
	}
	if !almostEqual(modes[0], 12.5, 5.1) || !almostEqual(modes[1], 62.5, 5.1) {
		t.Errorf("mode centers = %v", modes)
	}
}

func TestLogBin(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0.5, -1}, {1, 0}, {9.9, 0}, {10, 1}, {99, 1}, {100, 2}, {1e6, 6},
	}
	for _, c := range cases {
		if got := LogBin(c.x); got != c.want {
			t.Errorf("LogBin(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLogBinLabel(t *testing.T) {
	cases := []struct {
		bin  int
		want string
	}{
		{-1, "<1"}, {0, "1-10"}, {1, "10-100"}, {2, "100-1K"}, {3, "1K-10K"}, {6, "1M-10M"},
	}
	for _, c := range cases {
		if got := LogBinLabel(c.bin); got != c.want {
			t.Errorf("LogBinLabel(%d) = %q, want %q", c.bin, got, c.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 2) != 0.5 {
		t.Error("Ratio(1,2)")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero should be 0")
	}
}
