package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, lambda := range []float64{0.5, 5, 40, 1000} {
		const n = 20000
		var sum, sumsq float64
		for i := 0; i < n; i++ {
			k := float64(Poisson(rng, lambda))
			sum += k
			sumsq += k * k
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if math.Abs(mean-lambda) > 5*math.Sqrt(lambda/n)+0.5 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.15*lambda+1 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	if Poisson(rng, 0) != 0 || Poisson(rng, -3) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

func TestBinomialMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	cases := []struct {
		n int64
		p float64
	}{{10, 0.5}, {100, 0.1}, {100000, 0.003}, {1000000, 0.5}}
	for _, c := range cases {
		const trials = 5000
		var sum float64
		for i := 0; i < trials; i++ {
			k := Binomial(rng, c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", c.n, c.p, k)
			}
			sum += float64(k)
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		sd := math.Sqrt(want * (1 - c.p))
		if math.Abs(mean-want) > 6*sd/math.Sqrt(trials)+0.5 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialEdge(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	if Binomial(rng, 0, 0.5) != 0 {
		t.Error("n=0")
	}
	if Binomial(rng, 10, 0) != 0 {
		t.Error("p=0")
	}
	if Binomial(rng, 10, 1) != 10 {
		t.Error("p=1")
	}
	if Binomial(rng, 10, 1.5) != 10 {
		t.Error("p>1 clamps to n")
	}
}

func TestZipfWeightsSumToOne(t *testing.T) {
	z := NewZipf(50, 0.9)
	var sum float64
	for i := 0; i < 50; i++ {
		sum += z.Weight(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %v", sum)
	}
	// weights decrease with rank
	for i := 1; i < 50; i++ {
		if z.Weight(i) > z.Weight(i-1)+1e-12 {
			t.Errorf("weight increased at rank %d", i)
		}
	}
}

func TestZipfDrawDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	z := NewZipf(10, 1.0)
	counts := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Draw(rng)]++
	}
	for i := 0; i < 10; i++ {
		want := z.Weight(i) * n
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want)+5 {
			t.Errorf("rank %d drawn %d times, want ≈%.0f", i, counts[i], want)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	for i := 0; i < 1000; i++ {
		if LogNormal(rng, 0, 0.5) <= 0 {
			t.Fatal("LogNormal must be positive")
		}
	}
}
