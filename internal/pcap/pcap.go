// Package pcap reads and writes libpcap capture files (the classic
// tcpdump format, magic 0xa1b2c3d4, microsecond timestamps) with the
// LINKTYPE_RAW link type, i.e. records begin directly with the IPv4 header.
//
// The telescope persists its captured backscatter in this format so captures
// can be inspected with standard tooling, and the RSDoS inference can be run
// offline from a file, mirroring how CAIDA curates the raw UCSD-NT data into
// the RSDoS feed.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

const (
	magicMicros  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	// LinkTypeRaw means packets start at the IP header.
	LinkTypeRaw = 101
	// MaxSnapLen is the snapshot length written into file headers.
	MaxSnapLen = 262144
)

// Record is one captured packet.
type Record struct {
	Time time.Time
	// OrigLen is the length of the packet on the wire; len(Data) may be
	// smaller if the capture was truncated to the snap length.
	OrigLen int
	Data    []byte
}

// Writer writes pcap files.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter writes the file header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], magicMicros)
	le.PutUint16(hdr[4:], versionMajor)
	le.PutUint16(hdr[6:], versionMinor)
	// thiszone, sigfigs zero
	le.PutUint32(hdr[16:], MaxSnapLen)
	le.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	// flush so an empty capture is still a valid pcap file
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// WriteRecord appends one packet record.
func (w *Writer) WriteRecord(r Record) error {
	if w.err != nil {
		return w.err
	}
	if len(r.Data) > MaxSnapLen {
		w.err = fmt.Errorf("pcap: record of %d bytes exceeds snap length", len(r.Data))
		return w.err
	}
	var hdr [16]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], uint32(r.Time.Unix()))
	le.PutUint32(hdr[4:], uint32(r.Time.Nanosecond()/1000))
	le.PutUint32(hdr[8:], uint32(len(r.Data)))
	orig := r.OrigLen
	if orig < len(r.Data) {
		orig = len(r.Data)
	}
	le.PutUint32(hdr[12:], uint32(orig))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(r.Data); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader reads pcap files written by this package (and any little-endian
// microsecond-resolution pcap with a raw link type).
type Reader struct {
	r        *bufio.Reader
	LinkType uint32
	SnapLen  uint32
}

// NewReader parses the file header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading file header: %w", err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != magicMicros {
		return nil, errors.New("pcap: unsupported magic (want little-endian microsecond pcap)")
	}
	if maj := le.Uint16(hdr[4:]); maj != versionMajor {
		return nil, fmt.Errorf("pcap: unsupported version %d", maj)
	}
	return &Reader{
		r:        br,
		SnapLen:  le.Uint32(hdr[16:]),
		LinkType: le.Uint32(hdr[20:]),
	}, nil
}

// ReadRecord reads the next packet record. It returns io.EOF cleanly at end
// of file.
func (r *Reader) ReadRecord() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("pcap: reading record header: %w", err)
	}
	le := binary.LittleEndian
	sec := le.Uint32(hdr[0:])
	usec := le.Uint32(hdr[4:])
	caplen := le.Uint32(hdr[8:])
	origlen := le.Uint32(hdr[12:])
	if caplen > MaxSnapLen {
		return Record{}, fmt.Errorf("pcap: record capture length %d too large", caplen)
	}
	data := make([]byte, caplen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: reading record body: %w", err)
	}
	return Record{
		Time:    time.Unix(int64(sec), int64(usec)*1000).UTC(),
		OrigLen: int(origlen),
		Data:    data,
	}, nil
}
