package pcap

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Time: time.Unix(1606780800, 123000).UTC(), Data: []byte{1, 2, 3, 4}},
		{Time: time.Unix(1606780801, 999000).UTC(), Data: []byte{}, OrigLen: 0},
		{Time: time.Unix(1606780802, 0).UTC(), Data: bytes.Repeat([]byte{0xaa}, 1500), OrigLen: 9000},
	}
	for _, r := range recs {
		if err := w.WriteRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeRaw {
		t.Errorf("link type = %d", r.LinkType)
	}
	if r.SnapLen != MaxSnapLen {
		t.Errorf("snap len = %d", r.SnapLen)
	}
	for i, want := range recs {
		got, err := r.ReadRecord()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !got.Time.Equal(want.Time) {
			t.Errorf("record %d time = %v, want %v", i, got.Time, want.Time)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Errorf("record %d data mismatch", i)
		}
		wantOrig := want.OrigLen
		if wantOrig < len(want.Data) {
			wantOrig = len(want.Data)
		}
		if got.OrigLen != wantOrig {
			t.Errorf("record %d origlen = %d, want %d", i, got.OrigLen, wantOrig)
		}
	}
	if _, err := r.ReadRecord(); err != io.EOF {
		t.Errorf("after last record err = %v, want EOF", err)
	}
}

func TestFileHeaderBytes(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header length = %d", len(hdr))
	}
	// little-endian magic 0xa1b2c3d4
	if hdr[0] != 0xd4 || hdr[1] != 0xc3 || hdr[2] != 0xb2 || hdr[3] != 0xa1 {
		t.Errorf("magic bytes = % x", hdr[:4])
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	bad := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(bad)); err == nil {
		t.Error("zero magic should be rejected")
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("short header should be rejected")
	}
}

func TestWriterRejectsOversizeRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	big := Record{Time: time.Now(), Data: make([]byte, MaxSnapLen+1)}
	if err := w.WriteRecord(big); err == nil {
		t.Error("oversize record should be rejected")
	}
	// the writer is now poisoned
	if err := w.WriteRecord(Record{Time: time.Now(), Data: []byte{1}}); err == nil {
		t.Error("writer should stay in error state")
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.WriteRecord(Record{Time: time.Now(), Data: []byte{1, 2, 3, 4, 5}})
	_ = w.Flush()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadRecord(); err == nil || err == io.EOF {
		t.Errorf("truncated body err = %v, want real error", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		n := rng.IntN(20)
		var recs []Record
		for i := 0; i < n; i++ {
			data := make([]byte, rng.IntN(200))
			for j := range data {
				data[j] = byte(rng.Uint32())
			}
			rec := Record{
				Time: time.Unix(int64(rng.Uint32()), int64(rng.IntN(1_000_000))*1000).UTC(),
				Data: data,
			}
			recs = append(recs, rec)
			if err := w.WriteRecord(rec); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, err := r.ReadRecord()
			if err != nil || !got.Time.Equal(want.Time) || !bytes.Equal(got.Data, want.Data) {
				return false
			}
		}
		_, err = r.ReadRecord()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
