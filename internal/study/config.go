package study

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dnsddos/internal/clock"
)

// config.go provides JSON (de)serialization and validation for Config so
// the command-line tools can run studies from declarative files and whole
// experiment setups can be archived alongside their outputs.

// WriteConfig serializes a configuration as indented JSON.
func WriteConfig(w io.Writer, cfg Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}

// ReadConfig parses a JSON configuration. Missing fields keep the values of
// base (pass DefaultConfig() for the paper's settings), so a config file
// needs to spell out only what it overrides.
func ReadConfig(r io.Reader, base Config) (Config, error) {
	cfg := base
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("study: parsing config: %w", err)
	}
	if err := Validate(cfg); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate rejects configurations that would run but produce meaningless
// studies (empty worlds, inverted day ranges, broken probabilities) or
// blow up hours into a run (NaN shares, negative parallelism). Every
// error names the offending field. RunContext validates before doing any
// work, so a bad config fails in milliseconds, not after the sweep.
func Validate(cfg Config) error {
	// NaN compares false against every bound, so range checks alone
	// would wave NaN through; check it explicitly for every ratio.
	fracs := []struct {
		name string
		v    float64
		max  float64
	}{
		{"World.MisconfiguredShare", cfg.World.MisconfiguredShare, 0.5},
		{"World.AnycastRecall", cfg.World.AnycastRecall, 1},
		{"World.InconsistentShare", cfg.World.InconsistentShare, 1},
		{"Attacks.DNSShare", cfg.Attacks.DNSShare, 1},
		{"Attacks.MultiVectorShare", cfg.Attacks.MultiVectorShare, 1},
		{"Net.ScrubEfficiency", cfg.Net.ScrubEfficiency, 1},
	}
	for _, f := range fracs {
		if math.IsNaN(f.v) || f.v < 0 || f.v > f.max {
			return fmt.Errorf("study: %s = %v out of [0, %g]", f.name, f.v, f.max)
		}
	}
	switch {
	case cfg.World.Domains <= 0:
		return fmt.Errorf("study: World.Domains = %d, must be positive", cfg.World.Domains)
	case cfg.World.GenericProviders < 0:
		return fmt.Errorf("study: World.GenericProviders = %d, must be non-negative", cfg.World.GenericProviders)
	case cfg.Attacks.TotalAttacks <= 0:
		return fmt.Errorf("study: Attacks.TotalAttacks = %d, must be positive", cfg.Attacks.TotalAttacks)
	case cfg.FromDay < 0 || cfg.ToDay >= clock.Day(clock.StudyDays()):
		return fmt.Errorf("study: day range [%d, %d] outside the %d-day study window", cfg.FromDay, cfg.ToDay, clock.StudyDays())
	case cfg.ToDay < cfg.FromDay:
		return fmt.Errorf("study: ToDay %d before FromDay %d (zero-span or inverted interval)", cfg.ToDay, cfg.FromDay)
	case cfg.Parallelism < 0:
		return fmt.Errorf("study: Parallelism = %d, must be non-negative (0 = all cores)", cfg.Parallelism)
	case cfg.WindowMarginBefore < 0:
		return fmt.Errorf("study: WindowMarginBefore = %v, must be non-negative", cfg.WindowMarginBefore)
	case cfg.WindowMarginAfter < 0:
		return fmt.Errorf("study: WindowMarginAfter = %v, must be non-negative", cfg.WindowMarginAfter)
	case cfg.Pipeline.MinMeasuredDomains < 0:
		return fmt.Errorf("study: Pipeline.MinMeasuredDomains = %d, must be non-negative", cfg.Pipeline.MinMeasuredDomains)
	case cfg.Pipeline.BaselineDaysBack < 0:
		return fmt.Errorf("study: Pipeline.BaselineDaysBack = %d, must be non-negative", cfg.Pipeline.BaselineDaysBack)
	case cfg.Resolver.MaxTries < 1:
		return fmt.Errorf("study: Resolver.MaxTries = %d, must be at least 1", cfg.Resolver.MaxTries)
	}
	return nil
}
