package study

import (
	"encoding/json"
	"fmt"
	"io"

	"dnsddos/internal/clock"
)

// config.go provides JSON (de)serialization and validation for Config so
// the command-line tools can run studies from declarative files and whole
// experiment setups can be archived alongside their outputs.

// WriteConfig serializes a configuration as indented JSON.
func WriteConfig(w io.Writer, cfg Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}

// ReadConfig parses a JSON configuration. Missing fields keep the values of
// base (pass DefaultConfig() for the paper's settings), so a config file
// needs to spell out only what it overrides.
func ReadConfig(r io.Reader, base Config) (Config, error) {
	cfg := base
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("study: parsing config: %w", err)
	}
	if err := Validate(cfg); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate rejects configurations that would run but produce meaningless
// studies (empty worlds, inverted day ranges, broken probabilities).
func Validate(cfg Config) error {
	switch {
	case cfg.World.Domains <= 0:
		return fmt.Errorf("study: World.Domains = %d, must be positive", cfg.World.Domains)
	case cfg.World.GenericProviders < 0:
		return fmt.Errorf("study: World.GenericProviders = %d, must be non-negative", cfg.World.GenericProviders)
	case cfg.World.MisconfiguredShare < 0 || cfg.World.MisconfiguredShare > 0.5:
		return fmt.Errorf("study: World.MisconfiguredShare = %v out of [0, 0.5]", cfg.World.MisconfiguredShare)
	case cfg.World.AnycastRecall < 0 || cfg.World.AnycastRecall > 1:
		return fmt.Errorf("study: World.AnycastRecall = %v out of [0, 1]", cfg.World.AnycastRecall)
	case cfg.World.InconsistentShare < 0 || cfg.World.InconsistentShare > 1:
		return fmt.Errorf("study: World.InconsistentShare = %v out of [0, 1]", cfg.World.InconsistentShare)
	case cfg.Attacks.TotalAttacks <= 0:
		return fmt.Errorf("study: Attacks.TotalAttacks = %d, must be positive", cfg.Attacks.TotalAttacks)
	case cfg.Attacks.DNSShare < 0 || cfg.Attacks.DNSShare > 1:
		return fmt.Errorf("study: Attacks.DNSShare = %v out of [0, 1]", cfg.Attacks.DNSShare)
	case cfg.Attacks.MultiVectorShare < 0 || cfg.Attacks.MultiVectorShare > 1:
		return fmt.Errorf("study: Attacks.MultiVectorShare = %v out of [0, 1]", cfg.Attacks.MultiVectorShare)
	case cfg.FromDay < 0 || cfg.ToDay >= clock.Day(clock.StudyDays()):
		return fmt.Errorf("study: day range [%d, %d] outside the %d-day study window", cfg.FromDay, cfg.ToDay, clock.StudyDays())
	case cfg.ToDay < cfg.FromDay:
		return fmt.Errorf("study: ToDay %d before FromDay %d", cfg.ToDay, cfg.FromDay)
	case cfg.Pipeline.MinMeasuredDomains < 0:
		return fmt.Errorf("study: Pipeline.MinMeasuredDomains = %d, must be non-negative", cfg.Pipeline.MinMeasuredDomains)
	case cfg.Resolver.MaxTries < 1:
		return fmt.Errorf("study: Resolver.MaxTries = %d, must be at least 1", cfg.Resolver.MaxTries)
	case cfg.Net.ScrubEfficiency < 0 || cfg.Net.ScrubEfficiency > 1:
		return fmt.Errorf("study: Net.ScrubEfficiency = %v out of [0, 1]", cfg.Net.ScrubEfficiency)
	}
	return nil
}
