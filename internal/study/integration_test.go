package study

import (
	"context"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/nsset"
)

// caseStudyConfig restricts the measured interval to the §5 case-study
// periods so integration tests stay fast.
func caseStudyConfig() Config {
	cfg := QuickConfig()
	cfg.World.Domains = 4000
	cfg.Attacks.TotalAttacks = 3000
	return cfg
}

func TestTransIPCaseStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := caseStudyConfig()
	cfg.FromDay = clock.DayOf(time.Date(2020, 11, 28, 0, 0, 0, 0, time.UTC))
	cfg.ToDay = clock.DayOf(time.Date(2020, 12, 2, 0, 0, 0, 0, time.UTC))
	s := Run(cfg)
	cs := s.Schedule.CaseStudies

	// the December attack must be inferred on all three nameservers
	found := 0
	for _, a := range s.Attacks {
		for i, addr := range cs.TransIPNS {
			if a.Victim == addr && a.Overlaps(cs.TransIPDecStart, cs.TransIPDecEnd) {
				found++
				if i == 0 {
					// NS A: 124 kpps victim-side → ≈21.8 kppm at telescope
					pps := a.InferredVictimPPS(s.Telescope.ScaleFactor())
					if pps < 100000 || pps > 150000 {
						t.Errorf("NS A inferred pps = %.0f, want ≈124k", pps)
					}
					ips := a.InferredAttackerIPs(s.Telescope.ScaleFactor())
					if ips < 5_000_000 || ips > 6_500_000 {
						t.Errorf("NS A attacker IPs = %d, want ≈5.79M", ips)
					}
				}
			}
		}
	}
	if found != 3 {
		t.Fatalf("inferred December attack on %d/3 TransIP nameservers", found)
	}

	// Eq. 1 impact on the TransIP NSSet during the attack should be a
	// clear multi-fold increase ("10X increase in DNS resolution time").
	// Individual 5-minute windows carry few samples at test scale, so
	// average the per-window impacts weighted by measurement count.
	k := nsset.KeyOf(cs.TransIPNS[:])
	var impSum float64
	var impN int
	for w := clock.WindowOf(cs.TransIPDecStart); w <= clock.WindowOf(cs.TransIPDecEnd); w++ {
		if imp, ok := s.Agg.ImpactOnRTT(k, w); ok {
			m := s.Agg.Window(k, w)
			impSum += imp * float64(m.Domains)
			impN += m.Domains
		}
	}
	if impN == 0 {
		t.Fatal("no impact-bearing windows during the December attack")
	}
	avg := impSum / float64(impN)
	if avg < 3 || avg > 60 {
		t.Errorf("average December impact = %.1fx, want roughly 10x", avg)
	}

	// the impairment persists past the telescope-inferred end (the
	// December overhang, §5.1): some window in the 6 hours after the
	// attack still shows at least 2x
	var tail float64
	for w := clock.WindowOf(cs.TransIPDecEnd); w <= clock.WindowOf(cs.TransIPDecEnd.Add(6*time.Hour)); w++ {
		if imp, ok := s.Agg.ImpactOnRTT(k, w); ok && imp > tail {
			tail = imp
		}
	}
	if tail < 1.5 {
		t.Errorf("post-attack tail impact = %.1fx, want residual impairment", tail)
	}
}

func TestTransIPMarchTimeouts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := caseStudyConfig()
	cfg.FromDay = clock.DayOf(time.Date(2021, 2, 28, 0, 0, 0, 0, time.UTC))
	cfg.ToDay = clock.DayOf(time.Date(2021, 3, 3, 0, 0, 0, 0, time.UTC))
	s := Run(cfg)
	cs := s.Schedule.CaseStudies
	k := nsset.KeyOf(cs.TransIPNS[:])

	// March: a substantial fraction of measured domains time out
	// (Fig. 3 plateaus near 20%)
	var domains, timeouts int
	for w := clock.WindowOf(cs.TransIPMarStart.Add(30 * time.Minute)); w <= clock.WindowOf(cs.TransIPMarEnd); w++ {
		if m := s.Agg.Window(k, w); m != nil {
			domains += m.Domains
			timeouts += m.Timeouts
		}
	}
	if domains == 0 {
		t.Fatal("no measurements during the March attack")
	}
	rate := float64(timeouts) / float64(domains)
	if rate < 0.05 || rate > 0.5 {
		t.Errorf("March timeout rate = %.2f, want ≈0.2", rate)
	}

	// and the impairment window matches the attack window (scrubbing):
	// two hours after the end, timeouts are back to ≈0
	var post, postTO int
	for w := clock.WindowOf(cs.TransIPMarEnd.Add(2 * time.Hour)); w <= clock.WindowOf(cs.TransIPMarEnd.Add(5*time.Hour)); w++ {
		if m := s.Agg.Window(k, w); m != nil {
			post += m.Domains
			postTO += m.Timeouts
		}
	}
	if post > 0 && float64(postTO)/float64(post) > 0.05 {
		t.Errorf("post-attack timeout rate = %.2f, scrubbed provider should recover fast", float64(postTO)/float64(post))
	}
}

func TestMilRuUnresolvableDuringGeofence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := caseStudyConfig()
	cfg.FromDay = clock.DayOf(time.Date(2022, 3, 9, 0, 0, 0, 0, time.UTC))
	cfg.ToDay = clock.DayOf(time.Date(2022, 3, 19, 0, 0, 0, 0, time.UTC))
	s := Run(cfg)
	cs := s.Schedule.CaseStudies
	k := nsset.KeyOf(cs.MilRuNS)

	// during the geofence (Mar 12-16) every measurement fails
	var okCount, total int
	for d := clock.DayOf(time.Date(2022, 3, 12, 0, 0, 0, 0, time.UTC)); d <= clock.DayOf(time.Date(2022, 3, 16, 0, 0, 0, 0, time.UTC)); d++ {
		if b := s.Agg.Baseline(k, d); b != nil {
			okCount += b.OKCount
			total += b.Domains
		}
	}
	if total == 0 {
		t.Fatal("mil.ru not measured during the attack")
	}
	if okCount != 0 {
		t.Errorf("mil.ru resolved %d/%d times during the geofence, want 0", okCount, total)
	}
	// before the attack it resolves fine
	if b := s.Agg.Baseline(k, clock.DayOf(time.Date(2022, 3, 10, 0, 0, 0, 0, time.UTC))); b == nil || b.OKCount == 0 {
		t.Error("mil.ru should resolve before the attack")
	}
}

func TestStudyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := caseStudyConfig()
	cfg.FromDay, cfg.ToDay = 28, 32
	cfg.Parallelism = 4
	a := Run(cfg)
	b := Run(cfg)
	if len(a.Attacks) != len(b.Attacks) {
		t.Fatalf("attack counts differ: %d vs %d", len(a.Attacks), len(b.Attacks))
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].Impact != b.Events[i].Impact || a.Events[i].MeasuredDomains != b.Events[i].MeasuredDomains {
			t.Fatalf("event %d differs across identical runs", i)
		}
	}
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := caseStudyConfig()
	cfg.FromDay, cfg.ToDay = 28, 34
	cfg.Parallelism = 1
	seq := Run(cfg)
	cfg.Parallelism = 7
	par := Run(cfg)
	if len(seq.Events) != len(par.Events) {
		t.Fatalf("events differ: seq %d vs par %d", len(seq.Events), len(par.Events))
	}
	for i := range seq.Events {
		if seq.Events[i].Impact != par.Events[i].Impact {
			t.Fatalf("event %d impact differs: %v vs %v", i, seq.Events[i].Impact, par.Events[i].Impact)
		}
	}
	// aggregates identical for a case-study NSSet
	k := nsset.KeyOf(seq.Schedule.CaseStudies.TransIPNS[:])
	for d := cfg.FromDay; d <= cfg.ToDay; d++ {
		sb, pb := seq.Agg.Baseline(k, d), par.Agg.Baseline(k, d)
		if (sb == nil) != (pb == nil) {
			t.Fatalf("day %d baseline presence differs", d)
		}
		if sb != nil && *sb != *pb {
			t.Fatalf("day %d baseline differs: %+v vs %+v", d, sb, pb)
		}
	}
}

func TestStudyWithNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := caseStudyConfig()
	cfg.FromDay, cfg.ToDay = 28, 32
	clean := Run(cfg)
	cfg.IncludeNoise = true
	cfg.Noise.Days = 60 // bound runtime; covers the measured interval
	noisy := Run(cfg)
	// the noise floor must not create DNS-infrastructure attacks: noise
	// sources are random IPv4 addresses, essentially never nameservers
	var cleanDNS, noisyDNS int
	for _, ca := range clean.Classified {
		if ca.DNSInfra() {
			cleanDNS++
		}
	}
	for _, ca := range noisy.Classified {
		if ca.DNSInfra() {
			noisyDNS++
		}
	}
	if noisyDNS != cleanDNS {
		t.Errorf("noise changed DNS-attack count: %d vs %d", noisyDNS, cleanDNS)
	}
	// total inferred attacks grow at most marginally
	if extra := len(noisy.Attacks) - len(clean.Attacks); extra > len(clean.Attacks)/20 {
		t.Errorf("noise added %d attacks to %d", extra, len(clean.Attacks))
	}
}

func TestRussianSurgeInMarch2022(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := caseStudyConfig()
	cfg.FromDay, cfg.ToDay = 28, 29 // no sweeps needed; schedule-level check
	s := Run(cfg)
	march := clock.DayOf(time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)).Start()
	april := time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)
	var ruAttacks int
	for _, a := range s.Attacks {
		if a.Start().Before(march) || !a.Start().Before(april) {
			continue
		}
		if ns, ok := s.World.DB.NameserverByAddr(a.Victim); ok {
			if s.World.DB.Providers[ns.Provider].Country == "RU" {
				ruAttacks++
			}
		}
	}
	// scripted case studies (mil.ru ×3, RDZ ×3) plus the surge
	if ruAttacks < 10 {
		t.Errorf("March-2022 attacks on RU providers = %d, want the surge", ruAttacks)
	}
}

func TestWithSkipJoinLeavesPipelineReady(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := caseStudyConfig()
	cfg.FromDay, cfg.ToDay = 28, 30
	s, err := RunContext(context.Background(), cfg, WithSkipJoin())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 0 || len(s.Classified) != 0 {
		t.Fatalf("WithSkipJoin still joined: %d events, %d classified", len(s.Events), len(s.Classified))
	}
	if s.Pipeline == nil {
		t.Fatal("WithSkipJoin must leave the join pipeline built for external drivers")
	}
	// the pipeline stays usable: joining the inferred feed afterwards
	// matches what the un-skipped run would have produced
	events, err := s.Pipeline.EventsContext(context.Background(), s.Attacks)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(ref.Events) {
		t.Fatalf("deferred join found %d events, full run %d", len(events), len(ref.Events))
	}
}
