package study

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"dnsddos/internal/clock"
)

// TestPanicQuarantine is the isolation contract: a deterministically
// panicking day-shard is retried once, then quarantined and reported —
// the run itself succeeds and the other days' events survive.
func TestPanicQuarantine(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := resumeConfig()
	cfg.Parallelism = 2
	target := clock.Day(29)
	var mu sync.Mutex
	calls := 0
	s, err := RunContext(context.Background(), cfg, WithBeforeDay(func(d clock.Day) {
		if d == target {
			mu.Lock()
			calls++
			mu.Unlock()
			panic("injected fault")
		}
	}))
	if err != nil {
		t.Fatalf("a panicking day-shard failed the whole run: %v", err)
	}
	if calls != 2 {
		t.Errorf("panicking shard attempted %d times, want 2 (retry once)", calls)
	}
	if len(s.Report.SkippedDays) != 1 {
		t.Fatalf("SkippedDays = %+v, want exactly the injected day", s.Report.SkippedDays)
	}
	sk := s.Report.SkippedDays[0]
	if sk.Day != target {
		t.Errorf("quarantined day = %v, want %v", sk.Day, target)
	}
	if sk.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", sk.Attempts)
	}
	if !strings.Contains(sk.Reason, "panic") || !strings.Contains(sk.Reason, "injected fault") {
		t.Errorf("Reason = %q, want the panic value", sk.Reason)
	}
	if sk.Stack == "" {
		t.Error("quarantine report lost the panic stack")
	}
	if want := int(cfg.ToDay-cfg.FromDay) + 1 - 1; s.Report.CompletedDays != want {
		t.Errorf("CompletedDays = %d, want %d", s.Report.CompletedDays, want)
	}
	if len(s.Events) == 0 {
		t.Error("join produced no events; the un-quarantined days were lost too")
	}
}

// TestPanicRetryRecovers covers the transient-fault path: a shard that
// panics once and succeeds on retry leaves no trace — no quarantine, and
// output identical to a clean run.
func TestPanicRetryRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := resumeConfig()

	ref, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	n := 0
	s, err := RunContext(context.Background(), cfg, WithBeforeDay(func(d clock.Day) {
		if d == 29 {
			mu.Lock()
			n++
			first := n == 1
			mu.Unlock()
			if first {
				panic("transient fault")
			}
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Report.SkippedDays) != 0 {
		t.Fatalf("transient panic quarantined anyway: %+v", s.Report.SkippedDays)
	}
	if n != 2 {
		t.Errorf("shard ran %d times, want 2", n)
	}
	if !bytes.Equal(eventsBytes(t, ref), eventsBytes(t, s)) {
		t.Error("retried run's events differ from a clean run")
	}
}

// TestWatchdogQuarantinesStuckShard: a day-shard that exceeds the
// watchdog deadline is quarantined (not retried — retrying a stuck sweep
// doubles the stall) and the run completes.
func TestWatchdogQuarantinesStuckShard(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := resumeConfig()
	cfg.Parallelism = 1
	target := clock.Day(30)
	s, err := RunContext(context.Background(), cfg,
		WithShardTimeout(100*time.Millisecond),
		WithBeforeDay(func(d clock.Day) {
			if d == target {
				time.Sleep(400 * time.Millisecond)
			}
		}))
	if err != nil {
		t.Fatalf("a stuck day-shard failed the whole run: %v", err)
	}
	if len(s.Report.SkippedDays) != 1 {
		t.Fatalf("SkippedDays = %+v, want exactly the stalled day", s.Report.SkippedDays)
	}
	sk := s.Report.SkippedDays[0]
	if sk.Day != target || !strings.HasPrefix(sk.Reason, "watchdog") {
		t.Errorf("quarantine = %+v, want a watchdog timeout on day %v", sk, target)
	}
	if sk.Attempts != 1 {
		t.Errorf("watchdog timeout retried: Attempts = %d, want 1", sk.Attempts)
	}
	if want := int(cfg.ToDay-cfg.FromDay) + 1 - 1; s.Report.CompletedDays != want {
		t.Errorf("CompletedDays = %d, want %d", s.Report.CompletedDays, want)
	}
}
