package study

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"dnsddos/internal/clock"
)

// parity_test.go is the contract test for the interval-indexed join
// engine: on identical seeded worlds the sharded, indexed EventsContext
// and the legacy linear-scan path (core.WithLegacyJoin) must emit
// byte-identical events and run reports. Three configurations cover the
// interesting regimes — the default quick world, a skewed small world
// with different seeds, and a run with quarantined days (where the join
// falls back across missing snapshots, §4.2).

// reportJSON serializes the run report the way cmd/report archives it.
func reportJSON(t *testing.T, s *Study) []byte {
	t.Helper()
	b, err := json.MarshalIndent(&s.Report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runBothEngines executes the same config through the indexed and the
// legacy engine and asserts byte-identical events CSV and report JSON.
// extra options (fault injection, parallelism) apply to both runs.
func runBothEngines(t *testing.T, name string, cfg Config, extra ...Option) {
	t.Helper()
	indexed, err := RunContext(context.Background(), cfg, extra...)
	if err != nil {
		t.Fatalf("%s: indexed run: %v", name, err)
	}
	legacy, err := RunContext(context.Background(), cfg, append(extra[:len(extra):len(extra)], WithLegacyJoin())...)
	if err != nil {
		t.Fatalf("%s: legacy run: %v", name, err)
	}
	if len(indexed.Events) == 0 {
		t.Fatalf("%s: indexed engine joined no events; the comparison would be vacuous", name)
	}
	if !bytes.Equal(eventsBytes(t, indexed), eventsBytes(t, legacy)) {
		t.Errorf("%s: indexed and legacy join engines emitted different events", name)
	}
	// panic stacks embed goroutine addresses, so they are the one field
	// legitimately different between two otherwise identical runs
	for i := range indexed.Report.SkippedDays {
		indexed.Report.SkippedDays[i].Stack = ""
	}
	for i := range legacy.Report.SkippedDays {
		legacy.Report.SkippedDays[i].Stack = ""
	}
	if !bytes.Equal(reportJSON(t, indexed), reportJSON(t, legacy)) {
		t.Errorf("%s: indexed and legacy run reports differ", name)
	}
}

// TestJoinEngineParity is the acceptance gate for the indexed engine:
// same world, same schedule, same events — byte for byte — whichever
// engine performs the join.
func TestJoinEngineParity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}

	t.Run("transip_window", func(t *testing.T) {
		runBothEngines(t, "transip_window", resumeConfig())
	})

	t.Run("reseeded_small_world", func(t *testing.T) {
		cfg := QuickConfig()
		cfg.World.Domains = 1800
		cfg.World.GenericProviders = 25
		cfg.World.Seed = 1013
		cfg.Attacks.TotalAttacks = 2200
		cfg.Attacks.Seed = 77
		cfg.MeasureSeed = 9001
		cfg.FromDay, cfg.ToDay = 20, 75
		runBothEngines(t, "reseeded_small_world", cfg)
	})

	// quarantined day: a deterministically panicking shard is retried
	// once and quarantined in both runs, so both joins must fall back to
	// the nearest earlier measurable day for it — identically.
	t.Run("quarantined_day", func(t *testing.T) {
		cfg := resumeConfig()
		cfg.Parallelism = 1
		target := clock.Day(29)
		var mu sync.Mutex
		runBothEngines(t, "quarantined_day", cfg, WithBeforeDay(func(d clock.Day) {
			if d == target {
				mu.Lock()
				defer mu.Unlock()
				panic("injected parity fault")
			}
		}))
	})
}
