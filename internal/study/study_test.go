package study

import (
	"testing"

	"dnsddos/internal/core"
	"dnsddos/internal/nsset"
)

// TestQuickStudySmoke runs the scaled-down end-to-end study and checks the
// headline shape results of the paper hold:
//   - DNS attacks are a small share (≈0.5–4%) of all inferred attacks;
//   - the vast majority of joined events show no resolution failures;
//   - high (≥10×) RTT impacts exist but are a small share of events;
//   - no full-anycast NSSet shows a ≥100× impact.
func TestQuickStudySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quick study still sweeps 17 months; skip in -short")
	}
	s := Run(QuickConfig())

	if len(s.Attacks) == 0 {
		t.Fatal("no attacks inferred from telescope observations")
	}
	var dns int
	for _, ca := range s.Classified {
		if ca.DNSInfra() {
			dns++
		}
	}
	share := float64(dns) / float64(len(s.Attacks))
	if share < 0.003 || share > 0.06 {
		t.Errorf("DNS attack share = %.4f (%d/%d), want within [0.003, 0.06]", share, dns, len(s.Attacks))
	}

	if len(s.Events) == 0 {
		t.Fatal("join produced no events")
	}
	var failing, impacted10, impacted100, anycast100 int
	for _, e := range s.Events {
		if e.Timeouts+e.ServFails > 0 {
			failing++
		}
		if e.HasImpact && e.Impact >= 10 {
			impacted10++
		}
		if e.HasImpact && e.Impact >= 100 {
			impacted100++
			if e.AnycastClass == nsset.FullAnycast {
				anycast100++
			}
		}
	}
	t.Logf("attacks=%d dnsShare=%.3f events=%d failing=%d ≥10x=%d ≥100x=%d",
		len(s.Attacks), share, len(s.Events), failing, impacted10, impacted100)

	if failRate := float64(failing) / float64(len(s.Events)); failRate > 0.2 {
		t.Errorf("%.1f%% of events have failures; paper shape is ~1%%", failRate*100)
	}
	if impacted10 == 0 {
		t.Error("no events with ≥10x RTT impact; paper sees ~5%")
	}
	if anycast100 != 0 {
		t.Errorf("%d full-anycast events with ≥100x impact; paper sees none", anycast100)
	}

	fb := core.BreakdownFailures(s.Events)
	t.Logf("failure breakdown: %+v", fb)
}
