package study

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := QuickConfig()
	cfg.World.Domains = 1234
	cfg.Attacks.TotalAttacks = 999
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfig(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.World.Domains != 1234 || got.Attacks.TotalAttacks != 999 {
		t.Errorf("round trip lost overrides: %+v", got.World)
	}
	if got.Pipeline.MinMeasuredDomains != cfg.Pipeline.MinMeasuredDomains {
		t.Error("nested defaults lost")
	}
}

func TestReadConfigPartialOverride(t *testing.T) {
	in := `{"World": {"Domains": 777}}`
	got, err := ReadConfig(strings.NewReader(in), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.World.Domains != 777 {
		t.Errorf("Domains = %d", got.World.Domains)
	}
	// everything else keeps the base values... note that nested structs
	// decode field-by-field onto the base, so siblings survive
	if got.World.GenericProviders != DefaultConfig().World.GenericProviders {
		t.Errorf("GenericProviders = %d, want base value", got.World.GenericProviders)
	}
	if got.Attacks.TotalAttacks != DefaultConfig().Attacks.TotalAttacks {
		t.Error("Attacks lost base values")
	}
}

func TestReadConfigRejectsUnknownFields(t *testing.T) {
	if _, err := ReadConfig(strings.NewReader(`{"Wrold": {}}`), DefaultConfig()); err == nil {
		t.Error("typo'd field should be rejected")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(DefaultConfig()); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := Validate(QuickConfig()); err != nil {
		t.Fatalf("quick config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.World.Domains = 0 },
		func(c *Config) { c.World.AnycastRecall = 1.5 },
		func(c *Config) { c.World.MisconfiguredShare = -0.1 },
		func(c *Config) { c.Attacks.TotalAttacks = -1 },
		func(c *Config) { c.Attacks.DNSShare = 2 },
		func(c *Config) { c.FromDay, c.ToDay = 10, 5 },
		func(c *Config) { c.ToDay = 100000 },
		func(c *Config) { c.Resolver.MaxTries = 0 },
		func(c *Config) { c.Net.ScrubEfficiency = -1 },
		func(c *Config) { c.World.MisconfiguredShare = math.NaN() },
		func(c *Config) { c.World.AnycastRecall = math.NaN() },
		func(c *Config) { c.Attacks.DNSShare = math.NaN() },
		func(c *Config) { c.Net.ScrubEfficiency = math.NaN() },
		func(c *Config) { c.Parallelism = -1 },
		func(c *Config) { c.WindowMarginBefore = -time.Hour },
		func(c *Config) { c.WindowMarginAfter = -time.Second },
		func(c *Config) { c.Pipeline.MinMeasuredDomains = -1 },
		func(c *Config) { c.Pipeline.BaselineDaysBack = -7 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := Validate(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestValidateErrorsNameField guards the debuggability contract: a bad
// value must be reported by field name, not as a panic deep in the run.
func TestValidateErrorsNameField(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = -3
	err := Validate(cfg)
	if err == nil || !strings.Contains(err.Error(), "Parallelism") {
		t.Errorf("error %v does not name the field", err)
	}
	cfg = DefaultConfig()
	cfg.World.MisconfiguredShare = math.NaN()
	err = Validate(cfg)
	if err == nil || !strings.Contains(err.Error(), "World.MisconfiguredShare") {
		t.Errorf("error %v does not name the field", err)
	}
}

// TestRunContextRejectsInvalidConfig checks the fail-fast path: an
// invalid config must come back as an error in milliseconds, before any
// world generation or sweeping.
func TestRunContextRejectsInvalidConfig(t *testing.T) {
	cfg := QuickConfig()
	cfg.World.Domains = 0
	if _, err := RunContext(context.Background(), cfg); err == nil {
		t.Fatal("invalid config accepted by RunContext")
	}
}
