package study

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"dnsddos/internal/clock"
	"dnsddos/internal/daystore"
)

// parity_columnar_test.go is the acceptance gate for the out-of-core day
// store (DESIGN §3.9): the same seeded world run through the in-memory
// aggregator path and through WithDayStoreDir (seal each completed day
// to a columnar file, join against mmap views) must emit byte-identical
// events CSV and run report. The columnar round-trip is all-integer, so
// the Eq. 1 float math divides exactly the same numerators and
// denominators either way.

// runColumnarPair executes cfg through the in-memory and the columnar
// day path and asserts byte-identical output.
func runColumnarPair(t *testing.T, name string, cfg Config, extra ...Option) {
	t.Helper()
	mem, err := RunContext(context.Background(), cfg, extra...)
	if err != nil {
		t.Fatalf("%s: in-memory run: %v", name, err)
	}
	dir := t.TempDir()
	col, err := RunContext(context.Background(), cfg,
		append(extra[:len(extra):len(extra)], WithDayStoreDir(dir))...)
	if err != nil {
		t.Fatalf("%s: columnar run: %v", name, err)
	}
	if len(mem.Events) == 0 {
		t.Fatalf("%s: in-memory run joined no events; the comparison would be vacuous", name)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "day_*.dcol")); len(files) == 0 {
		t.Fatalf("%s: columnar run sealed no day files; it silently took the in-memory path", name)
	}
	if !bytes.Equal(eventsBytes(t, mem), eventsBytes(t, col)) {
		t.Errorf("%s: in-memory and columnar day stores emitted different events", name)
	}
	for i := range mem.Report.SkippedDays {
		mem.Report.SkippedDays[i].Stack = ""
	}
	for i := range col.Report.SkippedDays {
		col.Report.SkippedDays[i].Stack = ""
	}
	if !bytes.Equal(reportJSON(t, mem), reportJSON(t, col)) {
		t.Errorf("%s: in-memory and columnar run reports differ", name)
	}
}

// TestJoinParityColumnar is the ISSUE acceptance test: same world, same
// schedule, same events — byte for byte — whichever day store backs the
// join.
func TestJoinParityColumnar(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}

	t.Run("transip_window", func(t *testing.T) {
		runColumnarPair(t, "transip_window", resumeConfig())
	})

	// quarantined day: the day never seals, so the columnar store serves
	// an absent file — which must read exactly like the in-memory
	// aggregator's empty day, with the join falling back identically.
	t.Run("quarantined_day", func(t *testing.T) {
		cfg := resumeConfig()
		cfg.Parallelism = 1
		target := clock.Day(29)
		var mu sync.Mutex
		runColumnarPair(t, "quarantined_day", cfg, WithBeforeDay(func(d clock.Day) {
			if d == target {
				mu.Lock()
				defer mu.Unlock()
				panic("injected parity fault")
			}
		}))
	})

	// the explicit escape hatch beats the daystore option: days merge in
	// memory and the sealed-file path stays cold
	t.Run("in_memory_escape_hatch", func(t *testing.T) {
		cfg := resumeConfig()
		dir := t.TempDir()
		s, err := RunContext(context.Background(), cfg, WithDayStoreDir(dir), WithInMemoryDays())
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Events) == 0 {
			t.Fatal("escape-hatch run joined no events")
		}
		if files, _ := filepath.Glob(filepath.Join(dir, "day_*.dcol")); len(files) != 0 {
			t.Fatalf("WithInMemoryDays still sealed %d day files", len(files))
		}
		ref, err := RunContext(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(eventsBytes(t, ref), eventsBytes(t, s)) {
			t.Error("escape-hatch run differs from the default run")
		}
	})
}

// TestColumnarCancelAndResumeByteIdentical is the out-of-core twin of
// TestCancelAndResumeByteIdentical: kill a daystore-mode run after two
// sealed days, resume it from the content-hash day references, and the
// joined events must be byte-identical to an uninterrupted run.
func TestColumnarCancelAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := resumeConfig()

	ref, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	refCSV := eventsBytes(t, ref)

	ckptDir, dsDir := t.TempDir(), t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killCfg := cfg
	killCfg.Parallelism = 1
	n := 0
	_, err = RunContext(ctx, killCfg,
		WithCheckpointDir(ckptDir),
		WithDayStoreDir(dsDir),
		WithBeforeDay(func(clock.Day) {
			n++
			if n == 3 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run error = %v, want context.Canceled", err)
	}
	refs, err := filepath.Glob(filepath.Join(ckptDir, "dayref_*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 {
		t.Fatalf("killed run recorded %d day refs, want 2: %v", len(refs), refs)
	}
	if legacy, _ := filepath.Glob(filepath.Join(ckptDir, "day_*.ckpt")); len(legacy) != 0 {
		t.Fatalf("daystore mode wrote %d legacy day-snapshot records: %v", len(legacy), legacy)
	}

	res, err := RunContext(context.Background(), cfg,
		WithCheckpointDir(ckptDir), WithDayStoreDir(dsDir), WithResume(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ResumedDays != 2 {
		t.Errorf("ResumedDays = %d, want 2", res.Report.ResumedDays)
	}
	if !bytes.Equal(refCSV, eventsBytes(t, res)) {
		t.Error("resumed columnar run's events differ from the uninterrupted run")
	}
}

// TestColumnarResumeRefusesCorruptSeal: a resume whose day reference
// points at swapped or missing bytes is refused with a typed
// daystore.ErrCorrupt (or the os error for a vanished file) — never a
// silent partial resume.
func TestColumnarResumeRefusesCorruptSeal(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := resumeConfig()
	cfg.ToDay = 29

	seedCkpt, seedDS := t.TempDir(), t.TempDir()
	if _, err := RunContext(context.Background(), cfg,
		WithCheckpointDir(seedCkpt), WithDayStoreDir(seedDS)); err != nil {
		t.Fatal(err)
	}

	resume := func(ckptDir, dsDir string) error {
		_, err := RunContext(context.Background(), cfg,
			WithCheckpointDir(ckptDir), WithDayStoreDir(dsDir), WithResume(true))
		return err
	}

	t.Run("pristine resumes", func(t *testing.T) {
		if err := resume(copyDir(t, seedCkpt), copyDir(t, seedDS)); err != nil {
			t.Fatalf("clean resume failed: %v", err)
		}
	})
	t.Run("swapped seal bytes", func(t *testing.T) {
		dsDir := copyDir(t, seedDS)
		files, err := filepath.Glob(filepath.Join(dsDir, "day_*.dcol"))
		if err != nil || len(files) == 0 {
			t.Fatalf("no sealed files (err %v)", err)
		}
		b, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x01
		if err := os.WriteFile(files[0], b, 0o644); err != nil {
			t.Fatal(err)
		}
		err = resume(copyDir(t, seedCkpt), dsDir)
		if !errors.Is(err, daystore.ErrCorrupt) {
			t.Fatalf("resume error = %v, want daystore.ErrCorrupt", err)
		}
	})
	t.Run("missing seal", func(t *testing.T) {
		dsDir := copyDir(t, seedDS)
		files, err := filepath.Glob(filepath.Join(dsDir, "day_*.dcol"))
		if err != nil || len(files) == 0 {
			t.Fatalf("no sealed files (err %v)", err)
		}
		if err := os.Remove(files[0]); err != nil {
			t.Fatal(err)
		}
		if err := resume(copyDir(t, seedCkpt), dsDir); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("resume error = %v, want os.ErrNotExist", err)
		}
	})
}
