package study

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"dnsddos/internal/clock"
	"dnsddos/internal/report"
)

// resumeConfig spans the TransIP December attack (days 27–31) so the
// event join has real work to do across the kill point.
func resumeConfig() Config {
	cfg := QuickConfig()
	cfg.World.Domains = 2500
	cfg.Attacks.TotalAttacks = 2500
	cfg.FromDay, cfg.ToDay = 27, 33
	return cfg
}

func eventsBytes(t *testing.T, s *Study) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := report.EventsCSV(&buf, s.Events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCancelAndResumeByteIdentical is the crash-safety contract: kill a
// run after day k, resume it, and the joined events must be
// byte-identical to an uninterrupted run.
func TestCancelAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := resumeConfig()

	ref, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Events) == 0 {
		t.Fatal("reference run joined no events; the comparison would be vacuous")
	}
	refCSV := eventsBytes(t, ref)

	// killed run: Parallelism 1 makes the dispatch order deterministic, so
	// cancelling at the 3rd day-shard always leaves exactly days 27–28
	// checkpointed.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killCfg := cfg
	killCfg.Parallelism = 1
	n := 0
	_, err = RunContext(ctx, killCfg,
		WithCheckpointDir(dir),
		WithBeforeDay(func(clock.Day) {
			n++
			if n == 3 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run error = %v, want context.Canceled", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "day_*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("killed run checkpointed %d days, want 2: %v", len(files), files)
	}

	// resume with the original parallelism: the header hash ignores
	// Parallelism, so a resume on different hardware is legitimate
	res, err := RunContext(context.Background(), cfg, WithCheckpointDir(dir), WithResume(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.ResumedDays != 2 {
		t.Errorf("ResumedDays = %d, want 2", res.Report.ResumedDays)
	}
	if want := int(cfg.ToDay-cfg.FromDay) + 1 - 2; res.Report.CompletedDays != want {
		t.Errorf("CompletedDays = %d, want %d", res.Report.CompletedDays, want)
	}
	if !bytes.Equal(refCSV, eventsBytes(t, res)) {
		t.Error("resumed run's events differ from the uninterrupted run")
	}
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func firstDayFile(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "day_*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no day checkpoints in %s (err %v)", dir, err)
	}
	sort.Strings(files)
	return files[0]
}

// TestResumeRefusesCorruptCheckpoints covers the refusal matrix: every
// damaged or mismatched checkpoint directory must produce a clean error,
// never a silent partial resume.
func TestResumeRefusesCorruptCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := resumeConfig()
	cfg.FromDay, cfg.ToDay = 27, 29

	seed := t.TempDir()
	if _, err := RunContext(context.Background(), cfg, WithCheckpointDir(seed)); err != nil {
		t.Fatal(err)
	}

	resume := func(dir string, c Config) error {
		_, err := RunContext(context.Background(), c, WithCheckpointDir(dir), WithResume(true))
		return err
	}

	t.Run("pristine dir resumes", func(t *testing.T) {
		if err := resume(copyDir(t, seed), cfg); err != nil {
			t.Fatalf("clean resume failed: %v", err)
		}
	})
	t.Run("truncated day file", func(t *testing.T) {
		dir := copyDir(t, seed)
		p := firstDayFile(t, dir)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, b[:len(b)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := resume(dir, cfg); err == nil {
			t.Fatal("truncated checkpoint accepted")
		}
	})
	t.Run("flipped byte", func(t *testing.T) {
		dir := copyDir(t, seed)
		p := firstDayFile(t, dir)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x01
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := resume(dir, cfg); err == nil {
			t.Fatal("bit-flipped checkpoint accepted")
		}
	})
	t.Run("seed mismatch", func(t *testing.T) {
		c := cfg
		c.MeasureSeed++
		if err := resume(copyDir(t, seed), c); err == nil {
			t.Fatal("resume with a different measurement seed accepted")
		}
	})
	t.Run("config mismatch", func(t *testing.T) {
		c := cfg
		c.World.Domains++
		if err := resume(copyDir(t, seed), c); err == nil {
			t.Fatal("resume with a different world accepted")
		}
	})
	t.Run("missing header", func(t *testing.T) {
		dir := copyDir(t, seed)
		if err := os.Remove(filepath.Join(dir, "header.json")); err != nil {
			t.Fatal(err)
		}
		if err := resume(dir, cfg); err == nil {
			t.Fatal("headerless directory accepted")
		}
	})
}
