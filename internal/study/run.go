package study

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"dnsddos/internal/checkpoint"
	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/nsset"
	"dnsddos/internal/openintel"
	"dnsddos/internal/resolver"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/scenario"
	"dnsddos/internal/simnet"
	"dnsddos/internal/telescope"
)

// run.go is the supervised run loop: RunContext executes the study as
// independent per-day shards under a worker pool, with cooperative
// cancellation, per-shard panic isolation (retry once, then quarantine),
// an optional watchdog deadline, and durable per-day checkpoints so a
// killed run resumes from the last completed day (DESIGN §3.2).

// Options tunes the supervised run loop; the zero value reproduces the
// historical Run behaviour (no checkpoints, no watchdog).
type Options struct {
	// CheckpointDir, when non-empty, persists every completed day-shard
	// to a CRC-guarded journal in this directory (internal/checkpoint).
	CheckpointDir string
	// Resume restarts from the checkpoints in CheckpointDir instead of
	// day 0. The directory's header (config hash + seed) must match the
	// current configuration; a mismatch is refused with an error.
	Resume bool
	// ShardTimeout is the per-day-shard watchdog deadline: a sweep that
	// exceeds it is cancelled and quarantined instead of hanging the
	// whole run. Zero disables the watchdog.
	ShardTimeout time.Duration
	// BeforeDay, when set, runs at the start of every day-shard attempt,
	// inside the shard's panic isolation. It exists for progress
	// reporting and fault injection (the chaos suite panics or stalls
	// here); a panic in the hook quarantines the day like any other.
	BeforeDay func(clock.Day)
}

// SkippedDay records one quarantined day-shard.
type SkippedDay struct {
	Day clock.Day
	// Reason is "panic: ..." or "watchdog: ...".
	Reason string
	// Stack is the shard goroutine's stack captured at the final panic
	// (empty for watchdog timeouts).
	Stack string
	// Attempts is how many times the shard was tried before quarantine.
	Attempts int
}

// RunReport summarizes what the supervised loop did: how many day-shards
// were restored from checkpoints, how many were swept this run, and
// which were quarantined.
type RunReport struct {
	ResumedDays   int
	CompletedDays int
	// SkippedDays lists quarantined day-shards in ascending day order.
	SkippedDays []SkippedDay
}

// QuarantinedDays returns just the skipped days, ascending.
func (r *RunReport) QuarantinedDays() []clock.Day {
	out := make([]clock.Day, len(r.SkippedDays))
	for i := range r.SkippedDays {
		out[i] = r.SkippedDays[i].Day
	}
	return out
}

// ConfigHash fingerprints a configuration for the checkpoint header. It
// hashes the JSON encoding with Parallelism normalized to zero:
// parallelism shards work but never changes results (the merge is
// commutative), so a run may legitimately resume on different hardware.
func ConfigHash(cfg Config) (string, error) {
	cfg.Parallelism = 0
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("study: hashing config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// RunContext executes the full study under supervision. It cancels
// cleanly when ctx does (between phases, between day-shards, and every
// few hundred domains inside a sweep), checkpoints completed days when
// opts.CheckpointDir is set, and isolates day-shard failures: a
// panicking day is retried once and then quarantined into
// Study.Report.SkippedDays with its stack, while the join falls back to
// the nearest earlier measurable day for quarantined days. The returned
// error is non-nil only for cancellation, invalid configuration, or
// checkpoint I/O failure — a panicking or stuck day-shard never fails
// the run.
func RunContext(ctx context.Context, cfg Config, opts Options) (*Study, error) {
	if err := Validate(cfg); err != nil {
		return nil, err
	}
	s := &Study{Config: cfg}
	s.World = scenario.GenerateWorld(cfg.World)
	s.Schedule = scenario.GenerateSchedule(cfg.Attacks, s.World)
	s.Telescope = telescope.NewUCSD()
	s.Obs = scenario.SynthesizeObs(cfg.Synth, s.World, s.Schedule.Sched, s.Telescope)
	if cfg.IncludeNoise {
		s.Obs = append(s.Obs, scenario.SynthesizeNoise(cfg.Noise, s.Telescope)...)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.Attacks = rsdos.Infer(cfg.RSDoS, s.Obs)

	s.Net = simnet.New(cfg.Net, s.World.DB, s.Schedule.Sched, s.Schedule.Blackouts...)
	s.Resolver = resolver.New(cfg.Resolver, s.World.DB, s.Net)
	s.Engine = openintel.NewEngine(s.World.DB, s.Resolver, cfg.MeasureSeed)

	s.Agg = nsset.NewAggregator()
	filter := s.windowFilter()
	s.Agg.SetWindowFilter(filter)

	var ckpt *checkpoint.Dir
	done := make(map[clock.Day]bool)
	if opts.CheckpointDir != "" {
		hash, err := ConfigHash(cfg)
		if err != nil {
			return nil, err
		}
		hdr := checkpoint.Header{ConfigHash: hash, Seed: cfg.MeasureSeed}
		if opts.Resume {
			if ckpt, err = checkpoint.Resume(opts.CheckpointDir, hdr); err != nil {
				return nil, err
			}
			snaps, err := ckpt.LoadDays(cfg.FromDay, cfg.ToDay)
			if err != nil {
				return nil, err
			}
			for d, snap := range snaps {
				s.Agg.AddSnapshot(snap)
				done[d] = true
			}
			s.Report.ResumedDays = len(snaps)
		} else if ckpt, err = checkpoint.Create(opts.CheckpointDir, hdr); err != nil {
			return nil, err
		}
	}

	if err := s.runSweepsSupervised(ctx, opts, filter, ckpt, done); err != nil {
		return nil, err
	}

	s.Pipeline = core.NewPipeline(cfg.Pipeline, s.World.DB, s.Agg, s.World.Census, s.World.Topo, s.World.OpenRes)
	if q := s.Report.QuarantinedDays(); len(q) > 0 {
		s.Pipeline.SetQuarantinedDays(q)
	}
	s.Classified = s.Pipeline.Classify(s.Attacks)
	var err error
	if s.Events, err = s.Pipeline.EventsContext(ctx, s.Attacks); err != nil {
		return nil, err
	}
	return s, nil
}

// runSweepsSupervised runs the daily sweeps as independent day-shards
// under a bounded worker pool. Each shard sweeps into a private
// aggregator; on success the result is checkpointed (if enabled) and
// merged — in whatever order shards complete, which is safe because the
// merge is commutative. Days already restored from checkpoints (done)
// are not re-run.
func (s *Study) runSweepsSupervised(ctx context.Context, opts Options, filter func(clock.Window) bool, ckpt *checkpoint.Dir, done map[clock.Day]bool) error {
	from, to := s.Config.FromDay, s.Config.ToDay
	if to < from {
		return nil
	}
	days := make([]clock.Day, 0, int(to-from)+1)
	for d := from; d <= to; d++ {
		if !done[d] {
			days = append(days, d)
		}
	}
	if len(days) == 0 {
		return ctx.Err()
	}
	par := s.Config.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(days) {
		par = len(days)
	}

	var (
		mu      sync.Mutex // guards s.Agg, s.Report and ckptErr
		wg      sync.WaitGroup
		ckptErr error
	)
	sem := make(chan struct{}, par)
dispatch:
	for _, day := range days {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		mu.Lock()
		failed := ckptErr != nil
		mu.Unlock()
		if failed {
			<-sem
			break
		}
		wg.Add(1)
		go func(day clock.Day) {
			defer wg.Done()
			defer func() { <-sem }()
			agg, skipped := s.runDayShard(ctx, day, filter, opts)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case skipped != nil:
				s.Report.SkippedDays = append(s.Report.SkippedDays, *skipped)
			case agg != nil:
				if ckpt != nil && ckptErr == nil {
					if err := ckpt.WriteDay(day, agg.Snapshot()); err != nil {
						ckptErr = err
						return
					}
				}
				s.Agg.Merge(agg)
				s.Report.CompletedDays++
			}
			// agg == nil && skipped == nil: shard abandoned on
			// cancellation; the day stays un-checkpointed and re-runs
			// on resume.
		}(day)
	}
	wg.Wait()
	sort.Slice(s.Report.SkippedDays, func(i, j int) bool {
		return s.Report.SkippedDays[i].Day < s.Report.SkippedDays[j].Day
	})
	if ckptErr != nil {
		return fmt.Errorf("study: writing checkpoint: %w", ckptErr)
	}
	return ctx.Err()
}

// runDayShard sweeps one day with isolation: a panicking attempt is
// retried once, then quarantined; a watchdog timeout quarantines
// immediately (retrying a stuck sweep would just double the stall). A
// (nil, nil) return means the shard was abandoned because ctx was
// cancelled.
func (s *Study) runDayShard(ctx context.Context, day clock.Day, filter func(clock.Window) bool, opts Options) (*nsset.Aggregator, *SkippedDay) {
	const maxAttempts = 2
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return nil, nil
		}
		agg, sk := s.sweepDayOnce(ctx, day, filter, opts)
		if sk == nil {
			return agg, nil // completed, or (nil, nil) when cancelled
		}
		sk.Attempts = attempt
		if strings.HasPrefix(sk.Reason, "watchdog") || attempt == maxAttempts {
			return nil, sk
		}
	}
}

// sweepDayOnce runs a single attempt, under the watchdog when enabled.
func (s *Study) sweepDayOnce(ctx context.Context, day clock.Day, filter func(clock.Window) bool, opts Options) (*nsset.Aggregator, *SkippedDay) {
	if opts.ShardTimeout <= 0 {
		return s.sweepAttempt(ctx, day, filter, opts)
	}
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		agg *nsset.Aggregator
		sk  *SkippedDay
	}
	ch := make(chan result, 1)
	go func() {
		a, sk := s.sweepAttempt(dctx, day, filter, opts)
		ch <- result{a, sk}
	}()
	timer := time.NewTimer(opts.ShardTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.agg, r.sk
	case <-timer.C:
		// Cancel the shard's context so a cooperative sweep exits
		// promptly; a truly wedged goroutine is abandoned (it owns a
		// private aggregator nobody will read).
		cancel()
		return nil, &SkippedDay{
			Day:    day,
			Reason: fmt.Sprintf("watchdog: day-shard exceeded %v", opts.ShardTimeout),
		}
	}
}

// sweepAttempt is one isolated sweep of one day into a fresh private
// aggregator. Panics — in the BeforeDay hook or anywhere inside the
// engine/resolver/data plane — are captured with their stack instead of
// crashing the run. A (nil, nil) return means ctx was cancelled.
func (s *Study) sweepAttempt(ctx context.Context, day clock.Day, filter func(clock.Window) bool, opts Options) (agg *nsset.Aggregator, sk *SkippedDay) {
	defer func() {
		if r := recover(); r != nil {
			agg = nil
			sk = &SkippedDay{
				Day:    day,
				Reason: fmt.Sprintf("panic: %v", r),
				Stack:  string(debug.Stack()),
			}
		}
	}()
	if opts.BeforeDay != nil {
		opts.BeforeDay(day)
	}
	a := nsset.NewAggregator()
	a.SetWindowFilter(filter)
	if err := s.Engine.RunDayContext(ctx, day, a, nil); err != nil {
		return nil, nil
	}
	return a, nil
}
