package study

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dnsddos/internal/checkpoint"
	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/daystore"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/openintel"
)

// run.go is the supervised run loop: RunContext executes the study as
// independent per-day shards under a worker pool, with cooperative
// cancellation, per-shard panic isolation (retry once, then quarantine),
// an optional watchdog deadline, and durable per-day checkpoints so a
// killed run resumes from the last completed day (DESIGN §3.2).

// options tunes the supervised run loop; the zero value reproduces the
// historical Run behaviour (no checkpoints, no watchdog). Callers set
// fields through the With... functional options, so new knobs never
// break RunContext call sites.
type options struct {
	// checkpointDir, when non-empty, persists every completed day-shard
	// to a CRC-guarded journal in this directory (internal/checkpoint).
	checkpointDir string
	// resume restarts from the checkpoints in checkpointDir instead of
	// day 0. The directory's header (config hash + seed) must match the
	// current configuration; a mismatch is refused with an error.
	resume bool
	// shardTimeout is the per-day-shard watchdog deadline: a sweep that
	// exceeds it is cancelled and quarantined instead of hanging the
	// whole run. Zero disables the watchdog.
	shardTimeout time.Duration
	// beforeDay, when set, runs at the start of every day-shard attempt,
	// inside the shard's panic isolation. It exists for progress
	// reporting and fault injection (the chaos suite panics or stalls
	// here); a panic in the hook quarantines the day like any other.
	beforeDay func(clock.Day)
	// metrics, when non-nil, receives the run's observations under
	// study.* and core.join.* names so a cmd can serve them over
	// -metrics-addr while the run is in flight. Nil makes the run
	// observe into a private registry; either way the deterministic
	// subset ends up in RunReport.Metrics. Sweep outcome counts and
	// simulated RTTs are stable (seeded data plane, commutative merge);
	// wall-clock timings and join-engine internals register as volatile
	// and stay out of the stable snapshot.
	metrics *obs.Registry
	// workers overrides Config.Parallelism for the sweep worker pool
	// (0 = use the config).
	workers int
	// indexCacheSize bounds the join engine's LRU day-snapshot cache
	// (0 = engine default, negative = unbounded).
	indexCacheSize int
	// shardBits is the victim-prefix width the join engine shards by
	// (0 = engine default /16).
	shardBits int
	// legacyJoin selects the historical linear-scan join engine.
	legacyJoin bool
	// daystoreDir, when non-empty, switches the run to the out-of-core
	// day path (DESIGN §3.9): every completed day-shard is sealed as a
	// columnar file in this directory instead of being merged into the
	// run aggregator, and the join reads the sealed files through
	// core.WithDayStore — flat RSS at millions-of-domains scale. With a
	// checkpoint directory, day records become content-hash references
	// to the sealed files, and a resume verifies each referenced file
	// before trusting it.
	daystoreDir string
	// inMemoryDays forces the aggregator-backed join day store even when
	// daystoreDir is set: days are sealed AND merged, and the join reads
	// the in-memory path — the parity-testing escape hatch.
	inMemoryDays bool
	// skipJoin builds the join pipeline but skips the final batch
	// classify+join pass: Study.Classified and Study.Events stay empty.
	// The streaming service uses this — it joins window-by-window itself
	// and only needs the world, measurements and pipeline.
	skipJoin bool
}

// pipelineOptions translates the run-loop's join-engine knobs into extra
// core options for Session.NewPipeline.
func (o *options) pipelineOptions() []core.Option {
	var extra []core.Option
	if o.indexCacheSize != 0 {
		extra = append(extra, core.WithDayCacheSize(o.indexCacheSize))
	}
	if o.shardBits != 0 {
		extra = append(extra, core.WithShardBits(o.shardBits))
	}
	if o.legacyJoin {
		extra = append(extra, core.WithLegacyJoin())
	}
	if o.inMemoryDays {
		extra = append(extra, core.WithInMemoryDays())
	}
	return extra
}

// Option configures one RunContext knob.
type Option func(*options)

// WithCheckpointDir persists every completed day-shard to a CRC-guarded
// journal in dir (internal/checkpoint).
func WithCheckpointDir(dir string) Option {
	return func(o *options) { o.checkpointDir = dir }
}

// WithResume restarts from the checkpoints in the checkpoint directory
// instead of day 0; the directory's header (config hash + seed) must
// match the current configuration.
func WithResume(resume bool) Option {
	return func(o *options) { o.resume = resume }
}

// WithShardTimeout arms the per-day-shard watchdog: a sweep exceeding d
// is cancelled and quarantined instead of hanging the run.
func WithShardTimeout(d time.Duration) Option {
	return func(o *options) { o.shardTimeout = d }
}

// WithBeforeDay runs f at the start of every day-shard attempt, inside
// the shard's panic isolation (progress reporting, fault injection).
func WithBeforeDay(f func(clock.Day)) Option {
	return func(o *options) { o.beforeDay = f }
}

// WithMetrics observes the run into reg so a live /metrics.json can
// serve it mid-run; nil keeps the default private registry.
func WithMetrics(reg *obs.Registry) Option {
	return func(o *options) { o.metrics = reg }
}

// WithWorkers overrides Config.Parallelism for the sweep worker pool.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithIndexCacheSize bounds the join engine's LRU day-snapshot cache
// (core.WithDayCacheSize); 0 keeps the engine default.
func WithIndexCacheSize(n int) Option {
	return func(o *options) { o.indexCacheSize = n }
}

// WithShardBits sets the victim-prefix width the join engine shards by
// (core.WithShardBits); 0 keeps the engine default of /16.
func WithShardBits(bits int) Option {
	return func(o *options) { o.shardBits = bits }
}

// WithLegacyJoin runs the join with the historical linear-scan engine
// instead of the interval-indexed sharded engine.
func WithLegacyJoin() Option {
	return func(o *options) { o.legacyJoin = true }
}

// WithDayStoreDir seals every completed day-shard into a columnar day
// file in dir (internal/daystore) and joins against the sealed files
// through core.WithDayStore instead of merging day snapshots into one
// in-memory aggregator — the out-of-core path that keeps RSS flat at
// millions-of-domains scale. A fresh run clears stale sealed files from
// dir; combined with WithCheckpointDir, completed days are journaled as
// content-hash references (checkpoint.DayRef) and WithResume verifies
// every referenced file before trusting it, refusing the resume with a
// typed daystore.ErrCorrupt error on any mismatch. Output is
// byte-identical to the in-memory path (TestJoinParityColumnar).
func WithDayStoreDir(dir string) Option {
	return func(o *options) { o.daystoreDir = dir }
}

// WithInMemoryDays overrides WithDayStoreDir and runs the historical
// in-memory day path (days merged into the run aggregator, join reading
// core's aggregator-backed store) — the parity-testing escape hatch,
// mirroring WithLegacyJoin.
func WithInMemoryDays() Option {
	return func(o *options) { o.inMemoryDays = true }
}

// WithSkipJoin skips the final batch classify+join pass (Study.Classified
// and Study.Events stay empty) while still building Study.Pipeline over
// the swept measurements. Callers that join incrementally — the streaming
// pipeline — use this to avoid paying a full-feed join they will redo
// window by window.
func WithSkipJoin() Option {
	return func(o *options) { o.skipJoin = true }
}

// SkippedDay records one quarantined day-shard.
type SkippedDay struct {
	Day clock.Day
	// Reason is "panic: ..." or "watchdog: ...".
	Reason string
	// Stack is the shard goroutine's stack captured at the final panic
	// (empty for watchdog timeouts).
	Stack string
	// Attempts is how many times the shard was tried before quarantine.
	Attempts int
}

// RunReport summarizes what the supervised loop did: how many day-shards
// were restored from checkpoints, how many were swept this run, and
// which were quarantined.
type RunReport struct {
	ResumedDays   int
	CompletedDays int
	// SkippedDays lists quarantined day-shards in ascending day order.
	SkippedDays []SkippedDay
	// Metrics is the stable (deterministic) metric snapshot taken when
	// the run finished: sweep outcome counters and the simulated-RTT
	// histogram, but no wall-clock timings. Two runs of the same seeded
	// config produce byte-identical encodings of it. Days restored from
	// checkpoints contribute no observations — the snapshot covers the
	// work this run performed.
	Metrics *obs.Snapshot `json:",omitempty"`
}

// QuarantinedDays returns just the skipped days, ascending.
func (r *RunReport) QuarantinedDays() []clock.Day {
	out := make([]clock.Day, len(r.SkippedDays))
	for i := range r.SkippedDays {
		out[i] = r.SkippedDays[i].Day
	}
	return out
}

// ConfigHash fingerprints a configuration for the checkpoint header. It
// hashes the JSON encoding with Parallelism normalized to zero:
// parallelism shards work but never changes results (the merge is
// commutative), so a run may legitimately resume on different hardware.
func ConfigHash(cfg Config) (string, error) {
	cfg.Parallelism = 0
	b, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("study: hashing config: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// RunContext executes the full study under supervision. It cancels
// cleanly when ctx does (between phases, between day-shards, and every
// few hundred domains inside a sweep), checkpoints completed days when
// WithCheckpointDir is set, and isolates day-shard failures: a
// panicking day is retried once and then quarantined into
// Study.Report.SkippedDays with its stack, while the join falls back to
// the nearest earlier measurable day for quarantined days. The returned
// error is non-nil only for cancellation, invalid configuration, or
// checkpoint I/O failure — a panicking or stuck day-shard never fails
// the run.
func RunContext(ctx context.Context, cfg Config, optFns ...Option) (*Study, error) {
	var opts options
	for _, o := range optFns {
		o(&opts)
	}
	if opts.inMemoryDays {
		// Escape hatch: the full historical in-memory path, sealing nothing.
		opts.daystoreDir = ""
	}
	s := &Study{Config: cfg, Metrics: opts.metrics}
	if s.Metrics == nil {
		s.Metrics = obs.New()
	}
	stage := stageTimer(s.Metrics)

	sess, err := NewSession(ctx, cfg, s.Metrics)
	if err != nil {
		return nil, err
	}
	s.attachSession(sess)
	s.Agg = sess.NewAggregator()

	var ckpt *checkpoint.Dir
	done := make(map[clock.Day]bool)
	if opts.checkpointDir != "" {
		hash, err := ConfigHash(cfg)
		if err != nil {
			return nil, err
		}
		hdr := checkpoint.Header{ConfigHash: hash, Seed: cfg.MeasureSeed}
		if opts.resume {
			if ckpt, err = checkpoint.Resume(opts.checkpointDir, hdr); err != nil {
				return nil, err
			}
			if opts.daystoreDir != "" {
				// Out-of-core resume: day records are content-hash
				// references to sealed column files. Verify every
				// referenced file before trusting it — a swapped or
				// rotted seal is refused (daystore.ErrCorrupt), never
				// silently re-aggregated. No re-aggregation happens at
				// all: the join reads the sealed files directly.
				refs, err := ckpt.LoadDayRefs(cfg.FromDay, cfg.ToDay)
				if err != nil {
					return nil, err
				}
				for d, ref := range refs {
					if err := daystore.VerifyFile(opts.daystoreDir, ref.File, ref.SHA256); err != nil {
						return nil, fmt.Errorf("study: resuming day %s: %w", d, err)
					}
					done[d] = true
				}
				s.Report.ResumedDays = len(refs)
			} else {
				snaps, err := ckpt.LoadDays(cfg.FromDay, cfg.ToDay)
				if err != nil {
					return nil, err
				}
				for d, snap := range snaps {
					s.Agg.AddSnapshot(snap)
					done[d] = true
				}
				s.Report.ResumedDays = len(snaps)
			}
		} else if ckpt, err = checkpoint.Create(opts.checkpointDir, hdr); err != nil {
			return nil, err
		}
	}
	if opts.daystoreDir != "" && len(done) == 0 {
		// Fresh out-of-core run (or a resume that restored nothing):
		// sealed files from previous runs are stale state, like the
		// checkpoint Create cleanup.
		if err := daystore.Clear(opts.daystoreDir); err != nil {
			return nil, err
		}
	}

	t0 := time.Now()
	if err := s.runSweepsSupervised(ctx, opts, ckpt, done); err != nil {
		return nil, err
	}
	stage("sweep", t0)

	t0 = time.Now()
	pipeOpts := opts.pipelineOptions()
	if opts.daystoreDir != "" {
		set, err := daystore.Open(opts.daystoreDir)
		if err != nil {
			return nil, err
		}
		pipeOpts = append(pipeOpts, core.WithDayStore(set))
	}
	s.Pipeline = sess.NewPipeline(s.Agg, s.Report.QuarantinedDays(), s.Metrics, pipeOpts...)
	if !opts.skipJoin {
		s.Classified = s.Pipeline.Classify(s.Attacks)
		var err error
		if s.Events, err = s.Pipeline.EventsContext(ctx, s.Attacks); err != nil {
			return nil, err
		}
	}
	stage("join", t0)
	snap := s.Metrics.StableSnapshot()
	s.Report.Metrics = &snap
	return s, nil
}

// stageTimer returns a closure recording wall-clock stage durations as
// volatile gauges (study.stage.<name>_wall_ns) — visible on a live
// /metrics.json, excluded from the deterministic stable snapshot.
func stageTimer(reg *obs.Registry) func(name string, since time.Time) {
	return func(name string, since time.Time) {
		reg.Gauge("study.stage."+name+"_wall_ns", obs.Volatile()).Set(int64(time.Since(since)))
	}
}

// sweepMetrics is the deterministic per-shard instrument set: outcome
// counters and the simulated-RTT histogram under study.sweep.* names.
// Each shard observes into a private registry that merges into the
// run's registry only when the shard completes, so a panicking attempt
// that half-swept a day cannot double-count after its retry.
type sweepMetrics struct {
	ok       *obs.Counter
	servfail *obs.Counter
	timeout  *obs.Counter
	rtt      *obs.Histogram
}

func newSweepMetrics(reg *obs.Registry) sweepMetrics {
	return sweepMetrics{
		ok:       reg.Counter("study.sweep.ok"),
		servfail: reg.Counter("study.sweep.servfail"),
		timeout:  reg.Counter("study.sweep.timeout"),
		rtt:      reg.Histogram("study.sweep.rtt"),
	}
}

// observe folds one sweep record into the shard's metrics. The RTT is
// simulated (seeded data plane), so the histogram is deterministic.
func (m sweepMetrics) observe(rec openintel.Record) {
	switch rec.Status {
	case nsset.StatusOK:
		m.ok.Inc()
		m.rtt.Observe(rec.RTT)
	case nsset.StatusServFail:
		m.servfail.Inc()
	default:
		m.timeout.Inc()
	}
}

// runSweepsSupervised runs the daily sweeps as independent day-shards
// under a bounded worker pool. Each shard sweeps into a private
// aggregator; on success the result is checkpointed (if enabled) and
// merged — in whatever order shards complete, which is safe because the
// merge is commutative. Days already restored from checkpoints (done)
// are not re-run.
func (s *Study) runSweepsSupervised(ctx context.Context, opts options, ckpt *checkpoint.Dir, done map[clock.Day]bool) error {
	from, to := s.Config.FromDay, s.Config.ToDay
	if to < from {
		return nil
	}
	days := make([]clock.Day, 0, int(to-from)+1)
	for d := from; d <= to; d++ {
		if !done[d] {
			days = append(days, d)
		}
	}
	if len(days) == 0 {
		return ctx.Err()
	}
	par := opts.workers
	if par <= 0 {
		par = s.Config.Parallelism
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(days) {
		par = len(days)
	}

	var (
		mu      sync.Mutex // guards s.Agg, s.Report and ckptErr
		wg      sync.WaitGroup
		ckptErr error
	)
	sem := make(chan struct{}, par)
dispatch:
	for _, day := range days {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		mu.Lock()
		failed := ckptErr != nil
		mu.Unlock()
		if failed {
			<-sem
			break
		}
		wg.Add(1)
		go func(day clock.Day) {
			defer wg.Done()
			defer func() { <-sem }()
			shardStart := time.Now()
			agg, sreg, skipped := s.runDayShard(ctx, day, opts)
			s.Metrics.Histogram("study.day_sweep_wall", obs.Volatile()).Observe(time.Since(shardStart))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case skipped != nil:
				s.Report.SkippedDays = append(s.Report.SkippedDays, *skipped)
			case agg != nil:
				if opts.daystoreDir != "" {
					// Out-of-core path: seal the day to disk and drop the
					// structs — the join reads the sealed file, so the run
					// aggregator never grows with completed days (flat
					// RSS). The checkpoint, when enabled, records only a
					// content-hash reference to the seal.
					if ckptErr == nil {
						wstart := time.Now()
						ref, err := daystore.SealDay(opts.daystoreDir, day, agg.Snapshot())
						if err != nil {
							ckptErr = err
							return
						}
						if ckpt != nil {
							if err := ckpt.WriteDayRef(day, checkpoint.DayRef{File: ref.Name, SHA256: ref.SHA256}); err != nil {
								ckptErr = err
								return
							}
						}
						s.Metrics.Histogram("study.daystore_seal_wall", obs.Volatile()).Observe(time.Since(wstart))
					}
				} else {
					if ckpt != nil && ckptErr == nil {
						wstart := time.Now()
						if err := ckpt.WriteDay(day, agg.Snapshot()); err != nil {
							ckptErr = err
							return
						}
						s.Metrics.Histogram("study.checkpoint_write_wall", obs.Volatile()).Observe(time.Since(wstart))
					}
					s.Agg.Merge(agg)
				}
				s.Metrics.Merge(sreg)
				s.Report.CompletedDays++
			}
			// agg == nil && skipped == nil: shard abandoned on
			// cancellation; the day stays un-checkpointed and re-runs
			// on resume.
		}(day)
	}
	wg.Wait()
	sort.Slice(s.Report.SkippedDays, func(i, j int) bool {
		return s.Report.SkippedDays[i].Day < s.Report.SkippedDays[j].Day
	})
	if ckptErr != nil {
		return fmt.Errorf("study: writing checkpoint: %w", ckptErr)
	}
	return ctx.Err()
}

// runDayShard sweeps one day with isolation: a panicking attempt is
// retried once, then quarantined; a watchdog timeout quarantines
// immediately (retrying a stuck sweep would just double the stall). A
// (nil, nil, nil) return means the shard was abandoned because ctx was
// cancelled. On success the shard's private metric registry rides along
// so the caller can merge it exactly once.
func (s *Study) runDayShard(ctx context.Context, day clock.Day, opts options) (*nsset.Aggregator, *obs.Registry, *SkippedDay) {
	const maxAttempts = 2
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			return nil, nil, nil
		}
		agg, sreg, sk := s.sweepDayOnce(ctx, day, opts)
		if sk == nil {
			return agg, sreg, nil // completed, or (nil, nil, nil) when cancelled
		}
		sk.Attempts = attempt
		if strings.HasPrefix(sk.Reason, "watchdog") || attempt == maxAttempts {
			return nil, nil, sk
		}
	}
}

// sweepDayOnce runs a single attempt (Session.SweepDayAttempt), under
// the watchdog when enabled.
func (s *Study) sweepDayOnce(ctx context.Context, day clock.Day, opts options) (*nsset.Aggregator, *obs.Registry, *SkippedDay) {
	if opts.shardTimeout <= 0 {
		return s.session.SweepDayAttempt(ctx, day, opts.beforeDay)
	}
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		agg  *nsset.Aggregator
		sreg *obs.Registry
		sk   *SkippedDay
	}
	ch := make(chan result, 1)
	go func() {
		a, sreg, sk := s.session.SweepDayAttempt(dctx, day, opts.beforeDay)
		ch <- result{a, sreg, sk}
	}()
	timer := time.NewTimer(opts.shardTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.agg, r.sreg, r.sk
	case <-timer.C:
		// Cancel the shard's context so a cooperative sweep exits
		// promptly; a truly wedged goroutine is abandoned (it owns a
		// private aggregator and registry nobody will read).
		cancel()
		return nil, nil, &SkippedDay{
			Day:    day,
			Reason: fmt.Sprintf("watchdog: day-shard exceeded %v", opts.shardTimeout),
		}
	}
}
