package study

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dnsddos/internal/obs"
)

// metrics_golden_test.go pins the determinism contract of
// RunReport.Metrics: the stable snapshot a seeded run embeds must be
// byte-identical across runs (the simulated data plane is seeded and
// the shard merge is commutative), and must match the checked-in
// golden file. Regenerate with:
//
//	go test ./internal/study/ -run TestRunMetrics -update

var update = flag.Bool("update", false, "rewrite golden files")

// metricsConfig is a small seeded run with real sweep work: a few days
// around the TransIP December attack, sharded to exercise the
// merge-on-completion path.
func metricsConfig() Config {
	cfg := QuickConfig()
	cfg.World.Domains = 1500
	cfg.Attacks.TotalAttacks = 1500
	cfg.FromDay, cfg.ToDay = 27, 29
	cfg.Parallelism = 4
	return cfg
}

func stableMetricsBytes(t *testing.T, s *Study) []byte {
	t.Helper()
	if s.Report.Metrics == nil {
		t.Fatal("RunReport.Metrics is nil after a completed run")
	}
	var buf bytes.Buffer
	if err := s.Report.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunMetricsByteIdenticalAcrossRuns runs the same seeded config
// twice — with shards completing in whatever order the scheduler
// produces — and requires the embedded stable snapshots to encode to
// the same bytes.
func TestRunMetricsByteIdenticalAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := metricsConfig()
	a, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg, WithMetrics(obs.New()))
	if err != nil {
		t.Fatal(err)
	}
	ab, bb := stableMetricsBytes(t, a), stableMetricsBytes(t, b)
	if !bytes.Equal(ab, bb) {
		t.Errorf("two seeded runs embedded different metric snapshots\nfirst:\n%s\nsecond:\n%s", ab, bb)
	}
	snap := a.Report.Metrics
	if snap.Counters["study.sweep.ok"] == 0 {
		t.Error("stable snapshot has no successful sweeps — the run did no work")
	}
	if snap.Histograms["study.sweep.rtt"].Count != snap.Counters["study.sweep.ok"] {
		t.Errorf("sweep RTT histogram count %d != ok counter %d",
			snap.Histograms["study.sweep.rtt"].Count, snap.Counters["study.sweep.ok"])
	}
	for name := range snap.Gauges {
		t.Errorf("volatile wall-clock gauge %q leaked into the stable snapshot", name)
	}
}

// TestRunMetricsGolden pins the exact stable snapshot of the seeded
// metricsConfig run against a checked-in golden file, so accidental
// changes to the data plane, the sweep engine, or the snapshot encoding
// show up as a diff.
func TestRunMetricsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	s, err := RunContext(context.Background(), metricsConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := stableMetricsBytes(t, s)
	path := filepath.Join("testdata", "metrics.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("run metrics drifted from golden file (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}
