package study

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/openintel"
	"dnsddos/internal/resolver"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/scenario"
	"dnsddos/internal/simnet"
	"dnsddos/internal/telescope"
)

// session.go factors the deterministic world-building half of a study run
// out of RunContext so any process holding the same Config can rebuild
// identical state: the generated world, attack schedule, synthesized
// telescope observations, inferred attack feed, and the simulated data
// plane (net, resolver, measurement engine). Everything here is a pure
// function of the (seeded) configuration — no I/O, no wall-clock — which
// is what makes the distributed join possible at all: a worker receives
// only the config JSON, calls NewSession, and owns a world byte-identical
// to the coordinator's. Measurement state (swept aggregators) is NOT part
// of a Session; it flows between processes as nsset.Snapshot values.

// Session is the deterministic per-process materialization of a study
// configuration: everything up to — but excluding — the measurement
// sweeps. Two Sessions built from equal Configs are interchangeable.
type Session struct {
	Config    Config
	World     *scenario.World
	Schedule  *scenario.Schedule
	Telescope *telescope.Telescope
	Obs       []rsdos.WindowObs
	Attacks   []rsdos.Attack
	Net       *simnet.Net
	Resolver  *resolver.Resolver
	Engine    *openintel.Engine

	filter func(clock.Window) bool
}

// NewSession validates cfg and builds the deterministic run state. Stage
// wall-times are recorded into reg (volatile; nil disables). The context
// is checked between the generate and infer phases.
func NewSession(ctx context.Context, cfg Config, reg *obs.Registry) (*Session, error) {
	if err := Validate(cfg); err != nil {
		return nil, err
	}
	stage := stageTimer(reg)
	sess := &Session{Config: cfg}

	t0 := time.Now()
	sess.World = scenario.GenerateWorld(cfg.World)
	sess.Schedule = scenario.GenerateSchedule(cfg.Attacks, sess.World)
	sess.Telescope = telescope.NewUCSD()
	sess.Obs = scenario.SynthesizeObs(cfg.Synth, sess.World, sess.Schedule.Sched, sess.Telescope)
	if cfg.IncludeNoise {
		sess.Obs = append(sess.Obs, scenario.SynthesizeNoise(cfg.Noise, sess.Telescope)...)
	}
	stage("generate", t0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	sess.Attacks = rsdos.Infer(cfg.RSDoS, sess.Obs)
	stage("infer", t0)

	sess.Net = simnet.New(cfg.Net, sess.World.DB, sess.Schedule.Sched, sess.Schedule.Blackouts...)
	sess.Resolver = resolver.New(cfg.Resolver, sess.World.DB, sess.Net)
	sess.Engine = openintel.NewEngine(sess.World.DB, sess.Resolver, cfg.MeasureSeed)
	sess.filter = sess.windowFilter()
	return sess, nil
}

// windowFilter keeps per-window metrics only around attacks on NS-recorded
// IPs (plus margins), bounding aggregator memory over the 17-month run.
func (sess *Session) windowFilter() func(clock.Window) bool {
	keep := make(map[clock.Window]struct{})
	nsAddrs := sess.World.DB.AllNSAddrs()
	before := int64(sess.Config.WindowMarginBefore / clock.WindowDur)
	after := int64(sess.Config.WindowMarginAfter / clock.WindowDur)
	for _, a := range sess.Attacks {
		if _, ok := nsAddrs[a.Victim]; !ok {
			continue
		}
		for w := a.StartWindow - clock.Window(before); w <= a.EndWindow+clock.Window(after); w++ {
			keep[w] = struct{}{}
		}
	}
	return func(w clock.Window) bool {
		_, ok := keep[w]
		return ok
	}
}

// NewAggregator returns an empty aggregator wired with the session's
// retained-window filter — the only aggregator shape whose merges and
// snapshots are interchangeable across processes of the same config.
func (sess *Session) NewAggregator() *nsset.Aggregator {
	a := nsset.NewAggregator()
	a.SetWindowFilter(sess.filter)
	return a
}

// SweepDayAttempt is one isolated sweep of one day into a fresh private
// aggregator and metric registry. Panics — in the beforeDay hook or
// anywhere inside the engine/resolver/data plane — are captured with
// their stack instead of crashing the process; the half-filled registry
// is discarded with the aggregator, keeping retries exactly-once. A
// (nil, nil, nil) return means ctx was cancelled. This is the unit of
// work a distributed sweep worker executes per assignment; the supervised
// in-process loop retries/quarantines around it identically, so a day
// that panics remotely quarantines with the same Reason bytes as one that
// panics locally.
func (sess *Session) SweepDayAttempt(ctx context.Context, day clock.Day, beforeDay func(clock.Day)) (agg *nsset.Aggregator, sreg *obs.Registry, sk *SkippedDay) {
	defer func() {
		if r := recover(); r != nil {
			agg, sreg = nil, nil
			sk = &SkippedDay{
				Day:    day,
				Reason: fmt.Sprintf("panic: %v", r),
				Stack:  string(debug.Stack()),
			}
		}
	}()
	if beforeDay != nil {
		beforeDay(day)
	}
	a := sess.NewAggregator()
	reg := obs.New()
	sm := newSweepMetrics(reg)
	if err := sess.Engine.RunDayContext(ctx, day, a, sm.observe); err != nil {
		return nil, nil, nil
	}
	return a, reg, nil
}

// NewPipeline builds the core join pipeline over agg with the session's
// standard wiring (pipeline config, census, topology, open resolvers, the
// engine's per-domain NSSet keys) plus any extra engine options, and
// applies the quarantined-day fallback set. Both the in-process join and
// every distributed join participant build their pipeline here, which is
// what pins their emission bytes to each other.
func (sess *Session) NewPipeline(agg *nsset.Aggregator, quarantined []clock.Day, reg *obs.Registry, extra ...core.Option) *core.Pipeline {
	pipeOpts := []core.Option{
		core.WithConfig(sess.Config.Pipeline),
		core.WithAggregator(agg),
		core.WithCensus(sess.World.Census),
		core.WithTopology(sess.World.Topo),
		core.WithOpenResolvers(sess.World.OpenRes),
		// Reuse the measurement engine's per-domain NSSet keys so the
		// join index build skips recomputing them from the DB.
		core.WithDomainNSSets(sess.Engine.DomainNSSets()),
		core.WithMetrics(reg),
	}
	pipeOpts = append(pipeOpts, extra...)
	p := core.NewPipeline(sess.World.DB, pipeOpts...)
	if len(quarantined) > 0 {
		p.SetQuarantinedDays(quarantined)
	}
	return p
}
