// Package study orchestrates a full end-to-end run of the reproduction:
// generate the world and the 17-month attack schedule, run the telescope
// and RSDoS inference, run the OpenINTEL daily sweeps over the simulated
// data plane, and execute the core join pipeline. The cmd tools, examples
// and benchmarks all build on it.
package study

import (
	"context"
	"fmt"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/openintel"
	"dnsddos/internal/resolver"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/scenario"
	"dnsddos/internal/simnet"
	"dnsddos/internal/telescope"
)

// Config collects every knob of a full study run.
type Config struct {
	World    scenario.WorldConfig
	Attacks  scenario.AttackConfig
	Synth    scenario.SynthConfig
	RSDoS    rsdos.Config
	Net      simnet.Params
	Resolver resolver.Config
	Pipeline core.Config
	// MeasureSeed drives the OpenINTEL engine.
	MeasureSeed uint64
	// FromDay/ToDay bound the measured interval (inclusive); zero values
	// mean the full study window.
	FromDay, ToDay clock.Day
	// WindowMarginBefore/After extend the retained-metrics window around
	// each DNS attack so time-series figures have context.
	WindowMarginBefore time.Duration
	WindowMarginAfter  time.Duration
	// Parallelism shards the daily sweeps across goroutines (0 = all
	// cores).
	Parallelism int
	// Noise, when enabled, mixes scanner/misconfiguration IBR into the
	// telescope observations before inference; the Moore-style
	// thresholds are expected to reject it (DESIGN §2).
	Noise        scenario.NoiseConfig
	IncludeNoise bool
}

// DefaultConfig returns the standard longitudinal configuration.
func DefaultConfig() Config {
	// The measurement platform issues explicit NS queries against the
	// zone's own (child) nameservers and prefers the authoritative
	// answer (§3.2), so its resolver does not chase stale parent
	// delegations; FollowDelegation stays available for the end-user
	// and ablation paths.
	resCfg := resolver.DefaultConfig()
	resCfg.FollowDelegation = false
	return Config{
		World:              scenario.DefaultWorldConfig(),
		Attacks:            scenario.DefaultAttackConfig(),
		Synth:              scenario.DefaultSynthConfig(),
		RSDoS:              rsdos.DefaultConfig(),
		Net:                simnet.DefaultParams(),
		Resolver:           resCfg,
		Pipeline:           core.DefaultConfig(),
		MeasureSeed:        42,
		Noise:              scenario.DefaultNoiseConfig(),
		FromDay:            0,
		ToDay:              clock.Day(clock.StudyDays() - 1),
		WindowMarginBefore: 6 * time.Hour,
		WindowMarginAfter:  24 * time.Hour,
	}
}

// QuickConfig returns a scaled-down configuration for tests and fast
// benches: a smaller world and schedule, same 17-month span.
func QuickConfig() Config {
	c := DefaultConfig()
	c.World.Domains = 6000
	c.World.GenericProviders = 60
	c.Attacks.TotalAttacks = 8000
	return c
}

// Study is the materialized run.
type Study struct {
	Config     Config
	World      *scenario.World
	Schedule   *scenario.Schedule
	Telescope  *telescope.Telescope
	Obs        []rsdos.WindowObs
	Attacks    []rsdos.Attack
	Net        *simnet.Net
	Resolver   *resolver.Resolver
	Engine     *openintel.Engine
	Agg        *nsset.Aggregator
	Pipeline   *core.Pipeline
	Classified []core.ClassifiedAttack
	Events     []core.Event
	// Report summarizes the supervised run loop: resumed, completed and
	// quarantined day-shards.
	Report RunReport
	// Metrics is the registry the run observed into (WithMetrics, or
	// a private one). It stays live after RunContext returns, so a
	// -metrics-addr endpoint keeps serving final values.
	Metrics *obs.Registry

	// session is the deterministic state the run was built from
	// (session.go); the exported World/Schedule/... fields above alias it.
	session *Session
}

// attachSession adopts a Session's deterministic state into the study's
// exported fields.
func (s *Study) attachSession(sess *Session) {
	s.session = sess
	s.World, s.Schedule, s.Telescope = sess.World, sess.Schedule, sess.Telescope
	s.Obs, s.Attacks = sess.Obs, sess.Attacks
	s.Net, s.Resolver, s.Engine = sess.Net, sess.Resolver, sess.Engine
}

// Session returns the deterministic state the study was built from.
func (s *Study) Session() *Session { return s.session }

// Run executes the full study, uninterruptible and without checkpoints —
// the historical entry point, kept as a thin wrapper over RunContext.
// It panics on an invalid configuration (RunContext returns the error
// instead).
//
// Deprecated: use RunContext, the canonical entry point — it takes a
// context, returns errors instead of panicking, and accepts the
// With... functional options (checkpoints, watchdog, join-engine
// tuning).
func Run(cfg Config) *Study {
	s, err := RunContext(context.Background(), cfg)
	if err != nil {
		// With a background context and no checkpoint/resume options the
		// only possible failure is an invalid configuration.
		panic(fmt.Sprintf("study.Run: %v", err))
	}
	return s
}
