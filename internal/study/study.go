// Package study orchestrates a full end-to-end run of the reproduction:
// generate the world and the 17-month attack schedule, run the telescope
// and RSDoS inference, run the OpenINTEL daily sweeps over the simulated
// data plane, and execute the core join pipeline. The cmd tools, examples
// and benchmarks all build on it.
package study

import (
	"runtime"
	"sync"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/nsset"
	"dnsddos/internal/openintel"
	"dnsddos/internal/resolver"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/scenario"
	"dnsddos/internal/simnet"
	"dnsddos/internal/telescope"
	"time"
)

// Config collects every knob of a full study run.
type Config struct {
	World    scenario.WorldConfig
	Attacks  scenario.AttackConfig
	Synth    scenario.SynthConfig
	RSDoS    rsdos.Config
	Net      simnet.Params
	Resolver resolver.Config
	Pipeline core.Config
	// MeasureSeed drives the OpenINTEL engine.
	MeasureSeed uint64
	// FromDay/ToDay bound the measured interval (inclusive); zero values
	// mean the full study window.
	FromDay, ToDay clock.Day
	// WindowMarginBefore/After extend the retained-metrics window around
	// each DNS attack so time-series figures have context.
	WindowMarginBefore time.Duration
	WindowMarginAfter  time.Duration
	// Parallelism shards the daily sweeps across goroutines (0 = all
	// cores).
	Parallelism int
	// Noise, when enabled, mixes scanner/misconfiguration IBR into the
	// telescope observations before inference; the Moore-style
	// thresholds are expected to reject it (DESIGN §2).
	Noise        scenario.NoiseConfig
	IncludeNoise bool
}

// DefaultConfig returns the standard longitudinal configuration.
func DefaultConfig() Config {
	// The measurement platform issues explicit NS queries against the
	// zone's own (child) nameservers and prefers the authoritative
	// answer (§3.2), so its resolver does not chase stale parent
	// delegations; FollowDelegation stays available for the end-user
	// and ablation paths.
	resCfg := resolver.DefaultConfig()
	resCfg.FollowDelegation = false
	return Config{
		World:              scenario.DefaultWorldConfig(),
		Attacks:            scenario.DefaultAttackConfig(),
		Synth:              scenario.DefaultSynthConfig(),
		RSDoS:              rsdos.DefaultConfig(),
		Net:                simnet.DefaultParams(),
		Resolver:           resCfg,
		Pipeline:           core.DefaultConfig(),
		MeasureSeed:        42,
		Noise:              scenario.DefaultNoiseConfig(),
		FromDay:            0,
		ToDay:              clock.Day(clock.StudyDays() - 1),
		WindowMarginBefore: 6 * time.Hour,
		WindowMarginAfter:  24 * time.Hour,
	}
}

// QuickConfig returns a scaled-down configuration for tests and fast
// benches: a smaller world and schedule, same 17-month span.
func QuickConfig() Config {
	c := DefaultConfig()
	c.World.Domains = 6000
	c.World.GenericProviders = 60
	c.Attacks.TotalAttacks = 8000
	return c
}

// Study is the materialized run.
type Study struct {
	Config     Config
	World      *scenario.World
	Schedule   *scenario.Schedule
	Telescope  *telescope.Telescope
	Obs        []rsdos.WindowObs
	Attacks    []rsdos.Attack
	Net        *simnet.Net
	Resolver   *resolver.Resolver
	Engine     *openintel.Engine
	Agg        *nsset.Aggregator
	Pipeline   *core.Pipeline
	Classified []core.ClassifiedAttack
	Events     []core.Event
}

// Run executes the full study.
func Run(cfg Config) *Study {
	s := &Study{Config: cfg}
	s.World = scenario.GenerateWorld(cfg.World)
	s.Schedule = scenario.GenerateSchedule(cfg.Attacks, s.World)
	s.Telescope = telescope.NewUCSD()
	s.Obs = scenario.SynthesizeObs(cfg.Synth, s.World, s.Schedule.Sched, s.Telescope)
	if cfg.IncludeNoise {
		s.Obs = append(s.Obs, scenario.SynthesizeNoise(cfg.Noise, s.Telescope)...)
	}
	s.Attacks = rsdos.Infer(cfg.RSDoS, s.Obs)

	s.Net = simnet.New(cfg.Net, s.World.DB, s.Schedule.Sched, s.Schedule.Blackouts...)
	s.Resolver = resolver.New(cfg.Resolver, s.World.DB, s.Net)
	s.Engine = openintel.NewEngine(s.World.DB, s.Resolver, cfg.MeasureSeed)

	s.Agg = nsset.NewAggregator()
	filter := s.windowFilter()
	s.Agg.SetWindowFilter(filter)
	s.runSweeps(filter)

	s.Pipeline = core.NewPipeline(cfg.Pipeline, s.World.DB, s.Agg, s.World.Census, s.World.Topo, s.World.OpenRes)
	s.Classified = s.Pipeline.Classify(s.Attacks)
	s.Events = s.Pipeline.Events(s.Attacks)
	return s
}

// windowFilter keeps per-window metrics only around attacks on NS-recorded
// IPs (plus margins), bounding aggregator memory over the 17-month run.
func (s *Study) windowFilter() func(clock.Window) bool {
	keep := make(map[clock.Window]struct{})
	nsAddrs := s.World.DB.AllNSAddrs()
	before := int64(s.Config.WindowMarginBefore / clock.WindowDur)
	after := int64(s.Config.WindowMarginAfter / clock.WindowDur)
	for _, a := range s.Attacks {
		if _, ok := nsAddrs[a.Victim]; !ok {
			continue
		}
		for w := a.StartWindow - clock.Window(before); w <= a.EndWindow+clock.Window(after); w++ {
			keep[w] = struct{}{}
		}
	}
	return func(w clock.Window) bool {
		_, ok := keep[w]
		return ok
	}
}

// runSweeps runs the daily measurement sweeps, sharded across goroutines
// by day (days are independent: the engine derives a fresh deterministic
// rng per day, and window/day aggregates merge commutatively).
func (s *Study) runSweeps(filter func(clock.Window) bool) {
	from, to := s.Config.FromDay, s.Config.ToDay
	if to < from {
		return
	}
	par := s.Config.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	nDays := int(to-from) + 1
	if par > nDays {
		par = nDays
	}
	if par <= 1 {
		s.Engine.RunRange(from, to, s.Agg, nil)
		return
	}
	type shard struct {
		from, to clock.Day
	}
	shards := make([]shard, 0, par)
	per := nDays / par
	extra := nDays % par
	cur := from
	for i := 0; i < par; i++ {
		n := per
		if i < extra {
			n++
		}
		if n == 0 {
			continue
		}
		shards = append(shards, shard{from: cur, to: cur + clock.Day(n) - 1})
		cur += clock.Day(n)
	}
	aggs := make([]*nsset.Aggregator, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh shard) {
			defer wg.Done()
			a := nsset.NewAggregator()
			a.SetWindowFilter(filter)
			s.Engine.RunRange(sh.from, sh.to, a, nil)
			aggs[i] = a
		}(i, sh)
	}
	wg.Wait()
	for _, a := range aggs {
		s.Agg.Merge(a)
	}
}
