package astopo

import (
	"math/rand/v2"
	"testing"

	"dnsddos/internal/netx"
)

func benchTable(n int) *Table {
	rng := rand.New(rand.NewPCG(1, 1))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		bits := 8 + rng.IntN(17)
		addr := netx.Addr(rng.Uint32()) & (netx.Prefix{Bits: bits}).Mask()
		b.Announce(netx.Prefix{Addr: addr, Bits: bits}, ASN(rng.Uint32N(70000)))
	}
	return b.Build()
}

func BenchmarkLookup100kPrefixes(b *testing.B) {
	t := benchTable(100_000)
	rng := rand.New(rand.NewPCG(2, 2))
	addrs := make([]netx.Addr, 1024)
	for i := range addrs {
		addrs[i] = netx.Addr(rng.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkBuild10kPrefixes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = benchTable(10_000)
	}
}
