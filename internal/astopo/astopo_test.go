package astopo

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dnsddos/internal/netx"
)

func build(entries []Entry, orgs map[ASN]Org) *Table {
	b := NewBuilder()
	for _, e := range entries {
		b.Announce(e.Prefix, e.ASN)
	}
	for a, o := range orgs {
		b.SetOrg(a, o)
	}
	return b.Build()
}

func TestLookupLongestPrefixMatch(t *testing.T) {
	tbl := build([]Entry{
		{netx.MustParsePrefix("10.0.0.0/8"), 100},
		{netx.MustParsePrefix("10.1.0.0/16"), 200},
		{netx.MustParsePrefix("10.1.2.0/24"), 300},
	}, nil)
	cases := []struct {
		addr string
		want ASN
	}{
		{"10.9.9.9", 100},
		{"10.1.9.9", 200},
		{"10.1.2.9", 300},
	}
	for _, c := range cases {
		got, ok := tbl.Lookup(netx.MustParseAddr(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %v,%v want %v", c.addr, got, ok, c.want)
		}
	}
	if _, ok := tbl.Lookup(netx.MustParseAddr("11.0.0.1")); ok {
		t.Error("unannounced space should miss")
	}
}

func TestLookupDefaultRoute(t *testing.T) {
	tbl := build([]Entry{{netx.Prefix{Addr: 0, Bits: 0}, 42}}, nil)
	if got, ok := tbl.Lookup(netx.MustParseAddr("203.0.113.7")); !ok || got != 42 {
		t.Errorf("default route lookup = %v,%v", got, ok)
	}
}

func TestLookupSlash32(t *testing.T) {
	tbl := build([]Entry{
		{netx.MustParsePrefix("8.8.8.8/32"), 15169},
		{netx.MustParsePrefix("8.8.8.0/24"), 1},
	}, nil)
	if got, _ := tbl.Lookup(netx.MustParseAddr("8.8.8.8")); got != 15169 {
		t.Errorf("/32 should win: %v", got)
	}
	if got, _ := tbl.Lookup(netx.MustParseAddr("8.8.8.9")); got != 1 {
		t.Errorf("sibling should match /24: %v", got)
	}
}

func TestDuplicateAnnouncementLastWins(t *testing.T) {
	tbl := build([]Entry{
		{netx.MustParsePrefix("192.0.2.0/24"), 1},
		{netx.MustParsePrefix("192.0.2.0/24"), 2},
	}, nil)
	if got, _ := tbl.Lookup(netx.MustParseAddr("192.0.2.5")); got != 2 {
		t.Errorf("last announcement should win: %v", got)
	}
}

func TestOrgNames(t *testing.T) {
	tbl := build(nil, map[ASN]Org{15169: {Name: "Google", Country: "US"}})
	if got := tbl.OrgName(15169); got != "Google" {
		t.Errorf("OrgName = %q", got)
	}
	if got := tbl.OrgName(65000); got != "AS65000" {
		t.Errorf("fallback OrgName = %q", got)
	}
	if o, ok := tbl.OrgOf(15169); !ok || o.Country != "US" {
		t.Errorf("OrgOf = %+v, %v", o, ok)
	}
}

func TestASNString(t *testing.T) {
	if ASN(13335).String() != "AS13335" {
		t.Error("ASN.String")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	entries := []Entry{
		{netx.MustParsePrefix("10.0.0.0/8"), 100},
		{netx.MustParsePrefix("192.0.2.0/24"), 64500},
		{netx.MustParsePrefix("8.8.8.8/32"), 15169},
	}
	orgs := map[ASN]Org{
		15169: {Name: "Google", Country: "US"},
		100:   {Name: "Transit A", Country: "NL"},
	}
	var buf bytes.Buffer
	if err := WriteEntries(&buf, entries, orgs); err != nil {
		t.Fatal(err)
	}
	b, err := ReadEntries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tbl := b.Build()
	for _, e := range entries {
		got, ok := tbl.Lookup(e.Prefix.First())
		if !ok || got != e.ASN {
			t.Errorf("after round trip, Lookup(%v) = %v,%v", e.Prefix, got, ok)
		}
	}
	if tbl.OrgName(15169) != "Google" {
		t.Error("org lost in round trip")
	}
	if tbl.Len() != len(entries) {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestReadEntriesRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"not-an-ip\t24\t100\n",
		"10.0.0.0\t99\t100\n",
		"10.0.0.0\t24\tx\n",
		"10.0.0.0\t24\n",
		"# org\t15169\n",
	} {
		if _, err := ReadEntries(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("input %q should be rejected", in)
		}
	}
}

func TestReadEntriesSkipsCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n10.0.0.0\t8\t7\n"
	b, err := ReadEntries(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := b.Build().Lookup(netx.MustParseAddr("10.1.1.1")); !ok || got != 7 {
		t.Errorf("lookup after comments = %v,%v", got, ok)
	}
}

// TestLookupMatchesLinearScan cross-checks the trie against a brute-force
// longest-prefix match over random tables and addresses.
func TestLookupMatchesLinearScan(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xa5))
		n := 1 + rng.IntN(30)
		entries := make([]Entry, n)
		for i := range entries {
			bits := rng.IntN(25) + 8
			addr := netx.Addr(rng.Uint32()) & (netx.Prefix{Bits: bits}).Mask()
			entries[i] = Entry{Prefix: netx.Prefix{Addr: addr, Bits: bits}, ASN: ASN(rng.Uint32N(1000) + 1)}
		}
		tbl := build(entries, nil)
		for trial := 0; trial < 50; trial++ {
			a := netx.Addr(rng.Uint32())
			if rng.IntN(2) == 0 { // bias toward hits
				e := entries[rng.IntN(n)]
				a = e.Prefix.RandomAddr(rng)
			}
			// linear longest-prefix match; among equal lengths the
			// later entry wins (insertion overwrite order)
			bestBits := -1
			var bestASN ASN
			for _, e := range entries {
				if e.Prefix.Contains(a) && e.Prefix.Bits >= bestBits {
					if e.Prefix.Bits > bestBits {
						bestBits = e.Prefix.Bits
						bestASN = e.ASN
					} else {
						bestASN = e.ASN
					}
				}
			}
			got, ok := tbl.Lookup(a)
			if ok != (bestBits >= 0) {
				return false
			}
			if ok && got != bestASN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
