// Package astopo models the routing metadata the paper joins against:
// CAIDA's prefix-to-AS mapping (longest-prefix match over announced
// prefixes) and the AS-to-organization mapping (§3.3).
package astopo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dnsddos/internal/netx"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders "AS15169".
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// Org describes the organization operating one or more ASes.
type Org struct {
	Name    string
	Country string // ISO 3166-1 alpha-2
}

// Table is the prefix→AS longest-prefix-match table plus the AS→org registry.
// It is immutable after Build and safe for concurrent use.
type Table struct {
	root *node
	orgs map[ASN]Org
	n    int
}

type node struct {
	child [2]*node
	asn   ASN
	set   bool
}

// Entry is one announced prefix.
type Entry struct {
	Prefix netx.Prefix
	ASN    ASN
}

// Builder accumulates entries and org records before freezing into a Table.
type Builder struct {
	entries []Entry
	orgs    map[ASN]Org
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{orgs: make(map[ASN]Org)}
}

// Announce records that asn originates prefix. More-specific announcements
// win on lookup, matching BGP longest-prefix-match semantics.
func (b *Builder) Announce(prefix netx.Prefix, asn ASN) {
	b.entries = append(b.entries, Entry{Prefix: prefix, ASN: asn})
}

// SetOrg registers the organization for an ASN.
func (b *Builder) SetOrg(asn ASN, org Org) {
	b.orgs[asn] = org
}

// Build freezes the builder into an immutable lookup table. Duplicate
// announcements of the same prefix keep the last one, mirroring how a
// RouteViews-derived snapshot resolves to a single origin.
func (b *Builder) Build() *Table {
	t := &Table{root: &node{}, orgs: make(map[ASN]Org, len(b.orgs)), n: len(b.entries)}
	for asn, org := range b.orgs {
		t.orgs[asn] = org
	}
	for _, e := range b.entries {
		t.insert(e.Prefix, e.ASN)
	}
	return t
}

func (t *Table) insert(p netx.Prefix, asn ASN) {
	n := t.root
	for i := 0; i < p.Bits; i++ {
		bit := (uint32(p.Addr) >> (31 - uint(i))) & 1
		if n.child[bit] == nil {
			n.child[bit] = &node{}
		}
		n = n.child[bit]
	}
	n.asn = asn
	n.set = true
}

// Lookup returns the origin ASN for addr via longest-prefix match.
func (t *Table) Lookup(addr netx.Addr) (ASN, bool) {
	n := t.root
	var best ASN
	found := false
	for i := 0; i < 32 && n != nil; i++ {
		if n.set {
			best, found = n.asn, true
		}
		bit := (uint32(addr) >> (31 - uint(i))) & 1
		n = n.child[bit]
	}
	if n != nil && n.set {
		best, found = n.asn, true
	}
	return best, found
}

// OrgOf returns the organization record for an ASN.
func (t *Table) OrgOf(asn ASN) (Org, bool) {
	o, ok := t.orgs[asn]
	return o, ok
}

// OrgName returns a printable name for an ASN, falling back to "ASn".
func (t *Table) OrgName(asn ASN) string {
	if o, ok := t.orgs[asn]; ok && o.Name != "" {
		return o.Name
	}
	return asn.String()
}

// Len returns the number of announced prefixes.
func (t *Table) Len() int { return t.n }

// WriteTo serializes the table in the CAIDA pfx2as text format
// ("prefix<TAB>bits<TAB>asn") followed by org lines ("# org asn name country").
func WriteEntries(w io.Writer, entries []Entry, orgs map[ASN]Org) error {
	bw := bufio.NewWriter(w)
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Prefix.Addr != sorted[j].Prefix.Addr {
			return sorted[i].Prefix.Addr < sorted[j].Prefix.Addr
		}
		return sorted[i].Prefix.Bits < sorted[j].Prefix.Bits
	})
	for _, e := range sorted {
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\n", e.Prefix.Addr, e.Prefix.Bits, e.ASN); err != nil {
			return err
		}
	}
	asns := make([]ASN, 0, len(orgs))
	for a := range orgs {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		o := orgs[a]
		if _, err := fmt.Fprintf(bw, "# org\t%d\t%s\t%s\n", a, o.Name, o.Country); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEntries parses the format written by WriteEntries into a Builder.
func ReadEntries(r io.Reader) (*Builder, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if strings.HasPrefix(line, "# org") {
			if len(fields) < 4 {
				return nil, fmt.Errorf("astopo: line %d: malformed org record", ln)
			}
			asn, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("astopo: line %d: %w", ln, err)
			}
			country := ""
			if len(fields) >= 4 {
				country = fields[3]
			}
			b.SetOrg(ASN(asn), Org{Name: fields[2], Country: country})
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("astopo: line %d: want 3 fields, got %d", ln, len(fields))
		}
		addr, err := netx.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("astopo: line %d: %w", ln, err)
		}
		bits, err := strconv.Atoi(fields[1])
		if err != nil || bits < 0 || bits > 32 {
			return nil, fmt.Errorf("astopo: line %d: bad prefix length %q", ln, fields[1])
		}
		asn, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("astopo: line %d: %w", ln, err)
		}
		b.Announce(netx.Prefix{Addr: addr & netx.Prefix{Addr: 0, Bits: bits}.Mask(), Bits: bits}, ASN(asn))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}
