package dnsload

import (
	"context"
	"net"
	"testing"
	"time"

	"dnsddos/internal/faultinject"
	"dnsddos/internal/obs"
)

// classify_table_test.go drives every failure class through the
// faultinject wrappers in one table: the generator must attribute each
// injected fault to exactly one bucket (timeout vs dial vs decode vs
// other), with nothing leaking into neighbouring classes, and the obs
// counters must mirror the Result totals exactly.

func TestFailureClassificationTable(t *testing.T) {
	authAddr := startServer(t)
	// an address that refuses connections, deterministically
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	refusedAddr := l.Addr().String()
	l.Close()

	cases := []struct {
		name    string
		proto   Proto
		addr    string
		profile faultinject.Profile
		wrap    func(net.Conn, *faultinject.Injector) net.Conn
		// which Result field must absorb every failed query
		count func(*Result) int64
		// sent distinguishes "queries went out and failed" (true) from
		// "failure before send" (false, dial errors)
		sent bool
	}{
		{
			name:    "udp-drop-is-timeout",
			proto:   ProtoUDP,
			addr:    authAddr,
			profile: faultinject.Profile{Drop: 1},
			wrap:    func(c net.Conn, inj *faultinject.Injector) net.Conn { return faultinject.WrapDatagram(c, inj) },
			count:   func(r *Result) int64 { return r.Timeouts },
			sent:    true,
		},
		{
			name:    "udp-truncate-is-decode",
			proto:   ProtoUDP,
			addr:    authAddr,
			profile: faultinject.Profile{Truncate: 1},
			wrap:    func(c net.Conn, inj *faultinject.Injector) net.Conn { return faultinject.WrapDatagram(c, inj) },
			count:   func(r *Result) int64 { return r.DecodeErrors },
			sent:    true,
		},
		{
			name:    "tcp-abort-is-other",
			proto:   ProtoTCP,
			addr:    authAddr,
			profile: faultinject.Profile{Drop: 1}, // stream Drop = connection abort
			wrap:    func(c net.Conn, inj *faultinject.Injector) net.Conn { return faultinject.WrapStream(c, inj) },
			count:   func(r *Result) int64 { return r.Errors },
			sent:    false, // the aborted write never counts as sent
		},
		{
			name:  "tcp-refused-is-dial",
			proto: ProtoTCP,
			addr:  refusedAddr,
			count: func(r *Result) int64 { return r.DialErrors },
			sent:  false,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const queries = 6
			reg := obs.New()
			cfg := Config{
				Addr:        tc.addr,
				Names:       []string{"load.example"},
				Proto:       tc.proto,
				Concurrency: 2,
				Queries:     queries,
				Timeout:     150 * time.Millisecond,
				Metrics:     reg,
			}
			if tc.wrap != nil {
				inj := faultinject.New(13)
				inj.SetProfile(tc.profile)
				cfg.Wrap = func(c net.Conn) net.Conn { return tc.wrap(c, inj) }
			}
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Received != 0 {
				t.Fatalf("a total-fault run received %d answers", res.Received)
			}
			if got := tc.count(res); got != queries {
				t.Errorf("expected class holds %d of %d failures\nresult: %+v", got, queries, res)
			}
			if total := res.Timeouts + res.DialErrors + res.DecodeErrors + res.Errors; total != queries {
				t.Errorf("classes leak: timeout=%d dial=%d decode=%d other=%d, want %d total",
					res.Timeouts, res.DialErrors, res.DecodeErrors, res.Errors, queries)
			}
			if tc.sent && res.Sent != queries {
				t.Errorf("sent=%d, want %d (failure happens after the send)", res.Sent, queries)
			}
			if !tc.sent && res.Sent != 0 {
				t.Errorf("sent=%d, want 0 (failure happens before the send counts)", res.Sent)
			}

			// obs counters must mirror the Result exactly
			snap := reg.Snapshot()
			mirror := map[string]int64{
				"dnsload.sent":          res.Sent,
				"dnsload.received":      res.Received,
				"dnsload.timeouts":      res.Timeouts,
				"dnsload.dial_errors":   res.DialErrors,
				"dnsload.decode_errors": res.DecodeErrors,
				"dnsload.errors":        res.Errors,
			}
			for name, want := range mirror {
				if got := snap.Counters[name]; got != want {
					t.Errorf("%s = %d, Result says %d", name, got, want)
				}
			}
		})
	}
}
