package dnsload

import (
	"context"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/faultinject"
	"dnsddos/internal/netx"
	"dnsddos/internal/resolver"
)

// startServer brings up a small authoritative zone on loopback.
func startServer(t *testing.T) string {
	t.Helper()
	zone := authserver.NewZone()
	zone.AddNS("load.example", "ns1.load.example")
	zone.AddNS("load.example", "ns2.load.example")
	zone.AddA("ns1.load.example", netx.MustParseAddr("192.0.2.1"))
	zone.AddA("ns2.load.example", netx.MustParseAddr("192.0.2.2"))
	srv := authserver.NewServer(zone, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestRunUDP(t *testing.T) {
	addr := startServer(t)
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example", "missing.load.example"},
		Concurrency: 4,
		Queries:     200,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 200 {
		t.Errorf("sent = %d, want 200", res.Sent)
	}
	if res.Received < 190 {
		t.Errorf("received = %d (loss %.1f%%); loopback should deliver nearly all",
			res.Received, 100*res.LossRate())
	}
	if res.RCodes[dnswire.RCodeNoError] == 0 || res.RCodes[dnswire.RCodeNXDomain] == 0 {
		t.Errorf("rcodes = %v, want both NOERROR and NXDOMAIN", res.RCodes)
	}
	if res.LatencyQuantile(0.5) <= 0 || res.LatencyQuantile(0.99) < res.LatencyQuantile(0.5) {
		t.Errorf("quantiles out of order: p50=%v p99=%v",
			res.LatencyQuantile(0.5), res.LatencyQuantile(0.99))
	}
	if res.QPS() <= 0 {
		t.Error("achieved rate must be positive")
	}
}

func TestRunTCP(t *testing.T) {
	addr := startServer(t)
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example"},
		Proto:       ProtoTCP,
		Concurrency: 2,
		Queries:     50,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received != 50 || res.Errors != 0 {
		t.Errorf("received=%d errors=%d, want 50/0", res.Received, res.Errors)
	}
	if res.RCodes[dnswire.RCodeNoError] != 50 {
		t.Errorf("rcodes = %v", res.RCodes)
	}
}

func TestRunPacedDuration(t *testing.T) {
	addr := startServer(t)
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example"},
		Concurrency: 2,
		TargetQPS:   400,
		Duration:    500 * time.Millisecond,
		Timeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 400 q/s over 0.5 s ≈ 200 queries; allow wide scheduling slack but
	// catch a broken pacer (which would send tens of thousands)
	if res.Sent < 20 || res.Sent > 400 {
		t.Errorf("paced run sent %d queries, want ≈200", res.Sent)
	}
}

func TestHistogramAndSummary(t *testing.T) {
	addr := startServer(t)
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example"},
		Concurrency: 2,
		Queries:     40,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := res.LatencyHistogram(10)
	if h.N != res.Received {
		t.Errorf("histogram holds %d samples, want %d", h.N, res.Received)
	}
	var binned int64
	for _, c := range h.Counts {
		binned += c
	}
	if binned+h.Under+h.Over != h.N {
		t.Errorf("histogram bins lose samples: %d+%d+%d != %d", binned, h.Under, h.Over, h.N)
	}
	sum := res.Summary()
	for _, want := range []string{"sent 40", "latency p50", "NOERROR"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Names: []string{"x"}}); err == nil {
		t.Error("missing addr must error")
	}
	if _, err := Run(context.Background(), Config{Addr: "127.0.0.1:1"}); err == nil {
		t.Error("missing names must error")
	}
	if _, err := Run(context.Background(), Config{Addr: "127.0.0.1:1", Names: []string{"x"}, Proto: "smoke"}); err == nil {
		t.Error("unknown proto must error")
	}
}

// garbleConn is a test wrapper that mangles every inbound datagram so it
// can never decode, while letting queries out intact.
type garbleConn struct{ net.Conn }

func (g garbleConn) Read(p []byte) (int, error) {
	n, err := g.Conn.Read(p)
	if n > 2 {
		n = 2 // too short for a DNS header: guaranteed decode failure
	}
	return n, err
}

// TestFailureClassificationTimeout: a client socket that drops every
// datagram turns the whole run into classified timeouts, not generic
// errors.
func TestFailureClassificationTimeout(t *testing.T) {
	addr := startServer(t)
	inj := faultinject.New(7)
	inj.SetProfile(faultinject.Profile{Drop: 1})
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example"},
		Concurrency: 2,
		Queries:     10,
		Timeout:     150 * time.Millisecond,
		Wrap:        func(c net.Conn) net.Conn { return faultinject.WrapDatagram(c, inj) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received != 0 {
		t.Fatalf("total loss run received %d answers", res.Received)
	}
	if res.Timeouts != res.Sent || res.Timeouts == 0 {
		t.Errorf("timeouts=%d sent=%d; every lost query must classify as timeout", res.Timeouts, res.Sent)
	}
	if res.DialErrors != 0 || res.DecodeErrors != 0 || res.Errors != 0 {
		t.Errorf("misclassified: dial=%d decode=%d other=%d", res.DialErrors, res.DecodeErrors, res.Errors)
	}
	sum := res.Summary()
	if !strings.Contains(sum, "failures: timeout=") {
		t.Errorf("summary missing the failure breakdown:\n%s", sum)
	}
}

// TestFailureClassificationDecode: answers that arrive but cannot decode
// classify as decode failures (corruption), distinct from loss.
func TestFailureClassificationDecode(t *testing.T) {
	addr := startServer(t)
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example"},
		Concurrency: 2,
		Queries:     6,
		Timeout:     150 * time.Millisecond,
		Wrap:        func(c net.Conn) net.Conn { return garbleConn{c} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodeErrors != res.Sent || res.DecodeErrors == 0 {
		t.Errorf("decode=%d sent=%d; garbled answers must classify as decode failures", res.DecodeErrors, res.Sent)
	}
	if res.Timeouts != 0 {
		t.Errorf("garbled answers misclassified as %d timeouts", res.Timeouts)
	}
	if !strings.Contains(res.Summary(), "decode=") {
		t.Errorf("summary missing decode breakdown:\n%s", res.Summary())
	}
}

// TestFailureClassificationDial: an unreachable TCP target counts as
// dial failures without inflating Sent.
func TestFailureClassificationDial(t *testing.T) {
	// a listener we immediately close: connection refused, deterministically
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example"},
		Proto:       ProtoTCP,
		Concurrency: 1,
		Queries:     5,
		Timeout:     200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DialErrors != 5 {
		t.Errorf("dial errors = %d, want 5", res.DialErrors)
	}
	if res.Sent != 0 {
		t.Errorf("refused dials must not count as sent queries, got %d", res.Sent)
	}
}

// TestPartialLossClassification: seeded 50%% loss yields a mix of
// answers and timeouts whose counts add up.
func TestPartialLossClassification(t *testing.T) {
	addr := startServer(t)
	inj := faultinject.New(99)
	inj.SetProfile(faultinject.Profile{Drop: 0.5})
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example"},
		Concurrency: 2,
		Queries:     40,
		Timeout:     150 * time.Millisecond,
		Wrap:        func(c net.Conn) net.Conn { return faultinject.WrapDatagram(c, inj) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 || res.Timeouts == 0 {
		t.Fatalf("50%% loss should mix answers (%d) and timeouts (%d)", res.Received, res.Timeouts)
	}
	if res.Received+res.Timeouts != res.Sent {
		t.Errorf("classification leaks queries: recv %d + timeout %d != sent %d",
			res.Received, res.Timeouts, res.Sent)
	}
}

// TestRunWithClient routes the load through a resolver.Client instead of
// raw sockets: accounting (sent/received/rcodes/truncated/timeouts) must
// come from the client's answers, and no real connection is dialed — the
// target address is never resolved.
func TestRunWithClient(t *testing.T) {
	var calls atomic.Int64
	stub := resolver.ClientFunc(func(ctx context.Context, addr, name string, qtype dnswire.Type) (*dnswire.Message, time.Duration, error) {
		if addr != "client.invalid:53" {
			t.Errorf("client got addr %q", addr)
		}
		n := calls.Add(1)
		if n%10 == 0 {
			return nil, 0, context.DeadlineExceeded
		}
		msg := &dnswire.Message{}
		msg.Header.Response = true
		msg.Header.RCode = dnswire.RCodeNoError
		if n%7 == 0 {
			msg.Header.Truncated = true
		}
		return msg, 3 * time.Millisecond, nil
	})
	res, err := Run(context.Background(), Config{
		Addr:        "client.invalid:53", // never dialed in client mode
		Names:       []string{"load.example"},
		Concurrency: 4,
		Queries:     100,
		Timeout:     time.Second,
		Client:      stub,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 100 {
		t.Errorf("sent = %d, want 100", res.Sent)
	}
	if res.Received != 90 {
		t.Errorf("received = %d, want 90 (10%% injected timeouts)", res.Received)
	}
	if res.Timeouts != 10 {
		t.Errorf("timeouts = %d, want 10", res.Timeouts)
	}
	if res.Truncated == 0 {
		t.Error("truncated answers must be counted in client mode")
	}
	if res.RCodes[dnswire.RCodeNoError] != 90 {
		t.Errorf("rcodes = %v", res.RCodes)
	}
	if res.LatencyQuantile(0.5) != 3*time.Millisecond {
		t.Errorf("p50 = %v, want the client-reported 3ms", res.LatencyQuantile(0.5))
	}
}
