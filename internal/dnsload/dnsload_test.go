package dnsload

import (
	"context"
	"strings"
	"testing"
	"time"

	"dnsddos/internal/authserver"
	"dnsddos/internal/dnswire"
	"dnsddos/internal/netx"
)

// startServer brings up a small authoritative zone on loopback.
func startServer(t *testing.T) string {
	t.Helper()
	zone := authserver.NewZone()
	zone.AddNS("load.example", "ns1.load.example")
	zone.AddNS("load.example", "ns2.load.example")
	zone.AddA("ns1.load.example", netx.MustParseAddr("192.0.2.1"))
	zone.AddA("ns2.load.example", netx.MustParseAddr("192.0.2.2"))
	srv := authserver.NewServer(zone, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestRunUDP(t *testing.T) {
	addr := startServer(t)
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example", "missing.load.example"},
		Concurrency: 4,
		Queries:     200,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 200 {
		t.Errorf("sent = %d, want 200", res.Sent)
	}
	if res.Received < 190 {
		t.Errorf("received = %d (loss %.1f%%); loopback should deliver nearly all",
			res.Received, 100*res.LossRate())
	}
	if res.RCodes[dnswire.RCodeNoError] == 0 || res.RCodes[dnswire.RCodeNXDomain] == 0 {
		t.Errorf("rcodes = %v, want both NOERROR and NXDOMAIN", res.RCodes)
	}
	if res.LatencyQuantile(0.5) <= 0 || res.LatencyQuantile(0.99) < res.LatencyQuantile(0.5) {
		t.Errorf("quantiles out of order: p50=%v p99=%v",
			res.LatencyQuantile(0.5), res.LatencyQuantile(0.99))
	}
	if res.QPS() <= 0 {
		t.Error("achieved rate must be positive")
	}
}

func TestRunTCP(t *testing.T) {
	addr := startServer(t)
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example"},
		Proto:       ProtoTCP,
		Concurrency: 2,
		Queries:     50,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received != 50 || res.Errors != 0 {
		t.Errorf("received=%d errors=%d, want 50/0", res.Received, res.Errors)
	}
	if res.RCodes[dnswire.RCodeNoError] != 50 {
		t.Errorf("rcodes = %v", res.RCodes)
	}
}

func TestRunPacedDuration(t *testing.T) {
	addr := startServer(t)
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example"},
		Concurrency: 2,
		TargetQPS:   400,
		Duration:    500 * time.Millisecond,
		Timeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 400 q/s over 0.5 s ≈ 200 queries; allow wide scheduling slack but
	// catch a broken pacer (which would send tens of thousands)
	if res.Sent < 20 || res.Sent > 400 {
		t.Errorf("paced run sent %d queries, want ≈200", res.Sent)
	}
}

func TestHistogramAndSummary(t *testing.T) {
	addr := startServer(t)
	res, err := Run(context.Background(), Config{
		Addr:        addr,
		Names:       []string{"load.example"},
		Concurrency: 2,
		Queries:     40,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := res.LatencyHistogram(10)
	if h.N != res.Received {
		t.Errorf("histogram holds %d samples, want %d", h.N, res.Received)
	}
	var binned int64
	for _, c := range h.Counts {
		binned += c
	}
	if binned+h.Under+h.Over != h.N {
		t.Errorf("histogram bins lose samples: %d+%d+%d != %d", binned, h.Under, h.Over, h.N)
	}
	sum := res.Summary()
	for _, want := range []string{"sent 40", "latency p50", "NOERROR"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Names: []string{"x"}}); err == nil {
		t.Error("missing addr must error")
	}
	if _, err := Run(context.Background(), Config{Addr: "127.0.0.1:1"}); err == nil {
		t.Error("missing names must error")
	}
	if _, err := Run(context.Background(), Config{Addr: "127.0.0.1:1", Names: []string{"x"}, Proto: "smoke"}); err == nil {
		t.Error("unknown proto must error")
	}
}
