// Package dnsload is a DNS load generator in the style of dnsperfbench:
// it fans a query stream out over a configurable number of concurrent
// senders, optionally paced to a target aggregate query rate, and reports
// latency quantiles, loss, and response-code counts built on
// internal/stats. The authoritative-server throughput benchmarks and the
// livedns example use it to measure what the concurrent serving engine
// actually sustains — authoritative capacity under load being the first
// layer of DDoS defense (Rizvi et al.).
package dnsload

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dnsddos/internal/dnswire"
	"dnsddos/internal/obs"
	"dnsddos/internal/resolver"
	"dnsddos/internal/stats"
)

// Proto selects the query transport.
type Proto string

// Transports: plain UDP datagrams or length-prefixed DNS-over-TCP.
const (
	ProtoUDP Proto = "udp"
	ProtoTCP Proto = "tcp"
)

// Config describes one load run.
type Config struct {
	// Addr is the server's "host:port".
	Addr string
	// Names are the query names, cycled round-robin per sender.
	Names []string
	// Type is the query type; zero means NS (the paper's probe type).
	Type dnswire.Type
	// Proto is the transport; empty means UDP.
	Proto Proto
	// Concurrency is the sender fan-out; zero means 8. Each sender owns
	// one socket (UDP) or one connection (TCP) for its whole run.
	Concurrency int
	// TargetQPS paces the aggregate send rate (open-loop); zero means
	// unthrottled — each sender issues its next query as soon as the
	// previous one resolves.
	TargetQPS float64
	// Queries is the total number of queries to issue. Zero means run
	// until Duration elapses.
	Queries int
	// Duration bounds the run when Queries is zero; zero means 1s.
	Duration time.Duration
	// Timeout bounds one query round trip; zero means 2s. A query that
	// times out counts as lost.
	Timeout time.Duration
	// EDNSPayload, when nonzero, attaches an EDNS OPT record advertising
	// this UDP payload size.
	EDNSPayload uint16
	// Wrap, when set, wraps each sender's socket before traffic flows —
	// the client-side fault-injection hook (e.g. a closure over
	// faultinject.WrapDatagram for UDP or WrapStream for TCP).
	Wrap func(net.Conn) net.Conn
	// Client, when set, routes every query through this transport-
	// agnostic resolver.Client instead of the raw socket engine — e.g. a
	// *resolver.LiveResolver for load with retries and TC→TCP fallback,
	// or a ClientFunc stub. The Client owns transport concerns, so
	// Proto, EDNSPayload and Wrap are ignored; pacing, concurrency and
	// outcome accounting work the same either way.
	Client resolver.Client
	// Metrics, when non-nil, receives live per-query observations under
	// dnsload.* names (rtt histogram plus sent/received/failure-class
	// counters) so a -metrics-addr endpoint can watch a run mid-flight.
	// The final Result carries the same totals either way.
	Metrics *obs.Registry
}

// Result aggregates a finished run.
type Result struct {
	// Sent/Received count queries issued and answers matched. Failed
	// queries are classified so degradation experiments can tell drops
	// from decode garbage from dial failures: Timeouts are queries with
	// no answer inside Timeout (UDP loss under overload); DialErrors
	// are connection-setup failures; DecodeErrors are queries whose
	// only answer(s) inside the deadline failed to decode (corruption);
	// Errors are the remaining transport-level failures. RCODE-level
	// failures (SERVFAIL etc.) count as Received and show in RCodes.
	Sent         int64
	Received     int64
	Timeouts     int64
	DialErrors   int64
	DecodeErrors int64
	Errors       int64
	// RCodes counts answers by response code; Truncated counts answers
	// carrying the TC bit.
	RCodes    map[dnswire.RCode]int64
	Truncated int64
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration

	// latencies holds one sample per received answer, sorted ascending.
	latencies []float64 // seconds
}

// ServFails returns the count of answers carrying a SERVFAIL rcode — the
// paper's second failure class next to timeouts (§6.3.1).
func (r *Result) ServFails() int64 { return r.RCodes[dnswire.RCodeServFail] }

// Latencies returns a copy of the per-answer latency samples in
// seconds, sorted ascending — one per received answer. Callers that
// aggregate several runs (the e2ebench round loop) merge these and
// re-sort rather than averaging quantiles.
func (r *Result) Latencies() []float64 {
	out := make([]float64, len(r.latencies))
	copy(out, r.latencies)
	return out
}

// QPS returns the achieved answer rate (answers per wall-clock second).
func (r *Result) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Received) / r.Elapsed.Seconds()
}

// LossRate returns the fraction of issued queries that timed out or
// errored.
func (r *Result) LossRate() float64 {
	return stats.Ratio(float64(r.Sent-r.Received), float64(r.Sent))
}

// LatencyQuantile returns the q-quantile (0 ≤ q ≤ 1) of answer latency.
func (r *Result) LatencyQuantile(q float64) time.Duration {
	return time.Duration(stats.Quantile(r.latencies, q) * float64(time.Second))
}

// MeanLatency returns the mean answer latency.
func (r *Result) MeanLatency() time.Duration {
	return time.Duration(stats.Mean(r.latencies) * float64(time.Second))
}

// LatencyHistogram bins the latency samples into the given number of
// equal-width bins spanning [0, max-sample].
func (r *Result) LatencyHistogram(bins int) *stats.Histogram {
	max := stats.Quantile(r.latencies, 1)
	if max <= 0 {
		max = 1e-9
	}
	h := stats.NewHistogram(0, max*1.0001, bins)
	for _, l := range r.latencies {
		h.Add(l)
	}
	return h
}

// Summary renders the run as a short human-readable report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent %d  answered %d  loss %.2f%%  rate %.0f q/s  elapsed %s\n",
		r.Sent, r.Received, 100*r.LossRate(), r.QPS(), r.Elapsed.Round(time.Millisecond))
	if fails := r.Timeouts + r.DialErrors + r.DecodeErrors + r.Errors; fails > 0 {
		fmt.Fprintf(&b, "failures: timeout=%d dial=%d decode=%d other=%d\n",
			r.Timeouts, r.DialErrors, r.DecodeErrors, r.Errors)
	}
	if r.Received > 0 {
		fmt.Fprintf(&b, "latency p50 %s  p90 %s  p99 %s  max %s\n",
			r.LatencyQuantile(0.50).Round(time.Microsecond),
			r.LatencyQuantile(0.90).Round(time.Microsecond),
			r.LatencyQuantile(0.99).Round(time.Microsecond),
			r.LatencyQuantile(1).Round(time.Microsecond))
	}
	codes := make([]dnswire.RCode, 0, len(r.RCodes))
	for rc := range r.RCodes {
		codes = append(codes, rc)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	for i, rc := range codes {
		if i == 0 {
			b.WriteString("rcodes:")
		}
		fmt.Fprintf(&b, " %s=%d", rc, r.RCodes[rc])
	}
	if len(codes) > 0 {
		b.WriteByte('\n')
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, "truncated: %d\n", r.Truncated)
	}
	return b.String()
}

// senderResult is one sender's private tally, merged after the run.
type senderResult struct {
	sent, received, timeouts, errors int64
	dialErrs, decodeErrs             int64
	truncated                        int64
	rcodes                           map[dnswire.RCode]int64
	latencies                        []float64
}

// loadMetrics mirrors the senderResult tallies into a registry as the
// run progresses. All fields no-op when Config.Metrics is nil.
type loadMetrics struct {
	sent       *obs.Counter
	received   *obs.Counter
	timeouts   *obs.Counter
	dialErrs   *obs.Counter
	decodeErrs *obs.Counter
	errors     *obs.Counter
	truncated  *obs.Counter
	rtt        *obs.Histogram
}

func newLoadMetrics(reg *obs.Registry) loadMetrics {
	return loadMetrics{
		sent:       reg.Counter("dnsload.sent"),
		received:   reg.Counter("dnsload.received"),
		timeouts:   reg.Counter("dnsload.timeouts"),
		dialErrs:   reg.Counter("dnsload.dial_errors"),
		decodeErrs: reg.Counter("dnsload.decode_errors"),
		errors:     reg.Counter("dnsload.errors"),
		truncated:  reg.Counter("dnsload.truncated"),
		rtt:        reg.Histogram("dnsload.rtt"),
	}
}

// failKind classifies one failed query.
type failKind int

const (
	failNone failKind = iota
	failDial
	failTimeout
	failDecode
	failOther
)

// Run executes the configured load against cfg.Addr and returns the
// aggregate result. It honors ctx cancellation.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Addr == "" {
		return nil, errors.New("dnsload: no target address")
	}
	if len(cfg.Names) == 0 {
		return nil, errors.New("dnsload: no query names")
	}
	proto := cfg.Proto
	if proto == "" {
		proto = ProtoUDP
	}
	if proto != ProtoUDP && proto != ProtoTCP {
		return nil, fmt.Errorf("dnsload: unknown proto %q", proto)
	}
	qtype := cfg.Type
	if qtype == 0 {
		qtype = dnswire.TypeNS
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 8
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	runCtx := ctx
	if cfg.Queries <= 0 {
		dur := cfg.Duration
		if dur <= 0 {
			dur = time.Second
		}
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, dur)
		defer cancel()
	}

	// open-loop pacing: each sender spaces its sends so the fleet hits
	// TargetQPS in aggregate
	var interval time.Duration
	if cfg.TargetQPS > 0 {
		interval = time.Duration(float64(time.Second) * float64(conc) / cfg.TargetQPS)
	}

	var issued atomic.Int64
	next := func() bool {
		if runCtx.Err() != nil {
			return false
		}
		if cfg.Queries > 0 {
			return issued.Add(1) <= int64(cfg.Queries)
		}
		return true
	}

	m := newLoadMetrics(cfg.Metrics)
	cfg.Metrics.Gauge("dnsload.concurrency").Set(int64(conc))
	results := make([]senderResult, conc)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			s := sender{
				cfg:      cfg,
				proto:    proto,
				qtype:    qtype,
				timeout:  timeout,
				interval: interval,
				id:       uint16(idx+1) << 8,
				res:      &results[idx],
				m:        m,
				next:     next,
				ctx:      runCtx,
			}
			s.run()
		}(i)
	}
	wg.Wait()

	out := &Result{Elapsed: time.Since(start), RCodes: make(map[dnswire.RCode]int64)}
	for i := range results {
		r := &results[i]
		out.Sent += r.sent
		out.Received += r.received
		out.Timeouts += r.timeouts
		out.DialErrors += r.dialErrs
		out.DecodeErrors += r.decodeErrs
		out.Errors += r.errors
		out.Truncated += r.truncated
		for rc, n := range r.rcodes {
			out.RCodes[rc] += n
		}
		out.latencies = append(out.latencies, r.latencies...)
	}
	sort.Float64s(out.latencies)
	return out, nil
}

// sender drives one socket's query loop.
type sender struct {
	cfg      Config
	proto    Proto
	qtype    dnswire.Type
	timeout  time.Duration
	interval time.Duration
	id       uint16
	res      *senderResult
	m        loadMetrics
	next     func() bool
	ctx      context.Context

	conn   net.Conn
	buf    []byte
	nextAt time.Time
}

func (s *sender) run() {
	s.res.rcodes = make(map[dnswire.RCode]int64)
	s.buf = make([]byte, 65536)
	defer func() {
		if s.conn != nil {
			s.conn.Close()
		}
	}()
	query := s.oneQuery
	if s.cfg.Client != nil {
		query = s.oneQueryClient
	}
	for qi := 0; s.next(); qi++ {
		s.pace()
		name := s.cfg.Names[qi%len(s.cfg.Names)]
		s.id++
		switch query(name) {
		case failNone:
		case failDial:
			s.res.dialErrs++
			s.m.dialErrs.Inc()
		case failTimeout:
			s.res.timeouts++
			s.m.timeouts.Inc()
		case failDecode:
			s.res.decodeErrs++
			s.m.decodeErrs.Inc()
			s.redialTCP()
		default:
			s.res.errors++
			s.m.errors.Inc()
			s.redialTCP()
		}
	}
}

// redialTCP drops a broken TCP connection so the next query redials.
func (s *sender) redialTCP() {
	if s.proto == ProtoTCP && s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// pace sleeps until this sender's next send slot. A sender that falls
// behind (slow answers) sends immediately rather than accumulating debt.
func (s *sender) pace() {
	if s.interval <= 0 {
		return
	}
	now := time.Now()
	if s.nextAt.IsZero() || s.nextAt.Before(now.Add(-10*s.interval)) {
		s.nextAt = now
	}
	if d := s.nextAt.Sub(now); d > 0 {
		select {
		case <-time.After(d):
		case <-s.ctx.Done():
		}
	}
	s.nextAt = s.nextAt.Add(s.interval)
}

// oneQuery issues a single query and records its outcome, classifying
// any failure.
func (s *sender) oneQuery(name string) failKind {
	if s.conn == nil {
		var d net.Dialer
		conn, err := d.DialContext(s.ctx, string(s.proto), s.cfg.Addr)
		if err != nil {
			return failDial
		}
		if s.cfg.Wrap != nil {
			conn = s.cfg.Wrap(conn)
		}
		s.conn = conn
	}
	q := dnswire.NewQuery(s.id, name, s.qtype)
	if s.cfg.EDNSPayload > 0 {
		q.AttachEDNS(dnswire.EDNS{UDPPayload: s.cfg.EDNSPayload})
	}
	wire, err := dnswire.Encode(q)
	if err != nil {
		return failOther
	}
	if err := s.conn.SetDeadline(time.Now().Add(s.timeout)); err != nil {
		return failOther
	}
	start := time.Now()
	if s.proto == ProtoTCP {
		framed := make([]byte, 2+len(wire))
		binary.BigEndian.PutUint16(framed, uint16(len(wire)))
		copy(framed[2:], wire)
		wire = framed
	}
	if _, err := s.conn.Write(wire); err != nil {
		return classifyErr(err, false)
	}
	s.res.sent++
	s.m.sent.Inc()
	sawGarbage := false
	for {
		var payload []byte
		if s.proto == ProtoTCP {
			var lenb [2]byte
			if _, err := io.ReadFull(s.conn, lenb[:]); err != nil {
				return classifyErr(err, sawGarbage)
			}
			n := int(binary.BigEndian.Uint16(lenb[:]))
			if _, err := io.ReadFull(s.conn, s.buf[:n]); err != nil {
				return classifyErr(err, sawGarbage)
			}
			payload = s.buf[:n]
		} else {
			n, err := s.conn.Read(s.buf)
			if err != nil {
				return classifyErr(err, sawGarbage)
			}
			payload = s.buf[:n]
		}
		m, err := dnswire.Decode(payload)
		if err != nil {
			// garbage on the wire (corruption); a valid answer may
			// still arrive before the deadline
			sawGarbage = true
			continue
		}
		if !m.Header.Response || m.Header.ID != s.id {
			continue // stale answer to an earlier timed-out query
		}
		rtt := time.Since(start)
		s.res.received++
		s.m.received.Inc()
		s.res.latencies = append(s.res.latencies, rtt.Seconds())
		s.m.rtt.Observe(rtt)
		s.res.rcodes[m.Header.RCode]++
		if m.Header.Truncated {
			s.res.truncated++
			s.m.truncated.Inc()
		}
		return failNone
	}
}

// oneQueryClient issues one query through the configured resolver.Client
// instead of the raw socket engine. The Client reports the RTT it
// measured (for a LiveResolver that is the cumulative resolution time
// including retries — the Eq. 1 RTT); failures classify by error type
// (timeouts vs everything else; the Client owns dial/decode internals).
func (s *sender) oneQueryClient(name string) failKind {
	ctx, cancel := context.WithTimeout(s.ctx, s.timeout)
	defer cancel()
	s.res.sent++
	s.m.sent.Inc()
	msg, rtt, err := s.cfg.Client.Query(ctx, s.cfg.Addr, name, s.qtype)
	if err != nil {
		return classifyErr(err, false)
	}
	s.res.received++
	s.m.received.Inc()
	s.res.latencies = append(s.res.latencies, rtt.Seconds())
	s.m.rtt.Observe(rtt)
	s.res.rcodes[msg.Header.RCode]++
	if msg.Header.Truncated {
		s.res.truncated++
		s.m.truncated.Inc()
	}
	return failNone
}

// classifyErr maps a transport error to a failure class. A deadline that
// expired after only undecodable datagrams arrived classifies as a
// decode failure — the response was delivered but corrupted — rather
// than as loss.
func classifyErr(err error, sawGarbage bool) failKind {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		if sawGarbage {
			return failDecode
		}
		return failTimeout
	}
	return failOther
}
