package dnsdb

import (
	"testing"
	"time"

	"dnsddos/internal/netx"
)

func buildTestDB(t *testing.T) (*DB, []NameserverID) {
	t.Helper()
	db := New()
	pid := db.AddProvider(Provider{Name: "TestDNS", Country: "NL"})
	var ids []NameserverID
	for i, addr := range []string{"192.0.2.1", "192.0.2.2", "198.51.100.1"} {
		id, err := db.AddNameserver(Nameserver{
			Host:        "ns" + string(rune('1'+i)) + ".test.example",
			Addr:        netx.MustParseAddr(addr),
			Provider:    pid,
			CapacityPPS: 1e5,
			BaseRTT:     10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	db.AddDomain(Domain{Name: "a.example", NS: []NameserverID{ids[0], ids[1]}})
	db.AddDomain(Domain{Name: "b.example", NS: []NameserverID{ids[0], ids[1], ids[2]}})
	db.AddDomain(Domain{Name: "c.example", NS: []NameserverID{ids[2]}})
	db.Freeze()
	return db, ids
}

func TestNameserverByAddr(t *testing.T) {
	db, ids := buildTestDB(t)
	ns, ok := db.NameserverByAddr(netx.MustParseAddr("192.0.2.2"))
	if !ok || ns.ID != ids[1] {
		t.Errorf("lookup = %+v, %v", ns, ok)
	}
	if _, ok := db.NameserverByAddr(netx.MustParseAddr("203.0.113.1")); ok {
		t.Error("unknown address should miss")
	}
}

func TestDuplicateNameserverAddrRejected(t *testing.T) {
	db := New()
	pid := db.AddProvider(Provider{Name: "P"})
	if _, err := db.AddNameserver(Nameserver{Addr: 1, Provider: pid}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddNameserver(Nameserver{Addr: 1, Provider: pid}); err == nil {
		t.Error("duplicate address should be rejected")
	}
}

func TestDomainsOfReverseIndex(t *testing.T) {
	db, ids := buildTestDB(t)
	if got := db.NumDomainsOf(ids[0]); got != 2 {
		t.Errorf("ns0 hosts %d domains, want 2", got)
	}
	if got := db.NumDomainsOf(ids[2]); got != 2 {
		t.Errorf("ns2 hosts %d domains, want 2", got)
	}
	seen := map[string]bool{}
	for _, d := range db.DomainsOf(ids[2]) {
		seen[db.Domains[d].Name] = true
	}
	if !seen["b.example"] || !seen["c.example"] {
		t.Errorf("ns2 domains = %v", seen)
	}
}

func TestDomainNSSortedDeduped(t *testing.T) {
	db := New()
	pid := db.AddProvider(Provider{Name: "P"})
	a, _ := db.AddNameserver(Nameserver{Addr: 10, Provider: pid})
	b, _ := db.AddNameserver(Nameserver{Addr: 5, Provider: pid})
	did := db.AddDomain(Domain{Name: "x.example", NS: []NameserverID{b, a, a, b}})
	db.Freeze()
	ns := db.Domains[did].NS
	// sorted by NameserverID and deduplicated
	if len(ns) != 2 || ns[0] != a || ns[1] != b {
		t.Errorf("NS list = %v, want sorted dedup [%d %d]", ns, a, b)
	}
}

func TestNSAddrsSorted(t *testing.T) {
	db, _ := buildTestDB(t)
	addrs := db.NSAddrs(1) // b.example
	if len(addrs) != 3 {
		t.Fatalf("addrs = %v", addrs)
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i-1] >= addrs[i] {
			t.Errorf("addrs not sorted: %v", addrs)
		}
	}
}

func TestFreezeGuards(t *testing.T) {
	db, _ := buildTestDB(t)
	defer func() {
		if recover() == nil {
			t.Error("mutation after Freeze should panic")
		}
	}()
	db.AddDomain(Domain{Name: "late.example"})
}

func TestDomainsOfBeforeFreezePanics(t *testing.T) {
	db := New()
	pid := db.AddProvider(Provider{Name: "P"})
	id, _ := db.AddNameserver(Nameserver{Addr: 1, Provider: pid})
	defer func() {
		if recover() == nil {
			t.Error("DomainsOf before Freeze should panic")
		}
	}()
	db.DomainsOf(id)
}

func TestProviderOf(t *testing.T) {
	db, ids := buildTestDB(t)
	if p := db.ProviderOf(ids[0]); p.Name != "TestDNS" {
		t.Errorf("ProviderOf = %+v", p)
	}
}

func TestScrubbingAt(t *testing.T) {
	var p Provider
	if p.ScrubbingAt(time.Now()) {
		t.Error("zero ScrubbingSince means never")
	}
	since := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	p.ScrubbingSince = since
	if p.ScrubbingAt(since.Add(-time.Second)) {
		t.Error("before deployment")
	}
	if !p.ScrubbingAt(since) || !p.ScrubbingAt(since.Add(time.Hour)) {
		t.Error("at/after deployment")
	}
}

func TestAllNSAddrs(t *testing.T) {
	db, ids := buildTestDB(t)
	all := db.AllNSAddrs()
	if len(all) != 3 {
		t.Fatalf("AllNSAddrs = %d entries", len(all))
	}
	if all[netx.MustParseAddr("192.0.2.1")] != ids[0] {
		t.Error("wrong mapping")
	}
	// mutation of the returned map must not affect the DB
	delete(all, netx.MustParseAddr("192.0.2.1"))
	if _, ok := db.NameserverByAddr(netx.MustParseAddr("192.0.2.1")); !ok {
		t.Error("returned map should be a copy")
	}
}

func TestDeploymentString(t *testing.T) {
	if DeployUnicast.String() != "unicast" || DeployAnycast.String() != "anycast" ||
		DeployPartialAnycast.String() != "partial-anycast" {
		t.Error("deployment strings")
	}
}

func TestSitesDefaultsToOne(t *testing.T) {
	db := New()
	pid := db.AddProvider(Provider{Name: "P"})
	id, _ := db.AddNameserver(Nameserver{Addr: 1, Provider: pid, Sites: 0})
	if db.Nameservers[id].Sites != 1 {
		t.Errorf("Sites = %d, want 1", db.Nameservers[id].Sites)
	}
}
