// Package attacksim generates DDoS attack traffic for the reproduction.
//
// The paper's telescope observes randomly-and-uniformly-spoofed (RSDoS)
// attacks only (§2.1); reflected and direct attacks are invisible to it but
// still harm the victim, which is one source of the weak intensity/impact
// correlation in §6.4. The engine therefore models three vectors and lets
// the data plane (internal/simnet) see all of them while the telescope sees
// only the spoofed one.
//
// Two fidelity levels share one Spec type:
//
//   - Packet level: Flood emits individual spoofed attack packets
//     (internal/packet) which internal/backscatter turns into victim
//     responses; used for case studies and tests.
//   - Flow level: WindowLoad reports the victim-side attack rate per
//     5-minute window; the telescope's thinned sampler and the simnet load
//     model consume it directly for the 17-month longitudinal runs.
package attacksim

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
)

// Vector is the attack mechanism.
type Vector int

// Attack vectors.
const (
	// VectorRandomSpoofed: volumetric flood with uniformly spoofed
	// sources; the only vector producing telescope-visible backscatter.
	VectorRandomSpoofed Vector = iota
	// VectorReflection: reflected/amplified traffic (spoofed victim
	// address at reflectors); invisible to the telescope.
	VectorReflection
	// VectorDirect: unspoofed traffic from attacking infrastructure;
	// also invisible to the telescope.
	VectorDirect
)

// String renders the vector name.
func (v Vector) String() string {
	switch v {
	case VectorRandomSpoofed:
		return "random-spoofed"
	case VectorReflection:
		return "reflection"
	case VectorDirect:
		return "direct"
	default:
		return fmt.Sprintf("vector(%d)", int(v))
	}
}

// Spec describes one attack component: a single vector against a single
// target. Multi-vector attacks are several Specs sharing a GroupID.
type Spec struct {
	ID      int
	GroupID int // shared by components of a multi-vector attack
	Target  netx.Addr
	Vector  Vector
	Proto   packet.Protocol
	// Ports are the targeted destination ports; most attacks target a
	// single port (§6.2: 80.7% single port/proto).
	Ports []uint16
	Start time.Time
	End   time.Time
	// PPS is the packet rate arriving at the victim.
	PPS float64
	// PacketBytes is the mean attack packet size, used for the inferred
	// traffic-volume (Gbps) figures in Table 2.
	PacketBytes int
	// SpoofedSources is the number of distinct spoofed source addresses
	// the attacker cycles through; for uniform spoofing this is
	// effectively unbounded and sources are drawn fresh per packet.
	// Zero means uniform-random per packet.
	SpoofedSources int
}

// Duration returns the attack component duration.
func (s *Spec) Duration() time.Duration { return s.End.Sub(s.Start) }

// ActiveIn reports whether the attack overlaps window w, and the fraction
// of the window it covers (for partial first/last windows).
func (s *Spec) ActiveIn(w clock.Window) (float64, bool) {
	ws, we := w.Start(), w.End()
	if !s.Start.Before(we) || !s.End.After(ws) {
		return 0, false
	}
	from := ws
	if s.Start.After(from) {
		from = s.Start
	}
	to := we
	if s.End.Before(to) {
		to = s.End
	}
	return float64(to.Sub(from)) / float64(clock.WindowDur), true
}

// WindowLoad returns the mean victim-side packet rate contributed by the
// attack during window w (0 when inactive).
func (s *Spec) WindowLoad(w clock.Window) float64 {
	frac, ok := s.ActiveIn(w)
	if !ok {
		return 0
	}
	return s.PPS * frac
}

// Gbps returns the attack bandwidth implied by PPS and PacketBytes.
func (s *Spec) Gbps() float64 { return s.PPS * float64(s.PacketBytes) * 8 / 1e9 }

// Schedule is an immutable, time-indexed collection of attack specs.
type Schedule struct {
	specs []Spec // sorted by Start
}

// NewSchedule builds a schedule (specs are copied and sorted by start time;
// IDs are assigned sequentially if zero).
func NewSchedule(specs []Spec) *Schedule {
	s := make([]Spec, len(specs))
	copy(s, specs)
	sort.SliceStable(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	for i := range s {
		if s[i].ID == 0 {
			s[i].ID = i + 1
		}
		if s[i].GroupID == 0 {
			s[i].GroupID = s[i].ID
		}
	}
	return &Schedule{specs: s}
}

// Specs returns all specs in start order (shared slice; read-only).
func (sc *Schedule) Specs() []Spec { return sc.specs }

// Len returns the number of attack components.
func (sc *Schedule) Len() int { return len(sc.specs) }

// ActiveAt returns the specs overlapping window w.
func (sc *Schedule) ActiveAt(w clock.Window) []Spec {
	var out []Spec
	// specs sorted by start; scan those starting strictly before the
	// window's (exclusive) end
	i := sort.Search(len(sc.specs), func(i int) bool { return !sc.specs[i].Start.Before(w.End()) })
	for _, s := range sc.specs[:i] {
		if _, ok := s.ActiveIn(w); ok {
			out = append(out, s)
		}
	}
	return out
}

// VictimLoad sums the victim-side packet rate of all vectors hitting addr
// in window w. The data plane uses this (all vectors harm the victim).
func (sc *Schedule) VictimLoad(addr netx.Addr, w clock.Window) float64 {
	var total float64
	for _, s := range sc.ActiveAt(w) {
		if s.Target == addr {
			total += s.WindowLoad(w)
		}
	}
	return total
}

// SpoofedLoad sums only the telescope-visible (randomly spoofed) packet
// rate against addr in window w.
func (sc *Schedule) SpoofedLoad(addr netx.Addr, w clock.Window) float64 {
	var total float64
	for _, s := range sc.ActiveAt(w) {
		if s.Target == addr && s.Vector == VectorRandomSpoofed {
			total += s.WindowLoad(w)
		}
	}
	return total
}

// Targets returns the distinct victim addresses in the schedule.
func (sc *Schedule) Targets() []netx.Addr {
	seen := make(map[netx.Addr]struct{})
	var out []netx.Addr
	for _, s := range sc.specs {
		if _, ok := seen[s.Target]; !ok {
			seen[s.Target] = struct{}{}
			out = append(out, s.Target)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Flood emits the attack packets of spec s that fall inside window w,
// downsampled by rate (1.0 = every packet; 0.01 = 1 in 100). Each emitted
// packet carries a uniformly spoofed source. The emit callback returns
// false to stop early.
//
// Timestamps are spread uniformly over the active part of the window so the
// telescope's peak-rate estimator sees a realistic arrival process.
func (s *Spec) Flood(rng *rand.Rand, w clock.Window, rate float64, emit func(t time.Time, p packet.Packet) bool) {
	frac, ok := s.ActiveIn(w)
	if !ok || s.Vector != VectorRandomSpoofed {
		return
	}
	n := int64(s.PPS * frac * clock.WindowDur.Seconds() * rate)
	if n <= 0 {
		return
	}
	from := w.Start()
	if s.Start.After(from) {
		from = s.Start
	}
	span := time.Duration(frac * float64(clock.WindowDur))
	for i := int64(0); i < n; i++ {
		src := s.spoofedSource(rng)
		ts := from.Add(time.Duration(rng.Float64() * float64(span)))
		p := packet.Packet{
			IP: packet.IPv4Header{
				TTL:      64,
				Protocol: s.Proto,
				Src:      src,
				Dst:      s.Target,
			},
		}
		port := s.Ports[rng.IntN(len(s.Ports))]
		switch s.Proto {
		case packet.ProtoTCP:
			p.TCP = &packet.TCPHeader{
				SrcPort: uint16(1024 + rng.IntN(64000)),
				DstPort: port,
				Seq:     rng.Uint32(),
				Flags:   packet.FlagSYN,
				Window:  65535,
			}
		case packet.ProtoUDP:
			p.UDP = &packet.UDPHeader{
				SrcPort: uint16(1024 + rng.IntN(64000)),
				DstPort: port,
			}
		case packet.ProtoICMP:
			p.ICMP = &packet.ICMPHeader{Type: 8} // echo request
		}
		if !emit(ts, p) {
			return
		}
	}
}

func (s *Spec) spoofedSource(rng *rand.Rand) netx.Addr {
	if s.SpoofedSources <= 0 {
		return netx.RandomGlobalAddr(rng)
	}
	// cycle a bounded pool deterministically derived from the spec ID
	i := rng.IntN(s.SpoofedSources)
	return netx.Addr(uint32(s.ID)*2654435761 + uint32(i)*40503)
}
