package attacksim

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
)

func spec(target string, start time.Time, dur time.Duration, pps float64) Spec {
	return Spec{
		Target: netx.MustParseAddr(target),
		Vector: VectorRandomSpoofed,
		Proto:  packet.ProtoTCP,
		Ports:  []uint16{53},
		Start:  start,
		End:    start.Add(dur),
		PPS:    pps,
	}
}

func TestActiveInWindowFractions(t *testing.T) {
	// attack from minute 2 to minute 7: covers 3/5 of window 0, 2/5 of
	// window 1
	start := clock.StudyStart.Add(2 * time.Minute)
	s := spec("192.0.2.1", start, 5*time.Minute, 1000)
	f0, ok := s.ActiveIn(0)
	if !ok || f0 != 0.6 {
		t.Errorf("window 0 frac = %v,%v want 0.6", f0, ok)
	}
	f1, ok := s.ActiveIn(1)
	if !ok || f1 != 0.4 {
		t.Errorf("window 1 frac = %v,%v want 0.4", f1, ok)
	}
	if _, ok := s.ActiveIn(2); ok {
		t.Error("window 2 should be inactive")
	}
	if s.WindowLoad(0) != 600 {
		t.Errorf("WindowLoad(0) = %v", s.WindowLoad(0))
	}
}

func TestGbps(t *testing.T) {
	s := spec("192.0.2.1", clock.StudyStart, time.Hour, 124000)
	s.PacketBytes = 1400
	got := s.Gbps()
	if got < 1.38 || got > 1.40 {
		t.Errorf("Gbps = %v, want ≈1.39 (the Dec-2020 TransIP volume)", got)
	}
}

func TestScheduleActiveAt(t *testing.T) {
	base := clock.StudyStart
	sched := NewSchedule([]Spec{
		spec("192.0.2.1", base, 10*time.Minute, 100),
		spec("192.0.2.2", base.Add(20*time.Minute), 10*time.Minute, 100),
	})
	if got := len(sched.ActiveAt(clock.WindowOf(base))); got != 1 {
		t.Errorf("window 0 active = %d", got)
	}
	if got := len(sched.ActiveAt(clock.WindowOf(base.Add(25 * time.Minute)))); got != 1 {
		t.Errorf("window 5 active = %d", got)
	}
	if got := len(sched.ActiveAt(clock.WindowOf(base.Add(15 * time.Minute)))); got != 0 {
		t.Errorf("gap window active = %d", got)
	}
}

func TestScheduleLoads(t *testing.T) {
	base := clock.StudyStart
	a := netx.MustParseAddr("192.0.2.1")
	specs := []Spec{
		spec("192.0.2.1", base, 10*time.Minute, 100),
		{Target: a, Vector: VectorReflection, Proto: packet.ProtoUDP, Ports: []uint16{53},
			Start: base, End: base.Add(10 * time.Minute), PPS: 900},
	}
	sched := NewSchedule(specs)
	w := clock.WindowOf(base)
	if got := sched.VictimLoad(a, w); got != 1000 {
		t.Errorf("VictimLoad = %v (all vectors)", got)
	}
	if got := sched.SpoofedLoad(a, w); got != 100 {
		t.Errorf("SpoofedLoad = %v (telescope-visible only)", got)
	}
}

func TestScheduleIDsAssigned(t *testing.T) {
	sched := NewSchedule([]Spec{
		spec("192.0.2.2", clock.StudyStart.Add(time.Hour), time.Hour, 1),
		spec("192.0.2.1", clock.StudyStart, time.Hour, 1),
	})
	specs := sched.Specs()
	// sorted by start
	if !specs[0].Start.Before(specs[1].Start) {
		t.Error("specs not sorted by start")
	}
	for _, s := range specs {
		if s.ID == 0 || s.GroupID == 0 {
			t.Errorf("missing IDs: %+v", s)
		}
	}
}

func TestTargets(t *testing.T) {
	sched := NewSchedule([]Spec{
		spec("192.0.2.2", clock.StudyStart, time.Hour, 1),
		spec("192.0.2.1", clock.StudyStart, time.Hour, 1),
		spec("192.0.2.2", clock.StudyStart.Add(2*time.Hour), time.Hour, 1),
	})
	targets := sched.Targets()
	if len(targets) != 2 || targets[0] != netx.MustParseAddr("192.0.2.1") {
		t.Errorf("Targets = %v", targets)
	}
}

func TestFloodPacketShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	s := spec("192.0.2.1", clock.StudyStart, 5*time.Minute, 100)
	var n int
	s.Flood(rng, 0, 1.0, func(ts time.Time, p packet.Packet) bool {
		n++
		if p.IP.Dst != s.Target {
			t.Fatalf("flood packet dst = %v", p.IP.Dst)
		}
		if p.TCP == nil || p.TCP.DstPort != 53 || !p.TCP.Flags.Has(packet.FlagSYN) {
			t.Fatalf("flood packet not a SYN to port 53: %+v", p.TCP)
		}
		w := clock.WindowOf(ts)
		if w != 0 {
			t.Fatalf("timestamp outside window: %v", ts)
		}
		return true
	})
	if n != 100*300 {
		t.Errorf("flood emitted %d packets, want %d", n, 100*300)
	}
}

func TestFloodDownsampling(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	s := spec("192.0.2.1", clock.StudyStart, 5*time.Minute, 1000)
	var n int
	s.Flood(rng, 0, 0.01, func(time.Time, packet.Packet) bool { n++; return true })
	if n != 3000 {
		t.Errorf("1%% sample of 300k packets = %d, want 3000", n)
	}
}

func TestFloodStopEarly(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	s := spec("192.0.2.1", clock.StudyStart, 5*time.Minute, 1000)
	var n int
	s.Flood(rng, 0, 1, func(time.Time, packet.Packet) bool { n++; return n < 10 })
	if n != 10 {
		t.Errorf("early stop after %d packets", n)
	}
}

func TestFloodOnlySpoofedVector(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	s := spec("192.0.2.1", clock.StudyStart, 5*time.Minute, 100)
	s.Vector = VectorReflection
	var n int
	s.Flood(rng, 0, 1, func(time.Time, packet.Packet) bool { n++; return true })
	if n != 0 {
		t.Errorf("reflection vector should not emit spoofed flood packets, got %d", n)
	}
}

func TestFloodSpoofedSourcesUniform(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	s := spec("192.0.2.1", clock.StudyStart, 5*time.Minute, 200)
	var lowHalf, n int
	s.Flood(rng, 0, 1, func(_ time.Time, p packet.Packet) bool {
		n++
		if p.IP.Src < 1<<31 {
			lowHalf++
		}
		return true
	})
	if n == 0 {
		t.Fatal("no packets")
	}
	frac := float64(lowHalf) / float64(n)
	if frac < 0.46 || frac > 0.54 {
		t.Errorf("spoofed sources not uniform: low-half fraction %.3f", frac)
	}
}

func TestFloodBoundedPool(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	s := spec("192.0.2.1", clock.StudyStart, 5*time.Minute, 200)
	s.SpoofedSources = 16
	seen := map[netx.Addr]bool{}
	s.Flood(rng, 0, 1, func(_ time.Time, p packet.Packet) bool {
		seen[p.IP.Src] = true
		return true
	})
	if len(seen) > 16 {
		t.Errorf("bounded pool produced %d distinct sources", len(seen))
	}
}

func TestVectorStrings(t *testing.T) {
	if VectorRandomSpoofed.String() != "random-spoofed" ||
		VectorReflection.String() != "reflection" ||
		VectorDirect.String() != "direct" {
		t.Error("vector strings")
	}
}
