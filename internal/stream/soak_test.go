package stream

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"dnsddos/internal/checkpoint"
	"dnsddos/internal/packet"
	"dnsddos/internal/study"
)

// soak_test.go is the overload soak: a 10× replay (ten times the parity
// trace's packet rate) against a throttled, spilling pipeline, SIGKILLed
// for real mid-run and resumed from the journal. The killed-and-resumed
// output must be byte-identical to an unkilled run, the in-memory
// backlog must respect the high-water mark (RSS stays flat; the burst
// lands on disk), and the backlog must fully drain (lag recovers).

const soakRate = 0.03 // 10× the 0.003 parity-trace rate

type soakStats struct {
	SpilledBatches int64 `json:"spilled_batches"`
	MaxMemBatches  int   `json:"max_mem_batches"`
	OffersRejected int64 `json:"offers_rejected"`
	Batches        int   `json:"batches"`
}

// soakSink appends each batch as a checkpoint frame and fsyncs before
// acknowledging, so SinkBytes truncation on resume is sound under
// SIGKILL. The per-emit delay keeps the emission phase long enough for
// the parent's kill to land mid-drain.
type soakSink struct {
	f     *os.File
	off   int64
	delay time.Duration
}

func (s *soakSink) Emit(b Batch) error {
	frame, err := checkpoint.EncodeFrame(&b)
	if err != nil {
		return err
	}
	if _, err := s.f.WriteAt(frame, s.off); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.off += int64(len(frame))
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	return nil
}

func (s *soakSink) Offset() int64 { return s.off }

// TestOverloadSoakHelper is not a test: it is the victim process the
// soak spawns (re-exec helper pattern). It replays the 10× trace through
// a spilling pipeline into dir/out.bin with a journal, resuming when
// STREAM_SOAK_RESUME is set, and writes stats on clean completion.
func TestOverloadSoakHelper(t *testing.T) {
	dir := os.Getenv("STREAM_SOAK_DIR")
	if dir == "" {
		t.Skip("helper process entry point, not a test")
	}
	resume := os.Getenv("STREAM_SOAK_RESUME") == "1"

	s := testStudy(t)
	cfg := traceConfig(0)
	cfg.Rate = soakRate
	var trace []tracePkt
	Replay(cfg, s.Schedule.Sched, s.Telescope, func(ts time.Time, p packet.Packet) bool {
		trace = append(trace, tracePkt{ts, p})
		return true
	})

	hash, err := study.ConfigHash(s.Config)
	if err != nil {
		t.Fatal(err)
	}
	hdr := checkpoint.Header{ConfigHash: hash, Seed: s.Config.MeasureSeed}
	ckptDir := filepath.Join(dir, "ckpt")
	var jd *checkpoint.Dir
	if resume {
		jd, err = checkpoint.Resume(ckptDir, hdr)
	} else {
		jd, err = checkpoint.Create(ckptDir, hdr)
	}
	if err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(dir, "out.bin")
	f, err := os.OpenFile(outPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sink := &soakSink{f: f, delay: 2 * time.Millisecond}

	opts := []Option{
		WithRSDoS(s.Config.RSDoS), WithLateness(1), WithJournal(jd),
		WithOverload(throttledOverload(len(trace), dir)),
	}
	if resume {
		opts = append(opts, WithResume())
	}
	p, err := New(s.Telescope, s.Pipeline, sink, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if cur, ok := p.Resumed(); ok {
		// drop the accepted-but-unjournaled tail a SIGKILL may have left
		if err := f.Truncate(cur.SinkBytes); err != nil {
			t.Fatal(err)
		}
		sink.off = cur.SinkBytes
	}
	if err := feed(p, trace); err != nil {
		t.Fatal(err)
	}
	st := p.Overload()
	stats, err := json.Marshal(soakStats{
		SpilledBatches: st.SpilledBatches,
		MaxMemBatches:  st.MaxMemBatches,
		OffersRejected: st.OffersRejected,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stats.json"), stats, 0o644); err != nil {
		t.Fatal(err)
	}
	os.Exit(0)
}

func runSoakHelper(t *testing.T, dir string, resume bool) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestOverloadSoakHelper$")
	cmd.Env = append(os.Environ(), "STREAM_SOAK_DIR="+dir)
	if resume {
		cmd.Env = append(cmd.Env, "STREAM_SOAK_RESUME=1")
	}
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
		if t.Failed() && out.Len() > 0 {
			t.Logf("helper output:\n%s", out.String())
		}
	})
	return cmd
}

func readSoakStats(t *testing.T, dir string) soakStats {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "stats.json"))
	if err != nil {
		t.Fatalf("helper wrote no stats: %v", err)
	}
	var st soakStats
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestOverloadSoakKillResume: the acceptance soak. An unkilled 10×
// overload run is the reference; a second run is SIGKILLed mid-emission
// and resumed, and must converge to the same bytes with the same
// memory-bound guarantees.
func TestOverloadSoakKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: spawns subprocess study runs")
	}

	// reference: unkilled run
	refDir := t.TempDir()
	ref := runSoakHelper(t, refDir, false)
	if err := ref.Wait(); err != nil {
		t.Fatalf("reference soak run failed: %v", err)
	}
	refBytes, err := os.ReadFile(filepath.Join(refDir, "out.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refBytes) == 0 {
		t.Fatal("reference soak emitted nothing")
	}
	refStats := readSoakStats(t, refDir)
	if refStats.SpilledBatches == 0 {
		t.Fatalf("10x soak never spilled (stats %+v) — not an overload run", refStats)
	}
	if hw := throttledOverload(1<<20, "").HighWater; refStats.MaxMemBatches > hw {
		t.Fatalf("in-memory backlog reached %d batches, high water is %d — memory not bounded",
			refStats.MaxMemBatches, hw)
	}
	if refStats.OffersRejected != 0 {
		t.Fatalf("shedding disabled but reference rejected %d offers", refStats.OffersRejected)
	}

	// victim: kill once a third of the reference output has been emitted
	killDir := t.TempDir()
	victim := runSoakHelper(t, killDir, false)
	outPath := filepath.Join(killDir, "out.bin")
	threshold := int64(len(refBytes) / 3)
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if fi, err := os.Stat(outPath); err == nil && fi.Size() >= threshold {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never reached the kill threshold")
		}
		if victim.ProcessState != nil {
			t.Fatal("victim exited before the kill threshold was reached")
		}
		time.Sleep(time.Millisecond)
	}
	victim.Process.Kill() // SIGKILL: no deferred cleanup, no flush
	victim.Wait()
	if victim.ProcessState.Success() {
		t.Fatal("victim completed before the SIGKILL landed — nothing was proven")
	}
	killedSize, _ := os.Stat(outPath)
	if killedSize.Size() >= int64(len(refBytes)) {
		t.Fatal("victim had already emitted everything at kill time")
	}

	// resume in the same directory; must converge to the reference bytes
	res := runSoakHelper(t, killDir, true)
	if err := res.Wait(); err != nil {
		t.Fatalf("resumed soak run failed: %v", err)
	}
	gotBytes, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("killed+resumed output (%d bytes) differs from unkilled run (%d bytes) — not exactly-once",
			len(gotBytes), len(refBytes))
	}
	resStats := readSoakStats(t, killDir)
	if hw := throttledOverload(1<<20, "").HighWater; resStats.MaxMemBatches > hw {
		t.Fatalf("resumed run's in-memory backlog reached %d, high water is %d", resStats.MaxMemBatches, hw)
	}
	// the spill file is scratch in both directories: gone after Close
	for _, d := range []string{refDir, killDir} {
		if _, err := os.Stat(filepath.Join(d, "stream-backlog.spill")); err == nil {
			t.Errorf("spill file survived in %s", d)
		}
	}
}

var _ = fmt.Sprintf
