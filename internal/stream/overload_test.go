package stream

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dnsddos/internal/checkpoint"
	"dnsddos/internal/netx"
	"dnsddos/internal/obs"
	"dnsddos/internal/study"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// throttledOverload builds an Overload that forces a deep backlog on the
// given trace: roughly drains emission steps total, so most closed
// windows queue (and spill) until Close drains them.
func throttledOverload(traceLen int, spillDir string) Overload {
	return Overload{
		MaxBacklog: 1 << 20, // never pause; spill is the pressure valve
		HighWater:  8,
		SpillDir:   spillDir,
		Policy:     ShedNone,
		DrainEvery: traceLen / 40,
	}
}

// TestOverloadSpillParity: with shedding off, a throttled pipeline that
// spills most of its backlog to disk emits byte-identical batches to the
// plain in-memory pipeline, and the in-memory queue never exceeds the
// high-water mark.
func TestOverloadSpillParity(t *testing.T) {
	s := testStudy(t)
	trace := collectTrace(s, 0)

	plain := &memSink{}
	p0, err := New(s.Telescope, s.Pipeline, plain, WithRSDoS(s.Config.RSDoS), WithLateness(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := feed(p0, trace); err != nil {
		t.Fatal(err)
	}

	spillDir := t.TempDir()
	ov := throttledOverload(len(trace), spillDir)
	sink := &memSink{}
	p, err := New(s.Telescope, s.Pipeline, sink,
		WithRSDoS(s.Config.RSDoS), WithLateness(1), WithOverload(ov))
	if err != nil {
		t.Fatal(err)
	}
	if err := feed(p, trace); err != nil {
		t.Fatal(err)
	}
	st := p.Overload()
	if st.SpilledBatches == 0 {
		t.Fatal("throttled run never spilled — the spill tier is untested")
	}
	if st.MaxMemBatches > ov.HighWater {
		t.Fatalf("in-memory backlog reached %d batches, high water is %d", st.MaxMemBatches, ov.HighWater)
	}
	if st.OffersRejected != 0 {
		t.Fatalf("shedding disabled but %d offers rejected", st.OffersRejected)
	}
	if !reflect.DeepEqual(sink.batches, plain.batches) {
		t.Fatalf("spilled run emitted %d batches differing from plain run's %d — spill broke emission parity",
			len(sink.batches), len(plain.batches))
	}
	if !bytes.Equal(gobBytes(t, sink.batches), gobBytes(t, plain.batches)) {
		t.Fatal("spilled run emission not byte-identical to plain run")
	}
	// the spill file is scratch: gone after Close
	if _, err := os.Stat(filepath.Join(spillDir, "stream-backlog.spill")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("spill file survived Close: %v", err)
	}
}

// shedFeed drives a trace through an overloaded pipeline, treating
// backpressure as shed-and-continue (what a replay caller does).
func shedFeed(t *testing.T, p *Pipeline, trace []tracePkt) {
	t.Helper()
	for _, tp := range trace {
		if _, err := p.Offer(tp.ts, tp.p); err != nil && !errors.Is(err, ErrBackpressure) {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadShedDeterministic: with admission control and sampling
// enabled, two identical runs shed the exact same packets — same
// counters, same emission bytes.
func TestOverloadShedDeterministic(t *testing.T) {
	s := testStudy(t)
	// a jittered trace gives the late-shedding rung out-of-order packets
	// to act on; lateness 2 would absorb the jitter were nothing shed
	trace := collectTrace(s, 2)
	// stream-time admission at half the trace's average arrival rate, a
	// tight ladder, and a throttled drain: every rung engages
	dur := trace[len(trace)-1].ts.Sub(trace[0].ts).Seconds()
	ov := Overload{
		MaxBacklog:  16,
		Policy:      ShedSample,
		AdmitRate:   float64(len(trace)) / dur / 2,
		SampleEvery: 3,
		DrainEvery:  len(trace) / 40,
	}
	run := func() (OverloadStats, []Batch) {
		sink := &memSink{}
		p, err := New(s.Telescope, s.Pipeline, sink,
			WithRSDoS(s.Config.RSDoS), WithLateness(2), WithOverload(ov))
		if err != nil {
			t.Fatal(err)
		}
		shedFeed(t, p, trace)
		return p.Overload(), sink.batches
	}
	st1, b1 := run()
	st2, b2 := run()
	if st1.AdmitDenied == 0 {
		t.Error("admission bucket never denied — rate gate untested")
	}
	if st1.ShedLate == 0 && st1.SampledOut == 0 && st1.Paused == 0 {
		t.Error("no ladder rung engaged — ladder untested")
	}
	if st1 != st2 {
		t.Fatalf("shed counters differ between identical runs:\n  %+v\n  %+v", st1, st2)
	}
	if !bytes.Equal(gobBytes(t, b1), gobBytes(t, b2)) {
		t.Fatal("identical shedding runs emitted different bytes")
	}
}

// TestOverloadBackpressureAndRecovery: a full backlog refuses intake
// with ErrBackpressure (without consuming the packet or wedging the
// stream), keeps draining on later calls, and Close still flushes
// everything. The teardown leaks no goroutines even with the spill file
// open mid-backlog.
func TestOverloadBackpressureAndRecovery(t *testing.T) {
	netx.NoGoroutineLeaks(t)
	s := testStudy(t)
	trace := collectTrace(s, 0)
	spillDir := t.TempDir()
	ov := Overload{
		MaxBacklog: 12,
		HighWater:  4,
		SpillDir:   spillDir,
		Policy:     ShedNone,
		DrainEvery: 1 << 30, // never drain during Offer: force the hard bound
	}
	sink := &memSink{}
	p, err := New(s.Telescope, s.Pipeline, sink,
		WithRSDoS(s.Config.RSDoS), WithLateness(1), WithOverload(ov))
	if err != nil {
		t.Fatal(err)
	}
	var paused int64
	for _, tp := range trace {
		_, err := p.Offer(tp.ts, tp.p)
		if errors.Is(err, ErrBackpressure) {
			paused++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if paused == 0 {
		t.Fatal("a 12-batch bound on a day-long trace never paused")
	}
	st := p.Overload()
	if st.Paused != paused {
		t.Fatalf("Paused = %d, caller saw %d ErrBackpressure", st.Paused, paused)
	}
	if st.SpilledBatches == 0 {
		t.Fatal("high water 4 with a 12-batch backlog never spilled")
	}
	if got := len(sink.batches); got != 0 {
		t.Fatalf("nothing should have drained before Close, sink has %d batches", got)
	}
	// Close mid-backlog: everything queued still comes out, in order
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sink.batches) == 0 {
		t.Fatal("Close flushed nothing")
	}
	for i := 1; i < len(sink.batches); i++ {
		if sink.batches[i].ClosedThrough <= sink.batches[i-1].ClosedThrough {
			t.Fatalf("batch %d out of order after backpressure drain", i)
		}
	}
}

// TestCursorSyncBoundaryCrash: a crash after the sink durably accepted a
// batch but before the cursor recorded it must not double-emit on
// resume — the journaled SinkBytes offset lets the sink truncate the
// unjournaled tail, and the replay re-emits exactly that batch.
func TestCursorSyncBoundaryCrash(t *testing.T) {
	s := testStudy(t)
	trace := collectTrace(s, 0)

	full := &memSink{}
	p0, err := New(s.Telescope, s.Pipeline, full, WithRSDoS(s.Config.RSDoS), WithLateness(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := feed(p0, trace); err != nil {
		t.Fatal(err)
	}

	hash, err := study.ConfigHash(s.Config)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := checkpoint.Create(t.TempDir(), checkpoint.Header{ConfigHash: hash, Seed: s.Config.MeasureSeed})
	if err != nil {
		t.Fatal(err)
	}

	killAt := len(full.batches)/2 + 1
	crash := &memSink{}
	p1, err := New(s.Telescope, s.Pipeline, crash,
		WithRSDoS(s.Config.RSDoS), WithLateness(1), WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	errBoundary := errors.New("killed at accept/sync boundary")
	p1.hookAfterEmit = func() error {
		if len(crash.batches) == killAt {
			return errBoundary
		}
		return nil
	}
	if err := feed(p1, trace); !errors.Is(err, errBoundary) {
		t.Fatalf("feed survived the boundary kill: %v", err)
	}
	// the sink holds one more batch than the cursor acknowledges
	cur, ok, err := dir.LoadCursor()
	if err != nil || !ok {
		t.Fatalf("no cursor after boundary crash: ok=%v err=%v", ok, err)
	}
	if len(crash.batches) != killAt {
		t.Fatalf("sink holds %d batches, expected %d", len(crash.batches), killAt)
	}
	if want := crash.batches[killAt-2].ClosedThrough; cur.ClosedThrough != want {
		t.Fatalf("cursor frontier %v, want the last *journaled* batch %v", cur.ClosedThrough, want)
	}

	// recovery contract: truncate the sink to the journaled offset,
	// dropping the accepted-but-unjournaled batch, then resume
	crash.batches = crash.batches[:killAt-1]
	crash.bytes = cur.SinkBytes
	resumed := &memSink{bytes: cur.SinkBytes}
	p2, err := New(s.Telescope, s.Pipeline, resumed,
		WithRSDoS(s.Config.RSDoS), WithLateness(1), WithJournal(dir), WithResume())
	if err != nil {
		t.Fatal(err)
	}
	if err := feed(p2, trace); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	got := append(append([]Batch{}, crash.batches...), resumed.batches...)
	if !reflect.DeepEqual(got, full.batches) {
		t.Fatalf("boundary crash + resume emitted %d batches, uninterrupted run %d — not exactly-once",
			len(got), len(full.batches))
	}
}

// TestOverloadMetricsKeys pins the overload.* instrument set (plus the
// rejected-offers counter) against a golden key list, all volatile.
func TestOverloadMetricsKeys(t *testing.T) {
	s := testStudy(t)
	trace := collectTrace(s, 0)
	reg := obs.New()
	dur := trace[len(trace)-1].ts.Sub(trace[0].ts).Seconds()
	ov := Overload{
		MaxBacklog:  16,
		HighWater:   4,
		SpillDir:    t.TempDir(),
		Policy:      ShedSample,
		AdmitRate:   float64(len(trace)) / dur / 2,
		SampleEvery: 3,
		DrainEvery:  len(trace) / 40,
	}
	p, err := New(s.Telescope, s.Pipeline, &memSink{},
		WithRSDoS(s.Config.RSDoS), WithLateness(1), WithMetrics(reg), WithOverload(ov))
	if err != nil {
		t.Fatal(err)
	}
	shedFeed(t, p, trace)

	snap := reg.Snapshot()
	var keys []string
	for name := range snap.Counters {
		if strings.HasPrefix(name, "overload.") || name == "stream.offers_rejected" {
			keys = append(keys, name)
		}
	}
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "overload.") {
			keys = append(keys, name)
		}
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "overload_metrics_keys.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("overload metric keys changed:\ngot:\n%swant:\n%s(run with -update to accept)", got, want)
	}
	// overload instrumentation is volatile: absent from stable snapshots
	stable := reg.StableSnapshot()
	for name := range stable.Counters {
		if strings.HasPrefix(name, "overload.") {
			t.Errorf("volatile counter %q leaked into StableSnapshot", name)
		}
	}
	for name := range stable.Gauges {
		if strings.HasPrefix(name, "overload.") {
			t.Errorf("volatile gauge %q leaked into StableSnapshot", name)
		}
	}
}
