package stream

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"dnsddos/internal/checkpoint"
	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/obs"
	"dnsddos/internal/packet"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/study"
)

// The harness: one scaled-down study.RunContext run (world, sweeps, join
// pipeline — the batch reference), shared across tests, plus a seeded
// packet trace replayed from the study's own attack schedule. The batch
// path aggregates + infers + joins the trace in one pass; the stream
// consumes it packet by packet. The two must agree byte for byte.

var (
	harnessOnce sync.Once
	harness     *study.Study
	harnessErr  error
)

const traceDay = clock.Day(29)

func testStudy(t *testing.T) *study.Study {
	t.Helper()
	if testing.Short() {
		t.Skip("stream integration: runs a multi-day study sweep")
	}
	harnessOnce.Do(func() {
		cfg := study.QuickConfig()
		cfg.World.Domains = 4000
		cfg.Attacks.TotalAttacks = 3000
		// the generated mix has 1.3% DNS-infra targets; concentrate the
		// schedule on DNS victims so a one-day trace carries join events
		cfg.Attacks.DNSShare = 0.5
		cfg.FromDay, cfg.ToDay = traceDay-1, traceDay+1
		harness, harnessErr = study.RunContext(context.Background(), cfg, study.WithSkipJoin())
	})
	if harnessErr != nil {
		t.Fatalf("building study harness: %v", harnessErr)
	}
	if len(harness.Events) != 0 || len(harness.Classified) != 0 {
		t.Fatal("WithSkipJoin ran the batch join anyway")
	}
	return harness
}

type tracePkt struct {
	ts time.Time
	p  packet.Packet
}

func traceConfig(jitter int) TraceConfig {
	return TraceConfig{
		Seed:          99,
		Rate:          0.003,
		From:          traceDay.FirstWindow(),
		To:            (traceDay + 1).FirstWindow() - 1,
		JitterWindows: jitter,
	}
}

func collectTrace(s *study.Study, jitter int) []tracePkt {
	var out []tracePkt
	Replay(traceConfig(jitter), s.Schedule.Sched, s.Telescope, func(ts time.Time, p packet.Packet) bool {
		out = append(out, tracePkt{ts, p})
		return true
	})
	return out
}

// batchRun is the reference: aggregate the whole trace, infer the feed,
// join it in one EventsContext pass.
func batchRun(t *testing.T, s *study.Study, trace []tracePkt) ([]rsdos.WindowObs, []rsdos.Attack, []core.Event) {
	t.Helper()
	pa := rsdos.NewPacketAggregator(s.Telescope)
	for _, tp := range trace {
		pa.Add(tp.ts, tp.p)
	}
	if d := pa.LateDrops(); d != 0 {
		t.Fatalf("in-order trace dropped %d packets in the batch aggregator", d)
	}
	obs := pa.Finish()
	attacks := rsdos.Infer(s.Config.RSDoS, obs)
	events, err := s.Pipeline.EventsContext(context.Background(), attacks)
	if err != nil {
		t.Fatalf("batch join: %v", err)
	}
	return obs, attacks, events
}

// memSink collects emitted batches; failAt > 0 makes the Nth Emit fail
// (simulating a crash at the sink boundary).
type memSink struct {
	batches []Batch
	failAt  int
	bytes   int64
}

var errSinkDown = errors.New("sink down")

func (s *memSink) Emit(b Batch) error {
	if s.failAt > 0 && len(s.batches)+1 == s.failAt {
		return errSinkDown
	}
	s.batches = append(s.batches, b)
	s.bytes += int64(16 + 8*len(b.Windows) + 24*len(b.Attacks) + 32*len(b.Events))
	return nil
}

func (s *memSink) Offset() int64 { return s.bytes }

func (s *memSink) flatten() ([]rsdos.Attack, []core.Event) {
	var attacks []rsdos.Attack
	var events []core.Event
	for _, b := range s.batches {
		attacks = append(attacks, b.Attacks...)
		events = append(events, b.Events...)
	}
	return attacks, events
}

func feed(p *Pipeline, trace []tracePkt) error {
	for _, tp := range trace {
		if _, err := p.Offer(tp.ts, tp.p); err != nil {
			return err
		}
	}
	return p.Close()
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("gob: %v", err)
	}
	return buf.Bytes()
}

// TestStreamBatchParity is the tentpole acceptance: streaming a seeded
// packet trace produces byte-identical impact events to the batch run,
// for the in-order trace and for a jittered one absorbed by the lateness
// allowance.
func TestStreamBatchParity(t *testing.T) {
	s := testStudy(t)
	inorder := collectTrace(s, 0)
	if len(inorder) == 0 {
		t.Fatal("empty trace — nothing to prove parity over")
	}
	batchObs, batchAttacks, batchEvents := batchRun(t, s, inorder)
	if len(batchAttacks) == 0 {
		t.Fatal("trace inferred no attacks — raise TraceConfig.Rate")
	}
	if len(batchEvents) == 0 {
		t.Fatal("trace joined no events — the parity would be vacuous")
	}

	cases := []struct {
		name     string
		jitter   int
		lateness int
	}{
		{"in-order/lateness-1", 0, 1},
		{"jittered/lateness-2", 2, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trace := collectTrace(s, tc.jitter)
			if len(trace) != len(inorder) {
				t.Fatalf("jitter changed the packet set: %d vs %d packets", len(trace), len(inorder))
			}
			sink := &memSink{}
			p, err := New(s.Telescope, s.Pipeline, sink,
				WithRSDoS(s.Config.RSDoS), WithLateness(tc.lateness))
			if err != nil {
				t.Fatal(err)
			}
			maxLag := int64(0)
			for _, tp := range trace {
				ok, err := p.Offer(tp.ts, tp.p)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("lateness %d dropped a packet of a %d-window-jittered trace", tc.lateness, tc.jitter)
				}
				if l := p.LagWindows(); l > maxLag {
					maxLag = l
				}
			}
			if bound := int64(tc.lateness + 1); maxLag > bound {
				t.Errorf("lag reached %d windows, bound is %d", maxLag, bound)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}

			var streamObs []rsdos.WindowObs
			for i, b := range sink.batches {
				if i > 0 && b.ClosedThrough <= sink.batches[i-1].ClosedThrough {
					t.Fatalf("batch %d frontier %v not past %v", i, b.ClosedThrough, sink.batches[i-1].ClosedThrough)
				}
				streamObs = append(streamObs, b.Windows...)
			}
			if !reflect.DeepEqual(streamObs, batchObs) {
				t.Fatalf("streamed window observations diverge from batch aggregation (%d vs %d obs)",
					len(streamObs), len(batchObs))
			}
			attacks, events := sink.flatten()
			canonAttacks, canonEvents := Canonicalize(attacks, events)
			if !reflect.DeepEqual(canonAttacks, batchAttacks) {
				t.Fatalf("canonicalized stream attacks != batch feed (%d vs %d)", len(canonAttacks), len(batchAttacks))
			}
			if !bytes.Equal(gobBytes(t, canonEvents), gobBytes(t, batchEvents)) {
				t.Fatalf("stream events not byte-identical to batch events (%d vs %d events)",
					len(canonEvents), len(batchEvents))
			}
		})
	}
}

// TestStreamKillResume is the exactly-once acceptance: kill the stream at
// the sink boundary mid-trace, resume from the journal, and the
// concatenation of the two runs' emissions equals an uninterrupted run —
// every window exactly once.
func TestStreamKillResume(t *testing.T) {
	s := testStudy(t)
	trace := collectTrace(s, 0)

	full := &memSink{}
	p, err := New(s.Telescope, s.Pipeline, full, WithRSDoS(s.Config.RSDoS), WithLateness(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := feed(p, trace); err != nil {
		t.Fatal(err)
	}
	if len(full.batches) < 3 {
		t.Fatalf("only %d batches — too few to kill mid-run", len(full.batches))
	}

	hash, err := study.ConfigHash(s.Config)
	if err != nil {
		t.Fatal(err)
	}
	hdr := checkpoint.Header{ConfigHash: hash, Seed: s.Config.MeasureSeed}
	dir, err := checkpoint.Create(t.TempDir(), hdr)
	if err != nil {
		t.Fatal(err)
	}

	killAt := len(full.batches)/2 + 1
	crash := &memSink{failAt: killAt}
	p1, err := New(s.Telescope, s.Pipeline, crash, WithRSDoS(s.Config.RSDoS), WithLateness(1), WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := feed(p1, trace); !errors.Is(err, errSinkDown) {
		t.Fatalf("feed survived the sink failure: %v", err)
	}
	if len(crash.batches) != killAt-1 {
		t.Fatalf("sink holds %d batches, expected %d before the crash", len(crash.batches), killAt-1)
	}
	cur, ok, err := dir.LoadCursor()
	if err != nil || !ok {
		t.Fatalf("no cursor after crash: ok=%v err=%v", ok, err)
	}
	if want := crash.batches[len(crash.batches)-1].ClosedThrough; cur.ClosedThrough != want {
		t.Fatalf("cursor frontier %v, last durable batch %v", cur.ClosedThrough, want)
	}
	if cur.SinkBytes != crash.Offset() {
		t.Fatalf("cursor sink offset %d, sink reports %d", cur.SinkBytes, crash.Offset())
	}

	resumed := &memSink{bytes: cur.SinkBytes} // sink repositioned at the journaled offset
	p2, err := New(s.Telescope, s.Pipeline, resumed,
		WithRSDoS(s.Config.RSDoS), WithLateness(1), WithJournal(dir), WithResume())
	if err != nil {
		t.Fatal(err)
	}
	if rc, ok := p2.Resumed(); !ok || rc != cur {
		t.Fatalf("Resumed() = %+v, %v; want the journaled cursor", rc, ok)
	}
	if err := feed(p2, trace); err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	got := append(append([]Batch{}, crash.batches...), resumed.batches...)
	if !reflect.DeepEqual(got, full.batches) {
		t.Fatalf("crash+resume emitted %d batches, uninterrupted run %d — not exactly-once",
			len(got), len(full.batches))
	}
	// frontier strictly advances across the seam: nothing re-emitted
	for i := 1; i < len(got); i++ {
		if got[i].ClosedThrough <= got[i-1].ClosedThrough {
			t.Fatalf("batch %d re-emitted frontier %v", i, got[i].ClosedThrough)
		}
	}
	endCur, ok, err := dir.LoadCursor()
	if err != nil || !ok {
		t.Fatalf("cursor after resume: ok=%v err=%v", ok, err)
	}
	var wantEvents int64
	for _, b := range full.batches {
		wantEvents += int64(len(b.Events))
	}
	if endCur.Events != wantEvents {
		t.Errorf("final cursor counts %d events, uninterrupted run emitted %d", endCur.Events, wantEvents)
	}
}

// TestStreamLateDropsAndMetrics: a stream whose lateness is smaller than
// the trace jitter drops late packets (counted, never corrupting output
// order) and surfaces lag/backlog/drops through the registry.
func TestStreamLateDropsAndMetrics(t *testing.T) {
	s := testStudy(t)
	trace := collectTrace(s, 3) // up to 3 windows of disorder
	reg := obs.New()
	sink := &memSink{}
	p, err := New(s.Telescope, s.Pipeline, sink,
		WithRSDoS(s.Config.RSDoS), WithLateness(0), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, tp := range trace {
		ok, err := p.Offer(tp.ts, tp.p)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			accepted++
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.LateDrops() == 0 {
		t.Fatal("3-window jitter against lateness 0 dropped nothing — the jitter is not exercising lateness")
	}
	if int64(len(trace)-accepted) != p.LateDrops() {
		t.Fatalf("accepted %d of %d but LateDrops = %d", accepted, len(trace), p.LateDrops())
	}
	for i := 1; i < len(sink.batches); i++ {
		if sink.batches[i].ClosedThrough <= sink.batches[i-1].ClosedThrough {
			t.Fatal("late arrivals produced out-of-order emission")
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["stream.late_drops"]; got != p.LateDrops() {
		t.Errorf("stream.late_drops = %d, want %d", got, p.LateDrops())
	}
	for _, name := range []string{"stream.windows_closed", "stream.batches_emitted"} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s missing or zero", name)
		}
	}
	for _, name := range []string{"stream.watermark", "stream.lag_windows", "stream.backlog_windows", "stream.open_candidates"} {
		if _, okG := snap.Gauges[name]; !okG {
			t.Errorf("gauge %s missing", name)
		}
	}
	if h, okH := snap.Histograms["stream.join_latency"]; !okH || h.Count <= 0 {
		t.Errorf("stream.join_latency histogram missing or empty (present=%v)", okH)
	}
	// live metrics must stay volatile: nothing stream.* in stable snapshots
	stable := reg.StableSnapshot()
	for name := range stable.Counters {
		if len(name) >= 7 && name[:7] == "stream." {
			t.Errorf("volatile counter %q leaked into StableSnapshot", name)
		}
	}
}

// TestStreamResumeDivergenceDetected: resuming against a journal whose
// cursor the replay cannot reproduce is refused, not silently emitted.
func TestStreamResumeDivergenceDetected(t *testing.T) {
	s := testStudy(t)
	trace := collectTrace(s, 0)
	hash, _ := study.ConfigHash(s.Config)
	dir, err := checkpoint.Create(t.TempDir(), checkpoint.Header{ConfigHash: hash, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	p, err := New(s.Telescope, s.Pipeline, sink, WithRSDoS(s.Config.RSDoS), WithLateness(1), WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := feed(p, trace); err != nil {
		t.Fatal(err)
	}
	cur, _, _ := dir.LoadCursor()
	// poison the journal: claim one more attack than the replay produces
	cur.Attacks++
	cur.ClosedThrough = sink.batches[len(sink.batches)/2].ClosedThrough
	if err := dir.WriteCursor(cur); err != nil {
		t.Fatal(err)
	}
	p2, err := New(s.Telescope, s.Pipeline, &memSink{},
		WithRSDoS(s.Config.RSDoS), WithLateness(1), WithJournal(dir), WithResume())
	if err != nil {
		t.Fatal(err)
	}
	err = feed(p2, trace)
	if err == nil || !contains(err.Error(), "diverged") {
		t.Fatalf("divergent resume not detected: %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && bytes.Contains([]byte(s), []byte(sub))
}

var _ = fmt.Sprintf // keep fmt for debugging edits
