// Package stream is the live counterpart of the batch study pipeline: it
// consumes telescope backscatter packets as they arrive, closes 5-minute
// RSDoS windows as the watermark passes them, curates attacks
// incrementally (rsdos.Tracker), and joins each finalized attack against
// the measurement-side indexes (core.Pipeline) the moment it can no
// longer change — emitting impact events with bounded lag instead of at
// end of study.
//
// Ordering and exactness:
//
//   - The watermark is the highest window seen minus a configurable
//     lateness allowance; a window strictly below it is closed and final.
//     Packets arriving for closed windows are dropped and counted, never
//     reprocessed (internal/rsdos late-drop semantics).
//   - Emission is batched per watermark advance. Each Batch carries the
//     windows closed by the advance, the attacks that became final, and
//     their joined impact events. Batches are strictly ordered by
//     ClosedThrough.
//   - With a journal (internal/checkpoint cursor), emission is
//     exactly-once across restarts: the cursor records the last window
//     durably handed to the sink, and a resumed pipeline replays its
//     deterministic input with emission suppressed up to the cursor —
//     state (windows, candidates, attack numbering) is rebuilt, but
//     nothing reaches the sink twice.
//
// Attack IDs are assigned in emission (finalization) order — the only
// order a bounded-lag stream can number by. The batch feed numbers by
// (StartWindow, Victim) rank instead; the parity harness
// (Canonicalize) maps one numbering onto the other and the two
// pipelines agree byte for byte.
package stream

import (
	"context"
	"fmt"
	"time"

	"dnsddos/internal/checkpoint"
	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/netx"
	"dnsddos/internal/obs"
	"dnsddos/internal/packet"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/telescope"
)

// Batch is one emission step: everything that became final when the
// watermark advanced through ClosedThrough.
type Batch struct {
	// ClosedThrough is the highest closed window as of this batch; all
	// batch contents concern windows at or below it.
	ClosedThrough clock.Window
	// Windows are the observations of the windows this advance closed,
	// ordered by (window, victim).
	Windows []rsdos.WindowObs
	// Attacks are the attacks finalized by this advance, in emission
	// order with stream-assigned sequential IDs.
	Attacks []rsdos.Attack
	// Events are the joined impact events of those attacks.
	Events []core.Event
}

// Sink receives emitted batches. Emit must be durable when it returns
// nil: the pipeline journals the cursor right after, and a resumed run
// will not re-deliver the batch.
type Sink interface {
	Emit(Batch) error
}

// OffsetSink is optionally implemented by file-backed sinks; the byte
// offset after each accepted batch is journaled so a resume can truncate
// a partial write from a crash.
type OffsetSink interface {
	Offset() int64
}

// Pipeline is the streaming join. Not safe for concurrent use; drive it
// from one goroutine (the capture loop).
type Pipeline struct {
	ctx  context.Context
	join *core.Pipeline
	sink Sink
	win  *rsdos.Windower
	tr   *rsdos.Tracker

	journal *checkpoint.Dir
	resume  bool
	// suppress is true while a resumed run replays input the sink already
	// holds; resumed is the journaled frontier being replayed up to.
	suppress bool
	resumed  checkpoint.Cursor

	lastClosed clock.Window
	haveClosed bool
	attackSeq  int
	eventsOut  int64
	closed     bool

	// lastAttackWin/lastAttackVictim identify the most recently finalized
	// attack — journaled with the cursor so a diverging resume replay can
	// name the offending (window, victim) pair on both sides.
	lastAttackWin    clock.Window
	lastAttackVictim netx.Addr
	haveLastAttack   bool

	lateness int
	rsdosCfg rsdos.Config

	m streamMetrics
}

// Option configures a Pipeline at construction.
type Option func(*Pipeline)

// WithLateness sets the watermark lateness allowance in windows
// (default 1): a window closes once a packet arrives more than this many
// windows past it. Larger values absorb more arrival jitter at the cost
// of emission lag.
func WithLateness(n int) Option {
	return func(p *Pipeline) { p.lateness = n }
}

// WithRSDoS sets the curation thresholds (default rsdos.DefaultConfig).
func WithRSDoS(cfg rsdos.Config) Option {
	return func(p *Pipeline) { p.rsdosCfg = cfg }
}

// WithJournal persists the emission frontier to dir after every accepted
// batch, enabling exactly-once emission across restarts.
func WithJournal(dir *checkpoint.Dir) Option {
	return func(p *Pipeline) { p.journal = dir }
}

// WithResume replays against the journal's cursor: emission is
// suppressed until the stream passes the journaled frontier, so a batch
// already in the sink is never delivered again. Requires WithJournal; a
// journal without a cursor (fresh run) starts emitting immediately.
func WithResume() Option {
	return func(p *Pipeline) { p.resume = true }
}

// WithMetrics publishes stream instrumentation — lag, backlog, late
// drops, per-batch join latency — into reg (all volatile: they describe
// this run, not the deterministic result).
func WithMetrics(reg *obs.Registry) Option {
	return func(p *Pipeline) { p.m = newStreamMetrics(reg) }
}

// WithContext threads ctx into the per-batch joins (default Background).
func WithContext(ctx context.Context) Option {
	return func(p *Pipeline) { p.ctx = ctx }
}

// New builds a streaming pipeline over the telescope, joining finalized
// attacks through join and emitting to sink.
func New(tel *telescope.Telescope, join *core.Pipeline, sink Sink, opts ...Option) (*Pipeline, error) {
	p := &Pipeline{
		ctx:      context.Background(),
		join:     join,
		sink:     sink,
		lateness: 1,
		rsdosCfg: rsdos.DefaultConfig(),
	}
	for _, o := range opts {
		o(p)
	}
	p.win = rsdos.NewWindower(tel, p.lateness)
	p.tr = rsdos.NewTracker(p.rsdosCfg)
	if p.m.reg == nil {
		p.m = newStreamMetrics(obs.New())
	}
	if p.resume {
		if p.journal == nil {
			return nil, fmt.Errorf("stream: WithResume requires WithJournal")
		}
		c, ok, err := p.journal.LoadCursor()
		if err != nil {
			return nil, err
		}
		if ok {
			p.resumed, p.suppress = c, true
		}
	}
	return p, nil
}

// Resumed returns the journaled frontier the pipeline is replaying up
// to, when resuming (false for fresh runs). File sinks truncate to
// Cursor.SinkBytes before the first Offer.
func (p *Pipeline) Resumed() (checkpoint.Cursor, bool) {
	return p.resumed, p.resume && p.suppress
}

// Offer feeds one captured packet. The boolean reports whether the
// packet was accepted (false = late, dropped and counted); the error is
// a sink, journal or join failure — the stream is then wedged at the
// journaled frontier and can be resumed.
func (p *Pipeline) Offer(ts time.Time, pkt packet.Packet) (bool, error) {
	if p.closed {
		return false, fmt.Errorf("stream: Offer after Close")
	}
	ok := p.win.Add(ts, pkt)
	if !ok {
		p.m.lateDrops.Inc()
	}
	wm, started := p.win.Watermark()
	if started {
		if ct := wm - 1; !p.haveClosed || ct > p.lastClosed {
			if err := p.step(ct, p.win.CloseReady(), false); err != nil {
				return ok, err
			}
		}
	}
	p.publishGauges()
	return ok, nil
}

// Close ends the stream: every remaining window is closed, every open
// candidate finalized, and the last batch emitted.
func (p *Pipeline) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	maxSeen, started := p.win.MaxSeen()
	if !started {
		return nil
	}
	err := p.step(maxSeen, p.win.CloseAll(), true)
	p.publishGauges()
	return err
}

// step advances the emission frontier to ct: closed-window observations
// feed the tracker, newly unextendable attacks finalize, and the batch
// is emitted (unless suppressed by a resume replay). final additionally
// drains every open candidate (end of stream).
func (p *Pipeline) step(ct clock.Window, obs []rsdos.WindowObs, final bool) error {
	p.lastClosed, p.haveClosed = ct, true
	windows := countWindows(obs)
	for i := range obs {
		p.tr.Observe(obs[i])
	}
	var attacks []rsdos.Attack
	if final {
		attacks = p.tr.Finish()
	} else {
		attacks = p.tr.Advance(ct)
	}
	if len(obs) == 0 && len(attacks) == 0 {
		return nil
	}
	p.m.windowsClosed.Add(windows)

	if p.suppress {
		if ct <= p.resumed.ClosedThrough {
			// Replay of a batch the sink already holds: rebuild state
			// (the tracker consumed the observations, the attack
			// numbering advances) but emit nothing and skip the join.
			p.attackSeq += len(attacks)
			p.noteLastAttack(attacks)
			return nil
		}
		// First batch past the journaled frontier: the replay must have
		// reproduced the journaled run exactly, or the sink's contents
		// and ours disagree. Report both sides of the mismatch — the
		// replay's frontier attack and the journaled one — so the
		// operator can locate the offending input, not just a count.
		if p.attackSeq != p.resumed.Attacks {
			return fmt.Errorf("stream: resume replay diverged at frontier %v: replay finalized %d attacks (last %s), journal recorded %d (last %s)",
				p.resumed.ClosedThrough,
				p.attackSeq, describeAttack(p.lastAttackWin, p.lastAttackVictim, p.haveLastAttack),
				p.resumed.Attacks, describeAttack(p.resumed.LastAttackWindow, p.resumed.LastAttackVictim, p.resumed.HaveLast))
		}
		p.eventsOut = p.resumed.Events
		p.suppress = false
	}

	for i := range attacks {
		p.attackSeq++
		attacks[i].ID = p.attackSeq
	}
	p.noteLastAttack(attacks)
	var events []core.Event
	if len(attacks) > 0 {
		t0 := time.Now()
		ev, err := p.join.EventsContext(p.ctx, attacks)
		if err != nil {
			return err
		}
		p.m.joinLatency.Observe(time.Since(t0))
		events = ev
	}
	if err := p.sink.Emit(Batch{ClosedThrough: ct, Windows: obs, Attacks: attacks, Events: events}); err != nil {
		return err
	}
	p.m.batches.Inc()
	p.m.attacksFinalized.Add(int64(len(attacks)))
	p.m.eventsEmitted.Add(int64(len(events)))
	p.eventsOut += int64(len(events))
	if p.journal != nil {
		c := checkpoint.Cursor{
			ClosedThrough:    ct,
			Attacks:          p.attackSeq,
			Events:           p.eventsOut,
			LastAttackWindow: p.lastAttackWin,
			LastAttackVictim: p.lastAttackVictim,
			HaveLast:         p.haveLastAttack,
		}
		if off, ok := p.sink.(OffsetSink); ok {
			c.SinkBytes = off.Offset()
		}
		if err := p.journal.WriteCursor(c); err != nil {
			return err
		}
	}
	return nil
}

// noteLastAttack records the (window, victim) identity of the most
// recently finalized attack for the cursor journal.
func (p *Pipeline) noteLastAttack(attacks []rsdos.Attack) {
	if len(attacks) == 0 {
		return
	}
	last := attacks[len(attacks)-1]
	p.lastAttackWin, p.lastAttackVictim, p.haveLastAttack = last.StartWindow, last.Victim, true
}

// describeAttack renders one side of a divergence report.
func describeAttack(w clock.Window, v netx.Addr, have bool) string {
	if !have {
		return "none"
	}
	return fmt.Sprintf("window %d victim %s", w, v)
}

// ClosedThrough returns the current emission frontier (false before the
// first close).
func (p *Pipeline) ClosedThrough() (clock.Window, bool) {
	return p.lastClosed, p.haveClosed
}

// LagWindows returns how many windows the emission frontier trails the
// newest packet seen — the stream's end-to-end lag, bounded by
// lateness+1 while packets flow.
func (p *Pipeline) LagWindows() int64 {
	maxSeen, started := p.win.MaxSeen()
	if !started || !p.haveClosed {
		return 0
	}
	return int64(maxSeen - p.lastClosed)
}

// LateDrops returns how many packets were dropped for arriving after
// their window closed.
func (p *Pipeline) LateDrops() int64 { return p.win.LateDrops() }

func (p *Pipeline) publishGauges() {
	if wm, ok := p.win.Watermark(); ok {
		p.m.watermark.Set(int64(wm))
	}
	if ms, ok := p.win.MaxSeen(); ok {
		p.m.maxSeen.Set(int64(ms))
	}
	p.m.backlog.Set(int64(p.win.Backlog()))
	p.m.lag.Set(p.LagWindows())
	p.m.candidates.Set(int64(p.tr.Open()))
	p.m.lateDropsG.Set(p.win.LateDrops())
}

// countWindows counts distinct windows in a (window, victim)-ordered
// observation batch.
func countWindows(obs []rsdos.WindowObs) int64 {
	var n int64
	for i := range obs {
		if i == 0 || obs[i].Window != obs[i-1].Window {
			n++
		}
	}
	return n
}

// streamMetrics is the stream.* instrument set — all volatile; a live
// stream's lag and drop counts describe the run, not the result.
type streamMetrics struct {
	reg              *obs.Registry
	lateDrops        *obs.Counter
	batches          *obs.Counter
	windowsClosed    *obs.Counter
	attacksFinalized *obs.Counter
	eventsEmitted    *obs.Counter
	watermark        *obs.Gauge
	maxSeen          *obs.Gauge
	backlog          *obs.Gauge
	lag              *obs.Gauge
	candidates       *obs.Gauge
	lateDropsG       *obs.Gauge
	joinLatency      *obs.Histogram
}

func newStreamMetrics(reg *obs.Registry) streamMetrics {
	if reg == nil {
		reg = obs.New()
	}
	return streamMetrics{
		reg:              reg,
		lateDrops:        reg.Counter("stream.late_drops", obs.Volatile()),
		batches:          reg.Counter("stream.batches_emitted", obs.Volatile()),
		windowsClosed:    reg.Counter("stream.windows_closed", obs.Volatile()),
		attacksFinalized: reg.Counter("stream.attacks_finalized", obs.Volatile()),
		eventsEmitted:    reg.Counter("stream.events_emitted", obs.Volatile()),
		watermark:        reg.Gauge("stream.watermark", obs.Volatile()),
		maxSeen:          reg.Gauge("stream.max_seen_window", obs.Volatile()),
		backlog:          reg.Gauge("stream.backlog_windows", obs.Volatile()),
		lag:              reg.Gauge("stream.lag_windows", obs.Volatile()),
		candidates:       reg.Gauge("stream.open_candidates", obs.Volatile()),
		lateDropsG:       reg.Gauge("stream.late_drops_total", obs.Volatile()),
		joinLatency:      reg.Histogram("stream.join_latency", obs.Volatile()),
	}
}
