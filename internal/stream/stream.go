// Package stream is the live counterpart of the batch study pipeline: it
// consumes telescope backscatter packets as they arrive, closes 5-minute
// RSDoS windows as the watermark passes them, curates attacks
// incrementally (rsdos.Tracker), and joins each finalized attack against
// the measurement-side indexes (core.Pipeline) the moment it can no
// longer change — emitting impact events with bounded lag instead of at
// end of study.
//
// Ordering and exactness:
//
//   - The watermark is the highest window seen minus a configurable
//     lateness allowance; a window strictly below it is closed and final.
//     Packets arriving for closed windows are dropped and counted, never
//     reprocessed (internal/rsdos late-drop semantics).
//   - Emission is batched per watermark advance. Each Batch carries the
//     windows closed by the advance, the attacks that became final, and
//     their joined impact events. Batches are strictly ordered by
//     ClosedThrough.
//   - With a journal (internal/checkpoint cursor), emission is
//     exactly-once across restarts: the cursor records the last window
//     durably handed to the sink, and a resumed pipeline replays its
//     deterministic input with emission suppressed up to the cursor —
//     state (windows, candidates, attack numbering) is rebuilt, but
//     nothing reaches the sink twice.
//
// Attack IDs are assigned in emission (finalization) order — the only
// order a bounded-lag stream can number by. The batch feed numbers by
// (StartWindow, Victim) rank instead; the parity harness
// (Canonicalize) maps one numbering onto the other and the two
// pipelines agree byte for byte.
package stream

import (
	"context"
	"fmt"
	"time"

	"dnsddos/internal/checkpoint"
	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/netx"
	"dnsddos/internal/obs"
	"dnsddos/internal/packet"
	"dnsddos/internal/resilience"
	"dnsddos/internal/rsdos"
	"dnsddos/internal/telescope"
)

// Batch is one emission step: everything that became final when the
// watermark advanced through ClosedThrough.
type Batch struct {
	// ClosedThrough is the highest closed window as of this batch; all
	// batch contents concern windows at or below it.
	ClosedThrough clock.Window
	// Windows are the observations of the windows this advance closed,
	// ordered by (window, victim).
	Windows []rsdos.WindowObs
	// Attacks are the attacks finalized by this advance, in emission
	// order with stream-assigned sequential IDs.
	Attacks []rsdos.Attack
	// Events are the joined impact events of those attacks.
	Events []core.Event
}

// Sink receives emitted batches. Emit must be durable when it returns
// nil: the pipeline journals the cursor right after, and a resumed run
// will not re-deliver the batch.
type Sink interface {
	Emit(Batch) error
}

// OffsetSink is optionally implemented by file-backed sinks; the byte
// offset after each accepted batch is journaled so a resume can truncate
// a partial write from a crash.
type OffsetSink interface {
	Offset() int64
}

// Pipeline is the streaming join. Not safe for concurrent use; drive it
// from one goroutine (the capture loop).
type Pipeline struct {
	ctx  context.Context
	join *core.Pipeline
	sink Sink
	win  *rsdos.Windower
	tr   *rsdos.Tracker

	journal *checkpoint.Dir
	resume  bool
	// suppress is true while a resumed run replays input the sink already
	// holds; resumed is the journaled frontier being replayed up to.
	suppress bool
	resumed  checkpoint.Cursor

	lastClosed clock.Window
	haveClosed bool
	attackSeq  int
	eventsOut  int64
	closed     bool

	// lastAttackWin/lastAttackVictim identify the most recently finalized
	// attack — journaled with the cursor so a diverging resume replay can
	// name the offending (window, victim) pair on both sides.
	lastAttackWin    clock.Window
	lastAttackVictim netx.Addr
	haveLastAttack   bool

	lateness int
	rsdosCfg rsdos.Config

	// overload tier (overload.go): closed batches queue here instead of
	// joining inline, with admission control and disk spill under load.
	ov        Overload
	ovEnabled bool
	bucket    *resilience.TokenBucket
	queue     *backlogQueue
	// lastEnq is the enqueue frontier — the highest window handed to the
	// queue. It runs ahead of lastClosed (the emission frontier) by
	// however deep the backlog is.
	lastEnq   clock.Window
	haveEnq   bool
	offers    int64
	samplePos int
	level     int
	maxMem    int // high-water of in-memory queued batches (test probe)
	stats     OverloadStats
	lastSpill int64

	// hookAfterEmit, when set by same-package tests, runs between the
	// sink accepting a batch and the cursor journaling it — the
	// accept/sync boundary a crash can land on.
	hookAfterEmit func() error

	m  streamMetrics
	om overloadMetrics
}

// OverloadStats are the overload tier's lifetime counters, all
// deterministic for a fixed seed and configuration.
type OverloadStats struct {
	// AdmitDenied counts packets refused by the token bucket.
	AdmitDenied int64
	// ShedLate counts packets dropped by ladder rung 1 (late shedding).
	ShedLate int64
	// SampledOut counts packets dropped by ladder rung 2 (sampling).
	SampledOut int64
	// Paused counts Offers refused with ErrBackpressure (rung 3).
	Paused int64
	// OffersRejected counts every Offer that returned false, whatever
	// the rung — the number trace replay used to swallow.
	OffersRejected int64
	// SpilledBatches counts closed batches written to the spill file.
	SpilledBatches int64
	// MaxMemBatches is the high-water mark of in-memory queued batches.
	MaxMemBatches int
	// Level is the ladder level at last Offer.
	Level int
}

// Option configures a Pipeline at construction.
type Option func(*Pipeline)

// WithLateness sets the watermark lateness allowance in windows
// (default 1): a window closes once a packet arrives more than this many
// windows past it. Larger values absorb more arrival jitter at the cost
// of emission lag.
func WithLateness(n int) Option {
	return func(p *Pipeline) { p.lateness = n }
}

// WithRSDoS sets the curation thresholds (default rsdos.DefaultConfig).
func WithRSDoS(cfg rsdos.Config) Option {
	return func(p *Pipeline) { p.rsdosCfg = cfg }
}

// WithJournal persists the emission frontier to dir after every accepted
// batch, enabling exactly-once emission across restarts.
func WithJournal(dir *checkpoint.Dir) Option {
	return func(p *Pipeline) { p.journal = dir }
}

// WithResume replays against the journal's cursor: emission is
// suppressed until the stream passes the journaled frontier, so a batch
// already in the sink is never delivered again. Requires WithJournal; a
// journal without a cursor (fresh run) starts emitting immediately.
func WithResume() Option {
	return func(p *Pipeline) { p.resume = true }
}

// WithMetrics publishes stream instrumentation — lag, backlog, late
// drops, per-batch join latency — into reg (all volatile: they describe
// this run, not the deterministic result).
func WithMetrics(reg *obs.Registry) Option {
	return func(p *Pipeline) { p.m = newStreamMetrics(reg) }
}

// WithContext threads ctx into the per-batch joins (default Background).
func WithContext(ctx context.Context) Option {
	return func(p *Pipeline) { p.ctx = ctx }
}

// New builds a streaming pipeline over the telescope, joining finalized
// attacks through join and emitting to sink.
func New(tel *telescope.Telescope, join *core.Pipeline, sink Sink, opts ...Option) (*Pipeline, error) {
	p := &Pipeline{
		ctx:      context.Background(),
		join:     join,
		sink:     sink,
		lateness: 1,
		rsdosCfg: rsdos.DefaultConfig(),
	}
	for _, o := range opts {
		o(p)
	}
	p.win = rsdos.NewWindower(tel, p.lateness)
	p.tr = rsdos.NewTracker(p.rsdosCfg)
	if p.m.reg == nil {
		p.m = newStreamMetrics(obs.New())
	}
	p.om = newOverloadMetrics(p.m.reg)
	if p.ov.HighWater > 0 && p.ov.SpillDir == "" {
		return nil, fmt.Errorf("stream: Overload.HighWater requires SpillDir")
	}
	p.queue = newBacklogQueue(p.ov.HighWater, p.ov.SpillDir)
	if p.ovEnabled && p.ov.AdmitRate > 0 {
		p.bucket = resilience.NewTokenBucket(p.ov.AdmitRate, p.ov.AdmitBurst)
	}
	if p.resume {
		if p.journal == nil {
			return nil, fmt.Errorf("stream: WithResume requires WithJournal")
		}
		c, ok, err := p.journal.LoadCursor()
		if err != nil {
			return nil, err
		}
		if ok {
			p.resumed, p.suppress = c, true
		}
	}
	return p, nil
}

// Resumed returns the journaled frontier the pipeline is replaying up
// to, when resuming (false for fresh runs). File sinks truncate to
// Cursor.SinkBytes before the first Offer.
func (p *Pipeline) Resumed() (checkpoint.Cursor, bool) {
	return p.resumed, p.resume && p.suppress
}

// Offer feeds one captured packet. The boolean reports whether the
// packet was accepted; false means it was dropped and counted — late for
// its window, refused by admission control, or shed by the degradation
// ladder. The error is either ErrBackpressure (backlog at capacity; the
// packet was not consumed, retrying is safe) or a sink, journal or join
// failure — the stream is then wedged at the journaled frontier and can
// be resumed.
func (p *Pipeline) Offer(ts time.Time, pkt packet.Packet) (bool, error) {
	if p.closed {
		return false, fmt.Errorf("stream: Offer after Close")
	}
	p.offers++
	// throttled mode drains before admission, so a paused pipeline still
	// makes progress on every call
	if p.ov.DrainEvery > 1 && p.offers%int64(p.ov.DrainEvery) == 0 {
		if err := p.drain(1); err != nil {
			return false, err
		}
	}
	if p.ov.MaxBacklog > 0 {
		p.setLevel(p.levelFor(p.queue.depth()))
		if p.queue.depth() >= p.ov.MaxBacklog {
			p.stats.Paused++
			p.om.pausedOffers.Inc()
			p.reject()
			return false, ErrBackpressure
		}
	}
	if !p.bucket.Allow(ts) {
		p.stats.AdmitDenied++
		p.om.admitDenied.Inc()
		p.reject()
		return false, nil
	}
	if p.level >= 1 && p.ov.Policy >= ShedLate {
		if ms, ok := p.win.MaxSeen(); ok && clock.WindowOf(ts) < ms {
			p.stats.ShedLate++
			p.om.shedLate.Inc()
			p.reject()
			return false, nil
		}
	}
	if p.level >= 2 && p.ov.Policy >= ShedSample {
		p.samplePos++
		if p.samplePos%p.ov.SampleEvery != 0 {
			p.stats.SampledOut++
			p.om.sampledOut.Inc()
			p.reject()
			return false, nil
		}
	}
	ok := p.win.Add(ts, pkt)
	if !ok {
		p.m.lateDrops.Inc()
		p.stats.OffersRejected++
		p.m.offersRejected.Inc()
	}
	if wm, started := p.win.Watermark(); started {
		if ct := wm - 1; !p.haveEnq || ct > p.lastEnq {
			p.lastEnq, p.haveEnq = ct, true
			if err := p.queue.push(closedBatch{CT: ct, Obs: p.win.CloseReady()}); err != nil {
				return ok, err
			}
			if m := p.queue.memLen(); m > p.maxMem {
				p.maxMem = m
			}
		}
	}
	if p.ov.DrainEvery <= 1 {
		if err := p.drain(-1); err != nil {
			return ok, err
		}
	}
	p.publishGauges()
	return ok, nil
}

// reject books one refused Offer and refreshes the gauges.
func (p *Pipeline) reject() {
	p.stats.OffersRejected++
	p.m.offersRejected.Inc()
	p.publishGauges()
}

// drain joins and emits up to n queued batches in arrival order (n < 0:
// until the queue is empty).
func (p *Pipeline) drain(n int) error {
	for i := 0; n < 0 || i < n; i++ {
		b, ok, err := p.queue.pop()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := p.step(b.CT, b.Obs, false); err != nil {
			return err
		}
	}
	return nil
}

// levelFor maps backlog depth to a ladder level (MaxBacklog > 0 only).
func (p *Pipeline) levelFor(depth int) int {
	mb := p.ov.MaxBacklog
	switch {
	case depth >= mb:
		return 3
	case depth*4 >= mb*3:
		return 2
	case depth*2 >= mb:
		return 1
	}
	return 0
}

func (p *Pipeline) setLevel(lvl int) {
	if lvl == p.level {
		return
	}
	p.level = lvl
	p.om.transitions.Inc()
	p.om.level.Set(int64(lvl))
}

// Overload returns the overload tier's lifetime counters.
func (p *Pipeline) Overload() OverloadStats {
	s := p.stats
	s.SpilledBatches = p.queue.spilledTotal
	s.MaxMemBatches = p.maxMem
	s.Level = p.level
	return s
}

// Close ends the stream: the queued backlog drains, every remaining
// window is closed, every open candidate finalized, and the last batch
// emitted. The spill file, scratch state only, is deleted.
func (p *Pipeline) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	err := p.closeStream()
	if cerr := p.queue.close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func (p *Pipeline) closeStream() error {
	if err := p.drain(-1); err != nil {
		return err
	}
	maxSeen, started := p.win.MaxSeen()
	if !started {
		return nil
	}
	err := p.step(maxSeen, p.win.CloseAll(), true)
	p.publishGauges()
	return err
}

// step advances the emission frontier to ct: closed-window observations
// feed the tracker, newly unextendable attacks finalize, and the batch
// is emitted (unless suppressed by a resume replay). final additionally
// drains every open candidate (end of stream).
func (p *Pipeline) step(ct clock.Window, obs []rsdos.WindowObs, final bool) error {
	p.lastClosed, p.haveClosed = ct, true
	windows := countWindows(obs)
	for i := range obs {
		p.tr.Observe(obs[i])
	}
	var attacks []rsdos.Attack
	if final {
		attacks = p.tr.Finish()
	} else {
		attacks = p.tr.Advance(ct)
	}
	if len(obs) == 0 && len(attacks) == 0 {
		return nil
	}
	p.m.windowsClosed.Add(windows)

	if p.suppress {
		if ct <= p.resumed.ClosedThrough {
			// Replay of a batch the sink already holds: rebuild state
			// (the tracker consumed the observations, the attack
			// numbering advances) but emit nothing and skip the join.
			p.attackSeq += len(attacks)
			p.noteLastAttack(attacks)
			return nil
		}
		// First batch past the journaled frontier: the replay must have
		// reproduced the journaled run exactly, or the sink's contents
		// and ours disagree. Report both sides of the mismatch — the
		// replay's frontier attack and the journaled one — so the
		// operator can locate the offending input, not just a count.
		if p.attackSeq != p.resumed.Attacks {
			return fmt.Errorf("stream: resume replay diverged at frontier %v: replay finalized %d attacks (last %s), journal recorded %d (last %s)",
				p.resumed.ClosedThrough,
				p.attackSeq, describeAttack(p.lastAttackWin, p.lastAttackVictim, p.haveLastAttack),
				p.resumed.Attacks, describeAttack(p.resumed.LastAttackWindow, p.resumed.LastAttackVictim, p.resumed.HaveLast))
		}
		p.eventsOut = p.resumed.Events
		p.suppress = false
	}

	for i := range attacks {
		p.attackSeq++
		attacks[i].ID = p.attackSeq
	}
	p.noteLastAttack(attacks)
	var events []core.Event
	if len(attacks) > 0 {
		t0 := time.Now()
		ev, err := p.join.EventsContext(p.ctx, attacks)
		if err != nil {
			return err
		}
		p.m.joinLatency.Observe(time.Since(t0))
		events = ev
	}
	if err := p.sink.Emit(Batch{ClosedThrough: ct, Windows: obs, Attacks: attacks, Events: events}); err != nil {
		return err
	}
	if p.hookAfterEmit != nil {
		// the accept/sync boundary: the sink durably holds the batch, the
		// cursor does not yet record it
		if err := p.hookAfterEmit(); err != nil {
			return err
		}
	}
	p.m.batches.Inc()
	p.m.attacksFinalized.Add(int64(len(attacks)))
	p.m.eventsEmitted.Add(int64(len(events)))
	p.eventsOut += int64(len(events))
	if p.journal != nil {
		c := checkpoint.Cursor{
			ClosedThrough:    ct,
			Attacks:          p.attackSeq,
			Events:           p.eventsOut,
			LastAttackWindow: p.lastAttackWin,
			LastAttackVictim: p.lastAttackVictim,
			HaveLast:         p.haveLastAttack,
		}
		if off, ok := p.sink.(OffsetSink); ok {
			c.SinkBytes = off.Offset()
		}
		if err := p.journal.WriteCursor(c); err != nil {
			return err
		}
	}
	return nil
}

// noteLastAttack records the (window, victim) identity of the most
// recently finalized attack for the cursor journal.
func (p *Pipeline) noteLastAttack(attacks []rsdos.Attack) {
	if len(attacks) == 0 {
		return
	}
	last := attacks[len(attacks)-1]
	p.lastAttackWin, p.lastAttackVictim, p.haveLastAttack = last.StartWindow, last.Victim, true
}

// describeAttack renders one side of a divergence report.
func describeAttack(w clock.Window, v netx.Addr, have bool) string {
	if !have {
		return "none"
	}
	return fmt.Sprintf("window %d victim %s", w, v)
}

// ClosedThrough returns the current emission frontier (false before the
// first close).
func (p *Pipeline) ClosedThrough() (clock.Window, bool) {
	return p.lastClosed, p.haveClosed
}

// LagWindows returns how many windows the emission frontier trails the
// newest packet seen — the stream's end-to-end lag, bounded by
// lateness+1 while packets flow.
func (p *Pipeline) LagWindows() int64 {
	maxSeen, started := p.win.MaxSeen()
	if !started || !p.haveClosed {
		return 0
	}
	return int64(maxSeen - p.lastClosed)
}

// LateDrops returns how many packets were dropped for arriving after
// their window closed.
func (p *Pipeline) LateDrops() int64 { return p.win.LateDrops() }

func (p *Pipeline) publishGauges() {
	if wm, ok := p.win.Watermark(); ok {
		p.m.watermark.Set(int64(wm))
	}
	if ms, ok := p.win.MaxSeen(); ok {
		p.m.maxSeen.Set(int64(ms))
	}
	p.m.backlog.Set(int64(p.win.Backlog()))
	p.m.lag.Set(p.LagWindows())
	p.m.candidates.Set(int64(p.tr.Open()))
	p.m.lateDropsG.Set(p.win.LateDrops())
	p.om.backlog.Set(int64(p.queue.depth()))
	p.om.memBatches.Set(int64(p.queue.memLen()))
	p.om.spilled.Set(int64(p.queue.spilledLen()))
	p.om.spillBytes.Set(p.queue.writeOff)
	if d := p.queue.spilledTotal - p.lastSpill; d > 0 {
		p.om.spills.Add(d)
		p.lastSpill = p.queue.spilledTotal
	}
}

// countWindows counts distinct windows in a (window, victim)-ordered
// observation batch.
func countWindows(obs []rsdos.WindowObs) int64 {
	var n int64
	for i := range obs {
		if i == 0 || obs[i].Window != obs[i-1].Window {
			n++
		}
	}
	return n
}

// streamMetrics is the stream.* instrument set — all volatile; a live
// stream's lag and drop counts describe the run, not the result.
type streamMetrics struct {
	reg              *obs.Registry
	offersRejected   *obs.Counter
	lateDrops        *obs.Counter
	batches          *obs.Counter
	windowsClosed    *obs.Counter
	attacksFinalized *obs.Counter
	eventsEmitted    *obs.Counter
	watermark        *obs.Gauge
	maxSeen          *obs.Gauge
	backlog          *obs.Gauge
	lag              *obs.Gauge
	candidates       *obs.Gauge
	lateDropsG       *obs.Gauge
	joinLatency      *obs.Histogram
}

func newStreamMetrics(reg *obs.Registry) streamMetrics {
	if reg == nil {
		reg = obs.New()
	}
	return streamMetrics{
		reg:              reg,
		offersRejected:   reg.Counter("stream.offers_rejected", obs.Volatile()),
		lateDrops:        reg.Counter("stream.late_drops", obs.Volatile()),
		batches:          reg.Counter("stream.batches_emitted", obs.Volatile()),
		windowsClosed:    reg.Counter("stream.windows_closed", obs.Volatile()),
		attacksFinalized: reg.Counter("stream.attacks_finalized", obs.Volatile()),
		eventsEmitted:    reg.Counter("stream.events_emitted", obs.Volatile()),
		watermark:        reg.Gauge("stream.watermark", obs.Volatile()),
		maxSeen:          reg.Gauge("stream.max_seen_window", obs.Volatile()),
		backlog:          reg.Gauge("stream.backlog_windows", obs.Volatile()),
		lag:              reg.Gauge("stream.lag_windows", obs.Volatile()),
		candidates:       reg.Gauge("stream.open_candidates", obs.Volatile()),
		lateDropsG:       reg.Gauge("stream.late_drops_total", obs.Volatile()),
		joinLatency:      reg.Histogram("stream.join_latency", obs.Volatile()),
	}
}
