package stream

import (
	"math/rand/v2"
	"sort"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/backscatter"
	"dnsddos/internal/clock"
	"dnsddos/internal/packet"
	"dnsddos/internal/telescope"
)

// trace.go generates deterministic telescope packet traces from an
// attack schedule: the packet-level ground truth both the batch
// aggregator and the streaming pipeline consume in the parity harness,
// and the input source of cmd/streamjoin. The same seed always produces
// the same packets; JitterWindows perturbs only the arrival order (via
// an independent rng), so the in-order and jittered replays of one seed
// carry identical packet sets.

// TraceConfig seeds a packet-trace replay.
type TraceConfig struct {
	// Seed drives flood sampling, spoofed sources and victim responses.
	Seed uint64
	// Rate downsamples the attack floods (1.0 = every packet). Keep well
	// below 1 for realistic schedules — the telescope thins by ≈1/341
	// *after* the victim responds, so the flood itself is the hot loop.
	Rate float64
	// From..To is the inclusive window range replayed.
	From, To clock.Window
	// JitterWindows bounds arrival disorder: packets are emitted in
	// (capture time + U[0, JitterWindows windows)) order, so a packet
	// trails the newest-seen window by at most JitterWindows — a stream
	// lateness allowance of JitterWindows accepts every packet. 0 emits
	// in capture-time order within each window.
	JitterWindows int
	// ResponseRate is the victims' answer fraction (0 means 1.0).
	ResponseRate float64
}

// Replay generates the trace, invoking emit for every captured
// backscatter packet. emit returns false to stop early.
func Replay(cfg TraceConfig, sched *attacksim.Schedule, tel *telescope.Telescope, emit func(ts time.Time, p packet.Packet) bool) {
	type timed struct {
		ts time.Time
		at time.Time // arrival (jittered) time; == ts when JitterWindows is 0
		p  packet.Packet
	}
	gen := rand.New(rand.NewPCG(cfg.Seed, 0x7261636b)) // packets
	jit := rand.New(rand.NewPCG(cfg.Seed, 0x6a697474)) // arrival order only
	victim := backscatter.DefaultNameserverVictim(false)
	if cfg.ResponseRate > 0 {
		victim.ResponseRate = cfg.ResponseRate
	}
	jitterSpan := time.Duration(cfg.JitterWindows) * clock.WindowDur

	// Jitter is applied block-wise: blocks of JitterWindows+1 windows are
	// collected, ordered by arrival time, and flushed — bounded memory,
	// and disorder never exceeds the advertised JitterWindows bound.
	blockWindows := cfg.JitterWindows + 1
	var block []timed
	flush := func() bool {
		sort.SliceStable(block, func(i, j int) bool { return block[i].at.Before(block[j].at) })
		for _, tp := range block {
			if !emit(tp.ts, tp.p) {
				return false
			}
		}
		block = block[:0]
		return true
	}

	for w := cfg.From; w <= cfg.To; w++ {
		var batch []timed
		for _, spec := range sched.ActiveAt(w) {
			spec.Flood(gen, w, cfg.Rate, func(ts time.Time, p packet.Packet) bool {
				if rt, resp, ok := victim.Respond(gen, ts, p); ok && tel.Contains(resp.IP.Dst) {
					batch = append(batch, timed{ts: rt, at: rt, p: resp})
				}
				return true
			})
		}
		// capture-time order within the window; response timestamps can
		// spill ≤1ms into the next window and sort to the batch tail, so
		// the in-order trace stays window-monotonic
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].ts.Before(batch[j].ts) })
		if jitterSpan > 0 {
			for i := range batch {
				batch[i].at = batch[i].ts.Add(time.Duration(jit.Int64N(int64(jitterSpan))))
			}
		}
		block = append(block, batch...)
		if int(w-cfg.From)%blockWindows == blockWindows-1 || w == cfg.To {
			if !flush() {
				return
			}
		}
	}
}
