package stream

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dnsddos/internal/checkpoint"
	"dnsddos/internal/clock"
	"dnsddos/internal/obs"
	"dnsddos/internal/rsdos"
)

// overload.go: the admission-control and backlog tier behind Offer
// (DESIGN §3.7). Closed window batches no longer jump straight into the
// join: they enter a bounded FIFO whose depth drives an explicit
// degradation ladder, and whose tail spills to disk past a high-water
// mark so a sustained burst costs disk instead of RSS. Every decision
// here is a function of stream time and counters — never the wall clock —
// so a seeded replay sheds identically on every run.
//
// The ladder, by queue depth relative to MaxBacklog:
//
//	level 0  < 1/2        normal intake
//	level 1  ≥ 1/2        shed late packets: anything for a window older
//	                      than the newest one seen is dropped (policy ≥ shed-late)
//	level 2  ≥ 3/4        sample: only 1 in SampleEvery packets admitted
//	                      (policy ≥ shed-sample); late shedding continues
//	level 3  ≥ MaxBacklog pause: Offer refuses everything with
//	                      ErrBackpressure until the backlog drains (always
//	                      enforced — the memory bound is not a policy choice)
//
// Rungs 1 and 2 trade observation completeness for survival and are
// opt-in via ShedPolicy; rung 3 only refuses intake, never corrupts
// state, so a caller that waits and retries loses nothing.

// ErrBackpressure is returned by Offer while the backlog is at
// MaxBacklog: the pipeline is pausing intake. The packet was not
// consumed; the stream is not wedged — draining continues on every call,
// and the caller may retry, shed, or block.
var ErrBackpressure = errors.New("stream: backpressure: window backlog at capacity")

// ShedPolicy selects which rungs of the degradation ladder may drop
// observations. The pause rung is independent of policy.
type ShedPolicy int

const (
	// ShedNone never drops observations; overload is handled by spill
	// and, at the hard bound, backpressure alone.
	ShedNone ShedPolicy = iota
	// ShedLate enables rung 1: under pressure, packets for any window
	// older than the newest seen are dropped.
	ShedLate
	// ShedSample enables rungs 1 and 2: under heavy pressure only one in
	// SampleEvery packets is admitted.
	ShedSample
)

func (s ShedPolicy) String() string {
	switch s {
	case ShedLate:
		return "late"
	case ShedSample:
		return "sample"
	default:
		return "none"
	}
}

// ParseShedPolicy maps the CLI spelling to a ShedPolicy.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "none", "":
		return ShedNone, nil
	case "late":
		return ShedLate, nil
	case "sample":
		return ShedSample, nil
	}
	return ShedNone, fmt.Errorf("stream: unknown shed policy %q (want none, late or sample)", s)
}

// Overload configures the admission and backlog tier. The zero value
// disables all of it: unbounded in-memory backlog, no bucket, no spill,
// immediate drain — the pre-overload pipeline, byte for byte.
type Overload struct {
	// MaxBacklog bounds the closed-batch queue (memory + spill, in
	// batches). At the bound Offer returns ErrBackpressure. <= 0 means
	// unbounded, and the ladder never engages.
	MaxBacklog int
	// HighWater is the in-memory batch count above which closed batches
	// spill to disk (requires SpillDir). <= 0 disables spilling.
	HighWater int
	// SpillDir is where the spill file lives. Empty disables spilling.
	SpillDir string
	// Policy selects which shedding rungs may engage (default ShedNone).
	Policy ShedPolicy
	// AdmitRate, when > 0, is a token-bucket admission bound in packets
	// per second of *stream time* — the front gate ahead of the ladder.
	AdmitRate float64
	// AdmitBurst is the bucket headroom (default AdmitRate).
	AdmitBurst float64
	// SampleEvery is rung 2's thinning factor: 1 in SampleEvery packets
	// admitted (default 4, minimum 2).
	SampleEvery int
	// DrainEvery throttles the join: one queued batch is joined and
	// emitted every DrainEvery Offers. <= 1 drains the whole queue on
	// every Offer (the immediate mode production uses; throttling exists
	// so the overload soak can build a real backlog deterministically).
	DrainEvery int
}

// WithOverload installs the admission-control and backlog-spill tier.
func WithOverload(o Overload) Option {
	if o.SampleEvery < 2 {
		o.SampleEvery = 4
	}
	return func(p *Pipeline) { p.ov = o; p.ovEnabled = true }
}

// closedBatch is one queued emission step: the frontier it advances to
// and the observations of the windows that advance closed. Serialized
// with the checkpoint frame codec when spilled.
type closedBatch struct {
	CT  clock.Window
	Obs []rsdos.WindowObs
}

// spillExtent locates one spilled frame inside the spill file.
type spillExtent struct {
	off int64
	n   int
}

// backlogQueue is the bounded FIFO of closed batches: an in-memory head
// capped at highWater and a disk tail of checkpoint-framed batches. All
// in-memory entries predate all spilled ones — once spilling starts,
// every push goes to disk until the file fully drains, so pop order is
// arrival order regardless of where an entry lives. The spill file is
// scratch state, not a checkpoint: a resumed run rebuilds the queue by
// replaying input, so the file is deleted at construction and on Close.
type backlogQueue struct {
	mem     []closedBatch
	memHead int

	highWater int
	spillPath string
	f         *os.File
	extents   []spillExtent
	extHead   int
	writeOff  int64

	spilledTotal int64 // lifetime batches written to disk
}

func newBacklogQueue(highWater int, spillDir string) *backlogQueue {
	q := &backlogQueue{highWater: highWater}
	if highWater > 0 && spillDir != "" {
		q.spillPath = filepath.Join(spillDir, "stream-backlog.spill")
		// stale spill from a previous run is scratch, never state
		os.Remove(q.spillPath)
	}
	return q
}

func (q *backlogQueue) memLen() int     { return len(q.mem) - q.memHead }
func (q *backlogQueue) spilledLen() int { return len(q.extents) - q.extHead }
func (q *backlogQueue) depth() int      { return q.memLen() + q.spilledLen() }
func (q *backlogQueue) spillActive() bool {
	return q.spilledLen() > 0
}

func (q *backlogQueue) push(b closedBatch) error {
	if q.spillPath != "" && (q.spillActive() || q.memLen() >= q.highWater) {
		return q.spillPush(b)
	}
	q.mem = append(q.mem, b)
	return nil
}

func (q *backlogQueue) spillPush(b closedBatch) error {
	if q.f == nil {
		f, err := os.OpenFile(q.spillPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("stream: opening spill file: %w", err)
		}
		q.f = f
	}
	frame, err := checkpoint.EncodeFrame(&b)
	if err != nil {
		return fmt.Errorf("stream: spilling batch %v: %w", b.CT, err)
	}
	if _, err := q.f.WriteAt(frame, q.writeOff); err != nil {
		return fmt.Errorf("stream: spilling batch %v: %w", b.CT, err)
	}
	q.extents = append(q.extents, spillExtent{off: q.writeOff, n: len(frame)})
	q.writeOff += int64(len(frame))
	q.spilledTotal++
	return nil
}

// pop removes the oldest batch; the boolean is false when the queue is
// empty. Draining the last spilled batch resets and truncates the file,
// re-arming the in-memory head.
func (q *backlogQueue) pop() (closedBatch, bool, error) {
	if q.memLen() > 0 {
		b := q.mem[q.memHead]
		q.mem[q.memHead] = closedBatch{}
		q.memHead++
		if q.memHead == len(q.mem) {
			q.mem, q.memHead = q.mem[:0], 0
		}
		return b, true, nil
	}
	if q.spilledLen() > 0 {
		e := q.extents[q.extHead]
		buf := make([]byte, e.n)
		if _, err := q.f.ReadAt(buf, e.off); err != nil {
			return closedBatch{}, false, fmt.Errorf("stream: reading spilled batch: %w", err)
		}
		var b closedBatch
		if err := checkpoint.DecodeFrame(buf, &b); err != nil {
			return closedBatch{}, false, fmt.Errorf("stream: reading spilled batch: %w", err)
		}
		// gob flattens empty maps to nil; the aggregator's invariant is a
		// non-nil Ports map, so restore it — a spilled batch must be
		// indistinguishable from one that stayed in memory
		for i := range b.Obs {
			if b.Obs[i].Ports == nil {
				b.Obs[i].Ports = make(map[uint16]int64)
			}
		}
		q.extHead++
		if q.extHead == len(q.extents) {
			q.extents, q.extHead, q.writeOff = q.extents[:0], 0, 0
			if err := q.f.Truncate(0); err != nil {
				return closedBatch{}, false, fmt.Errorf("stream: truncating drained spill: %w", err)
			}
		}
		return b, true, nil
	}
	return closedBatch{}, false, nil
}

// close releases and deletes the spill file.
func (q *backlogQueue) close() error {
	if q.f == nil {
		return nil
	}
	err := q.f.Close()
	q.f = nil
	if rmErr := os.Remove(q.spillPath); rmErr != nil && err == nil {
		err = rmErr
	}
	return err
}

// overloadMetrics is the overload.* instrument set — volatile, like all
// stream instrumentation: shed counts under a given config are
// deterministic, but they describe this run's intake, not the study
// result.
type overloadMetrics struct {
	level        *obs.Gauge
	transitions  *obs.Counter
	admitDenied  *obs.Counter
	shedLate     *obs.Counter
	sampledOut   *obs.Counter
	pausedOffers *obs.Counter
	backlog      *obs.Gauge
	memBatches   *obs.Gauge
	spilled      *obs.Gauge
	spills       *obs.Counter
	spillBytes   *obs.Gauge
}

func newOverloadMetrics(reg *obs.Registry) overloadMetrics {
	return overloadMetrics{
		level:        reg.Gauge("overload.level", obs.Volatile()),
		transitions:  reg.Counter("overload.level_transitions", obs.Volatile()),
		admitDenied:  reg.Counter("overload.admit_denied", obs.Volatile()),
		shedLate:     reg.Counter("overload.shed_late_packets", obs.Volatile()),
		sampledOut:   reg.Counter("overload.sampled_out", obs.Volatile()),
		pausedOffers: reg.Counter("overload.paused_offers", obs.Volatile()),
		backlog:      reg.Gauge("overload.backlog_batches", obs.Volatile()),
		memBatches:   reg.Gauge("overload.mem_batches", obs.Volatile()),
		spilled:      reg.Gauge("overload.spilled_batches", obs.Volatile()),
		spills:       reg.Counter("overload.spills", obs.Volatile()),
		spillBytes:   reg.Gauge("overload.spill_bytes", obs.Volatile()),
	}
}
