package stream

import (
	"sort"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/netx"
	"dnsddos/internal/rsdos"
)

// canon.go bridges the two attack numberings. The batch feed
// (rsdos.Infer) numbers attacks by (StartWindow, Victim) rank over the
// whole feed — a property a bounded-lag stream cannot know while
// long-lived attacks are still open, so the stream numbers in
// finalization order instead. Canonicalize maps stream-numbered output
// onto the batch numbering; after it, a streamed run and a batch run
// over the same packets must agree byte for byte (the parity
// acceptance).

type attackKey struct {
	w clock.Window
	v netx.Addr
}

// Canonicalize renumbers stream-emitted attacks and events into batch
// feed order: attacks sorted by (StartWindow, Victim) — a unique key,
// since one victim's attacks never overlap — with IDs 1..n, and events
// stably reordered by their attack's canonical ID. Inputs are not
// mutated.
func Canonicalize(attacks []rsdos.Attack, events []core.Event) ([]rsdos.Attack, []core.Event) {
	ca := make([]rsdos.Attack, len(attacks))
	copy(ca, attacks)
	sort.Slice(ca, func(i, j int) bool {
		if ca[i].StartWindow != ca[j].StartWindow {
			return ca[i].StartWindow < ca[j].StartWindow
		}
		return ca[i].Victim < ca[j].Victim
	})
	ids := make(map[attackKey]int, len(ca))
	for i := range ca {
		ca[i].ID = i + 1
		ids[attackKey{ca[i].StartWindow, ca[i].Victim}] = i + 1
	}
	ce := make([]core.Event, len(events))
	copy(ce, events)
	for i := range ce {
		ce[i].Attack.ID = ids[attackKey{ce[i].Attack.StartWindow, ce[i].Attack.Victim}]
	}
	// stable: within one attack the join's event order is already
	// canonical (both paths run the same engine over the same index)
	sort.SliceStable(ce, func(i, j int) bool { return ce[i].Attack.ID < ce[j].Attack.ID })
	return ca, ce
}
