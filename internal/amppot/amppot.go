// Package amppot models an AmpPot-style honeypot fleet (Krämer et al.,
// cited in §7): fake amplifiers that attackers discover by scanning and
// then abuse as reflectors, letting a third party observe reflection
// attacks — the attack class the network telescope cannot see (§2.1, §4.3).
//
// Jonker et al. (cited in §4.3) compared the two data sources and found
// ≈60% of attacks randomly spoofed (RSDoS feed) and ≈40% reflected
// (AmpPot). The combined-feed analysis in the benchmark suite reproduces
// that split and shows how multi-vector attacks appear in both feeds,
// explaining part of the telescope's intensity blind spot (§6.4).
package amppot

import (
	"math/rand/v2"
	"sort"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/stats"
)

// Config sizes the honeypot fleet and its inference thresholds.
type Config struct {
	// Honeypots is the number of deployed fake amplifiers.
	Honeypots int
	// ReflectorPool is the number of genuine open reflectors attackers
	// can choose from; the fleet's visibility is Honeypots/ReflectorPool
	// per reflector slot an attacker fills.
	ReflectorPool int
	// ReflectorsPerAttack is how many reflectors a typical attack
	// abuses.
	ReflectorsPerAttack int
	// MinRequests is the per-window request threshold for a victim to
	// count as under attack (noise filtering, as with the telescope).
	MinRequests int64
	// MaxGapWindows merges windows into one attack, as in the RSDoS
	// inference.
	MaxGapWindows int
}

// DefaultConfig mirrors the published AmpPot deployment scale: tens of
// honeypots in a population of roughly a million abusable reflectors, with
// each attack cycling thousands of them.
func DefaultConfig() Config {
	return Config{
		Honeypots:           48,
		ReflectorPool:       250_000,
		ReflectorsPerAttack: 5000,
		MinRequests:         5,
		MaxGapWindows:       2,
	}
}

// Attack is one inferred reflection attack.
type Attack struct {
	ID          int
	Victim      netx.Addr
	StartWindow clock.Window
	EndWindow   clock.Window
	// Requests is the total spoofed-victim requests the fleet received.
	Requests int64
	// Honeypots is how many distinct honeypots the attack reached.
	Honeypots int
	// Port is the abused service port (the amplification protocol).
	Port uint16
}

// Start returns the attack start time.
func (a *Attack) Start() time.Time { return a.StartWindow.Start() }

// End returns the exclusive attack end time.
func (a *Attack) End() time.Time { return a.EndWindow.End() }

// Duration returns the inferred duration.
func (a *Attack) Duration() time.Duration { return a.End().Sub(a.Start()) }

// Fleet is the honeypot deployment.
type Fleet struct {
	cfg Config
}

// NewFleet builds a fleet.
func NewFleet(cfg Config) *Fleet {
	if cfg.Honeypots <= 0 || cfg.ReflectorPool <= 0 {
		panic("amppot: fleet needs honeypots and a reflector pool")
	}
	return &Fleet{cfg: cfg}
}

// windowObs is one (victim, window) observation at the fleet.
type windowObs struct {
	window    clock.Window
	victim    netx.Addr
	requests  int64
	honeypots int
	port      uint16
}

// Observe runs the fleet against a schedule: every reflection component
// whose reflector selection includes honeypots produces observations. The
// victim's identity is read from the spoofed source of the reflected
// requests, as the real AmpPot does.
func (f *Fleet) Observe(rng *rand.Rand, sched *attacksim.Schedule) []Attack {
	// probability that a given honeypot is among an attack's reflectors
	perPot := float64(f.cfg.ReflectorsPerAttack) / float64(f.cfg.ReflectorPool)
	var obs []windowObs
	for _, s := range sched.Specs() {
		if s.Vector != attacksim.VectorReflection {
			continue
		}
		pots := int(stats.Binomial(rng, int64(f.cfg.Honeypots), perPot))
		if pots == 0 {
			continue
		}
		// the abused reflectors split the attack's request stream
		// roughly evenly; each selected honeypot sees its share
		shareRate := s.PPS / float64(f.cfg.ReflectorsPerAttack) * float64(pots)
		port := uint16(53)
		if len(s.Ports) > 0 {
			port = s.Ports[0]
		}
		startW := clock.WindowOf(s.Start)
		endW := clock.WindowOf(s.End.Add(-1))
		for w := startW; w <= endW; w++ {
			frac, ok := s.ActiveIn(w)
			if !ok {
				continue
			}
			lambda := shareRate * frac * clock.WindowDur.Seconds()
			n := stats.Poisson(rng, lambda)
			if n > 0 {
				obs = append(obs, windowObs{window: w, victim: s.Target, requests: n, honeypots: pots, port: port})
			}
		}
	}
	return f.infer(obs)
}

// infer merges window observations into attacks, mirroring the RSDoS
// curation structure.
func (f *Fleet) infer(obs []windowObs) []Attack {
	byVictim := make(map[netx.Addr][]windowObs)
	for _, o := range obs {
		if o.requests >= f.cfg.MinRequests {
			byVictim[o.victim] = append(byVictim[o.victim], o)
		}
	}
	victims := make([]netx.Addr, 0, len(byVictim))
	for v := range byVictim {
		victims = append(victims, v)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	var attacks []Attack
	for _, v := range victims {
		wins := byVictim[v]
		sort.Slice(wins, func(i, j int) bool { return wins[i].window < wins[j].window })
		var cur *Attack
		flush := func() {
			if cur != nil {
				attacks = append(attacks, *cur)
				cur = nil
			}
		}
		for _, o := range wins {
			if cur != nil && int64(o.window-cur.EndWindow) > int64(f.cfg.MaxGapWindows)+1 {
				flush()
			}
			if cur == nil {
				cur = &Attack{Victim: v, StartWindow: o.window, EndWindow: o.window, Port: o.port}
			}
			cur.EndWindow = o.window
			cur.Requests += o.requests
			if o.honeypots > cur.Honeypots {
				cur.Honeypots = o.honeypots
			}
		}
		flush()
	}
	sort.Slice(attacks, func(i, j int) bool {
		if attacks[i].StartWindow != attacks[j].StartWindow {
			return attacks[i].StartWindow < attacks[j].StartWindow
		}
		return attacks[i].Victim < attacks[j].Victim
	})
	for i := range attacks {
		attacks[i].ID = i + 1
	}
	return attacks
}

// FeedComparison is the Jonker-et-al.-style joint view of the two feeds.
type FeedComparison struct {
	SpoofedOnly   int // seen only by the telescope
	ReflectedOnly int // seen only by the honeypots
	Both          int // multi-vector attacks in both feeds
}

// SpoofedShare returns the telescope-visible share of all observed attacks
// (≈0.6 in Jonker et al.).
func (fc FeedComparison) SpoofedShare() float64 {
	total := fc.SpoofedOnly + fc.ReflectedOnly + fc.Both
	if total == 0 {
		return 0
	}
	return float64(fc.SpoofedOnly+fc.Both) / float64(total)
}

// CompareFeeds joins RSDoS attacks (victim + interval) with AmpPot attacks
// by victim identity and time overlap.
func CompareFeeds(spoofed []SpoofedAttack, reflected []Attack) FeedComparison {
	type iv struct{ from, to time.Time }
	byVictim := make(map[netx.Addr][]iv)
	for _, a := range reflected {
		byVictim[a.Victim] = append(byVictim[a.Victim], iv{a.Start(), a.End()})
	}
	matchedReflected := make(map[netx.Addr][]bool)
	for v, list := range byVictim {
		matchedReflected[v] = make([]bool, len(list))
	}
	var fc FeedComparison
	for _, a := range spoofed {
		matched := false
		for i, r := range byVictim[a.Victim] {
			if a.From.Before(r.to) && a.To.After(r.from) {
				matched = true
				matchedReflected[a.Victim][i] = true
			}
		}
		if matched {
			fc.Both++
		} else {
			fc.SpoofedOnly++
		}
	}
	for v, list := range matchedReflected {
		_ = v
		for _, m := range list {
			if !m {
				fc.ReflectedOnly++
			}
		}
	}
	return fc
}

// SpoofedAttack is the minimal view of an RSDoS feed entry CompareFeeds
// needs (victim and interval), keeping this package independent of the
// telescope-side record schema.
type SpoofedAttack struct {
	Victim   netx.Addr
	From, To time.Time
}
