package amppot

import (
	"math/rand/v2"
	"testing"
	"time"

	"dnsddos/internal/attacksim"
	"dnsddos/internal/clock"
	"dnsddos/internal/netx"
	"dnsddos/internal/packet"
)

var base = clock.StudyStart.Add(24 * time.Hour)

func reflSpec(victim string, start time.Time, dur time.Duration, pps float64) attacksim.Spec {
	return attacksim.Spec{
		Target: netx.MustParseAddr(victim),
		Vector: attacksim.VectorReflection,
		Proto:  packet.ProtoUDP,
		Ports:  []uint16{53},
		Start:  start,
		End:    start.Add(dur),
		PPS:    pps,
	}
}

// highVisibility makes every honeypot a certain reflector pick so tests
// are deterministic in coverage.
func highVisibility() Config {
	cfg := DefaultConfig()
	cfg.ReflectorsPerAttack = cfg.ReflectorPool // attacker uses everything
	return cfg
}

func TestObserveReflectionAttack(t *testing.T) {
	fleet := NewFleet(highVisibility())
	rng := rand.New(rand.NewPCG(1, 1))
	sched := attacksim.NewSchedule([]attacksim.Spec{
		reflSpec("120.0.0.1", base, time.Hour, 1e6),
	})
	attacks := fleet.Observe(rng, sched)
	if len(attacks) != 1 {
		t.Fatalf("attacks = %d", len(attacks))
	}
	a := attacks[0]
	if a.Victim != netx.MustParseAddr("120.0.0.1") || a.Port != 53 {
		t.Errorf("attack = %+v", a)
	}
	if a.Start() != base || a.End() != base.Add(time.Hour) {
		t.Errorf("interval = %v..%v", a.Start(), a.End())
	}
	if a.Honeypots != 48 {
		t.Errorf("honeypots reached = %d", a.Honeypots)
	}
	if a.Requests == 0 {
		t.Error("no requests recorded")
	}
}

func TestSpoofedAttacksInvisible(t *testing.T) {
	fleet := NewFleet(highVisibility())
	rng := rand.New(rand.NewPCG(2, 2))
	sched := attacksim.NewSchedule([]attacksim.Spec{{
		Target: netx.MustParseAddr("120.0.0.1"),
		Vector: attacksim.VectorRandomSpoofed,
		Proto:  packet.ProtoTCP, Ports: []uint16{53},
		Start: base, End: base.Add(time.Hour), PPS: 1e6,
	}})
	if got := fleet.Observe(rng, sched); len(got) != 0 {
		t.Errorf("spoofed attack visible to honeypots: %d", len(got))
	}
}

func TestLowRateBelowThresholdFiltered(t *testing.T) {
	cfg := highVisibility()
	cfg.MinRequests = 1000000
	fleet := NewFleet(cfg)
	rng := rand.New(rand.NewPCG(3, 3))
	sched := attacksim.NewSchedule([]attacksim.Spec{
		reflSpec("120.0.0.1", base, time.Hour, 100),
	})
	if got := fleet.Observe(rng, sched); len(got) != 0 {
		t.Errorf("sub-threshold attack inferred: %d", len(got))
	}
}

func TestSmallReflectorSubsetRarelySeen(t *testing.T) {
	// an attacker abusing 10 reflectors out of a million almost never
	// picks a honeypot
	cfg := DefaultConfig()
	cfg.ReflectorsPerAttack = 10
	fleet := NewFleet(cfg)
	rng := rand.New(rand.NewPCG(4, 4))
	var specs []attacksim.Spec
	for i := 0; i < 200; i++ {
		specs = append(specs, reflSpec("120.0.0.1", base.Add(time.Duration(i)*2*time.Hour), time.Hour, 1e6))
	}
	attacks := fleet.Observe(rng, attacksim.NewSchedule(specs))
	if len(attacks) > 10 {
		t.Errorf("tiny reflector subsets seen %d/200 times", len(attacks))
	}
}

func TestGapMerging(t *testing.T) {
	fleet := NewFleet(highVisibility())
	rng := rand.New(rand.NewPCG(5, 5))
	sched := attacksim.NewSchedule([]attacksim.Spec{
		reflSpec("120.0.0.1", base, 10*time.Minute, 1e6),
		reflSpec("120.0.0.1", base.Add(15*time.Minute), 10*time.Minute, 1e6), // 1-window gap
		reflSpec("120.0.0.1", base.Add(2*time.Hour), 10*time.Minute, 1e6),    // far later
	})
	attacks := fleet.Observe(rng, sched)
	if len(attacks) != 2 {
		t.Fatalf("attacks = %d, want 2 (merge across small gap, split across large)", len(attacks))
	}
}

func TestCompareFeeds(t *testing.T) {
	v1 := netx.MustParseAddr("120.0.0.1")
	v2 := netx.MustParseAddr("120.0.0.2")
	v3 := netx.MustParseAddr("120.0.0.3")
	spoofed := []SpoofedAttack{
		{Victim: v1, From: base, To: base.Add(time.Hour)},                          // multi-vector: also reflected
		{Victim: v2, From: base, To: base.Add(time.Hour)},                          // spoofed only
		{Victim: v1, From: base.Add(48 * time.Hour), To: base.Add(49 * time.Hour)}, // spoofed only (no overlap)
	}
	reflected := []Attack{
		{Victim: v1, StartWindow: clock.WindowOf(base), EndWindow: clock.WindowOf(base.Add(time.Hour)) - 1},
		{Victim: v3, StartWindow: clock.WindowOf(base), EndWindow: clock.WindowOf(base.Add(time.Hour)) - 1},
	}
	fc := CompareFeeds(spoofed, reflected)
	if fc.Both != 1 || fc.SpoofedOnly != 2 || fc.ReflectedOnly != 1 {
		t.Errorf("comparison = %+v", fc)
	}
	if s := fc.SpoofedShare(); s != 0.75 {
		t.Errorf("spoofed share = %v", s)
	}
}

func TestHoneypotShareStatistics(t *testing.T) {
	// with a sparse pool, P(honeypot selected) = 5000/1e6 per pot; over
	// 48 pots, expected pots-per-attack ≈ 0.24, so roughly 1 in 5
	// attacks is observed at all — the real AmpPot's partial visibility
	cfg := DefaultConfig()
	cfg.ReflectorPool = 1_000_000
	fleet := NewFleet(cfg)
	rng := rand.New(rand.NewPCG(6, 6))
	var specs []attacksim.Spec
	const n = 600
	for i := 0; i < n; i++ {
		v := netx.Addr(0x78000000 + uint32(i))
		specs = append(specs, attacksim.Spec{
			Target: v, Vector: attacksim.VectorReflection, Proto: packet.ProtoUDP,
			Ports: []uint16{53}, Start: base, End: base.Add(time.Hour), PPS: 5e6,
		})
	}
	attacks := fleet.Observe(rng, attacksim.NewSchedule(specs))
	frac := float64(len(attacks)) / n
	// P(≥1 pot) = 1-(1-0.005)^48 ≈ 0.214
	if frac < 0.13 || frac > 0.30 {
		t.Errorf("observed fraction = %.3f, want ≈0.21", frac)
	}
}
