package distjoin

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"time"

	"dnsddos/internal/checkpoint"
	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/resilience"
	"dnsddos/internal/study"
)

// coordinator.go owns the run: a single-goroutine event loop holds all
// fleet and plan state, fed by per-connection reader goroutines, a
// liveness ticker, and retry timers. Workers never share state; every
// decision — assignment, reassignment, quarantine, journaling — happens
// in the loop, which is what keeps the exactly-once bookkeeping simple
// enough to trust.

const (
	// sweepMaxAttempts mirrors the PR 3 in-process supervisor: a day-shard
	// failure (panic or lost worker) is retried once elsewhere, then the
	// day is quarantined.
	sweepMaxAttempts = 2
	// joinMaxFailures bounds *reported* join-range failures (panics);
	// ranges have no quarantine equivalent — results must be complete — so
	// a range that keeps panicking aborts the run. Lost workers do not
	// count: a range may be reassigned any number of times.
	joinMaxFailures = 2
	// defaultNumRanges is the fleet-size-independent join partition width,
	// clamped to the shard count. Finer than any plausible fleet so ranges
	// rebalance when workers come and go, deterministic so an unjournaled
	// rerun partitions identically.
	defaultNumRanges = 32

	planRecord = "join_plan.ckpt"
)

func rangeRecord(idx int) string { return fmt.Sprintf("join_range_%04d.ckpt", idx) }

// joinPlan is the journaled join partition: a resumed coordinator must
// slice shards exactly as its predecessor did or completed range records
// would describe different work.
type joinPlan struct {
	NumShards int
	NumRanges int
}

// rangeResult is the journaled output of one completed shard range.
type rangeResult struct {
	Events []core.TaggedEvent
}

// CoordOption configures a Coordinator.
type CoordOption func(*coordOptions)

type coordOptions struct {
	addr         string
	heartbeat    time.Duration
	ckptDir      string
	resume       bool
	reg          *obs.Registry
	minWork      int
	numRanges    int
	backoff      time.Duration
	suspectAfter int
	deadAfter    int
}

// WithListenAddr sets the TCP listen address (default 127.0.0.1:0).
func WithListenAddr(addr string) CoordOption {
	return func(o *coordOptions) { o.addr = addr }
}

// WithHeartbeatInterval sets the fleet heartbeat interval (default 1s).
// Suspicion and death thresholds scale with it.
func WithHeartbeatInterval(d time.Duration) CoordOption {
	return func(o *coordOptions) { o.heartbeat = d }
}

// WithCheckpointDir journals run state — completed days, the join plan,
// completed shard ranges — to dir so a killed coordinator can resume.
func WithCheckpointDir(dir string) CoordOption {
	return func(o *coordOptions) { o.ckptDir = dir }
}

// WithResume resumes from the journal in the checkpoint directory instead
// of starting fresh; the directory's header must match the configuration.
func WithResume(resume bool) CoordOption {
	return func(o *coordOptions) { o.resume = resume }
}

// WithMetrics publishes fleet state and imported sweep metrics into reg,
// typically one served over /metrics.json (obs.Serve).
func WithMetrics(reg *obs.Registry) CoordOption {
	return func(o *coordOptions) { o.reg = reg }
}

// WithMinWorkers holds initial dispatch until at least n workers are
// registered (default 1). It is a start gate only: once the fleet has
// reached n, a drain or death below n never stalls the run — the
// remaining workers absorb the reassigned work.
func WithMinWorkers(n int) CoordOption {
	return func(o *coordOptions) { o.minWork = n }
}

// WithSuspectAfter sets how many missed heartbeat intervals mark a
// worker suspect, reassigning its in-flight task (default 5). Must be
// >= 1 and below the dead threshold.
func WithSuspectAfter(n int) CoordOption {
	return func(o *coordOptions) { o.suspectAfter = n }
}

// WithDeadAfter sets how many missed heartbeat intervals mark a worker
// dead, forcibly disconnecting it (default 10). Must be above the
// suspect threshold.
func WithDeadAfter(n int) CoordOption {
	return func(o *coordOptions) { o.deadAfter = n }
}

// WithNumRanges overrides the join partition width (default
// min(shards, 32)); clamped to the shard count, journaled with the plan.
func WithNumRanges(n int) CoordOption {
	return func(o *coordOptions) { o.numRanges = n }
}

// Coordinator drives one distributed study run.
type Coordinator struct {
	cfg  study.Config
	opts coordOptions
	l    net.Listener
	reg  *obs.Registry
	m    fleetMetrics
	// retry paces task requeues with decorrelated jitter — the shared
	// policy layer, not a package-local constant.
	retry *resilience.RetryBudget
}

// NewCoordinator validates cfg, binds the listen socket (so Addr is
// available before Run), and prepares the fleet metrics.
func NewCoordinator(cfg study.Config, opts ...CoordOption) (*Coordinator, error) {
	if err := study.Validate(cfg); err != nil {
		return nil, err
	}
	o := coordOptions{
		addr:         "127.0.0.1:0",
		heartbeat:    time.Second,
		minWork:      1,
		backoff:      resilience.DefaultBase,
		suspectAfter: 5,
		deadAfter:    10,
	}
	for _, fn := range opts {
		fn(&o)
	}
	if o.resume && o.ckptDir == "" {
		return nil, fmt.Errorf("distjoin: WithResume requires WithCheckpointDir")
	}
	if o.suspectAfter < 1 || o.deadAfter < 1 {
		return nil, fmt.Errorf("distjoin: heartbeat thresholds must be >= 1 (suspect %d, dead %d)", o.suspectAfter, o.deadAfter)
	}
	if o.suspectAfter >= o.deadAfter {
		return nil, fmt.Errorf("distjoin: suspect threshold %d must be below dead threshold %d", o.suspectAfter, o.deadAfter)
	}
	if o.reg == nil {
		o.reg = obs.New()
	}
	l, err := net.Listen("tcp", o.addr)
	if err != nil {
		return nil, fmt.Errorf("distjoin: listening on %s: %w", o.addr, err)
	}
	retry := resilience.NewRetryBudget(0, o.backoff, resilience.DefaultCap, nil)
	return &Coordinator{cfg: cfg, opts: o, l: l, reg: o.reg, m: newFleetMetrics(o.reg), retry: retry}, nil
}

// Addr returns the coordinator's bound listen address — hand it to
// workers.
func (c *Coordinator) Addr() string { return c.l.Addr().String() }

// workerState is a fleet member's liveness classification.
type workerState int

const (
	stateLive workerState = iota
	stateSuspect
	stateDraining
)

// task is one unit of fleet work.
type task struct {
	join bool // false: day sweep; true: join range
	day  clock.Day
	rng  int
	// attempts counts failed attempts (reported panics, lost workers);
	// sweepMaxAttempts quarantines a day, joinMaxFailures aborts the run.
	attempts   int
	lastReason string
	lastStack  string
}

func (t *task) describe() string {
	if t.join {
		return fmt.Sprintf("join range %d", t.rng)
	}
	return fmt.Sprintf("day %d", int32(t.day))
}

// fleetWorker is the coordinator-side view of one connection.
type fleetWorker struct {
	id        int
	name      string
	conn      net.Conn
	wr        *wire
	outbox    chan *message
	wdone     chan struct{} // closed when the writer goroutine exits
	state     workerState
	hello     bool
	joinReady bool
	lastSeen  time.Time
	inflight  *task
	started   time.Time
}

// coordEvent is one event-loop delivery.
type coordEvent struct {
	w     *fleetWorker // non-nil for connection events
	m     *message     // non-nil for decoded frames
	err   error        // non-nil for connection failures
	conn  net.Conn     // non-nil for new connections
	retry *task        // non-nil when a backoff timer fired
	tick  bool
}

// Run executes the distributed study and returns the completed run,
// byte-identical to single-process study.RunContext over the same
// configuration. It returns early only on cancellation (the journal, if
// any, stays resumable), checkpoint I/O failure, or an unrecoverable
// plan mismatch.
func (c *Coordinator) Run(ctx context.Context) (*study.Study, error) {
	defer c.l.Close()

	sess, err := study.NewSession(ctx, c.cfg, c.reg)
	if err != nil {
		return nil, err
	}
	cfgJSON, err := json.Marshal(c.cfg)
	if err != nil {
		return nil, fmt.Errorf("distjoin: encoding config: %w", err)
	}

	st := &runState{
		c:        c,
		sess:     sess,
		cfgJSON:  cfgJSON,
		evs:      make(chan coordEvent, 1024),
		workers:  make(map[int]*fleetWorker),
		daySnaps: make(map[clock.Day]nsset.Snapshot),
		ranges:   make(map[int][]core.TaggedEvent),
	}
	if err := st.openJournal(); err != nil {
		return nil, err
	}
	st.queueSweeps()

	// Accept loop: hands raw connections to the event loop.
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := c.l.Accept()
			if err != nil {
				return
			}
			st.evs <- coordEvent{conn: conn}
		}
	}()
	ticker := time.NewTicker(c.opts.heartbeat)
	defer ticker.Stop()
	defer st.closeAll()

	for {
		// Phase transitions and completion are checked between events so
		// every path (result, failure, worker change) funnels through one
		// place.
		if st.sweepsDone() && !st.joinStarted {
			if err := st.startJoin(ctx); err != nil {
				return nil, err
			}
		}
		if st.joinStarted && st.joinDone() {
			return st.finish(ctx)
		}
		st.schedule()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
			st.checkLiveness()
		case ev := <-st.evs:
			switch {
			case ev.conn != nil:
				st.addConn(ev.conn)
			case ev.retry != nil:
				st.enqueue(ev.retry)
			case ev.err != nil:
				st.dropWorker(ev.w, ev.err)
			case ev.m != nil:
				if err := st.handle(ev.w, ev.m); err != nil {
					return nil, err
				}
			}
		}
	}
}

// runState is the event loop's single-goroutine state.
type runState struct {
	c       *Coordinator
	sess    *study.Session
	cfgJSON []byte
	evs     chan coordEvent

	nextID  int
	workers map[int]*fleetWorker

	ckpt    *checkpoint.Dir
	pending []*task // dispatch queue, deterministic order

	// sweep phase
	daySnaps map[clock.Day]nsset.Snapshot
	resumed  int
	complete int
	skipped  []study.SkippedDay

	// fleetStarted latches once minWorkers registered simultaneously;
	// dispatch is gated only until then.
	fleetStarted bool

	// join phase
	joinStarted bool
	plan        joinPlan
	loadedPlan  bool
	pipe        *core.Pipeline
	agg         *nsset.Aggregator
	ranges      map[int][]core.TaggedEvent
}

// openJournal opens (or creates) the checkpoint directory and loads every
// completed record: day snapshots, the join plan, and completed ranges.
func (st *runState) openJournal() error {
	o := st.c.opts
	if o.ckptDir == "" {
		return nil
	}
	hash, err := study.ConfigHash(st.c.cfg)
	if err != nil {
		return err
	}
	hdr := checkpoint.Header{ConfigHash: hash, Seed: st.c.cfg.MeasureSeed}
	if !o.resume {
		st.ckpt, err = checkpoint.Create(o.ckptDir, hdr)
		return err
	}
	if st.ckpt, err = checkpoint.Resume(o.ckptDir, hdr); err != nil {
		return err
	}
	snaps, err := st.ckpt.LoadDays(st.c.cfg.FromDay, st.c.cfg.ToDay)
	if err != nil {
		return err
	}
	for d, snap := range snaps {
		st.daySnaps[d] = snap
	}
	st.resumed = len(snaps)
	if ok, err := st.ckpt.Load(planRecord, &st.plan); err != nil {
		return err
	} else if ok {
		st.loadedPlan = true
		for i := 0; i < st.plan.NumRanges; i++ {
			var rr rangeResult
			if ok, err := st.ckpt.Load(rangeRecord(i), &rr); err != nil {
				return err
			} else if ok {
				st.ranges[i] = rr.Events
			}
		}
	}
	return nil
}

// queueSweeps fills the dispatch queue with every day not already
// journaled, ascending. Quarantined days of a previous incarnation were
// never journaled, so they re-run — and re-quarantine — deterministically,
// exactly like the in-process supervisor on resume.
func (st *runState) queueSweeps() {
	for d := st.c.cfg.FromDay; d <= st.c.cfg.ToDay; d++ {
		if _, ok := st.daySnaps[d]; !ok {
			st.pending = append(st.pending, &task{day: d})
		}
	}
}

// sweepsDone reports whether every day is accounted for: journaled,
// quarantined — nothing pending or in flight.
func (st *runState) sweepsDone() bool {
	if st.joinStarted {
		return true
	}
	for _, t := range st.pending {
		if !t.join {
			return false
		}
	}
	for _, w := range st.workers {
		if w.inflight != nil && !w.inflight.join {
			return false
		}
	}
	done := len(st.daySnaps) + len(st.skipped)
	return done == int(st.c.cfg.ToDay-st.c.cfg.FromDay)+1
}

// startJoin transitions to the join phase: build the coordinator's
// pipeline over the merged measurements, fix (or verify) the journaled
// partition plan, and queue the incomplete ranges.
func (st *runState) startJoin(ctx context.Context) error {
	st.joinStarted = true
	sort.Slice(st.skipped, func(i, j int) bool { return st.skipped[i].Day < st.skipped[j].Day })

	st.agg = st.sess.NewAggregator()
	for _, d := range st.sortedDays() {
		st.agg.AddSnapshot(st.daySnaps[d])
	}
	st.pipe = st.sess.NewPipeline(st.agg, st.quarantined(), st.c.reg)
	numShards := st.pipe.JoinShardCount(st.sess.Attacks)

	if st.loadedPlan {
		if st.plan.NumShards != numShards {
			return fmt.Errorf("distjoin: journaled join plan has %d shards, this run computes %d — refusing to resume",
				st.plan.NumShards, numShards)
		}
	} else {
		nr := st.c.opts.numRanges
		if nr <= 0 {
			nr = defaultNumRanges
		}
		if nr > numShards {
			nr = numShards
		}
		if nr < 1 {
			nr = 1
		}
		st.plan = joinPlan{NumShards: numShards, NumRanges: nr}
		if st.ckpt != nil {
			if err := st.ckpt.Write(planRecord, &st.plan); err != nil {
				return err
			}
		}
	}
	for i := 0; i < st.plan.NumRanges; i++ {
		if _, ok := st.ranges[i]; !ok {
			st.pending = append(st.pending, &task{join: true, rng: i})
		}
	}
	// Workers that registered during the sweep phase need the join state
	// before any range assignment; setup is sent lazily by schedule().
	return ctx.Err()
}

func (st *runState) sortedDays() []clock.Day {
	days := make([]clock.Day, 0, len(st.daySnaps))
	for d := range st.daySnaps {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	return days
}

func (st *runState) quarantined() []clock.Day {
	out := make([]clock.Day, len(st.skipped))
	for i := range st.skipped {
		out[i] = st.skipped[i].Day
	}
	return out
}

// joinDone reports whether every range result is in.
func (st *runState) joinDone() bool {
	return st.joinStarted && len(st.ranges) == st.plan.NumRanges
}

// finish assembles the Study, tells the fleet to exit, and returns.
func (st *runState) finish(ctx context.Context) (*study.Study, error) {
	parts := make([][]core.TaggedEvent, 0, st.plan.NumRanges)
	for i := 0; i < st.plan.NumRanges; i++ {
		parts = append(parts, st.ranges[i])
	}
	s := &study.Study{
		Config:    st.c.cfg,
		World:     st.sess.World,
		Schedule:  st.sess.Schedule,
		Telescope: st.sess.Telescope,
		Obs:       st.sess.Obs,
		Attacks:   st.sess.Attacks,
		Net:       st.sess.Net,
		Resolver:  st.sess.Resolver,
		Engine:    st.sess.Engine,
		Agg:       st.agg,
		Pipeline:  st.pipe,
		Metrics:   st.c.reg,
	}
	s.Classified = st.pipe.Classify(st.sess.Attacks)
	s.Events = core.MergeTaggedEvents(parts)
	s.Report = study.RunReport{
		ResumedDays:   st.resumed,
		CompletedDays: st.complete,
		SkippedDays:   st.skipped,
	}
	snap := st.c.reg.StableSnapshot()
	s.Report.Metrics = &snap

	for _, w := range st.workers {
		st.post(w, &message{Kind: kindShutdown})
	}
	return s, ctx.Err()
}

// addConn registers a raw connection and spawns its reader and writer.
func (st *runState) addConn(conn net.Conn) {
	st.nextID++
	w := &fleetWorker{
		id:       st.nextID,
		conn:     conn,
		wr:       &wire{conn: conn},
		outbox:   make(chan *message, 64),
		wdone:    make(chan struct{}),
		lastSeen: time.Now(),
	}
	st.workers[w.id] = w
	go func() { // writer
		defer close(w.wdone)
		for m := range w.outbox {
			// A wedged peer must not wedge the writer: bound each frame.
			w.conn.SetWriteDeadline(time.Now().Add(time.Duration(st.c.opts.deadAfter) * st.c.opts.heartbeat))
			if err := w.wr.send(m); err != nil {
				st.evs <- coordEvent{w: w, err: err}
				return
			}
		}
	}()
	go func() { // reader
		for {
			var m message
			if err := w.wr.recv(&m); err != nil {
				st.evs <- coordEvent{w: w, err: err}
				return
			}
			st.evs <- coordEvent{w: w, m: &m}
		}
	}()
}

// post enqueues a message for a worker without ever blocking the event
// loop; a worker too backlogged to accept is treated as failed.
func (st *runState) post(w *fleetWorker, m *message) {
	select {
	case w.outbox <- m:
	default:
		go func() { st.evs <- coordEvent{w: w, err: fmt.Errorf("distjoin: worker %s outbox overflow", w.name)} }()
	}
}

// handle processes one decoded frame. A returned error aborts the run
// (checkpoint I/O, plan mismatch); per-worker trouble never does.
func (st *runState) handle(w *fleetWorker, m *message) error {
	if _, ok := st.workers[w.id]; !ok {
		// Frame from a worker already dropped: its task was reassigned. A
		// result frame racing the drop is a redelivery if the work is
		// already complete; either way nothing is accepted from the dead.
		return nil
	}
	w.lastSeen = time.Now()
	st.c.m.framesIn.Inc()
	if w.state == stateSuspect {
		// it lives after all
		w.state = stateLive
		st.gauges()
	}
	switch m.Kind {
	case kindHello:
		w.name = m.Name
		if w.name == "" {
			w.name = fmt.Sprintf("worker-%d", w.id)
		}
		w.hello = true
		st.post(w, &message{
			Kind:        kindWelcome,
			ConfigJSON:  st.cfgJSON,
			HeartbeatMS: st.c.opts.heartbeat.Milliseconds(),
		})
		st.gauges()

	case kindHeartbeat:
		// lastSeen already refreshed

	case kindDraining:
		if w.state != stateDraining {
			w.state = stateDraining
			st.gauges()
		}

	case kindGoodbye:
		// Graceful deregistration: nothing should be in flight; if the
		// drain raced an assignment, recover it.
		st.removeWorker(w, nil)

	case kindSweepDone:
		t := w.inflight
		w.inflight = nil
		if t == nil || t.join || t.day != m.Day {
			// Unsolicited or reassigned-elsewhere result.
			if _, done := st.daySnaps[m.Day]; done {
				st.c.m.shardRedeliveries.Inc()
			}
			if t != nil {
				w.inflight = t // unrelated in-flight task, keep it
			}
			return nil
		}
		if _, done := st.daySnaps[m.Day]; done {
			st.c.m.shardRedeliveries.Inc()
			return nil
		}
		if st.ckpt != nil {
			if err := st.ckpt.WriteDay(m.Day, m.Snap); err != nil {
				return fmt.Errorf("distjoin: journaling day %d: %w", int32(m.Day), err)
			}
		}
		st.daySnaps[m.Day] = m.Snap
		st.complete++
		// Exactly-once metric fold: the worker ships its private sweep
		// registry only on success, and only the accepted copy is
		// imported — identical totals to the in-process supervisor.
		st.c.reg.ImportSnapshot(m.Metrics)
		st.c.m.sweepDaysDone.Inc()
		st.c.m.observeTask(w.name, w.started)

	case kindJoinDone:
		t := w.inflight
		w.inflight = nil
		if t == nil || !t.join || t.rng != m.Range {
			if _, done := st.ranges[m.Range]; done {
				st.c.m.shardRedeliveries.Inc()
			}
			if t != nil {
				w.inflight = t
			}
			return nil
		}
		if _, done := st.ranges[m.Range]; done {
			st.c.m.shardRedeliveries.Inc()
			return nil
		}
		if st.ckpt != nil {
			if err := st.ckpt.Write(rangeRecord(m.Range), &rangeResult{Events: m.Events}); err != nil {
				return fmt.Errorf("distjoin: journaling range %d: %w", m.Range, err)
			}
		}
		st.ranges[m.Range] = m.Events
		st.c.m.joinRangesDone.Inc()
		st.c.m.observeTask(w.name, w.started)

	case kindTaskFailed:
		t := w.inflight
		w.inflight = nil
		if t == nil {
			return nil
		}
		st.c.m.taskFailures.Inc()
		t.attempts++
		t.lastReason, t.lastStack = m.Reason, m.Stack
		return st.resolveFailure(t)
	}
	return nil
}

// resolveFailure decides a failed task's fate: retry with backoff,
// quarantine (sweeps), or abort the run (join ranges out of retries).
func (st *runState) resolveFailure(t *task) error {
	if !t.join {
		if t.attempts >= sweepMaxAttempts {
			st.skipped = append(st.skipped, study.SkippedDay{
				Day:      t.day,
				Reason:   t.lastReason,
				Stack:    t.lastStack,
				Attempts: t.attempts,
			})
			return nil
		}
	} else if t.attempts >= joinMaxFailures {
		return fmt.Errorf("distjoin: join range %d failed %d times: %s", t.rng, t.attempts, t.lastReason)
	}
	st.requeue(t)
	return nil
}

// requeue re-enqueues a task after a decorrelated-jitter backoff scaled
// by its failure count (resilience.RetryBudget.DelayFor — the task keeps
// its own attempt counter, so the stateless form applies).
func (st *runState) requeue(t *task) {
	attempt := t.attempts
	if attempt < 1 {
		attempt = 1
	}
	delay := st.c.retry.DelayFor(attempt)
	time.AfterFunc(delay, func() { st.evs <- coordEvent{retry: t} })
}

// enqueue returns a retried task to the dispatch queue in deterministic
// position (sweeps by day, then ranges by index).
func (st *runState) enqueue(t *task) {
	// A task can only be in backoff because it is neither complete nor in
	// flight; double-check completion in case a straggler finished it.
	if !t.join {
		if _, done := st.daySnaps[t.day]; done {
			return
		}
	} else if _, done := st.ranges[t.rng]; done {
		return
	}
	st.pending = append(st.pending, t)
	sort.SliceStable(st.pending, func(i, j int) bool {
		a, b := st.pending[i], st.pending[j]
		if a.join != b.join {
			return !a.join
		}
		if !a.join {
			return a.day < b.day
		}
		return a.rng < b.rng
	})
}

// dropWorker handles a connection failure: the worker is removed and its
// in-flight task — indistinguishable from a crashed shard — is charged a
// failed attempt and retried elsewhere.
func (st *runState) dropWorker(w *fleetWorker, err error) {
	if _, ok := st.workers[w.id]; !ok {
		return
	}
	if t := w.inflight; t != nil && !t.join {
		st.c.m.taskFailures.Inc()
		t.attempts++
		t.lastReason = fmt.Sprintf("worker %s lost mid-shard: %v", w.name, err)
		t.lastStack = ""
	}
	st.removeWorker(w, err)
}

// removeWorker unregisters a worker, reassigning any in-flight task.
func (st *runState) removeWorker(w *fleetWorker, err error) {
	if _, ok := st.workers[w.id]; !ok {
		return
	}
	delete(st.workers, w.id)
	close(w.outbox)
	w.conn.Close()
	if t := w.inflight; t != nil {
		w.inflight = nil
		st.c.m.reassignments.Inc()
		if !t.join && err != nil {
			// Lost-worker attempts already charged by dropWorker; a sweep
			// out of attempts quarantines here.
			if t.attempts >= sweepMaxAttempts {
				st.skipped = append(st.skipped, study.SkippedDay{
					Day: t.day, Reason: t.lastReason, Stack: t.lastStack, Attempts: t.attempts,
				})
				st.gauges()
				return
			}
		}
		st.requeue(t)
	}
	st.gauges()
}

// checkLiveness runs on the heartbeat tick: quiet workers turn suspect
// (task reassigned, connection kept), silent ones are disconnected.
func (st *runState) checkLiveness() {
	now := time.Now()
	hb := st.c.opts.heartbeat
	for _, w := range st.workers {
		if !w.hello {
			continue
		}
		quiet := now.Sub(w.lastSeen)
		switch {
		case quiet > time.Duration(st.c.opts.deadAfter)*hb:
			st.dropWorker(w, fmt.Errorf("no heartbeat for %v", quiet.Round(time.Millisecond)))
		case quiet > time.Duration(st.c.opts.suspectAfter)*hb && w.state == stateLive:
			w.state = stateSuspect
			if t := w.inflight; t != nil {
				// Reassign without charging an attempt: the worker may be
				// slow, not gone. If it completes late anyway, the
				// completion map makes the duplicate a counted redelivery.
				w.inflight = nil
				st.c.m.reassignments.Inc()
				st.requeue(t)
			}
			st.gauges()
		}
	}
}

// schedule assigns pending tasks to idle live workers in deterministic
// task order, lowest worker id first.
func (st *runState) schedule() {
	if len(st.pending) == 0 {
		return
	}
	if !st.fleetStarted {
		registered := 0
		for _, w := range st.workers {
			if w.hello && w.state != stateDraining {
				registered++
			}
		}
		if registered < st.c.opts.minWork {
			return
		}
		st.fleetStarted = true
	}
	ids := make([]int, 0, len(st.workers))
	for id := range st.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if len(st.pending) == 0 {
			return
		}
		w := st.workers[id]
		if !w.hello || w.state != stateLive || w.inflight != nil {
			continue
		}
		t := st.pending[0]
		if t.join && !st.joinStarted {
			return
		}
		st.pending = st.pending[1:]
		if t.join && !w.joinReady {
			st.post(w, st.joinSetupMsg())
			w.joinReady = true
		}
		w.inflight = t
		w.started = time.Now()
		if t.join {
			st.post(w, &message{Kind: kindAssignJoin, Range: t.rng})
		} else {
			st.post(w, &message{Kind: kindAssignSweep, Day: t.day})
		}
	}
}

// joinSetupMsg builds the join-phase bootstrap for one worker: every
// accepted day snapshot (sorted), the quarantine set, and the partition.
func (st *runState) joinSetupMsg() *message {
	days := st.sortedDays()
	snaps := make([]nsset.Snapshot, len(days))
	for i, d := range days {
		snaps[i] = st.daySnaps[d]
	}
	return &message{
		Kind:        kindJoinSetup,
		Days:        days,
		Snaps:       snaps,
		Quarantined: st.quarantined(),
		NumShards:   st.plan.NumShards,
		NumRanges:   st.plan.NumRanges,
	}
}

// gauges republishes the fleet-composition gauges.
func (st *runState) gauges() {
	var live, suspect, draining int64
	for _, w := range st.workers {
		if !w.hello {
			continue
		}
		switch w.state {
		case stateLive:
			live++
		case stateSuspect:
			suspect++
		case stateDraining:
			draining++
		}
	}
	st.c.m.workersLive.Set(live)
	st.c.m.workersSuspect.Set(suspect)
	st.c.m.workersDraining.Set(draining)
}

// closeAll tears the fleet down on exit: outboxes close first and the
// writers drain (so a posted shutdown reaches graceful workers), then
// the connections come down.
func (st *runState) closeAll() {
	for _, w := range st.workers {
		close(w.outbox)
	}
	for _, w := range st.workers {
		select {
		case <-w.wdone:
		case <-time.After(2 * time.Second):
		}
		w.conn.Close()
	}
	st.workers = map[int]*fleetWorker{}
}
