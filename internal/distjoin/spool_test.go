package distjoin

import (
	"context"
	"path/filepath"
	"testing"
)

// spool_test.go covers the worker's out-of-core join path: WithSpoolDir
// makes a worker seal the coordinator's day snapshots to columnar files
// at join setup and run its shard joins against the mmap-backed views.
// The contract is the usual one — byte-identical events and report to
// the single-process run — plus the spool actually being used.

func TestSpoolWorkerParity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wantEvents, wantReport := plainBaseline(t)

	spool := t.TempDir()
	// a single spooling worker handles every sweep and every join range,
	// so the whole distributed join provably went through the sealed files
	workers := []*Worker{NewWorker("columnar", WithSpoolDir(spool))}
	s, _, _, err := runFleet(t, context.Background(), testConfig(), nil, workers)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, s, wantEvents, wantReport)

	files, err := filepath.Glob(filepath.Join(spool, "day_*.dcol"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("spooling worker sealed no day files; it silently joined in memory")
	}
}
