package distjoin

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/faultinject"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
	"dnsddos/internal/report"
	"dnsddos/internal/study"
)

// distjoin_test.go asserts the package's headline contract: a
// distributed run is byte-identical to single-process study.RunContext —
// events CSV and report JSON — under a healthy fleet, a worker killed
// mid-shard, a poisoned day quarantined across the fleet, a graceful
// drain, a corrupted control channel, and a coordinator killed and
// resumed from its journal.

func testConfig() study.Config {
	cfg := study.QuickConfig()
	cfg.World.Domains = 1200
	cfg.Attacks.TotalAttacks = 1200
	cfg.FromDay, cfg.ToDay = 27, 30
	return cfg
}

func eventsBytes(t *testing.T, s *study.Study) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := report.EventsCSV(&buf, s.Events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reportJSON renders the run report with quarantine stacks cleared:
// stacks carry goroutine ids and differ across processes by design.
func reportJSON(t *testing.T, s *study.Study) []byte {
	t.Helper()
	for i := range s.Report.SkippedDays {
		s.Report.SkippedDays[i].Stack = ""
	}
	b, err := json.MarshalIndent(&s.Report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func singleRun(t *testing.T, cfg study.Config, extra ...study.Option) *study.Study {
	t.Helper()
	s, err := study.RunContext(context.Background(), cfg, extra...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runFleet drives one distributed run: the coordinator in this
// goroutine, each worker in its own. Worker errors come back by index.
func runFleet(t *testing.T, ctx context.Context, cfg study.Config, coordOpts []CoordOption, workers []*Worker) (*study.Study, *obs.Registry, []error, error) {
	t.Helper()
	reg := obs.New()
	opts := append([]CoordOption{
		WithHeartbeatInterval(50 * time.Millisecond),
		WithMetrics(reg),
	}, coordOpts...)
	coord, err := NewCoordinator(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.Run(wctx, coord.Addr())
		}(i, w)
	}
	s, runErr := coord.Run(ctx)
	wcancel()
	wg.Wait()
	return s, reg, errs, runErr
}

// ---- unit tests -----------------------------------------------------

func TestRangeBoundsPartition(t *testing.T) {
	for _, tc := range []struct{ shards, ranges int }{
		{1, 1}, {7, 3}, {32, 32}, {100, 32}, {33, 7}, {1000, 32},
	} {
		prev := 0
		for i := 0; i < tc.ranges; i++ {
			from, to := rangeBounds(tc.shards, tc.ranges, i)
			if from != prev {
				t.Errorf("shards=%d ranges=%d: range %d starts at %d, want %d", tc.shards, tc.ranges, i, from, prev)
			}
			if to < from {
				t.Errorf("shards=%d ranges=%d: range %d inverted [%d,%d)", tc.shards, tc.ranges, i, from, to)
			}
			prev = to
		}
		if prev != tc.shards {
			t.Errorf("shards=%d ranges=%d: partition covers %d shards", tc.shards, tc.ranges, prev)
		}
	}
}

func TestFrameRoundTripAndCRC(t *testing.T) {
	m := &message{
		Kind:   kindSweepDone,
		Day:    29,
		Snap:   nsset.Snapshot{Windows: []nsset.WindowSnap{{Key: "ns-a"}}},
		Events: []core.TaggedEvent{{AttackIdx: 3, NSSetIdx: 7}},
		Reason: "panic: boom",
	}
	frame, err := encodeFrame(m)
	if err != nil {
		t.Fatal(err)
	}
	var got message
	if err := readFrame(bytes.NewReader(frame), &got); err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.Day != m.Day || got.Reason != m.Reason ||
		len(got.Snap.Windows) != 1 || len(got.Events) != 1 {
		t.Errorf("frame round trip mangled message: %+v", got)
	}
	// a single flipped byte anywhere must be detected, never decoded
	for _, i := range []int{0, 5, len(frame) / 2, len(frame) - 1} {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if err := readFrame(bytes.NewReader(bad), &got); err == nil {
			t.Errorf("flipped byte %d went undetected", i)
		}
	}
}

// testState builds a minimal coordinator event-loop state for unit
// tests, with a fake registered worker wired to nothing.
func testState(t *testing.T) (*runState, *fleetWorker) {
	t.Helper()
	c, err := NewCoordinator(testConfig(), WithHeartbeatInterval(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.l.Close() })
	st := &runState{
		c:        c,
		evs:      make(chan coordEvent, 64),
		workers:  map[int]*fleetWorker{},
		daySnaps: map[clock.Day]nsset.Snapshot{},
		ranges:   map[int][]core.TaggedEvent{},
	}
	client, server := net.Pipe()
	t.Cleanup(func() { client.Close(); server.Close() })
	w := &fleetWorker{
		id: 1, name: "fake", conn: server, wr: &wire{conn: server},
		outbox: make(chan *message, 8), wdone: make(chan struct{}),
		hello: true, state: stateLive, lastSeen: time.Now(),
	}
	st.workers[w.id] = w
	return st, w
}

// TestRedeliveriesDiscarded: a result for work already complete — the
// signature of a reassigned task finishing twice — is discarded and
// counted, never applied twice.
func TestRedeliveriesDiscarded(t *testing.T) {
	st, w := testState(t)
	st.daySnaps[27] = nsset.Snapshot{}
	if err := st.handle(w, &message{Kind: kindSweepDone, Day: 27}); err != nil {
		t.Fatal(err)
	}
	if got := st.c.m.shardRedeliveries.Load(); got != 1 {
		t.Errorf("duplicate sweep result: redeliveries = %d, want 1", got)
	}
	if st.complete != 0 {
		t.Errorf("duplicate sweep result incremented completions")
	}
	st.joinStarted = true
	st.ranges[3] = []core.TaggedEvent{}
	if err := st.handle(w, &message{Kind: kindJoinDone, Range: 3, Events: []core.TaggedEvent{{AttackIdx: 1}}}); err != nil {
		t.Fatal(err)
	}
	if got := st.c.m.shardRedeliveries.Load(); got != 2 {
		t.Errorf("duplicate join result: redeliveries = %d, want 2", got)
	}
	if len(st.ranges[3]) != 0 {
		t.Errorf("duplicate join result overwrote the accepted one")
	}
}

// TestLivenessSuspectThenDead: a quiet worker turns suspect and its task
// is reassigned (uncharged); a silent one is dropped entirely.
func TestLivenessSuspectThenDead(t *testing.T) {
	st, w := testState(t)
	w.inflight = &task{day: 27}
	w.lastSeen = time.Now().Add(-300 * time.Millisecond) // > 5 missed 50ms beats
	st.checkLiveness()
	if w.state != stateSuspect {
		t.Fatalf("quiet worker state = %v, want suspect", w.state)
	}
	if w.inflight != nil {
		t.Error("suspect worker's task not reassigned")
	}
	if got := st.c.m.reassignments.Load(); got != 1 {
		t.Errorf("reassignments = %d, want 1", got)
	}
	select {
	case ev := <-st.evs:
		if ev.retry == nil || ev.retry.day != 27 {
			t.Fatalf("retry event = %+v, want day 27", ev)
		}
		if ev.retry.attempts != 0 {
			t.Errorf("suspect reassignment charged an attempt: %d", ev.retry.attempts)
		}
		st.enqueue(ev.retry)
	case <-time.After(2 * time.Second):
		t.Fatal("no retry event after suspect reassignment")
	}
	if len(st.pending) != 1 {
		t.Fatalf("pending = %d, want 1", len(st.pending))
	}
	w.lastSeen = time.Now().Add(-time.Second) // > 10 missed beats
	st.checkLiveness()
	if _, ok := st.workers[w.id]; ok {
		t.Error("silent worker still registered")
	}
}

// TestSecondFailureQuarantines: the PR 3 contract across the wire — a
// day that fails its retry is quarantined with both failures counted.
func TestSecondFailureQuarantines(t *testing.T) {
	st, w := testState(t)
	w.inflight = &task{day: 28, attempts: 1, lastReason: "worker old lost mid-shard: EOF"}
	if err := st.handle(w, &message{Kind: kindTaskFailed, Day: 28, Reason: "panic: poisoned", Stack: "stack"}); err != nil {
		t.Fatal(err)
	}
	if len(st.skipped) != 1 {
		t.Fatalf("skipped = %d, want 1", len(st.skipped))
	}
	sk := st.skipped[0]
	if sk.Day != 28 || sk.Reason != "panic: poisoned" || sk.Stack != "stack" || sk.Attempts != 2 {
		t.Errorf("quarantine record = %+v", sk)
	}
}

// ---- integration tests ----------------------------------------------

// plainBaseline runs the single-process reference once per test binary.
var baselineOnce sync.Once
var baselineEvents, baselineReport []byte

func plainBaseline(t *testing.T) (events, rep []byte) {
	t.Helper()
	baselineOnce.Do(func() {
		s := singleRun(t, testConfig())
		baselineEvents = eventsBytes(t, s)
		baselineReport = reportJSON(t, s)
	})
	return baselineEvents, baselineReport
}

func assertParity(t *testing.T, s *study.Study, wantEvents, wantReport []byte) {
	t.Helper()
	if got := eventsBytes(t, s); !bytes.Equal(got, wantEvents) {
		t.Errorf("events CSV diverged from single-process run (%d vs %d bytes)", len(got), len(wantEvents))
	}
	if wantReport != nil {
		if got := reportJSON(t, s); !bytes.Equal(got, wantReport) {
			t.Errorf("report diverged from single-process run:\n--- distributed ---\n%s\n--- single ---\n%s", got, wantReport)
		}
	}
}

func TestDistributedParity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wantEvents, wantReport := plainBaseline(t)
	workers := []*Worker{NewWorker("alpha"), NewWorker("bravo"), NewWorker("charlie")}
	s, _, _, err := runFleet(t, context.Background(), testConfig(), nil, workers)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, s, wantEvents, wantReport)
}

// TestWorkerDeathMidSweepReassigned kills one worker's connection inside
// its first sweep — the in-process equivalent of SIGKILL — and requires
// full parity: the day is re-swept elsewhere, its metrics counted once.
func TestWorkerDeathMidSweepReassigned(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wantEvents, wantReport := plainBaseline(t)

	var mu sync.Mutex
	var victim net.Conn
	var once sync.Once
	killer := NewWorker("judas",
		WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			c, err := d.DialContext(ctx, "tcp", addr)
			mu.Lock()
			victim = c
			mu.Unlock()
			return c, err
		}),
		WithBeforeSweep(func(clock.Day) {
			once.Do(func() {
				mu.Lock()
				victim.Close()
				mu.Unlock()
			})
		}),
	)
	workers := []*Worker{killer, NewWorker("alpha"), NewWorker("bravo")}
	s, reg, errs, err := runFleet(t, context.Background(), testConfig(), nil, workers)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] == nil {
		t.Error("killed worker's Run returned nil, want a connection error")
	}
	assertParity(t, s, wantEvents, wantReport)
	snap := reg.Snapshot()
	if snap.Counters["distjoin.reassignments"] < 1 {
		t.Error("worker death caused no reassignment")
	}
	if snap.Counters["distjoin.task_failures"] < 1 {
		t.Error("worker death not counted as a task failure")
	}
}

// TestPoisonedDayQuarantineParity: a day that panics on every worker is
// retried once elsewhere and quarantined — byte-identical, stacks aside,
// to study.WithBeforeDay panicking in-process.
func TestPoisonedDayQuarantineParity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const poisoned = clock.Day(28)
	panicOn := func(d clock.Day) {
		if d == poisoned {
			panic("poisoned shard")
		}
	}
	single := singleRun(t, testConfig(), study.WithBeforeDay(panicOn))
	workers := []*Worker{
		NewWorker("alpha", WithBeforeSweep(panicOn)),
		NewWorker("bravo", WithBeforeSweep(panicOn)),
	}
	s, _, _, err := runFleet(t, context.Background(), testConfig(), nil, workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Report.SkippedDays) != 1 {
		t.Fatalf("SkippedDays = %+v, want exactly the poisoned day", s.Report.SkippedDays)
	}
	sk := s.Report.SkippedDays[0]
	if sk.Day != poisoned || sk.Reason != "panic: poisoned shard" || sk.Attempts != 2 || sk.Stack == "" {
		t.Errorf("quarantine record = {Day:%d Reason:%q Attempts:%d stack:%d bytes}",
			int32(sk.Day), sk.Reason, sk.Attempts, len(sk.Stack))
	}
	assertParity(t, s, eventsBytes(t, single), reportJSON(t, single))
}

// TestGracefulDrain: a drained worker finishes its in-flight task,
// deregisters, and exits nil; the run completes on the rest of the
// fleet with full parity.
func TestGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wantEvents, wantReport := plainBaseline(t)
	gotTask := make(chan struct{})
	var once sync.Once
	quitter := NewWorker("quitter", WithBeforeSweep(func(clock.Day) {
		once.Do(func() { close(gotTask) })
	}))
	go func() {
		<-gotTask
		quitter.Drain()
	}()
	// min-workers is a start gate only: draining below it mid-run must
	// not stall the fleet (regression: the run once hung here).
	workers := []*Worker{quitter, NewWorker("alpha")}
	s, _, errs, err := runFleet(t, context.Background(), testConfig(),
		[]CoordOption{WithMinWorkers(2)}, workers)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gotTask:
	case <-time.After(time.Second):
		t.Fatal("drained worker never received a task")
	}
	if errs[0] != nil {
		t.Errorf("drained worker's Run = %v, want nil (graceful exit)", errs[0])
	}
	assertParity(t, s, wantEvents, wantReport)
}

// TestCoordinatorKillAndResume is the satellite-4 contract: kill the
// coordinator mid-sweep and again mid-join, resume each from the
// journal, and the final events must be byte-identical to both the
// uninterrupted single-process run — every shard emitted exactly once.
func TestCoordinatorKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wantEvents, _ := plainBaseline(t)
	cfg := testConfig()
	days := int(cfg.ToDay-cfg.FromDay) + 1

	resumeAfterKill := func(t *testing.T, waitFor string) *study.Study {
		dir := t.TempDir()
		ctxA, cancelA := context.WithCancel(context.Background())
		defer cancelA()
		pollDone := make(chan struct{})
		go func() {
			defer close(pollDone)
			for {
				if m, _ := filepath.Glob(filepath.Join(dir, waitFor)); len(m) >= 1 {
					cancelA()
					return
				}
				select {
				case <-ctxA.Done():
					return
				case <-time.After(time.Millisecond):
				}
			}
		}()
		workersA := []*Worker{NewWorker("a1"), NewWorker("a2")}
		_, _, _, errA := runFleet(t, ctxA, cfg, []CoordOption{WithCheckpointDir(dir)}, workersA)
		<-pollDone
		if errA == nil {
			// The run outraced the kill; the resume below degenerates to a
			// full-journal no-op run, which must still hold parity.
			t.Logf("run completed before the kill landed (waited for %s)", waitFor)
		} else if !errors.Is(errA, context.Canceled) {
			t.Fatalf("killed coordinator returned %v, want context.Canceled", errA)
		}
		workersB := []*Worker{NewWorker("b1"), NewWorker("b2")}
		s, _, _, errB := runFleet(t, context.Background(), cfg,
			[]CoordOption{WithCheckpointDir(dir), WithResume(true)}, workersB)
		if errB != nil {
			t.Fatalf("resumed coordinator: %v", errB)
		}
		return s
	}

	t.Run("killed_mid_sweep", func(t *testing.T) {
		s := resumeAfterKill(t, "day_*.ckpt")
		if s.Report.ResumedDays < 1 {
			t.Errorf("ResumedDays = %d, want >= 1 (journal had completed days)", s.Report.ResumedDays)
		}
		if got := s.Report.ResumedDays + s.Report.CompletedDays; got != days {
			t.Errorf("resumed %d + completed %d != %d days", s.Report.ResumedDays, s.Report.CompletedDays, days)
		}
		if len(s.Report.SkippedDays) != 0 {
			t.Errorf("unexpected quarantines after resume: %+v", s.Report.SkippedDays)
		}
		assertParity(t, s, wantEvents, nil)
	})

	t.Run("killed_mid_join", func(t *testing.T) {
		s := resumeAfterKill(t, planRecord)
		if got := s.Report.ResumedDays + s.Report.CompletedDays; got != days {
			t.Errorf("resumed %d + completed %d != %d days", s.Report.ResumedDays, s.Report.CompletedDays, days)
		}
		assertParity(t, s, wantEvents, nil)
	})
}

// TestChaosFleet is the make-distjoin leg: four workers, one killed
// mid-shard, one writing through a corrupting faultinject stream (every
// damaged frame fails the CRC and downs the connection), and the result
// still byte-identical to the single-process run.
func TestChaosFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wantEvents, wantReport := plainBaseline(t)

	var mu sync.Mutex
	var victim net.Conn
	var once sync.Once
	killer := NewWorker("killed",
		WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			c, err := d.DialContext(ctx, "tcp", addr)
			mu.Lock()
			victim = c
			mu.Unlock()
			return c, err
		}),
		WithBeforeSweep(func(clock.Day) {
			once.Do(func() {
				mu.Lock()
				victim.Close()
				mu.Unlock()
			})
		}),
	)
	inj := faultinject.New(1312)
	inj.SetProfile(faultinject.Profile{Corrupt: 0.05})
	corrupted := NewWorker("corrupted",
		WithDialer(func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			c, err := d.DialContext(ctx, "tcp", addr)
			if err != nil {
				return nil, err
			}
			return faultinject.WrapStream(c, inj), nil
		}),
	)
	workers := []*Worker{killer, corrupted, NewWorker("clean-1"), NewWorker("clean-2")}
	s, reg, _, err := runFleet(t, context.Background(), testConfig(), nil, workers)
	if err != nil {
		t.Fatal(err)
	}
	assertParity(t, s, wantEvents, wantReport)
	if n := reg.Snapshot().Counters["distjoin.reassignments"]; n < 1 {
		t.Errorf("chaos run recorded %d reassignments, want >= 1", n)
	}
}
