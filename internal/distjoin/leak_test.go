package distjoin

import (
	"context"
	"sync"
	"testing"
	"time"

	"dnsddos/internal/netx"
	"dnsddos/internal/obs"
)

// leak_test.go: teardown hygiene. Cancelling the coordinator's context
// with live workers attached must unwind every goroutine — accept loop,
// per-connection readers, liveness ticker, retry timers — not just
// return from Run.

func TestCoordinatorCtxCancelWithLiveWorkersNoLeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	netx.NoGoroutineLeaks(t)

	reg := obs.New()
	coord, err := NewCoordinator(testConfig(),
		WithHeartbeatInterval(50*time.Millisecond), WithMinWorkers(2), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}

	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			NewWorker(name).Run(wctx, coord.Addr())
		}(name)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// cancel the moment both workers are registered and live, so the
		// teardown really does race in-flight work
		for i := 0; i < 2000; i++ {
			if reg.Snapshot().Gauges["distjoin.workers_live"] >= 2 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	if s, err := coord.Run(ctx); err == nil && ctx.Err() != nil {
		// the run squeaked in before the cancel — legal, but then it must
		// have produced a complete study
		if s == nil {
			t.Fatal("run reported success with no study")
		}
	}
	// the coordinator is gone; workers lose their connections and return
	wcancel()
	wg.Wait()
}

// TestHeartbeatThresholdOptions: the suspect/dead thresholds are
// configurable and validated — each >= 1, suspect strictly below dead.
func TestHeartbeatThresholdOptions(t *testing.T) {
	bad := []struct {
		name          string
		suspect, dead int
	}{
		{"zero-suspect", 0, 10},
		{"zero-dead", 5, 0},
		{"equal", 5, 5},
		{"inverted", 7, 3},
	}
	for _, tc := range bad {
		if c, err := NewCoordinator(testConfig(),
			WithSuspectAfter(tc.suspect), WithDeadAfter(tc.dead)); err == nil {
			c.l.Close()
			t.Errorf("%s: thresholds (%d, %d) accepted", tc.name, tc.suspect, tc.dead)
		}
	}
	c, err := NewCoordinator(testConfig(), WithSuspectAfter(2), WithDeadAfter(3))
	if err != nil {
		t.Fatalf("valid thresholds rejected: %v", err)
	}
	c.l.Close()
}
