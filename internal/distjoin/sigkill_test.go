package distjoin

import (
	"context"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"
)

// sigkill_test.go is the one place the kill is real: a worker running as
// a separate OS process is SIGKILLed mid-run — no deferred cleanup, no
// goodbye, the kernel just closes the socket — and the run must still
// complete byte-identical on the surviving in-process worker.

// TestSIGKILLWorkerHelper is not a test: it is the worker process the
// SIGKILL test spawns (the standard re-exec helper pattern). It runs a
// fleet worker against the coordinator address in the environment until
// it is killed or the run completes.
func TestSIGKILLWorkerHelper(t *testing.T) {
	addr := os.Getenv("DISTJOIN_HELPER_ADDR")
	if addr == "" {
		t.Skip("helper process entry point, not a test")
	}
	w := NewWorker("doomed")
	w.Run(context.Background(), addr)
	os.Exit(0)
}

func TestSIGKILLWorkerMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wantEvents, wantReport := plainBaseline(t)

	coord, err := NewCoordinator(testConfig(),
		WithHeartbeatInterval(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}

	// one surviving in-process worker guarantees completion
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		NewWorker("survivor").Run(wctx, coord.Addr())
	}()

	cmd := exec.Command(os.Args[0], "-test.run=TestSIGKILLWorkerHelper$")
	cmd.Env = append(os.Environ(), "DISTJOIN_HELPER_ADDR="+coord.Addr())
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		// long enough for the helper to register and take work, short
		// enough to land mid-run; parity must hold wherever it lands
		time.Sleep(400 * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()
	}()

	s, err := coord.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	wcancel()
	wg.Wait()
	assertParity(t, s, wantEvents, wantReport)
}
