package distjoin

import (
	"time"

	"dnsddos/internal/obs"
)

// metrics.go is the fleet's observability surface. Every distjoin metric
// is registered Volatile: fleet composition, reassignment counts and
// worker latencies describe one run of the control plane, never the
// deterministic study result, so none of them may leak into the stable
// snapshot embedded in Report.Metrics (which must stay byte-identical to
// a single-process run's).
type fleetMetrics struct {
	reg *obs.Registry

	workersLive     *obs.Gauge // distjoin.workers_live
	workersSuspect  *obs.Gauge // distjoin.workers_suspect
	workersDraining *obs.Gauge // distjoin.workers_draining

	reassignments     *obs.Counter // distjoin.reassignments: tasks re-queued off a suspect/dead/drained worker
	shardRedeliveries *obs.Counter // distjoin.shard_redeliveries: late duplicate results discarded
	sweepDaysDone     *obs.Counter // distjoin.sweep_days_done
	joinRangesDone    *obs.Counter // distjoin.join_ranges_done
	taskFailures      *obs.Counter // distjoin.task_failures: panics + lost workers, pre-quarantine
	framesIn          *obs.Counter // distjoin.frames_in: control frames accepted
}

func newFleetMetrics(reg *obs.Registry) fleetMetrics {
	return fleetMetrics{
		reg:               reg,
		workersLive:       reg.Gauge("distjoin.workers_live", obs.Volatile()),
		workersSuspect:    reg.Gauge("distjoin.workers_suspect", obs.Volatile()),
		workersDraining:   reg.Gauge("distjoin.workers_draining", obs.Volatile()),
		reassignments:     reg.Counter("distjoin.reassignments", obs.Volatile()),
		shardRedeliveries: reg.Counter("distjoin.shard_redeliveries", obs.Volatile()),
		sweepDaysDone:     reg.Counter("distjoin.sweep_days_done", obs.Volatile()),
		joinRangesDone:    reg.Counter("distjoin.join_ranges_done", obs.Volatile()),
		taskFailures:      reg.Counter("distjoin.task_failures", obs.Volatile()),
		framesIn:          reg.Counter("distjoin.frames_in", obs.Volatile()),
	}
}

// workerLatency returns the per-worker task latency histogram
// (distjoin.worker_latency.<name>): wall time from assignment to accepted
// result, one histogram per registered worker name.
func (m *fleetMetrics) workerLatency(name string) *obs.Histogram {
	return m.reg.Histogram("distjoin.worker_latency."+name, obs.Volatile())
}

// observeTask records one completed assignment for a worker.
func (m *fleetMetrics) observeTask(name string, since time.Time) {
	m.workerLatency(name).Observe(time.Since(since))
}
