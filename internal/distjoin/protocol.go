// Package distjoin is the fault-tolerant distributed control plane of the
// study (DESIGN §3.6): a coordinator owns the work plan — the per-day
// measurement sweeps and the victim-prefix join shard ranges of the PR 5
// engine — and a fleet of workers executes it across processes.
//
// The design leans on one property the rest of the repo already
// guarantees: every phase of a study run up to the sweeps is a pure
// function of the seeded configuration (study.NewSession). A worker
// therefore receives only the config JSON at registration and rebuilds a
// world byte-identical to the coordinator's; the only state that crosses
// the wire afterwards is small and value-typed — day snapshots
// (nsset.Snapshot), metric snapshots (obs.Snapshot), and tagged join
// events (core.TaggedEvent).
//
// Robustness contract:
//
//   - Workers heartbeat on an interval. Missed heartbeats mark a worker
//     suspect and its in-flight task is reassigned with backoff; a broken
//     connection marks it dead.
//   - A worker that panics on a day-shard reports the panic (reason +
//     stack); the coordinator retries the day once elsewhere and then
//     quarantines it into Report.SkippedDays — the exact PR 3 semantics,
//     byte for byte, so a crash-prone day looks the same whether it
//     crashed in-process or across the fleet.
//   - A worker that dies mid-task is treated the same way: retry once
//     elsewhere, then quarantine.
//   - SIGTERM to a worker triggers graceful drain: it finishes the
//     in-flight task, refuses new ones, deregisters, and exits.
//   - With a checkpoint journal, a killed coordinator resumes: completed
//     days and join ranges are loaded from CRC-guarded records, late
//     duplicate results are discarded (counted as redeliveries), and the
//     final report is byte-identical with each shard's results emitted
//     exactly once.
package distjoin

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/nsset"
	"dnsddos/internal/obs"
)

// kind discriminates control-plane messages.
type kind uint8

const (
	// worker → coordinator
	kindHello      kind = iota + 1 // register: Name
	kindHeartbeat                  // liveness beacon
	kindSweepDone                  // Day, Snap, Metrics
	kindTaskFailed                 // Day or Range, Reason, Stack
	kindJoinDone                   // Range, Events
	kindDraining                   // SIGTERM received: finish in-flight, no new work
	kindGoodbye                    // drain complete, deregistering

	// coordinator → worker
	kindWelcome     // ConfigJSON, HeartbeatMS
	kindAssignSweep // Day
	kindJoinSetup   // Days, Snaps, Quarantined, NumShards, NumRanges
	kindAssignJoin  // Range
	kindShutdown    // run complete (or aborted): exit
)

// message is the single wire struct of the control plane. Unused fields
// gob-encode to nothing, so one struct for all kinds costs little and
// keeps the protocol greppable.
type message struct {
	Kind kind

	// hello / welcome
	Name        string
	ConfigJSON  []byte
	HeartbeatMS int64

	// sweep tasks
	Day     clock.Day
	Snap    nsset.Snapshot
	Metrics obs.Snapshot

	// failures
	Reason string
	Stack  string

	// join phase
	Days        []clock.Day
	Snaps       []nsset.Snapshot
	Quarantined []clock.Day
	NumShards   int
	NumRanges   int
	Range       int
	Events      []core.TaggedEvent
}

var frameMagic = [4]byte{'D', 'J', 'N', '1'}

// maxFrame bounds a frame payload (64 MiB) so a corrupted length prefix
// cannot make a reader allocate unboundedly.
const maxFrame = 64 << 20

// encodeFrame renders one self-contained frame: magic, 4-byte big-endian
// payload length, gob payload, CRC-32 trailer. Each frame carries its own
// gob stream (type info and all), so a receiver can validate the CRC and
// decode a frame in isolation — a flipped byte anywhere in the frame is
// detected as a CRC mismatch, never silently decoded, which is what lets
// the chaos suite point faultinject's Corrupt at the control channel.
func encodeFrame(m *message) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		return nil, fmt.Errorf("distjoin: encoding %v frame: %w", m.Kind, err)
	}
	if payload.Len() > maxFrame {
		return nil, fmt.Errorf("distjoin: %v frame exceeds %d bytes", m.Kind, maxFrame)
	}
	buf := make([]byte, 0, len(frameMagic)+4+payload.Len()+4)
	buf = append(buf, frameMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(payload.Len()))
	buf = append(buf, payload.Bytes()...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload.Bytes()))
	return buf, nil
}

// readFrame reads and integrity-checks one frame. Any violation — bad
// magic, oversized length, short read, CRC mismatch, undecodable gob — is
// an error; the peer treats the connection as failed and the fleet's
// retry machinery takes over.
func readFrame(r io.Reader, m *message) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	if !bytes.Equal(hdr[:4], frameMagic[:]) {
		return fmt.Errorf("distjoin: bad frame magic %x", hdr[:4])
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > maxFrame {
		return fmt.Errorf("distjoin: frame length %d exceeds %d", n, maxFrame)
	}
	body := make([]byte, n+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("distjoin: short frame: %w", err)
	}
	payload, trailer := body[:n], body[n:]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(trailer); got != want {
		return fmt.Errorf("distjoin: frame crc mismatch (%08x != %08x)", got, want)
	}
	*m = message{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(m); err != nil {
		return fmt.Errorf("distjoin: decoding frame: %w", err)
	}
	return nil
}

// wire serializes frame writes over one connection: the coordinator's
// event loop and a worker's heartbeat ticker both write, and interleaved
// partial frames would corrupt the stream for good.
type wire struct {
	conn net.Conn
	mu   sync.Mutex
}

func (w *wire) send(m *message) error {
	b, err := encodeFrame(m)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	// One conn.Write per frame: the faultinject stream wrapper charges
	// faults per write, so a corrupted write damages exactly one frame.
	_, err = w.conn.Write(b)
	return err
}

func (w *wire) recv(m *message) error { return readFrame(w.conn, m) }

// rangeBounds returns the shard interval [from, to) of range idx under
// the deterministic even partition of numShards into numRanges. Every
// participant — coordinator, each worker, a resumed coordinator — derives
// identical bounds from the journaled (NumShards, NumRanges) pair.
func rangeBounds(numShards, numRanges, idx int) (from, to int) {
	return idx * numShards / numRanges, (idx + 1) * numShards / numRanges
}
