package distjoin

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dnsddos/internal/obs"
)

// metrics_golden_test.go pins the fleet's /metrics.json surface: the
// set of distjoin.* metric names a distributed run publishes is part of
// the observability contract (dashboards key on them), so drift must be
// deliberate. Values vary run to run — wall-clock latencies, scheduling
// order — so the golden covers the key set plus the few exact invariants
// a healthy run guarantees. Regenerate with:
//
//	go test ./internal/distjoin/ -run TestFleetMetricsGolden -update

var update = flag.Bool("update", false, "rewrite golden files")

func TestFleetMetricsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	workers := []*Worker{NewWorker("alpha"), NewWorker("bravo")}
	s, reg, _, err := runFleet(t, context.Background(), testConfig(), nil, workers)
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Gauges     map[string]int64          `json:"gauges"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decoding /metrics.json: %v", err)
	}

	var keys []string
	for k := range snap.Counters {
		if strings.HasPrefix(k, "distjoin.") {
			keys = append(keys, "counter "+k)
		}
	}
	for k := range snap.Gauges {
		if strings.HasPrefix(k, "distjoin.") {
			keys = append(keys, "gauge "+k)
		}
	}
	for k := range snap.Histograms {
		if strings.HasPrefix(k, "distjoin.") {
			keys = append(keys, "histogram "+k)
		}
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	path := filepath.Join("testdata", "fleet_metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("fleet metric surface drifted from golden (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}

	// exact invariants of a healthy two-worker run
	days := int64(int(testConfig().ToDay-testConfig().FromDay) + 1)
	if n := snap.Counters["distjoin.sweep_days_done"]; n != days {
		t.Errorf("sweep_days_done = %d, want %d", n, days)
	}
	if n := snap.Counters["distjoin.join_ranges_done"]; n < 1 {
		t.Errorf("join_ranges_done = %d, want >= 1", n)
	}
	if n := snap.Counters["distjoin.reassignments"]; n != 0 {
		t.Errorf("healthy run recorded %d reassignments", n)
	}
	for _, w := range []string{"alpha", "bravo"} {
		h, ok := snap.Histograms["distjoin.worker_latency."+w]
		if !ok {
			t.Errorf("no latency histogram for worker %s", w)
			continue
		}
		if c, _ := h["count"].(float64); c < 1 {
			t.Errorf("worker %s latency histogram empty", w)
		}
	}
	_ = s
}
