package distjoin

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"dnsddos/internal/clock"
	"dnsddos/internal/core"
	"dnsddos/internal/daystore"
	"dnsddos/internal/obs"
	"dnsddos/internal/study"
)

// Worker is one fleet member: it registers with the coordinator, rebuilds
// the deterministic study session from the config the coordinator sends,
// and executes assigned day-sweeps and join shard ranges until the run
// completes, the context is cancelled (crash-equivalent: abandon
// everything), or Drain is called (graceful: finish the in-flight task,
// deregister, exit).
type Worker struct {
	name        string
	dial        func(ctx context.Context, addr string) (net.Conn, error)
	beforeSweep func(clock.Day)
	reg         *obs.Registry
	spoolDir    string

	drainOnce sync.Once
	drainCh   chan struct{}
}

// WorkerOption configures a Worker.
type WorkerOption func(*Worker)

// WithDialer replaces the worker's TCP dialer — the chaos suite uses this
// to wrap the control connection in a faultinject stream.
func WithDialer(dial func(ctx context.Context, addr string) (net.Conn, error)) WorkerOption {
	return func(w *Worker) { w.dial = dial }
}

// WithBeforeSweep runs f at the start of every assigned day-sweep attempt,
// inside the attempt's panic isolation — the distributed twin of
// study.WithBeforeDay, and the poison hook of the chaos suite: a panic
// here is reported to the coordinator as a task failure with its stack.
func WithBeforeSweep(f func(clock.Day)) WorkerOption {
	return func(w *Worker) { w.beforeSweep = f }
}

// WithWorkerMetrics observes the worker's session (stage timers, join
// engine internals) into reg. The deterministic sweep metrics always
// travel to the coordinator regardless.
func WithWorkerMetrics(reg *obs.Registry) WorkerOption {
	return func(w *Worker) { w.reg = reg }
}

// WithSpoolDir makes the worker spool the coordinator's day snapshots to
// sealed column files in dir at join setup and run its shard joins
// against the mmap-backed daystore.Set instead of a merged in-memory
// aggregator. The worker's resident footprint then stays flat in the
// world size: the kernel pages day columns in on demand and reclaims
// them under pressure. The directory is cleared of stale sealed files on
// every setup, so one dir per worker process is safe across runs.
func WithSpoolDir(dir string) WorkerOption {
	return func(w *Worker) { w.spoolDir = dir }
}

// NewWorker builds a worker. The name identifies it in fleet metrics
// (distjoin.worker_latency.<name>) and log lines.
func NewWorker(name string, opts ...WorkerOption) *Worker {
	w := &Worker{
		name: name,
		dial: func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
		drainCh: make(chan struct{}),
	}
	for _, o := range opts {
		o(w)
	}
	if w.reg == nil {
		w.reg = obs.New()
	}
	return w
}

// Drain requests graceful shutdown: the worker announces it is draining
// (so the coordinator assigns it nothing new), finishes its in-flight
// task, deregisters, and Run returns nil. Safe to call from a signal
// handler goroutine; idempotent.
func (w *Worker) Drain() {
	w.drainOnce.Do(func() { close(w.drainCh) })
}

// frameEvent is one reader-goroutine delivery: a decoded frame or the
// read error that ended the connection.
type frameEvent struct {
	m   message
	err error
}

// Run connects to the coordinator at addr and serves assignments until
// shutdown, drain, cancellation, or connection failure. Cancellation is
// the crash path: in-flight work is abandoned mid-task and the
// coordinator's liveness machinery recovers it.
func (w *Worker) Run(ctx context.Context, addr string) error {
	conn, err := w.dial(ctx, addr)
	if err != nil {
		return fmt.Errorf("distjoin: worker %s: dialing %s: %w", w.name, addr, err)
	}
	defer conn.Close()
	wr := &wire{conn: conn}

	if err := wr.send(&message{Kind: kindHello, Name: w.name}); err != nil {
		return fmt.Errorf("distjoin: worker %s: registering: %w", w.name, err)
	}
	var welcome message
	if err := wr.recv(&welcome); err != nil {
		return fmt.Errorf("distjoin: worker %s: awaiting welcome: %w", w.name, err)
	}
	if welcome.Kind != kindWelcome {
		return fmt.Errorf("distjoin: worker %s: expected welcome, got kind %d", w.name, welcome.Kind)
	}
	// Stop unblocks the reader and heartbeat goroutines by closing the
	// connection; Run's defer triggers it on every exit path.
	stopped := make(chan struct{})
	defer close(stopped)

	// Heartbeats flow from their own goroutine, started before anything
	// slow, so neither the session build below nor a long sweep ever
	// starves liveness. A failed heartbeat write closes the connection,
	// which surfaces to the main loop as a reader error.
	hb := time.Duration(welcome.HeartbeatMS) * time.Millisecond
	if hb <= 0 {
		hb = time.Second
	}
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := wr.send(&message{Kind: kindHeartbeat}); err != nil {
					conn.Close()
					return
				}
			case <-stopped:
				return
			case <-ctx.Done():
				conn.Close()
				return
			}
		}
	}()

	// The deterministic world rebuild happens under heartbeat cover: it
	// is the slowest thing a worker does outside a sweep, and the
	// coordinator must not mistake a worker mid-build for a dead one.
	var cfg study.Config
	if err := json.Unmarshal(welcome.ConfigJSON, &cfg); err != nil {
		return fmt.Errorf("distjoin: worker %s: decoding config: %w", w.name, err)
	}
	sess, err := study.NewSession(ctx, cfg, w.reg)
	if err != nil {
		return fmt.Errorf("distjoin: worker %s: building session: %w", w.name, err)
	}

	// Announce drain the moment it is requested, even mid-task: the
	// coordinator stops assigning immediately while the main loop finishes
	// the in-flight task.
	go func() {
		select {
		case <-w.drainCh:
			wr.send(&message{Kind: kindDraining})
		case <-stopped:
		}
	}()

	frames := make(chan frameEvent)
	go func() {
		for {
			var m message
			err := wr.recv(&m)
			select {
			case frames <- frameEvent{m: m, err: err}:
			case <-stopped:
				return
			}
			if err != nil {
				return
			}
		}
	}()

	var (
		pipe      *core.Pipeline
		numShards int
		numRanges int
	)
	draining := func() bool {
		select {
		case <-w.drainCh:
			return true
		default:
			return false
		}
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-w.drainCh:
			// Idle drain: nothing in flight, deregister immediately.
			wr.send(&message{Kind: kindGoodbye})
			return nil
		case ev := <-frames:
			if ev.err != nil {
				return fmt.Errorf("distjoin: worker %s: control channel: %w", w.name, ev.err)
			}
			switch ev.m.Kind {
			case kindShutdown:
				return nil

			case kindAssignSweep:
				day := ev.m.Day
				agg, sreg, sk := sess.SweepDayAttempt(ctx, day, w.beforeSweep)
				var reply *message
				switch {
				case sk != nil:
					reply = &message{Kind: kindTaskFailed, Day: day, Reason: sk.Reason, Stack: sk.Stack}
				case agg == nil:
					return ctx.Err() // cancelled mid-sweep: crash path
				default:
					reply = &message{Kind: kindSweepDone, Day: day, Snap: agg.Snapshot(), Metrics: sreg.Snapshot()}
				}
				if err := wr.send(reply); err != nil {
					return fmt.Errorf("distjoin: worker %s: reporting day %d: %w", w.name, int32(day), err)
				}

			case kindJoinSetup:
				agg := sess.NewAggregator()
				for _, sn := range ev.m.Snaps {
					agg.AddSnapshot(sn)
				}
				var extra []core.Option
				if w.spoolDir != "" {
					// Spool the merged world to sealed column files and
					// join against the mmap views; the merged aggregator
					// is garbage once sealed, so the join's working set
					// is paged in from disk instead of held on heap.
					if err := daystore.Clear(w.spoolDir); err != nil {
						return fmt.Errorf("distjoin: worker %s: clearing spool: %w", w.name, err)
					}
					if _, err := daystore.Build(w.spoolDir, agg.Snapshot()); err != nil {
						return fmt.Errorf("distjoin: worker %s: spooling days: %w", w.name, err)
					}
					set, err := daystore.Open(w.spoolDir)
					if err != nil {
						return fmt.Errorf("distjoin: worker %s: opening spool: %w", w.name, err)
					}
					extra = append(extra, core.WithDayStore(set))
				}
				pipe = sess.NewPipeline(agg, ev.m.Quarantined, w.reg, extra...)
				numShards, numRanges = ev.m.NumShards, ev.m.NumRanges
				if got := pipe.JoinShardCount(sess.Attacks); got != numShards {
					// The worker's deterministic plan disagrees with the
					// coordinator's — a config/world skew no retry can fix.
					return fmt.Errorf("distjoin: worker %s: join plan mismatch: local %d shards, coordinator %d",
						w.name, got, numShards)
				}

			case kindAssignJoin:
				if pipe == nil {
					return fmt.Errorf("distjoin: worker %s: join range assigned before setup", w.name)
				}
				idx := ev.m.Range
				from, to := rangeBounds(numShards, numRanges, idx)
				events, jerr := joinRangeIsolated(ctx, pipe, sess, from, to)
				var reply *message
				if jerr != nil {
					reply = &message{Kind: kindTaskFailed, Range: idx, Reason: jerr.reason, Stack: jerr.stack}
				} else {
					reply = &message{Kind: kindJoinDone, Range: idx, Events: events}
				}
				if err := wr.send(reply); err != nil {
					return fmt.Errorf("distjoin: worker %s: reporting range %d: %w", w.name, idx, err)
				}

			case kindHeartbeat, kindWelcome:
				// coordinator-side noise; ignore
			}
			if draining() {
				wr.send(&message{Kind: kindGoodbye})
				return nil
			}
		}
	}
}

// joinFailure carries a join-range failure in quarantine shape.
type joinFailure struct {
	reason string
	stack  string
}

// joinRangeIsolated runs one shard-range join with the same panic
// isolation a sweep attempt gets: a panic anywhere in the engine becomes
// a reported failure, not a dead worker.
func joinRangeIsolated(ctx context.Context, pipe *core.Pipeline, sess *study.Session, from, to int) (events []core.TaggedEvent, jf *joinFailure) {
	defer func() {
		if r := recover(); r != nil {
			events = nil
			jf = &joinFailure{reason: fmt.Sprintf("panic: %v", r), stack: string(debug.Stack())}
		}
	}()
	ev, err := pipe.JoinShardRange(ctx, sess.Attacks, from, to)
	if err != nil {
		return nil, &joinFailure{reason: err.Error()}
	}
	return ev, nil
}
