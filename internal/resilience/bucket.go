package resilience

import "time"

// bucket.go: token-bucket admission control driven by *caller time*.
// The bucket never reads the wall clock — every Allow carries the
// timestamp of the work item it is judging (a captured packet's capture
// time, a replayed trace's stream time), so a seeded replay makes
// identical admit/shed decisions on every run, at any replay speed.
// That is what lets the overload soak assert deterministic shed counts.

// TokenBucket is a deterministic token bucket: Rate tokens per second of
// caller time, holding at most Burst. Not safe for concurrent use; the
// single-threaded stream pipeline owns one.
type TokenBucket struct {
	rate    float64 // tokens per second of caller time
	burst   float64
	tokens  float64
	last    time.Time
	started bool
	denied  int64
}

// NewTokenBucket builds a bucket admitting rate items per second of
// caller time with the given burst headroom. A rate <= 0 disables
// limiting (Allow always succeeds); burst <= 0 defaults to rate (one
// second of headroom). Burst is floored at one token — a bucket that can
// never hold a whole token would deny everything forever, which is a
// misconfiguration, not a rate limit.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst <= 0 {
		burst = rate
	}
	if rate > 0 && burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Allow judges one item stamped now: refill by the caller-time elapsed
// since the previous item, then take one token. Out-of-order timestamps
// refill nothing but never drain the clock backwards, so bounded
// arrival jitter costs at most its own tokens.
func (b *TokenBucket) Allow(now time.Time) bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	if !b.started {
		b.started, b.last = true, now
	}
	if d := now.Sub(b.last); d > 0 {
		b.tokens += b.rate * d.Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	return true
}

// Denied returns how many items the bucket has refused.
func (b *TokenBucket) Denied() int64 {
	if b == nil {
		return 0
	}
	return b.denied
}
