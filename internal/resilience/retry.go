package resilience

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"math/rand/v2"
	"sync"
	"time"
)

// retry.go: the shared retry policy. A RetryBudget bounds how many
// attempts an operation gets and paces the gaps between them with
// decorrelated jitter (Exponential Backoff And Jitter, the "decorrelated"
// variant): each delay is drawn uniformly from [base, 3*previous],
// capped. Compared with the plain jittered-exponential the resolver and
// coordinator used before, decorrelated jitter desynchronizes retry
// storms harder — two clients that failed at the same instant walk
// different delay sequences immediately, not just within one step's
// jitter window.

// RetryBudget is an immutable retry policy: attempts bound plus the
// backoff window. Safe for concurrent use; each retried operation runs
// its own Session.
type RetryBudget struct {
	maxAttempts int // total tries including the first; <= 0 means unbounded
	base, cap   time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewRetryBudget builds a policy allowing maxAttempts total tries
// (<= 0 = unbounded) spaced by decorrelated-jitter delays in
// [base, cap]. base <= 0 disables sleeping — retries go out immediately,
// the way unbound fires its first burst. cap <= 0 defaults to
// DefaultCap. rng seeds the jitter; nil seeds one from crypto/rand
// (tests pass a seeded generator, per the repo convention).
func NewRetryBudget(maxAttempts int, base, cap time.Duration, rng *rand.Rand) *RetryBudget {
	if cap <= 0 {
		cap = DefaultCap
	}
	if rng == nil {
		var seed [16]byte
		crand.Read(seed[:])
		rng = rand.New(rand.NewPCG(
			binary.LittleEndian.Uint64(seed[:8]),
			binary.LittleEndian.Uint64(seed[8:])))
	}
	return &RetryBudget{maxAttempts: maxAttempts, base: base, cap: cap, rng: rng}
}

// MaxAttempts returns the total-tries bound (0 = unbounded).
func (b *RetryBudget) MaxAttempts() int { return b.maxAttempts }

// jitter draws uniformly from [lo, hi], guarding degenerate windows.
func (b *RetryBudget) jitter(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return lo + time.Duration(b.rng.Int64N(int64(hi-lo)+1))
}

// Session is one operation's retry state: its attempt counter and the
// previous delay the decorrelated walk grows from. Not safe for
// concurrent use.
type Session struct {
	b       *RetryBudget
	prev    time.Duration
	attempt int
}

// Session starts a fresh retry sequence under the budget.
func (b *RetryBudget) Session() *Session { return &Session{b: b} }

// Next charges one attempt against the budget. It returns the delay to
// wait before that attempt (zero for the first) and whether the budget
// still allows it; false means the operation is out of tries.
func (s *Session) Next() (time.Duration, bool) {
	s.attempt++
	if s.b.maxAttempts > 0 && s.attempt > s.b.maxAttempts {
		return 0, false
	}
	if s.attempt == 1 || s.b.base <= 0 {
		// the first try is free, and a zero base disables pacing
		s.prev = s.b.base
		return 0, true
	}
	lo := s.b.base
	hi := 3 * s.prev
	if hi < lo {
		hi = lo
	}
	d := s.b.jitter(lo, hi)
	if d > s.b.cap {
		d = s.b.cap
	}
	s.prev = d
	return d, true
}

// Wait is Next plus the sleep: it returns false when the budget is
// exhausted or ctx was cancelled while waiting, true when the caller
// should attempt again.
func (s *Session) Wait(ctx context.Context) bool {
	d, ok := s.Next()
	if !ok {
		return false
	}
	if ctx != nil && ctx.Err() != nil {
		return false
	}
	if d <= 0 {
		return true
	}
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// DelayFor returns the decorrelated-jitter delay to wait before retry
// number attempt (1-based count of failures so far), for callers that
// keep their own attempt state (the coordinator's requeue timers). The
// walk is reconstructed as base*3^(attempt-1)-capped windows, so the
// delay distribution matches a Session that failed the same number of
// times.
func (b *RetryBudget) DelayFor(attempt int) time.Duration {
	if b.base <= 0 || attempt < 1 {
		return 0
	}
	hi := b.base
	for i := 1; i < attempt; i++ {
		hi *= 3
		if hi >= b.cap {
			hi = b.cap
			break
		}
	}
	d := b.jitter(b.base, hi)
	if d > b.cap {
		d = b.cap
	}
	return d
}
