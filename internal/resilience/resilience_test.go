package resilience

import (
	"context"
	"math/rand/v2"
	"testing"
	"time"
)

func testRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

func TestTokenBucketAdmitsAtRate(t *testing.T) {
	// 2 tokens/sec of caller time, burst 4: the first 4 items at t0 pass,
	// the 5th is denied; half a second later one token has dripped back.
	b := NewTokenBucket(2, 4)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 4; i++ {
		if !b.Allow(t0) {
			t.Fatalf("burst item %d denied", i)
		}
	}
	if b.Allow(t0) {
		t.Fatal("5th item at t0 should be denied")
	}
	if !b.Allow(t0.Add(500 * time.Millisecond)) {
		t.Fatal("item after 500ms refill should pass")
	}
	if b.Allow(t0.Add(500 * time.Millisecond)) {
		t.Fatal("second item in same instant should be denied")
	}
	if got := b.Denied(); got != 2 {
		t.Fatalf("Denied = %d, want 2", got)
	}
}

func TestTokenBucketDeterministic(t *testing.T) {
	// same timestamp sequence -> same admit/deny decisions, every run
	stamps := make([]time.Time, 0, 200)
	rng := testRNG(7)
	ts := time.Unix(5000, 0)
	for i := 0; i < 200; i++ {
		ts = ts.Add(time.Duration(rng.Int64N(int64(400 * time.Millisecond))))
		stamps = append(stamps, ts)
	}
	run := func() []bool {
		b := NewTokenBucket(5, 10)
		out := make([]bool, len(stamps))
		for i, s := range stamps {
			out[i] = b.Allow(s)
		}
		return out
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, a[i], bb[i])
		}
	}
}

func TestTokenBucketDisabledAndNil(t *testing.T) {
	var nilB *TokenBucket
	if !nilB.Allow(time.Now()) || nilB.Denied() != 0 {
		t.Fatal("nil bucket must always allow")
	}
	b := NewTokenBucket(0, 0)
	for i := 0; i < 100; i++ {
		if !b.Allow(time.Unix(0, 0)) {
			t.Fatal("rate<=0 bucket must always allow")
		}
	}
}

func TestTokenBucketOutOfOrderTimestamps(t *testing.T) {
	b := NewTokenBucket(1, 1)
	t0 := time.Unix(100, 0)
	if !b.Allow(t0) {
		t.Fatal("first item should pass")
	}
	// a timestamp in the past must not mint tokens or move the clock back
	if b.Allow(t0.Add(-time.Hour)) {
		t.Fatal("out-of-order item should be denied with empty bucket")
	}
	if !b.Allow(t0.Add(time.Second)) {
		t.Fatal("refill relative to newest stamp should still work")
	}
}

func TestRetryBudgetBoundsAndDelays(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	b := NewRetryBudget(4, base, cap, testRNG(1))
	s := b.Session()

	d, ok := s.Next()
	if !ok || d != 0 {
		t.Fatalf("first attempt: got (%v,%v), want (0,true)", d, ok)
	}
	prev := base
	for attempt := 2; attempt <= 4; attempt++ {
		d, ok = s.Next()
		if !ok {
			t.Fatalf("attempt %d should be allowed", attempt)
		}
		if d < base || d > cap {
			t.Fatalf("attempt %d delay %v outside [base,cap]", attempt, d)
		}
		if hi := 3 * prev; hi < cap && d > hi {
			t.Fatalf("attempt %d delay %v above decorrelated window %v", attempt, d, hi)
		}
		prev = d
	}
	if _, ok = s.Next(); ok {
		t.Fatal("5th attempt should exhaust a 4-try budget")
	}
}

func TestRetryBudgetUnboundedAndZeroBase(t *testing.T) {
	b := NewRetryBudget(0, 0, 0, testRNG(2))
	s := b.Session()
	for i := 0; i < 50; i++ {
		d, ok := s.Next()
		if !ok {
			t.Fatalf("unbounded budget refused attempt %d", i+1)
		}
		if d != 0 {
			t.Fatalf("zero base should never sleep, got %v", d)
		}
	}
}

func TestRetryBudgetWaitHonoursContext(t *testing.T) {
	b := NewRetryBudget(3, time.Hour, time.Hour, testRNG(3))
	s := b.Session()
	if !s.Wait(context.Background()) {
		t.Fatal("first attempt should not sleep at all")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if s.Wait(ctx) {
		t.Fatal("cancelled context must stop the wait")
	}
}

func TestRetryBudgetDelayFor(t *testing.T) {
	base, cap := 10*time.Millisecond, 200*time.Millisecond
	b := NewRetryBudget(0, base, cap, testRNG(4))
	if d := b.DelayFor(0); d != 0 {
		t.Fatalf("DelayFor(0) = %v, want 0", d)
	}
	for attempt := 1; attempt <= 6; attempt++ {
		d := b.DelayFor(attempt)
		if d < base || d > cap {
			t.Fatalf("DelayFor(%d) = %v outside [base,cap]", attempt, d)
		}
	}
	// attempt 1's window is exactly [base, base]
	if d := b.DelayFor(1); d != base {
		t.Fatalf("DelayFor(1) = %v, want base %v", d, base)
	}
}

func TestBreakerOpensAndProbes(t *testing.T) {
	var transitions []string
	b := NewBreaker(BreakerConfig{
		Threshold: 3,
		Cooldown:  time.Second,
		OnStateChange: func(peer string, from, to BreakerState) {
			transitions = append(transitions, peer+":"+from.String()+"->"+to.String())
		},
	})
	t0 := time.Unix(0, 0)

	for i := 0; i < 3; i++ {
		if !b.Allow("ns1", t0) {
			t.Fatalf("attempt %d should be allowed while closed", i)
		}
		b.Record("ns1", false, t0)
	}
	if b.State("ns1") != BreakerOpen {
		t.Fatalf("after threshold failures state = %v, want open", b.State("ns1"))
	}
	if b.Allow("ns1", t0.Add(500*time.Millisecond)) {
		t.Fatal("open circuit inside cooldown must refuse")
	}

	// cooldown elapsed: exactly one probe goes through
	probeAt := t0.Add(time.Second)
	if !b.Allow("ns1", probeAt) {
		t.Fatal("half-open circuit must admit one probe")
	}
	if b.State("ns1") != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State("ns1"))
	}
	if b.Allow("ns1", probeAt) {
		t.Fatal("second concurrent probe must be refused")
	}

	// failed probe re-opens immediately; successful one closes
	b.Record("ns1", false, probeAt)
	if b.State("ns1") != BreakerOpen {
		t.Fatal("failed probe must re-open the circuit")
	}
	reprobe := probeAt.Add(time.Second)
	if !b.Allow("ns1", reprobe) {
		t.Fatal("second probe after another cooldown should pass")
	}
	b.Record("ns1", true, reprobe)
	if b.State("ns1") != BreakerClosed {
		t.Fatal("successful probe must close the circuit")
	}
	if !b.Allow("ns1", reprobe) {
		t.Fatal("closed circuit must admit freely")
	}

	want := []string{
		"ns1:closed->open",
		"ns1:open->half-open",
		"ns1:half-open->open",
		"ns1:open->half-open",
		"ns1:half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}

func TestBreakerPerPeerIsolation(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Minute})
	t0 := time.Unix(0, 0)
	b.Record("bad", false, t0)
	b.Record("bad", false, t0)
	if b.Allow("bad", t0) {
		t.Fatal("bad peer should be open")
	}
	if !b.Allow("good", t0) {
		t.Fatal("good peer must be unaffected")
	}
	// success resets the consecutive-failure count
	b.Record("good", false, t0)
	b.Record("good", true, t0)
	b.Record("good", false, t0)
	if b.State("good") != BreakerClosed {
		t.Fatal("interleaved success must reset the failure streak")
	}
}

func TestBreakerDisabled(t *testing.T) {
	var nilB *Breaker
	if !nilB.Allow("x", time.Now()) {
		t.Fatal("nil breaker must always allow")
	}
	nilB.Record("x", false, time.Now()) // must not panic
	if nilB.State("x") != BreakerClosed {
		t.Fatal("nil breaker reports closed")
	}
	off := NewBreaker(BreakerConfig{Threshold: 0})
	for i := 0; i < 10; i++ {
		off.Record("x", false, time.Now())
	}
	if !off.Allow("x", time.Now()) {
		t.Fatal("zero-threshold breaker must stay disabled")
	}
}
