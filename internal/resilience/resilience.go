// Package resilience is the unified overload-and-retry policy layer of
// the reproduction. The paper's attack feed is bursty by construction —
// pulse-wave and carpet-bombing campaigns arrive in spikes far above
// steady-state rate — and the serving, streaming, and fleet components
// all face the same three questions under that load:
//
//   - admission: how much work may enter right now (TokenBucket)?
//   - retry: how hard may a failed operation be retried, and with what
//     spacing (RetryBudget, decorrelated-jitter backoff)?
//   - isolation: when is a peer so unhealthy that trying it at all is
//     wasted work (Breaker, per-peer circuit breaking with half-open
//     probing)?
//
// Before this package each consumer answered ad hoc: the live resolver
// had its own shifted-exponential backoff, the distributed-join
// coordinator its own `base << attempts` requeue delay, the day-snapshot
// cache an unthrottled waiter-retry loop. The primitives here replace
// those constants with one policy surface, so tuning overload behaviour
// happens in one place and every component degrades the same way.
//
// Determinism: TokenBucket is driven by caller-supplied timestamps
// (stream time), never the wall clock, so a seeded replay admits and
// sheds identically on every run. RetryBudget and Breaker are wall-clock
// creatures by nature (they pace real retries against real peers) but
// accept a seeded *rand.Rand so tests can pin their draws.
package resilience

import "time"

// Default backoff window shared by every adopter that does not override
// it: the base spacing before a second attempt and the cap the
// decorrelated jitter may grow to. Centralised here so "how fast do we
// hammer a failing dependency" is a policy decision, not a per-package
// constant.
const (
	DefaultBase = 50 * time.Millisecond
	DefaultCap  = 2 * time.Second
)
