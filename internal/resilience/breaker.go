package resilience

import (
	"sync"
	"time"
)

// breaker.go: per-peer circuit breaking. A peer (a nameserver address, a
// fleet worker) that fails Threshold times in a row is "open": attempts
// against it are refused for Cooldown, so retry budgets stop burning
// per-try timeouts on a host that is plainly down — which is exactly the
// failure mode a DDoS on authoritative infrastructure produces. After
// the cooldown the breaker goes half-open and admits a single probe; the
// probe's outcome closes the breaker or re-opens it for another
// cooldown. Callers that have nowhere else to go may force a probe
// early (Resolve with every server open) — refusing all peers forever
// would be worse than trying one.

// BreakerState is a peer's circuit state.
type BreakerState int

const (
	// BreakerClosed: the peer is healthy (or unproven); attempts flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the peer failed Threshold consecutive times; attempts
	// are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; exactly one probe is in flight.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens a peer's
	// circuit. <= 0 disables the breaker entirely (Allow always true).
	Threshold int
	// Cooldown is how long an open circuit refuses attempts before
	// half-opening for a probe. <= 0 defaults to DefaultCap.
	Cooldown time.Duration
	// OnStateChange, when set, observes every transition — the metrics
	// hook. Called without internal locks held beyond the peer's own.
	OnStateChange func(peer string, from, to BreakerState)
}

// Breaker tracks one circuit per peer name. Safe for concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	mu    sync.Mutex
	peers map[string]*circuit
}

type circuit struct {
	state       BreakerState
	consecFails int
	openedAt    time.Time
}

// NewBreaker builds a per-peer breaker; a nil receiver or zero Threshold
// is a valid disabled breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCap
	}
	return &Breaker{cfg: cfg, peers: make(map[string]*circuit)}
}

func (b *Breaker) enabled() bool { return b != nil && b.cfg.Threshold > 0 }

// Allow reports whether an attempt against peer should proceed at time
// now. An open circuit whose cooldown has elapsed transitions to
// half-open and admits this one call as the probe.
func (b *Breaker) Allow(peer string, now time.Time) bool {
	if !b.enabled() {
		return true
	}
	b.mu.Lock()
	c := b.peers[peer]
	if c == nil || c.state == BreakerClosed {
		b.mu.Unlock()
		return true
	}
	switch c.state {
	case BreakerOpen:
		if now.Sub(c.openedAt) < b.cfg.Cooldown {
			b.mu.Unlock()
			return false
		}
		c.state = BreakerHalfOpen
		b.mu.Unlock()
		b.notify(peer, BreakerOpen, BreakerHalfOpen)
		return true
	case BreakerHalfOpen:
		// one probe at a time; concurrent attempts wait for its verdict
		b.mu.Unlock()
		return false
	}
	b.mu.Unlock()
	return true
}

// Record reports an attempt's outcome for peer at time now. Success
// closes the circuit; failure counts toward Threshold (and re-opens a
// half-open circuit immediately).
func (b *Breaker) Record(peer string, ok bool, now time.Time) {
	if !b.enabled() {
		return
	}
	b.mu.Lock()
	c := b.peers[peer]
	if c == nil {
		c = &circuit{}
		b.peers[peer] = c
	}
	from := c.state
	if ok {
		c.consecFails = 0
		c.state = BreakerClosed
	} else {
		c.consecFails++
		if from == BreakerHalfOpen || c.consecFails >= b.cfg.Threshold {
			c.state = BreakerOpen
			c.openedAt = now
		}
	}
	to := c.state
	b.mu.Unlock()
	if from != to {
		b.notify(peer, from, to)
	}
}

// State returns peer's current circuit state (closed for unknown peers).
func (b *Breaker) State(peer string) BreakerState {
	if !b.enabled() {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := b.peers[peer]; c != nil {
		return c.state
	}
	return BreakerClosed
}

func (b *Breaker) notify(peer string, from, to BreakerState) {
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(peer, from, to)
	}
}
