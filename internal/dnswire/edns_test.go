package dnswire

import "testing"

func TestEDNSAttachAndRead(t *testing.T) {
	q := NewQuery(1, "example.com", TypeNS)
	q.AttachEDNS(EDNS{UDPPayload: 1232, DO: true})
	e, ok := q.EDNS()
	if !ok || e.UDPPayload != 1232 || !e.DO || e.Version != 0 {
		t.Fatalf("EDNS = %+v, %v", e, ok)
	}
	if q.MaxUDPPayload() != 1232 {
		t.Errorf("MaxUDPPayload = %d", q.MaxUDPPayload())
	}
}

func TestEDNSReplacesExisting(t *testing.T) {
	q := NewQuery(1, "example.com", TypeNS)
	q.AttachEDNS(EDNS{UDPPayload: 512})
	q.AttachEDNS(EDNS{UDPPayload: 4096})
	count := 0
	for _, rr := range q.Additional {
		if rr.Type == TypeOPT {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("OPT records = %d, want 1", count)
	}
	if q.MaxUDPPayload() != 4096 {
		t.Errorf("MaxUDPPayload = %d", q.MaxUDPPayload())
	}
}

func TestEDNSWireRoundTrip(t *testing.T) {
	q := NewQuery(7, "example.nl", TypeNS)
	q.AttachEDNS(EDNS{UDPPayload: DefaultEDNSPayload, ExtRCode: 0, DO: true})
	wire, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := m.EDNS()
	if !ok || e.UDPPayload != DefaultEDNSPayload || !e.DO {
		t.Fatalf("after round trip: %+v, %v", e, ok)
	}
}

func TestMaxUDPPayloadDefaults(t *testing.T) {
	q := NewQuery(1, "example.com", TypeNS)
	if q.MaxUDPPayload() != ClassicMaxPayload {
		t.Errorf("without EDNS, payload = %d, want %d", q.MaxUDPPayload(), ClassicMaxPayload)
	}
	// an advertisement below the classic limit is floored to it
	q.AttachEDNS(EDNS{UDPPayload: 100})
	if q.MaxUDPPayload() != ClassicMaxPayload {
		t.Errorf("tiny advertisement should floor to %d, got %d", ClassicMaxPayload, q.MaxUDPPayload())
	}
}
